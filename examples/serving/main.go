// Serving: the train-offline / serve-online lifecycle in one program.
// An "offline" engine fits a click model and a micro-browsing model
// and snapshots both to disk; a separate "serving" engine loads the
// artifacts, answers scoring requests, hot-swaps a refreshed artifact
// in under version addressing, and rolls it back — exactly what
// cmd/microserve does over HTTP, minus the network.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	micro "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "microbrowsing-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- offline: simulate a log, fit, snapshot ---------------------
	lex := micro.DefaultLexicon()
	corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 51, Groups: 300}, lex)
	sim := micro.NewSimulator(micro.SimConfig{Seed: 52})
	sessions := sim.Sessions(corpus, 12000, 4)

	offline := micro.NewEngine()
	if _, err := offline.Fit("pbm", sessions, micro.FitIterations(10)); err != nil {
		log.Fatal(err)
	}
	offline.UseMicro(sim.TrueModel(lex)) // the planted ground-truth micro model

	pbmPath := filepath.Join(dir, "pbm.bin")
	microPath := filepath.Join(dir, "micro.bin")
	for ref, path := range map[string]string{"pbm": pbmPath, "micro": microPath} {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := offline.SaveSnapshot(ref, f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		st, _ := os.Stat(path)
		fmt.Printf("snapshotted %-5s -> %s (%d bytes)\n", ref, filepath.Base(path), st.Size())
	}

	// --- online: a fresh engine serves the artifacts ----------------
	serving := micro.NewEngine(micro.WithWorkers(4))
	for _, path := range []string{pbmPath, microPath} {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		info, err := serving.LoadSnapshot("", f) // install under the artifact's own name
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: %d params, source=%s\n", info.Ref(), info.Params, info.Source)
	}

	ctx := context.Background()
	session := sessions[0]
	creative := corpus.Groups[0].Creatives[0]
	resps := serving.ScoreBatch(ctx, []micro.ScoreRequest{
		{ID: "macro", Model: "pbm", Session: &session},
		{ID: "micro", Model: "micro", Lines: creative.Lines},
	})
	for _, r := range resps {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("scored %-5s via %s@%d: CTR %.4f\n", r.ID, r.Model, r.ModelVersion, r.CTR)
	}

	// --- hot swap: refit offline, ship the new artifact -------------
	if _, err := offline.Fit("pbm", sessions[:6000], micro.FitIterations(3)); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(pbmPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := offline.SaveSnapshot("pbm", f); err != nil {
		log.Fatal(err)
	}
	f.Close()

	f, err = os.Open(pbmPath)
	if err != nil {
		log.Fatal(err)
	}
	info, err := serving.LoadSnapshot("pbm", f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhot-swapped to %s; versions now installed:\n", info.Ref())
	for _, mi := range serving.Models() {
		fmt.Printf("  %-8s latest=%-5v params=%d source=%s\n", mi.Ref(), mi.Latest, mi.Params, mi.Source)
	}

	// Bare names serve the new version; pinned references still reach
	// the old one.
	v2, _ := serving.ScoreCTR(ctx, micro.ScoreRequest{Model: "pbm", Session: &session})
	v1, _ := serving.ScoreCTR(ctx, micro.ScoreRequest{Model: "pbm@1", Session: &session})
	fmt.Printf("pbm (latest) -> v%d CTR %.4f | pbm@1 -> v%d CTR %.4f\n",
		v2.ModelVersion, v2.CTR, v1.ModelVersion, v1.CTR)

	// --- rollback: un-ship the new artifact -------------------------
	back, err := serving.Rollback("pbm")
	if err != nil {
		log.Fatal(err)
	}
	after, _ := serving.ScoreCTR(ctx, micro.ScoreRequest{Model: "pbm", Session: &session})
	fmt.Printf("rolled back to %s; bare \"pbm\" now serves v%d (CTR %.4f)\n",
		back.Ref(), after.ModelVersion, after.CTR)
}
