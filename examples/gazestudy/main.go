// Gaze study: the paper's future-work proposal made runnable — simulate
// an eye-tracking study over snippet micro-positions, fit an HMM gaze
// model (as in Zhao et al., cited by the paper), and correlate the
// measured fixation heat map with the positions of high-appeal words.
//
// Run with: go run ./examples/gazestudy
package main

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	micro "repro"
	"repro/internal/gaze"
)

func main() {
	// The "participants" read snippets under this planted attention.
	attention := micro.GeometricAttention{
		LineWeights: []float64{0.95, 0.65, 0.35},
		Decay:       0.78,
	}
	study := gaze.NewStudy(attention, 3, 6)
	rng := rand.New(rand.NewSource(42))

	// 1. Fixation heat map from 5000 simulated readers.
	rates := study.FixationRates(rng, 5000)
	fmt.Println("fixation rate heat map (readers fixating each micro-position):")
	for line, row := range rates {
		cells := make([]string, len(row))
		for i, r := range row {
			cells[i] = fmt.Sprintf("%.2f", r)
		}
		fmt.Printf("  line %d: [%s]\n", line+1, strings.Join(cells, " "))
	}

	// 2. Fit a two-state (reading/skimming) HMM to the scanpaths.
	h, ll, err := study.FitHMM(rng, 600, 2, 40)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nHMM fitted on 600 scanpaths (training LL %.1f)\n", ll)
	path := study.Scanpath(rng)
	if len(path) > 0 {
		states := h.Viterbi(study.Symbols(path))
		fmt.Println("one reader's scanpath with decoded attention states:")
		for i, f := range path {
			state := "reading "
			if states[i] == 1 {
				state = "skimming"
			}
			fmt.Printf("  fixation %2d: line %d pos %d  [%s]\n", i+1, f.Line, f.Pos, state)
		}
	}

	// 3. Correlate word positions with focus areas: the same snippet,
	// two layouts.
	creative, err := micro.NewCreative("ad",
		"Acme Travel 20% off",
		"Flights to Rome book now",
		"Free cancellation always")
	if err != nil {
		panic(err)
	}
	terms := micro.ExtractTerms(creative.Lines, 2)
	corr := gaze.CorrelateWithTerms(rates, terms)
	fmt.Println("\nfixation rate at the position of each snippet term:")
	for _, t := range terms {
		if t.N != 2 {
			continue
		}
		fmt.Printf("  %-22s %.2f\n", t.Key(), corr[t.Key()])
	}

	// 4. Close the loop: serve the *measured* attention through the
	// scoring engine instead of the planted curve.
	measured := gaze.AttentionFromRates(rates)
	model := micro.NewModel(measured)
	model.Relevance["20% off"] = 0.8
	eng := micro.NewEngine()
	eng.UseMicro(model)
	resp, err := eng.ScoreCTR(context.Background(), micro.ScoreRequest{
		ID: creative.ID, Lines: creative.Lines,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nengine score of the snippet under measured attention: %+.3f (predicted CTR %.4f)\n",
		resp.Score, resp.CTR)
	fmt.Println("(an eye-tracking study can parameterise the serving model directly)")
}
