// Quickstart: build a micro-browsing model by hand, score the paper's
// own example snippet pair (Section IV-A), and predict which creative
// earns the higher click-through rate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	micro "repro"
)

func main() {
	// The attention layer: line 1 is read most, attention decays along
	// each line. These are the micro-position examination probabilities
	// v_i of Eq. 3, in expectation.
	attention := micro.GeometricAttention{
		LineWeights: []float64{0.95, 0.65, 0.35},
		Decay:       0.78,
	}
	model := micro.NewModel(attention)

	// Per-term perceived relevance r_i. In production these come from
	// the feature statistics database; here we set a few by hand.
	model.Relevance["find cheap"] = 0.80
	model.Relevance["get discounts"] = 0.72
	model.Relevance["flights"] = 0.65
	model.Relevance["flying"] = 0.60
	model.Relevance["new york"] = 0.55
	model.DefaultRelevance = 0.50 // unknown terms are neutral

	// The paper's example pair from Section IV-A.
	r, err := micro.NewCreative("R",
		"XYZ Airlines",
		"Find cheap flights to New York.",
		"No reservation costs. Great rates")
	if err != nil {
		log.Fatal(err)
	}
	s, err := micro.NewCreative("S",
		"XYZ Airlines",
		"Flying to New York? Get discounts.",
		"No reservation costs. Great rates!")
	if err != nil {
		log.Fatal(err)
	}

	rTerms := micro.ExtractTerms(r.Lines, 2)
	sTerms := micro.ExtractTerms(s.Lines, 2)

	fmt.Println("Snippet R:", r.Text())
	fmt.Println("Snippet S:", s.Text())
	fmt.Println()

	// Eq. 5: the expected log probability ratio score(R→S|q).
	score := model.ScorePair(rTerms, sTerms)
	fmt.Printf("score(R→S) = %+.4f\n", score)
	if score > 0 {
		fmt.Println("prediction: R wins — users reading the opening of line 2")
		fmt.Println("see 'find cheap' early, where attention is highest")
	} else {
		fmt.Println("prediction: S wins")
	}
	fmt.Println()

	// The same phrase matters less when pushed to a low-attention
	// micro-position: move "find cheap" to the end of line 2.
	moved, err := micro.NewCreative("R'",
		"XYZ Airlines",
		"Flights to New York? Find cheap.",
		"No reservation costs. Great rates")
	if err != nil {
		log.Fatal(err)
	}
	movedTerms := micro.ExtractTerms(moved.Lines, 2)
	fmt.Printf("score(R→R')  = %+.4f  (same words, hook moved to position %d)\n",
		model.ScorePair(rTerms, movedTerms), 5)
	fmt.Println("positive: position alone changed the predicted winner's margin —")
	fmt.Println("the paper's key insight, 'even where within a snippet particular")
	fmt.Println("words are located' influences clickthrough.")
}
