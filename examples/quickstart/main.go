// Quickstart: build a micro-browsing model by hand, serve it through
// the unified scoring engine, and predict which of the paper's own
// example snippets (Section IV-A) earns the higher click-through rate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	micro "repro"
)

func main() {
	// The attention layer: line 1 is read most, attention decays along
	// each line. These are the micro-position examination probabilities
	// v_i of Eq. 3, in expectation.
	attention := micro.GeometricAttention{
		LineWeights: []float64{0.95, 0.65, 0.35},
		Decay:       0.78,
	}
	model := micro.NewModel(attention)

	// Per-term perceived relevance r_i. In production these come from
	// the feature statistics database (see MicroModelFromStats); here we
	// set a few by hand.
	model.Relevance["find cheap"] = 0.80
	model.Relevance["get discounts"] = 0.72
	model.Relevance["flights"] = 0.65
	model.Relevance["flying"] = 0.60
	model.Relevance["new york"] = 0.55
	model.DefaultRelevance = 0.50 // unknown terms are neutral

	// The scoring engine is the serving surface: install the model and
	// score snippets as batch requests.
	eng := micro.NewEngine(micro.WithWorkers(4))
	eng.UseMicro(model)

	// The paper's example pair from Section IV-A, plus a variant with
	// the hook phrase pushed to a low-attention micro-position.
	r := mustCreative("R",
		"XYZ Airlines",
		"Find cheap flights to New York.",
		"No reservation costs. Great rates")
	s := mustCreative("S",
		"XYZ Airlines",
		"Flying to New York? Get discounts.",
		"No reservation costs. Great rates!")
	moved := mustCreative("R'",
		"XYZ Airlines",
		"Flights to New York? Find cheap.",
		"No reservation costs. Great rates")

	resps := eng.ScoreBatch(context.Background(), []micro.ScoreRequest{
		{ID: r.ID, Lines: r.Lines},
		{ID: s.ID, Lines: s.Lines},
		{ID: moved.ID, Lines: moved.Lines},
	})
	for _, resp := range resps {
		if resp.Err != nil {
			log.Fatal(resp.Err)
		}
		fmt.Printf("snippet %-2s  predicted CTR %.4f  (expected log-prob %+.4f)\n",
			resp.ID, resp.CTR, resp.Score)
	}
	fmt.Println()

	// Eq. 5 — the expected log probability ratio score(R→S|q) — is the
	// difference of the engine's per-snippet Scores.
	score := resps[0].Score - resps[1].Score
	fmt.Printf("score(R→S) = %+.4f\n", score)
	if score > 0 {
		fmt.Println("prediction: R wins — users reading the opening of line 2")
		fmt.Println("see 'find cheap' early, where attention is highest")
	} else {
		fmt.Println("prediction: S wins")
	}
	fmt.Println()

	// The same phrase matters less when pushed to a low-attention
	// micro-position: R' moves "find cheap" to the end of line 2.
	fmt.Printf("score(R→R')  = %+.4f  (same words, hook moved to position %d)\n",
		resps[0].Score-resps[2].Score, 5)
	fmt.Println("positive: position alone changed the predicted winner's margin —")
	fmt.Println("the paper's key insight, 'even where within a snippet particular")
	fmt.Println("words are located' influences clickthrough.")
}

func mustCreative(id string, lines ...string) micro.Creative {
	c, err := micro.NewCreative(id, lines...)
	if err != nil {
		log.Fatal(err)
	}
	return c
}
