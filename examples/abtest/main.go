// A/B testing assistant: train the full snippet classifier (M6) on a
// simulated corpus, then rank an advertiser's candidate creatives against
// their current champion — the application scenario of the paper's
// introduction (predict which creative will have the higher CTR before
// spending impressions on it).
//
// Alongside the pairwise classifier verdicts, the same serving history
// feeds the unified scoring engine: MicroModelFromStats turns the
// feature statistics database into a servable micro-browsing model
// whose batch CTR estimates rank the candidates standalone.
//
// Run with: go run ./examples/abtest
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	micro "repro"
	"repro/internal/classifier"
)

func main() {
	// Phase 1: simulate serving history and build the statistics DB.
	corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 21, Groups: 2500}, micro.DefaultLexicon())
	sim := micro.NewSimulator(micro.SimConfig{Seed: 22, Impressions: 1200})
	history := sim.Run(corpus)

	ex := micro.NewExtractor()
	pairs := ex.Pairs(history)
	db := ex.BuildDB(history)
	log.Printf("abtest: training on %d historical pairs, %d features", len(pairs), db.Len())

	// Phase 2: train the full model M6 on all historical pairs.
	pipe := micro.NewPipeline(micro.M6, db)
	ds := pipe.Dataset(pairs)
	model, err := classifier.Train(ds, nil, micro.ClassifierOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The advertiser's current champion and four drafts.
	champion := mustCreative("champion",
		"JetWise Official Site",
		"Find cheap flights to Boston today",
		"Free cancellation. 24 7 support")
	candidates := []micro.Creative{
		mustCreative("cand-discount",
			"JetWise Official Site",
			"20% off flights to Boston today",
			"Free cancellation. 24 7 support"),
		mustCreative("cand-moved-hook",
			"JetWise Official Site",
			"Flights to Boston today? Find cheap",
			"Free cancellation. 24 7 support"),
		mustCreative("cand-headline",
			"JetWise 20% off",
			"Flights to Boston today",
			"Free cancellation. 24 7 support"),
		mustCreative("cand-smallprint",
			"JetWise Official Site",
			"Find cheap flights to Boston terms apply",
			"Free cancellation. 24 7 support"),
	}

	// The engine side: the same statistics database, served as a
	// micro-browsing scorer. Every creative gets a standalone CTR
	// estimate from one batch call.
	eng := micro.NewEngine(micro.WithWorkers(4))
	eng.UseMicro(micro.MicroModelFromStats(db, micro.DefaultAttention(), 8))

	all := append([]micro.Creative{champion}, candidates...)
	reqs := make([]micro.ScoreRequest, len(all))
	for i, c := range all {
		reqs[i] = micro.ScoreRequest{ID: c.ID, Lines: c.Lines}
	}
	engCTR := make(map[string]float64, len(all))
	for _, resp := range eng.ScoreBatch(context.Background(), reqs) {
		if resp.Err != nil {
			log.Fatal(resp.Err)
		}
		engCTR[resp.ID] = resp.CTR
	}

	// Score every candidate against the champion: P(candidate beats it).
	type ranked struct {
		c micro.Creative
		p float64
	}
	var results []ranked
	for _, cand := range candidates {
		pair := micro.CreativePair{R: cand, S: champion}
		results = append(results, ranked{cand, model.PredictPair(pipe, pair)})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].p > results[j].p })

	fmt.Printf("champion: %s  (engine CTR estimate %.4f)\n", champion.Text(), engCTR[champion.ID])
	fmt.Println()
	fmt.Println("candidates ranked by P(beats champion), with engine CTR estimates:")
	for i, r := range results {
		verdict := "keep champion"
		if r.p > 0.5 {
			verdict = "PROMOTE"
		}
		fmt.Printf("%d. %5.1f%%  %-14s %s  (engine CTR %.4f)\n      %s\n",
			i+1, r.p*100, verdict, r.c.ID, engCTR[r.c.ID], r.c.Text())
	}
}

func mustCreative(id string, lines ...string) micro.Creative {
	c, err := micro.NewCreative(id, lines...)
	if err != nil {
		log.Fatal(err)
	}
	return c
}
