// Rewrite mining: build the feature statistics database from a simulated
// sponsored-search corpus and print the phrase rewrites with the largest
// click-through-rate lift — the paper's "database of phrase rewrites with
// corresponding click-through rate lift scores" (Section IV-A).
//
// Run with: go run ./examples/rewritemining
package main

import (
	"context"
	"fmt"
	"sort"
	"strings"

	micro "repro"
)

func main() {
	// Simulate a corpus of adgroups with alternative creatives, serve
	// impressions with the micro-browsing user, and extract statistics.
	corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 7, Groups: 3000}, micro.DefaultLexicon())
	sim := micro.NewSimulator(micro.SimConfig{Seed: 8, Impressions: 1200})
	groups := sim.Run(corpus)

	ex := micro.NewExtractor()
	db := ex.BuildDB(groups)
	fmt.Printf("statistics database: %d features from %d adgroups\n\n", db.Len(), len(groups))

	// Collect directed rewrites with enough evidence, ranked by odds of
	// lifting CTR.
	type minedRewrite struct {
		key   string
		from  string
		to    string
		odds  float64
		count float64
	}
	var mined []minedRewrite
	for key := range db.Stats {
		if kind := keyKind(key); kind != "rw" {
			continue
		}
		if db.Count(key) < 12 {
			continue // too little evidence to report
		}
		from, to, ok := splitRewrite(key)
		if !ok {
			continue
		}
		mined = append(mined, minedRewrite{
			key: key, from: from, to: to,
			odds: db.OddsRatio(key), count: db.Count(key),
		})
	}
	sort.Slice(mined, func(i, j int) bool {
		if mined[i].odds != mined[j].odds {
			return mined[i].odds > mined[j].odds
		}
		return mined[i].key < mined[j].key
	})

	fmt.Println("top rewrites by CTR-lift odds (apply right-to-left: prefer FROM over TO):")
	fmt.Printf("%-28s %-28s %8s %7s\n", "FROM (better)", "TO (worse)", "odds", "n")
	shown := 0
	for _, m := range mined {
		if m.odds < 1 {
			break
		}
		fmt.Printf("%-28s %-28s %8.2f %7.0f\n", m.from, m.to, m.odds, m.count)
		shown++
		if shown >= 15 {
			break
		}
	}

	fmt.Println("\nbottom rewrites (these edits hurt CTR):")
	for i := len(mined) - 1; i >= 0 && i >= len(mined)-5; i-- {
		m := mined[i]
		fmt.Printf("%-28s %-28s %8.2f %7.0f\n", m.from, m.to, m.odds, m.count)
	}

	// The mined database is directly servable: MicroModelFromStats
	// turns its term statistics into a micro-browsing scorer, and the
	// engine batch-scores candidate snippets with it — here the paper's
	// Section IV-A pair.
	eng := micro.NewEngine(micro.WithWorkers(4))
	eng.UseMicro(micro.MicroModelFromStats(db, micro.DefaultAttention(), 8))
	resps := eng.ScoreBatch(context.Background(), []micro.ScoreRequest{
		{ID: "R", Lines: []string{"XYZ Airlines", "Find cheap flights to New York.", "No reservation costs. Great rates"}},
		{ID: "S", Lines: []string{"XYZ Airlines", "Flying to New York? Get discounts.", "No reservation costs. Great rates!"}},
	})
	fmt.Println("\nserving the database through the scoring engine (Section IV-A pair):")
	for _, resp := range resps {
		if resp.Err != nil {
			panic(resp.Err)
		}
		fmt.Printf("  snippet %s: predicted CTR %.4f (expected log-prob %+.3f)\n",
			resp.ID, resp.CTR, resp.Score)
	}
	fmt.Printf("  score(R→S) = %+.4f under the mined statistics\n", resps[0].Score-resps[1].Score)
}

// keyKind mirrors featstats.KeyKind for the small set of kinds used here.
func keyKind(key string) string {
	switch {
	case strings.HasPrefix(key, "rw|"):
		return "rw"
	default:
		return ""
	}
}

// splitRewrite parses a "rw|from\x1fto" key.
func splitRewrite(key string) (from, to string, ok bool) {
	body := strings.TrimPrefix(key, "rw|")
	parts := strings.SplitN(body, "\x1f", 2)
	if len(parts) != 2 {
		return "", "", false
	}
	return parts[0], parts[1], true
}
