// Click models: fit the macro browsing-model family of the paper's
// Section II to a simulated SERP log, compare their held-out quality,
// and print the examination curves they infer — showing how the
// macro-level position bias (which the micro-browsing model refines to
// the term level) is estimated in practice.
//
// Run with: go run ./examples/clickmodels
package main

import (
	"fmt"
	"strings"

	micro "repro"
	"repro/internal/clickmodel"
)

func main() {
	// Simulate SERP sessions: four ads per page, macro examination decays
	// with slot, clicks decided by the ground-truth micro-browsing user.
	corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 31, Groups: 400}, micro.DefaultLexicon())
	sim := micro.NewSimulator(micro.SimConfig{Seed: 32})
	sessions := sim.Sessions(corpus, 24000, 4)
	train, test := sessions[:20000], sessions[20000:]

	fmt.Printf("fitted on %d sessions, evaluated on %d\n\n", len(train), len(test))
	fmt.Printf("%-8s %10s %12s\n", "model", "mean LL", "perplexity")

	models := []micro.ClickModel{
		micro.NewPBM(), micro.NewCascade(), micro.NewDCM(),
		micro.NewUBM(), micro.NewDBN(), micro.NewSDBN(),
	}
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			panic(err)
		}
		ev := micro.EvaluateClickModel(m, test)
		fmt.Printf("%-8s %10.4f %12.4f\n", ev.Model, ev.LogLikelihood, ev.Perplexity)
	}

	// Examination curves: how strongly each model believes lower slots
	// are seen. The simulator's true macro curve is 0.90/0.65/0.45/0.30.
	fmt.Println("\ninferred examination probability by slot (sample session):")
	sample := test[0]
	for _, m := range models {
		examiner, ok := m.(interface {
			ExaminationProbs(clickmodel.Session) []float64
		})
		if !ok {
			continue
		}
		probs := examiner.ExaminationProbs(sample)
		parts := make([]string, len(probs))
		for i, p := range probs {
			parts[i] = fmt.Sprintf("%.2f", p)
		}
		fmt.Printf("%-8s [%s]\n", m.Name(), strings.Join(parts, " "))
	}
	fmt.Println("\ntrue macro curve: [0.90 0.65 0.45 0.30]")
	fmt.Println("(PBM separates position from attractiveness up to a scale factor;")
	fmt.Println("cascade-family models explain the same decay through abandonment)")
}
