// Click models: fit the macro browsing-model family of the paper's
// Section II to a simulated SERP log through the unified scoring
// engine — models are selected by registry name, trained with
// Engine.Fit, and score held-out sessions through ScoreBatch — then
// print the examination curves they infer, showing how the macro-level
// position bias (which the micro-browsing model refines to the term
// level) is estimated in practice.
//
// Run with: go run ./examples/clickmodels
package main

import (
	"context"
	"fmt"
	"strings"

	micro "repro"
	"repro/internal/clickmodel"
)

func main() {
	// Simulate SERP sessions: four ads per page, macro examination decays
	// with slot, clicks decided by the ground-truth micro-browsing user.
	corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 31, Groups: 400}, micro.DefaultLexicon())
	sim := micro.NewSimulator(micro.SimConfig{Seed: 32})
	sessions := sim.Sessions(corpus, 24000, 4)
	train, test := sessions[:20000], sessions[20000:]

	fmt.Printf("fitted on %d sessions, evaluated on %d\n\n", len(train), len(test))
	fmt.Printf("%-8s %10s %12s %10s\n", "model", "mean LL", "perplexity", "mean pCTR")

	// The engine resolves config strings against the click-model
	// registry; micro.ClickModelNames() would list all ten, we fit the
	// fast core of the family.
	names := []string{"pbm", "cascade", "dcm", "ubm", "dbn", "sdbn"}

	eng := micro.NewEngine(micro.WithWorkers(4))
	reqs := make([]micro.ScoreRequest, len(test))
	for i := range test {
		reqs[i] = micro.ScoreRequest{Session: &test[i]}
	}

	fitted := make([]micro.ClickModel, 0, len(names))
	for _, name := range names {
		m, err := eng.Fit(name, train)
		if err != nil {
			panic(err)
		}
		fitted = append(fitted, m)
		ev := micro.EvaluateClickModel(m, test)

		// Held-out CTR prediction through the engine's batch API.
		for i := range reqs {
			reqs[i].Model = name
		}
		pCTR, err := micro.MeanCTR(eng.ScoreBatch(context.Background(), reqs))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %10.4f %12.4f %10.4f\n", ev.Model, ev.LogLikelihood, ev.Perplexity, pCTR)
	}

	// Examination curves: how strongly each model believes lower slots
	// are seen. The simulator's true macro curve is 0.90/0.65/0.45/0.30.
	fmt.Println("\ninferred examination probability by slot (sample session):")
	sample := test[0]
	for _, m := range fitted {
		examiner, ok := m.(clickmodel.Examiner)
		if !ok {
			continue
		}
		probs := examiner.ExaminationProbs(sample)
		parts := make([]string, len(probs))
		for i, p := range probs {
			parts[i] = fmt.Sprintf("%.2f", p)
		}
		fmt.Printf("%-8s [%s]\n", m.Name(), strings.Join(parts, " "))
	}
	fmt.Println("\ntrue macro curve: [0.90 0.65 0.45 0.30]")
	fmt.Println("(PBM separates position from attractiveness up to a scale factor;")
	fmt.Println("cascade-family models explain the same decay through abandonment)")
}
