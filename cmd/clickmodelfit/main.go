// Command clickmodelfit fits the classical macro click models of the
// paper's Section II (PBM, cascade, DCM, UBM, BBM, CCM, DBN, SDBN, GCM,
// SUM) to simulated SERP session logs and reports held-out
// log-likelihood, click perplexity and engine-predicted CTR — the S1
// substrate experiment of DESIGN.md.
//
// Models are selected by registry name through the unified scoring
// engine; held-out CTR prediction runs through Engine.ScoreBatch over
// the configured worker pool.
//
// With -o the fitted model is also written as a versioned snapshot
// artifact — the train-offline half of the serving split; point
// cmd/microserve -load at the file (or POST it to /v1/models/{name}/load)
// to serve it. -format picks the artifact encoding: v1 is the portable
// varint stream every model supports; v2 is the sectioned zero-parse
// layout (PBM and DBN) that microserve maps read-only instead of
// decoding. -conv upgrades an existing v1 artifact to v2 in place
// (atomic temp-file + rename, so a serving process watching the path
// never sees a half-written file) without refitting anything.
//
// Usage:
//
//	clickmodelfit -sessions 20000 -ads 4
//	clickmodelfit -model pbm -workers 8 -iters 10
//	clickmodelfit -model pbm -o pbm.bin              # fit → snapshot → serve
//	clickmodelfit -model pbm -o pbm.bin -format v2   # zero-parse artifact
//	clickmodelfit -conv pbm.bin                      # v1 → v2, in place
//	clickmodelfit -list
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/adcorpus"
	"repro/internal/clickmodel"
	"repro/internal/engine"
	"repro/internal/serp"
	"repro/internal/snapshot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clickmodelfit: ")

	nSessions := flag.Int("sessions", 20000, "sessions to simulate")
	ads := flag.Int("ads", 4, "ads per result page")
	groups := flag.Int("groups", 500, "adgroups backing the simulation")
	seed := flag.Int64("seed", 11, "random seed")
	only := flag.String("model", "", "fit only this registry model (empty = all; see -list)")
	iters := flag.Int("iters", 0, "EM iterations for iterative models (0 = model default)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scoring engine worker-pool size")
	out := flag.String("o", "", "write the fitted model (-model; default pbm when fitting all) as a snapshot artifact")
	format := flag.String("format", "v1", "artifact format for -o: v1 (portable varint) or v2 (zero-parse mapped)")
	conv := flag.String("conv", "", "upgrade the named v1 artifact to v2 in place (atomic) and exit; no fitting")
	list := flag.Bool("list", false, "list registered click models and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(clickmodel.Names(), "\n"))
		return
	}
	if *format != "v1" && *format != "v2" {
		log.Fatalf("-format %q: want v1 or v2", *format)
	}
	if *conv != "" {
		if err := convertToV2(*conv); err != nil {
			log.Fatalf("-conv %s: %v", *conv, err)
		}
		log.Printf("upgraded %s to the v2 (zero-parse) format", *conv)
		return
	}

	names := clickmodel.Names()
	if *only != "" {
		if _, err := clickmodel.Lookup(*only); err != nil {
			log.Fatal(err)
		}
		names = []string{*only} // the registry canonicalises on lookup
	}

	corpus := adcorpus.Generate(adcorpus.Config{Seed: *seed, Groups: *groups}, adcorpus.DefaultLexicon())
	sim := serp.New(serp.Config{Seed: *seed + 1})
	all := sim.Sessions(corpus, *nSessions, *ads)
	split := len(all) * 4 / 5
	train, test := all[:split], all[split:]
	log.Printf("simulated %d sessions (%d train / %d test), %d ads per page",
		len(all), len(train), len(test), *ads)

	// Intern the training log once; every model fits from the compiled
	// form instead of re-hashing the string pairs per fit.
	compiled, err := clickmodel.Compile(train)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	eng := engine.New(engine.WithWorkers(*workers))
	reqs := make([]engine.Request, len(test))
	for i := range test {
		reqs[i] = engine.Request{Session: &test[i]}
	}

	// The snapshot target: the explicitly selected model, or PBM when
	// fitting the whole registry.
	snapTarget := strings.ToLower(strings.TrimSpace(*only))
	if snapTarget == "" {
		snapTarget = "pbm"
	}

	fmt.Printf("%-8s %14s %12s %10s  %s\n", "model", "mean LL", "perplexity", "mean pCTR", "perplexity by rank")
	for _, name := range names {
		start := time.Now()
		m, err := eng.FitCompiled(name, compiled, engine.Iterations(*iters))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		ev := clickmodel.Evaluate(m, test)

		// Held-out CTR prediction through the engine's batch API.
		for i := range reqs {
			reqs[i].Model = name
		}
		pCTR, err := engine.MeanCTR(eng.ScoreBatch(ctx, reqs))
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}

		ranks := make([]string, len(ev.PerplexityByRank))
		for i, p := range ev.PerplexityByRank {
			ranks[i] = fmt.Sprintf("%.3f", p)
		}
		fmt.Printf("%-8s %14.4f %12.4f %10.4f  [%s]  (%v)\n",
			ev.Model, ev.LogLikelihood, ev.Perplexity, pCTR, strings.Join(ranks, " "),
			time.Since(start).Round(time.Millisecond))

		if *out != "" && strings.EqualFold(name, snapTarget) {
			if err := writeSnapshot(*out, m, *format); err != nil {
				log.Fatalf("-o %s: %v", *out, err)
			}
			log.Printf("wrote %s %s snapshot to %s (serve with: microserve -load %s=%s)",
				m.Name(), *format, *out, snapTarget, *out)
		}
	}

	// Model-free baseline for reference.
	ctr := clickmodel.MeanCTRByPosition(test)
	parts := make([]string, len(ctr))
	var mean float64
	for i, c := range ctr {
		parts[i] = fmt.Sprintf("%.4f", c)
		mean += c
	}
	if len(ctr) > 0 {
		mean /= float64(len(ctr))
	}
	fmt.Printf("\nempirical CTR by position: [%s] (mean %.4f)\n", strings.Join(parts, " "), mean)
}

// writeSnapshot saves a fitted model as a binary artifact, atomically
// (write to a temp file, then rename) so a serving process never loads
// a half-written file.
func writeSnapshot(path string, m clickmodel.Model, format string) error {
	if format == "v2" {
		return snapshot.WriteFileAtomic(path, func(w io.Writer) error {
			return clickmodel.SaveV2Model(w, m)
		})
	}
	sn, ok := m.(clickmodel.Snapshotter)
	if !ok {
		return fmt.Errorf("model %s does not support snapshots", m.Name())
	}
	return snapshot.WriteFileAtomic(path, sn.Save)
}

// convertToV2 rewrites an existing artifact in the v2 zero-parse
// layout, in place. It decodes any v1 artifact (macro or micro) and
// re-encodes through the model's v2 codec; an already-v2 input is
// rejected rather than rewritten, so the flag is safe to run twice.
func convertToV2(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if snapshot.IsV2(data) {
		return fmt.Errorf("already a v2 artifact")
	}
	s, name, err := engine.DecodeScorer(bytes.NewReader(data))
	if err != nil {
		return err
	}
	return snapshot.WriteFileAtomic(path, func(w io.Writer) error {
		switch t := s.(type) {
		case *engine.MicroScorer:
			return t.M.SaveV2(w)
		case *engine.ClickModelScorer:
			return clickmodel.SaveV2Model(w, t.M)
		}
		return fmt.Errorf("artifact model %q has no v2 codec", name)
	})
}
