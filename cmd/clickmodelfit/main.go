// Command clickmodelfit fits the classical macro click models of the
// paper's Section II (PBM, cascade, DCM, UBM, BBM, CCM, DBN, SDBN, GCM)
// to simulated SERP session logs and reports held-out log-likelihood and
// click perplexity — the S1 substrate experiment of DESIGN.md.
//
// Usage:
//
//	clickmodelfit -sessions 20000 -ads 4
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/adcorpus"
	"repro/internal/clickmodel"
	"repro/internal/serp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clickmodelfit: ")

	nSessions := flag.Int("sessions", 20000, "sessions to simulate")
	ads := flag.Int("ads", 4, "ads per result page")
	groups := flag.Int("groups", 500, "adgroups backing the simulation")
	seed := flag.Int64("seed", 11, "random seed")
	only := flag.String("model", "", "fit only this model (empty = all)")
	flag.Parse()

	corpus := adcorpus.Generate(adcorpus.Config{Seed: *seed, Groups: *groups}, adcorpus.DefaultLexicon())
	sim := serp.New(serp.Config{Seed: *seed + 1})
	all := sim.Sessions(corpus, *nSessions, *ads)
	split := len(all) * 4 / 5
	train, test := all[:split], all[split:]
	log.Printf("simulated %d sessions (%d train / %d test), %d ads per page",
		len(all), len(train), len(test), *ads)

	fmt.Printf("%-8s %14s %12s  %s\n", "model", "mean LL", "perplexity", "perplexity by rank")
	for _, m := range clickmodel.All() {
		if *only != "" && !strings.EqualFold(m.Name(), *only) {
			continue
		}
		start := time.Now()
		if err := m.Fit(train); err != nil {
			log.Fatalf("%s: %v", m.Name(), err)
		}
		ev := clickmodel.Evaluate(m, test)
		ranks := make([]string, len(ev.PerplexityByRank))
		for i, p := range ev.PerplexityByRank {
			ranks[i] = fmt.Sprintf("%.3f", p)
		}
		fmt.Printf("%-8s %14.4f %12.4f  [%s]  (%v)\n",
			ev.Model, ev.LogLikelihood, ev.Perplexity, strings.Join(ranks, " "),
			time.Since(start).Round(time.Millisecond))
	}

	// Model-free baseline for reference.
	ctr := clickmodel.MeanCTRByPosition(test)
	parts := make([]string, len(ctr))
	for i, c := range ctr {
		parts[i] = fmt.Sprintf("%.4f", c)
	}
	fmt.Printf("\nempirical CTR by position: [%s]\n", strings.Join(parts, " "))
}
