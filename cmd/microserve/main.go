// Command microserve is the HTTP serving binary of the scoring engine:
// the serve-online half of the train-offline / serve-online split. It
// loads snapshot artifacts produced offline (cmd/clickmodelfit -o, or
// any model's Save) and answers CTR-scoring requests over JSON, with
// admin endpoints to hot-swap new artifacts in and roll bad ones back
// without a restart.
//
// Usage:
//
//	microserve -addr :8377
//	microserve -load pbm=/models/pbm.bin -load /models/micro.bin
//	microserve -default pbm -workers 8
//
// Endpoints (see internal/server):
//
//	GET  /healthz
//	GET  /v1/models
//	POST /v1/score            {"model":"pbm","session":{...}} or {"lines":[...]}
//	POST /v1/score/batch      {"requests":[...]}
//	POST /v1/models/{name}/load      {"path":"/models/pbm-v2.bin"}
//	POST /v1/models/{name}/rollback
//
// The process drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("microserve: ")

	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scoring worker-pool size")
	defModel := flag.String("default", engine.NameMicro, "model served when a request names none")
	keep := flag.Int("keep", 8, "model versions kept per name (0 = unbounded)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	var loads []string
	flag.Func("load", "snapshot artifact to serve, as name=path or path (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithDefaultModel(*defModel),
		engine.WithKeepVersions(*keep),
	)
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "", spec // bare path: install under the artifact's own name
		}
		info, err := loadArtifact(eng, name, path)
		if err != nil {
			log.Fatalf("-load %s: %v", spec, err)
		}
		log.Printf("loaded %s from %s (%d params, source %s)", info.Ref(), path, info.Params, info.Source)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng, log.Default()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (default model %q, %d workers)", *addr, *defModel, *workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("bye")
}

// loadArtifact installs one snapshot file into the engine.
func loadArtifact(eng *engine.Engine, name, path string) (engine.ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return engine.ModelInfo{}, err
	}
	defer f.Close()
	info, err := eng.LoadSnapshot(name, f)
	if err != nil {
		return engine.ModelInfo{}, fmt.Errorf("decoding %s: %w", path, err)
	}
	return info, nil
}
