// Command microserve is the HTTP serving binary of the scoring engine:
// the serve-online half of the train-offline / serve-online split. It
// loads snapshot artifacts produced offline (cmd/clickmodelfit -o, or
// any model's Save) and answers CTR-scoring requests over JSON, with
// admin endpoints to hot-swap new artifacts in and roll bad ones back
// without a restart.
//
// With -online the process also becomes a learner: click feedback
// POSTed to /v1/feedback streams into internal/stream's sharded sink,
// and the configured models are refitted and auto-published as new
// engine versions on every interval — the serve→observe→retrain loop
// in one binary.
//
// Usage:
//
//	microserve -addr :8377
//	microserve -load pbm=/models/pbm.bin -load /models/micro.bin
//	microserve -default pbm -workers 8
//	microserve -online model=pbm,interval=30s
//	microserve -online model=sdbn+micro,interval=10s,decay=0.98,window=20000
//
// The -online spec is comma-separated key=value pairs: model (repeat
// or join with +), interval, window, decay, shards, queue, min, iters.
//
// Endpoints (see internal/server):
//
//	GET  /healthz
//	GET  /v1/models
//	POST /v1/score            {"model":"pbm","session":{...}} or {"lines":[...]}
//	POST /v1/score/batch      {"requests":[...]}
//	POST /v1/feedback         {"sessions":[...],"snippets":[...]}
//	POST /v1/models/{name}/load      {"path":"/models/pbm-v2.bin"}
//	POST /v1/models/{name}/rollback
//	POST /v1/models/{name}/snapshot  {"path":"/models/pbm-online.bin"}
//
// The process drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("microserve: ")

	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scoring worker-pool size")
	defModel := flag.String("default", engine.NameMicro, "model served when a request names none")
	keep := flag.Int("keep", 8, "model versions kept per name (0 = unbounded)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	online := flag.String("online", "", "online learning spec, e.g. model=pbm,interval=30s (empty = serving only)")
	var loads []string
	flag.Func("load", "snapshot artifact to serve, as name=path or path (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithDefaultModel(*defModel),
		engine.WithKeepVersions(*keep),
	)
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "", spec // bare path: install under the artifact's own name
		}
		info, err := loadArtifact(eng, name, path)
		if err != nil {
			log.Fatalf("-load %s: %v", spec, err)
		}
		log.Printf("loaded %s from %s (%d params, source %s)", info.Ref(), path, info.Params, info.Source)
	}

	var opts []server.Option
	var learner *stream.Learner
	if *online != "" {
		cfg, err := parseOnline(*online)
		if err != nil {
			log.Fatalf("-online %s: %v", *online, err)
		}
		cfg.Logger = log.Default()
		learner, err = stream.New(eng, cfg)
		if err != nil {
			log.Fatalf("-online %s: %v", *online, err)
		}
		learner.Start()
		opts = append(opts, server.WithLearner(learner))
		log.Printf("online learning enabled: models %v, publish every %v", cfg.Models, cfg.Interval)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(eng, log.Default(), opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (default model %q, %d workers)", *addr, *defModel, *workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if learner != nil {
		learner.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("bye")
}

// parseOnline turns the -online spec (comma-separated key=value pairs)
// into a stream.Config. "model" may repeat or join names with '+'.
func parseOnline(spec string) (stream.Config, error) {
	var cfg stream.Config
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || val == "" {
			return cfg, fmt.Errorf("bad spec entry %q (want key=value)", part)
		}
		var err error
		switch key {
		case "model", "models":
			for _, m := range strings.Split(val, "+") {
				cfg.Models = append(cfg.Models, strings.TrimSpace(m))
			}
		case "interval":
			cfg.Interval, err = time.ParseDuration(val)
		case "window":
			cfg.Window, err = strconv.Atoi(val)
		case "decay":
			cfg.Decay, err = strconv.ParseFloat(val, 64)
		case "shards":
			cfg.Shards, err = strconv.Atoi(val)
		case "queue":
			cfg.QueueCap, err = strconv.Atoi(val)
		case "min":
			cfg.MinEvents, err = strconv.Atoi(val)
		case "iters":
			cfg.Iterations, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("unknown spec key %q (model, interval, window, decay, shards, queue, min, iters)", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad %s value %q: %v", key, val, err)
		}
	}
	if len(cfg.Models) == 0 {
		return cfg, fmt.Errorf("spec needs at least one model=NAME entry")
	}
	return cfg, nil
}

// loadArtifact installs one snapshot file into the engine.
func loadArtifact(eng *engine.Engine, name, path string) (engine.ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return engine.ModelInfo{}, err
	}
	defer f.Close()
	info, err := eng.LoadSnapshot(name, f)
	if err != nil {
		return engine.ModelInfo{}, fmt.Errorf("decoding %s: %w", path, err)
	}
	return info, nil
}
