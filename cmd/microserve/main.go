// Command microserve is the serving binary of the scoring engine: the
// serve-online half of the train-offline / serve-online split. It
// loads snapshot artifacts produced offline (cmd/clickmodelfit -o, or
// any model's Save) and answers CTR-scoring requests over JSON — and,
// on the same port, over the length-prefixed binary protocol
// (internal/server/binproto; connections are sniffed by their first
// bytes) — with admin endpoints to hot-swap new artifacts in and roll
// bad ones back without a restart. v2 artifacts (cmd/clickmodelfit
// -format v2) are mapped read-only instead of decoded: loads are O(1)
// in artifact size and replicas share the page cache.
//
// With -online the process also becomes a learner: click feedback
// POSTed to /v1/feedback streams into internal/stream's sharded sink,
// and the configured models are refitted and auto-published as new
// engine versions on every interval — the serve→observe→retrain loop
// in one binary.
//
// Usage:
//
//	microserve -addr :8377
//	microserve -load pbm=/models/pbm.bin -load /models/micro.bin
//	microserve -default pbm -workers 8
//	microserve -online model=pbm,interval=30s
//	microserve -online model=sdbn+micro,interval=10s,decay=0.98,window=20000
//	microserve -online model=pbm -wal dir=/var/lib/microserve/wal
//	microserve -online model=pbm -wal dir=./wal,fsync=always,segment=64MB,retain=1h
//	microserve -online model=pbm -ratelimit rate=5000,burst=10000
//	microserve -trace-slow 50ms -trace-ring 256
//	microserve -debug-addr localhost:6060
//
// The -online spec is comma-separated key=value pairs: model (repeat
// or join with +), interval, window, decay, shards, queue, min, iters.
//
// The engine runs instrumented: stage-timing and per-model
// predicted-CTR histograms feed /metrics, and /healthz carries a
// drift block comparing each serving version's live CTR distribution
// against its publish-time baseline. Requests slower than -trace-slow
// (either protocol) are kept in a -trace-ring-sized ring served at
// GET /debug/traces. -debug-addr binds net/http/pprof on its own
// listener — profiling never shares the serving port.
//
// The -wal spec (requires -online) makes accepted feedback durable:
// events are logged to a segmented write-ahead log before the learner
// folds them, and replayed into the learner on the next boot. Keys:
// dir (required), fsync (always | off | interval=DURATION, default
// interval=100ms — the bounded-loss window of a kill -9), segment
// (rotation size, default 64MB), age (rotation age, default 10m),
// retain (prune sealed segments older than this; key it to the
// learner's decay window), max (total log byte budget).
//
// The -ratelimit spec throttles POST /v1/feedback per client
// (X-Client-ID header, else remote host): rate (events/s, required),
// burst (bucket depth, default 2x rate) and ttl (how long an idle
// client's bucket is remembered, default 10m). Over-budget requests
// get 429 with a Retry-After hint.
//
// Endpoints (see internal/server):
//
//	GET  /healthz
//	GET  /metrics
//	GET  /v1/models
//	POST /v1/score            {"model":"pbm","session":{...}} or {"lines":[...]}
//	POST /v1/score/batch      {"requests":[...]}
//	POST /v1/optimize         {"lines":[...],"candidates":[[...],...]} or {"lines":[...],"inventory":[...]}
//	POST /v1/feedback         {"sessions":[...],"snippets":[...]}
//	POST /v1/models/{name}/load      {"path":"/models/pbm-v2.bin"}
//	POST /v1/models/{name}/rollback
//	POST /v1/models/{name}/snapshot  {"path":"/models/pbm-online.bin"}
//	GET  /v1/models/{name}/snapshot  (ETag/If-None-Match replica sync)
//	GET  /debug/traces               (recent slow-request traces)
//
// The process drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/binproto"
	"repro/internal/stream"
	"repro/internal/wal"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("microserve: ")

	addr := flag.String("addr", ":8377", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scoring worker-pool size")
	defModel := flag.String("default", engine.NameMicro, "model served when a request names none")
	keep := flag.Int("keep", 8, "model versions kept per name (0 = unbounded)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	online := flag.String("online", "", "online learning spec, e.g. model=pbm,interval=30s (empty = serving only)")
	walSpec := flag.String("wal", "", "feedback WAL spec, e.g. dir=./wal,fsync=interval=100ms (requires -online; empty = no durability)")
	rateSpec := flag.String("ratelimit", "", "feedback rate-limit spec, e.g. rate=5000,burst=10000 (empty = unlimited)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = pprof off; never on the serving port)")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond, "capture requests at least this slow at /debug/traces (0 captures everything)")
	traceRing := flag.Int("trace-ring", 128, "slow-request traces retained (oldest overwritten)")
	var loads []string
	flag.Func("load", "snapshot artifact to serve, as name=path or path (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	engObs := &engine.Observer{}
	eng := engine.New(
		engine.WithWorkers(*workers),
		engine.WithDefaultModel(*defModel),
		engine.WithKeepVersions(*keep),
		engine.WithObserver(engObs),
	)
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "", spec // bare path: install under the artifact's own name
		}
		info, err := loadArtifact(eng, name, path)
		if err != nil {
			log.Fatalf("-load %s: %v", spec, err)
		}
		log.Printf("loaded %s from %s (%d params, source %s)", info.Ref(), path, info.Params, info.Source)
	}

	var opts []server.Option
	var learner *stream.Learner
	var feedbackLog *wal.WAL
	if *walSpec != "" && *online == "" {
		log.Fatal("-wal requires -online: the log exists to feed the learner")
	}
	if *online != "" {
		cfg, err := parseOnline(*online)
		if err != nil {
			log.Fatalf("-online %s: %v", *online, err)
		}
		cfg.Logger = log.Default()
		if *walSpec != "" {
			dir, walOpt, err := parseWAL(*walSpec)
			if err != nil {
				log.Fatalf("-wal %s: %v", *walSpec, err)
			}
			walOpt.Logger = log.Default()
			feedbackLog, err = wal.Open(dir, walOpt)
			if err != nil {
				log.Fatalf("-wal %s: %v", *walSpec, err)
			}
			cfg.WAL = feedbackLog
			opts = append(opts, server.WithWAL(feedbackLog))
		}
		learner, err = stream.New(eng, cfg)
		if err != nil {
			log.Fatalf("-online %s: %v", *online, err)
		}
		learner.Start()
		opts = append(opts, server.WithLearner(learner))
		log.Printf("online learning enabled: models %v, publish every %v", cfg.Models, cfg.Interval)
		if feedbackLog != nil {
			c := feedbackLog.Counters()
			log.Printf("feedback WAL open: fsync=%v, %d segments (%d bytes), replayed %d records (%d corrupt skipped, %d torn bytes truncated)",
				feedbackLog.Policy(), c.Segments, c.Bytes, c.Replayed, c.CorruptSkipped, c.TruncatedBytes)
		}
	}
	if *rateSpec != "" {
		rate, burst, ttl, err := parseRateLimit(*rateSpec)
		if err != nil {
			log.Fatalf("-ratelimit %s: %v", *rateSpec, err)
		}
		opts = append(opts, server.WithFeedbackRateLimit(rate, burst))
		if ttl != 0 {
			opts = append(opts, server.WithFeedbackClientTTL(ttl))
		}
		log.Printf("feedback rate limit: %.0f events/s per client, burst %d", rate, burst)
	}

	// One trace ring serves both protocols, so HTTP requests and MBSP
	// frames land in a single slow-request timeline.
	ring := obs.NewTraceRing(*traceRing, *traceSlow)
	binSrv := binproto.NewServer(eng, log.Default())
	binSrv.SetTracing(ring)
	opts = append(opts, server.WithTracing(ring), server.WithBinary(binSrv))

	srv := &http.Server{
		Handler:           server.New(eng, log.Default(), opts...),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// pprof only binds when asked, and only on its own listener: the
	// profiling surface never shares a port with serving traffic.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("-debug-addr %s: %v", *debugAddr, err)
		}
		go func() {
			log.Printf("pprof serving on %s", *debugAddr)
			if err := http.Serve(dln, dmux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
		defer dln.Close()
	}

	// One listener, two protocols: the mux sniffs each connection's
	// first bytes and routes MBSP frames to the binary scorer,
	// everything else to HTTP.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	mux := binproto.NewMux(ln, binSrv)

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (default model %q, %d workers, JSON + binary protocol)", *addr, *defModel, *workers)
		errc <- srv.Serve(mux)
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if learner != nil {
		learner.Close()
	}
	// The WAL closes after the learner: its final feedback may still be
	// appending. Close flushes, fsyncs and seals the manifest.
	if feedbackLog != nil {
		if err := feedbackLog.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("bye")
}

// parseOnline turns the -online spec (comma-separated key=value pairs)
// into a stream.Config. "model" may repeat or join names with '+'.
func parseOnline(spec string) (stream.Config, error) {
	var cfg stream.Config
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || val == "" {
			return cfg, fmt.Errorf("bad spec entry %q (want key=value)", part)
		}
		var err error
		switch key {
		case "model", "models":
			for _, m := range strings.Split(val, "+") {
				cfg.Models = append(cfg.Models, strings.TrimSpace(m))
			}
		case "interval":
			cfg.Interval, err = time.ParseDuration(val)
		case "window":
			cfg.Window, err = strconv.Atoi(val)
		case "decay":
			cfg.Decay, err = strconv.ParseFloat(val, 64)
		case "shards":
			cfg.Shards, err = strconv.Atoi(val)
		case "queue":
			cfg.QueueCap, err = strconv.Atoi(val)
		case "min":
			cfg.MinEvents, err = strconv.Atoi(val)
		case "iters":
			cfg.Iterations, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("unknown spec key %q (model, interval, window, decay, shards, queue, min, iters)", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("bad %s value %q: %v", key, val, err)
		}
	}
	if len(cfg.Models) == 0 {
		return cfg, fmt.Errorf("spec needs at least one model=NAME entry")
	}
	return cfg, nil
}

// parseWAL turns the -wal spec into a directory and wal.Options. The
// fsync value may itself contain '=' (fsync=interval=100ms): Cut on
// the first '=' of each comma part keeps the rest intact.
func parseWAL(spec string) (string, wal.Options, error) {
	var dir string
	var opt wal.Options
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || val == "" {
			return "", opt, fmt.Errorf("bad spec entry %q (want key=value)", part)
		}
		var err error
		switch key {
		case "dir":
			dir = val
		case "fsync":
			opt.Sync, opt.SyncInterval, err = parseFsync(val)
		case "segment":
			opt.SegmentBytes, err = parseSize(val)
		case "age":
			opt.SegmentAge, err = time.ParseDuration(val)
		case "retain":
			opt.Retention, err = time.ParseDuration(val)
		case "max":
			opt.MaxBytes, err = parseSize(val)
		default:
			return "", opt, fmt.Errorf("unknown spec key %q (dir, fsync, segment, age, retain, max)", key)
		}
		if err != nil {
			return "", opt, fmt.Errorf("bad %s value %q: %v", key, val, err)
		}
	}
	if dir == "" {
		return "", opt, fmt.Errorf("spec needs dir=PATH")
	}
	return dir, opt, nil
}

// parseFsync maps always | off | interval=DURATION to a sync policy.
func parseFsync(val string) (wal.SyncPolicy, time.Duration, error) {
	switch {
	case val == "always":
		return wal.SyncAlways, 0, nil
	case val == "off":
		return wal.SyncOff, 0, nil
	case strings.HasPrefix(val, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(val, "interval="))
		if err != nil {
			return 0, 0, err
		}
		if d <= 0 {
			return 0, 0, fmt.Errorf("interval must be positive")
		}
		return wal.SyncBatched, d, nil
	default:
		return 0, 0, fmt.Errorf("want always, off or interval=DURATION")
	}
}

// parseSize parses a byte count with an optional KB/MB/GB suffix
// (binary multiples).
func parseSize(val string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(val, "GB"):
		mult, val = 1<<30, strings.TrimSuffix(val, "GB")
	case strings.HasSuffix(val, "MB"):
		mult, val = 1<<20, strings.TrimSuffix(val, "MB")
	case strings.HasSuffix(val, "KB"):
		mult, val = 1<<10, strings.TrimSuffix(val, "KB")
	case strings.HasSuffix(val, "B"):
		val = strings.TrimSuffix(val, "B")
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("size must be positive")
	}
	return n * mult, nil
}

// parseRateLimit turns the -ratelimit spec into (events/s, burst,
// idle-client TTL). Burst defaults to 2x the rate: one batch of
// catch-up headroom. ttl=0 in the return means "use the server
// default".
func parseRateLimit(spec string) (float64, int, time.Duration, error) {
	var rate float64
	var burst int
	var ttl time.Duration
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || val == "" {
			return 0, 0, 0, fmt.Errorf("bad spec entry %q (want key=value)", part)
		}
		var err error
		switch key {
		case "rate":
			rate, err = strconv.ParseFloat(val, 64)
		case "burst":
			burst, err = strconv.Atoi(val)
		case "ttl":
			ttl, err = time.ParseDuration(val)
		default:
			return 0, 0, 0, fmt.Errorf("unknown spec key %q (rate, burst, ttl)", key)
		}
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bad %s value %q: %v", key, val, err)
		}
	}
	if rate <= 0 {
		return 0, 0, 0, fmt.Errorf("spec needs rate=EVENTS_PER_SEC > 0")
	}
	if burst <= 0 {
		burst = int(2 * rate)
	}
	return rate, burst, ttl, nil
}

// loadArtifact installs one snapshot file into the engine: v2
// artifacts are mapped read-only (O(1) load, page-cache shared across
// processes), v1 artifacts decode through the varint codec.
func loadArtifact(eng *engine.Engine, name, path string) (engine.ModelInfo, error) {
	info, err := eng.LoadSnapshotFile(name, path)
	if err != nil {
		return engine.ModelInfo{}, fmt.Errorf("loading %s: %w", path, err)
	}
	return info, nil
}
