// Command gencorpus generates a synthetic sponsored-search corpus (the
// ADCORPUS substitute) and optionally simulates serving to attach
// click/impression statistics.
//
// Usage:
//
//	gencorpus -groups 1000 -seed 7 -out corpus.jsonl
//	gencorpus -groups 1000 -simulate -impressions 1500 -out stats.jsonl
//	gencorpus -groups 1000 -model dbn -workers 8
//
// Without -simulate the output is one JSON adgroup per line with the
// creative texts and ground-truth phrase slots. With -simulate the
// output is one JSON adgroup per line with per-creative impressions and
// clicks from the micro-browsing user simulator.
//
// After writing, the corpus is scored through the unified engine with
// the -model scorer ("micro" scores every creative's snippet text; a
// macro registry name such as "pbm" is fitted on a simulated session
// log and scores held-out sessions) and a summary goes to stderr.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/adcorpus"
	"repro/internal/clickmodel"
	"repro/internal/engine"
	"repro/internal/serp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gencorpus: ")

	groups := flag.Int("groups", 1000, "number of adgroups")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output path ('-' for stdout)")
	simulate := flag.Bool("simulate", false, "simulate serving and emit stats-filled adgroups")
	impressions := flag.Int("impressions", 1500, "impressions per creative when simulating")
	rhs := flag.Bool("rhs", false, "simulate right-hand-side placement instead of top")
	model := flag.String("model", engine.NameMicro, "scoring model for the summary: micro or a registry click model")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scoring engine worker-pool size")
	flag.Parse()

	if *model != engine.NameMicro {
		if _, err := clickmodel.Lookup(*model); err != nil {
			log.Fatal(err)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	lex := adcorpus.DefaultLexicon()
	corpus := adcorpus.Generate(adcorpus.Config{Seed: *seed, Groups: *groups}, lex)

	placement := serp.Top
	if *rhs {
		placement = serp.RHS
	}
	sim := serp.New(serp.Config{Seed: *seed + 1, Impressions: *impressions, Placement: placement})

	if !*simulate {
		if err := corpus.SaveJSONL(w); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d adgroups", len(corpus.Groups))
		scoreSummary(corpus, sim, lex, *model, *workers)
		return
	}

	ags := sim.Run(corpus)

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var pairs int
	for i := range ags {
		if err := enc.Encode(&ags[i]); err != nil {
			log.Fatal(err)
		}
		pairs += len(ags[i].Pairs(1))
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gencorpus: wrote %d adgroups (%d labelled pairs) at %s placement\n",
		len(ags), pairs, placement)
	scoreSummary(corpus, sim, lex, *model, *workers)
}

// scoreSummary runs the generated corpus through the unified scoring
// engine and reports mean predicted CTR and throughput on stderr.
func scoreSummary(corpus *adcorpus.Corpus, sim *serp.Simulator, lex *adcorpus.Lexicon, model string, workers int) {
	ctx := context.Background()
	eng := engine.New(engine.WithWorkers(workers), engine.WithDefaultModel(model))

	var reqs []engine.Request
	if model == engine.NameMicro {
		eng.UseMicro(sim.TrueModel(lex))
		for gi := range corpus.Groups {
			for ci := range corpus.Groups[gi].Creatives {
				c := &corpus.Groups[gi].Creatives[ci]
				reqs = append(reqs, engine.Request{ID: c.ID, Lines: c.Lines})
			}
		}
	} else {
		sessions := sim.Sessions(corpus, 4000, 4)
		split := len(sessions) * 4 / 5
		if _, err := eng.Fit(model, sessions[:split]); err != nil {
			log.Fatal(err)
		}
		held := sessions[split:]
		for i := range held {
			reqs = append(reqs, engine.Request{Session: &held[i]})
		}
	}

	if len(reqs) == 0 {
		log.Printf("engine summary skipped: nothing to score")
		return
	}
	start := time.Now()
	mean, err := engine.MeanCTR(eng.ScoreBatch(ctx, reqs))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "gencorpus: engine scored %d requests with %q (%d workers) in %v (%.0f/s), mean predicted CTR %.4f\n",
		len(reqs), model, workers, elapsed.Round(time.Millisecond),
		float64(len(reqs))/elapsed.Seconds(), mean)
}
