// Command gencorpus generates a synthetic sponsored-search corpus (the
// ADCORPUS substitute) and optionally simulates serving to attach
// click/impression statistics.
//
// Usage:
//
//	gencorpus -groups 1000 -seed 7 -out corpus.jsonl
//	gencorpus -groups 1000 -simulate -impressions 1500 -out stats.jsonl
//
// Without -simulate the output is one JSON adgroup per line with the
// creative texts and ground-truth phrase slots. With -simulate the
// output is one JSON adgroup per line with per-creative impressions and
// clicks from the micro-browsing user simulator.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/adcorpus"
	"repro/internal/serp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gencorpus: ")

	groups := flag.Int("groups", 1000, "number of adgroups")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output path ('-' for stdout)")
	simulate := flag.Bool("simulate", false, "simulate serving and emit stats-filled adgroups")
	impressions := flag.Int("impressions", 1500, "impressions per creative when simulating")
	rhs := flag.Bool("rhs", false, "simulate right-hand-side placement instead of top")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	corpus := adcorpus.Generate(adcorpus.Config{Seed: *seed, Groups: *groups}, adcorpus.DefaultLexicon())

	if !*simulate {
		if err := corpus.SaveJSONL(w); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d adgroups", len(corpus.Groups))
		return
	}

	placement := serp.Top
	if *rhs {
		placement = serp.RHS
	}
	sim := serp.New(serp.Config{Seed: *seed + 1, Impressions: *impressions, Placement: placement})
	ags := sim.Run(corpus)

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var pairs int
	for i := range ags {
		if err := enc.Encode(&ags[i]); err != nil {
			log.Fatal(err)
		}
		pairs += len(ags[i].Pairs(1))
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gencorpus: wrote %d adgroups (%d labelled pairs) at %s placement\n",
		len(ags), pairs, placement)
}
