// Command loadgen replays simulated SERP traffic against a running
// microserve instance, driving the whole online loop end to end: the
// simulator's two-layer user model produces sessions (and optionally
// aggregated snippet feedback), loadgen batches them into POST
// /v1/feedback calls, and — with -score-every — mixes scoring reads in
// so the serving path and the learning path run concurrently, the way
// production traffic arrives.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8377 -sessions 20000
//	loadgen -sessions 50000 -batch 500 -workers 8 -snippets 2
//	loadgen -sessions 10000 -score-every 4   # 1 score batch per 4 feedback batches
//	loadgen -sessions 10000 -score-every 1 -proto binary   # score over MBSP frames
//	loadgen -sessions 10000 -optimize-every 2 -optimize-cands 128   # candidate-set traffic
//
// With -optimize-every, loadgen mixes POST /v1/optimize calls into the
// stream: each call is one query × N candidate snippets mixed-and-
// matched from one adgroup's creatives (the snippet-construction
// workload the amortised candidate-set path is built for).
//
// With -proto binary the score batches and optimize calls skip HTTP
// and JSON entirely: each worker holds one TCP connection to the same
// port speaking the length-prefixed MBSP framing
// (internal/server/binproto), which the server sniffs apart from HTTP
// by the first bytes. Feedback ingest stays on JSON either way — the
// binary protocol covers the hot scoring path only.
//
// At exit loadgen reports client-observed latency quantiles
// (p50/p95/p99) per traffic class — feedback, score, optimize — from
// the same log2-bucketed histograms the server uses (internal/obs),
// so client-side and /metrics numbers are directly comparable.
//
// The exit status is non-zero when the server rejects traffic for any
// reason other than saturation (429 counts as drops, not failure).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adcorpus"
	"repro/internal/clickmodel"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/serp"
	"repro/internal/server/binproto"
)

// Client-side latency histograms per traffic class, shared by the
// sender pool (obs.Histogram records are atomic). Samples are
// nanoseconds of full request round trips — including body drain, so
// the numbers line up with what a real caller experiences rather than
// with the server's own service-time histograms.
var feedbackLat, scoreLat, optimizeLat obs.Histogram

// latFor maps an HTTP job path to its latency class.
func latFor(path string) *obs.Histogram {
	switch path {
	case "/v1/feedback":
		return &feedbackLat
	case "/v1/optimize":
		return &optimizeLat
	default:
		return &scoreLat
	}
}

// printLatency reports one class's client-observed quantiles.
func printLatency(name string, h *obs.Histogram) {
	s := h.Snapshot()
	if s.Count == 0 {
		return
	}
	fmt.Printf("  %-8s n=%-6d p50=%.2fms p95=%.2fms p99=%.2fms mean=%.2fms\n",
		name, s.Count, s.Quantile(0.5)/1e6, s.Quantile(0.95)/1e6, s.Quantile(0.99)/1e6, s.Mean()/1e6)
}

// feedbackBody mirrors the server's /v1/feedback wire shape.
type feedbackBody struct {
	Sessions []clickmodel.Session `json:"sessions,omitempty"`
	Snippets []snippetEvent       `json:"snippets,omitempty"`
}

type snippetEvent struct {
	Lines       []string `json:"lines"`
	Impressions int      `json:"impressions"`
	Clicks      int      `json:"clicks"`
}

type feedbackReply struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
	Invalid  int `json:"invalid"`
}

type scoreBody struct {
	Requests []engine.Request `json:"requests"`
}

// optimizeBody mirrors the server's /v1/optimize wire shape.
type optimizeBody struct {
	Model      string     `json:"model,omitempty"`
	Query      string     `json:"query,omitempty"`
	Lines      []string   `json:"lines"`
	Candidates [][]string `json:"candidates"`
	MaxN       int        `json:"max_n,omitempty"`
	TopK       int        `json:"top_k,omitempty"`
}

// optimizeWorkload mixes-and-matches one adgroup's creative lines into
// a candidate set: the base is one creative verbatim, every candidate
// picks each line position from a random sibling. Candidates share
// lines heavily — the shape the candidate-set fast path amortises.
func optimizeWorkload(rng *rand.Rand, corpus *adcorpus.Corpus, n int) (query string, base []string, cands [][]string) {
	g := &corpus.Groups[rng.Intn(len(corpus.Groups))]
	base = g.Creatives[rng.Intn(len(g.Creatives))].Lines
	cands = make([][]string, n)
	for i := range cands {
		lines := make([]string, len(base))
		for j := range lines {
			c := &g.Creatives[rng.Intn(len(g.Creatives))]
			if j < len(c.Lines) {
				lines[j] = c.Lines[j]
			} else {
				lines[j] = base[j]
			}
		}
		cands[i] = lines
	}
	return g.Keyword, base, cands
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	addr := flag.String("addr", "http://127.0.0.1:8377", "microserve base URL")
	nSessions := flag.Int("sessions", 10000, "sessions to replay")
	batch := flag.Int("batch", 200, "sessions per feedback POST")
	snippets := flag.Int("snippets", 0, "snippet feedback events per batch (micro model fuel)")
	impressions := flag.Int("impressions", 50, "impressions aggregated into each snippet event")
	scoreEvery := flag.Int("score-every", 0, "POST one score batch per N feedback batches (0 = feedback only)")
	scoreModel := flag.String("score-model", "", "model reference for score traffic (empty = server default)")
	optimizeEvery := flag.Int("optimize-every", 0, "POST one /v1/optimize call per N feedback batches (0 = none)")
	optimizeCands := flag.Int("optimize-cands", 64, "candidate snippets per optimize call")
	optimizeModel := flag.String("optimize-model", "micro", "model reference for optimize traffic")
	proto := flag.String("proto", "json", "score traffic protocol: json (HTTP) or binary (MBSP frames on the same port)")
	workers := flag.Int("workers", 4, "concurrent HTTP senders")
	clients := flag.Int("clients", 1, "distinct X-Client-ID identities to spread traffic across (0 = no header)")
	groups := flag.Int("groups", 200, "adgroups backing the simulation")
	ads := flag.Int("ads", 4, "ads per session")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	binary := false
	switch *proto {
	case "json":
	case "binary":
		binary = true
	default:
		log.Fatalf("-proto %q: want json or binary", *proto)
	}
	// The binary protocol shares microserve's port; its dial target is
	// the base URL's host:port with the scheme stripped.
	binAddr := strings.TrimPrefix(strings.TrimPrefix(*addr, "http://"), "https://")
	binAddr = strings.TrimSuffix(binAddr, "/")

	corpus := adcorpus.Generate(adcorpus.Config{Seed: *seed, Groups: *groups}, adcorpus.DefaultLexicon())
	sim := serp.New(serp.Config{Seed: *seed + 1})

	client := &http.Client{Timeout: 30 * time.Second}
	var accepted, dropped, invalid, limited, scored, optimized, httpErrs atomic.Uint64

	// One generator feeds request bodies to the sender pool: the
	// simulator's rng is not safe for concurrent draws, and a single
	// producer keeps the replayed traffic deterministic per seed.
	type job struct {
		path   string
		client string // X-Client-ID header ("" = none)
		body   []byte
		reqs   []engine.Request          // binary score batch (path/body unused)
		opt    *binproto.OptimizeRequest // binary optimize call (path/body unused)
	}
	jobs := make(chan job, *workers)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker keeps one MBSP connection open for the run; the
			// client is synchronous, so per-worker ownership is the natural
			// concurrency unit.
			var bin *binproto.Client
			defer func() {
				if bin != nil {
					bin.Close()
				}
			}()
			for j := range jobs {
				if j.opt != nil {
					if bin == nil {
						var err error
						if bin, err = binproto.Dial(binAddr); err != nil {
							httpErrs.Add(1)
							log.Printf("binary dial %s: %v", binAddr, err)
							continue
						}
					}
					t0 := time.Now()
					res, err := bin.Optimize(*j.opt)
					optimizeLat.RecordSince(t0)
					if err != nil {
						httpErrs.Add(1)
						log.Printf("binary optimize: %v", err)
						bin.Close()
						bin = nil
						continue
					}
					if res.Err != "" {
						httpErrs.Add(1)
						log.Printf("binary optimize result: %s", res.Err)
						continue
					}
					optimized.Add(1)
					continue
				}
				if j.reqs != nil {
					if bin == nil {
						var err error
						if bin, err = binproto.Dial(binAddr); err != nil {
							httpErrs.Add(1)
							log.Printf("binary dial %s: %v", binAddr, err)
							continue
						}
					}
					t0 := time.Now()
					resps, err := bin.ScoreBatch(j.reqs)
					scoreLat.RecordSince(t0)
					if err != nil {
						httpErrs.Add(1)
						log.Printf("binary score: %v", err)
						bin.Close()
						bin = nil
						continue
					}
					ok := true
					for i := range resps {
						if resps[i].Error != "" {
							ok = false
							httpErrs.Add(1)
							log.Printf("binary score response: %s", resps[i].Error)
							break
						}
					}
					if ok {
						scored.Add(1)
					}
					continue
				}
				req, err := http.NewRequest(http.MethodPost, *addr+j.path, bytes.NewReader(j.body))
				if err != nil {
					log.Fatal(err)
				}
				req.Header.Set("Content-Type", "application/json")
				if j.client != "" {
					req.Header.Set("X-Client-ID", j.client)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					httpErrs.Add(1)
					log.Printf("%s: %v", j.path, err)
					continue
				}
				switch j.path {
				case "/v1/feedback":
					if resp.StatusCode == http.StatusTooManyRequests {
						// Rate-limited or saturated: both are backpressure,
						// count the batch as dropped and move on.
						limited.Add(1)
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						feedbackLat.RecordSince(t0)
						continue
					}
					var fr feedbackReply
					if err := json.NewDecoder(resp.Body).Decode(&fr); err == nil {
						accepted.Add(uint64(fr.Accepted))
						dropped.Add(uint64(fr.Dropped))
						invalid.Add(uint64(fr.Invalid))
					}
					if resp.StatusCode != http.StatusOK {
						httpErrs.Add(1)
						log.Printf("feedback status %d", resp.StatusCode)
					}
				case "/v1/optimize":
					io.Copy(io.Discard, resp.Body)
					if resp.StatusCode != http.StatusOK {
						httpErrs.Add(1)
						log.Printf("optimize status %d", resp.StatusCode)
					} else {
						optimized.Add(1)
					}
				default:
					io.Copy(io.Discard, resp.Body)
					if resp.StatusCode != http.StatusOK {
						httpErrs.Add(1)
						log.Printf("%s status %d", j.path, resp.StatusCode)
					} else {
						scored.Add(1)
					}
				}
				resp.Body.Close()
				latFor(j.path).RecordSince(t0)
			}
		}()
	}

	start := time.Now()
	optRng := rand.New(rand.NewSource(*seed + 2))
	sent, batches := 0, 0
	for sent < *nSessions {
		n := *batch
		if left := *nSessions - sent; n > left {
			n = left
		}
		fb := feedbackBody{Sessions: make([]clickmodel.Session, 0, n)}
		for i := 0; i < n; i++ {
			fb.Sessions = append(fb.Sessions, sim.Session(corpus, *ads))
		}
		for i := 0; i < *snippets; i++ {
			lines, clicks := sim.SnippetFeedback(corpus, *impressions)
			fb.Snippets = append(fb.Snippets, snippetEvent{Lines: lines, Impressions: *impressions, Clicks: clicks})
		}
		body, err := json.Marshal(fb)
		if err != nil {
			log.Fatal(err)
		}
		id := ""
		if *clients > 0 {
			id = fmt.Sprintf("loadgen-%d", batches%*clients)
		}
		jobs <- job{path: "/v1/feedback", client: id, body: body}
		sent += n
		batches++

		if *optimizeEvery > 0 && batches%*optimizeEvery == 0 {
			query, base, cands := optimizeWorkload(optRng, corpus, *optimizeCands)
			if binary {
				jobs <- job{opt: &binproto.OptimizeRequest{
					ID: fmt.Sprintf("opt-%d", batches), Model: *optimizeModel,
					MaxN: 2, Lines: base, Candidates: cands,
				}}
			} else {
				body, err := json.Marshal(optimizeBody{
					Model: *optimizeModel, Query: query, Lines: base,
					Candidates: cands, MaxN: 2, TopK: 5,
				})
				if err != nil {
					log.Fatal(err)
				}
				jobs <- job{path: "/v1/optimize", client: id, body: body}
			}
		}

		if *scoreEvery > 0 && batches%*scoreEvery == 0 {
			reqs := make([]engine.Request, 0, n)
			for i := range fb.Sessions {
				reqs = append(reqs, engine.Request{Model: *scoreModel, Session: &fb.Sessions[i]})
			}
			if binary {
				jobs <- job{reqs: reqs}
			} else {
				body, err := json.Marshal(scoreBody{Requests: reqs})
				if err != nil {
					log.Fatal(err)
				}
				jobs <- job{path: "/v1/score/batch", client: id, body: body}
			}
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	rate := float64(sent) / elapsed.Seconds()
	fmt.Printf("replayed %d sessions in %v (%.0f sessions/s): accepted %d, dropped %d, invalid %d, rate-limited batches %d, score batches %d, optimize calls %d\n",
		sent, elapsed.Round(time.Millisecond), rate, accepted.Load(), dropped.Load(), invalid.Load(), limited.Load(), scored.Load(), optimized.Load())
	fmt.Printf("client-observed latency (score/optimize over %s):\n", *proto)
	printLatency("feedback", &feedbackLat)
	printLatency("score", &scoreLat)
	printLatency("optimize", &optimizeLat)
	if httpErrs.Load() > 0 {
		log.Printf("%d transport/status errors", httpErrs.Load())
		os.Exit(1)
	}
}
