// Command experiments reproduces the paper's evaluation artifacts —
// Table 2 (feature ablation), Figure 3 (learned term position weights)
// and Table 4 (top vs RHS placement) — on the synthetic ADCORPUS, and
// adds an engine-backed CTR-prediction report (-run ctr) comparing a
// registry-selected macro click model against the micro-browsing
// scorer on the same simulated traffic.
//
// Usage:
//
//	experiments [-run table2|figure3|table4|ctr|all] [-groups N]
//	            [-impressions N] [-folds K] [-seed S]
//	            [-model NAME] [-workers N] [-iters N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/adcorpus"
	"repro/internal/clickmodel"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/serp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	run := flag.String("run", "all", "experiment to run: table2, figure3, table4, ctr or all")
	groups := flag.Int("groups", 0, "adgroups in the synthetic corpus (default 1200)")
	impressions := flag.Int("impressions", 0, "impressions per creative (default 4000)")
	folds := flag.Int("folds", 0, "cross-validation folds (default 10)")
	seed := flag.Int64("seed", 0, "base random seed (default 2019)")
	model := flag.String("model", "pbm", "macro click model for -run ctr (registry name)")
	iters := flag.Int("iters", 0, "EM iterations for -run ctr iterative models (0 = model default)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scoring engine worker-pool size")
	flag.Parse()

	// Validate the model name up front, whatever the run: a typo in a
	// config string should fail before minutes of corpus building.
	if _, err := clickmodel.Lookup(*model); err != nil {
		log.Fatal(err)
	}

	setup := experiments.DefaultSetup()
	if *groups > 0 {
		setup.Groups = *groups
	}
	if *impressions > 0 {
		setup.Impressions = *impressions
	}
	if *folds > 0 {
		setup.Folds = *folds
	}
	if *seed != 0 {
		setup.Seed = *seed
	}

	start := time.Now()
	switch *run {
	case "table2":
		res, err := experiments.Table2(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable2(res))
	case "figure3":
		fig, err := experiments.Figure3(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFigure3(fig))
	case "table4":
		rows, err := experiments.Table4(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable4(rows))
	case "ctr":
		runCTR(setup, *model, *workers, *iters)
	case "all":
		res, err := experiments.Table2(setup)
		if err != nil {
			log.Fatal(err)
		}
		fig, err := experiments.Figure3(setup)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := experiments.Table4(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatSummary(res, fig, rows))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
}

// runCTR is the unified-engine report: the same simulated traffic
// scored at both browsing levels — the named macro model over held-out
// sessions, and the ground-truth micro-browsing model over the
// creatives those sessions showed.
func runCTR(setup experiments.Setup, model string, workers, iters int) {
	ctx := context.Background()
	lex := adcorpus.DefaultLexicon()
	corpus := adcorpus.Generate(adcorpus.Config{Seed: setup.Seed, Groups: setup.Groups}, lex)
	sim := serp.New(serp.Config{Seed: setup.Seed + 1})
	sessions := sim.Sessions(corpus, 20000, 4)
	split := len(sessions) * 4 / 5
	train, test := sessions[:split], sessions[split:]

	eng := engine.New(engine.WithWorkers(workers), engine.WithDefaultModel(model))
	eng.UseMicro(sim.TrueModel(lex))

	fitted, err := eng.Fit(model, train, engine.Iterations(iters))
	if err != nil {
		log.Fatal(err)
	}
	ev := clickmodel.Evaluate(fitted, test)

	// Macro: held-out sessions through the batch API.
	macroReqs := make([]engine.Request, len(test))
	for i := range test {
		macroReqs[i] = engine.Request{Session: &test[i]}
	}
	macroStart := time.Now()
	pCTR, err := engine.MeanCTR(eng.ScoreBatch(ctx, macroReqs))
	if err != nil {
		log.Fatal(err)
	}
	macroElapsed := time.Since(macroStart)

	var clicks, positions float64
	for _, s := range test {
		for _, c := range s.Clicks {
			positions++
			if c {
				clicks++
			}
		}
	}

	// Micro: every creative of the corpus through the same API.
	var microReqs []engine.Request
	for gi := range corpus.Groups {
		for ci := range corpus.Groups[gi].Creatives {
			c := &corpus.Groups[gi].Creatives[ci]
			microReqs = append(microReqs, engine.Request{ID: c.ID, Model: engine.NameMicro, Lines: c.Lines})
		}
	}
	microStart := time.Now()
	microCTR, err := engine.MeanCTR(eng.ScoreBatch(ctx, microReqs))
	if err != nil {
		log.Fatal(err)
	}
	microElapsed := time.Since(microStart)

	fmt.Printf("engine CTR report (%d workers)\n", workers)
	fmt.Printf("  macro model %-8s mean pCTR %.4f | empirical %.4f | perplexity %.4f | %d sessions in %v (%.0f/s)\n",
		fitted.Name(), pCTR, clicks/positions, ev.Perplexity,
		len(macroReqs), macroElapsed.Round(time.Millisecond),
		float64(len(macroReqs))/macroElapsed.Seconds())
	fmt.Printf("  micro model %-8s mean pCTR %.4f (examined-impression CTR) | %d creatives in %v (%.0f/s)\n",
		"micro", microCTR, len(microReqs), microElapsed.Round(time.Millisecond),
		float64(len(microReqs))/microElapsed.Seconds())
}
