// Command experiments reproduces the paper's evaluation artifacts —
// Table 2 (feature ablation), Figure 3 (learned term position weights)
// and Table 4 (top vs RHS placement) — on the synthetic ADCORPUS.
//
// Usage:
//
//	experiments [-run table2|figure3|table4|all] [-groups N]
//	            [-impressions N] [-folds K] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	run := flag.String("run", "all", "experiment to run: table2, figure3, table4 or all")
	groups := flag.Int("groups", 0, "adgroups in the synthetic corpus (default 1200)")
	impressions := flag.Int("impressions", 0, "impressions per creative (default 4000)")
	folds := flag.Int("folds", 0, "cross-validation folds (default 10)")
	seed := flag.Int64("seed", 0, "base random seed (default 2019)")
	flag.Parse()

	setup := experiments.DefaultSetup()
	if *groups > 0 {
		setup.Groups = *groups
	}
	if *impressions > 0 {
		setup.Impressions = *impressions
	}
	if *folds > 0 {
		setup.Folds = *folds
	}
	if *seed != 0 {
		setup.Seed = *seed
	}

	start := time.Now()
	switch *run {
	case "table2":
		res, err := experiments.Table2(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable2(res))
	case "figure3":
		fig, err := experiments.Figure3(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatFigure3(fig))
	case "table4":
		rows, err := experiments.Table4(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatTable4(rows))
	case "all":
		res, err := experiments.Table2(setup)
		if err != nil {
			log.Fatal(err)
		}
		fig, err := experiments.Figure3(setup)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := experiments.Table4(setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatSummary(res, fig, rows))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
}
