// Command snippetclf trains and cross-validates one snippet classifier
// variant (M1–M6) on a freshly simulated corpus, printing the paper's
// metrics (recall / precision / F-measure) plus accuracy and AUC.
//
// Usage:
//
//	snippetclf -model M6 -groups 1200 -impressions 1500 -folds 10
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/classifier"
	"repro/internal/experiments"
	"repro/internal/serp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snippetclf: ")

	model := flag.String("model", "M6", "classifier variant: M1..M6")
	groups := flag.Int("groups", 800, "adgroups in the evaluation corpus")
	impressions := flag.Int("impressions", 800, "impressions per creative")
	folds := flag.Int("folds", 10, "cross-validation folds")
	seed := flag.Int64("seed", 2019, "base random seed")
	rhs := flag.Bool("rhs", false, "simulate right-hand-side placement instead of top")
	flag.Parse()

	var spec classifier.ModelSpec
	found := false
	for _, s := range classifier.Specs() {
		if s.Name == *model {
			spec = s
			found = true
		}
	}
	if !found {
		log.Fatalf("unknown model %q (want M1..M6)", *model)
	}

	setup := experiments.Setup{
		Seed:        *seed,
		Groups:      *groups,
		Impressions: *impressions,
		Folds:       *folds,
	}
	if *rhs {
		setup.Placement = serp.RHS
	}

	start := time.Now()
	data := experiments.BuildData(setup)
	log.Printf("corpus: %d labelled pairs, stats DB with %d features (built in %v)",
		len(data.Pairs), data.DB.Len(), time.Since(start).Round(time.Millisecond))

	res, err := classifier.CrossValidate(spec, data.Pairs, data.DB, *folds, *seed+2, classifier.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %s\n", spec.Name, spec.Description)
	fmt.Printf("  instances:     %d\n", res.Instances)
	fmt.Printf("  rel features:  %d\n", res.RelFeatures)
	if spec.UsePosition {
		fmt.Printf("  pos features:  %d\n", res.PosFeatures)
	}
	fmt.Printf("  recall:        %.1f%%\n", res.Mean.Recall*100)
	fmt.Printf("  precision:     %.1f%%\n", res.Mean.Precision*100)
	fmt.Printf("  f-measure:     %.3f\n", res.Mean.F1)
	fmt.Printf("  accuracy:      %.1f%%\n", res.Mean.Accuracy*100)
	fmt.Printf("  auc:           %.3f\n", res.Mean.AUC)
	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
}
