// Command snippetclf trains and cross-validates one model on a freshly
// simulated corpus. -model resolves in two namespaces:
//
//   - M1..M6 select a snippet classifier variant (Table 2 ablations),
//     reporting the paper's metrics (recall / precision / F-measure)
//     plus accuracy and AUC;
//   - any click-model registry name (pbm, cascade, dcm, ubm, bbm, ccm,
//     dbn, sdbn, gcm, sum) fits that macro model on sessions simulated
//     from the same corpus and reports held-out perplexity plus
//     engine-predicted CTR through the unified scoring engine.
//
// Usage:
//
//	snippetclf -model M6 -groups 1200 -impressions 1500 -folds 10
//	snippetclf -model pbm -groups 800 -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"repro/internal/adcorpus"
	"repro/internal/classifier"
	"repro/internal/clickmodel"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/serp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snippetclf: ")

	model := flag.String("model", "M6", "classifier variant M1..M6, or a click-model registry name")
	groups := flag.Int("groups", 800, "adgroups in the evaluation corpus")
	impressions := flag.Int("impressions", 800, "impressions per creative")
	folds := flag.Int("folds", 10, "cross-validation folds")
	seed := flag.Int64("seed", 2019, "base random seed")
	rhs := flag.Bool("rhs", false, "simulate right-hand-side placement instead of top")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scoring engine worker-pool size")
	flag.Parse()

	setup := experiments.Setup{
		Seed:        *seed,
		Groups:      *groups,
		Impressions: *impressions,
		Folds:       *folds,
	}
	if *rhs {
		setup.Placement = serp.RHS
	}

	// Resolve -model: classifier spec names first, then the click-model
	// registry.
	for _, s := range classifier.Specs() {
		if strings.EqualFold(s.Name, *model) {
			runClassifier(s, setup, *folds, *seed)
			return
		}
	}
	if _, err := clickmodel.Lookup(*model); err != nil {
		specs := make([]string, 0, len(classifier.Specs()))
		for _, s := range classifier.Specs() {
			specs = append(specs, s.Name)
		}
		log.Fatalf("unknown model %q (classifiers: %s; click models: %s)",
			*model, strings.Join(specs, ", "), strings.Join(clickmodel.Names(), ", "))
	}
	runClickModel(*model, setup, *workers)
}

// runClassifier is the paper's Table-2 path: cross-validate one
// ablation variant.
func runClassifier(spec classifier.ModelSpec, setup experiments.Setup, folds int, seed int64) {
	start := time.Now()
	data := experiments.BuildData(setup)
	log.Printf("corpus: %d labelled pairs, stats DB with %d features (built in %v)",
		len(data.Pairs), data.DB.Len(), time.Since(start).Round(time.Millisecond))

	res, err := classifier.CrossValidate(spec, data.Pairs, data.DB, folds, seed+2, classifier.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %s\n", spec.Name, spec.Description)
	fmt.Printf("  instances:     %d\n", res.Instances)
	fmt.Printf("  rel features:  %d\n", res.RelFeatures)
	if spec.UsePosition {
		fmt.Printf("  pos features:  %d\n", res.PosFeatures)
	}
	fmt.Printf("  recall:        %.1f%%\n", res.Mean.Recall*100)
	fmt.Printf("  precision:     %.1f%%\n", res.Mean.Precision*100)
	fmt.Printf("  f-measure:     %.3f\n", res.Mean.F1)
	fmt.Printf("  accuracy:      %.1f%%\n", res.Mean.Accuracy*100)
	fmt.Printf("  auc:           %.3f\n", res.Mean.AUC)
	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
}

// runClickModel is the macro path: fit the named registry model on
// sessions simulated from the same corpus and score the held-out log
// through the engine.
func runClickModel(name string, setup experiments.Setup, workers int) {
	start := time.Now()
	corpus := adcorpus.Generate(adcorpus.Config{Seed: setup.Seed, Groups: setup.Groups}, adcorpus.DefaultLexicon())
	sim := serp.New(serp.Config{Seed: setup.Seed + 1, Placement: setup.Placement})
	sessions := sim.Sessions(corpus, 20000, 4)
	split := len(sessions) * 4 / 5
	train, test := sessions[:split], sessions[split:]
	log.Printf("corpus: %d sessions (%d train / %d test) at %s placement",
		len(sessions), len(train), len(test), setup.Placement)

	eng := engine.New(engine.WithWorkers(workers), engine.WithDefaultModel(name))
	fitted, err := eng.Fit(name, train)
	if err != nil {
		log.Fatal(err)
	}
	ev := clickmodel.Evaluate(fitted, test)

	reqs := make([]engine.Request, len(test))
	for i := range test {
		reqs[i] = engine.Request{Session: &test[i]}
	}
	pCTR, err := engine.MeanCTR(eng.ScoreBatch(context.Background(), reqs))
	if err != nil {
		log.Fatal(err)
	}

	var clicks, positions float64
	for _, s := range test {
		for _, c := range s.Clicks {
			positions++
			if c {
				clicks++
			}
		}
	}

	fmt.Printf("%s: macro click model (unified engine, %d workers)\n", fitted.Name(), workers)
	fmt.Printf("  sessions:       %d held out\n", ev.Sessions)
	fmt.Printf("  mean LL:        %.4f\n", ev.LogLikelihood)
	fmt.Printf("  perplexity:     %.4f\n", ev.Perplexity)
	fmt.Printf("  mean pCTR:      %.4f\n", pCTR)
	fmt.Printf("  empirical CTR:  %.4f\n", clicks/positions)
	log.Printf("done in %v", time.Since(start).Round(time.Millisecond))
}
