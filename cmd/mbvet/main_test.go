package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildMbvet compiles the mbvet binary once per test run.
func buildMbvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mbvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mbvet: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolHandshake pins the cmd/go tool protocol: -V=full prints
// the version line, -flags prints a flag list.
func TestVettoolHandshake(t *testing.T) {
	bin := buildMbvet(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(out), "mbvet version v") {
		t.Fatalf("-V=full printed %q, want a 'mbvet version vX' line", out)
	}
	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags printed %q, want []", out)
	}
}

// TestGoVetDrivesMbvet runs the real thing: `go vet -vettool` over a
// module package (clean) and over a scratch module seeded with a
// durability bug (must fail with a durerr diagnostic).
func TestGoVetDrivesMbvet(t *testing.T) {
	bin := buildMbvet(t)

	clean := exec.Command("go", "vet", "-vettool="+bin, "./internal/mmap")
	clean.Dir = "../.." // module root
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}

	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratchvet\n\ngo 1.24\n",
		"main.go": `package main

import "os"

func main() {
	f, err := os.Create("x")
	if err != nil {
		return
	}
	f.Sync()
	_ = f.Close()
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dirty := exec.Command("go", "vet", "-vettool="+bin, ".")
	dirty.Dir = dir
	out, err := dirty.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed a module with an unchecked Sync:\n%s", out)
	}
	if !strings.Contains(string(out), "durerr") || !strings.Contains(string(out), "Sync") {
		t.Fatalf("diagnostic should name durerr and Sync, got:\n%s", out)
	}
}
