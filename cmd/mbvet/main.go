// Command mbvet is the repo's invariant checker: a multichecker over
// the five analyzers in internal/analysis/suite. It runs two ways:
//
// Standalone, over packages in the current module:
//
//	go run ./cmd/mbvet ./...
//	mbvet -tests=false ./internal/engine
//
// As a vet tool, driven by cmd/go's unitchecker protocol (per-package
// vet.cfg files, caching, -V=full handshake):
//
//	go build -o bin/mbvet ./cmd/mbvet
//	go vet -vettool=$(pwd)/bin/mbvet ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := suite.All()

	// cmd/go vettool handshake: -V=full must print "name version vX".
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println("mbvet version v1.0.0")
		return 0
	}
	// cmd/go asks which flags the tool accepts; we add none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	// Unitchecker mode: single *.cfg argument from cmd/go.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.Unitchecker(args[0], analyzers)
	}

	fs := flag.NewFlagSet("mbvet", flag.ExitOnError)
	tests := fs.Bool("tests", true, "also analyze test files")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mbvet [-tests=false] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := analysis.Load(".", patterns, *tests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbvet: %v\n", err)
		return 2
	}
	exit := 0
	for _, u := range units {
		findings, err := analysis.RunAnalyzers(u, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbvet: %s: %v\n", u.Path, err)
			exit = 2
			continue
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f.String())
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}
