// Package microbrowsing is the public facade of this reproduction of
// "Micro-Browsing Models for Search Snippets" (Islam, Srikant, Basu;
// ICDE 2019). Its primary entry point is the unified scoring engine:
// a registry-backed, context-aware batch CTR API over both browsing
// levels of the paper.
//
//	eng := microbrowsing.NewEngine(
//		microbrowsing.WithWorkers(8),
//		microbrowsing.WithAttention(attention))
//	eng.Fit("pbm", trainSessions)           // macro model, by registry name
//	resps := eng.ScoreBatch(ctx, requests)  // concurrent, per-request errors
//
// A ScoreRequest selects its model by reference — "pbm" for the
// latest installed version, "pbm@3" to pin one (ClickModelNames lists
// the registry; "micro" is the micro-browsing model) — and carries
// either a Session (macro evidence: one ranked impression) or snippet
// Lines (micro evidence). Every scorer answers the same question — the
// probability of a click — through the one Scorer interface, so click
// models and the micro model are interchangeable estimators behind a
// config string.
//
// The engine is built for the train-offline / serve-online split:
// every install (Fit, Register, LoadSnapshot) publishes an immutable
// new version into a lock-free table, fitted models Save to
// self-describing binary artifacts and Load back (LoadClickModel,
// LoadMicroModel, Engine.LoadSnapshot), Rollback un-ships a bad
// artifact, and cmd/microserve is the HTTP front over exactly this
// surface. See internal/engine for the full contract and the README
// "Serving" section for the fit → snapshot → serve → hot-swap
// walkthrough.
//
// Around the engine, the facade re-exports the building blocks:
//
//   - the micro-browsing model itself (per-term relevance × per-position
//     attention, Eq. 3–8 of the paper) from internal/core;
//   - snippet/creative types and serve-weight bookkeeping from
//     internal/snippet;
//   - the classical macro click models (PBM, cascade, DCM, UBM, BBM,
//     CCM, DBN, SDBN, GCM) plus the post-click session utility model
//     (SUM) from internal/clickmodel, constructible by name through
//     the registry;
//   - the snippet classification framework with the paper's M1–M6
//     ablations from internal/classifier;
//   - the synthetic sponsored-search corpus and user simulator that
//     substitute for the paper's proprietary ADCORPUS, from
//     internal/adcorpus and internal/serp;
//   - the experiment harness regenerating Table 2, Figure 3 and
//     Table 4 from internal/experiments.
//
// Two future-work directions from the paper's Section VI are also
// implemented: HMM-based eye-tracking studies (internal/gaze) and
// model-guided snippet optimisation (internal/optimize).
//
// See the examples/ directory for runnable walk-throughs and DESIGN.md
// for the system inventory.
package microbrowsing

import (
	"repro/internal/adcorpus"
	"repro/internal/classifier"
	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/featstats"
	"repro/internal/optimize"
	"repro/internal/serp"
	"repro/internal/snippet"
	"repro/internal/textproc"
)

// Unified scoring engine (the primary public API).
type (
	// Engine routes scoring requests to named, versioned scorers and
	// runs batches over a worker pool with context cancellation.
	Engine = engine.Engine
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// ScoreRequest is one CTR-prediction unit of work: a model
	// reference ("pbm", "pbm@3") plus macro (Session) or micro (Lines)
	// evidence.
	ScoreRequest = engine.Request
	// ScoreResponse is the outcome of scoring one request. Failures
	// travel as Err in process and as the Error string on the wire.
	ScoreResponse = engine.Response
	// Scorer is the unified scoring surface implemented by the click
	// model and micro-browsing adapters.
	Scorer = engine.Scorer
	// ModelInfo is the metadata of one installed model version
	// (Engine.Models, GET /v1/models).
	ModelInfo = engine.ModelInfo
	// EngineObserver is the engine's instrument block: stage-timing
	// histograms plus per-model predicted-CTR distribution tracking
	// (attach with WithObserver; see /metrics and /healthz drift).
	EngineObserver = engine.Observer
)

// ModelMicro is the reserved scorer name of the micro-browsing model.
const ModelMicro = engine.NameMicro

// Engine constructors and options.
var (
	// NewEngine returns a scoring engine; see WithWorkers,
	// WithAttention and WithDefaultModel.
	NewEngine = engine.New
	// WithWorkers sets the ScoreBatch worker-pool size.
	WithWorkers = engine.WithWorkers
	// WithAttention sets the attention layer of the engine's default
	// micro scorer.
	WithAttention = engine.WithAttention
	// WithDefaultModel sets the scorer used when a request names none.
	WithDefaultModel = engine.WithDefaultModel
	// WithKeepVersions bounds the version history kept per model name.
	WithKeepVersions = engine.WithKeepVersions
	// WithObserver attaches an EngineObserver, turning on stage timing
	// and per-model CTR distribution tracking.
	WithObserver = engine.WithObserver
	// NewClickModelScorer adapts a fitted macro click model to Scorer.
	NewClickModelScorer = engine.NewClickModelScorer
	// NewMicroScorer adapts a micro-browsing model to Scorer.
	NewMicroScorer = engine.NewMicroScorer
	// MicroModelFromStats builds a servable micro-browsing model from
	// a feature statistics database.
	MicroModelFromStats = engine.MicroFromStats
	// MeanCTR averages the headline CTR over a batch of responses,
	// surfacing the first per-request error.
	MeanCTR = engine.MeanCTR
)

// Click model registry: macro models are constructible by config
// string ("pbm", "cascade", ..., see ClickModelNames).
var (
	// RegisterClickModel adds a model factory under a new name.
	RegisterClickModel = clickmodel.Register
	// NewClickModel constructs a fresh, unfitted model by name.
	NewClickModel = clickmodel.New
	// LookupClickModel returns the factory registered under a name.
	LookupClickModel = clickmodel.Lookup
	// ClickModelNames lists the registered names in taxonomy order.
	ClickModelNames = clickmodel.Names
)

// Versioned model snapshots: fitted models serialize to
// self-describing binary artifacts (fit offline → Save → ship → Load
// into a serving engine; cmd/microserve hot-swaps them over HTTP).
type (
	// ClickModelSnapshotter is the Save/Load artifact contract every
	// built-in click model implements.
	ClickModelSnapshotter = clickmodel.Snapshotter
)

var (
	// LoadClickModel reads any click-model artifact, constructing the
	// model named in its header through the registry.
	LoadClickModel = clickmodel.LoadModel
	// LoadMicroModel reads a micro-browsing model artifact.
	LoadMicroModel = core.LoadModel
	// DecodeScorer reads any artifact — macro or micro — into a ready
	// Scorer plus the model name recorded in the header.
	DecodeScorer = engine.DecodeScorer
)

// Compiled session logs: CompileSessions interns a log once (queries
// and (query, doc) pairs to dense IDs, flat click/derived-state
// arrays); every built-in click model then fits from it via FitLog
// without re-hashing strings, with the E-step sharded over a worker
// pool. See the README "Performance" section.
type (
	// CompiledSessionLog is the interned, dense form of a session log.
	CompiledSessionLog = clickmodel.CompiledLog
	// SessionVocab interns strings to dense int32 IDs.
	SessionVocab = clickmodel.Vocab
	// ClickModelLogFitter is implemented by models fittable from a
	// CompiledSessionLog.
	ClickModelLogFitter = clickmodel.LogFitter
	// FitOption tunes a registry model before Engine.Fit trains it.
	FitOption = engine.FitOption
)

var (
	// CompileSessions validates and interns a session log for dense fits.
	CompileSessions = clickmodel.Compile
	// FitIterations is the Engine.Fit option setting EM iteration counts.
	FitIterations = engine.Iterations
)

// Micro-browsing model (the paper's contribution).
type (
	// Model is the micro-browsing model: per-term relevance plus an
	// attention layer over (line, position) micro-positions.
	Model = core.Model
	// Attention maps a micro-position to its examination probability.
	Attention = core.Attention
	// GeometricAttention is the parametric line-weight × positional
	// decay attention family.
	GeometricAttention = core.GeometricAttention
	// TableAttention holds explicit (possibly learned) position weights.
	TableAttention = core.TableAttention
	// FullAttention reads every term: the bag-of-terms degenerate case.
	FullAttention = core.FullAttention
	// RewritePair is a matched phrase rewrite between two snippets.
	RewritePair = core.RewritePair
	// Term is a positioned n-gram.
	Term = textproc.Term
)

// NewModel returns a micro-browsing model with the given attention.
func NewModel(att Attention) *Model { return core.NewModel(att) }

// ExtractTerms tokenises snippet lines into positioned n-grams (1..maxN).
func ExtractTerms(lines []string, maxN int) []Term {
	return textproc.ExtractTerms(lines, maxN)
}

// Snippets and creatives.
type (
	// Creative is a multi-line ad creative / snippet.
	Creative = snippet.Creative
	// CreativeStats holds click/impression counts.
	CreativeStats = snippet.Stats
	// CreativePair is a same-adgroup creative pair with serve weights.
	CreativePair = snippet.Pair
	// AdGroup groups alternative creatives for one keyword.
	AdGroup = snippet.AdGroup
)

// NewCreative builds a creative from up to three lines.
func NewCreative(id string, lines ...string) (Creative, error) {
	return snippet.New(id, lines...)
}

// Macro click models (Section II of the paper).
type (
	// ClickModel is a trainable macro browsing model.
	ClickModel = clickmodel.Model
	// Session is one query impression with its click pattern.
	Session = clickmodel.Session
	// ClickModelEvaluation aggregates log-likelihood and perplexity.
	ClickModelEvaluation = clickmodel.Evaluation
)

// AllClickModels returns a fresh instance of every macro model.
func AllClickModels() []ClickModel { return clickmodel.All() }

// EvaluateClickModel scores a fitted model on held-out sessions.
func EvaluateClickModel(m ClickModel, sessions []Session) ClickModelEvaluation {
	return clickmodel.Evaluate(m, sessions)
}

// Snippet classification framework (Figure 1, models M1–M6).
type (
	// ClassifierSpec selects one of the paper's ablation variants.
	ClassifierSpec = classifier.ModelSpec
	// ClassifierOptions tunes the learners.
	ClassifierOptions = classifier.Options
	// ClassifierResult is a cross-validated Table 2 row.
	ClassifierResult = classifier.Result
	// TrainedClassifier is a fitted snippet classifier.
	TrainedClassifier = classifier.Trained
	// StatsDB is the feature statistics database of Section V-C.
	StatsDB = featstats.DB
)

// The six ablation variants of Table 2.
var (
	M1 = classifier.M1
	M2 = classifier.M2
	M3 = classifier.M3
	M4 = classifier.M4
	M5 = classifier.M5
	M6 = classifier.M6
)

// ClassifierSpecs returns M1..M6 in Table 2 order.
func ClassifierSpecs() []ClassifierSpec { return classifier.Specs() }

// NewExtractor returns the phase-one feature extractor.
func NewExtractor() *classifier.Extractor { return classifier.NewExtractor() }

// NewPipeline returns the phase-two data generator for a spec.
func NewPipeline(spec ClassifierSpec, db *StatsDB) *classifier.Pipeline {
	return classifier.NewPipeline(spec, db)
}

// CrossValidateClassifier runs the paper's k-fold evaluation of a spec.
func CrossValidateClassifier(spec ClassifierSpec, pairs []CreativePair, db *StatsDB, k int, seed int64, opt ClassifierOptions) (ClassifierResult, error) {
	return classifier.CrossValidate(spec, pairs, db, k, seed, opt)
}

// Synthetic corpus and simulator (the ADCORPUS substitute).
type (
	// Corpus is the synthetic sponsored-search corpus.
	Corpus = adcorpus.Corpus
	// CorpusConfig controls corpus generation.
	CorpusConfig = adcorpus.Config
	// Lexicon is the phrase inventory with planted appeals.
	Lexicon = adcorpus.Lexicon
	// Simulator runs the two-layer (macro × micro) user model.
	Simulator = serp.Simulator
	// SimConfig controls the simulation.
	SimConfig = serp.Config
)

// Placements for the macro examination layer.
const (
	PlacementTop = serp.Top
	PlacementRHS = serp.RHS
)

// DefaultLexicon returns the built-in phrase inventory.
func DefaultLexicon() *Lexicon { return adcorpus.DefaultLexicon() }

// DefaultAttention returns the planted micro-attention curve used by
// the simulator — a sensible default attention layer for serving.
func DefaultAttention() GeometricAttention { return serp.DefaultAttention() }

// GenerateCorpus builds a deterministic synthetic ADCORPUS.
func GenerateCorpus(cfg CorpusConfig, lex *Lexicon) *Corpus {
	return adcorpus.Generate(cfg, lex)
}

// NewSimulator returns a user simulator.
func NewSimulator(cfg SimConfig) *Simulator { return serp.New(cfg) }

// Experiments (Table 2, Figure 3, Table 4).
type (
	// ExperimentSetup configures an experiment run.
	ExperimentSetup = experiments.Setup
	// Figure3Data holds learned per-line position weights.
	Figure3Data = experiments.Figure3Data
	// Table4Row is one top-vs-RHS accuracy row.
	Table4Row = experiments.Table4Row
)

// Experiment entry points.
var (
	DefaultExperimentSetup = experiments.DefaultSetup
	RunTable2              = experiments.Table2
	RunFigure3             = experiments.Figure3
	RunTable4              = experiments.Table4
	FormatTable2           = experiments.FormatTable2
	FormatFigure3          = experiments.FormatFigure3
	FormatTable4           = experiments.FormatTable4
)

// Snippet optimisation (the paper's "automatic generation of snippets"
// future work).
type (
	// Optimizer proposes model-guided creative improvements.
	Optimizer = optimize.Optimizer
	// OptimizerEdit is one proposed change.
	OptimizerEdit = optimize.Edit
	// OptimizerCandidate is a scored creative variant.
	OptimizerCandidate = optimize.Candidate
)

// NewOptimizer returns a snippet optimizer over an attention curve,
// term lift weights (log odds) and a phrase inventory.
func NewOptimizer(att Attention, weights map[string]float64, inventory []string) *Optimizer {
	return optimize.New(att, weights, inventory)
}
