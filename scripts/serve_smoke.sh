#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the fit → snapshot → serve →
# feedback → republish loop: build the three binaries, fit a small PBM
# and snapshot it, start microserve with the artifact, the online
# learner and the feedback WAL enabled, hit /healthz and /metrics,
# score through both browsing levels, rank candidate snippets through
# /v1/optimize (explicit candidates, server-side generation, and both
# wire protocols under loadgen), hot-swap the artifact a second
# time, replay simulated feedback with loadgen until a new model
# version auto-publishes, export it back to disk through the admin
# surface — then kill -9 the server, restart it on the same WAL
# directory, and require the replayed log to republish the online
# model with no fresh traffic before shutting down gracefully. Exits
# non-zero on any failed step. CI runs this; it is equally useful
# locally.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
addr="127.0.0.1:8389"
srv_pid=""
cleanup() {
  [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve_smoke: building binaries"
go build -o "$workdir/clickmodelfit" ./cmd/clickmodelfit
go build -o "$workdir/microserve" ./cmd/microserve
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "serve_smoke: fitting pbm and writing snapshot"
"$workdir/clickmodelfit" -sessions 1500 -groups 60 -model pbm -iters 3 -o "$workdir/pbm.bin" >/dev/null

echo "serve_smoke: starting microserve (online learning + WAL on)"
"$workdir/microserve" -addr "$addr" -load "pbm=$workdir/pbm.bin" \
  -online "model=sdbn+micro,interval=1s,min=100" \
  -wal "dir=$workdir/wal,fsync=interval=50ms" \
  -trace-slow 0 -trace-ring 64 \
  -ratelimit "rate=100000,burst=200000" >"$workdir/serve.log" 2>&1 &
srv_pid=$!

up=""
for _ in $(seq 100); do
  if curl -fs "http://$addr/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
if [ -z "$up" ]; then
  echo "serve_smoke: server never came up" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi

check() { # check <name> <got> <needle>
  case "$2" in
    *"$3"*) echo "serve_smoke: $1 ok" ;;
    *) echo "serve_smoke: $1 FAILED: $2" >&2; exit 1 ;;
  esac
}

check healthz "$(curl -fs "http://$addr/healthz")" '"status":"ok"'
check models "$(curl -fs "http://$addr/v1/models")" '"name":"pbm"'
check macro-score "$(curl -fs -X POST "http://$addr/v1/score" \
  -d '{"id":"s1","model":"pbm","session":{"query":"q","docs":["a","b","c"],"clicks":[false,false,false]}}')" '"model":"pbm"'
check micro-score "$(curl -fs -X POST "http://$addr/v1/score" \
  -d '{"id":"m1","lines":["Acme Air","Find cheap flights"]}')" '"model":"micro"'
check batch "$(curl -fs -X POST "http://$addr/v1/score/batch" \
  -d '{"requests":[{"id":"a","lines":["Find cheap flights"]}]}')" '"id":"a"'
check optimize "$(curl -fs -X POST "http://$addr/v1/optimize" \
  -d '{"id":"opt1","lines":["Acme Air","Find cheap flights"],"candidates":[["Acme Air","Find cheap flights to Rome"],["Acme Air"]],"top_k":1}')" '"best":'
check optimize-generate "$(curl -fs -X POST "http://$addr/v1/optimize" \
  -d '{"id":"opt2","lines":["Acme Air","Find cheap flights"],"inventory":["cheap flights to rome","book today"]}')" '"generated":'
check hot-swap "$(curl -fs -X POST "http://$addr/v1/models/pbm/load" \
  -d "{\"path\":\"$workdir/pbm.bin\"}")" '"version":2'
check rollback "$(curl -fs -X POST "http://$addr/v1/models/pbm/rollback" -d '{}')" '"version":1'

# --- v2 zero-parse round trip: conv → mmap load → parity → export ---
echo "serve_smoke: v2 zero-parse round trip"
score_ctr() {
  curl -fs -X POST "http://$addr/v1/score" \
    -d '{"id":"rt","model":"pbm","session":{"query":"q","docs":["a","b","c"],"clicks":[false,false,false]}}' \
    | sed -n 's/.*"ctr":\([0-9.eE+-]*\).*/\1/p'
}
base_ctr=$(score_ctr)
[ -n "$base_ctr" ] || { echo "serve_smoke: baseline score failed" >&2; exit 1; }
cp "$workdir/pbm.bin" "$workdir/pbm-v2.bin"
"$workdir/clickmodelfit" -conv "$workdir/pbm-v2.bin" >/dev/null 2>&1
[ "$(head -c 4 "$workdir/pbm-v2.bin")" = "MBS2" ] || { echo "serve_smoke: -conv did not produce a v2 artifact" >&2; exit 1; }
check v2-load "$(curl -fs -X POST "http://$addr/v1/models/pbm/load" \
  -d "{\"path\":\"$workdir/pbm-v2.bin\"}")" '"name":"pbm"'
v2_ctr=$(score_ctr)
if [ "$v2_ctr" != "$base_ctr" ]; then
  echo "serve_smoke: v2 score parity FAILED: v1 $base_ctr vs mapped $v2_ctr" >&2
  exit 1
fi
# Export the mapped model back out through the replica-sync surface:
# the bytes must be a v2 artifact, the ETag must round-trip as a 304,
# and reloading the export must preserve the score exactly.
curl -fs -D "$workdir/snap.hdr" -o "$workdir/pbm-exported.bin" "http://$addr/v1/models/pbm/snapshot"
etag=$(grep -i '^etag:' "$workdir/snap.hdr" | tr -d '\r' | cut -d' ' -f2)
[ -n "$etag" ] || { echo "serve_smoke: snapshot export carried no ETag" >&2; exit 1; }
code=$(curl -fs -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" "http://$addr/v1/models/pbm/snapshot")
[ "$code" = "304" ] || { echo "serve_smoke: If-None-Match $etag got $code, want 304" >&2; exit 1; }
[ "$(head -c 4 "$workdir/pbm-exported.bin")" = "MBS2" ] || { echo "serve_smoke: mapped export is not a v2 artifact" >&2; exit 1; }
check v2-reload "$(curl -fs -X POST "http://$addr/v1/models/pbm/load" \
  -d "{\"path\":\"$workdir/pbm-exported.bin\"}")" '"name":"pbm"'
reload_ctr=$(score_ctr)
if [ "$reload_ctr" != "$base_ctr" ]; then
  echo "serve_smoke: exported-artifact parity FAILED: $base_ctr vs $reload_ctr" >&2
  exit 1
fi
echo "serve_smoke: v2 round trip ok (ctr $base_ctr preserved across conv/export/reload)"

echo "serve_smoke: binary-protocol score + optimize traffic through the shared port"
"$workdir/loadgen" -addr "http://$addr" -sessions 400 -batch 100 -clients 2 \
  -score-every 1 -score-model pbm -optimize-every 2 -proto binary

echo "serve_smoke: replaying feedback traffic (with JSON optimize calls)"
"$workdir/loadgen" -addr "http://$addr" -sessions 2000 -batch 250 -snippets 2 \
  -clients 4 -score-every 2 -score-model pbm -optimize-every 4

published=""
for _ in $(seq 100); do
  models=$(curl -fs "http://$addr/v1/models")
  case "$models" in
    *'"name":"sdbn"'*'"source":"online"'*) published=1; break ;;
  esac
  sleep 0.1
done
if [ -z "$published" ]; then
  echo "serve_smoke: online model never auto-published" >&2
  curl -fs "http://$addr/healthz" >&2 || true
  cat "$workdir/serve.log" >&2
  exit 1
fi
echo "serve_smoke: online publish ok"

health=$(curl -fs "http://$addr/healthz")
check stream-counters "$health" '"publishes":'
optimizes=$(printf '%s' "$health" | sed -n 's/.*"optimizes":\([0-9]*\).*/\1/p')
if [ -z "$optimizes" ] || [ "$optimizes" -lt 4 ]; then
  echo "serve_smoke: only ${optimizes:-0} optimize calls counted (want the curl pair plus loadgen traffic)" >&2
  echo "$health" >&2
  exit 1
fi
echo "serve_smoke: optimize-counters ok ($optimizes calls)"
accepted=$(printf '%s' "$health" | sed -n 's/.*"accepted":\([0-9]*\).*/\1/p')
if [ -z "$accepted" ] || [ "$accepted" -lt 2000 ]; then
  echo "serve_smoke: stream accepted only ${accepted:-0} of the ~2016 replayed events" >&2
  echo "$health" >&2
  exit 1
fi
echo "serve_smoke: stream-accepted ok ($accepted events)"

check online-score "$(curl -fs -X POST "http://$addr/v1/score" \
  -d '{"id":"o1","model":"sdbn","session":{"query":"serp","docs":["a","b"],"clicks":[false,false]}}')" '"model":"sdbn"'

check snapshot-export "$(curl -fs -X POST "http://$addr/v1/models/sdbn/snapshot" \
  -d "{\"path\":\"$workdir/sdbn-online.bin\"}")" '"bytes":'
[ -s "$workdir/sdbn-online.bin" ] || { echo "serve_smoke: exported snapshot missing" >&2; exit 1; }
echo "serve_smoke: snapshot export ok"

check wal-counters "$health" '"wal":'
check ratelimit-counters "$health" '"ratelimit":'
check metrics "$(curl -fs "http://$addr/metrics")" 'microserve_wal_appended_total'

# --- observability: histograms, request IDs, traces, pprof gating ---
echo "serve_smoke: checking histogram exposition"
metrics=$(curl -fs "http://$addr/metrics")
for family in \
  microserve_http_request_duration_seconds \
  microserve_mbsp_frame_duration_seconds \
  microserve_engine_stage_duration_seconds \
  microserve_stream_stage_duration_seconds \
  microserve_wal_op_duration_seconds \
  microserve_model_predicted_ctr; do
  check "hist-$family" "$metrics" "# TYPE $family histogram"
  check "hist-$family-bucket" "$metrics" "${family}_bucket{"
done
check build-info "$metrics" 'microserve_build_info{go_version='
check uptime "$metrics" 'microserve_uptime_seconds'
check drift-gauge "$metrics" 'microserve_model_ctr_drift_l1{'

# The score-route histogram must have counted real traffic: its +Inf
# cumulative bucket carries a non-zero count.
score_inf=$(printf '%s\n' "$metrics" \
  | sed -n 's/^microserve_http_request_duration_seconds_bucket{route="score",le="+Inf"} \([0-9]*\)$/\1/p')
if [ -z "$score_inf" ] || [ "$score_inf" -lt 1 ]; then
  echo "serve_smoke: score route histogram empty (+Inf bucket ${score_inf:-missing})" >&2
  exit 1
fi
echo "serve_smoke: score-route histogram ok ($score_inf requests)"

echo "serve_smoke: checking request-ID propagation"
pinned=$(curl -fs -D - -o /dev/null -H "X-Request-ID: smoke-req-7" "http://$addr/healthz" \
  | tr -d '\r' | sed -n 's/^X-Request-Id: //Ip')
[ "$pinned" = "smoke-req-7" ] || { echo "serve_smoke: client request ID not echoed (got '$pinned')" >&2; exit 1; }
minted=$(curl -fs -D - -o /dev/null "http://$addr/healthz" \
  | tr -d '\r' | sed -n 's/^X-Request-Id: //Ip')
case "$minted" in
  mb-*) echo "serve_smoke: request-id ok (echo + minted $minted)" ;;
  *) echo "serve_smoke: server minted no X-Request-ID (got '$minted')" >&2; exit 1 ;;
esac

check traces "$(curl -fs "http://$addr/debug/traces")" '"enabled":true'
check traces-captured "$(curl -fs "http://$addr/debug/traces")" '"proto":"http"'

# pprof must never ride the serving port: it only binds when
# -debug-addr names a separate listener (checked after the restart).
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/pprof/")
[ "$code" = "404" ] || { echo "serve_smoke: pprof reachable on the serving port (got $code)" >&2; exit 1; }
echo "serve_smoke: observability ok"

# --- crash recovery: kill -9, restart on the same log, republish ---
# A last healthz read pins how much the WAL holds; the 50ms flush
# interval has long since passed, so every appended record is durable.
appended=$(curl -fs "http://$addr/healthz" | sed -n 's/.*"appended":\([0-9]*\).*/\1/p')
if [ -z "$appended" ] || [ "$appended" -lt 2000 ]; then
  echo "serve_smoke: WAL appended only ${appended:-0} records before the crash" >&2
  exit 1
fi
echo "serve_smoke: killing server with SIGKILL (wal holds $appended records)"
kill -9 "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=""

echo "serve_smoke: restarting on the surviving WAL (pprof sidecar on)"
debug_addr="127.0.0.1:8390"
"$workdir/microserve" -addr "$addr" -load "pbm=$workdir/pbm.bin" \
  -online "model=sdbn+micro,interval=1s,min=100" \
  -wal "dir=$workdir/wal,fsync=interval=50ms" \
  -debug-addr "$debug_addr" >"$workdir/serve2.log" 2>&1 &
srv_pid=$!
up=""
for _ in $(seq 100); do
  if curl -fs "http://$addr/healthz" >/dev/null 2>&1; then up=1; break; fi
  sleep 0.1
done
if [ -z "$up" ]; then
  echo "serve_smoke: server never came back after kill -9" >&2
  cat "$workdir/serve2.log" >&2
  exit 1
fi

replayed=$(curl -fs "http://$addr/healthz" | sed -n 's/.*"wal":{[^}]*"replayed":\([0-9]*\).*/\1/p')
if [ -z "$replayed" ] || [ "$replayed" -lt "$appended" ]; then
  echo "serve_smoke: replayed only ${replayed:-0} of $appended logged records" >&2
  curl -fs "http://$addr/healthz" >&2 || true
  cat "$workdir/serve2.log" >&2
  exit 1
fi
echo "serve_smoke: crash recovery ok ($replayed records replayed)"

# With -debug-addr set, pprof answers on the sidecar listener and the
# serving port still refuses it.
check pprof-sidecar "$(curl -fs "http://$debug_addr/debug/pprof/")" 'profiles'
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/pprof/")
[ "$code" = "404" ] || { echo "serve_smoke: pprof leaked onto the serving port (got $code)" >&2; exit 1; }
echo "serve_smoke: pprof gating ok"

# The replayed feedback alone — no fresh traffic — must republish the
# online model in the restarted process.
published=""
for _ in $(seq 100); do
  models=$(curl -fs "http://$addr/v1/models")
  case "$models" in
    *'"name":"sdbn"'*'"source":"online"'*) published=1; break ;;
  esac
  sleep 0.1
done
if [ -z "$published" ]; then
  echo "serve_smoke: replayed log never republished the online model" >&2
  curl -fs "http://$addr/healthz" >&2 || true
  cat "$workdir/serve2.log" >&2
  exit 1
fi
echo "serve_smoke: post-crash republish ok"

echo "serve_smoke: shutting down"
kill -TERM "$srv_pid"
for _ in $(seq 100); do
  kill -0 "$srv_pid" 2>/dev/null || { srv_pid=""; break; }
  sleep 0.1
done
if [ -n "$srv_pid" ]; then
  echo "serve_smoke: server did not shut down gracefully" >&2
  exit 1
fi
grep -q "bye" "$workdir/serve2.log" || { echo "serve_smoke: graceful shutdown log missing" >&2; exit 1; }
echo "serve_smoke: PASS"
