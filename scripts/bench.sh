#!/usr/bin/env bash
# bench.sh — run the click-model substrate benchmarks and append a run
# record to the bench trajectory file (BENCH_clickmodel.json).
#
# Usage:
#   scripts/bench.sh                 # full run (1s benchtime), append to BENCH_clickmodel.json
#   scripts/bench.sh -t 1x -o /tmp/s.json   # CI smoke: one iteration per bench
#   scripts/bench.sh -l "post-refactor"     # label the run
#
# The trajectory file is a JSON array of run records ordered oldest to
# newest; each record carries the environment and the parsed
# ns/op / B/op / allocs/op of every BenchmarkClickModel_* benchmark.
set -euo pipefail

cd "$(dirname "$0")/.."

benchtime="1s"
out="BENCH_clickmodel.json"
label=""
while getopts "t:o:l:h" opt; do
  case "$opt" in
    t) benchtime="$OPTARG" ;;
    o) out="$OPTARG" ;;
    l) label="$OPTARG" ;;
    h)
      sed -n '2,12p' "$0"
      exit 0
      ;;
    *) exit 2 ;;
  esac
done

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -bench=ClickModel -benchmem -run '^$' -benchtime "$benchtime" . | tee "$raw"

results=$(awk '
  /^BenchmarkClickModel/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $2, $3, $5, $7
    sep = ",\n"
  }
' "$raw")

if [ -z "$results" ]; then
  echo "bench.sh: no BenchmarkClickModel results parsed" >&2
  exit 1
fi

# json_escape backslashes and double quotes so free-form fields (the
# -l label in particular) cannot corrupt the trajectory file.
json_escape() {
  printf '%s' "$1" | sed 's/\\/\\\\/g; s/"/\\"/g'
}

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
goversion=$(go env GOVERSION)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
label=$(json_escape "$label")
benchtime_esc=$(json_escape "$benchtime")

entry=$(printf '  {\n    "date": "%s",\n    "commit": "%s",\n    "label": "%s",\n    "go": "%s",\n    "benchtime": "%s",\n    "results": [\n%s\n    ]\n  }' \
  "$date" "$commit" "$label" "$goversion" "$benchtime_esc" "$results")

if [ ! -s "$out" ]; then
  printf '[\n%s\n]\n' "$entry" > "$out"
else
  # The trajectory file ends with "]" on its own line; splice before it.
  if [ "$(tail -n 1 "$out")" != "]" ]; then
    echo "bench.sh: $out does not end with ']' — refusing to append" >&2
    exit 1
  fi
  tmp=$(mktemp)
  sed '$ d' "$out" > "$tmp"
  # Add a comma to the previous record's closing brace.
  sed -i '$ s/}$/},/' "$tmp"
  printf '%s\n]\n' "$entry" >> "$tmp"
  mv "$tmp" "$out"
fi

echo "bench.sh: appended run ($label) to $out"
