#!/usr/bin/env bash
# bench.sh — run one benchmark suite and append a run record to its
# trajectory file.
#
# Usage:
#   scripts/bench.sh                          # clickmodel suite -> BENCH_clickmodel.json
#   scripts/bench.sh -s engine                # engine read-path suite -> BENCH_engine.json
#   scripts/bench.sh -t 1x -o /tmp/s.json     # CI smoke: one iteration per bench
#   scripts/bench.sh -l "post-refactor"       # label the run
#
# Suites:
#   clickmodel — BenchmarkClickModel_* (fit substrate), BENCH_clickmodel.json
#   engine     — BenchmarkEngineScoreBatch/* (batch read path), BENCH_engine.json
#   micro      — BenchmarkMicroScore/* + BenchmarkExtractTermsPath/*
#                (compiled micro kernel vs map path), BENCH_engine.json
#   serve      — BenchmarkServeProtocol/* (JSON vs MBSP binary framing
#                over real TCP) + BenchmarkSnapshotLoad/* (v1 decode vs
#                v2 mmap at 1/10/100MB artifacts), BENCH_engine.json
#   optimize   — BenchmarkOptimizeCandidates/* (naive per-candidate
#                loop vs the amortised candidate-set pass vs the full
#                engine path at N=16/128/512), BENCH_optimize.json
#   stream     — BenchmarkStream* (online-loop ingest / fold / publish),
#                BENCH_stream.json
#   wal        — BenchmarkWAL* (feedback-log append per fsync policy,
#                ingest durability tax, boot replay), BENCH_wal.json
#   obs        — BenchmarkObs* (Histogram.Record primitive, serial and
#                contended, plus instrumented-vs-uninstrumented
#                ScoreBatch — the observability tax), BENCH_obs.json
#
# A trajectory file is a JSON array of run records ordered oldest to
# newest; each record carries the environment and the parsed
# ns/op / B/op / allocs/op (and req/s where reported) of every
# benchmark in the suite.
set -euo pipefail

cd "$(dirname "$0")/.."

benchtime="1s"
out=""
label=""
suite="clickmodel"
while getopts "s:t:o:l:h" opt; do
  case "$opt" in
    s) suite="$OPTARG" ;;
    t) benchtime="$OPTARG" ;;
    o) out="$OPTARG" ;;
    l) label="$OPTARG" ;;
    h)
      sed -n '2,28p' "$0"
      exit 0
      ;;
    *) exit 2 ;;
  esac
done

case "$suite" in
  clickmodel) pattern="ClickModel"; default_out="BENCH_clickmodel.json" ;;
  engine)     pattern="EngineScoreBatch"; default_out="BENCH_engine.json" ;;
  micro)      pattern="MicroScore|ExtractTermsPath"; default_out="BENCH_engine.json" ;;
  serve)      pattern="ServeProtocol|SnapshotLoad"; default_out="BENCH_engine.json" ;;
  optimize)   pattern="OptimizeCandidates"; default_out="BENCH_optimize.json" ;;
  stream)     pattern="Stream"; default_out="BENCH_stream.json" ;;
  wal)        pattern="WAL"; default_out="BENCH_wal.json" ;;
  obs)        pattern="Obs"; default_out="BENCH_obs.json" ;;
  *) echo "bench.sh: unknown suite $suite (clickmodel, engine, micro, serve, optimize, stream, wal, obs)" >&2; exit 2 ;;
esac
out="${out:-$default_out}"

# The wal suite prices an I/O path: pin its scratch space to tmpfs
# when available, so the trajectory tracks the code and not the
# backing device's day-to-day variance.
if [ "$suite" = "wal" ] && [ -d /dev/shm ] && [ -w /dev/shm ]; then
  export TMPDIR=/dev/shm
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -bench="$pattern" -benchmem -run '^$' -benchtime "$benchtime" . | tee "$raw"

# Parse benchmark lines by unit token, so extra ReportMetric columns
# (req/s) are picked up wherever they appear.
results=$(awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""; reqs = ""; sess = ""; cand = ""
    for (i = 3; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i-1)
      else if ($i == "B/op") bytes = $(i-1)
      else if ($i == "allocs/op") allocs = $(i-1)
      else if ($i == "req/s") reqs = $(i-1)
      else if ($i == "sessions/s") sess = $(i-1)
      else if ($i == "cand/s") cand = $(i-1)
    }
    if (ns == "") next
    extra = ""
    if (reqs != "") extra = sprintf(", \"req_per_s\": %s", reqs)
    if (sess != "") extra = extra sprintf(", \"sessions_per_s\": %s", sess)
    if (cand != "") extra = extra sprintf(", \"cand_per_s\": %s", cand)
    printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}", sep, name, $2, ns, bytes, allocs, extra
    sep = ",\n"
  }
' "$raw")

if [ -z "$results" ]; then
  echo "bench.sh: no results parsed for suite $suite (pattern $pattern)" >&2
  exit 1
fi

# json_escape backslashes and double quotes so free-form fields (the
# -l label in particular) cannot corrupt the trajectory file.
json_escape() {
  printf '%s' "$1" | sed 's/\\/\\\\/g; s/"/\\"/g'
}

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
goversion=$(go env GOVERSION)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
label=$(json_escape "$label")
benchtime_esc=$(json_escape "$benchtime")

entry=$(printf '  {\n    "date": "%s",\n    "commit": "%s",\n    "label": "%s",\n    "go": "%s",\n    "benchtime": "%s",\n    "results": [\n%s\n    ]\n  }' \
  "$date" "$commit" "$label" "$goversion" "$benchtime_esc" "$results")

if [ ! -s "$out" ]; then
  printf '[\n%s\n]\n' "$entry" > "$out"
else
  # The trajectory file ends with "]" on its own line; splice before it.
  if [ "$(tail -n 1 "$out")" != "]" ]; then
    echo "bench.sh: $out does not end with ']' — refusing to append" >&2
    exit 1
  fi
  tmp=$(mktemp)
  sed '$ d' "$out" > "$tmp"
  # Add a comma to the previous record's closing brace.
  sed -i '$ s/}$/},/' "$tmp"
  printf '%s\n]\n' "$entry" >> "$tmp"
  mv "$tmp" "$out"
fi

echo "bench.sh: appended run ($label) to $out"
