#!/usr/bin/env bash
# lint.sh — the repo's static gate: gofmt, go vet, mbvet (the custom
# invariant analyzers, driven through go vet's -vettool protocol so
# cmd/go handles package loading and caching), and — when the pinned
# tools are installed — staticcheck and govulncheck.
#
# Usage: scripts/lint.sh
# Exits nonzero on any finding. CI installs staticcheck/govulncheck
# with pinned versions; locally they are skipped with a notice if
# absent (the container has no network to fetch them).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== mbvet (invariant analyzers)"
mkdir -p bin
go build -o bin/mbvet ./cmd/mbvet
go vet -vettool="$(pwd)/bin/mbvet" ./... || fail=1

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./... || fail=1
else
  echo "staticcheck not installed; skipping (CI installs it pinned)"
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
  govulncheck ./... || fail=1
else
  echo "govulncheck not installed; skipping (CI installs it pinned)"
fi

exit "$fail"
