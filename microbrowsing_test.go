package microbrowsing_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	micro "repro"
	"repro/internal/classifier"
)

// TestFacadeEndToEnd walks the public API through the whole story: build
// a micro-browsing model, score snippets, simulate a corpus, train a
// classifier, and predict an unseen pair.
func TestFacadeEndToEnd(t *testing.T) {
	// 1. Hand-built micro-browsing model.
	model := micro.NewModel(micro.GeometricAttention{
		LineWeights: []float64{0.9, 0.6, 0.3},
		Decay:       0.8,
	})
	model.Relevance["find cheap"] = 0.85
	model.Relevance["learn more"] = 0.30

	r, err := micro.NewCreative("r", "Acme", "Find cheap flights", "Great rates")
	if err != nil {
		t.Fatal(err)
	}
	s, err := micro.NewCreative("s", "Acme", "Learn more flights", "Great rates")
	if err != nil {
		t.Fatal(err)
	}
	score := model.ScorePair(
		micro.ExtractTerms(r.Lines, 2),
		micro.ExtractTerms(s.Lines, 2))
	if score <= 0 {
		t.Errorf("snippet with the stronger hook should win: score %v", score)
	}

	// 2. Simulated corpus through the public constructors.
	corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 3, Groups: 250}, micro.DefaultLexicon())
	sim := micro.NewSimulator(micro.SimConfig{Seed: 4, Impressions: 600})
	groups := sim.Run(corpus)

	ex := micro.NewExtractor()
	pairs := ex.Pairs(groups)
	if len(pairs) == 0 {
		t.Fatal("no pairs from simulation")
	}
	db := ex.BuildDB(groups)

	// 3. Train M6 and score an unseen pair.
	pipe := micro.NewPipeline(micro.M6, db)
	ds := pipe.Dataset(pairs)
	trained, err := classifier.Train(ds, nil, micro.ClassifierOptions{Epochs: 30, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := trained.PredictPair(pipe, micro.CreativePair{R: r, S: s})
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Errorf("PredictPair = %v", p)
	}

	// 4. Click models through the facade registry.
	sessions := sim.Sessions(corpus, 2000, 4)
	pbm, err := micro.NewClickModel("pbm")
	if err != nil {
		t.Fatal(err)
	}
	pbm.(interface{ SetIterations(int) }).SetIterations(5)
	if err := pbm.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	ev := micro.EvaluateClickModel(pbm, sessions)
	if ev.Perplexity < 1 {
		t.Errorf("perplexity %v < 1", ev.Perplexity)
	}

	// 5. Snapshot round-trip through the facade: the fitted model
	// serializes and restores to identical predictions.
	var artifact bytes.Buffer
	if err := pbm.(micro.ClickModelSnapshotter).Save(&artifact); err != nil {
		t.Fatal(err)
	}
	restored, err := micro.LoadClickModel(&artifact)
	if err != nil {
		t.Fatal(err)
	}
	want, got := pbm.ClickProbs(sessions[0]), restored.ClickProbs(sessions[0])
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Errorf("pos %d: restored %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFacadeSpecs(t *testing.T) {
	specs := micro.ClassifierSpecs()
	if len(specs) != 6 || specs[0].Name != "M1" || specs[5].Name != "M6" {
		t.Errorf("ClassifierSpecs = %v", specs)
	}
	if len(micro.AllClickModels()) != 10 {
		t.Errorf("AllClickModels returned %d models, want 10", len(micro.AllClickModels()))
	}
}

// TestFacadeEngine exercises the unified scoring engine through the
// facade: registry-driven model selection, Fit, and a mixed macro +
// micro batch with the deprecated constructors nowhere in sight.
func TestFacadeEngine(t *testing.T) {
	names := micro.ClickModelNames()
	if len(names) != 10 || names[0] != "pbm" {
		t.Fatalf("ClickModelNames() = %v", names)
	}
	if _, err := micro.NewClickModel("no-such-model"); err == nil {
		t.Error("NewClickModel accepted an unknown name")
	}

	lex := micro.DefaultLexicon()
	corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 9, Groups: 150}, lex)
	sim := micro.NewSimulator(micro.SimConfig{Seed: 10})
	sessions := sim.Sessions(corpus, 2000, 4)

	eng := micro.NewEngine(micro.WithWorkers(2), micro.WithDefaultModel("sdbn"))
	eng.UseMicro(sim.TrueModel(lex))
	if _, err := eng.Fit("sdbn", sessions[:1500]); err != nil {
		t.Fatal(err)
	}

	c := &corpus.Groups[0].Creatives[0]
	reqs := []micro.ScoreRequest{
		{ID: "macro", Session: &sessions[1500]},
		{ID: "micro", Model: micro.ModelMicro, Lines: c.Lines},
	}
	resps := eng.ScoreBatch(context.Background(), reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("resp %d: %v", i, resp.Err)
		}
		if resp.CTR <= 0 || resp.CTR >= 1 {
			t.Errorf("resp %q: CTR %v outside (0,1)", resp.ID, resp.CTR)
		}
	}
	if len(resps[0].Positions) != 4 {
		t.Errorf("macro response has %d positions, want 4", len(resps[0].Positions))
	}
	if resps[1].Score >= 0 {
		t.Errorf("micro expected log-prob should be negative: %v", resps[1].Score)
	}
}

func TestFacadeCrossValidate(t *testing.T) {
	corpus := micro.GenerateCorpus(micro.CorpusConfig{Seed: 5, Groups: 200}, micro.DefaultLexicon())
	groups := micro.NewSimulator(micro.SimConfig{Seed: 6, Impressions: 600}).Run(corpus)
	ex := micro.NewExtractor()
	pairs := ex.Pairs(groups)
	db := ex.BuildDB(groups)
	res, err := micro.CrossValidateClassifier(micro.M1, pairs, db, 3, 1,
		micro.ClassifierOptions{Epochs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Accuracy <= 0.4 {
		t.Errorf("facade CV accuracy %v", res.Mean.Accuracy)
	}
}
