package core

// Candidate-set scoring: the /v1/optimize workload is one query × N
// candidate snippets that are edits of a common base, so candidates
// share almost all of their lines. ScoreSnippet pays tokenisation,
// vocab lookups and the attention×relevance walk per candidate;
// ScoreCandidates pays them per DISTINCT (line, line-number) pair —
// a candidate differing from the base in one line re-scores only that
// line, and the rest of its CTR/score is combined from cached per-line
// partials. Both the CTR (a product of per-term factors) and the
// expected score (a sum) factor exactly across lines, so the
// combination is lossless up to float re-association, which the parity
// suite pins at 1e-12 against the map model.

import (
	"math"

	"repro/internal/textproc"
)

// CandidateScore is one candidate's fused scoring result, the
// candidate-set analogue of ScoreSnippet's (ctr, score) pair.
type CandidateScore struct {
	// CTR is the exact Eq. 3 expectation Π (a·r + 1 − a).
	CTR float64
	// Score is the expected log-probability Σ a·log r whose pairwise
	// differences reproduce Eq. 5.
	Score float64
}

// candCacheLines bounds the per-line partial cache by line number:
// snippets are at most a handful of lines (the attention table covers
// 8), so partials are cached for line numbers 1..candCacheLines and
// deeper lines — which cannot occur in real creatives — recompute.
const candCacheLines = attTableLines

// candCell is one cached per-(line, lineNo) partial: the line's CTR
// factor, score contribution and term count. epoch stamps validity so
// Reset is O(1) for the cache.
type candCell struct {
	epoch uint32
	terms int32
	ctr   float64
	score float64
}

// CandidateScratch is the reusable working set of one candidate-set
// scoring pass: the shared line-dedup/tokenisation arena, the
// per-(line, lineNo) partial cache, and the flattened candidate→line
// index. Owned by one goroutine at a time; the zero value is ready.
type CandidateScratch struct {
	set   textproc.CandidateSet
	cells []candCell
	epoch uint32

	lineIDs []textproc.LineID
	offs    []int32
}

// Set exposes the underlying CandidateSet (tests and the optimizer's
// generation loop share its arena).
func (cs *CandidateScratch) Set() *textproc.CandidateSet { return &cs.set }

// reset opens a new scoring pass: forget all lines, invalidate every
// cached partial by epoch bump.
func (cs *CandidateScratch) reset() {
	cs.set.Reset()
	cs.epoch++
	cs.lineIDs = cs.lineIDs[:0]
	cs.offs = cs.offs[:0]
}

// ScoreCandidates scores every candidate snippet in one amortised
// pass, writing into out (reused when it has the capacity) and
// returning it. Semantics per candidate are exactly ScoreSnippet's:
// same gram-order clamp, same unknown-term default, same empty/NaN
// CTR guard. cs carries all working state; a warm scratch allocates
// nothing.
//
//mb:noalloc
func (c *CompiledModel) ScoreCandidates(cands [][]string, maxN int, cs *CandidateScratch, out []CandidateScore) []CandidateScore {
	// Mirror textproc.ExtractTerms's gram-order clamp.
	if maxN < 1 {
		maxN = 1
	}
	if maxN > 3 {
		maxN = 3
	}
	cs.reset()

	// Pass 1: dedup every candidate's lines into the shared set. Each
	// distinct line is tokenised here, exactly once.
	for _, lines := range cands {
		cs.offs = append(cs.offs, int32(len(cs.lineIDs)))
		for _, ln := range lines {
			cs.lineIDs = append(cs.lineIDs, cs.set.AddLine(ln))
		}
	}
	cs.offs = append(cs.offs, int32(len(cs.lineIDs)))

	need := cs.set.Len() * candCacheLines
	if cap(cs.cells) < need {
		cs.cells = make([]candCell, need) //mb:allocok capacity miss: first set this size, then reused
	}
	cs.cells = cs.cells[:need]
	if cap(out) >= len(cands) {
		out = out[:len(cands)]
	} else {
		out = make([]CandidateScore, len(cands)) //mb:allocok capacity miss: caller reuses across calls
	}

	// Pass 2: combine per-line partials, computing each distinct
	// (line, lineNo) pair at most once.
	for k := range cands {
		ctr, score := 1.0, 0.0
		terms := 0
		ids := cs.lineIDs[cs.offs[k]:cs.offs[k+1]]
		for j, id := range ids {
			lineNo := j + 1
			var lctr, lscore float64
			var lterms int
			if lineNo <= candCacheLines {
				cell := &cs.cells[int(id)*candCacheLines+j]
				if cell.epoch != cs.epoch {
					cell.ctr, cell.score, cell.terms = c.scoreCandLine(cs, id, lineNo, maxN)
					cell.epoch = cs.epoch
				}
				lctr, lscore, lterms = cell.ctr, cell.score, int(cell.terms)
			} else {
				var lt int32
				lctr, lscore, lt = c.scoreCandLine(cs, id, lineNo, maxN)
				lterms = int(lt)
			}
			ctr *= lctr
			score += lscore
			terms += lterms
		}
		if terms == 0 || math.IsNaN(ctr) {
			ctr = 0
		}
		out[k] = CandidateScore{CTR: ctr, Score: score}
	}
	return out
}

// scoreCandLine is ScoreSnippet's inner loop for one line at one line
// number, reading memoised term IDs instead of re-hashing windows.
// The per-window float operations run in the same order as
// ScoreSnippet's, so a single-line snippet matches it bit for bit.
//
//mb:noalloc
func (c *CompiledModel) scoreCandLine(cs *CandidateScratch, id textproc.LineID, lineNo, maxN int) (ctr, score float64, terms int32) {
	ids := cs.set.Terms(id, maxN, c.vocab)
	ntok := cs.set.Tokens(id)
	ctr = 1.0
	for i := 0; i < ntok; i++ {
		a := c.examine(lineNo, i+1)
		am := 1 - a
		nmax := maxN
		if left := ntok - i; left < nmax {
			nmax = left
		}
		row := ids[i*maxN:]
		for n := 0; n < nmax; n++ {
			r, lr := c.defRel, c.defLogRel
			if tid := row[n]; tid >= 0 {
				r, lr = c.rel[tid], c.logRel[tid]
			}
			ctr *= a*r + am
			score += a * lr
		}
		terms += int32(nmax)
	}
	return ctr, score, terms
}

// ScoreCandidates is the map-model fallback: a plain per-candidate
// ScoreSnippet loop with the same output contract as the compiled
// path. The parity suite pins the two within 1e-12.
func (m *Model) ScoreCandidates(cands [][]string, maxN int, out []CandidateScore) []CandidateScore {
	if cap(out) >= len(cands) {
		out = out[:len(cands)]
	} else {
		out = make([]CandidateScore, len(cands))
	}
	for i, lines := range cands {
		ctr, score := m.ScoreSnippet(lines, maxN)
		out[i] = CandidateScore{CTR: ctr, Score: score}
	}
	return out
}
