package core

// v2 (zero-parse) snapshot codec for the micro-browsing model. Where
// the v1 artifact serializes the *fitting* form (the Relevance map,
// re-compiled on every load), a v2 artifact serializes the *compiled*
// form: the frozen vocabulary's flat sections, the clamped relevance
// and precomputed log-relevance arrays, and the dense attention table
// are written as raw little-endian memory. Loading is therefore O(1) in
// the table size — CompiledFromArtifact wraps zero-copy views over the
// artifact bytes (typically a read-only file mapping owned by
// internal/mmap) and computes nothing but a few scalars.
//
// Section layout (tags are the v2 directory keys):
//
//	meta    bytes    raw-encoded scalars: default relevance, attention
//	                 spec (kind + params), attention-table dims
//	v.blob  bytes    frozen vocab term bytes
//	v.offs  uint32   frozen vocab offsets (n+1)
//	v.tabl  int32    frozen vocab open-addressed probe table
//	rel     float64  id -> clamped relevance
//	logrel  float64  id -> log(clamped relevance)
//	attw    float64  dense (line, pos) attention table; empty when the
//	                 attention layer is Full (every weight 1)

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/snapshot"
	"repro/internal/textproc"
)

const (
	v2TagMeta      = "meta"
	v2TagVocabBlob = "v.blob"
	v2TagVocabOffs = "v.offs"
	v2TagVocabTab  = "v.tabl"
	v2TagRel       = "rel"
	v2TagLogRel    = "logrel"
	v2TagAttW      = "attw"
)

// SaveV2 writes the compiled model as a zero-parse v2 artifact. The
// attention layer must be one of the shipped serializable families
// (the same constraint as the v1 codec).
func (c *CompiledModel) SaveV2(w io.Writer) error {
	var meta bytes.Buffer
	e := snapshot.NewRawEncoder(&meta)
	e.Float(c.defRel)
	switch att := c.att.(type) {
	case FullAttention:
		e.Uint(attFull)
	case GeometricAttention:
		e.Uint(attGeometric)
		e.Floats(att.LineWeights)
		e.Float(att.Decay)
	case TableAttention:
		e.Uint(attTable)
		e.Int(len(att.W))
		for _, row := range att.W {
			e.Floats(row)
		}
		e.Float(att.Default)
	default:
		return fmt.Errorf("core: attention %T is not snapshot-serializable", c.att)
	}
	e.Int(attTableLines)
	e.Int(attTableCols)
	if err := e.Flush(); err != nil {
		return err
	}

	vw := snapshot.NewV2Writer(SnapshotName)
	vw.Bytes(v2TagMeta, meta.Bytes())
	vw.Bytes(v2TagVocabBlob, c.vocab.Blob())
	vw.Uint32s(v2TagVocabOffs, c.vocab.Offsets())
	vw.Int32s(v2TagVocabTab, c.vocab.Table())
	vw.Floats(v2TagRel, c.rel)
	vw.Floats(v2TagLogRel, c.logRel)
	vw.Floats(v2TagAttW, c.attW) // empty under full attention
	_, err := vw.WriteTo(w)
	return err
}

// SaveV2 compiles the model and writes the zero-parse artifact — the
// export-side convenience (clickmodelfit -format v2, snapshot conv).
func (m *Model) SaveV2(w io.Writer) error { return m.Compile().SaveV2(w) }

// CompiledFromArtifact builds a serving-ready compiled model whose
// tables are zero-copy views into the artifact's bytes. Nothing is
// decoded except the meta scalars, so the call is O(1) in model size.
// The artifact bytes must outlive the returned model — when they are a
// file mapping, the engine's refcounted version table pins the mapping
// until the last scorer drains.
//
// The returned model's Source is nil: a mapped model has no fitting
// form. It scores; it does not refit.
func CompiledFromArtifact(a *snapshot.V2Artifact) (*CompiledModel, error) {
	if !strings.EqualFold(a.ModelName, SnapshotName) {
		return nil, fmt.Errorf("core: artifact holds a %q model, not %q", a.ModelName, SnapshotName)
	}
	meta, err := a.BytesView(v2TagMeta)
	if err != nil {
		return nil, err
	}
	c := &CompiledModel{}
	d := snapshot.NewRawDecoder(bytes.NewReader(meta))
	c.defRel = clampRel(d.Float())
	c.defLogRel = math.Log(c.defRel)
	switch kind := d.Uint(); kind {
	case attNil, attFull:
		c.att = FullAttention{}
		c.attFull = true
	case attGeometric:
		c.att = GeometricAttention{LineWeights: d.Floats(), Decay: d.Float()}
	case attTable:
		rows := d.Int()
		w := make([][]float64, 0, min(rows, 4096))
		for i := 0; i < rows; i++ {
			w = append(w, d.Floats())
			if d.Err() != nil {
				return nil, d.Err()
			}
		}
		c.att = TableAttention{W: w, Default: d.Float()}
	default:
		return nil, fmt.Errorf("%w: unknown attention kind %d", snapshot.ErrCorrupt, kind)
	}
	lines, cols := d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if lines != attTableLines || cols != attTableCols {
		return nil, fmt.Errorf("core: artifact attention table is %d×%d, this build serves %d×%d — re-export the artifact",
			lines, cols, attTableLines, attTableCols)
	}

	blob, err := a.BytesView(v2TagVocabBlob)
	if err != nil {
		return nil, err
	}
	offs, err := a.Uint32sView(v2TagVocabOffs)
	if err != nil {
		return nil, err
	}
	tab, err := a.Int32sView(v2TagVocabTab)
	if err != nil {
		return nil, err
	}
	c.vocab, err = textproc.NewFrozenVocab(blob, offs, tab)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}

	if c.rel, err = a.FloatsView(v2TagRel); err != nil {
		return nil, err
	}
	if c.logRel, err = a.FloatsView(v2TagLogRel); err != nil {
		return nil, err
	}
	n := c.vocab.Len()
	if len(c.rel) != n || len(c.logRel) != n {
		return nil, fmt.Errorf("%w: %d vocabulary terms but %d relevances / %d log-relevances",
			snapshot.ErrCorrupt, n, len(c.rel), len(c.logRel))
	}
	if c.attW, err = a.FloatsView(v2TagAttW); err != nil {
		return nil, err
	}
	if !c.attFull && len(c.attW) != attTableLines*attTableCols {
		return nil, fmt.Errorf("%w: attention table holds %d weights, want %d",
			snapshot.ErrCorrupt, len(c.attW), attTableLines*attTableCols)
	}
	if c.attFull {
		c.attW = nil
	}
	return c, nil
}

// ValidateTables runs the deep O(n) checks CompiledFromArtifact defers
// (the frozen vocabulary's per-element invariants); verified load
// paths call it before install so untrusted artifacts stay fail-closed
// while trusted local loads remain O(1).
func (c *CompiledModel) ValidateTables() error { return c.vocab.Validate() }
