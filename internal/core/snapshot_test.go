package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/textproc"
)

func snapModel(att Attention) *Model {
	m := NewModel(att)
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	m.Relevance["terms apply"] = 0.2
	m.DefaultRelevance = 0.45
	return m
}

var snapLines = []string{"Acme Air", "Find cheap flights to Rome", "Terms apply"}

func TestMicroSnapshotRoundTrip(t *testing.T) {
	attentions := map[string]Attention{
		"nil":       nil,
		"full":      FullAttention{},
		"geometric": GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8},
		"table":     TableAttention{W: [][]float64{{0.9, 0.7}, {0.5}}, Default: 0.1},
	}
	for name, att := range attentions {
		t.Run(name, func(t *testing.T) {
			m := snapModel(att)
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := LoadModel(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			terms := textproc.ExtractTerms(snapLines, 2)
			if w, g := m.ExpectedScore(terms), got.ExpectedScore(terms); math.Abs(w-g) > 1e-12 {
				t.Errorf("ExpectedScore %v, want %v", g, w)
			}
			for _, tm := range terms {
				if w, g := m.Examine(tm), got.Examine(tm); math.Abs(w-g) > 1e-12 {
					t.Errorf("Examine(%v) %v, want %v", tm, g, w)
				}
				if w, g := m.TermRelevance(tm.Text), got.TermRelevance(tm.Text); math.Abs(w-g) > 1e-12 {
					t.Errorf("TermRelevance(%q) %v, want %v", tm.Text, g, w)
				}
			}
			if got.NumParams() != m.NumParams() {
				t.Errorf("NumParams %d, want %d", got.NumParams(), m.NumParams())
			}
		})
	}
}

type customAttention struct{}

func (customAttention) Examine(line, pos int) float64 { return 0.5 }

func TestMicroSnapshotCustomAttention(t *testing.T) {
	m := snapModel(customAttention{})
	if err := m.Save(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "customAttention") {
		t.Fatalf("custom attention saved cleanly: %v", err)
	}
}

func TestMicroSnapshotRejectsDamage(t *testing.T) {
	m := snapModel(GeometricAttention{LineWeights: []float64{0.9}, Decay: 0.7})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := LoadModel(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d loaded cleanly", cut, len(raw))
		}
	}
	for i := range raw {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x5A
		if _, err := LoadModel(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped byte %d/%d loaded cleanly", i, len(raw))
		}
	}
}
