package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func TestGeometricAttention(t *testing.T) {
	g := GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8}
	if got := g.Examine(1, 1); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Examine(1,1) = %v, want 0.9", got)
	}
	if got := g.Examine(1, 2); math.Abs(got-0.72) > 1e-12 {
		t.Errorf("Examine(1,2) = %v, want 0.72", got)
	}
	if got := g.Examine(2, 1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Examine(2,1) = %v, want 0.6", got)
	}
	if got := g.Examine(4, 1); got != 0 {
		t.Errorf("Examine beyond line weights = %v, want 0", got)
	}
	if got := g.Examine(0, 1); got != 0 {
		t.Errorf("Examine(0,1) = %v, want 0 for invalid line", got)
	}
}

func TestGeometricAttentionDecays(t *testing.T) {
	g := GeometricAttention{LineWeights: []float64{0.95, 0.7, 0.45}, Decay: 0.85}
	// Within-line decay.
	for line := 1; line <= 3; line++ {
		for pos := 2; pos <= 8; pos++ {
			if g.Examine(line, pos) >= g.Examine(line, pos-1) {
				t.Errorf("attention not decaying at line %d pos %d", line, pos)
			}
		}
	}
	// Across-line decay at the same position.
	for line := 2; line <= 3; line++ {
		if g.Examine(line, 1) >= g.Examine(line-1, 1) {
			t.Errorf("line %d attention not below line %d", line, line-1)
		}
	}
}

func TestGeometricAttentionInUnitInterval(t *testing.T) {
	f := func(w, d float64, line, pos uint8) bool {
		g := GeometricAttention{LineWeights: []float64{math.Abs(w)}, Decay: math.Abs(d)}
		p := g.Examine(int(line%5), int(pos%12))
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableAttention(t *testing.T) {
	ta := TableAttention{W: [][]float64{{0.9, 0.5}, {0.4}}, Default: 0.1}
	if got := ta.Examine(1, 2); got != 0.5 {
		t.Errorf("Examine(1,2) = %v", got)
	}
	if got := ta.Examine(2, 1); got != 0.4 {
		t.Errorf("Examine(2,1) = %v", got)
	}
	if got := ta.Examine(3, 1); got != 0.1 {
		t.Errorf("missing cell = %v, want default", got)
	}
	clamped := TableAttention{W: [][]float64{{1.7, -0.2}}}
	if got := clamped.Examine(1, 1); got != 1 {
		t.Errorf("overweight cell = %v, want clamp to 1", got)
	}
	if got := clamped.Examine(1, 2); got != 0 {
		t.Errorf("negative cell = %v, want clamp to 0", got)
	}
}

func terms(lines ...string) []textproc.Term {
	return textproc.ExtractTerms(lines, 1)
}

func TestSnippetLogProbEq3(t *testing.T) {
	m := NewModel(FullAttention{})
	m.Relevance["cheap"] = 0.8
	m.Relevance["flights"] = 0.5

	ts := terms("cheap flights")
	// All examined: log(0.8) + log(0.5).
	want := math.Log(0.8) + math.Log(0.5)
	if got := m.SnippetLogProb(ts, nil); math.Abs(got-want) > 1e-12 {
		t.Errorf("SnippetLogProb = %v, want %v", got, want)
	}
	// Only the first examined.
	if got := m.SnippetLogProb(ts, []bool{true, false}); math.Abs(got-math.Log(0.8)) > 1e-12 {
		t.Errorf("partial examination = %v, want %v", got, math.Log(0.8))
	}
	// Nothing examined: empty product = probability 1.
	if got := m.SnippetLogProb(ts, []bool{false, false}); got != 0 {
		t.Errorf("no examination = %v, want 0", got)
	}
}

func TestSnippetLogProbNonPositive(t *testing.T) {
	// Since every r <= 1, any examination pattern gives log prob <= 0.
	f := func(rel1, rel2 float64, v1, v2 bool) bool {
		m := NewModel(FullAttention{})
		m.Relevance["a"] = math.Abs(rel1)
		m.Relevance["b"] = math.Abs(rel2)
		lp := m.SnippetLogProb(terms("a b"), []bool{v1, v2})
		return lp <= 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedScoreAttentionWeighting(t *testing.T) {
	// A bad term late in the line hurts less under decaying attention
	// than at the front.
	att := GeometricAttention{LineWeights: []float64{1}, Decay: 0.5}
	m := NewModel(att)
	m.Relevance["great"] = 0.9
	m.Relevance["fees"] = 0.1

	early := m.ExpectedScore(terms("fees great great"))
	late := m.ExpectedScore(terms("great great fees"))
	if late <= early {
		t.Errorf("bad term at front should score lower: early=%v late=%v", early, late)
	}
}

func TestScorePairAntisymmetry(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.6}, Decay: 0.8})
	m.Relevance["cheap"] = 0.9
	m.Relevance["pricey"] = 0.2
	r := terms("cheap flights")
	s := terms("pricey flights")
	if got := m.ScorePair(r, s) + m.ScorePair(s, r); math.Abs(got) > 1e-12 {
		t.Errorf("ScorePair not antisymmetric: residue %v", got)
	}
	if m.ScorePair(r, s) <= 0 {
		t.Error("snippet with the more relevant term should win")
	}
}

func TestScoreRewritesEqualsScorePair(t *testing.T) {
	// Eq. 6 is an exact refactoring of Eq. 5: for any complete matching
	// the two scores must agree.
	m := NewModel(GeometricAttention{LineWeights: []float64{0.95, 0.7}, Decay: 0.85})
	m.Relevance = map[string]float64{
		"find": 0.5, "cheap": 0.9, "flights": 0.6,
		"get": 0.45, "discounts": 0.8, "flying": 0.55,
	}
	r := terms("find cheap flights")
	s := terms("get discounts flying")

	// Match find->get, cheap->discounts; leftovers flights / flying.
	pairs := []RewritePair{
		{From: r[0], To: s[0]},
		{From: r[1], To: s[1]},
	}
	got := m.ScoreRewrites(pairs, r[2:], s[2:])
	want := m.ScorePair(r, s)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Eq.6 = %v, Eq.5 = %v; refactoring must be exact", got, want)
	}

	// A different (worse) matching still reproduces Eq. 5.
	pairs2 := []RewritePair{
		{From: r[0], To: s[1]},
		{From: r[1], To: s[0]},
	}
	got2 := m.ScoreRewrites(pairs2, r[2:], s[2:])
	if math.Abs(got2-want) > 1e-12 {
		t.Errorf("Eq.6 with alternative matching = %v, want %v", got2, want)
	}
}

func TestScoreRewritesRefactorProperty(t *testing.T) {
	// Property form: random relevances, random split point between
	// matched and leftover terms.
	f := func(rels []float64, split uint8) bool {
		m := NewModel(GeometricAttention{LineWeights: []float64{0.9}, Decay: 0.8})
		r := terms("a b c d")
		s := terms("w x y z")
		names := []string{"a", "b", "c", "d", "w", "x", "y", "z"}
		for i, n := range names {
			rel := 0.5
			if i < len(rels) {
				rel = math.Mod(math.Abs(rels[i]), 1)
				if rel == 0 {
					rel = 0.5
				}
			}
			m.Relevance[n] = rel
		}
		k := int(split % 5) // how many terms are matched pairs
		var pairs []RewritePair
		for i := 0; i < k; i++ {
			pairs = append(pairs, RewritePair{From: r[i], To: s[i]})
		}
		got := m.ScoreRewrites(pairs, r[k:], s[k:])
		want := m.ScorePair(r, s)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoupledScoreSign(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9}, Decay: 0.8})
	m.Relevance["cheap"] = 0.9
	m.Relevance["pricey"] = 0.2
	r := terms("cheap")
	s := terms("pricey")
	p := []RewritePair{{From: r[0], To: s[0]}}
	if m.DecoupledScore(p) <= 0 {
		t.Error("rewriting a good term into a bad one should score positive for R")
	}
	q := []RewritePair{{From: s[0], To: r[0]}}
	if m.DecoupledScore(q) >= 0 {
		t.Error("reverse rewrite should score negative")
	}
}

func TestTermRelevanceDefaultsAndClamps(t *testing.T) {
	m := NewModel(nil)
	if got := m.TermRelevance("unseen"); got != 0.5 {
		t.Errorf("default relevance = %v, want 0.5", got)
	}
	m.Relevance["zero"] = 0
	if got := m.TermRelevance("zero"); got != 1e-9 {
		t.Errorf("zero relevance clamp = %v, want 1e-9", got)
	}
	m.Relevance["big"] = 7
	if got := m.TermRelevance("big"); got != 1 {
		t.Errorf("overlarge relevance clamp = %v, want 1", got)
	}
}

func TestNilAttentionIsFull(t *testing.T) {
	m := NewModel(nil)
	tm := textproc.Term{Text: "x", Line: 3, Pos: 9}
	if got := m.Examine(tm); got != 1 {
		t.Errorf("nil attention Examine = %v, want 1", got)
	}
}

func TestSampleExaminationStatistics(t *testing.T) {
	att := GeometricAttention{LineWeights: []float64{0.8}, Decay: 1}
	m := NewModel(att)
	rng := rand.New(rand.NewSource(11))
	ts := terms("a b c")
	const n = 20000
	counts := make([]int, len(ts))
	for i := 0; i < n; i++ {
		for j, v := range m.SampleExamination(rng, ts) {
			if v {
				counts[j]++
			}
		}
	}
	for j := range ts {
		got := float64(counts[j]) / n
		if math.Abs(got-0.8) > 0.02 {
			t.Errorf("term %d examined %.3f of draws, want ~0.8", j, got)
		}
	}
}

func BenchmarkExpectedScore(b *testing.B) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.95, 0.7, 0.45}, Decay: 0.85})
	m.Relevance["cheap"] = 0.9
	ts := textproc.ExtractTerms([]string{
		"XYZ Airlines Official Site",
		"Find cheap flights to New York today",
		"No reservation costs. Great rates!",
	}, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExpectedScore(ts)
	}
}
