package core

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/textproc"
)

// legacyScore replicates the pre-fusion serving computation (one CTR
// walk, then ExpectedScore re-walking the terms) as the reference the
// fused paths must match.
func legacyScore(m *Model, lines []string, maxN int) (ctr, score float64) {
	terms := textproc.ExtractTerms(lines, maxN)
	ctr = 1.0
	for _, t := range terms {
		a := m.Examine(t)
		ctr *= a*m.TermRelevance(t.Text) + 1 - a
	}
	if len(terms) == 0 || math.IsNaN(ctr) {
		ctr = 0
	}
	return ctr, m.ExpectedScore(terms)
}

// randomWords is the shared lexicon for the parity corpus; scoring
// text reuses a subset so snippets mix known and unknown terms.
func randomWords(rng *rand.Rand, n int) []string {
	words := make([]string, n)
	for i := range words {
		words[i] = "w" + strconv.Itoa(rng.Intn(200))
	}
	return words
}

func randomModel(rng *rand.Rand, att Attention) *Model {
	m := NewModel(att)
	for _, w := range randomWords(rng, 120) {
		// Deliberately out-of-range values exercise the clamps: the
		// compiled table must bake in exactly TermRelevance's clamping.
		m.Relevance[w] = rng.Float64()*1.4 - 0.1
	}
	// Bigrams and trigrams in the table make n-gram window lookups hit.
	for i := 0; i < 40; i++ {
		m.Relevance["w"+strconv.Itoa(rng.Intn(200))+" w"+strconv.Itoa(rng.Intn(200))] = rng.Float64()
	}
	for i := 0; i < 20; i++ {
		m.Relevance["w"+strconv.Itoa(rng.Intn(200))+" w"+strconv.Itoa(rng.Intn(200))+" w"+strconv.Itoa(rng.Intn(200))] = rng.Float64()
	}
	switch rng.Intn(4) {
	case 0:
		m.DefaultRelevance = 0 // exercises the 0 -> 0.5 substitution
	case 1:
		m.DefaultRelevance = rng.Float64()
	case 2:
		m.DefaultRelevance = 1.7 // clamped to 1
	case 3:
		m.DefaultRelevance = -0.2 // clamped to 1e-9
	}
	return m
}

func randomLines(rng *rand.Rand, maxLines, maxTokens int) []string {
	lines := make([]string, 1+rng.Intn(maxLines))
	for i := range lines {
		toks := randomWords(rng, 1+rng.Intn(maxTokens))
		if rng.Intn(4) == 0 {
			toks = append(toks, "unseen"+strconv.Itoa(rng.Intn(50)))
		}
		line := ""
		for j, tok := range toks {
			if j > 0 {
				line += " "
			}
			line += tok
		}
		lines[i] = line
	}
	return lines
}

// parityAttentions returns the attention layers of the property suite:
// the three shipped families plus nil (degenerate FullAttention).
func parityAttentions(rng *rand.Rand) []Attention {
	w := make([][]float64, 3)
	for i := range w {
		w[i] = make([]float64, 6)
		for j := range w[i] {
			w[i][j] = rng.Float64()*1.2 - 0.1 // includes out-of-range cells
		}
	}
	return []Attention{
		nil,
		FullAttention{},
		GeometricAttention{LineWeights: []float64{0.95, 0.7, 0.45}, Decay: 0.85},
		TableAttention{W: w, Default: rng.Float64()},
	}
}

// TestCompiledParity is the compiled-vs-map property test: across
// randomised models, snippets and every shipped attention family, the
// compiled scorer, the fused map scorer and the legacy two-pass
// computation agree on CTR and Score within 1e-12.
func TestCompiledParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var sc textproc.Scratch
	for trial := 0; trial < 200; trial++ {
		for _, att := range parityAttentions(rng) {
			m := randomModel(rng, att)
			cm := m.Compile()
			lines := randomLines(rng, 4, 8)
			maxN := 1 + rng.Intn(3)

			wantCTR, wantScore := legacyScore(m, lines, maxN)
			fusedCTR, fusedScore := m.ScoreSnippet(lines, maxN)
			gotCTR, gotScore := cm.ScoreSnippet(lines, maxN, &sc)

			if math.Abs(fusedCTR-wantCTR) > 1e-12 || math.Abs(fusedScore-wantScore) > 1e-12 {
				t.Fatalf("trial %d att %T: fused (%v, %v) vs legacy (%v, %v)\nlines: %q",
					trial, att, fusedCTR, fusedScore, wantCTR, wantScore, lines)
			}
			if math.Abs(gotCTR-wantCTR) > 1e-12 || math.Abs(gotScore-wantScore) > 1e-12 {
				t.Fatalf("trial %d att %T: compiled (%v, %v) vs legacy (%v, %v)\nlines: %q",
					trial, att, gotCTR, gotScore, wantCTR, wantScore, lines)
			}
		}
	}
}

// TestCompiledParityRealText runs the parity check over punctuated,
// mixed-case ad text, so the zero-copy normaliser inside the compiled
// path is compared against the string path end to end.
func TestCompiledParityRealText(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	m.Relevance["20%"] = 0.9
	m.Relevance["$99"] = 0.8
	m.Relevance["dont miss"] = 0.7
	cm := m.Compile()
	var sc textproc.Scratch
	snippets := [][]string{
		{"XYZ Airlines Official Site", "Find cheap flights to New York", "No reservation costs. Great rates!"},
		{"20% Off — From $99", "Don't Miss Out!"},
		{"", "   ", "?!"},
		{"one-line snippet with $99 and 20% off"},
	}
	for _, lines := range snippets {
		for maxN := 1; maxN <= 3; maxN++ {
			wantCTR, wantScore := m.ScoreSnippet(lines, maxN)
			gotCTR, gotScore := cm.ScoreSnippet(lines, maxN, &sc)
			if math.Abs(gotCTR-wantCTR) > 1e-12 || math.Abs(gotScore-wantScore) > 1e-12 {
				t.Errorf("lines %q maxN %d: compiled (%v, %v), want (%v, %v)",
					lines, maxN, gotCTR, gotScore, wantCTR, wantScore)
			}
		}
	}
}

// TestCompiledDefaultRelevance pins the unknown-term fallback: terms
// absent from the vocab score with the clamped DefaultRelevance,
// including the 0 -> 0.5 substitution.
func TestCompiledDefaultRelevance(t *testing.T) {
	var sc textproc.Scratch
	lines := []string{"totally unknown words here"}
	for _, def := range []float64{0, 0.3, 1.5, -2} {
		m := NewModel(FullAttention{})
		m.Relevance["known"] = 0.9
		m.DefaultRelevance = def
		cm := m.Compile()
		wantCTR, wantScore := m.ScoreSnippet(lines, 2)
		gotCTR, gotScore := cm.ScoreSnippet(lines, 2, &sc)
		if math.Abs(gotCTR-wantCTR) > 1e-12 || math.Abs(gotScore-wantScore) > 1e-12 {
			t.Errorf("default %v: compiled (%v, %v), want (%v, %v)", def, gotCTR, gotScore, wantCTR, wantScore)
		}
		// Sanity: the per-term factor really is the clamped default.
		r := def
		if r == 0 {
			r = 0.5
		}
		r = clampRel(r)
		if want := math.Pow(r, 7); math.Abs(gotCTR-want) > 1e-9 { // 4 unigram + 3 bigram windows
			t.Errorf("default %v: CTR %v, want %v", def, gotCTR, want)
		}
	}
}

// TestCompiledEmptySnippet mirrors the serving guard: no terms means
// CTR 0, not the multiplicative identity.
func TestCompiledEmptySnippet(t *testing.T) {
	m := NewModel(nil)
	cm := m.Compile()
	var sc textproc.Scratch
	if ctr, score := cm.ScoreSnippet([]string{"", "?!"}, 2, &sc); ctr != 0 || score != 0 {
		t.Errorf("empty snippet scored (%v, %v), want (0, 0)", ctr, score)
	}
	if ctr, _ := m.ScoreSnippet(nil, 2); ctr != 0 {
		t.Errorf("fused map path: empty snippet CTR %v, want 0", ctr)
	}
}

// TestCompiledDeepSnippet pushes coordinates beyond the dense
// attention table so the interface fallback path is exercised.
func TestCompiledDeepSnippet(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05}, Decay: 0.95})
	m.Relevance["deep"] = 0.9
	cm := m.Compile()
	var sc textproc.Scratch

	long := ""
	for i := 0; i < 40; i++ { // beyond attTableCols
		if i > 0 {
			long += " "
		}
		long += "deep"
	}
	lines := make([]string, 10, 10) // beyond attTableLines
	for i := range lines {
		lines[i] = long
	}
	wantCTR, wantScore := m.ScoreSnippet(lines, 3)
	gotCTR, gotScore := cm.ScoreSnippet(lines, 3, &sc)
	if math.Abs(gotCTR-wantCTR) > 1e-12 || math.Abs(gotScore-wantScore) > 1e-12 {
		t.Errorf("deep snippet: compiled (%v, %v), want (%v, %v)", gotCTR, gotScore, wantCTR, wantScore)
	}
}

// TestCompiledZeroAlloc pins the whole compiled scoring call —
// normalise, tokenise, n-gram lookups, CTR and score — to zero
// steady-state allocations.
func TestCompiledZeroAlloc(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	cm := m.Compile()
	var sc textproc.Scratch
	lines := []string{"XYZ Airlines Official Site", "Find cheap flights to New York", "No reservation costs!"}
	cm.ScoreSnippet(lines, 3, &sc) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		cm.ScoreSnippet(lines, 3, &sc)
	})
	if allocs != 0 {
		t.Errorf("compiled ScoreSnippet allocates %v per run, want 0", allocs)
	}
}

// TestCompiledAfterSnapshotRoundTrip compiles a Save/Load round-tripped
// model and checks parity against the original — the LoadSnapshot
// compile-on-install path end to end.
func TestCompiledAfterSnapshotRoundTrip(t *testing.T) {
	m := NewModel(TableAttention{W: [][]float64{{0.9, 0.7}, {0.5, 0.3}}, Default: 0.2})
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	m.DefaultRelevance = 0.4

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cm := loaded.Compile()
	if cm.NumParams() != len(m.Relevance) {
		t.Errorf("NumParams = %d, want %d", cm.NumParams(), len(m.Relevance))
	}
	if cm.Source() != loaded {
		t.Error("Source should return the compiled model's origin")
	}
	var sc textproc.Scratch
	lines := []string{"Find cheap flights", "Great rates"}
	wantCTR, wantScore := m.ScoreSnippet(lines, 2)
	gotCTR, gotScore := cm.ScoreSnippet(lines, 2, &sc)
	if math.Abs(gotCTR-wantCTR) > 1e-12 || math.Abs(gotScore-wantScore) > 1e-12 {
		t.Errorf("round-tripped compile: (%v, %v), want (%v, %v)", gotCTR, gotScore, wantCTR, wantScore)
	}
}
