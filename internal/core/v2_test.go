package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/textproc"
)

func v2RoundTrip(t *testing.T, c *CompiledModel) *CompiledModel {
	t.Helper()
	var buf bytes.Buffer
	if err := c.SaveV2(&buf); err != nil {
		t.Fatalf("SaveV2: %v", err)
	}
	a, err := snapshot.ParseV2(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseV2: %v", err)
	}
	if err := a.VerifySections(); err != nil {
		t.Fatalf("VerifySections: %v", err)
	}
	mapped, err := CompiledFromArtifact(a)
	if err != nil {
		t.Fatalf("CompiledFromArtifact: %v", err)
	}
	return mapped
}

// TestV2CompiledParity is the zero-parse parity property test: across
// randomised models, snippets and every shipped attention family, a
// compiled model round-tripped through a v2 artifact scores identically
// (1e-12, in practice bit-exact — the artifact stores the compiled
// float memory verbatim).
func TestV2CompiledParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sc, sc2 textproc.Scratch
	for trial := 0; trial < 60; trial++ {
		for _, att := range parityAttentions(rng) {
			m := randomModel(rng, att)
			cm := m.Compile()
			mapped := v2RoundTrip(t, cm)
			if mapped.Source() != nil {
				t.Fatal("mapped model claims a fitting source")
			}
			if mapped.NumParams() != cm.NumParams() {
				t.Fatalf("NumParams = %d, want %d", mapped.NumParams(), cm.NumParams())
			}
			for i := 0; i < 4; i++ {
				lines := randomLines(rng, 4, 8)
				maxN := 1 + rng.Intn(3)
				wantCTR, wantScore := cm.ScoreSnippet(lines, maxN, &sc)
				gotCTR, gotScore := mapped.ScoreSnippet(lines, maxN, &sc2)
				if math.Abs(gotCTR-wantCTR) > 1e-12 || math.Abs(gotScore-wantScore) > 1e-12 {
					t.Fatalf("trial %d att %T: mapped (%v, %v) vs compiled (%v, %v)\nlines: %q",
						trial, att, gotCTR, gotScore, wantCTR, wantScore, lines)
				}
			}
		}
	}
}

// TestV2ParityVsV1Path pins the mapped scorer against the v1
// save → load → recompile path end to end, the exact comparison the
// serving smoke test automates.
func TestV2ParityVsV1Path(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	m.Relevance["cheap flights"] = 0.9
	m.Relevance["book"] = 0.4
	m.DefaultRelevance = 0.3

	var v1 bytes.Buffer
	if err := m.Save(&v1); err != nil {
		t.Fatal(err)
	}
	m1, err := LoadModel(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	c1 := m1.Compile()
	mapped := v2RoundTrip(t, m.Compile())

	var sc1, sc2 textproc.Scratch
	lines := []string{"Find CHEAP flights now!", "book early, save 20%"}
	for maxN := 1; maxN <= 3; maxN++ {
		aCTR, aScore := c1.ScoreSnippet(lines, maxN, &sc1)
		bCTR, bScore := mapped.ScoreSnippet(lines, maxN, &sc2)
		if math.Abs(aCTR-bCTR) > 1e-12 || math.Abs(aScore-bScore) > 1e-12 {
			t.Fatalf("maxN %d: v1 path (%v, %v) vs v2 path (%v, %v)", maxN, aCTR, aScore, bCTR, bScore)
		}
	}
}

func TestV2ZeroAllocMapped(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["cheap flights"] = 0.9
	m.Relevance["flights"] = 0.6
	mapped := v2RoundTrip(t, m.Compile())
	var sc textproc.Scratch
	lines := []string{"find cheap flights today", "compare and save"}
	mapped.ScoreSnippet(lines, 3, &sc) // warm the scratch
	allocs := testing.AllocsPerRun(200, func() {
		mapped.ScoreSnippet(lines, 3, &sc)
	})
	if allocs != 0 {
		t.Fatalf("mapped ScoreSnippet allocates %v/op, want 0", allocs)
	}
}

func TestCompiledFromArtifactRejects(t *testing.T) {
	m := NewModel(FullAttention{})
	m.Relevance["a"] = 0.5
	var buf bytes.Buffer
	if err := m.SaveV2(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Wrong model name.
	w := snapshot.NewV2Writer("pbm")
	w.Bytes("meta", []byte{})
	var other bytes.Buffer
	if _, err := w.WriteTo(&other); err != nil {
		t.Fatal(err)
	}
	if a, err := snapshot.ParseV2(other.Bytes()); err != nil {
		t.Fatal(err)
	} else if _, err := CompiledFromArtifact(a); err == nil {
		t.Error("accepted an artifact for a different model")
	}

	// Drop each section in turn: the loader must fail closed, not
	// serve partial tables.
	orig, err := snapshot.ParseV2(good)
	if err != nil {
		t.Fatal(err)
	}
	for _, drop := range []string{"meta", "v.blob", "v.offs", "v.tabl", "rel", "logrel"} {
		w := snapshot.NewV2Writer(SnapshotName)
		for _, s := range orig.Sections {
			if s.Tag == drop {
				continue
			}
			switch s.Tag {
			case "v.offs":
				u, _ := orig.Uint32sView(s.Tag)
				w.Uint32s(s.Tag, u)
			case "v.tabl":
				v, _ := orig.Int32sView(s.Tag)
				w.Int32s(s.Tag, v)
			case "rel", "logrel", "attw":
				f, _ := orig.FloatsView(s.Tag)
				w.Floats(s.Tag, f)
			default:
				b, _ := orig.BytesView(s.Tag)
				w.Bytes(s.Tag, b)
			}
		}
		var out bytes.Buffer
		if _, err := w.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		a, err := snapshot.ParseV2(out.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompiledFromArtifact(a); err == nil {
			t.Errorf("accepted an artifact missing section %q", drop)
		}
	}
}
