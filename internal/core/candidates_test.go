package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/textproc"
)

// randomCandidates builds the /v1/optimize workload shape: one base
// snippet plus edits of it (line replacements, drops, the base itself,
// exact duplicates and the occasional empty candidate).
func randomCandidates(rng *rand.Rand, n int) [][]string {
	base := randomLines(rng, 3, 8)
	cands := make([][]string, n)
	for i := range cands {
		switch rng.Intn(8) {
		case 0:
			cands[i] = base // unedited
		case 1:
			cands[i] = nil // empty candidate
		case 2:
			if i > 0 && cands[i-1] != nil {
				cands[i] = cands[i-1] // exact duplicate
				continue
			}
			cands[i] = base
		default:
			edit := make([]string, len(base))
			copy(edit, base)
			edit[rng.Intn(len(edit))] = "w" + strconv.Itoa(rng.Intn(200)) + " w" + strconv.Itoa(rng.Intn(200))
			cands[i] = edit
		}
	}
	return cands
}

// TestScoreCandidatesParity is the candidate-set property test: across
// randomised models, every shipped attention family and edit-shaped
// candidate sets, the amortised compiled path agrees with the map
// fallback and with per-candidate compiled ScoreSnippet within 1e-12.
func TestScoreCandidatesParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var cs CandidateScratch
	var sc textproc.Scratch
	var out, mapOut []CandidateScore
	for trial := 0; trial < 60; trial++ {
		for _, att := range parityAttentions(rng) {
			m := randomModel(rng, att)
			cm := m.Compile()
			cands := randomCandidates(rng, 1+rng.Intn(24))
			maxN := 1 + rng.Intn(3)

			out = cm.ScoreCandidates(cands, maxN, &cs, out)
			mapOut = m.ScoreCandidates(cands, maxN, mapOut)
			if len(out) != len(cands) || len(mapOut) != len(cands) {
				t.Fatalf("trial %d: %d candidates scored as %d/%d", trial, len(cands), len(out), len(mapOut))
			}
			for k := range cands {
				wantCTR, wantScore := cm.ScoreSnippet(cands[k], maxN, &sc)
				if math.Abs(out[k].CTR-wantCTR) > 1e-12 || math.Abs(out[k].Score-wantScore) > 1e-12 {
					t.Fatalf("trial %d att %T cand %d: set (%v, %v) vs compiled snippet (%v, %v)\nlines: %q",
						trial, att, k, out[k].CTR, out[k].Score, wantCTR, wantScore, cands[k])
				}
				if math.Abs(out[k].CTR-mapOut[k].CTR) > 1e-12 || math.Abs(out[k].Score-mapOut[k].Score) > 1e-12 {
					t.Fatalf("trial %d att %T cand %d: set (%v, %v) vs map (%v, %v)\nlines: %q",
						trial, att, k, out[k].CTR, out[k].Score, mapOut[k].CTR, mapOut[k].Score, cands[k])
				}
			}
		}
	}
}

// TestScoreCandidatesEdgeShapes pins the degenerate inputs: no
// candidates at all, all-empty candidates, and punctuation-only lines.
func TestScoreCandidatesEdgeShapes(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["find cheap"] = 0.85
	cm := m.Compile()
	var cs CandidateScratch

	if out := cm.ScoreCandidates(nil, 2, &cs, nil); len(out) != 0 {
		t.Fatalf("nil candidates scored as %d results", len(out))
	}
	out := cm.ScoreCandidates([][]string{nil, {}, {"", "?!"}}, 2, &cs, nil)
	for k, got := range out {
		if got.CTR != 0 || got.Score != 0 {
			t.Errorf("empty candidate %d scored (%v, %v), want (0, 0)", k, got.CTR, got.Score)
		}
	}
}

// TestScoreCandidatesDeepLines pushes candidates past the partial
// cache's line bound (and the attention table) so the uncached
// recompute path is compared against ScoreSnippet too.
func TestScoreCandidatesDeepLines(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05}, Decay: 0.95})
	m.Relevance["deep"] = 0.9
	m.Relevance["deep deep"] = 0.4
	cm := m.Compile()
	var cs CandidateScratch
	var sc textproc.Scratch

	deep := make([]string, 12) // beyond candCacheLines
	for i := range deep {
		deep[i] = "deep deep value " + strconv.Itoa(i%3)
	}
	cands := [][]string{deep, deep[:10], deep[:3]}
	out := cm.ScoreCandidates(cands, 3, &cs, nil)
	for k := range cands {
		wantCTR, wantScore := cm.ScoreSnippet(cands[k], 3, &sc)
		if math.Abs(out[k].CTR-wantCTR) > 1e-12 || math.Abs(out[k].Score-wantScore) > 1e-12 {
			t.Errorf("deep cand %d: (%v, %v), want (%v, %v)", k, out[k].CTR, out[k].Score, wantCTR, wantScore)
		}
	}
}

// TestScoreCandidatesDistinctAndDuplicate pins that distinct lines
// score per line (never aliased through the dedup table — the forced
// hash-collision aliasing check lives in textproc's candidate tests)
// and that duplicate candidates reuse their originals' partials
// bit for bit.
func TestScoreCandidatesDistinctAndDuplicate(t *testing.T) {
	m := NewModel(FullAttention{})
	m.Relevance["alpha"] = 0.9
	m.Relevance["beta"] = 0.1
	cm := m.Compile()
	var cs CandidateScratch
	var sc textproc.Scratch

	cands := [][]string{{"alpha"}, {"beta"}, {"alpha"}, {"beta"}}
	out := cm.ScoreCandidates(cands, 1, &cs, nil)
	for k, lines := range cands {
		wantCTR, wantScore := cm.ScoreSnippet(lines, 1, &sc)
		if out[k].CTR != wantCTR || out[k].Score != wantScore {
			t.Fatalf("cand %d %q: (%v, %v), want (%v, %v)", k, lines, out[k].CTR, out[k].Score, wantCTR, wantScore)
		}
	}
	if out[0].CTR == out[1].CTR {
		t.Fatal("distinct lines aliased to one score")
	}
	if out[0] != out[2] || out[1] != out[3] {
		t.Fatal("duplicate candidates disagree with their originals")
	}
}

// TestScoreCandidatesNoalloc backs the //mb:noalloc annotations on
// ScoreCandidates and scoreCandLine: a warm candidate-set pass over a
// fixed workload must not allocate.
func TestScoreCandidatesNoalloc(t *testing.T) {
	m := NewModel(GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	cm := m.Compile()
	var cs CandidateScratch

	base := []string{"XYZ Airlines Official Site", "Find cheap flights to Rome", "No reservation costs!"}
	cands := make([][]string, 32)
	for i := range cands {
		edit := make([]string, len(base))
		copy(edit, base)
		edit[i%3] = "Great rates variant " + strconv.Itoa(i)
		cands[i] = edit
	}
	var out []CandidateScore
	out = cm.ScoreCandidates(cands, 3, &cs, out) // warm arenas and caches
	allocs := testing.AllocsPerRun(100, func() {
		out = cm.ScoreCandidates(cands, 3, &cs, out)
	})
	if allocs != 0 {
		t.Fatalf("warm ScoreCandidates allocates %v/op, want 0", allocs)
	}
}
