// Package core implements the paper's primary contribution: the
// micro-browsing model for search result snippets.
//
// Classical click models (internal/clickmodel) estimate whether a user
// examines a whole result. The micro-browsing model descends one level:
// for a snippet R with m terms it posits a per-term relevance r_i ∈ [0,1]
// and a per-term examination indicator v_i ∈ {0,1}, and judges the
// snippet only by the terms the user actually read:
//
//	Pr(R|q) = Π_i r_i^{v_i}                                   (Eq. 3)
//
// Comparing two snippets R and S for the same query yields the log
// probability ratio
//
//	score(R→S|q) = Σ_i v_i·log r_i − Σ_j w_j·log s_j           (Eq. 5)
//
// which, given a matching pair(R,S) of rewritten term positions, can be
// refactored into rewrite terms plus leftover one-sided terms (Eq. 6),
// and — decoupling position from relevance to fight sparsity — into the
// bilinear form the coupled classifier learns (Eq. 8).
//
// Examination indicators are latent; the package models them through an
// Attention: the probability that the micro-position (line, pos) is read.
// Expectations over v replace the indicators wherever a deterministic
// score is needed, and SampleExamination draws concrete indicator
// vectors for simulation.
package core

import (
	"math"
	"math/rand"

	"repro/internal/textproc"
)

// Attention models micro-examination: the probability that a user reads
// the term starting at a (line, pos) micro-position. Implementations
// must return values in [0, 1].
type Attention interface {
	Examine(line, pos int) float64
}

// GeometricAttention is the parametric attention family used as ground
// truth in the simulator and as a sensible default prior: line l carries
// weight LineWeights[l-1], and attention decays geometrically with the
// term's position within the line.
//
// The shape encodes the two regularities the paper's Figure 3 recovers:
// earlier lines are read more than later lines, and within a line
// earlier positions are read more than later ones.
type GeometricAttention struct {
	LineWeights []float64 // per-line multiplier, e.g. {0.95, 0.7, 0.45}
	Decay       float64   // per-position multiplier in (0, 1], e.g. 0.85
}

// Examine implements Attention.
func (g GeometricAttention) Examine(line, pos int) float64 {
	if line < 1 || pos < 1 {
		return 0
	}
	w := 0.0
	if line-1 < len(g.LineWeights) {
		w = g.LineWeights[line-1]
	}
	if w <= 0 {
		return 0
	}
	p := w * math.Pow(g.Decay, float64(pos-1))
	if p < 0 || math.IsNaN(p) {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// TableAttention is an explicit (line, pos) table, used to hold learned
// position weights (e.g. the coupled classifier's P factors rescaled to
// probabilities). Missing cells fall back to Default.
type TableAttention struct {
	W       [][]float64 // W[line-1][pos-1]
	Default float64
}

// Examine implements Attention.
func (t TableAttention) Examine(line, pos int) float64 {
	if line >= 1 && line-1 < len(t.W) && pos >= 1 && pos-1 < len(t.W[line-1]) {
		v := t.W[line-1][pos-1]
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return t.Default
}

// FullAttention examines every micro-position with probability 1. Under
// FullAttention the micro-browsing model degenerates to a bag-of-terms
// model — the paper's M1/M3/M5 ablations ("v_a and w_b set to 1 for all
// terms").
type FullAttention struct{}

// Examine implements Attention.
func (FullAttention) Examine(line, pos int) float64 { return 1 }

// Model is a micro-browsing model: per-term relevance plus an attention
// layer giving each micro-position's examination probability.
type Model struct {
	// Relevance maps a term's text to r ∈ (0, 1]. Terms absent from the
	// map have DefaultRelevance.
	Relevance map[string]float64
	// DefaultRelevance is used for unknown terms (default 0.5 when 0).
	DefaultRelevance float64
	// Attention provides examination probabilities; nil means
	// FullAttention.
	Attention Attention
}

// NewModel returns a Model with the given attention and an empty
// relevance table.
func NewModel(att Attention) *Model {
	return &Model{Relevance: make(map[string]float64), DefaultRelevance: 0.5, Attention: att}
}

// TermRelevance returns r for the term text, clamped to (0, 1] so that
// log r is finite.
func (m *Model) TermRelevance(text string) float64 {
	r, ok := m.Relevance[text]
	if !ok {
		r = m.DefaultRelevance
		if r == 0 {
			r = 0.5
		}
	}
	if r < 1e-9 {
		r = 1e-9
	}
	if r > 1 {
		r = 1
	}
	return r
}

func (m *Model) attention() Attention {
	if m.Attention == nil {
		return FullAttention{}
	}
	return m.Attention
}

// Examine returns the examination probability of a term's micro-position.
func (m *Model) Examine(t textproc.Term) float64 {
	return m.attention().Examine(t.Line, t.Pos)
}

// SnippetLogProb evaluates Eq. 3 in log space for a concrete examination
// vector: log Pr(R|q) = Σ v_i·log r_i. examined must be parallel to
// terms; a nil examined means every term was read.
func (m *Model) SnippetLogProb(terms []textproc.Term, examined []bool) float64 {
	var lp float64
	for i, t := range terms {
		if examined == nil || examined[i] {
			lp += math.Log(m.TermRelevance(t.Text))
		}
	}
	return lp
}

// ExpectedScore is the expectation of Σ v_i·log r_i under the attention
// layer: E[v_i] = Examine(line_i, pos_i). This is the deterministic
// per-snippet score used for ranking snippets.
func (m *Model) ExpectedScore(terms []textproc.Term) float64 {
	var s float64
	for _, t := range terms {
		s += m.Examine(t) * math.Log(m.TermRelevance(t.Text))
	}
	return s
}

// ScorePair evaluates Eq. 5 in expectation: the log probability ratio of
// snippet R over snippet S. Positive means R is the better snippet.
func (m *Model) ScorePair(r, s []textproc.Term) float64 {
	return m.ExpectedScore(r) - m.ExpectedScore(s)
}

// RewritePair is one matched rewrite between a pair of snippets: the
// term From in R was rewritten to the term To in S (the (p,q) entries of
// pair(R,S) in Eq. 6).
type RewritePair struct {
	From, To textproc.Term
}

// ScoreRewrites evaluates Eq. 6: the pair score refactored into matched
// rewrites plus the leftover terms present only in R or only in S.
// Because Eq. 6 is an exact refactoring of Eq. 5, the result equals
// ScorePair whenever pairs ∪ onlyR covers R's terms and pairs ∪ onlyS
// covers S's terms.
func (m *Model) ScoreRewrites(pairs []RewritePair, onlyR, onlyS []textproc.Term) float64 {
	var s float64
	for _, p := range pairs {
		s += m.Examine(p.From) * math.Log(m.TermRelevance(p.From.Text))
		s -= m.Examine(p.To) * math.Log(m.TermRelevance(p.To.Text))
	}
	for _, t := range onlyR {
		s += m.Examine(t) * math.Log(m.TermRelevance(t.Text))
	}
	for _, t := range onlyS {
		s -= m.Examine(t) * math.Log(m.TermRelevance(t.Text))
	}
	return s
}

// DecoupledScore evaluates Eq. 8: position and relevance are decoupled
// so that rewrite relevance statistics can be shared across positions.
// The position factor f(v_p, w_q) is taken as the mean examination
// probability of the two micro-positions — the symmetric choice; the
// classifier learns its own f from data (Eq. 9).
func (m *Model) DecoupledScore(pairs []RewritePair) float64 {
	var s float64
	for _, p := range pairs {
		f := (m.Examine(p.From) + m.Examine(p.To)) / 2
		s += f * math.Log(m.TermRelevance(p.From.Text)/m.TermRelevance(p.To.Text))
	}
	return s
}

// SampleExamination draws a concrete examination vector v for the terms
// under the attention layer. Deterministic given the rng state.
func (m *Model) SampleExamination(rng *rand.Rand, terms []textproc.Term) []bool {
	v := make([]bool, len(terms))
	for i, t := range terms {
		v[i] = rng.Float64() < m.Examine(t)
	}
	return v
}
