package core

// Snapshot codec for the micro-browsing model: the per-term relevance
// table, the default relevance, and the attention layer serialize to
// the self-describing artifact format of internal/snapshot under the
// reserved model name "micro". Only the shipped attention families
// (Full, Geometric, Table, nil) are serializable; a custom Attention
// implementation must be re-attached after Load.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/snapshot"
)

// SnapshotName is the model name recorded in micro-browsing artifacts,
// matching the engine's reserved "micro" scorer name.
const SnapshotName = "micro"

// Attention kind bytes in artifacts.
const (
	attNil       = 0 // no attention layer (degenerates to FullAttention)
	attFull      = 1
	attGeometric = 2
	attTable     = 3
)

// Save writes the model as a self-describing binary artifact. It
// fails if the attention layer is a custom implementation the codec
// cannot represent.
func (m *Model) Save(w io.Writer) error {
	e := snapshot.NewEncoder(w, SnapshotName)

	terms := make([]string, 0, len(m.Relevance))
	for t := range m.Relevance {
		terms = append(terms, t)
	}
	sort.Strings(terms) // deterministic artifacts
	e.Int(len(terms))
	for _, t := range terms {
		e.String(t)
	}
	for _, t := range terms {
		e.Float(m.Relevance[t])
	}
	e.Float(m.DefaultRelevance)

	switch att := m.Attention.(type) {
	case nil:
		e.Uint(attNil)
	case FullAttention:
		e.Uint(attFull)
	case GeometricAttention:
		e.Uint(attGeometric)
		e.Floats(att.LineWeights)
		e.Float(att.Decay)
	case TableAttention:
		e.Uint(attTable)
		e.Int(len(att.W))
		for _, row := range att.W {
			e.Floats(row)
		}
		e.Float(att.Default)
	default:
		_ = e.Close() // the type error below is the one worth reporting
		return fmt.Errorf("core: attention %T is not snapshot-serializable", m.Attention)
	}
	return e.Close()
}

// Load restores the model from an artifact written by Save.
func (m *Model) Load(r io.Reader) error {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return err
	}
	if !strings.EqualFold(d.ModelName(), SnapshotName) {
		return fmt.Errorf("core: artifact holds a %q model, not %q", d.ModelName(), SnapshotName)
	}
	m.decodeSnapshot(d)
	return d.Close()
}

// LoadModel reads a micro-browsing artifact into a fresh model.
func LoadModel(r io.Reader) (*Model, error) {
	m := NewModel(nil)
	if err := m.Load(r); err != nil {
		return nil, err
	}
	return m, nil
}

// Decode restores a fresh model's payload from an already-open
// artifact decoder whose header named "micro". The caller must Close
// the decoder (verifying the checksum) before trusting the result.
func Decode(d *snapshot.Decoder) (*Model, error) {
	m := NewModel(nil)
	m.decodeSnapshot(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Model) decodeSnapshot(d *snapshot.Decoder) {
	// Count-prefixed storage grows incrementally with early-out on read
	// errors, so a corrupt count cannot pre-allocate gigabytes.
	n := d.Int()
	terms := make([]string, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		terms = append(terms, d.String())
		if d.Err() != nil {
			return
		}
	}
	m.Relevance = make(map[string]float64, min(n, 4096))
	for _, t := range terms {
		m.Relevance[t] = d.Float()
		if d.Err() != nil {
			return
		}
	}
	m.DefaultRelevance = d.Float()

	switch kind := d.Uint(); kind {
	case attNil:
		m.Attention = nil
	case attFull:
		m.Attention = FullAttention{}
	case attGeometric:
		m.Attention = GeometricAttention{LineWeights: d.Floats(), Decay: d.Float()}
	case attTable:
		rows := d.Int()
		w := make([][]float64, 0, min(rows, 4096))
		for i := 0; i < rows; i++ {
			w = append(w, d.Floats())
			if d.Err() != nil {
				return
			}
		}
		m.Attention = TableAttention{W: w, Default: d.Float()}
	default:
		d.Failf("unknown attention kind %d", kind)
	}
}

// NumParams reports the relevance-table size — the engine's Models()
// metadata for micro scorers.
func (m *Model) NumParams() int { return len(m.Relevance) }
