package core

// Compiled serving path: the map-based Model is the fitting and
// analysis surface; CompiledModel is its read-optimised twin, built
// once per install (engine.NewMicroScorer compiles on wrap, so
// Register/LoadSnapshot/hot-swap all publish pre-compiled versions).
//
// Compilation mirrors what internal/clickmodel's compile layer did for
// training: every relevance key is interned into a textproc.TermVocab,
// the clamped relevance and its logarithm land in flat ID-indexed
// []float64 (the log is precomputed, so the serving loop never calls
// math.Log), and the attention layer is sampled into a dense
// (line, pos) table covering the micro-positions real snippets use.
// ScoreSnippet then fuses CTR and expected score into one pass over
// byte-span token windows — no Term structs, no joined n-gram strings,
// no map lookups, zero steady-state allocations.

import (
	"math"

	"repro/internal/textproc"
)

// Attention-table bounds: snippets are at most a handful of lines of
// short ad text, so a small dense table covers essentially every term;
// coordinates beyond it fall back to the exact Attention interface.
const (
	attTableLines = 8
	attTableCols  = 32
)

// CompiledModel is a Model compiled for serving: interned relevance
// IDs, precomputed log-relevances, and a dense attention table. It is
// immutable after Compile and safe for concurrent use; the source
// Model must not be mutated once compiled (the same contract the
// engine has always imposed on installed scorers).
type CompiledModel struct {
	src *Model

	// vocab is frozen — flat blob/offsets/table slices with no interior
	// pointers — so a compiled model is the SAME shape whether Compile
	// built it on the heap or CompiledFromArtifact wrapped a read-only
	// file mapping (v2 snapshots). The scoring loop cannot tell.
	vocab  *textproc.FrozenVocab
	rel    []float64 // id -> clamped relevance
	logRel []float64 // id -> log(clamped relevance), precomputed

	defRel    float64 // clamped DefaultRelevance for unknown terms
	defLogRel float64

	att     Attention // exact fallback for coordinates beyond the table
	attW    []float64 // dense table: attW[(line-1)*attTableCols + pos-1]
	attFull bool      // FullAttention short-circuit: every a_i = 1
}

// clampRel mirrors Model.TermRelevance's clamp to (0, 1] so that the
// precomputed logarithm is finite.
func clampRel(r float64) float64 {
	if r < 1e-9 {
		return 1e-9
	}
	if r > 1 {
		return 1
	}
	return r
}

// Compile builds the serving-optimised form of the model. The model
// must be fully fitted: later mutations of the Relevance map or the
// Attention layer are not observed by the compiled form.
func (m *Model) Compile() *CompiledModel {
	att := m.attention()
	c := &CompiledModel{
		src: m,
		rel: make([]float64, len(m.Relevance)),
		att: att,
	}
	if _, ok := att.(FullAttention); ok {
		c.attFull = true
	}

	def := m.DefaultRelevance
	if def == 0 {
		def = 0.5
	}
	c.defRel = clampRel(def)
	c.defLogRel = math.Log(c.defRel)

	tv := textproc.NewTermVocab(len(m.Relevance))
	for t, r := range m.Relevance {
		id := tv.Add(t)
		c.rel[id] = clampRel(r)
	}
	c.vocab = textproc.FreezeVocab(tv)
	c.logRel = make([]float64, len(c.rel))
	for id, r := range c.rel {
		c.logRel[id] = math.Log(r)
	}

	if !c.attFull {
		c.attW = make([]float64, attTableLines*attTableCols)
		for line := 1; line <= attTableLines; line++ {
			for pos := 1; pos <= attTableCols; pos++ {
				c.attW[(line-1)*attTableCols+pos-1] = att.Examine(line, pos)
			}
		}
	}
	return c
}

// Source returns the Model this compiled form was built from.
func (c *CompiledModel) Source() *Model { return c.src }

// NumParams reports the interned relevance-table size.
func (c *CompiledModel) NumParams() int { return c.vocab.Len() }

// examine is the dense-table attention lookup; out-of-table
// coordinates (deep lines, very long lines) take the exact interface
// path, so the table is a cache, never an approximation.
func (c *CompiledModel) examine(line, pos int) float64 {
	if c.attFull {
		return 1
	}
	if line >= 1 && line <= attTableLines && pos >= 1 && pos <= attTableCols {
		return c.attW[(line-1)*attTableCols+pos-1]
	}
	return c.att.Examine(line, pos)
}

// ScoreSnippet computes, in one fused pass and without allocating,
// the micro CTR — the exact expectation of Eq. 3 under independent
// micro-examination, Π (a_i·r_i + 1 − a_i) — and the expected
// log-probability score Σ a_i·log r_i whose pairwise differences
// reproduce Eq. 5. Clamping and the empty/NaN CTR guard match
// Model.ScoreSnippet; terms accumulate in window-start order rather
// than gram-size order, so the only divergence from the map path is
// float re-association, and the parity suite pins both CTR and Score
// to 1e-12.
//
// sc is the caller-owned tokenisation scratch (one per goroutine);
// every n-gram window resolves through the interned vocab by byte
// hashing, so no term string is ever materialised.
func (c *CompiledModel) ScoreSnippet(lines []string, maxN int, sc *textproc.Scratch) (ctr, score float64) {
	// Mirror textproc.ExtractTerms's gram-order clamp.
	if maxN < 1 {
		maxN = 1
	}
	if maxN > 3 {
		maxN = 3
	}
	ctr = 1.0
	terms := 0
	vocab := c.vocab
	for li, line := range lines {
		spans := sc.Tokenize(line)
		lineNo := li + 1
		// Iterate by window start: the 1..maxN windows anchored at token
		// i share the attention value (a term's micro-position is its
		// first token's) and share hash prefixes, so one attention
		// lookup and a running window hash cover all gram sizes.
		for i := range spans {
			a := c.examine(lineNo, i+1)
			am := 1 - a
			nmax := maxN
			if left := len(spans) - i; left < nmax {
				nmax = left
			}
			h := textproc.NGramHashSeed
			start := spans[i].Start
			for n := 1; n <= nmax; n++ {
				sp := spans[i+n-1]
				h = textproc.ExtendNGramHash(h, sp.Hash)
				r, lr := c.defRel, c.defLogRel
				if id, ok := vocab.LookupHashed(h, sc.Norm[start:sp.End]); ok {
					r, lr = c.rel[id], c.logRel[id]
				}
				ctr *= a*r + am
				score += a * lr
			}
			terms += nmax
		}
	}
	if terms == 0 || math.IsNaN(ctr) {
		ctr = 0
	}
	return ctr, score
}

// ScoreSnippet is the fused, uncompiled scoring pass: one walk over
// the extracted terms computes both the exact Eq. 3 CTR expectation
// and the expected log-probability score, where the previous serving
// path walked the terms twice (CTR, then ExpectedScore re-doing the
// attention, map lookup and logarithm). CompiledModel.ScoreSnippet is
// the allocation-free form of the same computation.
func (m *Model) ScoreSnippet(lines []string, maxN int) (ctr, score float64) {
	terms := textproc.ExtractTerms(lines, maxN)
	ctr = 1.0
	for _, t := range terms {
		a := m.Examine(t)
		r := m.TermRelevance(t.Text)
		ctr *= a*r + 1 - a
		score += a * math.Log(r)
	}
	if len(terms) == 0 || math.IsNaN(ctr) {
		ctr = 0
	}
	return ctr, score
}
