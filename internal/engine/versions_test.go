package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// constScorer answers every request with a fixed CTR — version plumbing
// is visible through the score.
type constScorer float64

func (c constScorer) ScoreCTR(ctx context.Context, req Request) (Response, error) {
	return Response{CTR: float64(c)}, nil
}

func TestVersionAddressing(t *testing.T) {
	e := New()
	ctx := context.Background()
	e.Register("m", constScorer(0.1))
	e.Register("m", constScorer(0.2))
	e.Register("m", constScorer(0.3))

	cases := map[string]float64{"m": 0.3, "m@1": 0.1, "m@2": 0.2, "m@3": 0.3, "M@2 ": 0.2}
	for ref, want := range cases {
		resp, err := e.ScoreCTR(ctx, Request{Model: ref})
		if err != nil {
			t.Fatalf("%q: %v", ref, err)
		}
		if resp.CTR != want {
			t.Errorf("%q: CTR %v, want %v", ref, resp.CTR, want)
		}
		if resp.Model != "m" {
			t.Errorf("%q: Model = %q", ref, resp.Model)
		}
	}
	// The serving version is stamped on responses.
	resp, _ := e.ScoreCTR(ctx, Request{Model: "m"})
	if resp.ModelVersion != 3 {
		t.Errorf("latest ModelVersion = %d, want 3", resp.ModelVersion)
	}
	resp, _ = e.ScoreCTR(ctx, Request{Model: "m@1"})
	if resp.ModelVersion != 1 {
		t.Errorf("pinned ModelVersion = %d, want 1", resp.ModelVersion)
	}

	// Unknown versions and malformed references fail loudly.
	if _, err := e.ScoreCTR(ctx, Request{Model: "m@9"}); err == nil || !strings.Contains(err.Error(), "no installed version 9") {
		t.Errorf("m@9: %v", err)
	}
	for _, bad := range []string{"m@", "m@x", "m@0", "m@-1", "@2"} {
		if _, err := e.ScoreCTR(ctx, Request{Model: bad}); err == nil {
			t.Errorf("%q resolved cleanly", bad)
		}
	}
}

func TestRollback(t *testing.T) {
	e := New()
	ctx := context.Background()
	e.Register("m", constScorer(0.1))
	e.Register("m", constScorer(0.2))

	info, err := e.Rollback("m")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || !info.Latest {
		t.Fatalf("rollback info = %+v", info)
	}
	if resp, _ := e.ScoreCTR(ctx, Request{Model: "m"}); resp.CTR != 0.1 || resp.ModelVersion != 1 {
		t.Errorf("after rollback: CTR %v v%d, want 0.1 v1", resp.CTR, resp.ModelVersion)
	}
	// The rolled-back version stays addressable.
	if resp, _ := e.ScoreCTR(ctx, Request{Model: "m@2"}); resp.CTR != 0.2 {
		t.Errorf("m@2 after rollback: %v", resp.CTR)
	}
	// No further version to roll back to.
	if _, err := e.Rollback("m"); err == nil {
		t.Error("second rollback succeeded with no earlier version")
	}
	if _, err := e.Rollback("ghost"); err == nil {
		t.Error("rollback of unknown model succeeded")
	}
	// A new install after rollback continues the version counter.
	info = e.Register("m", constScorer(0.5))
	if info.Version != 3 {
		t.Errorf("post-rollback install got version %d, want 3", info.Version)
	}
	if resp, _ := e.ScoreCTR(ctx, Request{Model: "m"}); resp.CTR != 0.5 {
		t.Errorf("latest after re-install: %v", resp.CTR)
	}
}

func TestKeepVersionsPruning(t *testing.T) {
	e := New(WithKeepVersions(2))
	for i := 1; i <= 5; i++ {
		e.Register("m", constScorer(float64(i)/10))
	}
	infos := e.Models()
	if len(infos) != 2 {
		t.Fatalf("kept %d versions, want 2: %v", len(infos), infos)
	}
	if infos[0].Version != 4 || infos[1].Version != 5 {
		t.Errorf("kept versions %d/%d, want 4/5", infos[0].Version, infos[1].Version)
	}
	if _, err := e.ScoreCTR(context.Background(), Request{Model: "m@1"}); err == nil {
		t.Error("pruned version still resolvable")
	}
}

// TestEngineSnapshotRoundTrip closes the fit → Save → Load → serve
// loop through the engine for a macro model and the micro model.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	sessions := testSessions(300)
	e := New()
	if _, err := e.Fit("pbm", sessions[:200], Iterations(5)); err != nil {
		t.Fatal(err)
	}
	e.UseMicro(testMicroModel())

	for _, name := range []string{"pbm", NameMicro} {
		var buf bytes.Buffer
		if err := e.SaveSnapshot(name, &buf); err != nil {
			t.Fatalf("save %s: %v", name, err)
		}
		serve := New()
		info, err := serve.LoadSnapshot("", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if info.Name != name || info.Version != 1 || info.Source != "snapshot" {
			t.Fatalf("load info = %+v", info)
		}

		var reqs []Request
		if name == "pbm" {
			for i := range sessions[200:250] {
				reqs = append(reqs, Request{ID: fmt.Sprint(i), Model: name, Session: &sessions[200+i]})
			}
		} else {
			reqs = []Request{{ID: "m", Model: name, Lines: testLines}}
		}
		want := e.ScoreBatch(ctx, reqs)
		got := serve.ScoreBatch(ctx, reqs)
		for i := range want {
			if got[i].Err != nil {
				t.Fatalf("%s req %d: %v", name, i, got[i].Err)
			}
			if math.Abs(got[i].CTR-want[i].CTR) > 1e-12 {
				t.Errorf("%s req %d: CTR %v, want %v", name, i, got[i].CTR, want[i].CTR)
			}
			for j := range want[i].Positions {
				if math.Abs(got[i].Positions[j]-want[i].Positions[j]) > 1e-12 {
					t.Errorf("%s req %d pos %d: %v, want %v", name, i, j, got[i].Positions[j], want[i].Positions[j])
				}
			}
		}
	}

	// Installing under an explicit name overrides the artifact name.
	var buf bytes.Buffer
	if err := e.SaveSnapshot("pbm", &buf); err != nil {
		t.Fatal(err)
	}
	serve := New()
	info, err := serve.LoadSnapshot("canary", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "canary" {
		t.Errorf("explicit name ignored: %+v", info)
	}
	if resp, err := serve.ScoreCTR(ctx, Request{Model: "canary", Session: &sessions[0]}); err != nil || resp.CTR <= 0 {
		t.Errorf("canary scoring: %v %v", resp.CTR, err)
	}
}

func TestSaveSnapshotUnknownRef(t *testing.T) {
	e := New()
	if err := e.SaveSnapshot("ghost", &bytes.Buffer{}); err == nil {
		t.Fatal("saved an unknown model")
	}
	e.Register("custom", constScorer(0.5))
	if err := e.SaveSnapshot("custom", &bytes.Buffer{}); err == nil {
		t.Fatal("saved a non-serializable scorer")
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	e := New()
	if _, err := e.LoadSnapshot("x", strings.NewReader("not an artifact")); err == nil {
		t.Fatal("garbage artifact loaded")
	}
}

// TestLoadSnapshotRejectsVersionedName: '@' names arrive from the wire
// (POST /v1/models/pbm@2/load), so they must error, not panic.
func TestLoadSnapshotRejectsVersionedName(t *testing.T) {
	e := New()
	e.UseMicro(testMicroModel())
	var buf bytes.Buffer
	if err := e.SaveSnapshot(NameMicro, &buf); err != nil {
		t.Fatal(err)
	}
	_, err := e.LoadSnapshot("pbm@2", &buf)
	if err == nil || !strings.Contains(err.Error(), "@") {
		t.Fatalf("versioned install name accepted: %v", err)
	}
}

// TestDefaultModelMayPinVersion: WithDefaultModel("m@1") must serve
// version 1 for bare requests.
func TestDefaultModelMayPinVersion(t *testing.T) {
	e := New(WithDefaultModel("m@1"))
	e.Register("m", constScorer(0.1))
	e.Register("m", constScorer(0.2))
	resp, err := e.ScoreCTR(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CTR != 0.1 || resp.ModelVersion != 1 || resp.Model != "m" {
		t.Errorf("pinned default served %+v", resp)
	}
}

// TestHotSwapUnderLoad is the -race e2e of the atomic table: scoring
// goroutines hammer ScoreBatch while a writer continuously refits,
// snapshots, hot-swaps and rolls back the same model name. Every
// response must come from some complete installed version.
func TestHotSwapUnderLoad(t *testing.T) {
	sessions := testSessions(300)
	e := New(WithWorkers(4))
	if _, err := e.Fit("pbm", sessions[:150], Iterations(2)); err != nil {
		t.Fatal(err)
	}
	var artifact bytes.Buffer
	if err := e.SaveSnapshot("pbm", &artifact); err != nil {
		t.Fatal(err)
	}

	reqs := make([]Request, 40)
	for i := range reqs {
		reqs[i] = Request{ID: fmt.Sprint(i), Model: "pbm", Session: &sessions[150+i%100]}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for i, resp := range e.ScoreBatch(context.Background(), reqs) {
					if resp.Err != nil {
						t.Errorf("req %d: %v", i, resp.Err)
						return
					}
					if resp.ModelVersion < 1 {
						t.Errorf("req %d: served by version %d", i, resp.ModelVersion)
						return
					}
				}
			}
		}()
	}

	for k := 0; k < 15; k++ {
		if _, err := e.Fit("pbm", sessions[:150], Iterations(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.LoadSnapshot("pbm", bytes.NewReader(artifact.Bytes())); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Rollback("pbm"); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// TestResponseErrorJSON pins the wire behaviour the Error field exists
// for: a failed response must not serialize its failure as "{}".
func TestResponseErrorJSON(t *testing.T) {
	e := New()
	resp, err := e.ScoreCTR(context.Background(), Request{ID: "r", Model: "ghost", Lines: testLines})
	if err == nil {
		t.Fatal("unknown model scored")
	}
	raw, jerr := json.Marshal(resp)
	if jerr != nil {
		t.Fatal(jerr)
	}
	var decoded struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Error == "" || !strings.Contains(decoded.Error, "ghost") {
		t.Fatalf("error lost on the wire: %s", raw)
	}
	// And a successful response has no error key at all.
	e.UseMicro(testMicroModel())
	ok, _ := e.ScoreCTR(context.Background(), Request{Lines: testLines})
	raw, _ = json.Marshal(ok)
	if bytes.Contains(raw, []byte(`"error"`)) {
		t.Fatalf("success carries an error key: %s", raw)
	}
}

// TestModelInfoRef covers the name@version formatting used by logs and
// the serving admin surface.
func TestModelInfoRef(t *testing.T) {
	mi := ModelInfo{Name: "pbm", Version: 7}
	if got := mi.Ref(); got != "pbm@7" {
		t.Errorf("Ref() = %q", got)
	}
}
