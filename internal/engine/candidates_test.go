package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
)

// testCandidates builds the optimize workload shape over testLines:
// single-line edits of the shared base.
func testCandidates(n int) [][]string {
	cands := make([][]string, n)
	for i := range cands {
		edit := make([]string, len(testLines))
		copy(edit, testLines)
		edit[i%len(edit)] = "variant phrase " + strconv.Itoa(i)
		cands[i] = edit
	}
	return cands
}

func TestEngineScoreCandidatesMatchesScoreCTR(t *testing.T) {
	e := New()
	info := e.UseMicro(testMicroModel())
	ctx := context.Background()
	cands := testCandidates(24)

	out, got, err := e.ScoreCandidates(ctx, NameMicro, cands, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != info.Name || got.Version != info.Version {
		t.Fatalf("served by %s@%d, want %s@%d", got.Name, got.Version, info.Name, info.Version)
	}
	if len(out) != len(cands) {
		t.Fatalf("%d candidates scored as %d results", len(cands), len(out))
	}
	for k, lines := range cands {
		resp, err := e.ScoreCTR(ctx, Request{Model: NameMicro, Lines: lines, MaxN: 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[k].CTR-resp.CTR) > 1e-12 || math.Abs(out[k].Score-resp.Score) > 1e-12 {
			t.Fatalf("cand %d: set (%v, %v) vs ScoreCTR (%v, %v)", k, out[k].CTR, out[k].Score, resp.CTR, resp.Score)
		}
	}

	// Map-fallback scorer (no compiled form) must agree too.
	e2 := New()
	e2.Register("literal", &MicroScorer{M: testMicroModel()})
	out2, _, err := e2.ScoreCandidates(ctx, "literal", cands, 3, out[:0])
	if err != nil {
		t.Fatal(err)
	}
	for k := range cands {
		if math.Abs(out2[k].CTR-out[k].CTR) > 1e-12 || math.Abs(out2[k].Score-out[k].Score) > 1e-12 {
			t.Fatalf("cand %d: map fallback (%v, %v) vs compiled (%v, %v)", k, out2[k].CTR, out2[k].Score, out[k].CTR, out[k].Score)
		}
	}
}

func TestEngineScoreCandidatesErrors(t *testing.T) {
	e := New()
	if _, _, err := e.ScoreCandidates(context.Background(), "nope", nil, 2, nil); !errors.Is(err, ErrNoModel) {
		t.Fatalf("unknown model: err = %v, want ErrNoModel", err)
	}
	if _, err := e.Fit("pbm", testSessions(20)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ScoreCandidates(context.Background(), "pbm", testCandidates(2), 2, nil); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("macro model: err = %v, want ErrNoEvidence", err)
	}
}

// TestEngineScoreCandidatesHotSwap hot-swaps the micro model while
// candidate sets are being scored; under -race this pins that a set is
// served off one consistently resolved version with no data race.
func TestEngineScoreCandidatesHotSwap(t *testing.T) {
	e := New()
	e.UseMicro(testMicroModel())
	cands := testCandidates(64)
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := testMicroModel()
			m.Relevance["swapped "+strconv.Itoa(i)] = 0.9
			e.UseMicro(m)
		}
	}()
	var out []core.CandidateScore
	for i := 0; i < 200; i++ {
		var err error
		out, _, err = e.ScoreCandidates(ctx, NameMicro, cands, 2, out)
		if err != nil {
			t.Fatal(err)
		}
		for k := range out {
			if !(out[k].CTR > 0 && out[k].CTR <= 1) {
				t.Fatalf("iteration %d cand %d: CTR %v out of (0,1]", i, k, out[k].CTR)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestTopK drives the bounded selector against a reference sort across
// random workloads, including duplicate scores (ties break toward the
// lower index).
func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tk TopK
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(50)
		k := rng.Intn(8)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(10)) / 4 // duplicates likely
		}
		tk.Reset(k)
		for i, v := range vals {
			tk.Offer(i, v)
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if vals[order[a]] != vals[order[b]] {
				return vals[order[a]] > vals[order[b]]
			}
			return order[a] < order[b]
		})
		want := k
		if n < want {
			want = n
		}
		idx, val := tk.Sorted()
		if len(idx) != want || len(val) != want {
			t.Fatalf("trial %d: %d survivors, want %d", trial, len(idx), want)
		}
		for i := 0; i < want; i++ {
			if int(idx[i]) != order[i] || val[i] != vals[order[i]] {
				t.Fatalf("trial %d (n=%d k=%d): rank %d = (%d, %v), want (%d, %v)\nvals: %v",
					trial, n, k, i, idx[i], val[i], order[i], vals[order[i]], vals)
			}
		}
	}
}

func TestTopKZero(t *testing.T) {
	var tk TopK
	tk.Reset(0)
	tk.Offer(0, 1)
	if idx, _ := tk.Sorted(); len(idx) != 0 {
		t.Fatalf("k=0 kept %d survivors", len(idx))
	}
	tk.Reset(-3)
	tk.Offer(1, 2)
	if tk.Len() != 0 {
		t.Fatalf("k<0 kept %d survivors", tk.Len())
	}
}

// TestTopKNoalloc backs the //mb:noalloc annotations on Offer and
// Sorted: a warm Reset/Offer/Sorted cycle must not allocate.
func TestTopKNoalloc(t *testing.T) {
	var tk TopK
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = float64((i * 2654435761) % 1000)
	}
	cycle := func() {
		tk.Reset(8)
		for i, v := range vals {
			tk.Offer(i, v)
		}
		idx, _ := tk.Sorted()
		if len(idx) != 8 {
			t.Fatal("bad survivor count")
		}
	}
	cycle() // warm the backing arrays
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("warm top-k cycle allocates %v/op, want 0", allocs)
	}
}

// TestEngineScoreCandidatesNoalloc pins the warm engine path: resolve,
// pin, candidate-set score, unpin — zero allocations per call.
func TestEngineScoreCandidatesNoalloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates defer records; alloc counts only hold uninstrumented")
	}
	e := New()
	e.UseMicro(testMicroModel())
	ctx := context.Background()
	cands := testCandidates(32)
	var out []core.CandidateScore
	var err error
	out, _, err = e.ScoreCandidates(ctx, NameMicro, cands, 3, out)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		out, _, err = e.ScoreCandidates(ctx, NameMicro, cands, 3, out)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm engine ScoreCandidates allocates %v/op, want 0", allocs)
	}
}
