package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/featstats"
	"repro/internal/ml"
	"repro/internal/textproc"
)

// testSessions builds a deterministic synthetic session log with a
// strong position bias, enough to fit any registry model.
func testSessions(n int) []clickmodel.Session {
	rng := rand.New(rand.NewSource(7))
	docs := []string{"a", "b", "c", "d", "e", "f"}
	gamma := []float64{0.9, 0.6, 0.4, 0.2}
	out := make([]clickmodel.Session, 0, n)
	for k := 0; k < n; k++ {
		s := clickmodel.Session{Query: "q", Docs: make([]string, 4), Clicks: make([]bool, 4)}
		for i := range s.Docs {
			s.Docs[i] = docs[rng.Intn(len(docs))]
			s.Clicks[i] = rng.Float64() < gamma[i]*0.4
		}
		out = append(out, s)
	}
	return out
}

func testMicroModel() *core.Model {
	m := core.NewModel(core.GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	return m
}

var testLines = []string{"Acme Air", "Find cheap flights to Rome", "Great rates"}

func TestResolveUnknownModel(t *testing.T) {
	e := New()
	_, err := e.ScoreCTR(context.Background(), Request{Model: "bogus", Lines: testLines})
	if err == nil {
		t.Fatal("unknown model scored without error")
	}
	if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "pbm") {
		t.Errorf("error should name the request and the registry: %v", err)
	}
}

func TestResolveKnownButUnfitted(t *testing.T) {
	e := New()
	_, err := e.ScoreCTR(context.Background(), Request{Model: "PBM", Session: &clickmodel.Session{Docs: []string{"a"}, Clicks: []bool{false}}})
	if err == nil {
		t.Fatal("unfitted registry model scored without error")
	}
	if !strings.Contains(err.Error(), "Fit") {
		t.Errorf("error should hint at Fit: %v", err)
	}
}

// TestMicroMatchesDirectModel checks batch micro scoring against the
// direct core.Model computation: Score must equal ExpectedScore and
// CTR must equal the exact Eq. 3 expectation.
func TestMicroMatchesDirectModel(t *testing.T) {
	m := testMicroModel()
	e := New(WithWorkers(3))
	e.UseMicro(m)

	reqs := []Request{
		{ID: "r1", Lines: testLines},
		{ID: "r2", Lines: []string{"Acme Air", "Flying to Rome today", "Great rates"}},
		{ID: "r3", Lines: testLines, MaxN: 1},
	}
	resps := e.ScoreBatch(context.Background(), reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("resp %d: %v", i, resp.Err)
		}
		if resp.ID != reqs[i].ID {
			t.Errorf("resp %d: ID %q, want %q", i, resp.ID, reqs[i].ID)
		}
		if resp.Model != NameMicro {
			t.Errorf("resp %d: model %q", i, resp.Model)
		}
		maxN := reqs[i].MaxN
		if maxN == 0 {
			maxN = 2
		}
		terms := textproc.ExtractTerms(reqs[i].Lines, maxN)
		if want := m.ExpectedScore(terms); math.Abs(resp.Score-want) > 1e-12 {
			t.Errorf("resp %d: Score %v, want %v", i, resp.Score, want)
		}
		want := 1.0
		for _, tm := range terms {
			a := m.Examine(tm)
			want *= a*m.TermRelevance(tm.Text) + 1 - a
		}
		if math.Abs(resp.CTR-want) > 1e-12 {
			t.Errorf("resp %d: CTR %v, want %v", i, resp.CTR, want)
		}
		if resp.CTR <= 0 || resp.CTR > 1 {
			t.Errorf("resp %d: CTR %v outside (0,1]", i, resp.CTR)
		}
	}
}

// TestClickModelMatchesDirect fits PBM through the engine and checks
// batch responses against the fitted model's own ClickProbs.
func TestClickModelMatchesDirect(t *testing.T) {
	sessions := testSessions(400)
	train, test := sessions[:300], sessions[300:]

	e := New(WithWorkers(4), WithDefaultModel("pbm"))
	fitted, err := e.Fit("pbm", train)
	if err != nil {
		t.Fatal(err)
	}

	reqs := make([]Request, len(test))
	for i := range test {
		reqs[i] = Request{ID: fmt.Sprintf("s%d", i), Session: &test[i]}
	}
	resps := e.ScoreBatch(context.Background(), reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("resp %d: %v", i, resp.Err)
		}
		want := fitted.ClickProbs(test[i])
		if len(resp.Positions) != len(want) {
			t.Fatalf("resp %d: %d positions, want %d", i, len(resp.Positions), len(want))
		}
		var mean float64
		for j, p := range want {
			if math.Abs(resp.Positions[j]-p) > 1e-12 {
				t.Errorf("resp %d pos %d: %v, want %v", i, j, resp.Positions[j], p)
			}
			mean += p
		}
		mean /= float64(len(want))
		if math.Abs(resp.CTR-mean) > 1e-12 {
			t.Errorf("resp %d: CTR %v, want mean %v", i, resp.CTR, mean)
		}
	}
}

// TestScoreBatchPerRequestErrors mixes scorable and unscorable
// requests: failures must stay local to their slot.
func TestScoreBatchPerRequestErrors(t *testing.T) {
	e := New(WithWorkers(2))
	e.UseMicro(testMicroModel())
	reqs := []Request{
		{ID: "ok1", Lines: testLines},
		{ID: "bad-evidence"}, // micro request without lines
		{ID: "bad-model", Model: "nope", Lines: testLines},
		{ID: "ok2", Lines: testLines},
	}
	resps := e.ScoreBatch(context.Background(), reqs)
	if resps[0].Err != nil || resps[3].Err != nil {
		t.Fatalf("good requests failed: %v / %v", resps[0].Err, resps[3].Err)
	}
	if !errors.Is(resps[1].Err, ErrNoEvidence) {
		t.Errorf("evidence-less request: Err = %v, want ErrNoEvidence", resps[1].Err)
	}
	if resps[2].Err == nil {
		t.Error("unknown-model request succeeded")
	}
}

// blockingScorer blocks every call until its gate closes (or the
// context is cancelled), to hold a batch in flight.
type blockingScorer struct {
	gate    chan struct{}
	started chan struct{}
	once    sync.Once
}

func (b *blockingScorer) ScoreCTR(ctx context.Context, req Request) (Response, error) {
	b.once.Do(func() { close(b.started) })
	select {
	case <-b.gate:
		return Response{CTR: 0.5}, nil
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// TestScoreBatchCancellation cancels a batch mid-flight: ScoreBatch
// must return promptly with every slot filled and cancellation errors
// on the unprocessed requests.
func TestScoreBatchCancellation(t *testing.T) {
	b := &blockingScorer{gate: make(chan struct{}), started: make(chan struct{})}
	e := New(WithWorkers(2), WithDefaultModel("slow"))
	e.Register("slow", b)

	ctx, cancel := context.WithCancel(context.Background())
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{ID: fmt.Sprintf("r%d", i)}
	}
	done := make(chan []Response, 1)
	go func() { done <- e.ScoreBatch(ctx, reqs) }()

	<-b.started // a worker is inside the scorer, batch is in flight
	cancel()

	resps := <-done
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses, want %d", len(resps), len(reqs))
	}
	cancelled := 0
	for i, resp := range resps {
		if resp.ID != reqs[i].ID {
			t.Errorf("resp %d: ID %q, want %q", i, resp.ID, reqs[i].ID)
		}
		if errors.Is(resp.Err, context.Canceled) {
			cancelled++
		} else if resp.Err != nil {
			t.Errorf("resp %d: unexpected error %v", i, resp.Err)
		}
	}
	if cancelled == 0 {
		t.Error("no request observed the cancellation")
	}
}

// TestScoreBatchPreCancelled: a batch under an already-dead context
// does no work at all.
func TestScoreBatchPreCancelled(t *testing.T) {
	e := New()
	e.UseMicro(testMicroModel())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resps := e.ScoreBatch(ctx, []Request{{ID: "a", Lines: testLines}, {ID: "b", Lines: testLines}})
	for i, resp := range resps {
		if !errors.Is(resp.Err, context.Canceled) {
			t.Errorf("resp %d: Err = %v, want context.Canceled", i, resp.Err)
		}
	}
}

// TestConcurrentScoreBatch hammers one engine from many goroutines
// mixing micro and macro requests — the go test -race target.
func TestConcurrentScoreBatch(t *testing.T) {
	sessions := testSessions(200)
	e := New(WithWorkers(4))
	e.UseMicro(testMicroModel())
	if _, err := e.Fit("sdbn", sessions[:150]); err != nil {
		t.Fatal(err)
	}

	reqs := make([]Request, 0, 60)
	for i := 0; i < 30; i++ {
		reqs = append(reqs, Request{ID: fmt.Sprintf("m%d", i), Lines: testLines})
		reqs = append(reqs, Request{ID: fmt.Sprintf("s%d", i), Model: "sdbn", Session: &sessions[150+i%50]})
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				for i, resp := range e.ScoreBatch(context.Background(), reqs) {
					if resp.Err != nil {
						t.Errorf("req %d: %v", i, resp.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestEngineModelsAndRegister(t *testing.T) {
	e := New()
	if n := len(e.Models()); n != 0 {
		t.Fatalf("fresh engine has %d scorers", n)
	}
	e.UseMicro(testMicroModel())
	if _, err := e.Fit("cascade", testSessions(50)); err != nil {
		t.Fatal(err)
	}
	got := e.Models()
	if len(got) != 2 || got[0].Name != "cascade" || got[1].Name != "micro" {
		t.Fatalf("Models() = %v", got)
	}
	for _, mi := range got {
		if mi.Version != 1 || !mi.Latest {
			t.Errorf("%s: version %d latest %v, want fresh v1 latest", mi.Name, mi.Version, mi.Latest)
		}
		if mi.Params <= 0 {
			t.Errorf("%s: Params = %d", mi.Name, mi.Params)
		}
		if mi.FittedAt.IsZero() {
			t.Errorf("%s: FittedAt is zero", mi.Name)
		}
	}
	if got[0].Source != "fit" || got[1].Source != "register" {
		t.Errorf("sources = %q, %q", got[0].Source, got[1].Source)
	}
	if names := e.ModelNames(); len(names) != 2 || names[0] != "cascade" || names[1] != "micro" {
		t.Errorf("ModelNames() = %v", names)
	}
	// The default micro scorer is materialised lazily on first use.
	e2 := New(WithAttention(core.FullAttention{}))
	if _, err := e2.ScoreCTR(context.Background(), Request{Lines: testLines}); err != nil {
		t.Fatal(err)
	}
	if got := e2.Models(); len(got) != 1 || got[0].Name != NameMicro {
		t.Errorf("lazy micro not installed: %v", got)
	}
}

func TestFitUnknownModel(t *testing.T) {
	e := New()
	if _, err := e.Fit("nope", testSessions(10)); err == nil {
		t.Fatal("Fit of unknown model succeeded")
	}
}

func TestFitIterationsOption(t *testing.T) {
	e := New()
	m, err := e.Fit("pbm", testSessions(50), Iterations(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*clickmodel.PBM).Iterations; got != 3 {
		t.Errorf("Iterations = %d, want 3", got)
	}
	// Non-positive values keep the model default.
	m, err = e.Fit("ubm", testSessions(50), Iterations(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*clickmodel.UBM).Iterations; got != 20 {
		t.Errorf("default Iterations = %d, want 20", got)
	}
	// Non-iterative models ignore the option.
	if _, err := e.Fit("cascade", testSessions(50), Iterations(7)); err != nil {
		t.Fatal(err)
	}
}

func TestFitCompiled(t *testing.T) {
	e := New()
	sessions := testSessions(100)
	c, err := clickmodel.Compile(sessions)
	if err != nil {
		t.Fatal(err)
	}
	// Dense path: the compiled log feeds FitLog directly.
	m, err := e.FitCompiled("pbm", c, Iterations(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().Fit("pbm", sessions, Iterations(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sessions[:20] {
		a, b := m.ClickProbs(s), want.ClickProbs(s)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-9 {
				t.Fatalf("session %d pos %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
	// Fallback path: SUM has no FitLog and trains from c.Sessions().
	if _, err := e.FitCompiled("sum", c); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FitCompiled("nope", c); err == nil {
		t.Fatal("FitCompiled of unknown model succeeded")
	}
	// A nil log errors for both the FitLog and the fallback path.
	if _, err := e.FitCompiled("pbm", nil); err == nil {
		t.Fatal("FitCompiled(pbm, nil) succeeded")
	}
	if _, err := e.FitCompiled("sum", nil); err == nil {
		t.Fatal("FitCompiled(sum, nil) succeeded")
	}
}

// TestScoreCTRInplacePath pins the scorer fast path: batch scoring a
// fitted compiled-log model produces the model's own probabilities.
func TestScoreCTRInplacePath(t *testing.T) {
	e := New()
	sessions := testSessions(200)
	m, err := e.Fit("dbn", sessions)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ScoreCTR(context.Background(), Request{Model: "dbn", Session: &sessions[0]})
	if err != nil {
		t.Fatal(err)
	}
	want := m.ClickProbs(sessions[0])
	if len(resp.Positions) != len(want) {
		t.Fatalf("positions len %d, want %d", len(resp.Positions), len(want))
	}
	for i := range want {
		if math.Abs(resp.Positions[i]-want[i]) > 1e-12 {
			t.Errorf("pos %d: %v, want %v", i, resp.Positions[i], want[i])
		}
	}
}

func TestMeanCTR(t *testing.T) {
	if got, err := MeanCTR(nil); err != nil || got != 0 {
		t.Errorf("MeanCTR(nil) = %v, %v", got, err)
	}
	got, err := MeanCTR([]Response{{CTR: 0.2}, {CTR: 0.4}})
	if err != nil || math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MeanCTR = %v, %v; want 0.3", got, err)
	}
	if _, err := MeanCTR([]Response{{CTR: 0.2}, {Err: ErrNoEvidence}}); !errors.Is(err, ErrNoEvidence) {
		t.Errorf("MeanCTR should surface the request error, got %v", err)
	}
}

func TestMicroFromStats(t *testing.T) {
	db := featstats.New(1)
	for i := 0; i < 20; i++ {
		db.Observe(featstats.TermKey("find cheap"), 1)
	}
	for i := 0; i < 20; i++ {
		db.Observe(featstats.TermKey("terms apply"), -1)
	}
	db.Observe(featstats.RewriteKey("a", "b"), 1) // non-term keys are skipped

	m := MicroFromStats(db, core.FullAttention{}, 4)
	if len(m.Relevance) != 2 {
		t.Fatalf("Relevance has %d entries, want 2: %v", len(m.Relevance), m.Relevance)
	}
	want := ml.Sigmoid(db.LogOddsSmoothed(featstats.TermKey("find cheap"), 4))
	if got := m.Relevance["find cheap"]; math.Abs(got-want) > 1e-12 {
		t.Errorf("relevance[find cheap] = %v, want %v", got, want)
	}
	if up, down := m.Relevance["find cheap"], m.Relevance["terms apply"]; up <= 0.5 || down >= 0.5 {
		t.Errorf("lift direction lost: up %v, down %v", up, down)
	}
}
