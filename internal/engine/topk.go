package engine

// TopK is the bounded best-k selector of the candidate-set serving
// path: /v1/optimize ranks N candidate scores but returns only the top
// handful, so a full sort.Slice over every scored variant is both
// O(N log N) and an allocation (the closure). TopK keeps a min-heap of
// the k best offers seen — the root is the worst survivor, so a losing
// candidate costs one compare and a winning one O(log k) — and orders
// the survivors in place on demand. The zero value is ready; Reset
// reuses the backing arrays, so a warm selector allocates nothing.
//
// Ordering is by descending score with ties broken toward the lower
// index, making selection deterministic for equal scores.
type TopK struct {
	k   int
	idx []int32
	val []float64
}

// Reset empties the selector and sets its bound. k <= 0 selects
// nothing (every Offer is dropped).
func (t *TopK) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	t.idx = t.idx[:0]
	t.val = t.val[:0]
}

// Len reports how many survivors the selector currently holds
// (min(k, offers so far)).
func (t *TopK) Len() int { return len(t.idx) }

// Offer submits one (index, score) pair.
//
//mb:noalloc
func (t *TopK) Offer(idx int, score float64) {
	if len(t.idx) < t.k {
		t.idx = append(t.idx, int32(idx))
		t.val = append(t.val, score)
		t.up(len(t.idx) - 1)
		return
	}
	if t.k == 0 {
		return
	}
	// Beat the worst survivor or be dropped.
	if !(score > t.val[0] || (score == t.val[0] && int32(idx) < t.idx[0])) {
		return
	}
	t.val[0], t.idx[0] = score, int32(idx)
	t.down(0, len(t.idx))
}

// Sorted orders the survivors best-first in place and returns views of
// the selector's backing arrays (valid until the next Reset). The heap
// invariant is consumed: Reset before offering again.
//
//mb:noalloc
func (t *TopK) Sorted() (idx []int32, val []float64) {
	for end := len(t.idx) - 1; end > 0; end-- {
		t.swap(0, end)
		t.down(0, end)
	}
	return t.idx, t.val
}

// worse reports whether element i loses to element j under the
// selector's ordering — the min-heap comparison, with the worst
// element at the root.
func (t *TopK) worse(i, j int) bool {
	if t.val[i] != t.val[j] {
		return t.val[i] < t.val[j]
	}
	return t.idx[i] > t.idx[j]
}

func (t *TopK) swap(i, j int) {
	t.idx[i], t.idx[j] = t.idx[j], t.idx[i]
	t.val[i], t.val[j] = t.val[j], t.val[i]
}

func (t *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(i, p) {
			return
		}
		t.swap(i, p)
		i = p
	}
}

func (t *TopK) down(i, n int) {
	for {
		m := i
		if l := 2*i + 1; l < n && t.worse(l, m) {
			m = l
		}
		if r := 2*i + 2; r < n && t.worse(r, m) {
			m = r
		}
		if m == i {
			return
		}
		t.swap(i, m)
		i = m
	}
}
