// Package engine is the unified CTR-scoring surface of this repository:
// one request/response API over both browsing levels of the paper — the
// macro click models of Section II (internal/clickmodel) and the
// micro-browsing model of Section III (internal/core).
//
// The two levels estimate the same quantity, the probability of a
// click, from different evidence: click models from a result's position
// within a session, the micro model from the snippet text itself. The
// Scorer interface abstracts over both, and the Engine adds what a
// serving system needs on top of a single scorer:
//
//   - name-based model selection backed by the clickmodel registry, so
//     binaries pick models from config strings (-model pbm);
//   - immutable, versioned model installs: every Register/Fit/
//     LoadSnapshot publishes a new version of the named scorer into a
//     copy-on-write table behind an atomic pointer, so the read path
//     (ScoreCTR/ScoreBatch) is lock-free and in-flight requests always
//     see a consistent table. Requests address "name" (the latest
//     version) or "name@3" (a pinned version); Rollback moves the
//     latest pointer back without discarding the newer version.
//   - snapshot artifacts: SaveSnapshot writes an installed model's
//     fitted parameters as a self-describing binary artifact
//     (internal/snapshot) and LoadSnapshot hot-swaps one in — the
//     fit-offline / serve-online split (cmd/microserve is the HTTP
//     front over exactly this surface);
//   - concurrent batch scoring: ScoreBatch fans a request slice over a
//     worker pool with per-request error reporting and cooperative
//     context cancellation.
//
// The facade package re-exports the engine as the library's primary
// public API; see the repository README for the serving walkthrough
// and DESIGN.md for the system inventory.
package engine

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/mmap"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// NameMicro is the reserved scorer name of the micro-browsing model.
const NameMicro = "micro"

// Engine routes scoring requests to named, versioned scorers and runs
// batches over a worker pool. Create one with New; the zero value is
// unusable.
//
// An Engine is safe for concurrent use. Installing scorers (Register,
// Fit, LoadSnapshot, Rollback) while batches are in flight is allowed:
// writers publish a fresh immutable scorer table through an atomic
// pointer, so readers never block and each request resolves against
// one consistent table.
type Engine struct {
	workers      int
	attention    core.Attention
	defaultModel string
	keep         int
	obs          *Observer // nil = uninstrumented (see WithObserver)

	mu  sync.Mutex                  // serialises table writers only
	tab atomic.Pointer[scorerTable] // read path loads this, lock-free
}

// scorerTable is one immutable generation of the engine's model table.
// Writers clone-and-replace; readers treat everything reachable from
// it as read-only.
//
//mb:immutable
type scorerTable struct {
	entries map[string]*modelEntry
}

// modelEntry is the version history of one model name. Immutable once
// published (writers clone the entry they modify).
//
//mb:immutable
type modelEntry struct {
	latest   int // version currently served by bare-name requests
	maxVer   int // highest version ever assigned under this name
	versions map[int]modelVersion
}

// modelVersion is one installed scorer plus its metadata. art is
// non-nil for scorers whose tables view a mapped v2 artifact: the
// version table holds the artifact's owner reference, score paths pin
// it (Retain/Release) around use, and the prune in installLocked drops
// the owner reference — the mapping is unmapped only when the last
// pinned reader drains.
//
//mb:immutable
type modelVersion struct {
	scorer Scorer
	info   ModelInfo
	art    *mmap.Artifact

	// ctr is the live predicted-CTR distribution of this version
	// (micro-CTR units), allocated at install when the engine carries
	// an observer; the pointed-to histogram mutates through atomics,
	// the pointer itself never changes after publish. base pins the
	// predecessor version's distribution at publish time — the drift
	// baseline — and baseVer records which version it came from.
	ctr     *obs.Histogram
	base    *obs.Snapshot
	baseVer int
}

// ModelInfo describes one installed model version — the engine's
// Models() metadata and the wire shape of GET /v1/models.
type ModelInfo struct {
	// Name is the canonical scorer name.
	Name string `json:"name"`
	// Version is the install counter under this name (1-based,
	// monotonic; never reused even after Rollback).
	Version int `json:"version"`
	// Latest reports whether bare-name requests resolve to this version.
	Latest bool `json:"latest"`
	// Params is the fitted parameter count (0 when unknown).
	Params int `json:"params"`
	// Source records how the version arrived: "fit", "register" or
	// "snapshot".
	Source string `json:"source"`
	// FittedAt is the install time (UTC).
	FittedAt time.Time `json:"fitted_at"`
}

// Ref is the version-addressed name of this model ("pbm@3").
func (mi ModelInfo) Ref() string {
	return mi.Name + "@" + strconv.Itoa(mi.Version)
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithWorkers sets the ScoreBatch worker-pool size (default
// runtime.GOMAXPROCS(0); values < 1 are treated as 1).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// WithAttention sets the attention layer used when the engine builds
// its own default micro-browsing scorer (i.e. when no scorer was
// explicitly installed under NameMicro). nil keeps the degenerate
// FullAttention bag-of-terms behaviour.
func WithAttention(att core.Attention) Option {
	return func(e *Engine) { e.attention = att }
}

// WithDefaultModel sets the scorer used by requests that leave
// Request.Model empty (default NameMicro).
func WithDefaultModel(name string) Option {
	return func(e *Engine) { e.defaultModel = canonical(name) }
}

// WithKeepVersions bounds the version history kept per model name
// (default 8). Older versions beyond the bound are dropped on install;
// n <= 0 keeps every version. The served (latest) version is never
// dropped.
func WithKeepVersions(n int) Option {
	return func(e *Engine) { e.keep = n }
}

// defaultKeepVersions bounds per-name history so a serving process
// refitting on live traffic does not accumulate old parameter tables
// without bound.
const defaultKeepVersions = 8

// New returns an Engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:      runtime.GOMAXPROCS(0),
		defaultModel: NameMicro,
		keep:         defaultKeepVersions,
	}
	e.tab.Store(&scorerTable{entries: map[string]*modelEntry{}})
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// canonical normalises scorer names: registry names are case- and
// whitespace-insensitive.
func canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// parseRef splits a model reference into canonical name and pinned
// version: "pbm" → ("pbm", 0), "pbm@3" → ("pbm", 3). Version 0 means
// "latest".
func parseRef(ref string) (name string, version int, err error) {
	name = canonical(ref)
	at := strings.LastIndexByte(name, '@')
	if at < 0 {
		return name, 0, nil
	}
	v, convErr := strconv.Atoi(strings.TrimSpace(name[at+1:]))
	if convErr != nil || v < 1 || at == 0 {
		return "", 0, fmt.Errorf("%w: bad reference %q (want name or name@version)", ErrNoModel, ref)
	}
	return strings.TrimSpace(name[:at]), v, nil
}

// requestModel is the canonical name a request will resolve to,
// without resolving: used to stamp responses that never reach a scorer
// (cancellation) so Response.Model is populated even on error.
func (e *Engine) requestModel(ref string) string {
	name, _, err := parseRef(ref)
	if err != nil {
		return canonical(ref)
	}
	if name == "" {
		if dn, _, derr := parseRef(e.defaultModel); derr == nil && dn != "" {
			return dn
		}
		return e.defaultModel
	}
	return name
}

// installLocked publishes a new version of name serving s. Caller
// holds e.mu. art, when non-nil, is the mapped artifact backing the
// scorer; the table takes over its owner reference.
func (e *Engine) installLocked(name string, s Scorer, source string, art *mmap.Artifact) ModelInfo {
	cur := e.tab.Load()
	next := &scorerTable{entries: make(map[string]*modelEntry, len(cur.entries)+1)}
	for k, v := range cur.entries {
		next.entries[k] = v
	}

	ent := &modelEntry{versions: map[int]modelVersion{}}
	prevLatest := 0
	if old := cur.entries[name]; old != nil {
		ent.maxVer = old.maxVer
		prevLatest = old.latest
		for v, mv := range old.versions {
			ent.versions[v] = mv
		}
	}
	ent.maxVer++
	ent.latest = ent.maxVer
	info := ModelInfo{
		Name:     name,
		Version:  ent.maxVer,
		Params:   scorerParams(s),
		Source:   source,
		FittedAt: time.Now().UTC(),
	}
	nv := modelVersion{scorer: s, info: info, art: art}
	if e.obs != nil {
		// Observed engines track each version's predicted-CTR
		// distribution, and pin the outgoing serving version's live
		// distribution as the newcomer's drift baseline: "does the new
		// version predict CTRs shaped like what we were just serving?"
		// is exactly the question /healthz answers after an online
		// publish. A predecessor with no recorded scores pins nothing —
		// no evidence is not a baseline.
		nv.ctr = &obs.Histogram{}
		if prev, ok := ent.versions[prevLatest]; ok && prev.ctr != nil && prev.ctr.Count() > 0 {
			base := prev.ctr.Snapshot()
			nv.base = &base
			nv.baseVer = prevLatest
		}
	}
	ent.versions[ent.maxVer] = nv

	if e.keep > 0 && len(ent.versions) > e.keep {
		vers := make([]int, 0, len(ent.versions))
		for v := range ent.versions {
			vers = append(vers, v)
		}
		sort.Ints(vers)
		for _, v := range vers[:len(vers)-e.keep] {
			if v != ent.latest {
				// Dropping a mapped version surrenders the table's owner
				// reference. In-flight requests that pinned the artifact
				// keep the mapping alive until they Release; requests that
				// resolved it from an older table generation but have not
				// pinned yet will fail Retain and re-resolve. Pruning runs
				// once per version: entry clones share modelVersion values,
				// but only this canonical (mu-serialised) history deletes.
				if mv := ent.versions[v]; mv.art != nil {
					mv.art.Release()
				}
				delete(ent.versions, v)
			}
		}
	}

	next.entries[name] = ent
	e.tab.Store(next)
	info.Latest = true // the stored copy leaves Latest to Models(), which computes it per table generation
	return info
}

// install takes the writer lock and publishes a new version. Name
// validation returns an error (not a panic) because names arrive from
// the wire via LoadSnapshot.
func (e *Engine) install(name string, s Scorer, source string) (ModelInfo, error) {
	return e.installArtifact(name, s, source, nil)
}

// installArtifact is install carrying a mapped artifact's owner
// reference; on a rejected install the reference is released so the
// mapping does not leak.
func (e *Engine) installArtifact(name string, s Scorer, source string, art *mmap.Artifact) (ModelInfo, error) {
	key := canonical(name)
	if key == "" || s == nil {
		if art != nil {
			art.Release()
		}
		return ModelInfo{}, fmt.Errorf("engine: install needs a name and a scorer")
	}
	if strings.ContainsRune(key, '@') {
		if art != nil {
			art.Release()
		}
		return ModelInfo{}, fmt.Errorf("engine: model name %q must not contain '@' (reserved for version references)", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.installLocked(key, s, source, art), nil
}

// mustInstall is install for compile-time-known names, where a bad
// name or nil scorer is a programmer error worth failing loudly at
// process start.
func (e *Engine) mustInstall(name string, s Scorer, source string) ModelInfo {
	info, err := e.install(name, s, source)
	if err != nil {
		panic(err)
	}
	return info
}

// SourceOnline is the Models() provenance tag of versions published by
// the online learning loop (internal/stream).
const SourceOnline = "online"

// InstallModel installs a fitted click model under its canonical name
// with the given provenance tag (shown as ModelInfo.Source). It is the
// error-returning counterpart of RegisterModel for callers that
// install models at runtime — the online publisher above all — where a
// bad model must not panic the serving process. An empty source is
// recorded as "register".
func (e *Engine) InstallModel(m clickmodel.Model, source string) (ModelInfo, error) {
	if m == nil {
		return ModelInfo{}, fmt.Errorf("engine: InstallModel with nil model")
	}
	if source == "" {
		source = "register"
	}
	return e.install(m.Name(), NewClickModelScorer(m), source)
}

// InstallMicro is InstallModel for the micro-browsing model: the new
// version is compiled on wrap and published under NameMicro.
func (e *Engine) InstallMicro(m *core.Model, source string) (ModelInfo, error) {
	if m == nil {
		return ModelInfo{}, fmt.Errorf("engine: InstallMicro with nil model")
	}
	if source == "" {
		source = "register"
	}
	return e.install(NameMicro, NewMicroScorer(m), source)
}

// Register installs a scorer as a new version under the given name.
// Earlier versions stay addressable as name@version (subject to
// WithKeepVersions pruning). Invalid names and nil scorers panic —
// Register wires code, not wire input; use LoadSnapshot for the
// latter.
func (e *Engine) Register(name string, s Scorer) ModelInfo {
	return e.mustInstall(name, s, "register")
}

// RegisterModel installs a fitted macro click model under its own name.
func (e *Engine) RegisterModel(m clickmodel.Model) ModelInfo {
	return e.mustInstall(m.Name(), NewClickModelScorer(m), "fit")
}

// UseMicro installs a micro-browsing model as the NameMicro scorer.
func (e *Engine) UseMicro(m *core.Model) ModelInfo {
	return e.mustInstall(NameMicro, NewMicroScorer(m), "register")
}

// FitOption tunes a freshly constructed registry model before Fit
// trains it.
type FitOption func(clickmodel.Model)

// Iterations sets the EM iteration count on models that expose one
// (clickmodel.IterativeModel); other models ignore it. Values <= 0
// keep the model default.
func Iterations(n int) FitOption {
	return func(m clickmodel.Model) {
		if n <= 0 {
			return
		}
		if it, ok := m.(clickmodel.IterativeModel); ok {
			it.SetIterations(n)
		}
	}
}

// Fit constructs the named model from the clickmodel registry, applies
// the options, trains it on the session log, installs it as a new
// version, and returns the fitted instance (e.g. for offline
// evaluation with clickmodel.Evaluate or snapshotting with Save).
func (e *Engine) Fit(name string, sessions []clickmodel.Session, opts ...FitOption) (clickmodel.Model, error) {
	m, err := clickmodel.New(name)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(m)
	}
	if err := m.Fit(sessions); err != nil {
		return nil, fmt.Errorf("engine: fitting %s: %w", m.Name(), err)
	}
	e.RegisterModel(m)
	return m, nil
}

// FitCompiled is Fit over a pre-compiled session log: when several
// models train on one log, Compile once and the per-model interning
// pass disappears. Models without a FitLog path fall back to the
// compiled log's source sessions.
func (e *Engine) FitCompiled(name string, c *clickmodel.CompiledLog, opts ...FitOption) (clickmodel.Model, error) {
	if c == nil {
		return nil, fmt.Errorf("engine: FitCompiled(%q) on a nil compiled log", name)
	}
	m, err := clickmodel.New(name)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(m)
	}
	if lf, ok := m.(clickmodel.LogFitter); ok {
		err = lf.FitLog(c)
	} else {
		err = m.Fit(c.Sessions())
	}
	if err != nil {
		return nil, fmt.Errorf("engine: fitting %s: %w", m.Name(), err)
	}
	e.RegisterModel(m)
	return m, nil
}

// Models returns the metadata of every installed model version,
// sorted by name then version.
func (e *Engine) Models() []ModelInfo {
	t := e.tab.Load()
	out := make([]ModelInfo, 0, len(t.entries))
	for _, ent := range t.entries {
		for v, mv := range ent.versions {
			info := mv.info
			info.Latest = v == ent.latest
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// ModelCount reports the number of installed model names from one
// atomic table load. It is the allocation-free counter behind
// GET /healthz; ModelNames sorts a freshly allocated slice, which a
// liveness probe called at monitoring frequency has no use for.
func (e *Engine) ModelCount() int {
	return len(e.tab.Load().entries)
}

// ModelNames returns the installed model names in sorted order.
func (e *Engine) ModelNames() []string {
	t := e.tab.Load()
	names := make([]string, 0, len(t.entries))
	for name := range t.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Rollback moves a model's latest pointer to the highest version below
// the current one, so bare-name requests are served by the previous
// model while the rolled-back version stays addressable by name@version.
// Returns the metadata of the newly-latest version.
func (e *Engine) Rollback(name string) (ModelInfo, error) {
	key := canonical(name)
	e.mu.Lock()
	defer e.mu.Unlock()

	cur := e.tab.Load()
	old := cur.entries[key]
	if old == nil {
		return ModelInfo{}, fmt.Errorf("engine: rollback of unknown model %q (installed: %s)",
			name, strings.Join(e.ModelNames(), ", "))
	}
	prev := 0
	for v := range old.versions {
		if v < old.latest && v > prev {
			prev = v
		}
	}
	if prev == 0 {
		return ModelInfo{}, fmt.Errorf("engine: model %q has no version before %d to roll back to", name, old.latest)
	}

	next := &scorerTable{entries: make(map[string]*modelEntry, len(cur.entries))}
	for k, v := range cur.entries {
		next.entries[k] = v
	}
	ent := &modelEntry{latest: prev, maxVer: old.maxVer, versions: make(map[int]modelVersion, len(old.versions))}
	for v, mv := range old.versions {
		ent.versions[v] = mv
	}
	next.entries[key] = ent
	e.tab.Store(next)

	info := ent.versions[prev].info
	info.Latest = true
	return info, nil
}

// LoadSnapshot decodes a model artifact (written by SaveSnapshot, a
// model's own Save, or cmd/clickmodelfit -o) and installs it as a new
// version under name; an empty name installs under the model name
// recorded in the artifact. The swap is atomic: requests in flight
// keep the version they resolved, later requests see the new one.
//
// Both artifact generations are accepted, sniffed by magic: v1
// ("MBSN") decodes through the varint codec, v2 ("MBS2") is read into
// anonymous memory, CRC-verified (stream provenance is untrusted) and
// served zero-parse. For v2 files on disk prefer LoadSnapshotFile,
// which maps the file instead of copying it.
func (e *Engine) LoadSnapshot(name string, r io.Reader) (ModelInfo, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(4); err == nil && snapshot.IsV2(magic) {
		data, err := io.ReadAll(br)
		if err != nil {
			return ModelInfo{}, err
		}
		art, err := mmap.FromBytes(data)
		if err != nil {
			return ModelInfo{}, err
		}
		return e.loadArtifact(name, art, true)
	}
	s, artifactName, err := DecodeScorer(br)
	if err != nil {
		return ModelInfo{}, err
	}
	key := canonical(name)
	if key == "" {
		key = artifactName
	}
	return e.install(key, s, "snapshot")
}

// LoadSnapshotFile installs a model artifact from disk. A v2 artifact
// is mapped read-only (O(1) in artifact size — the tables are served
// straight off the page cache) without a checksum pass: local files
// are trusted the way any loaded code is, and the per-section CRCs
// remain available via LoadSnapshotFileVerified for artifacts of
// doubtful provenance. A v1 artifact takes the decode path.
func (e *Engine) LoadSnapshotFile(name, path string) (ModelInfo, error) {
	return e.loadSnapshotFile(name, path, false)
}

// LoadSnapshotFileVerified is LoadSnapshotFile with a full CRC-32C
// pass over every v2 section before install — one sequential read of
// the file, the admin-endpoint default for uploaded artifacts.
func (e *Engine) LoadSnapshotFileVerified(name, path string) (ModelInfo, error) {
	return e.loadSnapshotFile(name, path, true)
}

func (e *Engine) loadSnapshotFile(name, path string, verify bool) (ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ModelInfo{}, err
	}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return ModelInfo{}, fmt.Errorf("engine: %s: %w", path, err)
	}
	if !snapshot.IsV2(magic[:]) {
		// v1: rewind and decode through the varint codec.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return ModelInfo{}, err
		}
		info, err := e.LoadSnapshot(name, f)
		f.Close()
		return info, err
	}
	f.Close()
	art, err := mmap.Open(path)
	if err != nil {
		return ModelInfo{}, err
	}
	return e.loadArtifact(name, art, verify)
}

// loadArtifact verifies (optionally), wraps and installs a parsed v2
// artifact. Ownership of art's initial reference transfers to this
// call: on any failure the artifact is released (unmapped).
func (e *Engine) loadArtifact(name string, art *mmap.Artifact, verify bool) (ModelInfo, error) {
	if verify {
		if err := art.Verify(); err != nil {
			art.Release()
			return ModelInfo{}, err
		}
	}
	s, artifactName, err := scorerFromArtifact(art.V2Artifact)
	if err != nil {
		art.Release()
		return ModelInfo{}, err
	}
	if verify {
		// The deep O(n) table scan the trusted path skips: verified
		// loads fail closed on structurally corrupt probe tables before
		// anything is installed.
		if err := validateScorerTables(s); err != nil {
			art.Release()
			return ModelInfo{}, err
		}
	}
	key := canonical(name)
	if key == "" {
		key = artifactName
	}
	return e.installArtifact(key, s, "snapshot", art)
}

// validateScorerTables runs the mapped tables' deep O(n) structural
// checks when the scorer exposes them. Constructors keep loads O(1) in
// artifact size by deferring these scans; the verified path pays for
// them explicitly.
func validateScorerTables(s Scorer) error {
	type deepValidator interface{ ValidateTables() error }
	switch t := s.(type) {
	case *MicroScorer:
		if t.c != nil {
			return t.c.ValidateTables()
		}
	case *ClickModelScorer:
		if dv, ok := t.M.(deepValidator); ok {
			return dv.ValidateTables()
		}
	}
	return nil
}

// scorerFromArtifact builds the serving view over a v2 artifact: the
// micro model maps to a compiled scorer, click-model artifacts map to
// their immutable mapped forms. All tables are zero-copy views into
// the artifact bytes.
func scorerFromArtifact(a *snapshot.V2Artifact) (Scorer, string, error) {
	name := canonical(a.ModelName)
	if name == NameMicro {
		c, err := core.CompiledFromArtifact(a)
		if err != nil {
			return nil, "", err
		}
		return NewCompiledMicroScorer(c), name, nil
	}
	m, err := clickmodel.MappedFromArtifact(a)
	if err != nil {
		return nil, "", err
	}
	return NewClickModelScorer(m), name, nil
}

// SaveSnapshot writes the model a reference resolves to ("pbm",
// "pbm@2", "micro", empty = engine default) as a binary artifact.
// Fitted models emit the v1 varint format; mapped (v2-loaded) models
// re-emit a v2 artifact, since the fitting form no longer exists.
func (e *Engine) SaveSnapshot(ref string, w io.Writer) error {
	_, _, mv, err := e.resolvePinned(ref)
	if err != nil {
		return err
	}
	if mv.art != nil {
		defer mv.art.Release()
	}
	switch t := mv.scorer.(type) {
	case *ClickModelScorer:
		if sn, ok := t.M.(clickmodel.Snapshotter); ok {
			return sn.Save(w)
		}
		return fmt.Errorf("engine: click model %q does not implement clickmodel.Snapshotter", t.M.Name())
	case *MicroScorer:
		if t.M != nil {
			return t.M.Save(w)
		}
		if t.c != nil {
			return t.c.SaveV2(w)
		}
	}
	if sn, ok := mv.scorer.(interface{ Save(io.Writer) error }); ok {
		return sn.Save(w)
	}
	return fmt.Errorf("engine: scorer %q is not snapshot-serializable", ref)
}

// DecodeScorer reads any model artifact — macro or micro — and returns
// a ready Scorer plus the canonical model name recorded in the header.
func DecodeScorer(r io.Reader) (Scorer, string, error) {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, "", err
	}
	name := canonical(d.ModelName())
	var s Scorer
	if name == NameMicro {
		m, err := core.Decode(d)
		if err != nil {
			return nil, "", err
		}
		s = NewMicroScorer(m)
	} else {
		m, err := clickmodel.Decode(d)
		if err != nil {
			return nil, "", err
		}
		s = NewClickModelScorer(m)
	}
	if err := d.Close(); err != nil {
		return nil, "", err
	}
	return s, name, nil
}

// scorerParams extracts the fitted-parameter count for Models()
// metadata; unknown scorer types report 0.
func scorerParams(s Scorer) int {
	switch t := s.(type) {
	case *ClickModelScorer:
		return clickmodel.ParamCount(t.M)
	case *MicroScorer:
		if t.M != nil {
			return t.M.NumParams()
		}
		if t.c != nil {
			return t.c.NumParams()
		}
		return 0
	case interface{ NumParams() int }:
		return t.NumParams()
	}
	return 0
}

// Stat resolves a model reference ("pbm", "pbm@2", empty = engine
// default) and returns the metadata of the version it would score
// with — the cheap existence-and-version probe behind conditional
// snapshot exports (ETag / If-None-Match).
func (e *Engine) Stat(ref string) (ModelInfo, error) {
	name, version, mv, err := e.resolve(ref)
	if err != nil {
		return ModelInfo{}, err
	}
	info := mv.info
	if t := e.tab.Load(); t.entries[name] != nil {
		info.Latest = t.entries[name].latest == version
	}
	return info, nil
}

// resolve maps a request's model reference to an installed version from
// one atomic load of the table — no locks on the read path. The micro
// scorer is built (and installed) on demand from the engine's
// attention option; registry click-model names that were never fitted
// are rejected with a hint rather than silently scored from priors.
func (e *Engine) resolve(ref string) (name string, version int, mv modelVersion, err error) {
	name, version, err = parseRef(ref)
	if err != nil {
		return "", 0, modelVersion{}, err
	}
	if name == "" {
		// The default may itself be a versioned reference
		// (WithDefaultModel("pbm@2")); honour the pin.
		name, version, err = parseRef(e.defaultModel)
		if err != nil {
			return "", 0, modelVersion{}, fmt.Errorf("engine: bad default model: %w", err)
		}
	}
	t := e.tab.Load()
	if ent := t.entries[name]; ent != nil {
		v := version
		if v == 0 {
			v = ent.latest
		}
		if mv, ok := ent.versions[v]; ok {
			return name, v, mv, nil
		}
		return name, 0, modelVersion{}, fmt.Errorf("%w: %q has no installed version %d (latest is %d)", ErrNoModel, name, version, ent.latest)
	}
	if name == NameMicro && version == 0 {
		// Materialise the default micro scorer on first use.
		e.mu.Lock()
		t = e.tab.Load() // re-check: another writer may have won
		if ent := t.entries[name]; ent != nil {
			mv := ent.versions[ent.latest]
			e.mu.Unlock()
			return name, ent.latest, mv, nil
		}
		s := NewMicroScorer(core.NewModel(e.attention))
		info := e.installLocked(name, s, "register", nil)
		// Return the stored version, not a reconstruction: the install
		// may have attached observation state (the CTR histogram) that a
		// fresh literal would silently lack.
		mv := e.tab.Load().entries[name].versions[info.Version]
		e.mu.Unlock()
		return name, info.Version, mv, nil
	}
	if _, lookupErr := clickmodel.Lookup(name); lookupErr == nil {
		return name, 0, modelVersion{}, fmt.Errorf("%w: click model %q is known but not fitted; call Fit(%q, sessions) or LoadSnapshot first", ErrNoModel, name, name)
	}
	return name, 0, modelVersion{}, fmt.Errorf("%w: unknown model %q (installed: %s; registry: %s)",
		ErrNoModel, ref, strings.Join(e.ModelNames(), ", "), strings.Join(clickmodel.Names(), ", "))
}

// resolvePinned resolves a reference and pins its mapped artifact (when
// it has one) for the caller, who must Release it after scoring. A
// failed pin means a hot swap pruned the version between the table load
// and the Retain — the fresh table is re-resolved; the retry is bounded
// because each attempt reads a strictly newer table generation.
func (e *Engine) resolvePinned(ref string) (name string, version int, mv modelVersion, err error) {
	for attempt := 0; ; attempt++ {
		name, version, mv, err = e.resolve(ref)
		if err != nil || mv.art == nil || mv.art.Retain() {
			return
		}
		if attempt == 3 {
			return name, 0, modelVersion{}, fmt.Errorf("%w: %q version %d was unloaded mid-request", ErrNoModel, name, version)
		}
	}
}

// ScoreCTR scores one request through the scorer its Model field
// references (empty = the engine default; "name@version" pins a
// version). The returned Response carries the request ID, resolved
// model name and serving version even on error.
func (e *Engine) ScoreCTR(ctx context.Context, req Request) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		resp := Response{ID: req.ID, Model: e.requestModel(req.Model)}
		resp.setErr(err)
		return resp, err
	}
	name, _, mv, err := e.resolvePinnedTimed(req.Model)
	if err != nil {
		resp := Response{ID: req.ID, Model: name}
		resp.setErr(err)
		return resp, err
	}
	if mv.art != nil {
		defer mv.art.Release()
	}
	sc := getScratch()
	defer putScratch(sc)
	if e.obs == nil {
		return e.scoreResolved(ctx, req, name, &mv, sc)
	}
	// Single requests are timed unconditionally: the HTTP score path
	// already pays JSON costs orders of magnitude above two time.Now
	// calls. Batch strands sample instead (see scoreOne).
	t0 := time.Now()
	resp, err := e.scoreResolved(ctx, req, name, &mv, sc)
	e.obs.Score.RecordSince(t0)
	return resp, err
}

// scoreResolved is the post-resolution half of ScoreCTR. Scorers that
// implement the internal scratchScorer surface run with the caller's
// scratch (per-worker in batches, pooled for single requests);
// third-party Scorer implementations take their public path. When the
// version carries a CTR histogram (observed engines), every
// successful score lands one atomic sample in it — the raw material
// of the drift block.
//
//mb:noalloc
func (e *Engine) scoreResolved(ctx context.Context, req Request, name string, mv *modelVersion, sc *scratch) (Response, error) {
	var resp Response
	var err error
	if ss, ok := mv.scorer.(scratchScorer); ok {
		resp, err = ss.scoreCTR(ctx, req, sc)
	} else {
		resp, err = mv.scorer.ScoreCTR(ctx, req)
	}
	resp.ID = req.ID
	resp.Model = name // canonical table key, whatever the scorer stamped
	resp.ModelVersion = mv.info.Version
	resp.setErr(err)
	if err == nil && mv.ctr != nil {
		mv.ctr.Record(obs.CTRUnits(resp.CTR))
	}
	return resp, err
}

// minParallelBatch is the batch size below which ScoreBatchInto scores
// inline instead of fanning out.
const minParallelBatch = 32

// batchState is one scoring strand's memoised model resolution.
// Batches overwhelmingly score one or two models, so each strand
// (worker goroutine, or the serial path) memoises its last successful
// resolution: repeated references skip the ref parse and table lookup,
// keeping the hot dispatch loop at a string compare per request. The
// cache lives for one batch only — a hot-swap lands no later than the
// next ScoreBatch call. Mapped versions are pinned once per cache
// fill, not per request, so the artifact refcount is off the
// per-request path; the pin is released when the cache rolls over or
// the strand drains (release()).
type batchState struct {
	ref  string
	name string
	mv   modelVersion
	n    uint32 // requests scored this batch, the sampling clock (observed engines)
}

// release drops the strand's artifact pin, if any.
//
//mb:noalloc
func (bs *batchState) release() {
	if bs.mv.art != nil {
		bs.mv.art.Release()
		bs.mv.art = nil
	}
}

// scoreOne scores one batch element into *out through the strand's
// memoised resolution.
//
//mb:noalloc
func (e *Engine) scoreOne(ctx context.Context, req Request, out *Response, bs *batchState, sc *scratch) {
	if err := ctx.Err(); err != nil {
		*out = Response{ID: req.ID, Model: e.requestModel(req.Model)}
		out.setErr(err)
		return
	}
	if bs.mv.scorer == nil || req.Model != bs.ref {
		name, _, mv, err := e.resolvePinnedTimed(req.Model)
		if err != nil {
			*out = Response{ID: req.ID, Model: name}
			out.setErr(err)
			return
		}
		bs.release() // after the new pin: never drains a shared artifact
		bs.ref, bs.name, bs.mv = req.Model, name, mv
	}
	// Per-request timing is sampled 1-in-scoreSampleEvery per strand:
	// the compiled kernel scores in ~1µs, so unconditional timing would
	// be a measurable tax on exactly the path the histogram exists to
	// protect. The batch histogram (ScoreBatchInto) stays exact.
	var t0 time.Time
	if e.obs != nil {
		if bs.n++; bs.n&(scoreSampleEvery-1) == 0 {
			t0 = time.Now()
		}
	}
	*out, _ = e.scoreResolved(ctx, req, bs.name, &bs.mv, sc)
	if !t0.IsZero() {
		e.obs.Score.RecordSince(t0)
	}
}

// ScoreBatch scores every request concurrently over the engine's
// worker pool and returns responses aligned with the input slice. A
// request that fails records its error in Response.Err without
// affecting its neighbours. When ctx is cancelled mid-batch,
// unprocessed requests are returned with Err set to ctx.Err().
//
// Model references are resolved against the table as the batch runs
// (workers memoise repeated references), so a concurrent hot-swap may
// serve part of a batch from the old version and part from the new —
// each response's ModelVersion records which.
func (e *Engine) ScoreBatch(ctx context.Context, reqs []Request) []Response {
	return e.ScoreBatchInto(ctx, reqs, nil)
}

// ScoreBatchInto is ScoreBatch writing into a caller-provided response
// slice (reused when it has the capacity) — the allocation-free path of
// the binary protocol, whose per-connection loop recycles one response
// buffer across frames. Every element of the returned slice is
// overwritten; stale state in a recycled buffer is never observed.
func (e *Engine) ScoreBatchInto(ctx context.Context, reqs []Request, out []Response) []Response {
	if e.obs == nil {
		return e.scoreBatchInto(ctx, reqs, out)
	}
	// The split keeps timing off the uninstrumented path entirely and,
	// on the instrumented one, costs two time.Now calls per batch — no
	// deferred closure, which would put an allocation back on the
	// binary protocol's zero-alloc frame cycle.
	t0 := time.Now()
	out = e.scoreBatchInto(ctx, reqs, out)
	e.obs.Batch.RecordSince(t0)
	return out
}

// scoreBatchInto is the uninstrumented body of ScoreBatchInto.
func (e *Engine) scoreBatchInto(ctx context.Context, reqs []Request, out []Response) []Response {
	if ctx == nil {
		ctx = context.Background()
	}
	if cap(out) >= len(reqs) {
		out = out[:len(reqs)]
	} else {
		out = make([]Response, len(reqs))
	}
	if len(reqs) == 0 {
		return out
	}
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || len(reqs) <= minParallelBatch {
		// Small batches score inline: below this size the channel and
		// goroutine fan-out costs more than it buys, and the serial
		// path allocates nothing — which is what keeps the binary
		// protocol's per-frame cycle at zero steady-state allocations.
		sc := getScratch()
		defer putScratch(sc)
		var bs batchState
		defer bs.release()
		for i := range reqs {
			e.scoreOne(ctx, reqs[i], &out[i], &bs, sc)
		}
		return out
	}
	return e.scoreBatchParallel(ctx, reqs, out, workers)
}

// scoreBatchParallel is ScoreBatchInto's fan-out path. It lives in its
// own frame so the worker closure's captured variables are not
// heap-allocated when the serial path runs.
func (e *Engine) scoreBatchParallel(ctx context.Context, reqs []Request, out []Response, workers int) []Response {
	// Work is handed out in chunks to amortise channel hops; cancellation
	// stays per-request because the worker loop checks the context before
	// each score, so a cancelled batch drains each in-flight chunk with
	// error responses rather than stale scores.
	chunk := len(reqs) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	starts := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker owns one scratch for the whole batch: the
			// tokenisation buffers are reused per request and the macro
			// Positions arena hands out write-once regions, so the
			// steady-state per-request path allocates nothing.
			sc := getScratch()
			defer putScratch(sc)
			var bs batchState
			defer bs.release()
			for start := range starts {
				end := start + chunk
				if end > len(reqs) {
					end = len(reqs)
				}
				for i := start; i < end; i++ {
					e.scoreOne(ctx, reqs[i], &out[i], &bs, sc)
				}
			}
		}()
	}

	next := 0
feed:
	for ; next < len(reqs); next += chunk {
		select {
		case starts <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(starts)
	wg.Wait()

	// Requests the feeder never dispatched carry the cancellation error.
	for i := next; i < len(reqs); i++ {
		out[i] = Response{ID: reqs[i].ID, Model: e.requestModel(reqs[i].Model)}
		out[i].setErr(ctx.Err())
	}
	return out
}
