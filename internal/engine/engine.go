// Package engine is the unified CTR-scoring surface of this repository:
// one request/response API over both browsing levels of the paper — the
// macro click models of Section II (internal/clickmodel) and the
// micro-browsing model of Section III (internal/core).
//
// The two levels estimate the same quantity, the probability of a
// click, from different evidence: click models from a result's position
// within a session, the micro model from the snippet text itself. The
// Scorer interface abstracts over both, and the Engine adds what a
// serving system needs on top of a single scorer:
//
//   - name-based model selection backed by the clickmodel registry, so
//     binaries pick models from config strings (-model pbm);
//   - lifecycle helpers (Fit trains a registry model on a session log
//     and installs it; Register installs any custom Scorer);
//   - concurrent batch scoring: ScoreBatch fans a request slice over a
//     worker pool with per-request error reporting and cooperative
//     context cancellation.
//
// The facade package re-exports the engine as the library's primary
// public API; see the repository README for the migration table from
// the old flat constructor surface.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/clickmodel"
	"repro/internal/core"
)

// NameMicro is the reserved scorer name of the micro-browsing model.
const NameMicro = "micro"

// Engine routes scoring requests to named scorers and runs batches
// over a worker pool. Create one with New; the zero value is unusable.
//
// An Engine is safe for concurrent use. Installing scorers (Register,
// Fit) while batches are in flight is allowed; in-flight requests see
// either the old or the new scorer.
type Engine struct {
	workers      int
	attention    core.Attention
	defaultModel string

	mu      sync.RWMutex
	scorers map[string]Scorer
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithWorkers sets the ScoreBatch worker-pool size (default
// runtime.GOMAXPROCS(0); values < 1 are treated as 1).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// WithAttention sets the attention layer used when the engine builds
// its own default micro-browsing scorer (i.e. when no scorer was
// explicitly installed under NameMicro). nil keeps the degenerate
// FullAttention bag-of-terms behaviour.
func WithAttention(att core.Attention) Option {
	return func(e *Engine) { e.attention = att }
}

// WithDefaultModel sets the scorer used by requests that leave
// Request.Model empty (default NameMicro).
func WithDefaultModel(name string) Option {
	return func(e *Engine) { e.defaultModel = canonical(name) }
}

// New returns an Engine with the given options applied.
func New(opts ...Option) *Engine {
	e := &Engine{
		workers:      runtime.GOMAXPROCS(0),
		defaultModel: NameMicro,
		scorers:      make(map[string]Scorer),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// canonical normalises scorer names: registry names are case- and
// whitespace-insensitive.
func canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// requestModel is the name a request will resolve to, without
// resolving: the canonical form of its Model field, or the engine
// default when empty. Used to stamp responses that never reach a
// scorer (cancellation) so Response.Model is populated even on error.
func (e *Engine) requestModel(name string) string {
	if key := canonical(name); key != "" {
		return key
	}
	return e.defaultModel
}

// Register installs a scorer under the given name, replacing any
// previous scorer of that name.
func (e *Engine) Register(name string, s Scorer) {
	key := canonical(name)
	if key == "" || s == nil {
		panic("engine: Register needs a name and a scorer")
	}
	e.mu.Lock()
	e.scorers[key] = s
	e.mu.Unlock()
}

// RegisterModel installs a fitted macro click model under its own name.
func (e *Engine) RegisterModel(m clickmodel.Model) {
	e.Register(m.Name(), NewClickModelScorer(m))
}

// UseMicro installs a micro-browsing model as the NameMicro scorer.
func (e *Engine) UseMicro(m *core.Model) {
	e.Register(NameMicro, NewMicroScorer(m))
}

// FitOption tunes a freshly constructed registry model before Fit
// trains it.
type FitOption func(clickmodel.Model)

// Iterations sets the EM iteration count on models that expose one
// (clickmodel.IterativeModel); other models ignore it. Values <= 0
// keep the model default.
func Iterations(n int) FitOption {
	return func(m clickmodel.Model) {
		if n <= 0 {
			return
		}
		if it, ok := m.(clickmodel.IterativeModel); ok {
			it.SetIterations(n)
		}
	}
}

// Fit constructs the named model from the clickmodel registry, applies
// the options, trains it on the session log, installs it, and returns
// the fitted instance (e.g. for offline evaluation with
// clickmodel.Evaluate).
func (e *Engine) Fit(name string, sessions []clickmodel.Session, opts ...FitOption) (clickmodel.Model, error) {
	m, err := clickmodel.New(name)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(m)
	}
	if err := m.Fit(sessions); err != nil {
		return nil, fmt.Errorf("engine: fitting %s: %w", m.Name(), err)
	}
	e.RegisterModel(m)
	return m, nil
}

// FitCompiled is Fit over a pre-compiled session log: when several
// models train on one log, Compile once and the per-model interning
// pass disappears. Models without a FitLog path fall back to the
// compiled log's source sessions.
func (e *Engine) FitCompiled(name string, c *clickmodel.CompiledLog, opts ...FitOption) (clickmodel.Model, error) {
	if c == nil {
		return nil, fmt.Errorf("engine: FitCompiled(%q) on a nil compiled log", name)
	}
	m, err := clickmodel.New(name)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(m)
	}
	if lf, ok := m.(clickmodel.LogFitter); ok {
		err = lf.FitLog(c)
	} else {
		err = m.Fit(c.Sessions())
	}
	if err != nil {
		return nil, fmt.Errorf("engine: fitting %s: %w", m.Name(), err)
	}
	e.RegisterModel(m)
	return m, nil
}

// Models returns the names of the installed scorers in sorted order.
func (e *Engine) Models() []string {
	e.mu.RLock()
	names := make([]string, 0, len(e.scorers))
	for name := range e.scorers {
		names = append(names, name)
	}
	e.mu.RUnlock()
	sort.Strings(names)
	return names
}

// resolve maps a request's model name to an installed scorer. The
// micro scorer is built (and cached) on demand from the engine's
// attention option; registry click-model names that were never fitted
// are rejected with a hint rather than silently scored from priors.
func (e *Engine) resolve(name string) (string, Scorer, error) {
	key := canonical(name)
	if key == "" {
		key = e.defaultModel
	}
	e.mu.RLock()
	s, ok := e.scorers[key]
	e.mu.RUnlock()
	if ok {
		return key, s, nil
	}
	if key == NameMicro {
		e.mu.Lock()
		if s, ok = e.scorers[key]; !ok {
			s = NewMicroScorer(core.NewModel(e.attention))
			e.scorers[key] = s
		}
		e.mu.Unlock()
		return key, s, nil
	}
	if _, err := clickmodel.Lookup(key); err == nil {
		return key, nil, fmt.Errorf("engine: click model %q is known but not fitted; call Fit(%q, sessions) or Register first", key, key)
	}
	return key, nil, fmt.Errorf("engine: unknown model %q (installed: %s; registry: %s)",
		name, strings.Join(e.Models(), ", "), strings.Join(clickmodel.Names(), ", "))
}

// ScoreCTR scores one request through the scorer its Model field
// names (empty = the engine default). The returned Response carries
// the request ID and resolved model name even on error.
func (e *Engine) ScoreCTR(ctx context.Context, req Request) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Response{ID: req.ID, Model: e.requestModel(req.Model), Err: err}, err
	}
	name, s, err := e.resolve(req.Model)
	if err != nil {
		return Response{ID: req.ID, Model: name, Err: err}, err
	}
	resp, err := s.ScoreCTR(ctx, req)
	resp.ID = req.ID
	if resp.Model == "" {
		resp.Model = name
	}
	resp.Err = err
	return resp, err
}

// ScoreBatch scores every request concurrently over the engine's
// worker pool and returns responses aligned with the input slice. A
// request that fails records its error in Response.Err without
// affecting its neighbours. When ctx is cancelled mid-batch,
// unprocessed requests are returned with Err set to ctx.Err().
func (e *Engine) ScoreBatch(ctx context.Context, reqs []Request) []Response {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Response, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}

	// Work is handed out in chunks to amortise channel hops; cancellation
	// stays per-request because ScoreCTR checks the context on entry, so
	// a cancelled batch drains each in-flight chunk with error responses
	// rather than stale scores.
	chunk := len(reqs) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	starts := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for start := range starts {
				end := start + chunk
				if end > len(reqs) {
					end = len(reqs)
				}
				for i := start; i < end; i++ {
					out[i], _ = e.ScoreCTR(ctx, reqs[i])
				}
			}
		}()
	}

	next := 0
feed:
	for ; next < len(reqs); next += chunk {
		select {
		case starts <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(starts)
	wg.Wait()

	// Requests the feeder never dispatched carry the cancellation error.
	for i := next; i < len(reqs); i++ {
		out[i] = Response{ID: reqs[i].ID, Model: e.requestModel(reqs[i].Model), Err: ctx.Err()}
	}
	return out
}
