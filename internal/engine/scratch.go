package engine

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/textproc"
)

// scratch is the per-goroutine working storage of the serving read
// path. Each ScoreBatch worker owns one for the duration of the batch
// (no pool contention on the hot loop); single-request ScoreCTR calls
// borrow one from the pool.
//
// Ownership rules:
//
//   - text is reused freely: nothing derived from it survives a
//     request (the compiled micro scorer returns plain floats).
//   - positions is an arena, not a buffer: the macro scorer carves
//     each Response.Positions slice out of it exactly once and never
//     writes that region again, so carved slices stay valid in the
//     caller's hands while the scratch (and the arena's unused tail)
//     is recycled.
//   - cands is the candidate-set working set (line dedup arena plus
//     per-line partial cache); ScoreCandidates resets it at the top of
//     every pass, so nothing derived from it survives a request either.
type scratch struct {
	text      textproc.Scratch
	positions floatArena
	cands     core.CandidateScratch
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// floatArena hands out write-once []float64 regions from a chunked
// backing slice. take never recycles handed-out memory: when a chunk
// fills, the arena moves to a fresh one and the old chunk stays alive
// exactly as long as the responses that reference it.
type floatArena struct {
	buf []float64
	off int
}

// arenaChunk amortises Positions allocations across roughly this many
// floats per chunk.
const arenaChunk = 1024

func (a *floatArena) take(n int) []float64 {
	if a.off+n > len(a.buf) {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]float64, size)
		a.off = 0
	}
	out := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

// scratchScorer is the widened internal scoring surface: scorers that
// can use per-worker scratch implement it, and the engine's dispatch
// prefers it over the public allocation-per-call Scorer method. The
// public ScoreCTR methods remain the same computation with a pooled
// scratch borrowed per call.
type scratchScorer interface {
	scoreCTR(ctx context.Context, req Request, sc *scratch) (Response, error)
}
