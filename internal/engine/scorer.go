package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/featstats"
	"repro/internal/ml"
)

// Request describes one CTR-prediction unit of work. The two browsing
// levels of the paper take different evidence, so a request carries
// either kind and the selected scorer consumes the one it understands:
//
//   - macro (click-model) scorers read Session — a ranked impression —
//     and predict a click probability per position;
//   - micro scorers read Lines — one snippet's text — and predict the
//     snippet's standalone CTR from per-term relevance × attention.
//
// Requests and responses carry JSON tags because they are also the
// wire format of cmd/microserve's /v1/score endpoints.
type Request struct {
	// ID is an opaque correlation tag echoed into the Response.
	ID string `json:"id,omitempty"`
	// Model selects the scorer by name; empty uses the engine default
	// and "name@version" pins an installed version.
	Model string `json:"model,omitempty"`
	// Session is the macro evidence: one query impression.
	Session *clickmodel.Session `json:"session,omitempty"`
	// Lines is the micro evidence: the snippet's lines.
	Lines []string `json:"lines,omitempty"`
	// MaxN is the n-gram order for term extraction (default 2).
	MaxN int `json:"max_n,omitempty"`
}

// maxN returns the request's n-gram order with the default applied.
func (r Request) maxN() int {
	if r.MaxN <= 0 {
		return 2
	}
	return r.MaxN
}

// Response is the outcome of scoring one Request.
type Response struct {
	// ID echoes the request's correlation tag.
	ID string `json:"id,omitempty"`
	// Model is the resolved scorer name.
	Model string `json:"model,omitempty"`
	// ModelVersion is the installed version that served the request
	// (0 when resolution failed) — under hot-swapping, the way to tell
	// which parameters produced an estimate.
	ModelVersion int `json:"model_version,omitempty"`
	// CTR is the headline estimate: the predicted click-through rate of
	// the snippet (micro) or the mean per-position click probability of
	// the session (macro).
	CTR float64 `json:"ctr"`
	// Positions holds the per-position click probabilities for macro
	// requests; nil for micro requests.
	Positions []float64 `json:"positions,omitempty"`
	// Score is the expected log-probability score of Eq. 3 for micro
	// requests (differences of Scores reproduce the pairwise Eq. 5);
	// zero for macro requests.
	Score float64 `json:"score,omitempty"`
	// Err records the per-request failure in batch results; single-call
	// APIs also return it as an error value. Interface values do not
	// survive encoding/json (they marshal as {}), so Err is excluded
	// from the wire format in favour of Error.
	Err error `json:"-"`
	// Error is Err's message, the wire-visible failure of this request;
	// empty on success.
	Error string `json:"error,omitempty"`
}

// setErr records a failure on both the in-process (Err) and wire
// (Error) fields.
func (r *Response) setErr(err error) {
	r.Err = err
	if err != nil {
		r.Error = err.Error()
	}
}

// Scorer is the unified scoring surface: anything that can turn a
// Request into a CTR estimate. Implementations must be safe for
// concurrent use — the engine calls them from a worker pool.
type Scorer interface {
	ScoreCTR(ctx context.Context, req Request) (Response, error)
}

// ErrNoEvidence is wrapped by scorer errors when a request lacks the
// evidence kind (session vs lines) the scorer consumes.
var ErrNoEvidence = errors.New("engine: request lacks the evidence this scorer consumes")

// ErrNoModel is wrapped by resolution errors — unknown names, malformed
// or missing version references, registry models that were never
// fitted. The HTTP layer maps it to 404 while evidence errors stay 422.
var ErrNoModel = errors.New("engine: no such model")

// ClickModelScorer adapts a fitted macro click model (internal/clickmodel)
// to the Scorer interface. The wrapped model's ClickProbs must be
// read-only after Fit, which holds for every model in this repository.
type ClickModelScorer struct {
	M clickmodel.Model
}

// NewClickModelScorer wraps a (typically fitted) click model.
func NewClickModelScorer(m clickmodel.Model) *ClickModelScorer {
	return &ClickModelScorer{M: m}
}

// ScoreCTR implements Scorer: per-position marginal click probabilities
// plus their mean as the headline CTR. It borrows a pooled scratch so
// the Positions slice is carved from an arena rather than allocated
// per request; the engine's batch path passes each worker's own
// scratch instead.
func (s *ClickModelScorer) ScoreCTR(ctx context.Context, req Request) (Response, error) {
	sc := getScratch()
	defer putScratch(sc)
	return s.scoreCTR(ctx, req, sc)
}

// scoreCTR implements scratchScorer. Every built-in model's
// ClickProbsInto keeps the scoring recursion's internal state on the
// stack and writes the marginals straight into the arena-carved
// region, so the steady-state macro path allocates nothing.
func (s *ClickModelScorer) scoreCTR(ctx context.Context, req Request, sc *scratch) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if req.Session == nil {
		return Response{}, fmt.Errorf("%w: click model %q needs a session", ErrNoEvidence, s.M.Name())
	}
	if err := req.Session.Validate(); err != nil {
		return Response{}, err
	}
	var probs []float64
	if ip, ok := s.M.(clickmodel.InplaceScorer); ok {
		probs = ip.ClickProbsInto(*req.Session, sc.positions.take(len(req.Session.Docs)))
	} else {
		probs = s.M.ClickProbs(*req.Session)
	}
	var mean float64
	for _, p := range probs {
		mean += p
	}
	if len(probs) > 0 {
		mean /= float64(len(probs))
	}
	return Response{Model: s.M.Name(), CTR: mean, Positions: probs}, nil
}

// MicroScorer adapts the paper's micro-browsing model (internal/core)
// to the Scorer interface. NewMicroScorer compiles the model on wrap
// (interned relevance vocab, precomputed log-relevances, dense
// attention table), so every engine install — Register, Fit,
// LoadSnapshot, the hot-swap admin endpoint — publishes a pre-compiled
// version and the read path runs allocation-free. The wrapped model
// must not be mutated once the scorer exists: the compiled form
// snapshots it.
//
// A MicroScorer built as a literal (&MicroScorer{M: m}) has no
// compiled form and falls back to the fused map-based pass.
type MicroScorer struct {
	M *core.Model

	c *core.CompiledModel
}

// NewMicroScorer wraps and compiles a micro-browsing model (relevance
// table plus attention layer).
func NewMicroScorer(m *core.Model) *MicroScorer {
	return &MicroScorer{M: m, c: m.Compile()}
}

// NewCompiledMicroScorer wraps an already-compiled model — the mapped
// (v2 artifact) path, where no fitting form exists. M stays nil; the
// scorer serves straight off the compiled tables, which may be
// zero-copy views into a file mapping pinned by the engine's version
// table.
func NewCompiledMicroScorer(c *core.CompiledModel) *MicroScorer {
	return &MicroScorer{c: c}
}

// Compiled exposes the scorer's compiled form (nil for a literal
// &MicroScorer{M: m} with no compiled tables).
func (s *MicroScorer) Compiled() *core.CompiledModel { return s.c }

// ScoreCTR implements Scorer. CTR is the exact expectation of Eq. 3
// under independent micro-examination,
//
//	E[Π r_i^{v_i}] = Π (a_i·r_i + 1 − a_i),  a_i = P(term i examined),
//
// and Score is the expected log-probability Σ a_i·log r_i whose
// pairwise differences reproduce Eq. 5. Both are computed in a single
// fused pass; the compiled path additionally skips all term
// materialisation by resolving n-gram byte windows against the
// interned vocab.
func (s *MicroScorer) ScoreCTR(ctx context.Context, req Request) (Response, error) {
	sc := getScratch()
	defer putScratch(sc)
	return s.scoreCTR(ctx, req, sc)
}

// scoreCTR implements scratchScorer.
func (s *MicroScorer) scoreCTR(ctx context.Context, req Request, sc *scratch) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if len(req.Lines) == 0 {
		return Response{}, fmt.Errorf("%w: micro scorer needs snippet lines", ErrNoEvidence)
	}
	var ctr, score float64
	if s.c != nil {
		ctr, score = s.c.ScoreSnippet(req.Lines, req.maxN(), &sc.text)
	} else {
		ctr, score = s.M.ScoreSnippet(req.Lines, req.maxN())
	}
	return Response{Model: NameMicro, CTR: ctr, Score: score}, nil
}

// MeanCTR averages the headline CTR over a batch's responses,
// returning the first per-request error encountered. An empty batch
// has mean 0.
func MeanCTR(resps []Response) (float64, error) {
	if len(resps) == 0 {
		return 0, nil
	}
	var sum float64
	for _, r := range resps {
		if r.Err != nil {
			return 0, r.Err
		}
		sum += r.CTR
	}
	return sum / float64(len(resps)), nil
}

// MicroFromStats builds a servable micro-browsing model from a feature
// statistics database: every position-free term feature becomes a
// relevance entry via the sigmoid of its evidence-shrunk log odds —
// the "in production these come from the feature statistics database"
// path. smoothing is the Laplace count for LogOddsSmoothed (values <= 0
// fall back to the database's own smoothing).
func MicroFromStats(db *featstats.DB, att core.Attention, smoothing float64) *core.Model {
	m := core.NewModel(att)
	for key := range db.Stats {
		text, ok := featstats.ParseTermKey(key)
		if !ok {
			continue
		}
		m.Relevance[text] = ml.Sigmoid(db.LogOddsSmoothed(key, smoothing))
	}
	return m
}
