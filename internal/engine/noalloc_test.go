package engine

import (
	"context"
	"testing"
)

// TestStrandScoreNoalloc backs the //mb:noalloc annotations on
// scoreOne, scoreResolved and batchState.release: one warm strand
// cycle — memoised resolution hit, compiled scorer, pin bookkeeping —
// must not allocate.
func TestStrandScoreNoalloc(t *testing.T) {
	e := New()
	e.UseMicro(testMicroModel())
	ctx := context.Background()
	req := Request{Lines: testLines, MaxN: 3}

	sc := getScratch()
	defer putScratch(sc)
	var bs batchState
	defer bs.release()
	var out Response

	e.scoreOne(ctx, req, &out, &bs, sc) // warm the memoised resolution
	if out.Err != nil {
		t.Fatalf("warmup scoreOne failed: %v", out.Err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		e.scoreOne(ctx, req, &out, &bs, sc)
		if _, err := e.scoreResolved(ctx, req, bs.name, bs.ver, bs.mv.scorer, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm strand score allocates %v/op, want 0", allocs)
	}
}
