package engine

import (
	"context"
	"testing"
)

// TestStrandScoreNoalloc backs the //mb:noalloc annotations on
// scoreOne, scoreResolved and batchState.release: one warm strand
// cycle — memoised resolution hit, compiled scorer, pin bookkeeping —
// must not allocate.
func TestStrandScoreNoalloc(t *testing.T) {
	e := New()
	e.UseMicro(testMicroModel())
	assertStrandScoreNoalloc(t, e)
}

// TestInstrumentedStrandScoreNoalloc holds the observed engine to the
// same bar: sampled timing (scoreOne), CTR histogram recording
// (scoreResolved) and the batch histogram are all atomic arithmetic —
// attaching an Observer must not put an allocation back on the warm
// strand path.
func TestInstrumentedStrandScoreNoalloc(t *testing.T) {
	e := New(WithObserver(&Observer{}))
	e.UseMicro(testMicroModel())
	assertStrandScoreNoalloc(t, e)
	if got := e.Observer().Score.Count(); got == 0 {
		t.Fatal("sampled score timing recorded nothing over 200+ requests")
	}
	dists := e.CTRDistributions()
	if len(dists) != 1 || dists[0].Snap.Count == 0 {
		t.Fatalf("CTR distribution not recorded: %+v", dists)
	}
}

func assertStrandScoreNoalloc(t *testing.T, e *Engine) {
	t.Helper()
	ctx := context.Background()
	req := Request{Lines: testLines, MaxN: 3}

	sc := getScratch()
	defer putScratch(sc)
	var bs batchState
	defer bs.release()
	var out Response

	e.scoreOne(ctx, req, &out, &bs, sc) // warm the memoised resolution
	if out.Err != nil {
		t.Fatalf("warmup scoreOne failed: %v", out.Err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		e.scoreOne(ctx, req, &out, &bs, sc)
		if _, err := e.scoreResolved(ctx, req, bs.name, &bs.mv, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm strand score allocates %v/op, want 0", allocs)
	}
}
