package engine

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/clickmodel"
	"repro/internal/mmap"
	"repro/internal/textproc"
)

// writeV2File fits nothing — it serialises an already-built model as a
// v2 artifact on disk and returns the path.
func writeV2File(t *testing.T, name string, save func(w io.Writer) error) string {
	t.Helper()
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		t.Fatalf("save v2 %s: %v", name, err)
	}
	path := filepath.Join(t.TempDir(), name+".mbs2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fitClick(t *testing.T, name string, sessions []clickmodel.Session) clickmodel.Model {
	t.Helper()
	m, err := clickmodel.New(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestLoadSnapshotFileV2Parity is the acceptance-criteria parity test:
// a micro model and two click models exported as v2 artifacts, loaded
// through the mmap path, must score within 1e-12 of the fitted
// originals — including the v1-save-and-reload comparison for micro.
func TestLoadSnapshotFileV2Parity(t *testing.T) {
	sessions := testSessions(600)
	eval := clickmodel.Session{Query: "q", Docs: []string{"a", "b", "zz", "c"}, Clicks: make([]bool, 4)}
	ctx := context.Background()

	t.Run("micro", func(t *testing.T) {
		m := testMicroModel()
		path := writeV2File(t, "micro", m.SaveV2)
		e := New()
		info, err := e.LoadSnapshotFile("", path)
		if err != nil {
			t.Fatalf("LoadSnapshotFile: %v", err)
		}
		if info.Name != NameMicro {
			t.Fatalf("installed as %q, want %q", info.Name, NameMicro)
		}
		// Reference: the v1 save → load → score path.
		var v1 bytes.Buffer
		if err := m.Save(&v1); err != nil {
			t.Fatal(err)
		}
		ref := New()
		if _, err := ref.LoadSnapshot("", bytes.NewReader(v1.Bytes())); err != nil {
			t.Fatal(err)
		}
		for maxN := 1; maxN <= 3; maxN++ {
			req := Request{Lines: testLines, MaxN: maxN}
			got, err := e.ScoreCTR(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.ScoreCTR(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.CTR-want.CTR) > 1e-12 || math.Abs(got.Score-want.Score) > 1e-12 {
				t.Fatalf("maxN %d: mapped (%v, %v) vs v1 path (%v, %v)", maxN, got.CTR, got.Score, want.CTR, want.Score)
			}
		}
	})

	for _, name := range []string{"pbm", "dbn"} {
		t.Run(name, func(t *testing.T) {
			m := fitClick(t, name, sessions)
			path := writeV2File(t, name, func(w io.Writer) error {
				return clickmodel.SaveV2Model(w, m)
			})
			e := New()
			info, err := e.LoadSnapshotFileVerified("", path)
			if err != nil {
				t.Fatalf("LoadSnapshotFileVerified: %v", err)
			}
			if info.Name != name {
				t.Fatalf("installed as %q, want %q", info.Name, name)
			}
			if info.Params == 0 {
				t.Error("mapped model reports 0 params")
			}
			resp, err := e.ScoreCTR(ctx, Request{Model: name, Session: &eval})
			if err != nil {
				t.Fatal(err)
			}
			want := m.ClickProbs(eval)
			if len(resp.Positions) != len(want) {
				t.Fatalf("%d positions, want %d", len(resp.Positions), len(want))
			}
			for i := range want {
				if math.Abs(resp.Positions[i]-want[i]) > 1e-12 {
					t.Fatalf("pos %d: mapped %v, fitted %v", i, resp.Positions[i], want[i])
				}
			}
		})
	}
}

// TestLoadSnapshotStreamSniffsV2 feeds a v2 artifact through the
// generic reader entry point (the HTTP admin upload path): the stream
// is sniffed by magic, copied, CRC-verified and served mapped.
func TestLoadSnapshotStreamSniffsV2(t *testing.T) {
	m := testMicroModel()
	var buf bytes.Buffer
	if err := m.SaveV2(&buf); err != nil {
		t.Fatal(err)
	}
	e := New()
	info, err := e.LoadSnapshot("", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadSnapshot(v2 stream): %v", err)
	}
	if info.Source != "snapshot" {
		t.Errorf("Source = %q, want snapshot", info.Source)
	}
	resp, err := e.ScoreCTR(context.Background(), Request{Lines: testLines})
	if err != nil {
		t.Fatal(err)
	}
	var sc textproc.Scratch
	want, _ := m.Compile().ScoreSnippet(testLines, 2, &sc)
	if math.Abs(resp.CTR-want) > 1e-12 {
		t.Fatalf("mapped CTR %v, want %v", resp.CTR, want)
	}

	// A corrupted stream must fail closed: flip one payload byte (the
	// CRC pass catches it before install).
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := New().LoadSnapshot("", bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted v2 stream installed without error")
	}
}

// TestSaveSnapshotMapped re-exports a mapped model: SaveSnapshot on a
// v2-loaded version emits a fresh v2 artifact that loads and scores
// identically.
func TestSaveSnapshotMapped(t *testing.T) {
	m := testMicroModel()
	path := writeV2File(t, "micro", m.SaveV2)
	e := New()
	if _, err := e.LoadSnapshotFile("", path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := e.SaveSnapshot(NameMicro, &out); err != nil {
		t.Fatalf("SaveSnapshot(mapped): %v", err)
	}
	e2 := New()
	if _, err := e2.LoadSnapshot("", bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("reload re-exported artifact: %v", err)
	}
	ctx := context.Background()
	a, err := e.ScoreCTR(ctx, Request{Lines: testLines})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.ScoreCTR(ctx, Request{Lines: testLines})
	if err != nil {
		t.Fatal(err)
	}
	if a.CTR != b.CTR || a.Score != b.Score {
		t.Fatalf("re-export diverges: (%v, %v) vs (%v, %v)", a.CTR, a.Score, b.CTR, b.Score)
	}
}

// TestLoadSnapshotFileRejectsCorrupt covers the fail-closed admin
// path: a flipped byte anywhere in a verified load must be caught.
func TestLoadSnapshotFileRejectsCorrupt(t *testing.T) {
	m := testMicroModel()
	var buf bytes.Buffer
	if err := m.SaveV2(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	bad := append([]byte(nil), data...)
	bad[len(bad)-2] ^= 0x01
	path := filepath.Join(t.TempDir(), "bad.mbs2")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New().LoadSnapshotFileVerified("", path); err == nil {
		t.Fatal("verified load accepted a corrupted artifact")
	}
}

// TestHotSwapUnderLoadPinnedReaders is the acceptance-criteria drain
// test: scoring load runs against mapped artifacts while repeated
// installs under WithKeepVersions(2) prune old versions. In-flight
// readers pin the mapping they resolved, so no request observes an
// unmapped table; once the load quiesces, every pruned artifact has
// drained to zero references and only the retained versions hold
// their owner reference.
func TestHotSwapUnderLoadPinnedReaders(t *testing.T) {
	const installs = 24
	// Pre-serialise distinguishable artifact generations.
	blobs := make([][]byte, installs)
	for i := range blobs {
		m := testMicroModel()
		m.Relevance["flights"] = 0.3 + 0.5*float64(i)/installs
		var buf bytes.Buffer
		if err := m.SaveV2(&buf); err != nil {
			t.Fatal(err)
		}
		blobs[i] = buf.Bytes()
	}

	e := New(WithKeepVersions(2), WithWorkers(4))
	arts := make([]*mmap.Artifact, installs)

	// Install generation 0 so scoring can start immediately.
	install := func(i int) {
		art, err := mmap.FromBytes(blobs[i])
		if err != nil {
			t.Errorf("FromBytes(%d): %v", i, err)
			return
		}
		arts[i] = art
		if _, err := e.loadArtifact(NameMicro, art, false); err != nil {
			t.Errorf("install %d: %v", i, err)
		}
	}
	install(0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	reqs := make([]Request, 32)
	for i := range reqs {
		reqs[i] = Request{Lines: testLines}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			var out []Response
			for {
				select {
				case <-stop:
					return
				default:
				}
				out = e.ScoreBatchInto(ctx, reqs, out)
				for _, r := range out {
					if r.Err != nil {
						t.Errorf("bare-name request failed mid-swap: %v", r.Err)
						return
					}
					if r.CTR <= 0 || r.CTR > 1 {
						t.Errorf("nonsensical CTR %v from a possibly-unmapped table", r.CTR)
						return
					}
				}
				// Pinned version references may race pruning; that must
				// surface as ErrNoModel, never a crash or a wrong score.
				if _, err := e.ScoreCTR(ctx, Request{Model: "micro@7", Lines: testLines}); err != nil && !errors.Is(err, ErrNoModel) {
					t.Errorf("pinned request failed with %v, want nil or ErrNoModel", err)
					return
				}
			}
		}()
	}

	for i := 1; i < installs; i++ {
		install(i)
	}
	close(stop)
	wg.Wait()

	// Quiesced: versions (installs-1) and installs are retained (keep=2),
	// everything older must have drained and unmapped.
	for i, art := range arts {
		if art == nil {
			continue
		}
		refs := art.Refs()
		if i < installs-2 && refs != 0 {
			t.Errorf("pruned artifact %d still holds %d refs", i, refs)
		}
		if i >= installs-2 && refs != 1 {
			t.Errorf("retained artifact %d has %d refs, want the table's owner ref", i, refs)
		}
	}
}

// TestScoreBatchIntoReuses pins the buffer-reuse contract: a
// sufficiently large out slice is written in place, and stale state
// from the previous batch never leaks into the next.
func TestScoreBatchIntoReuses(t *testing.T) {
	e := New()
	e.UseMicro(testMicroModel())
	ctx := context.Background()

	buf := make([]Response, 8)
	reqs := []Request{
		{ID: "a", Lines: testLines},
		{ID: "b", Lines: nil}, // errors: no evidence
	}
	out := e.ScoreBatchInto(ctx, reqs, buf)
	if &out[0] != &buf[0] {
		t.Error("out slice was reallocated despite sufficient capacity")
	}
	if len(out) != 2 || out[0].Err != nil || out[1].Err == nil {
		t.Fatalf("unexpected batch outcome: %+v", out)
	}

	// Second batch swaps the error position; the recycled elements must
	// not carry the first batch's IDs, errors or scores.
	reqs2 := []Request{
		{ID: "c", Lines: nil},
		{ID: "d", Lines: testLines},
	}
	out2 := e.ScoreBatchInto(ctx, reqs2, out)
	if out2[0].Err == nil || out2[0].ID != "c" || out2[0].Error == "" {
		t.Errorf("recycled element 0 not overwritten: %+v", out2[0])
	}
	if out2[1].Err != nil || out2[1].ID != "d" || out2[1].Error != "" || out2[1].CTR <= 0 {
		t.Errorf("recycled element 1 not overwritten: %+v", out2[1])
	}
}
