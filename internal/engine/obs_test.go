package engine

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// fixedScorer predicts one constant CTR — a point-mass distribution,
// which makes drift distances exact in tests.
type fixedScorer struct{ ctr float64 }

func (f fixedScorer) ScoreCTR(_ context.Context, req Request) (Response, error) {
	return Response{CTR: f.ctr}, nil
}

func scoreN(t *testing.T, e *Engine, model string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := e.ScoreCTR(context.Background(), Request{Model: model, Lines: testLines}); err != nil {
			t.Fatalf("ScoreCTR: %v", err)
		}
	}
}

func TestDriftBaselinePinnedAtPublish(t *testing.T) {
	e := New(WithObserver(&Observer{}))

	// v1 serves and accumulates a live distribution; nothing to drift
	// against yet.
	e.Register("m", fixedScorer{ctr: 0.01})
	scoreN(t, e, "m", 100)
	if d := e.Drift(); len(d) != 0 {
		t.Fatalf("v1 has no predecessor, want empty drift, got %+v", d)
	}

	// v2 predicts identically: live distribution matches the pinned
	// baseline, L1 ~ 0.
	e.Register("m", fixedScorer{ctr: 0.01})
	scoreN(t, e, "m", 100)
	d := e.Drift()
	if len(d) != 1 {
		t.Fatalf("want 1 drift entry, got %+v", d)
	}
	if d[0].Model != "m" || d[0].Version != 2 || d[0].BaselineVersion != 1 {
		t.Fatalf("wrong identity: %+v", d[0])
	}
	if d[0].L1 != 0 {
		t.Fatalf("identical distributions, L1 = %v, want 0", d[0].L1)
	}
	if d[0].LiveSamples != 100 || d[0].BaselineSamples != 100 {
		t.Fatalf("sample counts: %+v", d[0])
	}

	// v3 predicts a disjoint CTR decade: maximal drift against the
	// distribution pinned from v2.
	e.Register("m", fixedScorer{ctr: 0.5})
	scoreN(t, e, "m", 100)
	d = e.Drift()
	if len(d) != 1 || d[0].Version != 3 || d[0].BaselineVersion != 2 {
		t.Fatalf("after v3: %+v", d)
	}
	if d[0].L1 < 1.9 {
		t.Fatalf("disjoint distributions, L1 = %v, want ~2", d[0].L1)
	}
}

func TestDriftRequiresObserver(t *testing.T) {
	e := New()
	e.Register("m", fixedScorer{ctr: 0.1})
	e.Register("m", fixedScorer{ctr: 0.9})
	scoreN(t, e, "m", 10)
	if d := e.Drift(); len(d) != 0 {
		t.Fatalf("uninstrumented engine reports drift: %+v", d)
	}
	if cd := e.CTRDistributions(); len(cd) != 0 {
		t.Fatalf("uninstrumented engine reports CTR distributions: %+v", cd)
	}
}

func TestDriftSurvivesRollback(t *testing.T) {
	e := New(WithObserver(&Observer{}))
	e.Register("m", fixedScorer{ctr: 0.01})
	scoreN(t, e, "m", 50)
	e.Register("m", fixedScorer{ctr: 0.5})
	scoreN(t, e, "m", 50)

	// Rolling back serves v1 again, which has no baseline — the drift
	// block empties rather than comparing a version against itself.
	if _, err := e.Rollback("m"); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if d := e.Drift(); len(d) != 0 {
		t.Fatalf("rolled-back v1 has no baseline, got %+v", d)
	}
	cd := e.CTRDistributions()
	if len(cd) != 1 || cd[0].Version != 1 || cd[0].Snap.Count != 50 {
		t.Fatalf("serving distribution after rollback: %+v", cd)
	}
}

func TestObserverStageHistograms(t *testing.T) {
	o := &Observer{}
	e := New(WithObserver(o))
	e.UseMicro(testMicroModel())

	reqs := make([]Request, 100)
	for i := range reqs {
		reqs[i] = Request{Lines: testLines, MaxN: 3}
	}
	e.ScoreBatch(context.Background(), reqs)
	if o.Batch.Count() != 1 {
		t.Fatalf("batch histogram count = %d, want 1", o.Batch.Count())
	}
	if o.Resolve.Count() == 0 {
		t.Fatal("resolve histogram recorded nothing")
	}

	if _, _, err := e.ScoreCandidates(context.Background(), "", [][]string{testLines}, 2, nil); err != nil {
		t.Fatalf("ScoreCandidates: %v", err)
	}
	if o.Candidates.Count() != 1 {
		t.Fatalf("candidates histogram count = %d, want 1", o.Candidates.Count())
	}

	// Stage histograms expose cleanly (sanity of the /metrics wiring).
	var snaps []obs.Snapshot
	for _, h := range []*obs.Histogram{&o.Batch, &o.Score, &o.Resolve, &o.Candidates} {
		snaps = append(snaps, h.Snapshot())
	}
	if snaps[0].Count == 0 {
		t.Fatal("batch snapshot empty")
	}
}
