package engine

// Engine-side observability: stage-timing histograms for the score
// pipeline and per-model-version predicted-CTR distributions with a
// publish-time drift baseline. Everything here is opt-in — an engine
// built without WithObserver runs the exact uninstrumented hot path —
// and allocation-free once attached: latency samples are atomic
// histogram adds, and the per-request score timing is sampled (1 in
// scoreSampleEvery) so two time.Now calls never dominate the ~1µs
// compiled kernel.

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// scoreSampleEvery is the per-strand sampling stride of single-request
// score timing inside batches: power of two so the gate is one mask.
const scoreSampleEvery = 64

// Observer is the engine's instrument block: fixed histograms the
// caller allocates once (typically next to the engine, in microserve)
// and scrapes via /metrics. All samples are nanoseconds.
type Observer struct {
	// Batch is ScoreBatch / ScoreBatchInto end-to-end wall time.
	Batch obs.Histogram
	// Score is single-request scorer latency: every ScoreCTR call,
	// plus 1-in-scoreSampleEvery requests inside batches.
	Score obs.Histogram
	// Resolve is model-reference resolution latency, recorded on
	// strand cache misses and single-request resolves — the cost of
	// the table lookup plus artifact pinning.
	Resolve obs.Histogram
	// Candidates is ScoreCandidates end-to-end wall time, the
	// /v1/optimize engine stage.
	Candidates obs.Histogram
}

// WithObserver attaches the instrument block and turns on
// per-model-version CTR distribution tracking (versions installed
// before the engine had an observer stay untracked). o must outlive
// the engine.
func WithObserver(o *Observer) Option {
	return func(e *Engine) { e.obs = o }
}

// Observer returns the attached instrument block, nil when the engine
// is uninstrumented.
func (e *Engine) Observer() *Observer { return e.obs }

// resolvePinnedTimed wraps resolvePinned with resolve-stage timing
// when an observer is attached.
func (e *Engine) resolvePinnedTimed(ref string) (name string, version int, mv modelVersion, err error) {
	if e.obs == nil {
		return e.resolvePinned(ref)
	}
	t0 := time.Now()
	name, version, mv, err = e.resolvePinned(ref)
	e.obs.Resolve.RecordSince(t0)
	return
}

// DriftStatus is one model's live-vs-baseline CTR distribution
// comparison, the /healthz drift block entry. L1 is the normalised L1
// distance over histogram buckets, in [0, 2]: 0 means the serving
// version predicts CTRs shaped exactly like the distribution pinned
// when it was published, 2 means disjoint support. A freshly
// published online refit that scores traffic differently from its
// predecessor shows up here before business CTR moves.
type DriftStatus struct {
	Model           string  `json:"model"`
	Version         int     `json:"version"`
	BaselineVersion int     `json:"baseline_version"`
	LiveSamples     uint64  `json:"live_samples"`
	BaselineSamples uint64  `json:"baseline_samples"`
	L1              float64 `json:"l1"`
}

// Drift reports, for every model name whose serving version carries a
// publish-time baseline, how far the live predicted-CTR distribution
// has moved from it. Sorted by model name. Empty without an observer
// (CTR tracking is off) or before any version has a predecessor to
// baseline against.
func (e *Engine) Drift() []DriftStatus {
	t := e.tab.Load()
	out := make([]DriftStatus, 0, len(t.entries))
	for name, ent := range t.entries {
		mv, ok := ent.versions[ent.latest]
		if !ok || mv.ctr == nil || mv.base == nil {
			continue
		}
		live := mv.ctr.Snapshot()
		out = append(out, DriftStatus{
			Model:           name,
			Version:         ent.latest,
			BaselineVersion: mv.baseVer,
			LiveSamples:     live.Count,
			BaselineSamples: mv.base.Count,
			L1:              obs.NormL1(live, *mv.base),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// CTRDistribution is one serving version's live predicted-CTR
// histogram (micro-CTR units; expose with obs.CTRScale).
type CTRDistribution struct {
	Model   string
	Version int
	Snap    obs.Snapshot
}

// CTRDistributions returns the live predicted-CTR distribution of
// every model name's serving version, sorted by name. Empty without
// an observer.
func (e *Engine) CTRDistributions() []CTRDistribution {
	t := e.tab.Load()
	out := make([]CTRDistribution, 0, len(t.entries))
	for name, ent := range t.entries {
		mv, ok := ent.versions[ent.latest]
		if !ok || mv.ctr == nil {
			continue
		}
		out = append(out, CTRDistribution{Model: name, Version: ent.latest, Snap: mv.ctr.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}
