//go:build !race

package engine

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation heap-allocates defer records, so exact alloc counts
// only hold in uninstrumented builds.
const raceEnabled = false
