package engine

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"testing"

	"repro/internal/clickmodel"
	"repro/internal/core"
)

// TestCompiledMicroMatchesMapScorer pins the engine-visible compiled
// scorer to the uncompiled map-based computation across attention
// families — the serving-level half of the core parity suite.
func TestCompiledMicroMatchesMapScorer(t *testing.T) {
	attentions := []core.Attention{
		nil,
		core.FullAttention{},
		core.GeometricAttention{LineWeights: []float64{0.95, 0.7, 0.45}, Decay: 0.85},
		core.TableAttention{W: [][]float64{{0.9, 0.7, 0.5}, {0.6, 0.4}}, Default: 0.25},
	}
	snippets := [][]string{
		testLines,
		{"20% Off — From $99", "Don't Miss Out!"},
		{"unknown terms only, nothing interned"},
	}
	ctx := context.Background()
	for ai, att := range attentions {
		m := core.NewModel(att)
		m.Relevance["find cheap"] = 0.85
		m.Relevance["flights"] = 0.6
		m.Relevance["20%"] = 0.9
		compiled := NewMicroScorer(m)
		uncompiled := &MicroScorer{M: m} // literal construction: no compiled form
		for _, lines := range snippets {
			for _, maxN := range []int{0, 1, 2, 3} {
				req := Request{Lines: lines, MaxN: maxN}
				got, err := compiled.ScoreCTR(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				want, err := uncompiled.ScoreCTR(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.CTR-want.CTR) > 1e-12 || math.Abs(got.Score-want.Score) > 1e-12 {
					t.Errorf("attention %d lines %q maxN %d: compiled (%v, %v), map (%v, %v)",
						ai, lines, maxN, got.CTR, got.Score, want.CTR, want.Score)
				}
			}
		}
	}
}

// TestCompiledMicroHotSwapUnderLoad hammers compiled batch scoring
// while versions are installed via every write path — UseMicro,
// LoadSnapshot, Rollback — so the race detector sees compiled reads
// concurrent with table swaps, and every response is checked to be a
// plausible score from SOME installed version.
func TestCompiledMicroHotSwapUnderLoad(t *testing.T) {
	e := New(WithWorkers(4))
	e.UseMicro(testMicroModel())

	// A second model, snapshot-loadable, with a different relevance table.
	alt := core.NewModel(core.GeometricAttention{LineWeights: []float64{0.5, 0.5, 0.5}, Decay: 0.9})
	alt.Relevance["find cheap"] = 0.2
	alt.Relevance["rates"] = 0.95
	var artifact bytes.Buffer
	if err := alt.Save(&artifact); err != nil {
		t.Fatal(err)
	}
	artifactBytes := artifact.Bytes()

	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{ID: strconv.Itoa(i), Lines: testLines, MaxN: 3}
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, resp := range e.ScoreBatch(ctx, reqs) {
					if resp.Err != nil {
						t.Errorf("scoring failed mid-swap: %v", resp.Err)
						return
					}
					if resp.CTR < 0 || resp.CTR > 1 || resp.ModelVersion < 1 {
						t.Errorf("implausible response under swap: %+v", resp)
						return
					}
				}
			}
		}()
	}

	for i := 0; i < 25; i++ {
		e.UseMicro(testMicroModel())
		if _, err := e.LoadSnapshot(NameMicro, bytes.NewReader(artifactBytes)); err != nil {
			t.Error(err)
			break
		}
		if _, err := e.Rollback(NameMicro); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	readers.Wait()
}

// TestPositionsArenaNoAliasing scores a macro batch and verifies each
// response's Positions is correct and disjoint from its neighbours —
// the write-once arena contract.
func TestPositionsArenaNoAliasing(t *testing.T) {
	m := clickmodel.NewPBM()
	if err := m.Fit(clickSessions(40, 4)); err != nil {
		t.Fatal(err)
	}
	e := New(WithWorkers(2))
	e.RegisterModel(m)

	sessions := clickSessions(30, 4)
	reqs := make([]Request, len(sessions))
	for i := range sessions {
		reqs[i] = Request{ID: strconv.Itoa(i), Model: "pbm", Session: &sessions[i]}
	}
	resps := e.ScoreBatch(context.Background(), reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		want := m.ClickProbs(sessions[i])
		if len(resp.Positions) != len(want) {
			t.Fatalf("resp %d: %d positions, want %d", i, len(resp.Positions), len(want))
		}
		for j := range want {
			if math.Abs(resp.Positions[j]-want[j]) > 1e-12 {
				t.Fatalf("resp %d pos %d: %v, want %v (arena aliasing?)", i, j, resp.Positions[j], want[j])
			}
		}
	}
	// Overlapping backing arrays would let one response's writes show
	// through another; prove disjointness by mutation.
	if len(resps) >= 2 && len(resps[0].Positions) > 0 {
		before := resps[1].Positions[0]
		resps[0].Positions[0] = -1
		if resps[1].Positions[0] != before {
			t.Error("Positions slices of different responses share memory")
		}
	}
}

// TestScoreCTRSteadyStateAllocs pins the per-request allocation count
// of the compiled micro path through the full engine dispatch.
func TestScoreCTRSteadyStateAllocs(t *testing.T) {
	e := New()
	e.UseMicro(testMicroModel())
	ctx := context.Background()
	req := Request{Lines: testLines, MaxN: 3}
	if _, err := e.ScoreCTR(ctx, req); err != nil { // warm pool + scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := e.ScoreCTR(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	// The dispatch itself is alloc-free; tolerate a couple for pool
	// internals under GC pressure.
	if allocs > 2 {
		t.Errorf("steady-state ScoreCTR allocates %v per request, want ~0", allocs)
	}
}

// TestModelCount pins the cheap healthz counter to ModelNames.
func TestModelCount(t *testing.T) {
	e := New()
	if got := e.ModelCount(); got != 0 {
		t.Fatalf("empty engine ModelCount = %d", got)
	}
	e.UseMicro(testMicroModel())
	m := clickmodel.NewPBM()
	if err := m.Fit(clickSessions(10, 3)); err != nil {
		t.Fatal(err)
	}
	e.RegisterModel(m)
	e.RegisterModel(m) // second version of the same name: count unchanged
	if got, want := e.ModelCount(), len(e.ModelNames()); got != want {
		t.Errorf("ModelCount = %d, ModelNames has %d", got, want)
	}
	if got := e.ModelCount(); got != 2 {
		t.Errorf("ModelCount = %d, want 2", got)
	}
}

// clickSessions builds a small deterministic session log.
func clickSessions(n, depth int) []clickmodel.Session {
	docs := []string{"a", "b", "c", "d", "e"}
	out := make([]clickmodel.Session, 0, n)
	for i := 0; i < n; i++ {
		s := clickmodel.Session{
			Query:  fmt.Sprintf("q%d", i%5),
			Docs:   make([]string, depth),
			Clicks: make([]bool, depth),
		}
		for j := 0; j < depth; j++ {
			s.Docs[j] = docs[(i+j)%len(docs)]
			s.Clicks[j] = (i+j)%3 == 0
		}
		out = append(out, s)
	}
	return out
}
