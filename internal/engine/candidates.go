package engine

// Candidate-set scoring entry point: one query × N candidate snippets
// through one resolved model version. This is the serving half of
// /v1/optimize — resolution, artifact pinning and scratch reuse are
// exactly the single-request path's, but the scoring call is the
// amortised core.ScoreCandidates pass instead of N ScoreSnippet walks,
// so the whole set is served off one pinned version even while a hot
// swap replaces the model mid-flight.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// ScoreCandidates scores every candidate snippet through the micro
// model ref resolves to, writing into out (reused when it has the
// capacity) and returning it with the serving version's metadata.
// maxN <= 0 takes the request default (2). Only micro scorers can
// score snippet candidates; resolving to a macro model is an
// ErrNoEvidence-wrapped error, unknown references wrap ErrNoModel.
func (e *Engine) ScoreCandidates(ctx context.Context, ref string, cands [][]string, maxN int, out []core.CandidateScore) ([]core.CandidateScore, ModelInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return out, ModelInfo{}, err
	}
	if e.obs != nil {
		// One sample per candidate set (a few hundred snippets per
		// call): exact timing, negligible against the amortised pass.
		defer e.obs.Candidates.RecordSince(time.Now())
	}
	name, _, mv, err := e.resolvePinnedTimed(ref)
	if err != nil {
		return out, ModelInfo{}, err
	}
	if mv.art != nil {
		defer mv.art.Release()
	}
	ms, ok := mv.scorer.(*MicroScorer)
	if !ok {
		return out, mv.info, fmt.Errorf("%w: model %q cannot score snippet candidates (micro model required)", ErrNoEvidence, name)
	}
	if maxN <= 0 {
		maxN = Request{}.maxN()
	}
	sc := getScratch()
	defer putScratch(sc)
	if c := ms.Compiled(); c != nil {
		out = c.ScoreCandidates(cands, maxN, &sc.cands, out)
	} else {
		out = ms.M.ScoreCandidates(cands, maxN, out)
	}
	return out, mv.info, nil
}
