package mmap

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/snapshot"
)

func artifactBytes(t *testing.T) []byte {
	t.Helper()
	w := snapshot.NewV2Writer("hostile")
	w.Bytes("v.blob", []byte("terms all the way down"))
	w.Floats("rel", []float64{0.25, 0.5, 0.75})
	w.Int32s("v.tabl", []int32{-1, 0, 1, 2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeArtifact(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.v2")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenRoundTrip(t *testing.T) {
	data := artifactBytes(t)
	a, err := Open(writeArtifact(t, data))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer a.Release()
	if a.ModelName != "hostile" {
		t.Fatalf("ModelName = %q", a.ModelName)
	}
	if a.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", a.Size(), len(data))
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	blob, err := a.BytesView("v.blob")
	if err != nil || string(blob) != "terms all the way down" {
		t.Fatalf("BytesView = %q, %v", blob, err)
	}
	fv, err := a.FloatsView("rel")
	if err != nil || len(fv) != 3 || fv[1] != 0.5 {
		t.Fatalf("FloatsView = %v, %v", fv, err)
	}
}

// TestEveryByteCorruption flips every byte of a mapped artifact file in
// turn. Each flip must either fail Open (structural damage), fail
// Verify (payload damage), or — only for inter-section padding — leave
// every section byte-identical to the original.
func TestEveryByteCorruption(t *testing.T) {
	data := artifactBytes(t)
	orig, err := snapshot.ParseV2(data)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.v2")
	for i := range data {
		b := append([]byte(nil), data...)
		b[i] ^= 0xA5
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		a, err := Open(path)
		if err != nil {
			continue // fail closed at parse
		}
		if err := a.Verify(); err != nil {
			a.Release()
			continue // fail closed at CRC
		}
		for _, s := range orig.Sections {
			got, ok := a.Section(s.Tag)
			if !ok || !bytes.Equal(got.Data, s.Data) {
				t.Fatalf("offset %d: undetected corruption reached section %q", i, s.Tag)
			}
		}
		a.Release()
	}
}

func TestTruncatedSections(t *testing.T) {
	data := artifactBytes(t)
	for _, n := range []int{0, 1, 32, 63, 64, 100, len(data) / 2, len(data) - 1} {
		if n >= len(data) {
			continue
		}
		if _, err := Open(writeArtifact(t, data[:n])); err == nil {
			t.Errorf("Open accepted an artifact truncated to %d bytes", n)
		}
	}
}

func TestMisalignedOffsetRejected(t *testing.T) {
	data := append([]byte(nil), artifactBytes(t)...)
	// Shift section 0's offset by 4 and re-sign the directory so only
	// the alignment check can object.
	e := data[64:]
	off := uint64(e[8]) | uint64(e[9])<<8
	off += 4
	e[8], e[9] = byte(off), byte(off>>8)
	resignDir(data)
	if _, err := Open(writeArtifact(t, data)); err == nil {
		t.Fatal("Open accepted a misaligned section offset")
	}
}

// resignDir recomputes the directory CRC after test mutations.
func resignDir(b []byte) {
	nSec := int(uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24)
	dir := b[64 : 64+nSec*32]
	crc := crc32.Checksum(dir, crc32.MakeTable(crc32.Castagnoli))
	b[12], b[13], b[14], b[15] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
}

func TestWrongArchRejected(t *testing.T) {
	data := append([]byte(nil), artifactBytes(t)...)
	data[6], data[7] = data[7], data[6]
	_, err := Open(writeArtifact(t, data))
	if !errors.Is(err, snapshot.ErrWrongArch) {
		t.Fatalf("err = %v, want ErrWrongArch", err)
	}
}

func TestV1ArtifactRejectedBySniff(t *testing.T) {
	// A v1 artifact must not parse as v2 — the engine's load path
	// sniffs the magic and falls back to the stream decoder.
	v1 := []byte("MBSN\x01and then a varint stream")
	if snapshot.IsV2(v1) {
		t.Fatal("IsV2 claimed a v1 artifact")
	}
	if _, err := FromBytes(v1); err == nil {
		t.Fatal("FromBytes accepted a v1 artifact")
	}
}

func TestRetainRelease(t *testing.T) {
	a, err := FromBytes(artifactBytes(t))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Retain() {
		t.Fatal("Retain failed on a live artifact")
	}
	if got := a.Refs(); got != 2 {
		t.Fatalf("Refs = %d, want 2", got)
	}
	a.Release()
	a.Release() // owner's reference; drains to zero
	if a.Retain() {
		t.Fatal("Retain succeeded after drain")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	a.Release()
}

func TestUnmapOnlyAfterLastReader(t *testing.T) {
	a, err := Open(writeArtifact(t, artifactBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := a.BytesView("v.blob")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Retain() {
		t.Fatal("Retain failed")
	}
	a.Release() // owner drops; reader still pinned
	// The mapping must still be readable — a premature munmap would
	// fault this access.
	if string(blob) != "terms all the way down" {
		t.Fatal("mapped bytes changed under a pinned reader")
	}
	a.Release()
	if a.Retain() {
		t.Fatal("Retain succeeded after unmap")
	}
}

// TestRetainReleaseRace hammers the CAS loop from many goroutines while
// the owner drops its reference mid-flight; run under -race.
func TestRetainReleaseRace(t *testing.T) {
	a, err := Open(writeArtifact(t, artifactBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 2000; i++ {
				if a.Retain() {
					if _, err := a.BytesView("v.blob"); err != nil {
						t.Error(err)
					}
					a.Release()
				} else {
					return // drained; mapping must not be touched
				}
			}
		}()
	}
	close(start)
	a.Release() // owner drops concurrently
	wg.Wait()
	if a.Retain() {
		t.Fatal("artifact alive after all references dropped")
	}
}
