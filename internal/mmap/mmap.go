// Package mmap loads v2 snapshot artifacts by mapping them read-only
// and handing out zero-copy views, making model load time O(1) in the
// artifact size: no decode pass, no heap tables, and N processes
// mapping the same file share one page-cache copy of a multi-GB model.
//
// Lifetime is the hard part. Compiled scorers built over a mapping
// reference its pages directly, so the mapping may only be unmapped
// after the last reader is done — and "reader" includes a request that
// resolved a model version milliseconds before a hot swap pruned it.
// Artifact therefore carries a CAS-guarded refcount: the owner (the
// engine's version table) holds one reference from Open, score paths
// Retain/Release around use, and munmap runs exactly once, when the
// count hits zero. Retain on a drained artifact fails instead of
// resurrecting it, which lets the engine detect the race and re-resolve
// from the fresh table rather than touch dead pages.
package mmap

import (
	"fmt"
	"os"
	"sync/atomic"
	"syscall"

	"repro/internal/snapshot"
)

// Artifact is a parsed v2 snapshot plus the refcounted mapping behind
// it. The embedded *snapshot.V2Artifact provides the section views; all
// of them alias the mapping and share its lifetime.
type Artifact struct {
	*snapshot.V2Artifact

	// refs counts the owner (1 at Open) plus every pinned reader.
	// It is a plain Go allocation, so a failed Retain after drain
	// touches live memory even though the mapping itself is gone.
	refs atomic.Int64

	mapping []byte // non-nil only for real mappings; nil for FromBytes
	path    string
	size    int64
}

// Open maps the file read-only, validates the v2 structure, and returns
// an artifact holding one owner reference. Structural validation is
// O(#sections); payload CRCs are deferred to Verify so that opening a
// 100GB artifact costs the same as a 1MB one.
func Open(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 {
		return nil, fmt.Errorf("mmap: %s: empty artifact", path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: %s: artifact of %d bytes exceeds the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %s: %v", path, err)
	}
	parsed, err := snapshot.ParseV2(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, fmt.Errorf("mmap: %s: %w", path, err)
	}
	a := &Artifact{V2Artifact: parsed, mapping: data, path: path, size: size}
	a.refs.Store(1)
	return a, nil
}

// FromBytes wraps in-memory v2 bytes in the same refcounted interface,
// for tests and for artifacts received over the wire. The caller must
// not mutate data afterwards.
func FromBytes(data []byte) (*Artifact, error) {
	parsed, err := snapshot.ParseV2(data)
	if err != nil {
		return nil, err
	}
	a := &Artifact{V2Artifact: parsed, size: int64(len(data))}
	a.refs.Store(1)
	return a, nil
}

// Path returns the mapped file's path ("" for FromBytes artifacts).
func (a *Artifact) Path() string { return a.path }

// Size returns the artifact size in bytes.
func (a *Artifact) Size() int64 { return a.size }

// Verify runs the deferred O(size) CRC-32C pass over every section.
// Call it when provenance is untrusted (a fetched replica artifact, an
// operator-supplied file); skip it for artifacts this process wrote
// atomically itself.
func (a *Artifact) Verify() error { return a.VerifySections() }

// Retain pins the artifact for a reader. It fails — returning false
// without side effects — if the count already drained to zero, meaning
// the mapping is gone (or about to be); the caller must re-resolve
// whatever led it here instead of using the artifact.
//
//mb:noalloc
func (a *Artifact) Retain() bool {
	for {
		n := a.refs.Load()
		if n <= 0 {
			return false
		}
		if a.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops one reference; the last release unmaps. Releasing more
// times than retained is a bug and panics loudly rather than silently
// double-unmapping.
//
//mb:noalloc
func (a *Artifact) Release() {
	n := a.refs.Add(-1)
	switch {
	case n == 0:
		if a.mapping != nil {
			m := a.mapping
			a.mapping = nil
			_ = syscall.Munmap(m)
		}
	case n < 0:
		panic("mmap: artifact released more times than retained")
	}
}

// Refs reports the current reference count (for tests and /healthz
// introspection; racy by nature).
func (a *Artifact) Refs() int64 { return a.refs.Load() }
