package mmap

import "testing"

// TestRetainReleaseNoalloc backs the //mb:noalloc annotations on
// Retain and Release: the refcount CAS pair on a live artifact is
// pure atomics, no allocation.
func TestRetainReleaseNoalloc(t *testing.T) {
	a, err := FromBytes(artifactBytes(t))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()

	allocs := testing.AllocsPerRun(500, func() {
		if !a.Retain() {
			t.Fatal("Retain failed on a live artifact")
		}
		a.Release()
	})
	if allocs != 0 {
		t.Fatalf("Retain/Release pair allocates %v/op, want 0", allocs)
	}
}
