// Package classifier implements the snippet classification framework of
// Figure 1 and Section V: a two-phase pipeline where phase one scans the
// creative-pair corpus into the feature statistics database, and phase
// two generates classifier instances and trains one of the six ablation
// models M1–M6 that the paper evaluates:
//
//	M1: term features, no position, stats-DB initialisation
//	M2: term features with position
//	M3: greedy rewrite features, no position
//	M4: greedy rewrite features with position
//	M5: rewrite and term features, no position
//	M6: rewrite and term features with position
//
// Position-free models are a single L1 logistic regression; positional
// models are the coupled logistic regression of Eq. 9 where position
// weights P and relevance weights T are learned alternately.
package classifier

// ModelSpec selects one ablation variant of the snippet classifier.
type ModelSpec struct {
	// Name is the paper's model id ("M1".."M6").
	Name string
	// Description matches the row label in Table 2.
	Description string
	// UseTerms enables differing-term features.
	UseTerms bool
	// UseRewrites enables greedily matched rewrite features.
	UseRewrites bool
	// UsePosition enables micro-position information, switching the
	// learner to the coupled logistic regression.
	UsePosition bool
	// UseStatsInit initialises weights from the feature statistics
	// database (on for every paper variant; exposed for the ablation
	// benchmark).
	UseStatsInit bool
}

// The six models of Table 2.
var (
	M1 = ModelSpec{Name: "M1", Description: "Terms only", UseTerms: true, UseStatsInit: true}
	M2 = ModelSpec{Name: "M2", Description: "Terms w. pos", UseTerms: true, UsePosition: true, UseStatsInit: true}
	M3 = ModelSpec{Name: "M3", Description: "Rewrites only", UseRewrites: true, UseStatsInit: true}
	M4 = ModelSpec{Name: "M4", Description: "Rewrites w. pos", UseRewrites: true, UsePosition: true, UseStatsInit: true}
	M5 = ModelSpec{Name: "M5", Description: "Rewrites & terms", UseTerms: true, UseRewrites: true, UseStatsInit: true}
	M6 = ModelSpec{Name: "M6", Description: "Rewrites & terms w. pos", UseTerms: true, UseRewrites: true, UsePosition: true, UseStatsInit: true}
)

// Specs returns the six models in Table 2 order.
func Specs() []ModelSpec { return []ModelSpec{M1, M2, M3, M4, M5, M6} }
