package classifier

import (
	"math"
	"testing"

	"repro/internal/adcorpus"
	"repro/internal/featstats"
	"repro/internal/ml"
	"repro/internal/serp"
	"repro/internal/snippet"
)

// buildTestData simulates a small corpus and returns pairs + stats DB.
func buildTestData(t testing.TB, groups, impressions int) ([]snippet.Pair, *featstats.DB) {
	t.Helper()
	corpus := adcorpus.Generate(adcorpus.Config{Seed: 42, Groups: groups}, adcorpus.DefaultLexicon())
	sim := serp.New(serp.Config{Seed: 43, Impressions: impressions})
	ags := sim.Run(corpus)
	ex := NewExtractor()
	pairs := ex.Pairs(ags)
	if len(pairs) == 0 {
		t.Fatal("no pairs generated")
	}
	return pairs, ex.BuildDB(ags)
}

func TestSpecs(t *testing.T) {
	specs := Specs()
	if len(specs) != 6 {
		t.Fatalf("got %d specs", len(specs))
	}
	if !specs[5].UseTerms || !specs[5].UseRewrites || !specs[5].UsePosition {
		t.Error("M6 must enable everything")
	}
	if specs[0].UsePosition || specs[0].UseRewrites {
		t.Error("M1 must be terms-only")
	}
	for _, s := range specs {
		if !s.UseStatsInit {
			t.Errorf("%s must use stats initialisation", s.Name)
		}
	}
}

func TestBuildDBLearnsAppealDirections(t *testing.T) {
	pairs, db := buildTestData(t, 400, 4000)
	_ = pairs
	// "20% off" has the highest planted appeal; creatives containing it
	// should win their pairs more often than not.
	if p := db.P(featstats.TermKey("20% off")); p <= 0.5 {
		t.Errorf(`P(term "20%% off") = %.3f, want > 0.5`, p)
	}
	// "learn more" has negative appeal.
	if p := db.P(featstats.TermKey("learn more")); p >= 0.5 {
		t.Errorf(`P(term "learn more") = %.3f, want < 0.5`, p)
	}
	// Directed rewrite: replacing "20% off" with "learn more" hurts, so
	// the creative containing the source side should win.
	k := featstats.RewriteKey("20% off", "learn more")
	if db.Count(k) > 0 {
		if p := db.P(k); p <= 0.5 {
			t.Errorf("P(rewrite 20%% off -> learn more) = %.3f, want > 0.5", p)
		}
	}
}

func TestBuildDBPositionStats(t *testing.T) {
	_, db := buildTestData(t, 300, 4000)
	// Position keys must exist for line 2 (hooks live there).
	found := false
	for key := range db.Stats {
		if _, line, ok := featstats.ParsePosKey(key); ok && line == 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no line-2 position statistics collected")
	}
}

func TestOccurrencesPerSpec(t *testing.T) {
	pairs, db := buildTestData(t, 100, 3000)

	// Find a pair with a hook rewrite (differing line 2).
	var pick *snippet.Pair
	for i := range pairs {
		if len(pairs[i].R.DiffLines(pairs[i].S)) > 0 {
			pick = &pairs[i]
			break
		}
	}
	if pick == nil {
		t.Fatal("no differing pair found")
	}

	kinds := func(spec ModelSpec) map[string]int {
		p := NewPipeline(spec, db)
		counts := make(map[string]int)
		for _, o := range p.occurrences(*pick) {
			counts[featstats.KeyKind(o.relKey)]++
		}
		return counts
	}

	m1 := kinds(M1)
	if m1["rw"] != 0 {
		t.Errorf("M1 produced rewrite features: %v", m1)
	}
	if m1["term"] == 0 {
		t.Errorf("M1 produced no term features: %v", m1)
	}
	m3 := kinds(M3)
	if m3["term"] != 0 {
		t.Errorf("M3 produced term features: %v", m3)
	}
	m6 := kinds(M6)
	if m6["rw"] == 0 && m6["term"] == 0 {
		t.Errorf("M6 produced nothing: %v", m6)
	}
}

func TestDatasetBalanced(t *testing.T) {
	pairs, db := buildTestData(t, 300, 3000)
	pipe := NewPipeline(M1, db)
	ds := pipe.Dataset(pairs)
	if ds.Len() < 100 {
		t.Fatalf("dataset too small: %d", ds.Len())
	}
	pos := 0
	for _, l := range ds.Labels {
		if l {
			pos++
		}
	}
	frac := float64(pos) / float64(ds.Len())
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("positive fraction %.3f, want near balance", frac)
	}
}

func TestDatasetDeterminism(t *testing.T) {
	pairs, db := buildTestData(t, 50, 2000)
	a := NewPipeline(M6, db).Dataset(pairs)
	b := NewPipeline(M6, db).Dataset(pairs)
	if a.Len() != b.Len() {
		t.Fatal("dataset size varies")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels vary between identical runs")
		}
	}
}

func TestTrainAndEvaluateBeatsChance(t *testing.T) {
	pairs, db := buildTestData(t, 400, 5000)
	for _, spec := range []ModelSpec{M1, M6} {
		pipe := NewPipeline(spec, db)
		ds := pipe.Dataset(pairs)
		model, err := Train(ds, nil, Options{Epochs: 40, Rounds: 3})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		preds := model.PredictIdx(ds, nil)
		met := ml.EvaluateBinary(preds, ds.Labels)
		if met.Accuracy < 0.55 {
			t.Errorf("%s training accuracy %.3f, want > 0.55", spec.Name, met.Accuracy)
		}
	}
}

func TestPositionWeightsShape(t *testing.T) {
	pairs, db := buildTestData(t, 400, 5000)
	pipe := NewPipeline(M6, db)
	ds := pipe.Dataset(pairs)
	model, err := Train(ds, nil, Options{Epochs: 40, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	table := model.PositionWeights()
	if len(table) < 2 {
		t.Fatalf("position table covers %d lines, want >= 2", len(table))
	}
	for line, row := range table {
		for pos, w := range row {
			if w < 0 || math.IsNaN(w) {
				t.Errorf("P[line %d][pos %d] = %v", line+1, pos+1, w)
			}
		}
	}
	// Flat models have no position weights.
	flat, err := Train(NewPipeline(M1, db).Dataset(pairs), nil, Options{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if flat.PositionWeights() != nil {
		t.Error("flat model returned position weights")
	}
}

func TestCrossValidateRunsAllFolds(t *testing.T) {
	pairs, db := buildTestData(t, 200, 3000)
	res, err := CrossValidate(M3, pairs, db, 5, 7, Options{Epochs: 30, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldMetrics) != 5 {
		t.Fatalf("got %d folds", len(res.FoldMetrics))
	}
	if res.Mean.Accuracy < 0.5 {
		t.Errorf("M3 CV accuracy %.3f below chance", res.Mean.Accuracy)
	}
	if res.Instances == 0 || res.RelFeatures == 0 {
		t.Errorf("result missing sizes: %+v", res)
	}
}

func TestCrossValidateNoPairs(t *testing.T) {
	db := featstats.New(1)
	if _, err := CrossValidate(M1, nil, db, 5, 1, Options{}); err == nil {
		t.Error("empty pair set accepted")
	}
}

func BenchmarkExtractDB(b *testing.B) {
	corpus := adcorpus.Generate(adcorpus.Config{Seed: 42, Groups: 100}, adcorpus.DefaultLexicon())
	ags := serp.New(serp.Config{Seed: 43, Impressions: 1000}).Run(corpus)
	ex := NewExtractor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.BuildDB(ags)
	}
}

func BenchmarkDatasetM6(b *testing.B) {
	pairs, db := buildTestData(b, 100, 1000)
	pipe := NewPipeline(M6, db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Dataset(pairs)
	}
}
