package classifier

import (
	"repro/internal/featstats"
	"repro/internal/rewrite"
	"repro/internal/snippet"
)

// Extractor is phase one of the pipeline (the "feature extractor" box of
// Figure 1): it scans every creative pair of the corpus and accumulates
// the feature statistics database — term, positioned-term, rewrite,
// rewrite-position and position features, each with its delta-sw counts.
type Extractor struct {
	// MaxN is the n-gram ceiling (default 3).
	MaxN int
	// Smoothing is the database's Laplace count (default 1).
	Smoothing float64
	// MinImpressions drops creatives whose serve weights are too noisy
	// (default 100).
	MinImpressions int64
}

// NewExtractor returns an extractor with default settings.
func NewExtractor() *Extractor {
	return &Extractor{MaxN: 3, Smoothing: 1, MinImpressions: 100}
}

func (e *Extractor) maxN() int {
	if e.MaxN <= 0 {
		return 3
	}
	return e.MaxN
}

func (e *Extractor) minImpressions() int64 {
	if e.MinImpressions <= 0 {
		return 100
	}
	return e.MinImpressions
}

// Pairs enumerates the labelled creative pairs of the corpus, skipping
// underserved creatives and serve-weight ties.
func (e *Extractor) Pairs(groups []snippet.AdGroup) []snippet.Pair {
	var out []snippet.Pair
	for _, g := range groups {
		for _, p := range g.Pairs(e.minImpressions()) {
			if p.Label() != 0 {
				out = append(out, p)
			}
		}
	}
	return out
}

// BuildDB runs phase one over the corpus and returns the statistics
// database. It makes two passes.
//
// Pass one, for every pair (R, S) with serve-weight difference
// d = sw(R) − sw(S):
//
//   - each term present only in R observes TermKey/TermPosKey/PosKey
//     with +d, and each term only in S observes them with −d ("the
//     difference in serve-weight of the creative containing that term
//     with the creative not containing it");
//   - each candidate rewrite a→b (a only in R, b only in S, same line)
//     observes RewriteKey(a,b) with +d and the mirror key with −d, plus
//     the corresponding RewritePosKey observations. Candidates rather
//     than matched rewrites must be used here because matching itself
//     needs rewrite scores.
//
// Pass two re-scans every pair, this time greedily *matching* the diff
// with the pass-one scores, and rebuilds the rewrite statistics from the
// matched pairs only. This concentrates the statistics mass on the true
// rewrites instead of diluting it over the candidate cross-product —
// the paper's database of "phrase rewrites with corresponding
// click-through rate lift scores" is likewise keyed by the resolved
// rewrite, not by every conceivable pairing.
func (e *Extractor) BuildDB(groups []snippet.AdGroup) *featstats.DB {
	pairs := e.Pairs(groups)

	pass1 := featstats.New(e.Smoothing)
	matcher := &rewrite.Matcher{MaxN: e.maxN()}
	for _, p := range pairs {
		e.observePair(pass1, matcher, p)
	}

	db := featstats.New(e.Smoothing)
	scored := rewrite.NewMatcher(pass1)
	scored.MaxN = e.maxN()
	scored.MinScore = 2.2 // same evidence floor the pipeline uses
	for _, p := range pairs {
		e.observeMatchedPair(db, scored, p)
	}
	return db
}

// observeMatchedPair records pass-two statistics: term and position
// observations as in pass one, but rewrite observations only for the
// greedily matched pairs.
func (e *Extractor) observeMatchedPair(db *featstats.DB, matcher *rewrite.Matcher, p snippet.Pair) {
	d := p.SWR - p.SWS
	if d == 0 {
		return
	}
	onlyR, onlyS := matcher.Diff(p.R, p.S)
	for _, t := range onlyR {
		db.Observe(featstats.TermKey(t.Text), d)
		db.Observe(featstats.TermPosKey(t.Text, t.Pos, t.Line), d)
	}
	for _, t := range onlyS {
		db.Observe(featstats.TermKey(t.Text), -d)
		db.Observe(featstats.TermPosKey(t.Text, t.Pos, t.Line), -d)
	}
	for _, c := range matcher.MatchTerms(onlyR, onlyS).Pairs {
		db.Observe(featstats.RewriteKey(c.From.Text, c.To.Text), d)
		db.Observe(featstats.RewriteKey(c.To.Text, c.From.Text), -d)
	}

	posR, posS := matcher.DiffPositional(p.R, p.S)
	for _, t := range posR {
		db.Observe(featstats.PosKey(t.Pos, t.Line), d)
	}
	for _, t := range posS {
		db.Observe(featstats.PosKey(t.Pos, t.Line), -d)
	}
	for _, c := range matcher.MatchTerms(posR, posS).Pairs {
		db.Observe(featstats.RewritePosKey(c.From.Pos, c.From.Line, c.To.Pos, c.To.Line), d)
		db.Observe(featstats.RewritePosKey(c.To.Pos, c.To.Line, c.From.Pos, c.From.Line), -d)
	}
}

func (e *Extractor) observePair(db *featstats.DB, matcher *rewrite.Matcher, p snippet.Pair) {
	d := p.SWR - p.SWS
	if d == 0 {
		return
	}

	// Content statistics from the text diff.
	onlyR, onlyS := matcher.Diff(p.R, p.S)
	for _, t := range onlyR {
		db.Observe(featstats.TermKey(t.Text), d)
		db.Observe(featstats.TermPosKey(t.Text, t.Pos, t.Line), d)
	}
	for _, t := range onlyS {
		db.Observe(featstats.TermKey(t.Text), -d)
		db.Observe(featstats.TermPosKey(t.Text, t.Pos, t.Line), -d)
	}
	for _, c := range matcher.Candidates(onlyR, onlyS) {
		db.Observe(featstats.RewriteKey(c.From.Text, c.To.Text), d)
		db.Observe(featstats.RewriteKey(c.To.Text, c.From.Text), -d)
	}

	// Position statistics from the positional diff, which additionally
	// surfaces moved phrases (same text, different position).
	posR, posS := matcher.DiffPositional(p.R, p.S)
	for _, t := range posR {
		db.Observe(featstats.PosKey(t.Pos, t.Line), d)
	}
	for _, t := range posS {
		db.Observe(featstats.PosKey(t.Pos, t.Line), -d)
	}
	for _, c := range matcher.Candidates(posR, posS) {
		db.Observe(featstats.RewritePosKey(c.From.Pos, c.From.Line, c.To.Pos, c.To.Line), d)
		db.Observe(featstats.RewritePosKey(c.To.Pos, c.To.Line, c.From.Pos, c.From.Line), -d)
	}
}
