package classifier

import (
	"fmt"
	"testing"

	"repro/internal/adcorpus"
	"repro/internal/ml"
	"repro/internal/serp"
	"repro/internal/snippet"
)

// TestDiagEditTypeBreakdown is a diagnostic harness (kept as a test so it
// runs inside the module): it buckets evaluation pairs by the kind of
// edit separating the two creatives and reports each model's accuracy
// per bucket, which is how the Table 2 shape was calibrated.
func TestDiagEditTypeBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	lex := adcorpus.DefaultLexicon()

	statsCorpus := adcorpus.Generate(adcorpus.Config{Seed: 109, Groups: 4000}, lex)
	statsGroups := serp.New(serp.Config{Seed: 110, Impressions: 800}).Run(statsCorpus)
	ex := NewExtractor()
	db := ex.BuildDB(statsGroups)

	evalCorpus := adcorpus.Generate(adcorpus.Config{Seed: 9, Groups: 800}, lex)
	evalGroups := serp.New(serp.Config{Seed: 10, Impressions: 800}).Run(evalCorpus)
	pairs := ex.Pairs(evalGroups)

	// Ground-truth creative lookup for edit classification.
	byID := make(map[string]*adcorpus.Creative)
	for gi := range evalCorpus.Groups {
		for ci := range evalCorpus.Groups[gi].Creatives {
			c := &evalCorpus.Groups[gi].Creatives[ci]
			byID[c.ID] = c
		}
	}

	classify := func(p snippet.Pair) string {
		r, s := byID[p.R.ID], byID[p.S.ID]
		if r == nil || s == nil {
			return "unknown"
		}
		rSlots := make(map[string]adcorpus.Slot)
		for _, sl := range r.Slots {
			rSlots[sl.Text] = sl
		}
		sSlots := make(map[string]adcorpus.Slot)
		for _, sl := range s.Slots {
			sSlots[sl.Text] = sl
		}
		var contentEdit, moveEdit int
		for text, sl := range rSlots {
			o, ok := sSlots[text]
			switch {
			case !ok:
				contentEdit++
			case o.Line != sl.Line || o.Pos != sl.Pos:
				moveEdit++
			}
		}
		for text := range sSlots {
			if _, ok := rSlots[text]; !ok {
				contentEdit++
			}
		}
		switch {
		case contentEdit > 0 && moveEdit > 0:
			return "mixed"
		case contentEdit > 1:
			return "multi-content"
		case contentEdit == 1:
			return "content"
		case moveEdit > 0:
			return "move"
		default:
			return "neutral"
		}
	}

	buckets := make(map[string][]int)
	for i, p := range pairs {
		buckets[classify(p)] = append(buckets[classify(p)], i)
	}
	fmt.Printf("pairs=%d buckets:", len(pairs))
	for k, v := range buckets {
		fmt.Printf(" %s=%d", k, len(v))
	}
	fmt.Println()

	// Dump a few content-bucket pairs with M3's features and weights.
	{
		pipe := NewPipeline(M3, db)
		pipe.Seed = 3
		shown := 0
		for _, j := range buckets["content"] {
			if shown >= 6 {
				break
			}
			p := pairs[j]
			occs := pipe.occurrences(p)
			fmt.Printf("--- pair label=%+d swr=%.3f sws=%.3f\n  R: %s\n  S: %s\n",
				p.Label(), p.SWR, p.SWS, p.R.Text(), p.S.Text())
			for _, o := range occs {
				fmt.Printf("    occ dir=%+.0f rel=%q init=%.3f count=%.0f\n",
					o.dir, o.relKey, db.LogOdds(o.relKey), db.Count(o.relKey))
			}
			shown++
		}
	}

	for _, spec := range Specs() {
		pipe := NewPipeline(spec, db)
		pipe.Seed = 3
		ds := pipe.Dataset(pairs)
		folds, err := ml.KFold(ds.Len(), 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Cross-validated predictions for every instance.
		preds := make([]float64, ds.Len())
		for _, fold := range folds {
			model, err := Train(ds, fold.Train, Options{})
			if err != nil {
				t.Fatal(err)
			}
			p := model.PredictIdx(ds, fold.Test)
			for i, j := range fold.Test {
				preds[j] = p[i]
			}
		}
		fmt.Printf("%s:", spec.Name)
		for _, bucket := range []string{"content", "multi-content", "move", "mixed", "neutral"} {
			idx := buckets[bucket]
			if len(idx) == 0 {
				continue
			}
			correct := 0
			for _, j := range idx {
				if (preds[j] >= 0.5) == ds.Labels[j] {
					correct++
				}
			}
			fmt.Printf("  %s=%.3f", bucket, float64(correct)/float64(len(idx)))
		}
		all := 0
		for j := range preds {
			if (preds[j] >= 0.5) == ds.Labels[j] {
				all++
			}
		}
		fmt.Printf("  ALL=%.3f\n", float64(all)/float64(ds.Len()))
	}
}
