package classifier

import (
	"errors"
	"fmt"

	"repro/internal/coupled"
	"repro/internal/featstats"
	"repro/internal/ml"
	"repro/internal/snippet"
)

// Options tunes the learners. The zero value selects the defaults used
// throughout the experiments.
type Options struct {
	// L1 is the L1 strength for relevance weights (default 1e-4).
	L1 float64
	// Epochs is the inner gradient-descent pass count (default 140).
	Epochs int
	// LearningRate is the gradient step (default 0.5).
	LearningRate float64
	// Rounds is the coupled-alternation count for positional models
	// (default 7).
	Rounds int
	// PosAnchor, when positive, regularises position weights toward
	// their corpus prior with this strength. Off by default: it smooths
	// the learned position table (Figure 3) at a small accuracy cost.
	PosAnchor float64
}

func (o Options) l1() float64 {
	if o.L1 <= 0 {
		return 1e-4
	}
	return o.L1
}

func (o Options) epochs() int {
	if o.Epochs <= 0 {
		return 140
	}
	return o.Epochs
}

func (o Options) learningRate() float64 {
	if o.LearningRate <= 0 {
		return 0.5
	}
	return o.LearningRate
}

func (o Options) rounds() int {
	if o.Rounds <= 0 {
		return 7
	}
	return o.Rounds
}

// Trained is a fitted snippet classifier of either learner family.
type Trained struct {
	Spec ModelSpec
	// Flat is set for position-free specs, Coup for positional ones.
	Flat *ml.LogisticRegression
	Coup *coupled.Model
	// Vocabularies of the dataset the model was trained on.
	RelVocab, PosVocab *ml.Vocab
}

// Train fits the spec's learner on the instances of ds selected by idx
// (nil means all instances).
func Train(ds *Dataset, idx []int, opt Options) (*Trained, error) {
	t := &Trained{Spec: ds.Spec, RelVocab: ds.RelVocab, PosVocab: ds.PosVocab}
	if ds.Spec.UsePosition {
		data := ds.Coup
		if idx != nil {
			data = make([]coupled.Instance, len(idx))
			for i, j := range idx {
				data[i] = ds.Coup[j]
			}
		}
		m := coupled.New()
		m.Rounds = opt.rounds()
		m.Epochs = opt.epochs()
		m.LearningRate = opt.learningRate()
		m.L1T = opt.l1()
		m.InitT = ds.InitRel
		m.InitP = ds.InitPos
		if opt.PosAnchor > 0 {
			// Anchor position weights to their corpus prior: rare
			// micro-positions then cannot earn free-form weights.
			m.AnchorP = ds.InitPos
			m.AnchorStrength = opt.PosAnchor
		}
		if err := m.Fit(data); err != nil {
			return nil, fmt.Errorf("classifier: %s: %w", ds.Spec.Name, err)
		}
		t.Coup = m
		return t, nil
	}

	data := ds.Flat
	if idx != nil {
		data = make([]ml.Instance, len(idx))
		for i, j := range idx {
			data[i] = ds.Flat[j]
		}
	}
	m := &ml.LogisticRegression{
		L1:             opt.l1(),
		Epochs:         opt.epochs(),
		LearningRate:   opt.learningRate(),
		InitialWeights: ds.InitRel,
	}
	if err := m.Fit(data); err != nil {
		return nil, fmt.Errorf("classifier: %s: %w", ds.Spec.Name, err)
	}
	t.Flat = m
	return t, nil
}

// PredictIdx returns P(first creative is better) for the dataset
// instances selected by idx (nil means all).
func (t *Trained) PredictIdx(ds *Dataset, idx []int) []float64 {
	n := ds.Len()
	if idx != nil {
		n = len(idx)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		j := i
		if idx != nil {
			j = idx[i]
		}
		if t.Coup != nil {
			out[i] = t.Coup.Predict(&ds.Coup[j])
		} else {
			out[i] = t.Flat.Predict(&ds.Flat[j])
		}
	}
	return out
}

// PredictPair scores a creative pair that was not necessarily part of
// the training data: the pipeline extracts the spec's features, feature
// names are mapped through the training vocabularies, and features never
// seen in training are ignored. Returns P(R beats S).
func (t *Trained) PredictPair(p *Pipeline, pair snippet.Pair) float64 {
	occs := p.occurrences(pair)
	if t.Coup != nil {
		in := coupled.Instance{}
		for _, o := range occs {
			relID, ok := t.RelVocab.Lookup(o.relKey)
			if !ok {
				continue
			}
			posID, ok := t.PosVocab.Lookup(o.posKey)
			if !ok {
				continue
			}
			in.Occs = append(in.Occs, coupled.Occurrence{PosID: posID, RelID: relID, Dir: o.dir})
		}
		return t.Coup.Predict(&in)
	}
	in := ml.Instance{}
	for _, o := range occs {
		if relID, ok := t.RelVocab.Lookup(o.relKey); ok {
			in.Features = append(in.Features, ml.Feature{ID: relID, Val: o.dir})
		}
	}
	in.Canonicalize()
	return t.Flat.Predict(&in)
}

// PositionWeights extracts the learned term-position weights as a
// [line][pos] table (1-based coordinates at index line-1, pos-1) — the
// quantity plotted in the paper's Figure 3. Only positional models have
// them; others return nil.
func (t *Trained) PositionWeights() [][]float64 {
	if t.Coup == nil || t.PosVocab == nil {
		return nil
	}
	var table [][]float64
	for id := 0; id < t.PosVocab.Len(); id++ {
		pos, line, ok := featstats.ParsePosKey(t.PosVocab.Name(id))
		if !ok || line < 1 || pos < 1 {
			continue
		}
		for len(table) < line {
			table = append(table, nil)
		}
		row := table[line-1]
		for len(row) < pos {
			row = append(row, 0)
		}
		if id < len(t.Coup.P) {
			row[pos-1] = t.Coup.P[id]
		}
		table[line-1] = row
	}
	return table
}

// Result is the cross-validated performance of one spec, in the shape of
// a Table 2 row.
type Result struct {
	Spec        ModelSpec
	Mean        ml.BinaryMetrics
	FoldMetrics []ml.BinaryMetrics
	Instances   int
	RelFeatures int
	PosFeatures int
}

// CrossValidate runs k-fold cross-validation of the spec on the pairs,
// with the statistics database db providing matching scores and initial
// weights.
func CrossValidate(spec ModelSpec, pairs []snippet.Pair, db *featstats.DB, k int, seed int64, opt Options) (Result, error) {
	pipe := NewPipeline(spec, db)
	pipe.Seed = seed
	ds := pipe.Dataset(pairs)
	if ds.Len() == 0 {
		return Result{}, errors.New("classifier: no usable pairs")
	}
	folds, err := ml.KFold(ds.Len(), k, seed)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Spec:        spec,
		Instances:   ds.Len(),
		RelFeatures: ds.RelVocab.Len(),
		PosFeatures: ds.PosVocab.Len(),
	}
	for fi, fold := range folds {
		model, err := Train(ds, fold.Train, opt)
		if err != nil {
			return Result{}, fmt.Errorf("fold %d: %w", fi, err)
		}
		preds := model.PredictIdx(ds, fold.Test)
		labels := make([]bool, len(fold.Test))
		for i, j := range fold.Test {
			labels[i] = ds.Labels[j]
		}
		res.FoldMetrics = append(res.FoldMetrics, ml.EvaluateBinary(preds, labels))
	}
	res.Mean = ml.MeanMetrics(res.FoldMetrics)
	return res, nil
}
