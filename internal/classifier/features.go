package classifier

import (
	"math/rand"

	"repro/internal/coupled"
	"repro/internal/featstats"
	"repro/internal/ml"
	"repro/internal/rewrite"
	"repro/internal/snippet"
	"repro/internal/textproc"
)

// occurrence is the spec-independent intermediate feature: a relevance
// feature at a micro-position with a direction (+1 favours the first
// creative of the oriented pair).
type occurrence struct {
	posKey string
	relKey string
	dir    float64
}

// Pipeline is phase two of the framework (the "classifier data
// generator" box of Figure 1): it turns labelled creative pairs into
// instances for the spec's learner, with initial weights looked up in
// the statistics database.
type Pipeline struct {
	Spec ModelSpec
	DB   *featstats.DB
	// MaxN is the n-gram ceiling (default 3).
	MaxN int
	// Seed randomises pair orientation so the two classes are balanced
	// (default used as-is; generation is deterministic given Seed).
	Seed int64
	// InitSmoothing is the Laplace count used when turning database
	// statistics into initial weights (default 8): rare features shrink
	// toward zero rather than inheriting large noisy odds.
	InitSmoothing float64
	// MinMatchScore is the evidence floor for accepting a content
	// rewrite during matching (default log1p(8); moves always match).
	MinMatchScore float64

	matcher *rewrite.Matcher
}

// NewPipeline returns a pipeline for the spec over the given statistics
// database.
func NewPipeline(spec ModelSpec, db *featstats.DB) *Pipeline {
	return &Pipeline{Spec: spec, DB: db, MaxN: 3, Seed: 1, InitSmoothing: 8, MinMatchScore: 2.2}
}

func (p *Pipeline) getMatcher() *rewrite.Matcher {
	if p.matcher == nil {
		p.matcher = rewrite.NewMatcher(p.DB)
		if p.MaxN > 0 {
			p.matcher.MaxN = p.MaxN
		}
		p.matcher.MinScore = p.MinMatchScore
	}
	return p.matcher
}

// occurrences extracts the spec's features from one oriented pair.
// Positional specs diff by (text, position) so that moved phrases become
// features; position-free specs diff by text only, exactly the paper's
// "v_a and w_b set to 1 for all terms" degenerate case.
func (p *Pipeline) occurrences(pair snippet.Pair) []occurrence {
	m := p.getMatcher()
	var onlyR, onlyS []textproc.Term
	if p.Spec.UsePosition {
		onlyR, onlyS = m.DiffPositional(pair.R, pair.S)
	} else {
		onlyR, onlyS = m.Diff(pair.R, pair.S)
	}
	var occs []occurrence

	termOcc := func(t textproc.Term, dir float64) occurrence {
		return occurrence{
			posKey: featstats.PosKey(t.Pos, t.Line),
			relKey: featstats.TermKey(t.Text),
			dir:    dir,
		}
	}

	if p.Spec.UseRewrites {
		match := m.MatchTerms(onlyR, onlyS)
		for _, rp := range match.Pairs {
			if rp.From.Text == rp.To.Text {
				// A moved phrase. In the rewrite-only models Eq. 6
				// decomposes it into two occurrences of the same
				// relevance weight at the two positions:
				// T[a]·(P[p] − P[q]). When term features are also on,
				// the term family below already covers the move.
				if !p.Spec.UseTerms {
					occs = append(occs,
						occurrence{
							posKey: featstats.PosKey(rp.From.Pos, rp.From.Line),
							relKey: featstats.TermKey(rp.From.Text),
							dir:    +1,
						},
						occurrence{
							posKey: featstats.PosKey(rp.To.Pos, rp.To.Line),
							relKey: featstats.TermKey(rp.To.Text),
							dir:    -1,
						})
				}
				continue
			}
			occs = append(occs, occurrence{
				posKey: featstats.RewritePosKey(rp.From.Pos, rp.From.Line, rp.To.Pos, rp.To.Line),
				relKey: featstats.RewriteKey(rp.From.Text, rp.To.Text),
				dir:    +1,
			})
		}
	}

	if p.Spec.UseTerms {
		// The term family: every differing term on either side. In the
		// combined models (M5/M6) this is the union with the rewrite
		// family — a matched rewrite contributes its pairwise feature
		// *and* the two term marginals, as when M1's and M3's feature
		// sets are joined.
		for _, t := range onlyR {
			occs = append(occs, termOcc(t, +1))
		}
		for _, t := range onlyS {
			occs = append(occs, termOcc(t, -1))
		}
	}
	return occs
}

// Dataset is the materialised training data for one spec: flat instances
// for position-free models, coupled instances for positional ones, plus
// the vocabularies and the stats-DB initial weight vectors.
type Dataset struct {
	Spec     ModelSpec
	Flat     []ml.Instance
	Coup     []coupled.Instance
	Labels   []bool
	RelVocab *ml.Vocab
	PosVocab *ml.Vocab
	// InitRel[i] is the stats-DB log-odds for relevance feature i;
	// InitPos[i] the normalised position prior for position feature i.
	InitRel []float64
	InitPos []float64
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Labels) }

// PosSupport returns, per position-feature id, the number of coupled
// occurrences backing it — the evidence behind each learned position
// weight.
func (d *Dataset) PosSupport() []int {
	support := make([]int, d.PosVocab.Len())
	for i := range d.Coup {
		for _, o := range d.Coup[i].Occs {
			if o.PosID < len(support) {
				support[o.PosID]++
			}
		}
	}
	return support
}

// Dataset generates instances for every pair. Each pair's orientation is
// randomised (deterministically from Seed) so that the positive and
// negative classes are balanced; pairs with a tied label are skipped.
// Pairs from which the spec extracts no features are kept as empty
// instances (the model abstains to a coin flip on them), so every spec
// is evaluated on the same pair population.
func (p *Pipeline) Dataset(pairs []snippet.Pair) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	ds := &Dataset{
		Spec:     p.Spec,
		RelVocab: &ml.Vocab{},
		PosVocab: &ml.Vocab{},
	}
	for _, pair := range pairs {
		if pair.Label() == 0 {
			continue
		}
		oriented := pair
		if rng.Float64() < 0.5 {
			oriented = pair.Swap()
		}
		occs := p.occurrences(oriented)
		label := oriented.Label() > 0

		if p.Spec.UsePosition {
			ci := coupled.Instance{Label: label}
			for _, o := range occs {
				ci.Occs = append(ci.Occs, coupled.Occurrence{
					PosID: ds.PosVocab.ID(o.posKey),
					RelID: ds.RelVocab.ID(o.relKey),
					Dir:   o.dir,
				})
			}
			ds.Coup = append(ds.Coup, ci)
		} else {
			in := ml.Instance{Label: label}
			for _, o := range occs {
				in.Features = append(in.Features, ml.Feature{ID: ds.RelVocab.ID(o.relKey), Val: o.dir})
			}
			in.Canonicalize()
			ds.Flat = append(ds.Flat, in)
		}
		ds.Labels = append(ds.Labels, label)
	}
	p.initWeights(ds)
	return ds
}

// initWeights fills the stats-DB initialisation vectors. Initial weights
// use evidence-shrunk log odds: a feature observed only a handful of
// times starts near zero regardless of how lopsided its few outcomes
// were.
func (p *Pipeline) initWeights(ds *Dataset) {
	ds.InitRel = make([]float64, ds.RelVocab.Len())
	if p.Spec.UseStatsInit {
		for i := range ds.InitRel {
			ds.InitRel[i] = p.DB.LogOddsSmoothed(ds.RelVocab.Name(i), p.InitSmoothing)
		}
	}
	ds.InitPos = make([]float64, ds.PosVocab.Len())
	if !p.Spec.UsePosition {
		return
	}
	if !p.Spec.UseStatsInit {
		for i := range ds.InitPos {
			ds.InitPos[i] = 1
		}
		return
	}
	// Position priors: map the position feature's shrunk win probability
	// to a weight with 1.0 at the neutral point (p = 0.5), so
	// uninformative positions start at full attention rather than being
	// crushed by a noisy maximum.
	for i := range ds.InitPos {
		lo := p.DB.LogOddsSmoothed(ds.PosVocab.Name(i), p.InitSmoothing)
		ds.InitPos[i] = 2 * ml.Sigmoid(lo)
	}
}
