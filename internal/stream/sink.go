// Package stream is the online learning loop of the serving system: it
// turns the serving binary into a learner by ingesting click feedback
// while requests are being scored, folding it into incremental
// sufficient statistics, and periodically publishing refitted model
// versions into the engine's hot-swap table.
//
// The paper fits its micro- and macro-browsing models from logged
// impressions; this package closes that loop for live traffic. Three
// pieces, wired by a Learner:
//
//   - Sink: a sharded, lock-minimal ingest queue. Producers (the HTTP
//     feedback handler) round-robin events over N shards, each owning a
//     bounded append buffer; a full shard drops the event and counts
//     the drop rather than blocking the serving path.
//   - Accumulation: each shard folds its drained events into its own
//     clickmodel.Stats delta (counting-family sufficient statistics),
//     a ring of recent raw sessions (the mini-batch window for the
//     EM-family models) and per-term impression/click counts (the
//     micro model). Folding shards run concurrently — interning is the
//     expensive part, and it parallelises.
//   - Publisher: on every interval the deltas are merged into a global
//     decayed table, each configured model is refitted — closed-form
//     from the global statistics, windowed EM from the session ring,
//     term-count ratios for micro — and installed as a fresh engine
//     version (source "online"). Rollback and version pinning keep
//     working: every publish is an ordinary immutable install.
//
// See DESIGN.md ("online learning loop") for the layering picture.
package stream

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/clickmodel"
)

// Event is one unit of click feedback: macro evidence (a SERP session
// with its click pattern), micro evidence (aggregated impressions and
// clicks of one snippet), or both.
type Event struct {
	// Session is the macro evidence: one query impression.
	Session *clickmodel.Session `json:"session,omitempty"`
	// Snippet is the micro evidence: one snippet's aggregated counts.
	Snippet *SnippetEvent `json:"snippet,omitempty"`

	// enqueuedNS is stamped by Learner.Ingest (UnixNano) so the fold
	// that eventually absorbs the event can record how long it sat in
	// the sink — the offer→fold lag histogram. Zero (events offered
	// directly to a Sink, WAL replay) records nothing.
	enqueuedNS int64
}

// SnippetEvent aggregates observed impressions and clicks of one
// snippet, the micro model's unit of feedback.
type SnippetEvent struct {
	Lines       []string `json:"lines"`
	Impressions int      `json:"impressions"`
	Clicks      int      `json:"clicks"`
}

// Validate reports whether the snippet feedback is well-formed.
func (e *SnippetEvent) Validate() error {
	if len(e.Lines) == 0 {
		return errors.New("stream: snippet feedback has no lines")
	}
	if e.Impressions <= 0 {
		return errors.New("stream: snippet feedback needs impressions > 0")
	}
	if e.Clicks < 0 || e.Clicks > e.Impressions {
		return errors.New("stream: snippet clicks outside [0, impressions]")
	}
	return nil
}

// ErrDropped is returned by Ingest when every shard buffer the event
// was offered to is full: the event was counted as dropped, not
// queued. Producers treat it as backpressure, not failure.
var ErrDropped = errors.New("stream: ingest queue saturated, event dropped")

// sinkShard is one ingest lane: a mutex and two swap buffers. The pad
// keeps neighbouring shards off one cache line so producers on
// different shards do not false-share.
type sinkShard struct {
	mu    sync.Mutex
	buf   []Event // producers append here (bounded by cap)
	spare []Event // drained buffer, swapped in by DrainShard
	_     [64]byte
}

// Sink is the concurrent ingest front of the online loop: events are
// distributed round-robin over shards and buffered until a drainer
// folds them. Offer is safe for any number of concurrent producers and
// allocates nothing on the steady-state accept path; a saturated shard
// drops the event rather than blocking.
type Sink struct {
	shards []sinkShard
	cursor atomic.Uint64
	queued atomic.Uint64 // accepted into a shard buffer
	drops  atomic.Uint64 // rejected because the shard was full
}

// NewSink returns a sink with the given shard count and per-shard
// buffer capacity (values < 1 become 1 and 1024).
func NewSink(shards, queueCap int) *Sink {
	if shards < 1 {
		shards = 1
	}
	if queueCap < 1 {
		queueCap = 1024
	}
	s := &Sink{shards: make([]sinkShard, shards)}
	for i := range s.shards {
		s.shards[i].buf = make([]Event, 0, queueCap)
		s.shards[i].spare = make([]Event, 0, queueCap)
	}
	return s
}

// Offer enqueues one event, returning false (and counting a drop) when
// the selected shard's buffer is full.
//
//mb:noalloc
func (s *Sink) Offer(ev Event) bool {
	sh := &s.shards[s.cursor.Add(1)%uint64(len(s.shards))]
	sh.mu.Lock()
	if len(sh.buf) == cap(sh.buf) {
		sh.mu.Unlock()
		s.drops.Add(1)
		return false
	}
	sh.buf = append(sh.buf, ev)
	sh.mu.Unlock()
	s.queued.Add(1)
	return true
}

// DrainShard swaps shard i's buffer out (one short critical section)
// and runs fold over every drained event, returning how many there
// were. At most one drainer may work a given shard at a time; the
// Learner serialises this with its own lock.
func (s *Sink) DrainShard(i int, fold func(*Event)) int {
	sh := &s.shards[i]
	sh.mu.Lock()
	full := sh.buf
	sh.buf = sh.spare[:0]
	sh.mu.Unlock()
	for j := range full {
		fold(&full[j])
	}
	n := len(full)
	// Drop the event pointers so folded sessions are collectable, then
	// park the buffer as the next swap target.
	clear(full)
	sh.spare = full[:0]
	return n
}

// Shards returns the shard count.
func (s *Sink) Shards() int { return len(s.shards) }

// Queued returns the number of events ever accepted into a buffer.
func (s *Sink) Queued() uint64 { return s.queued.Load() }

// Dropped returns the number of events rejected on saturation.
func (s *Sink) Dropped() uint64 { return s.drops.Load() }
