package stream

import (
	"testing"

	"repro/internal/engine"
)

func TestLearnerHists(t *testing.T) {
	l, err := New(engine.New(), Config{Models: []string{engine.NameMicro}})
	if err != nil {
		t.Fatal(err)
	}
	h := l.Hists()
	if h.FoldLag.Count != 0 || h.Fold.Count != 0 || h.Publish.Count != 0 {
		t.Fatalf("fresh learner has samples: %+v", h)
	}

	for i := 0; i < 5; i++ {
		if err := l.Ingest(Event{Snippet: &SnippetEvent{Lines: []string{"cheap flights"}, Impressions: 10, Clicks: 3}}); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	if _, err := l.Publish(); err != nil {
		t.Fatalf("publish: %v", err)
	}

	h = l.Hists()
	if h.FoldLag.Count != 5 {
		t.Fatalf("fold-lag samples = %d, want 5 (one per ingested event)", h.FoldLag.Count)
	}
	if h.Fold.Count == 0 {
		t.Fatal("fold histogram recorded nothing")
	}
	if h.Publish.Count != 1 {
		t.Fatalf("publish samples = %d, want 1", h.Publish.Count)
	}
}
