package stream

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/clickmodel"
)

func testSession(q string) *clickmodel.Session {
	return &clickmodel.Session{Query: q, Docs: []string{"a", "b"}, Clicks: []bool{true, false}}
}

func TestSinkOfferAndDrop(t *testing.T) {
	s := NewSink(2, 4)
	for i := 0; i < 8; i++ {
		if !s.Offer(Event{Session: testSession("q")}) {
			t.Fatalf("offer %d rejected below capacity", i)
		}
	}
	if s.Offer(Event{Session: testSession("q")}) {
		t.Fatal("offer accepted into a full sink")
	}
	if s.Queued() != 8 || s.Dropped() != 1 {
		t.Fatalf("queued %d dropped %d, want 8/1", s.Queued(), s.Dropped())
	}

	drained := 0
	for i := 0; i < s.Shards(); i++ {
		drained += s.DrainShard(i, func(*Event) {})
	}
	if drained != 8 {
		t.Fatalf("drained %d, want 8", drained)
	}
	// Capacity is back after the drain.
	if !s.Offer(Event{Session: testSession("q")}) {
		t.Fatal("offer rejected after drain")
	}
}

func TestSinkDefaults(t *testing.T) {
	s := NewSink(0, 0)
	if s.Shards() != 1 {
		t.Fatalf("shards = %d", s.Shards())
	}
	if !s.Offer(Event{}) {
		t.Fatal("default-capacity sink rejected first event")
	}
}

// TestSinkConcurrent hammers Offer from many goroutines while a
// drainer empties shards; every event must be accounted for exactly
// once as drained or dropped (run with -race).
func TestSinkConcurrent(t *testing.T) {
	s := NewSink(4, 64)
	const producers, perProducer = 8, 500

	stop := make(chan struct{})
	drainerDone := make(chan int, 1)
	go func() {
		drained := 0
		for {
			select {
			case <-stop:
				drainerDone <- drained
				return
			default:
			}
			for i := 0; i < s.Shards(); i++ {
				drained += s.DrainShard(i, func(*Event) {})
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := Event{Session: testSession("q")}
			for i := 0; i < perProducer; i++ {
				s.Offer(ev)
			}
		}()
	}
	wg.Wait()
	close(stop)
	// Only one drainer may work a shard at a time: wait for the
	// background drainer to exit before the final sweep.
	drained := <-drainerDone
	for i := 0; i < s.Shards(); i++ {
		drained += s.DrainShard(i, func(*Event) {})
	}

	total := uint64(producers * perProducer)
	if s.Queued()+s.Dropped() != total {
		t.Fatalf("queued %d + dropped %d != offered %d", s.Queued(), s.Dropped(), total)
	}
	if uint64(drained) != s.Queued() {
		t.Fatalf("drained %d != queued %d", drained, s.Queued())
	}
}

func TestSnippetEventValidate(t *testing.T) {
	cases := []struct {
		ev SnippetEvent
		ok bool
	}{
		{SnippetEvent{Lines: []string{"x"}, Impressions: 10, Clicks: 3}, true},
		{SnippetEvent{Lines: nil, Impressions: 10, Clicks: 3}, false},
		{SnippetEvent{Lines: []string{"x"}, Impressions: 0, Clicks: 0}, false},
		{SnippetEvent{Lines: []string{"x"}, Impressions: 5, Clicks: 6}, false},
		{SnippetEvent{Lines: []string{"x"}, Impressions: 5, Clicks: -1}, false},
	}
	for i, c := range cases {
		if err := c.ev.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	l := mustLearner(t, Config{Models: []string{"sdbn"}, Shards: 1, QueueCap: 1})
	if err := l.Ingest(Event{}); err == nil {
		t.Fatal("empty event accepted")
	}
	bad := &clickmodel.Session{Query: "q", Docs: []string{"a"}, Clicks: []bool{true, false}}
	if err := l.Ingest(Event{Session: bad}); err == nil {
		t.Fatal("invalid session accepted")
	}
	if got := l.Counters().Invalid; got != 2 {
		t.Fatalf("invalid counter = %d, want 2", got)
	}
	// Saturation surfaces as ErrDropped.
	if err := l.Ingest(Event{Session: testSession("q")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Ingest(Event{Session: testSession("q")}); !errors.Is(err, ErrDropped) {
		t.Fatalf("saturated ingest returned %v, want ErrDropped", err)
	}
	c := l.Counters()
	if c.Accepted != 1 || c.Dropped != 1 {
		t.Fatalf("counters after saturation: %+v", c)
	}
}
