package stream

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/wal"
)

// TestLearnerWALReplay is the crash-safety contract at the learner
// level: everything a first process ingested comes back in a second
// process's accumulators via the log, counts as folded, and is enough
// on its own to publish a model — no fresh traffic required.
func TestLearnerWALReplay(t *testing.T) {
	dir := t.TempDir()
	sessions := genSessions(400, 23)

	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	l, err := New(eng, Config{Models: []string{"pbm", "micro"}, Shards: 4, QueueCap: 1 << 12, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sessions {
		if err := l.Ingest(Event{Session: &sessions[i]}); err != nil {
			t.Fatal(err)
		}
	}
	snip := SnippetEvent{Lines: []string{"cheap flights", "book today"}, Impressions: 80, Clicks: 12}
	for i := 0; i < 3; i++ {
		if err := l.Ingest(Event{Snippet: &snip}); err != nil {
			t.Fatal(err)
		}
	}
	// Malformed events must not reach the log.
	if err := l.Ingest(Event{}); err == nil {
		t.Fatal("empty event accepted")
	}
	l.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if c := w.Counters(); c.Appended != uint64(len(sessions)+3) {
		t.Fatalf("WAL Appended = %d, want %d", c.Appended, len(sessions)+3)
	}

	// "Restart": a fresh WAL, engine and learner over the same
	// directory. New replays before returning.
	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	eng2 := engine.New()
	l2, err := New(eng2, Config{Models: []string{"pbm", "micro"}, Shards: 4, WAL: w2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	c := l2.Counters()
	if c.Replayed != uint64(len(sessions)+3) {
		t.Fatalf("Replayed = %d, want %d", c.Replayed, len(sessions)+3)
	}
	if c.FoldedSessions != uint64(len(sessions)) || c.FoldedSnippets != 3 {
		t.Fatalf("folded %d sessions / %d snippets, want %d / 3", c.FoldedSessions, c.FoldedSnippets, len(sessions))
	}
	if wc := w2.Counters(); wc.Replayed != uint64(len(sessions)+3) || wc.CorruptSkipped != 0 {
		t.Fatalf("WAL replay counters: %+v", wc)
	}

	// The recovered statistics alone publish working models.
	infos, err := l2.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("published %d models from replayed state, want pbm + micro", len(infos))
	}
	if got := eng2.ModelCount(); got != 2 {
		t.Fatalf("engine has %d models after replay publish, want 2", got)
	}
	if c := l2.Counters(); c.Pairs == 0 || c.MicroTerms == 0 {
		t.Fatalf("replayed state is empty: %+v", c)
	}
}

// TestLearnerWALAppendFailure pins the degradation mode: a closed
// (failing) WAL must not take ingest down with it.
func TestLearnerWALAppendFailure(t *testing.T) {
	w, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := mustLearner(t, Config{Models: []string{"pbm"}, WAL: w})
	defer l.Close()
	if err := w.Close(); err != nil { // every append now fails
		t.Fatal(err)
	}
	s := genSessions(5, 3)
	for i := range s {
		if err := l.Ingest(Event{Session: &s[i]}); err != nil {
			t.Fatalf("ingest with a dead WAL: %v", err)
		}
	}
	if c := w.Counters(); c.AppendErrors != 5 {
		t.Fatalf("AppendErrors = %d, want 5", c.AppendErrors)
	}
}
