package stream

import (
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/textproc"
	"repro/internal/wal"
)

// Config parameterises a Learner.
type Config struct {
	// Models names what the loop trains and publishes: click-model
	// registry names ("pbm", "sdbn", ...) and/or "micro". Counting-
	// family models refit from the decayed global statistics; EM-family
	// models refit on the session window; "micro" rebuilds its
	// relevance table from accumulated term counts.
	Models []string
	// Interval is the publish cadence (default 30s).
	Interval time.Duration
	// Shards is the ingest fan-out (default GOMAXPROCS, capped at 16).
	Shards int
	// QueueCap bounds each shard's ingest buffer (default 4096).
	QueueCap int
	// Window bounds the raw-session ring the EM-family models refit on
	// (default 50000, split across shards).
	Window int
	// Decay in (0, 1) ages the counting statistics and micro term
	// counts by that factor per publish; 0 or 1 keeps all history.
	// With decay on, fully aged-out (query, doc) pairs and micro terms
	// are pruned on publish, so an open-ended query/doc space cannot
	// grow the tables with every pair ever seen.
	Decay float64
	// MinEvents gates scheduled publishes: fewer new feedback events
	// (sessions + snippets) than this since the last publish skips the
	// tick (default 1). Manual Publish calls ignore the gate.
	MinEvents int
	// Iterations caps EM rounds per windowed refit (default 5 — a
	// mini-batch refit polishes the previous publish, it does not need
	// offline-depth convergence).
	Iterations int
	// Attention is the attention layer stamped onto published micro
	// models (nil = FullAttention).
	Attention core.Attention
	// MicroMaxN is the n-gram order for micro term extraction
	// (default 2).
	MicroMaxN int
	// WAL, when set, makes the loop crash-safe: every event the sink
	// accepts is appended to the log, and New replays the log's
	// retained records into the accumulators before returning — so a
	// restarted process resumes with the feedback a crash would
	// otherwise forget (bounded by the WAL's fsync policy and
	// retention). The caller owns the WAL's lifecycle (Close it after
	// the learner).
	WAL *wal.WAL
	// Logger receives publish/skip lines; nil logs nothing.
	Logger *log.Logger
}

func (c *Config) defaults() {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 16 {
			c.Shards = 16
		}
	}
	if c.QueueCap < 1 {
		c.QueueCap = 4096
	}
	if c.Window < 1 {
		c.Window = 50000
	}
	if c.MinEvents < 1 {
		c.MinEvents = 1
	}
	if c.Iterations < 1 {
		c.Iterations = 5
	}
	if c.MicroMaxN < 1 {
		c.MicroMaxN = 2
	}
}

// termCount is one micro term's decayed impression/click mass.
type termCount struct{ imps, clicks float64 }

// sessionRing is one shard's slice of the EM mini-batch window.
type sessionRing struct {
	buf []clickmodel.Session
	n   int // filled
	at  int // next write
}

func (r *sessionRing) add(s clickmodel.Session) {
	r.buf[r.at] = s
	r.at = (r.at + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Counters is a snapshot of the loop's health, exposed on /healthz.
type Counters struct {
	// Accepted/Dropped/Invalid count ingest outcomes: queued into a
	// shard, rejected on saturation, rejected as malformed.
	Accepted uint64 `json:"accepted"`
	Dropped  uint64 `json:"dropped"`
	Invalid  uint64 `json:"invalid"`
	// FoldedSessions/FoldedSnippets count events folded into the
	// accumulators (always <= Accepted + Replayed; the rest is still
	// buffered).
	FoldedSessions uint64 `json:"folded_sessions"`
	FoldedSnippets uint64 `json:"folded_snippets"`
	// Replayed counts events recovered from the WAL at construction
	// (already folded; they also count toward FoldedSessions/Snippets).
	Replayed uint64 `json:"replayed"`
	// Publishes/PublishSkips/PublishErrors count publisher ticks that
	// installed versions, were gated by MinEvents, or failed.
	Publishes     uint64 `json:"publishes"`
	PublishSkips  uint64 `json:"publish_skips"`
	PublishErrors uint64 `json:"publish_errors"`
	// LastPublishMS is the wall time of the last publish (fold + merge
	// + fits + installs).
	LastPublishMS float64 `json:"last_publish_ms"`
	// WindowSessions / Pairs / MicroTerms / Weight describe the
	// accumulated state: EM window fill, distinct (query, doc) pairs,
	// micro vocabulary size, decayed session mass.
	WindowSessions int     `json:"window_sessions"`
	Pairs          int     `json:"pairs"`
	MicroTerms     int     `json:"micro_terms"`
	Weight         float64 `json:"weight"`
}

// Learner owns the online loop: a Sink for ingest, per-shard
// accumulators, and the publisher. Create with New, feed with Ingest,
// run the background publisher with Start/Close — or drive Publish
// directly (tests, manual retrain endpoints).
type Learner struct {
	cfg  Config
	eng  *engine.Engine
	sink *Sink
	wal  *wal.WAL

	invalid        atomic.Uint64
	foldedSessions atomic.Uint64
	foldedSnippets atomic.Uint64
	replayed       uint64      // set once in New, read-only after
	walDown        atomic.Bool // last WAL append failed (log edge-triggered)

	// Loop-health histograms (nanosecond samples, scraped by /metrics):
	// how long events queue before a fold absorbs them, how long folds
	// take, how long publishes take. Atomic recording — foldLag lands
	// from concurrent shard drainers.
	foldLagH obs.Histogram
	foldH    obs.Histogram
	publishH obs.Histogram

	// mu serialises folding, merging and publishing; the ingest path
	// never takes it.
	mu         sync.Mutex
	deltas     []*clickmodel.Stats // per shard, reset on every merge
	idmaps     [][]int32           // per shard: delta pair ID -> global pair ID
	rings      []sessionRing       // per shard slice of the EM window
	termDeltas []map[string]termCount
	global     *clickmodel.Stats
	terms      map[string]termCount
	winScratch []clickmodel.Session

	wantMicro bool
	emModels  int // configured models that need the session window

	lastFolded    uint64 // foldedSessions at the last publish
	publishes     uint64
	publishSkips  uint64
	publishErrors uint64
	lastPublish   time.Duration
	lastInfos     []engine.ModelInfo

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New validates the configuration and returns a ready Learner. Every
// configured model name must be "micro" or a click-model registry
// name.
func New(eng *engine.Engine, cfg Config) (*Learner, error) {
	if eng == nil {
		return nil, errors.New("stream: New needs an engine")
	}
	if len(cfg.Models) == 0 {
		return nil, errors.New("stream: no models configured (want registry names and/or \"micro\")")
	}
	cfg.defaults()
	l := &Learner{
		cfg:    cfg,
		eng:    eng,
		sink:   NewSink(cfg.Shards, cfg.QueueCap),
		global: clickmodel.NewStats(),
		terms:  make(map[string]termCount),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, name := range cfg.Models {
		if name == engine.NameMicro {
			l.wantMicro = true
			continue
		}
		m, err := clickmodel.New(name)
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
		if _, counting := m.(clickmodel.StatsFitter); !counting {
			l.emModels++
		}
	}
	shards := l.sink.Shards()
	perShard := cfg.Window / shards
	if perShard < 1 {
		perShard = 1
	}
	l.deltas = make([]*clickmodel.Stats, shards)
	l.idmaps = make([][]int32, shards)
	l.rings = make([]sessionRing, shards)
	l.termDeltas = make([]map[string]termCount, shards)
	for i := 0; i < shards; i++ {
		l.deltas[i] = clickmodel.NewStats()
		l.rings[i] = sessionRing{buf: make([]clickmodel.Session, perShard)}
		l.termDeltas[i] = make(map[string]termCount)
	}
	if cfg.WAL != nil {
		l.wal = cfg.WAL
		if err := l.replayWAL(); err != nil {
			return nil, fmt.Errorf("stream: wal replay: %w", err)
		}
	}
	return l, nil
}

// replayWAL streams the log's retained records back into the shard
// accumulators, round-robin, before the learner is shared — the crash
// half of crash-safe learning. Replayed events count as folded, so the
// first publish tick sees them and re-installs a recovered model
// without waiting for fresh traffic.
func (l *Learner) replayWAL() error {
	shard := 0
	return l.wal.Replay(func(_ uint64, rec *wal.Record) error {
		ev := Event{Session: rec.Session}
		var snip SnippetEvent
		if len(rec.SnippetLines) > 0 {
			snip = SnippetEvent{Lines: rec.SnippetLines, Impressions: rec.Impressions, Clicks: rec.Clicks}
			ev.Snippet = &snip
		}
		// Only validated events were logged; re-validate anyway so a
		// frame the CRC happened to pass cannot poison the statistics.
		if ev.Session != nil && ev.Session.Validate() != nil {
			ev.Session = nil
		}
		if ev.Snippet != nil && ev.Snippet.Validate() != nil {
			ev.Snippet = nil
		}
		if ev.Session == nil && ev.Snippet == nil {
			return nil
		}
		ns, nn := l.absorb(shard, &ev)
		l.foldedSessions.Add(ns)
		l.foldedSnippets.Add(nn)
		l.replayed += ns + nn
		shard = (shard + 1) % l.sink.Shards()
		return nil
	})
}

// Ingest validates and enqueues one feedback event. Malformed events
// return the validation error; a saturated sink returns ErrDropped.
// Safe for any number of concurrent callers; the accept path takes one
// shard lock and allocates nothing.
func (l *Learner) Ingest(ev Event) error {
	if ev.Session == nil && ev.Snippet == nil {
		l.invalid.Add(1)
		return errors.New("stream: feedback event carries neither session nor snippet")
	}
	if ev.Session != nil {
		if err := ev.Session.Validate(); err != nil {
			l.invalid.Add(1)
			return err
		}
	}
	if ev.Snippet != nil {
		if err := ev.Snippet.Validate(); err != nil {
			l.invalid.Add(1)
			return err
		}
	}
	ev.enqueuedNS = time.Now().UnixNano()
	if !l.sink.Offer(ev) {
		return ErrDropped
	}
	if l.wal != nil {
		rec := wal.Record{Session: ev.Session}
		if ev.Snippet != nil {
			rec.SnippetLines = ev.Snippet.Lines
			rec.Impressions = ev.Snippet.Impressions
			rec.Clicks = ev.Snippet.Clicks
		}
		if _, err := l.wal.Append(rec); err != nil {
			// Durability degraded but the event is in RAM and serving
			// continues; the WAL counters record every failure, the log
			// line fires only on the edge so a dead disk cannot spam.
			if l.walDown.CompareAndSwap(false, true) && l.cfg.Logger != nil {
				l.cfg.Logger.Printf("stream: wal append failed, learning is no longer crash-safe: %v", err)
			}
		} else if l.walDown.CompareAndSwap(true, false) && l.cfg.Logger != nil {
			l.cfg.Logger.Printf("stream: wal append recovered")
		}
	}
	return nil
}

// foldLocked drains every shard concurrently, folding sessions into
// the shard's Stats delta and window ring and snippets into the
// shard's term counts. Caller holds l.mu.
func (l *Learner) foldLocked() {
	defer l.foldH.RecordSince(time.Now())
	var wg sync.WaitGroup
	for i := 0; i < l.sink.Shards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var ns, nn uint64
			l.sink.DrainShard(i, func(ev *Event) {
				s, n := l.absorb(i, ev)
				ns += s
				nn += n
			})
			if ns > 0 {
				l.foldedSessions.Add(ns)
			}
			if nn > 0 {
				l.foldedSnippets.Add(nn)
			}
		}(i)
	}
	wg.Wait()
}

// absorb folds one event into shard i's accumulators (statistics
// delta, session ring, term counts), returning how many sessions and
// snippets it credited. Callers must own shard i: the drain fan-out
// does, and replay runs before the learner is shared.
func (l *Learner) absorb(i int, ev *Event) (sessions, snippets uint64) {
	if ev.enqueuedNS > 0 {
		if lag := time.Now().UnixNano() - ev.enqueuedNS; lag > 0 {
			l.foldLagH.Record(uint64(lag))
		} else {
			l.foldLagH.Record(0)
		}
	}
	if ev.Session != nil {
		if l.deltas[i].Add(*ev.Session) == nil {
			l.rings[i].add(*ev.Session)
			sessions++
		}
	}
	if ev.Snippet != nil {
		l.foldSnippet(i, ev.Snippet)
		snippets++
	}
	return sessions, snippets
}

// foldSnippet credits every distinct term of the snippet with the
// event's impression and click mass.
func (l *Learner) foldSnippet(shard int, ev *SnippetEvent) {
	m := l.termDeltas[shard]
	for term := range textproc.TermSet(ev.Lines, l.cfg.MicroMaxN) {
		tc := m[term]
		tc.imps += float64(ev.Impressions)
		tc.clicks += float64(ev.Clicks)
		m[term] = tc
	}
}

// pruneMass is the decayed impression mass below which a pair or term
// counts as fully aged out.
const pruneMass = 1e-3

// mergeLocked decays the global tables and folds every shard delta in.
// Caller holds l.mu.
func (l *Learner) mergeLocked() {
	decaying := l.cfg.Decay > 0 && l.cfg.Decay < 1
	if decaying {
		l.global.Decay(l.cfg.Decay)
		for term, tc := range l.terms {
			tc.imps *= l.cfg.Decay
			tc.clicks *= l.cfg.Decay
			if tc.imps < pruneMass {
				// Fully aged out: unbounded vocabularies are how online
				// learners leak.
				delete(l.terms, term)
				continue
			}
			l.terms[term] = tc
		}
	}
	for i, d := range l.deltas {
		l.idmaps[i] = l.global.Merge(d, l.idmaps[i])
		d.Reset()
	}
	for _, td := range l.termDeltas {
		for term, tc := range td {
			cur := l.terms[term]
			cur.imps += tc.imps
			cur.clicks += tc.clicks
			l.terms[term] = cur
		}
		clear(td)
	}
	if decaying && l.global.Prune(pruneMass) > 0 {
		// Pruning renumbers global pair IDs, so the cached delta→global
		// maps are stale; fresh shard deltas also drop the pair vocab
		// the shards accumulated for traffic that no longer exists.
		for i := range l.deltas {
			l.deltas[i] = clickmodel.NewStats()
			l.idmaps[i] = nil
		}
	}
}

// windowLocked gathers the EM mini-batch window into a reused scratch
// slice. Caller holds l.mu.
func (l *Learner) windowLocked() []clickmodel.Session {
	l.winScratch = l.winScratch[:0]
	for i := range l.rings {
		l.winScratch = append(l.winScratch, l.rings[i].buf[:l.rings[i].n]...)
	}
	return l.winScratch
}

// Publish drains, merges and refits every configured model, installing
// each as a fresh engine version with source "online". Models that
// cannot fit yet (no feedback of their kind) are skipped with an error
// that is joined into the return value; models that do fit are still
// published. Safe to call concurrently with Ingest and with the
// background loop.
func (l *Learner) Publish() ([]engine.ModelInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.publishLocked()
}

func (l *Learner) publishLocked() ([]engine.ModelInfo, error) {
	start := time.Now()
	l.foldLocked()
	l.mergeLocked()
	l.lastFolded = l.foldedSessions.Load() + l.foldedSnippets.Load()

	var window []clickmodel.Session
	var compiled *clickmodel.CompiledLog
	if l.emModels > 0 {
		window = l.windowLocked()
		if len(window) > 0 {
			var err error
			if compiled, err = clickmodel.Compile(window); err != nil {
				compiled = nil // defensive: fall back to per-model Fit
			}
		}
	}

	infos := make([]engine.ModelInfo, 0, len(l.cfg.Models))
	var errs []error
	for _, name := range l.cfg.Models {
		info, err := l.fitOneLocked(name, window, compiled)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
			continue
		}
		infos = append(infos, info)
	}

	l.lastPublish = time.Since(start)
	l.publishH.Record(uint64(l.lastPublish))
	l.lastInfos = infos
	if len(infos) > 0 {
		l.publishes++
	}
	if len(errs) > 0 {
		l.publishErrors++
	}
	if l.cfg.Logger != nil {
		for _, info := range infos {
			l.cfg.Logger.Printf("stream: published %s (%d params, %.0f sessions of weight, window %d)",
				info.Ref(), info.Params, l.global.Weight(), len(window))
		}
		for _, err := range errs {
			l.cfg.Logger.Printf("stream: publish error: %v", err)
		}
	}
	return infos, errors.Join(errs...)
}

// fitOneLocked refits one configured model from the accumulated state
// and installs it. A fresh model instance is fitted per publish so the
// versions already serving (including pinned name@version readers) are
// never mutated.
func (l *Learner) fitOneLocked(name string, window []clickmodel.Session, compiled *clickmodel.CompiledLog) (engine.ModelInfo, error) {
	if name == engine.NameMicro {
		return l.fitMicroLocked()
	}
	m, err := clickmodel.New(name)
	if err != nil {
		return engine.ModelInfo{}, err
	}
	if it, ok := m.(clickmodel.IterativeModel); ok {
		it.SetIterations(l.cfg.Iterations)
	}
	if sf, ok := m.(clickmodel.StatsFitter); ok {
		err = sf.FitStats(l.global)
	} else if compiled != nil {
		if lf, ok := m.(clickmodel.LogFitter); ok {
			err = lf.FitLog(compiled)
		} else {
			err = m.Fit(compiled.Sessions())
		}
	} else if len(window) > 0 {
		err = m.Fit(window)
	} else {
		err = errors.New("no sessions in the window yet")
	}
	if err != nil {
		return engine.ModelInfo{}, err
	}
	return l.eng.InstallModel(m, engine.SourceOnline)
}

// fitMicroLocked rebuilds the micro model's relevance table from the
// accumulated term counts: each term's relevance is its Laplace-
// smoothed click rate (clicks+1)/(imps+2) — the sigmoid of the
// smoothed log-odds, the same CTR-as-relevance estimator
// engine.MicroFromStats applies to the offline statistics database.
func (l *Learner) fitMicroLocked() (engine.ModelInfo, error) {
	if len(l.terms) == 0 {
		return engine.ModelInfo{}, errors.New("no snippet feedback accumulated yet")
	}
	m := core.NewModel(l.cfg.Attention)
	for term, tc := range l.terms {
		if tc.imps <= 0 {
			continue
		}
		m.Relevance[term] = (tc.clicks + 1) / (tc.imps + 2)
	}
	return l.eng.InstallMicro(m, engine.SourceOnline)
}

// Start launches the background loop: frequent folds (so ingest
// buffers never back up waiting for a publish) and a publish per
// Interval, gated by MinEvents. Idempotent.
func (l *Learner) Start() {
	if !l.started.CompareAndSwap(false, true) {
		return
	}
	go l.run()
}

func (l *Learner) run() {
	defer close(l.done)
	foldEvery := l.cfg.Interval / 8
	if foldEvery < 20*time.Millisecond {
		foldEvery = 20 * time.Millisecond
	}
	if foldEvery > time.Second {
		foldEvery = time.Second
	}
	foldT := time.NewTicker(foldEvery)
	pubT := time.NewTicker(l.cfg.Interval)
	defer foldT.Stop()
	defer pubT.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-foldT.C:
			l.mu.Lock()
			l.foldLocked()
			l.mu.Unlock()
		case <-pubT.C:
			l.mu.Lock()
			l.foldLocked() // count buffered events toward the gate
			fresh := l.foldedSessions.Load()+l.foldedSnippets.Load() >= l.lastFolded+uint64(l.cfg.MinEvents)
			if fresh {
				l.publishLocked() // logs its own errors; counters record them
			} else {
				l.publishSkips++
			}
			l.mu.Unlock()
		}
	}
}

// Close stops the background loop (if running) and waits for it to
// exit. It does not publish; call Publish first for a final flush.
func (l *Learner) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	if l.started.Load() {
		<-l.done
	}
	return nil
}

// LastPublished returns the versions installed by the most recent
// publish.
func (l *Learner) LastPublished() []engine.ModelInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]engine.ModelInfo, len(l.lastInfos))
	copy(out, l.lastInfos)
	return out
}

// Counters returns a consistent-enough snapshot of the loop's health.
func (l *Learner) Counters() Counters {
	l.mu.Lock()
	window := 0
	for i := range l.rings {
		window += l.rings[i].n
	}
	c := Counters{
		Publishes:      l.publishes,
		PublishSkips:   l.publishSkips,
		PublishErrors:  l.publishErrors,
		LastPublishMS:  float64(l.lastPublish) / float64(time.Millisecond),
		WindowSessions: window,
		Pairs:          l.global.NumPairs(),
		MicroTerms:     len(l.terms),
		Weight:         l.global.Weight(),
	}
	l.mu.Unlock()
	c.Accepted = l.sink.Queued()
	c.Dropped = l.sink.Dropped()
	c.Invalid = l.invalid.Load()
	c.FoldedSessions = l.foldedSessions.Load()
	c.FoldedSnippets = l.foldedSnippets.Load()
	c.Replayed = l.replayed
	return c
}

// HistSnapshots is the loop's latency detail behind the Counters
// summary: all samples are nanoseconds.
type HistSnapshots struct {
	// FoldLag is how long each event sat in the sink between Ingest
	// and the fold that absorbed it — the freshness of online learning.
	FoldLag obs.Snapshot
	// Fold is foldLocked wall time per drain.
	Fold obs.Snapshot
	// Publish is publishLocked wall time per publish.
	Publish obs.Snapshot
}

// Hists snapshots the loop-health histograms for /metrics.
func (l *Learner) Hists() HistSnapshots {
	return HistSnapshots{
		FoldLag: l.foldLagH.Snapshot(),
		Fold:    l.foldH.Snapshot(),
		Publish: l.publishH.Snapshot(),
	}
}
