package stream

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clickmodel"
	"repro/internal/engine"
)

// genSessions simulates a PBM-style ground truth: per-doc
// attractiveness times a per-position examination curve. Enough
// structure that a click model fitted on more traffic is measurably
// better on held-out data.
func genSessions(n int, seed int64) []clickmodel.Session {
	rng := rand.New(rand.NewSource(seed))
	docs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	alpha := []float64{0.65, 0.55, 0.45, 0.4, 0.3, 0.25, 0.15, 0.1}
	gamma := []float64{0.9, 0.6, 0.4, 0.2}
	out := make([]clickmodel.Session, 0, n)
	for k := 0; k < n; k++ {
		s := clickmodel.Session{Query: "q", Docs: make([]string, 4), Clicks: make([]bool, 4)}
		for i := range s.Docs {
			d := rng.Intn(len(docs))
			s.Docs[i] = docs[d]
			s.Clicks[i] = rng.Float64() < alpha[d]*gamma[i]
		}
		out = append(out, s)
	}
	return out
}

func mustLearner(t *testing.T, cfg Config) *Learner {
	t.Helper()
	eng := engine.New()
	l, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	eng := engine.New()
	if _, err := New(nil, Config{Models: []string{"pbm"}}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(eng, Config{}); err == nil {
		t.Fatal("empty model list accepted")
	}
	if _, err := New(eng, Config{Models: []string{"bogus"}}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := New(eng, Config{Models: []string{"pbm", "micro"}}); err != nil {
		t.Fatal(err)
	}
}

// perplexity scores a session slice through the engine at a pinned
// model reference and folds the per-position marginals into overall
// click perplexity — evaluation through the serving surface itself.
func perplexity(t *testing.T, eng *engine.Engine, ref string, sessions []clickmodel.Session) float64 {
	t.Helper()
	reqs := make([]engine.Request, len(sessions))
	for i := range sessions {
		reqs[i] = engine.Request{Model: ref, Session: &sessions[i]}
	}
	resps := eng.ScoreBatch(context.Background(), reqs)
	var sum, cnt float64
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("scoring %s: %v", ref, r.Err)
		}
		for j, c := range sessions[i].Clicks {
			q := math.Min(math.Max(r.Positions[j], 1e-9), 1-1e-9)
			if c {
				sum += math.Log2(q)
			} else {
				sum += math.Log2(1 - q)
			}
			cnt++
		}
	}
	return math.Exp2(-sum / cnt)
}

// TestOnlineLoopImprovesPerplexity is the end-to-end acceptance test:
// seed the engine with a model fitted on a sliver of traffic, stream
// the rest through the learner, publish, and require the auto-
// published version to beat the seed on held-out perplexity.
func TestOnlineLoopImprovesPerplexity(t *testing.T) {
	all := genSessions(9000, 17)
	seedLog, live, held := all[:120], all[120:8000], all[8000:]

	eng := engine.New()
	seed := clickmodel.NewSDBN()
	if err := seed.Fit(seedLog); err != nil {
		t.Fatal(err)
	}
	if info := eng.RegisterModel(seed); info.Version != 1 {
		t.Fatalf("seed install: %+v", info)
	}

	l, err := New(eng, Config{Models: []string{"sdbn"}, Shards: 4, QueueCap: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if err := l.Ingest(Event{Session: &live[i]}); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := l.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "sdbn" || infos[0].Version != 2 || infos[0].Source != engine.SourceOnline {
		t.Fatalf("published %+v", infos)
	}

	before := perplexity(t, eng, "sdbn@1", held)
	after := perplexity(t, eng, "sdbn@2", held)
	if !(after < before) {
		t.Fatalf("online refit did not improve held-out perplexity: %.4f -> %.4f", before, after)
	}

	// The counting path must agree exactly with a batch fit on the
	// same sessions — the parity contract end to end.
	batch := clickmodel.NewSDBN()
	if err := batch.Fit(live); err != nil {
		t.Fatal(err)
	}
	wantPerp := perplexityOf(t, batch, held)
	if math.Abs(after-wantPerp) > 1e-9 {
		t.Fatalf("online perplexity %.6f != batch-fit perplexity %.6f", after, wantPerp)
	}

	// Rollback still works over online-published versions.
	info, err := eng.Rollback("sdbn")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("rollback landed on %d", info.Version)
	}

	c := l.Counters()
	if c.Accepted != uint64(len(live)) || c.FoldedSessions != uint64(len(live)) || c.Publishes != 1 || c.Pairs == 0 {
		t.Fatalf("counters: %+v", c)
	}
}

func perplexityOf(t *testing.T, m clickmodel.Model, held []clickmodel.Session) float64 {
	t.Helper()
	p, _ := clickmodel.Perplexity(m, held)
	return p
}

// TestPublishEMWindow: EM-family models refit from the windowed
// mini-batch and publish like any other version.
func TestPublishEMWindow(t *testing.T) {
	live := genSessions(3000, 23)
	eng := engine.New()
	l, err := New(eng, Config{Models: []string{"pbm"}, Shards: 2, QueueCap: 1 << 12, Window: 2000, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if err := l.Ingest(Event{Session: &live[i]}); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := l.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "pbm" || infos[0].Source != engine.SourceOnline {
		t.Fatalf("published %+v", infos)
	}
	c := l.Counters()
	if c.WindowSessions != 2000 {
		t.Fatalf("window filled to %d, want the configured 2000", c.WindowSessions)
	}
	// The published model answers requests.
	resp, err := eng.ScoreCTR(context.Background(), engine.Request{Model: "pbm", Session: &live[0]})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CTR <= 0 || resp.ModelVersion != 1 {
		t.Fatalf("scored %+v", resp)
	}
}

// TestPublishMicro: snippet feedback becomes a served micro model
// whose relevance ranks high-CTR snippets above low-CTR ones.
func TestPublishMicro(t *testing.T) {
	eng := engine.New()
	l, err := New(eng, Config{Models: []string{"micro"}, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := SnippetEvent{Lines: []string{"cheap flights deals"}, Impressions: 200, Clicks: 90}
	bad := SnippetEvent{Lines: []string{"expensive layover fees"}, Impressions: 200, Clicks: 4}
	if err := l.Ingest(Event{Snippet: &good}); err != nil {
		t.Fatal(err)
	}
	if err := l.Ingest(Event{Snippet: &bad}); err != nil {
		t.Fatal(err)
	}
	infos, err := l.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != engine.NameMicro || infos[0].Source != engine.SourceOnline {
		t.Fatalf("published %+v", infos)
	}
	ctx := context.Background()
	hi, err := eng.ScoreCTR(ctx, engine.Request{Model: "micro", Lines: good.Lines})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := eng.ScoreCTR(ctx, engine.Request{Model: "micro", Lines: bad.Lines})
	if err != nil {
		t.Fatal(err)
	}
	if !(hi.CTR > lo.CTR) {
		t.Fatalf("learned relevance did not separate snippets: %.4f vs %.4f", hi.CTR, lo.CTR)
	}
	if c := l.Counters(); c.FoldedSnippets != 2 || c.MicroTerms == 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestPublishPartialFailure: a model with no evidence of its kind yet
// reports an error without blocking the models that can fit.
func TestPublishPartialFailure(t *testing.T) {
	eng := engine.New()
	l, err := New(eng, Config{Models: []string{"sdbn", "micro"}, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := genSessions(50, 3)
	for i := range s {
		if err := l.Ingest(Event{Session: &s[i]}); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := l.Publish() // no snippet feedback: micro must fail, sdbn must land
	if err == nil {
		t.Fatal("publish with an unfittable model returned no error")
	}
	if len(infos) != 1 || infos[0].Name != "sdbn" {
		t.Fatalf("published %+v", infos)
	}
	if c := l.Counters(); c.PublishErrors != 1 || c.Publishes != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestDecayAgesOutTraffic: with decay, old traffic loses weight and
// the fitted parameters track recent behaviour.
func TestDecayAgesOutTraffic(t *testing.T) {
	eng := engine.New()
	l, err := New(eng, Config{Models: []string{"sdbn"}, Shards: 1, QueueCap: 1 << 12, Decay: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	clicky := clickmodel.Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{true, false}}
	for i := 0; i < 100; i++ {
		if err := l.Ingest(Event{Session: &clicky}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Publish(); err != nil {
		t.Fatal(err)
	}
	w1 := l.Counters().Weight
	skippy := clickmodel.Session{Query: "q", Docs: []string{"a", "b"}, Clicks: []bool{false, false}}
	for round := 0; round < 4; round++ {
		for i := 0; i < 100; i++ {
			if err := l.Ingest(Event{Session: &skippy}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := l.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	if w2 := l.Counters().Weight; w2 >= w1+400 {
		t.Fatalf("decay did not age traffic out: weight %v -> %v", w1, w2)
	}
	// Recent all-skip traffic should have pulled a's attractiveness
	// well below the all-click seed round.
	resp, err := eng.ScoreCTR(context.Background(), engine.Request{Model: "sdbn", Session: &clicky})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Positions[0] > 0.2 {
		t.Fatalf("attractiveness stuck at %v despite decayed skips", resp.Positions[0])
	}
}

// TestBackgroundLoopGates: with MinEvents unreachable the ticker
// skips instead of publishing.
func TestBackgroundLoopGates(t *testing.T) {
	eng := engine.New()
	l, err := New(eng, Config{Models: []string{"sdbn"}, Shards: 1, Interval: 25 * time.Millisecond, MinEvents: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	l.Start() // idempotent
	s := genSessions(5, 9)
	for i := range s {
		if err := l.Ingest(Event{Session: &s[i]}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for l.Counters().PublishSkips == 0 {
		select {
		case <-deadline:
			t.Fatal("background loop never ticked")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if c := l.Counters(); c.Publishes != 0 {
		t.Fatalf("gated loop still published: %+v", c)
	}
	// Close is idempotent and safe after the loop exited.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundLoopPublishes: the full background path — Start,
// ingest, wait for the ticker to auto-publish, score the result.
func TestBackgroundLoopPublishes(t *testing.T) {
	live := genSessions(2000, 29)
	eng := engine.New()
	l, err := New(eng, Config{Models: []string{"sdbn"}, Shards: 2, QueueCap: 1 << 12, Interval: 30 * time.Millisecond, MinEvents: 100})
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Close()
	for i := range live {
		if err := l.Ingest(Event{Session: &live[i]}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for l.Counters().Publishes == 0 {
		select {
		case <-deadline:
			t.Fatalf("loop never auto-published: %+v", l.Counters())
		case <-time.After(10 * time.Millisecond):
		}
	}
	resp, err := eng.ScoreCTR(context.Background(), engine.Request{Model: "sdbn", Session: &live[0]})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelVersion < 1 {
		t.Fatalf("scored %+v", resp)
	}
	if got := l.LastPublished(); len(got) == 0 || got[0].Name != "sdbn" {
		t.Fatalf("LastPublished = %+v", got)
	}
}

// TestConcurrentIngestPublishScore is the -race acceptance test:
// concurrent producers, a running background publisher, manual
// publishes and batch scoring all at once.
func TestConcurrentIngestPublishScore(t *testing.T) {
	live := genSessions(4000, 31)
	eng := engine.New(engine.WithKeepVersions(4))
	seed := clickmodel.NewSDBN()
	if err := seed.Fit(live[:100]); err != nil {
		t.Fatal(err)
	}
	eng.RegisterModel(seed)

	l, err := New(eng, Config{Models: []string{"sdbn", "dcm"}, Shards: 4, QueueCap: 1 << 12, Interval: 15 * time.Millisecond, MinEvents: 50})
	if err != nil {
		t.Fatal(err)
	}
	l.Start()

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < len(live); i += 4 {
				l.Ingest(Event{Session: &live[i]}) // drops under pressure are fine
			}
		}(p)
	}
	stopScore := make(chan struct{})
	var scoreWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		scoreWG.Add(1)
		go func() {
			defer scoreWG.Done()
			reqs := make([]engine.Request, 64)
			for i := range reqs {
				reqs[i] = engine.Request{Model: "sdbn", Session: &live[i]}
			}
			for {
				select {
				case <-stopScore:
					return
				default:
				}
				for _, r := range eng.ScoreBatch(context.Background(), reqs) {
					if r.Err != nil {
						t.Error(r.Err)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		l.Publish()
	}
	wg.Wait()
	if _, err := l.Publish(); err != nil {
		t.Fatal(err)
	}
	close(stopScore)
	scoreWG.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	c := l.Counters()
	if c.Publishes == 0 || c.FoldedSessions == 0 {
		t.Fatalf("counters: %+v", c)
	}
	if c.Accepted+c.Dropped != uint64(len(live)) {
		t.Fatalf("accounting: accepted %d + dropped %d != %d", c.Accepted, c.Dropped, len(live))
	}
}

// TestDecayPrunesPairs: with decay on, pairs whose traffic stopped are
// dropped from the global table instead of leaking forever.
func TestDecayPrunesPairs(t *testing.T) {
	eng := engine.New()
	l, err := New(eng, Config{Models: []string{"sdbn"}, Shards: 2, QueueCap: 1 << 12, Decay: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// One burst of unique one-off pairs, then steady repeat traffic.
	for i := 0; i < 200; i++ {
		s := clickmodel.Session{Query: "q", Docs: []string{fmt.Sprintf("one-off-%d", i)}, Clicks: []bool{false}}
		if err := l.Ingest(Event{Session: &s}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Publish(); err != nil {
		t.Fatal(err)
	}
	peak := l.Counters().Pairs
	steady := clickmodel.Session{Query: "q", Docs: []string{"evergreen"}, Clicks: []bool{true}}
	for round := 0; round < 4; round++ {
		for i := 0; i < 50; i++ {
			if err := l.Ingest(Event{Session: &steady}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := l.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Counters().Pairs; got >= peak {
		t.Fatalf("pair table never shrank: %d -> %d", peak, got)
	}
	// The evergreen pair still serves.
	resp, err := eng.ScoreCTR(context.Background(), engine.Request{Model: "sdbn", Session: &steady})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Positions[0] <= 0.5 {
		t.Fatalf("evergreen pair lost its clicks: %+v", resp)
	}
}
