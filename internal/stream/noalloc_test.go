package stream

import "testing"

// TestOfferNoalloc backs the //mb:noalloc annotation on Sink.Offer:
// enqueueing into a shard with spare capacity is a mutex, an append
// into preallocated backing and two counters — no allocation. The
// drop path (full shard) is measured too; it is even cheaper.
func TestOfferNoalloc(t *testing.T) {
	s := NewSink(1, 2048)
	ev := Event{Session: testSession("q")}

	allocs := testing.AllocsPerRun(500, func() {
		if !s.Offer(ev) {
			t.Fatal("Offer dropped with spare capacity")
		}
	})
	if allocs != 0 {
		t.Fatalf("Offer allocates %v/op, want 0", allocs)
	}

	for s.Offer(ev) {
	} // fill the shard
	allocs = testing.AllocsPerRun(100, func() {
		if s.Offer(ev) {
			t.Fatal("Offer accepted into a full shard")
		}
	})
	if allocs != 0 {
		t.Fatalf("Offer drop path allocates %v/op, want 0", allocs)
	}
}
