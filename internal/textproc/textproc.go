// Package textproc provides text normalisation, tokenisation and n-gram
// extraction for snippet text.
//
// Snippets (ad creatives) are short multi-line texts. The micro-browsing
// model reasons about terms — unigrams, bigrams and trigrams — located at a
// (line, position) coordinate, so every extracted Term carries both the
// surface text and where it sits in the snippet. Positions are 1-based, as
// in the paper's examples ("find cheap" at position 1 of line 2).
package textproc

import (
	"strings"
)

// Token is a single normalised word together with its 1-based position
// within its line.
type Token struct {
	Text string
	Pos  int
}

// Term is an n-gram extracted from a snippet line. Text is the
// space-joined normalised token text; N is the gram size; Line and Pos
// locate the first token (both 1-based).
type Term struct {
	Text string
	N    int
	Line int
	Pos  int
}

// Key renders the term in the paper's feature notation "text:pos:line",
// e.g. "find cheap:1:2".
func (t Term) Key() string {
	var b strings.Builder
	b.Grow(len(t.Text) + 8)
	b.WriteString(t.Text)
	b.WriteByte(':')
	writeInt(&b, t.Pos)
	b.WriteByte(':')
	writeInt(&b, t.Line)
	return b.String()
}

// writeInt appends an integer without allocating. Term positions are
// 1-based so negatives never occur in practice, but Key must not emit
// garbage when handed a malformed Term: the sign is peeled off in
// uint space, so even math.MinInt (whose negation overflows int)
// prints correctly.
func writeInt(b *strings.Builder, v int) {
	u := uint(v)
	if v < 0 {
		b.WriteByte('-')
		u = -u // two's-complement negation: exact for every int, MinInt included
	}
	writeUint(b, u)
}

func writeUint(b *strings.Builder, u uint) {
	if u >= 10 {
		writeUint(b, u/10)
	}
	b.WriteByte(byte('0' + u%10))
}

// Normalize lower-cases s and removes punctuation that carries no appeal
// signal. Characters that do carry signal in ad text — digits, '%', '$'
// — are preserved, so "20% off" survives normalisation intact.
// Apostrophes are dropped entirely ("don't" -> "dont") and separator
// runs collapse to single interior spaces. The rules live in
// NormalizeInto (and, fused with span/hash bookkeeping, in
// Scratch.Tokenize); this is the string-allocating convenience form.
func Normalize(s string) string {
	return string(NormalizeInto(nil, s))
}

// Tokenize normalises a line and splits it into positioned tokens.
func Tokenize(line string) []Token {
	fields := strings.Fields(Normalize(line))
	if len(fields) == 0 {
		return nil
	}
	toks := make([]Token, len(fields))
	for i, f := range fields {
		toks[i] = Token{Text: f, Pos: i + 1}
	}
	return toks
}

// NGrams returns all n-grams of exactly size n over toks, preserving the
// position of the first token. It returns nil when the line is shorter
// than n.
func NGrams(toks []Token, n int) []Term {
	if n <= 0 || len(toks) < n {
		return nil
	}
	grams := make([]Term, 0, len(toks)-n+1)
	for i := 0; i+n <= len(toks); i++ {
		grams = append(grams, Term{
			Text: joinTokens(toks[i : i+n]),
			N:    n,
			Pos:  toks[i].Pos,
		})
	}
	return grams
}

func joinTokens(toks []Token) string {
	if len(toks) == 1 {
		return toks[0].Text
	}
	var b strings.Builder
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// ExtractTerms tokenises every line and returns all terms of gram sizes
// 1..maxN with (line, position) coordinates. Lines are numbered from 1.
// maxN is clamped to [1, 3]: the paper uses unigrams, bigrams and
// trigrams.
func ExtractTerms(lines []string, maxN int) []Term {
	if maxN < 1 {
		maxN = 1
	}
	if maxN > 3 {
		maxN = 3
	}
	var terms []Term
	for li, line := range lines {
		toks := Tokenize(line)
		for n := 1; n <= maxN; n++ {
			for _, g := range NGrams(toks, n) {
				g.Line = li + 1
				terms = append(terms, g)
			}
		}
	}
	return terms
}

// TermSet returns the set of distinct term texts (ignoring position) for
// the given lines, useful for set-difference operations between a pair of
// snippets.
func TermSet(lines []string, maxN int) map[string]bool {
	set := make(map[string]bool)
	for _, t := range ExtractTerms(lines, maxN) {
		set[t.Text] = true
	}
	return set
}

// stopwords are high-frequency function words whose presence differences
// between creatives carry no appeal signal. Kept deliberately small: ad
// text is terse and aggressive stopwording destroys bigrams like
// "fly to" that do matter.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true,
	"of": true, "and": true, "or": true,
	"is": true, "are": true, "be": true,
}

// IsStopword reports whether the (already normalised) unigram w is a
// stopword.
func IsStopword(w string) bool { return stopwords[w] }

// FilterStopTerms removes unigram terms that are stopwords. Longer grams
// are kept even if they contain stopwords, since phrases such as
// "best of 2019" remain meaningful.
func FilterStopTerms(terms []Term) []Term {
	out := terms[:0:0]
	for _, t := range terms {
		if t.N == 1 && IsStopword(t.Text) {
			continue
		}
		out = append(out, t)
	}
	return out
}
