package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"lowercases", "Find Cheap Flights", "find cheap flights"},
		{"keeps percent", "20% Off Today", "20% off today"},
		{"keeps dollar", "From $99", "from $99"},
		{"strips punctuation", "Flying to New York? Get discounts.", "flying to new york get discounts"},
		{"strips exclamation", "Great rates!", "great rates"},
		{"drops apostrophe", "Don't Miss Out", "dont miss out"},
		{"collapses runs", "no -- reservation  costs", "no reservation costs"},
		{"empty", "", ""},
		{"only punctuation", "?!.,", ""},
		{"leading punctuation", "...sale", "sale"},
		{"unicode letters", "Café Déals", "café déals"},
		{"digits kept", "24/7 support", "24 7 support"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Normalize(tt.in); got != tt.want {
				t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeNoUpperNoEdgeSpace(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		if n != strings.ToLower(n) {
			return false
		}
		return !strings.HasPrefix(n, " ") && !strings.HasSuffix(n, " ") && !strings.Contains(n, "  ")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Find cheap flights to New York.")
	want := []Token{
		{"find", 1}, {"cheap", 2}, {"flights", 3}, {"to", 4}, {"new", 5}, {"york", 6},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ?! "); got != nil {
		t.Errorf("Tokenize of punctuation = %v, want nil", got)
	}
}

func TestNGrams(t *testing.T) {
	toks := Tokenize("find cheap flights")
	tests := []struct {
		n    int
		want []Term
	}{
		{1, []Term{{"find", 1, 0, 1}, {"cheap", 1, 0, 2}, {"flights", 1, 0, 3}}},
		{2, []Term{{"find cheap", 2, 0, 1}, {"cheap flights", 2, 0, 2}}},
		{3, []Term{{"find cheap flights", 3, 0, 1}}},
		{4, nil},
		{0, nil},
		{-1, nil},
	}
	for _, tt := range tests {
		got := NGrams(toks, tt.n)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("NGrams(n=%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
}

func TestNGramCount(t *testing.T) {
	// Property: a line of k tokens yields max(0, k-n+1) n-grams.
	f := func(words []string, n uint8) bool {
		line := strings.Join(words, " ")
		toks := Tokenize(line)
		gn := int(n%4) + 1
		got := len(NGrams(toks, gn))
		want := len(toks) - gn + 1
		if want < 0 {
			want = 0
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtractTerms(t *testing.T) {
	lines := []string{"XYZ Airlines", "Find cheap flights"}
	terms := ExtractTerms(lines, 3)

	// Line 1: 2 tokens -> 2 uni + 1 bi = 3. Line 2: 3 tokens -> 3+2+1 = 6.
	if len(terms) != 9 {
		t.Fatalf("got %d terms, want 9: %v", len(terms), terms)
	}
	// Spot-check coordinates.
	found := false
	for _, tm := range terms {
		if tm.Text == "find cheap" {
			found = true
			if tm.Line != 2 || tm.Pos != 1 || tm.N != 2 {
				t.Errorf("find cheap at line=%d pos=%d n=%d, want 2/1/2", tm.Line, tm.Pos, tm.N)
			}
		}
	}
	if !found {
		t.Error("bigram 'find cheap' not extracted")
	}
}

func TestExtractTermsClampsN(t *testing.T) {
	lines := []string{"a b c d e"}
	if got, want := len(ExtractTerms(lines, 99)), len(ExtractTerms(lines, 3)); got != want {
		t.Errorf("maxN clamp: got %d terms, want %d", got, want)
	}
	if got, want := len(ExtractTerms(lines, 0)), len(ExtractTerms(lines, 1)); got != want {
		t.Errorf("minN clamp: got %d terms, want %d", got, want)
	}
}

func TestTermKey(t *testing.T) {
	tm := Term{Text: "find cheap", N: 2, Line: 2, Pos: 1}
	if got, want := tm.Key(), "find cheap:1:2"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	tm2 := Term{Text: "x", N: 1, Line: 12, Pos: 10}
	if got, want := tm2.Key(), "x:10:12"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
}

func TestTermSet(t *testing.T) {
	set := TermSet([]string{"no reservation costs", "no reservation costs"}, 2)
	if !set["no reservation"] || !set["costs"] {
		t.Errorf("TermSet missing expected entries: %v", set)
	}
	// Duplicate lines do not duplicate set entries; sanity on size.
	if len(set) != 5 { // no, reservation, costs, no reservation, reservation costs
		t.Errorf("TermSet size = %d, want 5: %v", len(set), set)
	}
}

func TestFilterStopTerms(t *testing.T) {
	terms := ExtractTerms([]string{"the best of rates"}, 2)
	filtered := FilterStopTerms(terms)
	for _, tm := range filtered {
		if tm.N == 1 && IsStopword(tm.Text) {
			t.Errorf("stopword unigram %q survived filtering", tm.Text)
		}
	}
	// Bigrams containing stopwords must survive.
	var hasBigram bool
	for _, tm := range filtered {
		if tm.Text == "best of" {
			hasBigram = true
		}
	}
	if !hasBigram {
		t.Error("bigram containing stopword was wrongly removed")
	}
}

func TestFilterStopTermsDoesNotAlias(t *testing.T) {
	terms := []Term{{Text: "the", N: 1}, {Text: "deal", N: 1}}
	orig := make([]Term, len(terms))
	copy(orig, terms)
	_ = FilterStopTerms(terms)
	if !reflect.DeepEqual(terms, orig) {
		t.Error("FilterStopTerms mutated its input")
	}
}

func BenchmarkTokenize(b *testing.B) {
	line := "Find cheap flights to New York. No reservation costs, great rates!"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(line)
	}
}

func BenchmarkExtractTerms(b *testing.B) {
	lines := []string{
		"XYZ Airlines Official Site",
		"Find cheap flights to New York today",
		"No reservation costs. Great rates!",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractTerms(lines, 3)
	}
}
