package textproc

// CandidateSet is the shared tokenisation scratch of the candidate-set
// scoring path (POST /v1/optimize): one query × N candidate snippets,
// where the candidates are edits of a common base, so most lines occur
// in many candidates. Scoring them through a per-snippet Scratch pays
// normalisation + tokenisation + vocab lookups N times over; a
// CandidateSet pays them once per DISTINCT line.
//
// Lines are deduplicated by a hash-keyed open-addressed table with an
// exact raw-byte comparison on every probe (the same collision
// discipline as TermVocab: a colliding hash can only cost an extra
// compare, never alias two lines). Each distinct line is tokenised
// exactly once into one shared normalised-byte arena — span offsets are
// absolute, and the first token of a line starts flush against the
// previous line's bytes, so windows cannot bleed across lines — and its
// n-gram term IDs are resolved against the interned vocabulary exactly
// once, memoised by Terms.
//
// A CandidateSet is owned by one goroutine at a time (the engine keeps
// one per pooled scratch); the zero value is ready to use, and Reset
// reuses all arenas so a warm set allocates nothing.

// LineID names one distinct line within a CandidateSet, valid until the
// next Reset. IDs are dense, assigned in first-seen order.
type LineID int32

// candLine is the per-distinct-line record: its dedup key (raw-content
// hash plus the raw string for the exact compare), its token-span
// window in the shared arena, and the offset of its memoised term IDs
// (-1 until Terms resolves them).
type candLine struct {
	hash      uint64
	raw       string
	spanStart int32
	spanEnd   int32
	idStart   int32
}

// CandidateSet holds the shared arenas. All slices grow on demand and
// are retained across Reset.
type CandidateSet struct {
	norm  []byte
	spans []TokenSpan
	lines []candLine
	table []int32 // open-addressed dedup buckets; -1 = empty
	mask  uint64

	// Term-ID memo: ids holds maxN entries per token of each resolved
	// line (entry i*maxN+n-1 is the ID of the (n)-gram starting at token
	// i, -1 = not in the vocabulary). The memo is keyed by the
	// (vocab, maxN) pair it was resolved against; a different pair
	// invalidates it wholesale.
	ids       []int32
	memoVocab *FrozenVocab
	memoMaxN  int
}

// minCandTable mirrors minVocabTable: small sets still terminate
// probes quickly.
const minCandTable = 16

// Reset forgets every line while keeping the arenas' capacity. Raw
// line strings are cleared so a pooled set does not pin request
// buffers beyond the call that brought them.
func (cs *CandidateSet) Reset() {
	cs.norm = cs.norm[:0]
	cs.spans = cs.spans[:0]
	for i := range cs.lines {
		cs.lines[i].raw = ""
	}
	cs.lines = cs.lines[:0]
	for i := range cs.table {
		cs.table[i] = -1
	}
	cs.ids = cs.ids[:0]
	cs.memoVocab = nil
	cs.memoMaxN = 0
}

// Len reports the number of distinct lines added since the last Reset.
func (cs *CandidateSet) Len() int { return len(cs.lines) }

// Tokens reports line id's token count.
func (cs *CandidateSet) Tokens(id LineID) int {
	l := &cs.lines[id]
	return int(l.spanEnd - l.spanStart)
}

// Line returns the raw text line id was first added as.
func (cs *CandidateSet) Line(id LineID) string { return cs.lines[id].raw }

// AddLine interns a raw line, tokenising it only if its content has
// not been seen since the last Reset, and returns its dense ID.
//
//mb:noalloc
func (cs *CandidateSet) AddLine(line string) LineID {
	return cs.addLine(line, hashString(line))
}

// addLine is AddLine with the dedup hash supplied by the caller, split
// out so the collision tests can force two distinct lines onto one
// probe chain.
//
//mb:noalloc
func (cs *CandidateSet) addLine(line string, h uint64) LineID {
	if len(cs.table) == 0 {
		cs.growTable(minCandTable) //mb:allocok first use of a zero-value set
	}
	for i := h & cs.mask; ; i = (i + 1) & cs.mask {
		id := cs.table[i]
		if id < 0 {
			break
		}
		if l := &cs.lines[id]; l.hash == h && l.raw == line {
			return LineID(id)
		}
	}
	id := int32(len(cs.lines))
	spanStart := int32(len(cs.spans))
	cs.norm, cs.spans = appendTokens(cs.norm, cs.spans, line)
	cs.lines = append(cs.lines, candLine{
		hash:      h,
		raw:       line,
		spanStart: spanStart,
		spanEnd:   int32(len(cs.spans)),
		idStart:   -1,
	})
	// Keep the load factor under 1/2, as TermVocab does.
	if 2*len(cs.lines) > len(cs.table) {
		cs.growTable(2 * len(cs.table)) //mb:allocok capacity miss: table doubles, then reused
	} else {
		cs.place(h, id)
	}
	return LineID(id)
}

// growTable rebuilds the probe table at the given power-of-two size,
// re-placing every line by its stored hash.
func (cs *CandidateSet) growTable(size int) {
	if cap(cs.table) >= size {
		cs.table = cs.table[:size]
	} else {
		cs.table = make([]int32, size)
	}
	for i := range cs.table {
		cs.table[i] = -1
	}
	cs.mask = uint64(size - 1)
	for id := range cs.lines {
		cs.place(cs.lines[id].hash, int32(id))
	}
}

// place inserts an ID at the first free bucket of its probe chain.
func (cs *CandidateSet) place(h uint64, id int32) {
	for i := h & cs.mask; ; i = (i + 1) & cs.mask {
		if cs.table[i] < 0 {
			cs.table[i] = id
			return
		}
	}
}

// Terms returns line id's n-gram term IDs resolved against v, laid out
// maxN entries per token: entry i*maxN+(n-1) is the vocabulary ID of
// the n-gram window starting at token i, or -1 when the window is not
// in the vocabulary (or extends past the line — callers bound n by the
// remaining token count, so those tail entries are never read). The
// first call per line does the vocab lookups; repeats are memo hits.
// The returned slice is valid until the next Terms call (the memo
// arena may grow and move).
//
// The memo is only coherent for one (vocab, maxN) pair at a time;
// resolving against a different pair — a hot-swapped model mid-set —
// drops every line's memo and starts over. Correct either way, fast in
// the only case that matters.
//
//mb:noalloc
func (cs *CandidateSet) Terms(id LineID, maxN int, v *FrozenVocab) []int32 {
	if maxN < 1 {
		maxN = 1
	}
	if v != cs.memoVocab || maxN != cs.memoMaxN {
		cs.ids = cs.ids[:0]
		for i := range cs.lines {
			cs.lines[i].idStart = -1
		}
		cs.memoVocab, cs.memoMaxN = v, maxN
	}
	l := &cs.lines[id]
	ntok := int(l.spanEnd - l.spanStart)
	if l.idStart >= 0 {
		return cs.ids[l.idStart : int(l.idStart)+ntok*maxN]
	}
	start := len(cs.ids)
	spans := cs.spans[l.spanStart:l.spanEnd]
	for i := range spans {
		nmax := maxN
		if left := len(spans) - i; left < nmax {
			nmax = left
		}
		h := NGramHashSeed
		ws := spans[i].Start
		for n := 1; n <= maxN; n++ {
			tid := int32(-1)
			if n <= nmax {
				sp := spans[i+n-1]
				h = ExtendNGramHash(h, sp.Hash)
				if vid, ok := v.LookupHashed(h, cs.norm[ws:sp.End]); ok {
					tid = vid
				}
			}
			cs.ids = append(cs.ids, tid)
		}
	}
	l.idStart = int32(start)
	return cs.ids[start : start+ntok*maxN]
}
