package textproc

import (
	"fmt"
	"testing"
)

// TestFrozenVocabParity freezes a vocabulary and checks every lookup
// surface agrees with the mutable original, including misses.
func TestFrozenVocabParity(t *testing.T) {
	v := NewTermVocab(0)
	terms := []string{"cheap", "flights", "cheap flights", "find cheap flights", "20% off", "x"}
	for _, s := range terms {
		v.Add(s)
	}
	f := FreezeVocab(v)
	if f.Len() != v.Len() {
		t.Fatalf("frozen Len = %d, want %d", f.Len(), v.Len())
	}
	for _, s := range terms {
		want, _ := v.Lookup(s)
		got, ok := f.Lookup(s)
		if !ok || got != want {
			t.Errorf("frozen Lookup(%q) = (%d, %v), want (%d, true)", s, got, ok, want)
		}
		if f.Text(got) != s {
			t.Errorf("frozen Text(%d) = %q, want %q", got, f.Text(got), s)
		}
		if string(f.AppendText(nil, got)) != s {
			t.Errorf("frozen AppendText(%d) = %q, want %q", got, f.AppendText(nil, got), s)
		}
	}
	for _, s := range []string{"", "nope", "cheap flight", "find cheap"} {
		if id, ok := f.Lookup(s); ok {
			t.Errorf("frozen Lookup(%q) = (%d, true), want miss", s, id)
		}
	}
}

// TestFrozenVocabHashedWindows drives the hashed-window hot path the
// compiled scorer uses, via a real tokenisation scratch.
func TestFrozenVocabHashedWindows(t *testing.T) {
	v := NewTermVocab(0)
	for _, s := range []string{"find", "cheap", "find cheap", "cheap flights", "find cheap flights"} {
		v.Add(s)
	}
	f := FreezeVocab(v)

	var sc Scratch
	spans := sc.Tokenize("Find CHEAP flights!")
	if len(spans) != 3 {
		t.Fatalf("tokenize produced %d spans, want 3", len(spans))
	}
	for i := range spans {
		h := NGramHashSeed
		for n := 1; i+n <= len(spans); n++ {
			sp := spans[i+n-1]
			h = ExtendNGramHash(h, sp.Hash)
			window := sc.Norm[spans[i].Start:sp.End]
			wantID, wantOK := v.LookupHashed(h, window)
			gotID, gotOK := f.LookupHashed(h, window)
			if gotOK != wantOK || (wantOK && gotID != wantID) {
				t.Errorf("window %q: frozen = (%d, %v), mutable = (%d, %v)", window, gotID, gotOK, wantID, wantOK)
			}
		}
	}
}

// TestFrozenVocabRoundTrip rebuilds a frozen vocab from its exported
// sections (the artifact load path) and re-verifies lookups.
func TestFrozenVocabRoundTrip(t *testing.T) {
	v := NewTermVocab(0)
	var terms []string
	for i := 0; i < 500; i++ {
		terms = append(terms, fmt.Sprintf("term %d tail", i))
	}
	for _, s := range terms {
		v.Add(s)
	}
	f := FreezeVocab(v)

	re, err := NewFrozenVocab(f.Blob(), f.Offsets(), f.Table())
	if err != nil {
		t.Fatalf("NewFrozenVocab: %v", err)
	}
	for _, s := range terms {
		want, _ := v.Lookup(s)
		got, ok := re.Lookup(s)
		if !ok || got != want {
			t.Fatalf("rebuilt Lookup(%q) = (%d, %v), want (%d, true)", s, got, ok, want)
		}
	}
}

// TestNewFrozenVocabRejects exercises the O(1) structural validation
// the constructor keeps — endpoint and sizing invariants only, so
// mapped loads stay O(1) in artifact size.
func TestNewFrozenVocabRejects(t *testing.T) {
	v := NewTermVocab(0)
	v.Add("a")
	v.Add("b")
	f := FreezeVocab(v)

	cases := []struct {
		name string
		blob []byte
		offs []uint32
		tab  []int32
	}{
		{"empty offsets", f.Blob(), nil, f.Table()},
		{"blob mismatch", f.Blob()[:1], f.Offsets(), f.Table()},
		{"bad last offset", f.Blob(), []uint32{0, 2, 1}, f.Table()},
		{"non power of two table", f.Blob(), f.Offsets(), make([]int32, 17)},
		{"tiny table", f.Blob(), f.Offsets(), make([]int32, 8)},
		{"overfull table", f.Blob(), f.Offsets(), make([]int32, 16)}, // ids all 0 but only validates range; use bad id below
	}
	for _, c := range cases {
		if c.name == "overfull table" {
			// 16 buckets can hold 2 terms; make it genuinely overfull: 4 terms, 4 buckets is
			// caught by the min-size check, so instead shrink against a bigger vocab.
			big := NewTermVocab(0)
			for i := 0; i < 20; i++ {
				big.Add(fmt.Sprintf("t%d", i))
			}
			bf := FreezeVocab(big)
			if _, err := NewFrozenVocab(bf.Blob(), bf.Offsets(), make([]int32, 16)); err == nil {
				t.Errorf("%s: NewFrozenVocab accepted invalid sections", c.name)
			}
			continue
		}
		if _, err := NewFrozenVocab(c.blob, c.offs, c.tab); err == nil {
			t.Errorf("%s: NewFrozenVocab accepted invalid sections", c.name)
		}
	}
}

// TestFrozenVocabDeferredValidation pins the trust split: per-element
// corruption (decreasing offsets, out-of-range bucket IDs) is NOT
// caught by the O(1) constructor — lookups must degrade to misses
// without panicking, and Validate, which verified loads run before
// install, must reject it.
func TestFrozenVocabDeferredValidation(t *testing.T) {
	v := NewTermVocab(0)
	v.Add("a")
	v.Add("b")
	f := FreezeVocab(v)

	badTab := append(append([]int32{}, f.Table()[:len(f.Table())-1]...), 99)
	fv, err := NewFrozenVocab(f.Blob(), f.Offsets(), badTab)
	if err != nil {
		t.Fatalf("O(1) constructor rejected deferred-validation corruption: %v", err)
	}
	for _, s := range []string{"a", "b", "zz"} {
		if _, ok := fv.Lookup(s); ok && s == "zz" {
			t.Errorf("corrupt table resolved %q", s)
		}
	}
	if err := fv.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range bucket id")
	}

	// Decreasing interior offsets with valid endpoints: same contract.
	// Every bucket holds term 1, whose span [2,1) is inverted — probes
	// must fail soft on the lo > hi guard instead of slicing backwards.
	invTab := make([]int32, 16)
	for i := range invTab {
		invTab[i] = 1
	}
	fv, err = NewFrozenVocab(f.Blob(), []uint32{0, 2, 1, 2}, invTab)
	if err != nil {
		t.Fatalf("O(1) constructor rejected decreasing interior offsets: %v", err)
	}
	if _, ok := fv.Lookup("ab"); ok {
		t.Error("inverted-span term resolved a lookup")
	}
	if err := fv.Validate(); err == nil {
		t.Error("Validate accepted decreasing offsets")
	}
}
