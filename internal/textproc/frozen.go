package textproc

// FrozenVocab is the immutable, flat form of a TermVocab: term texts
// live in one contiguous byte blob indexed by an offsets array, and
// the open-addressed probe table is a plain []int32 — three slices
// with no interior pointers, so a frozen vocabulary can be serialized
// as raw sections and reconstituted over foreign memory (a read-only
// file mapping) without touching a single term. This is the classic
// flat-language-model layout: the on-disk bytes ARE the lookup
// structure, and N processes mapping the same artifact share one page
// cache copy.
//
// The lookup methods mirror TermVocab's exactly — same two-level hash,
// same probe discipline, same byte-compare collision check — so the
// compiled scoring loop is indifferent to which side of a freeze it is
// reading. A corrupt probe table can only cause misses (the byte
// compare rejects wrong IDs); it can never alias two distinct terms.

import (
	"errors"
	"fmt"
	"math/bits"
)

// FrozenVocab is built by FreezeVocab (from an in-memory TermVocab) or
// NewFrozenVocab (over foreign memory). It is immutable and safe for
// concurrent use. When the backing slices view a file mapping, the
// mapping must outlive the vocabulary — the engine's refcounted
// version table enforces this for serving.
type FrozenVocab struct {
	blob []byte
	offs []uint32 // len n+1; term i is blob[offs[i]:offs[i+1]]
	tab  []int32  // open-addressed probe table; -1 = empty
	mask uint64
}

// FreezeVocab flattens an in-memory vocabulary: term texts are copied
// into one blob and the probe table is rebuilt at the same geometry.
// The source vocabulary must not be mutated afterwards if the caller
// intends the frozen form to stay equivalent.
func FreezeVocab(v *TermVocab) *FrozenVocab {
	n := v.Len()
	total := 0
	for _, s := range v.strs {
		total += len(s)
	}
	f := &FrozenVocab{
		blob: make([]byte, 0, total),
		offs: make([]uint32, n+1),
		tab:  make([]int32, len(v.table)),
		mask: v.mask,
	}
	for i, s := range v.strs {
		f.offs[i] = uint32(len(f.blob))
		f.blob = append(f.blob, s...)
	}
	f.offs[n] = uint32(len(f.blob))
	copy(f.tab, v.table)
	return f
}

// NewFrozenVocab wraps pre-built sections — typically views into a
// mapped artifact — after O(1) structural checks: offsets bracketing
// the blob and a power-of-two probe table large enough for the term
// count. Per-element invariants (monotone offsets, in-range bucket
// IDs) are NOT checked here — that would make every mapped load O(size)
// and defeat the zero-parse layout; Validate runs them on demand for
// loads of untrusted bytes. The lookup loop bounds-checks every probe
// itself, so a vocabulary corrupted past the constructor degrades to
// lookup misses, never to aliased terms or out-of-range panics.
func NewFrozenVocab(blob []byte, offs []uint32, tab []int32) (*FrozenVocab, error) {
	if len(offs) == 0 {
		return nil, errors.New("textproc: frozen vocab needs an offsets array")
	}
	n := len(offs) - 1
	if offs[0] != 0 || uint32(len(blob)) != offs[n] {
		return nil, fmt.Errorf("textproc: frozen vocab offsets cover [%d,%d) but blob holds %d bytes", offs[0], offs[n], len(blob))
	}
	if len(tab) < minVocabTable || bits.OnesCount(uint(len(tab))) != 1 {
		return nil, fmt.Errorf("textproc: frozen vocab probe table size %d is not a power of two >= %d", len(tab), minVocabTable)
	}
	if len(tab) < 2*n {
		return nil, fmt.Errorf("textproc: frozen vocab probe table (%d buckets) cannot hold %d terms at load factor 1/2", len(tab), n)
	}
	return &FrozenVocab{blob: blob, offs: offs, tab: tab, mask: uint64(len(tab) - 1)}, nil
}

// Validate runs the O(n) per-element checks NewFrozenVocab skips:
// monotone offsets covering the blob and every probe bucket either
// empty or a valid term ID. Verified load paths (artifacts arriving
// over the network or flagged untrusted) call this once before
// install; trusted local loads skip it and rely on the lookup loop's
// own bounds checks. Hash placement is still not verified — a
// misplaced entry can only cause misses.
func (v *FrozenVocab) Validate() error {
	n := v.Len()
	for i := 0; i < n; i++ {
		if v.offs[i] > v.offs[i+1] {
			return fmt.Errorf("textproc: frozen vocab offset %d decreases (%d -> %d)", i, v.offs[i], v.offs[i+1])
		}
	}
	for i, id := range v.tab {
		if id < -1 || int(id) >= n {
			return fmt.Errorf("textproc: frozen vocab bucket %d holds id %d of %d terms", i, id, n)
		}
	}
	return nil
}

// term returns term id's byte window, or false when the offsets or ID
// are corrupt — the per-probe bounds check that lets unvalidated
// mappings degrade to misses instead of panicking.
func (v *FrozenVocab) term(id int32) ([]byte, bool) {
	if uint(id)+1 >= uint(len(v.offs)) {
		return nil, false
	}
	lo, hi := v.offs[id], v.offs[id+1]
	if lo > hi || uint64(hi) > uint64(len(v.blob)) {
		return nil, false
	}
	return v.blob[lo:hi], true
}

// LookupHashed resolves a normalised byte window whose hash the caller
// built with NGramHashSeed/ExtendNGramHash — the hot call of the
// compiled scoring path, identical in shape to TermVocab.LookupHashed.
func (v *FrozenVocab) LookupHashed(h uint64, b []byte) (int32, bool) {
	for i := h & v.mask; ; i = (i + 1) & v.mask {
		id := v.tab[i]
		if id < 0 {
			return 0, false
		}
		text, ok := v.term(id)
		if !ok {
			return 0, false
		}
		if string(text) == string(b) { // comparison-only conversions: no alloc
			return id, true
		}
	}
}

// Lookup resolves a term string without interning.
func (v *FrozenVocab) Lookup(s string) (int32, bool) {
	for i := hashString(s) & v.mask; ; i = (i + 1) & v.mask {
		id := v.tab[i]
		if id < 0 {
			return 0, false
		}
		text, ok := v.term(id)
		if !ok {
			return 0, false
		}
		if string(text) == s {
			return id, true
		}
	}
}

// Len returns the number of terms.
func (v *FrozenVocab) Len() int { return len(v.offs) - 1 }

// Text returns the term text behind an ID, allocating a string (cold
// path: exports, debugging). IDs outside [0, Len) panic via the slice.
func (v *FrozenVocab) Text(id int32) string {
	return string(v.blob[v.offs[id]:v.offs[id+1]])
}

// AppendText appends term id's bytes to dst without allocating a
// string — the export path's way to stream terms out of a mapping.
func (v *FrozenVocab) AppendText(dst []byte, id int32) []byte {
	return append(dst, v.blob[v.offs[id]:v.offs[id+1]]...)
}

// Blob, Offsets and Table expose the backing sections for
// serialization. Callers must treat them as read-only.
func (v *FrozenVocab) Blob() []byte      { return v.blob }
func (v *FrozenVocab) Offsets() []uint32 { return v.offs }
func (v *FrozenVocab) Table() []int32    { return v.tab }

// HashString exposes the vocabulary's string hash so foreign-memory
// pair tables (internal/clickmodel's frozen views) probe with exactly
// the hash the freeze placed entries under.
func HashString(s string) uint64 { return hashString(s) }
