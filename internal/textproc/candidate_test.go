package textproc

import (
	"fmt"
	"testing"
)

// candTestVocab freezes a vocabulary holding every 1..3-gram of the
// given lines, the shape CompiledModel serves against.
func candTestVocab(lines ...string) *FrozenVocab {
	v := NewTermVocab(16)
	for _, t := range ExtractTerms(lines, 3) {
		v.Add(t.Text)
	}
	return FreezeVocab(v)
}

func TestCandidateSetDedupAndTokenParity(t *testing.T) {
	lines := []string{
		"Find Cheap Flights to Rome!",
		"Great rates",
		"",
		"Find Cheap Flights to Rome!", // dup of 0
		"20% off — today only",
	}
	var cs CandidateSet
	ids := make([]LineID, len(lines))
	for i, ln := range lines {
		ids[i] = cs.AddLine(ln)
	}
	if ids[3] != ids[0] {
		t.Fatalf("duplicate line got id %d, want %d", ids[3], ids[0])
	}
	if cs.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct lines", cs.Len())
	}
	var sc Scratch
	for i, ln := range lines {
		id := ids[i]
		spans := sc.Tokenize(ln)
		if got := cs.Tokens(id); got != len(spans) {
			t.Fatalf("line %d: Tokens = %d, Scratch tokenised %d", i, got, len(spans))
		}
		if got := cs.Line(id); got != ln {
			t.Fatalf("line %d: Line() = %q, want %q", i, got, ln)
		}
		// The arena spans must carry the same hashes and the same
		// normalised bytes as a per-line Scratch.
		l := &cs.lines[id]
		arena := cs.spans[l.spanStart:l.spanEnd]
		for k, sp := range spans {
			asp := arena[k]
			if asp.Hash != sp.Hash {
				t.Fatalf("line %d token %d: arena hash %x, scratch hash %x", i, k, asp.Hash, sp.Hash)
			}
			if got, want := string(cs.norm[asp.Start:asp.End]), string(sc.Norm[sp.Start:sp.End]); got != want {
				t.Fatalf("line %d token %d: arena %q, scratch %q", i, k, got, want)
			}
		}
	}
}

func TestCandidateSetTermsMatchesDirectLookup(t *testing.T) {
	lines := []string{"Find cheap flights to Rome", "Great rates on hotels"}
	v := candTestVocab(lines[0]) // line 1 fully known, line 2 mostly unknown
	var cs CandidateSet
	for maxN := 1; maxN <= 3; maxN++ {
		cs.Reset()
		for _, ln := range lines {
			id := cs.AddLine(ln)
			ids := cs.Terms(id, maxN, v)
			var sc Scratch
			spans := sc.Tokenize(ln)
			if len(ids) != len(spans)*maxN {
				t.Fatalf("maxN=%d %q: %d ids, want %d", maxN, ln, len(ids), len(spans)*maxN)
			}
			for i := range spans {
				for n := 1; n <= maxN && i+n <= len(spans); n++ {
					h := NGramHashSeed
					for k := i; k < i+n; k++ {
						h = ExtendNGramHash(h, spans[k].Hash)
					}
					want := int32(-1)
					if vid, ok := v.LookupHashed(h, sc.Norm[spans[i].Start:spans[i+n-1].End]); ok {
						want = vid
					}
					if got := ids[i*maxN+n-1]; got != want {
						t.Fatalf("maxN=%d %q window (%d,%d): id %d, want %d", maxN, ln, i, n, got, want)
					}
				}
			}
		}
	}
}

// TestCandidateSetTermsMemo pins that repeated Terms calls are memo
// hits (same backing offsets, same values) and that switching the
// vocabulary or gram order invalidates the memo instead of serving
// stale IDs.
func TestCandidateSetTermsMemo(t *testing.T) {
	line := "find cheap flights"
	vAll := candTestVocab(line)
	vNone := candTestVocab("totally different words here")
	var cs CandidateSet
	id := cs.AddLine(line)

	first := cs.Terms(id, 2, vAll)
	again := cs.Terms(id, 2, vAll)
	if len(first) != len(again) {
		t.Fatalf("memo hit changed length: %d vs %d", len(first), len(again))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("memo hit changed ids[%d]: %d vs %d", i, first[i], again[i])
		}
	}
	if first[0] < 0 {
		t.Fatalf("unigram %q unresolved against its own vocab", line)
	}
	// Different vocab: every window must re-resolve (here: all misses).
	for i, tid := range cs.Terms(id, 2, vNone) {
		if tid != -1 {
			t.Fatalf("stale memo: ids[%d] = %d against a foreign vocab", i, tid)
		}
	}
	// And back: re-resolving against the first vocab works again.
	if got := cs.Terms(id, 2, vAll)[0]; got != first[0] {
		t.Fatalf("re-resolution against original vocab gave %d, want %d", got, first[0])
	}
}

// TestCandidateSetForcedCollision drives two distinct lines through
// one probe chain by forging equal dedup hashes: the raw-byte compare
// must keep them distinct, and the true duplicate must still dedup.
func TestCandidateSetForcedCollision(t *testing.T) {
	var cs CandidateSet
	const h = uint64(0xdeadbeef)
	a := cs.addLine("alpha one", h)
	b := cs.addLine("beta two", h)
	if a == b {
		t.Fatalf("hash collision aliased two distinct lines to id %d", a)
	}
	if got := cs.addLine("alpha one", h); got != a {
		t.Fatalf("colliding duplicate resolved to %d, want %d", got, a)
	}
	if got := cs.addLine("beta two", h); got != b {
		t.Fatalf("colliding duplicate resolved to %d, want %d", got, b)
	}
	if cs.Line(a) != "alpha one" || cs.Line(b) != "beta two" {
		t.Fatalf("collided lines corrupted: %q / %q", cs.Line(a), cs.Line(b))
	}
}

// TestCandidateSetGrowKeepsCollisions grows the table past several
// doublings with colliding hashes in play.
func TestCandidateSetGrowKeepsCollisions(t *testing.T) {
	var cs CandidateSet
	ids := map[string]LineID{}
	for i := 0; i < 200; i++ {
		ln := fmt.Sprintf("line number %d", i)
		ids[ln] = cs.addLine(ln, uint64(i%3)) // 3 hash values, 200 lines
	}
	if cs.Len() != 200 {
		t.Fatalf("Len = %d, want 200", cs.Len())
	}
	for ln, want := range ids {
		var n int
		fmt.Sscanf(ln, "line number %d", &n)
		if got := cs.addLine(ln, uint64(n%3)); got != want {
			t.Fatalf("after growth, %q resolved to %d, want %d", ln, got, want)
		}
	}
}

func TestCandidateSetReset(t *testing.T) {
	v := candTestVocab("hello world")
	var cs CandidateSet
	id := cs.AddLine("hello world")
	if got := cs.Terms(id, 2, v)[0]; got < 0 {
		t.Fatal("unigram unresolved before reset")
	}
	cs.Reset()
	if cs.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", cs.Len())
	}
	id2 := cs.AddLine("goodbye")
	if id2 != 0 {
		t.Fatalf("first line after Reset got id %d, want 0", id2)
	}
	for i, tid := range cs.Terms(id2, 2, v) {
		if tid != -1 {
			t.Fatalf("ids[%d] = %d for an out-of-vocab line after Reset", i, tid)
		}
	}
}

// TestCandidateSetNoalloc backs the //mb:noalloc annotations on
// AddLine, addLine and Terms: a warm Reset/AddLine/Terms cycle over a
// fixed line set must not allocate.
func TestCandidateSetNoalloc(t *testing.T) {
	lines := []string{
		"Find cheap flights to Rome",
		"Great rates",
		"Book now and save 20%",
		"Find cheap flights to Rome", // dup exercises the probe-hit path
	}
	v := candTestVocab(lines...)
	var cs CandidateSet
	cycle := func() {
		cs.Reset()
		for _, ln := range lines {
			id := cs.AddLine(ln)
			ids := cs.Terms(id, 3, v)
			if len(ids) > 0 && ids[0] < -1 {
				t.Fatal("impossible id")
			}
			_ = cs.Terms(id, 3, v) // memo hit
		}
	}
	cycle() // warm the arenas
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("warm candidate-set cycle allocates %v/op, want 0", allocs)
	}
}
