package textproc

// Zero-copy tokenisation and n-gram lookup: the serving read path of
// the micro-browsing model (internal/core.CompiledModel) scores a
// snippet without materialising a single string. Normalisation writes
// into a reusable byte buffer, tokens are recorded as byte spans into
// that buffer, and — because normalisation emits exactly one space
// between tokens — every n-gram window is a contiguous byte slice
// Norm[spans[i].Start:spans[i+n-1].End] that a TermVocab can look up
// directly, with a byte-compare collision check instead of a string
// allocation per bigram/trigram.
//
// Hashing is two-level: Tokenize accumulates each token's hash while
// it emits the normalised bytes (so every byte is hashed exactly
// once), and an n-gram window's hash is the mix of its tokens' hashes
// — a handful of multiplies per window instead of re-hashing the
// window bytes for every gram size.

import (
	"unicode"
	"unicode/utf8"
)

// normMap is the ASCII translation table of the fused normalise loop:
// 0 marks a separator, 1 marks a dropped byte (apostrophe), any other
// value is the byte to emit (lower-cased where needed). Every emitted
// byte is >= '$', so the two sentinels cannot collide with output.
const (
	nSep  = 0
	nDrop = 1
)

var normMap [utf8.RuneSelf]byte

func init() {
	for b := 0; b < utf8.RuneSelf; b++ {
		switch {
		case b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b == '%' || b == '$':
			normMap[b] = byte(b)
		case b >= 'A' && b <= 'Z':
			normMap[b] = byte(b) + 'a' - 'A'
		case b == '\'':
			normMap[b] = nDrop
		default:
			normMap[b] = nSep
		}
	}
}

// NormalizeInto is the allocation-free form of Normalize: it appends
// the normalised text to dst (pass dst[:0] to reuse a buffer) and
// returns the extended slice. string(NormalizeInto(nil, s)) ==
// Normalize(s) for every input; the fuzz suite pins the parity.
//
// ASCII — the overwhelming bulk of ad text — runs through a byte
// loop; only multi-byte runes pay for UTF-8 decoding and the unicode
// tables.
func NormalizeInto(dst []byte, s string) []byte {
	// pending is true when at least one token byte has been written and
	// a separator has been seen since: the single joining space is
	// emitted lazily, so no trailing space needs trimming.
	pending := false
	wrote := false
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			i++
			switch out := normMap[b]; out {
			case nSep:
				pending = wrote
				continue
			case nDrop:
				continue
			default:
				b = out
			}
			if pending {
				dst = append(dst, ' ')
				pending = false
			}
			dst = append(dst, b)
			wrote = true
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		i += size
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			pending = wrote
			continue
		}
		if pending {
			dst = append(dst, ' ')
			pending = false
		}
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
		wrote = true
	}
	return dst
}

// TokenSpan locates one normalised token inside a Scratch buffer: the
// token's text is Norm[Start:End] and its 1-based position within the
// line is its index in the span slice plus one. Hash is the token's
// accumulated byte hash, combined per window by the TermVocab lookup.
type TokenSpan struct {
	Start, End int
	Hash       uint64
}

// Scratch is the reusable working storage of the zero-copy path. A
// Scratch is owned by exactly one goroutine at a time (the engine's
// batch workers each hold their own); the zero value is ready to use
// and warms up to steady-state zero allocations after the first few
// lines.
type Scratch struct {
	// Norm holds the current line's normalised bytes (written by
	// Tokenize; valid until the next Tokenize call).
	Norm []byte
	// Spans holds the current line's token boundaries into Norm.
	Spans []TokenSpan
}

// Tokenize normalises line into the scratch buffer — one fused pass:
// byte classing, lower-casing, span bookkeeping and token hashing all
// happen as each byte is emitted — and returns the token spans. The
// returned slice and the bytes it indexes are invalidated by the next
// Tokenize call on the same Scratch.
func (sc *Scratch) Tokenize(line string) []TokenSpan {
	sc.Norm, sc.Spans = appendTokens(sc.Norm[:0], sc.Spans[:0], line)
	return sc.Spans
}

// appendTokens is Tokenize's core as an arena append: it normalises
// line onto the end of norm, appends the token spans (absolute offsets
// into norm) and returns the grown slices. The joining space is only
// emitted between tokens of THIS line — the first token starts flush
// against whatever norm already holds — so n-gram windows can never
// bleed across lines when many lines share one arena
// (CandidateSet) and a single line starting at offset 0 reproduces
// Scratch.Tokenize byte for byte.
func appendTokens(norm []byte, spans []TokenSpan, line string) ([]byte, []TokenSpan) {
	base := len(norm)
	start := -1 // byte offset of the open token, -1 when closed
	th := uint64(hashSeed)
	for i := 0; i < len(line); {
		b := line[i]
		if b < utf8.RuneSelf {
			i++
			switch out := normMap[b]; out {
			case nSep:
				if start >= 0 {
					spans = append(spans, TokenSpan{Start: start, End: len(norm), Hash: th})
					start = -1
				}
				continue
			case nDrop:
				continue
			default:
				b = out
			}
			if start < 0 {
				if len(norm) > base {
					norm = append(norm, ' ')
				}
				start = len(norm)
				th = hashSeed
			}
			norm = append(norm, b)
			th = (th ^ uint64(b)) * hashMult1
			continue
		}
		r, size := utf8.DecodeRuneInString(line[i:])
		i += size
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			if start >= 0 {
				spans = append(spans, TokenSpan{Start: start, End: len(norm), Hash: th})
				start = -1
			}
			continue
		}
		if start < 0 {
			if len(norm) > 0 {
				norm = append(norm, ' ')
			}
			start = len(norm)
			th = hashSeed
		}
		at := len(norm)
		norm = utf8.AppendRune(norm, unicode.ToLower(r))
		for _, eb := range norm[at:] {
			th = (th ^ uint64(eb)) * hashMult1
		}
	}
	if start >= 0 {
		spans = append(spans, TokenSpan{Start: start, End: len(norm), Hash: th})
	}
	return norm, spans
}

// TermVocab interns term texts to dense int32 IDs behind an
// open-addressed hash table keyed by the term's token hashes, so the
// serving path can resolve an n-gram window — a span slice over raw
// normalised bytes — to its ID without building the string. Hash
// collisions are resolved by linear probing with an exact byte
// comparison against the interned text, so a colliding probe can
// never alias two distinct terms.
//
// Build the vocabulary once (Add is not safe for concurrent use);
// the lookup methods are read-only and safe to call from any number
// of goroutines.
type TermVocab struct {
	strs  []string
	table []int32 // open-addressed buckets; -1 = empty
	mask  uint64
}

// minVocabTable keeps the probe table at least this many buckets so
// tiny vocabularies still terminate probes quickly.
const minVocabTable = 16

// NewTermVocab returns an empty vocabulary sized for about n terms.
func NewTermVocab(n int) *TermVocab {
	v := &TermVocab{}
	size := minVocabTable
	for size < 2*n {
		size <<= 1
	}
	v.grow(size)
	return v
}

// grow rebuilds the probe table at the given power-of-two size.
func (v *TermVocab) grow(size int) {
	v.table = make([]int32, size)
	for i := range v.table {
		v.table[i] = -1
	}
	v.mask = uint64(size - 1)
	for id, s := range v.strs {
		v.place(hashString(s), int32(id))
	}
}

// place inserts an ID at the first free bucket of its probe chain.
func (v *TermVocab) place(h uint64, id int32) {
	for i := h & v.mask; ; i = (i + 1) & v.mask {
		if v.table[i] < 0 {
			v.table[i] = id
			return
		}
	}
}

// Add interns s, returning its dense ID (allocating the next one for
// a string never seen before).
func (v *TermVocab) Add(s string) int32 {
	h := hashString(s)
	for i := h & v.mask; ; i = (i + 1) & v.mask {
		id := v.table[i]
		if id < 0 {
			break
		}
		if v.strs[id] == s {
			return id
		}
	}
	id := int32(len(v.strs))
	v.strs = append(v.strs, s)
	// Keep the load factor under 1/2 so probe chains stay short.
	if 2*len(v.strs) > len(v.table) {
		v.grow(2 * len(v.table))
	} else {
		v.place(h, id)
	}
	return id
}

// Lookup returns the ID of s without interning, and whether it is
// known.
func (v *TermVocab) Lookup(s string) (int32, bool) {
	for i := hashString(s) & v.mask; ; i = (i + 1) & v.mask {
		id := v.table[i]
		if id < 0 {
			return 0, false
		}
		if v.strs[id] == s {
			return id, true
		}
	}
}

// LookupBytes resolves a raw byte window (normalised, single-space-
// separated tokens) to its term ID without allocating.
func (v *TermVocab) LookupBytes(b []byte) (int32, bool) {
	return v.LookupHashed(hashBytes(b), b)
}

// NGramHashSeed is the initial value of an n-gram window hash; extend
// it with ExtendNGramHash once per token. The windows starting at one
// token share prefixes, so a caller scanning gram sizes 1..n extends
// a single running hash instead of recombining each window.
const NGramHashSeed uint64 = hashSeed

// ExtendNGramHash folds the next token's hash (TokenSpan.Hash) into a
// running n-gram window hash.
func ExtendNGramHash(h, tokenHash uint64) uint64 {
	h = (h ^ tokenHash) * hashMult2
	return h ^ h>>31
}

// LookupHashed resolves a normalised byte window whose hash the
// caller has already built with NGramHashSeed/ExtendNGramHash — the
// hot call of the compiled scoring path. The byte comparison against
// the interned text keeps hash collisions (or a miscomputed caller
// hash colliding by accident) harmless: a wrong hash can only cause a
// miss, never a false hit.
func (v *TermVocab) LookupHashed(h uint64, b []byte) (int32, bool) {
	for i := h & v.mask; ; i = (i + 1) & v.mask {
		id := v.table[i]
		if id < 0 {
			return 0, false
		}
		if v.strs[id] == string(b) { // comparison-only conversion: no alloc
			return id, true
		}
	}
}

// LookupNGram resolves the n-gram spanning window (a sub-slice of a
// Scratch's token spans) to its term ID: the window's hash is mixed
// from the tokens' precomputed hashes, so looking up every 1..3-gram
// window of a line hashes each byte exactly once, in Tokenize.
func (v *TermVocab) LookupNGram(norm []byte, window []TokenSpan) (int32, bool) {
	h := NGramHashSeed
	for k := range window {
		h = ExtendNGramHash(h, window[k].Hash)
	}
	return v.LookupHashed(h, norm[window[0].Start:window[len(window)-1].End])
}

// Len returns the number of interned terms.
func (v *TermVocab) Len() int { return len(v.strs) }

// Text returns the term text behind an ID. IDs come from Add/Lookup,
// so out-of-range values are programmer errors and panic via the
// slice.
func (v *TermVocab) Text(id int32) string { return v.strs[id] }

// Hash constants: 64-bit avalanche multipliers (golden-ratio and
// xxhash-flavoured). The scheme is two-level — a multiply-xor
// accumulator per token byte, a multiply-xor mix per token of a
// window — chosen for throughput over cryptographic quality; any
// distribution weakness is covered by the byte-compare collision
// check on every probe.
const (
	hashSeed  = 0x9e3779b97f4a7c15
	hashMult1 = 0x9e3779b185ebca87
	hashMult2 = 0xc2b2ae3d27d4eb4f
)

// hashString hashes a space-joined term string exactly as the
// Tokenize + LookupNGram pair hashes the equivalent token window: the
// table is built from strings and probed with windows, so the two
// forms must agree byte for byte.
func hashString(s string) uint64 {
	h := uint64(hashSeed)
	th := uint64(hashSeed)
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b == ' ' {
			h = (h ^ th) * hashMult2
			h ^= h >> 31
			th = hashSeed
			continue
		}
		th = (th ^ uint64(b)) * hashMult1
	}
	h = (h ^ th) * hashMult2
	h ^= h >> 31
	return h
}

// hashBytes is hashString over a byte slice, duplicated so neither
// form allocates a conversion.
func hashBytes(b []byte) uint64 {
	h := uint64(hashSeed)
	th := uint64(hashSeed)
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c == ' ' {
			h = (h ^ th) * hashMult2
			h ^= h >> 31
			th = hashSeed
			continue
		}
		th = (th ^ uint64(c)) * hashMult1
	}
	h = (h ^ th) * hashMult2
	h ^= h >> 31
	return h
}
