package textproc

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// TestNormalizeIntoParity pins the zero-copy normaliser to Normalize
// byte for byte, on the hand-picked signal characters and under
// randomised input.
func TestNormalizeIntoParity(t *testing.T) {
	cases := []string{
		"Find Cheap Flights", "20% Off Today!", "From $99", "Don't Miss Out",
		"no -- reservation  costs", "", "?!.,", "...sale", "Café Déals",
		"24/7 support", "'''", "a'b c'd", "a !'b", "trailing space ",
		" $ % ' mixed $5 o'clock", "ÉCLAIR – 50%",
	}
	for _, in := range cases {
		if got, want := string(NormalizeInto(nil, in)), Normalize(in); got != want {
			t.Errorf("NormalizeInto(%q) = %q, want %q", in, got, want)
		}
	}
	f := func(s string) bool {
		return string(NormalizeInto(nil, s)) == Normalize(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNormalizeIntoReusesBuffer checks that a warm buffer is reused in
// place rather than reallocated.
func TestNormalizeIntoReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 128)
	out := NormalizeInto(buf, "Find Cheap Flights")
	if &out[0] != &buf[:1][0] {
		t.Error("NormalizeInto reallocated despite sufficient capacity")
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = NormalizeInto(buf[:0], "Find cheap flights to New York. No reservation costs!")
	})
	if allocs != 0 {
		t.Errorf("warm NormalizeInto allocates %v per run, want 0", allocs)
	}
}

// FuzzNormalize fuzzes the normaliser invariants, seeded with the
// '%', '$' and apostrophe edge cases the ad-text rules special-case.
func FuzzNormalize(f *testing.F) {
	for _, seed := range []string{
		"20% Off Today!", "From $99", "Don't Miss Out", "%%% $$$ '''",
		"a%b$c'd", "$ % '", "50%% of''f", "O'Brien's $5 o'clock — 100%",
		"", " % ", "'%'$'",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if got := Normalize(n); got != n {
			t.Errorf("not idempotent: Normalize(%q) = %q, re-normalised %q", s, n, got)
		}
		if n != strings.ToLower(n) {
			t.Errorf("uppercase survived: %q -> %q", s, n)
		}
		if strings.HasPrefix(n, " ") || strings.HasSuffix(n, " ") || strings.Contains(n, "  ") {
			t.Errorf("edge or double space: %q -> %q", s, n)
		}
		if strings.ContainsRune(n, '\'') {
			t.Errorf("apostrophe survived: %q -> %q", s, n)
		}
		if got := string(NormalizeInto(nil, s)); got != n {
			t.Errorf("NormalizeInto diverges: %q vs Normalize %q", got, n)
		}
	})
}

// TestScratchTokenize checks that byte spans reconstruct exactly the
// tokens (text and 1-based position) of the string-materialising path.
func TestScratchTokenize(t *testing.T) {
	var sc Scratch
	lines := []string{
		"Find cheap flights to New York.",
		"20% Off — From $99!",
		"", "   ?! ", "Don't Miss O'Brien's Deals",
	}
	for _, line := range lines {
		spans := sc.Tokenize(line)
		want := Tokenize(line)
		if len(spans) != len(want) {
			t.Fatalf("Tokenize(%q): %d spans, want %d tokens", line, len(spans), len(want))
		}
		for i, sp := range spans {
			if got := string(sc.Norm[sp.Start:sp.End]); got != want[i].Text {
				t.Errorf("Tokenize(%q) span %d = %q, want %q", line, i, got, want[i].Text)
			}
			if want[i].Pos != i+1 {
				t.Errorf("Tokenize(%q) token %d has Pos %d, want %d", line, i, want[i].Pos, i+1)
			}
		}
	}
}

// TestScratchTokenizeZeroAlloc pins the steady-state allocation count
// of the zero-copy path.
func TestScratchTokenizeZeroAlloc(t *testing.T) {
	var sc Scratch
	sc.Tokenize("warm the buffers with a reasonably long line of ad text")
	allocs := testing.AllocsPerRun(100, func() {
		sc.Tokenize("Find cheap flights to New York. No reservation costs!")
	})
	if allocs != 0 {
		t.Errorf("warm Scratch.Tokenize allocates %v per run, want 0", allocs)
	}
}

// TestNGramWindowContiguity is the invariant the compiled scorer
// depends on: the text of an n-gram equals the contiguous byte window
// from the first token's start to the last token's end.
func TestNGramWindowContiguity(t *testing.T) {
	var sc Scratch
	line := "Find cheap flights to New York today"
	spans := sc.Tokenize(line)
	toks := Tokenize(line)
	for n := 1; n <= 3; n++ {
		grams := NGrams(toks, n)
		for i, g := range grams {
			win := string(sc.Norm[spans[i].Start:spans[i+n-1].End])
			if win != g.Text {
				t.Errorf("n=%d window %d = %q, want %q", n, i, win, g.Text)
			}
		}
	}
}

func TestTermVocab(t *testing.T) {
	v := NewTermVocab(0)
	terms := []string{"find cheap", "flights", "new york", "20% off", "$99", "find cheap flights"}
	for i, s := range terms {
		if id := v.Add(s); id != int32(i) {
			t.Fatalf("Add(%q) = %d, want %d", s, id, i)
		}
	}
	// Re-adding returns the existing ID.
	if id := v.Add("flights"); id != 1 {
		t.Errorf("re-Add(flights) = %d, want 1", id)
	}
	if v.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", v.Len(), len(terms))
	}
	for i, s := range terms {
		if id, ok := v.Lookup(s); !ok || id != int32(i) {
			t.Errorf("Lookup(%q) = %d, %v; want %d, true", s, id, ok, i)
		}
		if id, ok := v.LookupBytes([]byte(s)); !ok || id != int32(i) {
			t.Errorf("LookupBytes(%q) = %d, %v; want %d, true", s, id, ok, i)
		}
		if v.Text(int32(i)) != s {
			t.Errorf("Text(%d) = %q, want %q", i, v.Text(int32(i)), s)
		}
	}
	for _, absent := range []string{"", "find", "cheap flights", "flights ", " flights", "FLIGHTS"} {
		if _, ok := v.Lookup(absent); ok {
			t.Errorf("Lookup(%q) found a vocab hit, want miss", absent)
		}
		if _, ok := v.LookupBytes([]byte(absent)); ok {
			t.Errorf("LookupBytes(%q) found a vocab hit, want miss", absent)
		}
	}
}

// TestTermVocabCollisions forces same-bucket probe chains and checks
// that the byte-compare collision check keeps colliding terms
// distinct, for hits and misses alike.
func TestTermVocabCollisions(t *testing.T) {
	v := NewTermVocab(0)
	mask := v.mask
	// Gather strings landing in one bucket of the initial table.
	target := hashString("term0") & mask
	var colliding []string
	for i := 0; len(colliding) < 4 && i < 100000; i++ {
		s := "term" + strconv.Itoa(i)
		if hashString(s)&mask == target {
			colliding = append(colliding, s)
		}
	}
	if len(colliding) < 4 {
		t.Fatalf("could not build a collision set over mask %#x", mask)
	}
	for _, s := range colliding {
		v.Add(s)
	}
	for i, s := range colliding {
		if id, ok := v.LookupBytes([]byte(s)); !ok || id != int32(i) {
			t.Errorf("colliding LookupBytes(%q) = %d, %v; want %d, true", s, id, ok, i)
		}
	}
	// A probe that walks the whole colliding chain and still misses.
	for i := 100000; ; i++ {
		s := "term" + strconv.Itoa(i)
		if hashString(s)&mask != target {
			continue
		}
		if _, ok := v.LookupBytes([]byte(s)); ok {
			t.Errorf("absent colliding term %q reported found", s)
		}
		break
	}
}

// TestTermVocabGrowth crosses several table rebuilds and re-verifies
// every interned term afterwards.
func TestTermVocabGrowth(t *testing.T) {
	v := NewTermVocab(0)
	n := 5000
	for i := 0; i < n; i++ {
		v.Add("w" + strconv.Itoa(i))
	}
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
	for i := 0; i < n; i++ {
		s := "w" + strconv.Itoa(i)
		if id, ok := v.LookupBytes([]byte(s)); !ok || id != int32(i) {
			t.Fatalf("post-growth LookupBytes(%q) = %d, %v; want %d, true", s, id, ok, i)
		}
	}
}

// TestLookupBytesZeroAlloc pins the hot lookup to zero allocations.
func TestLookupBytesZeroAlloc(t *testing.T) {
	v := NewTermVocab(4)
	v.Add("find cheap flights")
	v.Add("new york")
	hit := []byte("find cheap flights")
	miss := []byte("not in the vocab at all")
	allocs := testing.AllocsPerRun(100, func() {
		v.LookupBytes(hit)
		v.LookupBytes(miss)
	})
	if allocs != 0 {
		t.Errorf("LookupBytes allocates %v per run, want 0", allocs)
	}
}

// TestWriteIntNegative makes the sign branch live: malformed Terms
// with negative coordinates must render sign-correctly, including the
// one value whose int negation overflows.
func TestWriteIntNegative(t *testing.T) {
	tm := Term{Text: "x", N: 1, Line: -12, Pos: -3}
	if got, want := tm.Key(), "x:-3:-12"; got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	for _, v := range []int{0, 7, -1, -10, 12345, -98765, math.MaxInt, math.MinInt} {
		var b strings.Builder
		writeInt(&b, v)
		if got, want := b.String(), strconv.Itoa(v); got != want {
			t.Errorf("writeInt(%d) = %q, want %q", v, got, want)
		}
	}
}
