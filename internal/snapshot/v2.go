package snapshot

// The v2 artifact layout: a zero-parse snapshot whose on-disk bytes
// ARE the compiled serving tables. Where a v1 artifact is a stream
// decoded varint-by-varint into heap structures (O(size) load, one
// private copy per process), a v2 artifact is a sectioned, aligned
// container designed to be mapped read-only and used in place:
//
//	offset 0            header (64 bytes)
//	offset 64           section directory (count × 32-byte entries)
//	aligned             section payloads, each 64-byte aligned,
//	                    zero-padded between
//
// Header (fixed-width little-endian):
//
//	[0:4]   magic "MBS2"
//	[4:6]   format version (uint16) = 2
//	[6:8]   endianness tag (uint16) = 0xB1FE, stored little-endian.
//	        A big-endian consumer reading its native order sees 0xFEB1
//	        and must reject the artifact rather than reinterpret the
//	        dense arrays — v2 payloads are raw host-format float64/
//	        int32/uint32 and are only valid zero-copy on little-endian
//	        hosts (every deployment target of this repository).
//	[8:12]  section count (uint32)
//	[12:16] CRC-32C of the directory bytes (uint32)
//	[16:24] total file size (uint64) — cheap truncation check
//	[24:56] model name, NUL-padded (32 bytes)
//	[56:64] reserved, zero
//
// Directory entry (32 bytes):
//
//	[0:8]   section tag, NUL-padded ("v.blob", "rel", ...)
//	[8:16]  payload offset from file start (uint64, 64-byte aligned)
//	[16:24] payload length in bytes (uint64)
//	[24:28] CRC-32C of the payload (uint32)
//	[28:32] element kind (uint32): bytes, float64, int32, uint32
//
// Every section is independently CRC-32C-gated (Castagnoli — hardware
// accelerated), so integrity verification can be deferred, sampled, or
// skipped for trusted local artifacts without weakening the parse-time
// structural checks (bounds, alignment, element-size divisibility),
// which are always enforced. internal/mmap is the consuming side.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// V2Magic identifies a v2 (zero-parse) artifact; the first-byte sniff
// that routes artifact loads (engine.LoadSnapshotFile) dispatches on
// it versus v1's "MBSN".
const V2Magic = "MBS2"

// V2Version is the sectioned-layout format version.
const V2Version = 2

// v2EndianTag is written as a little-endian uint16; reading it back as
// any other value means the artifact and host disagree on byte order.
const v2EndianTag = 0xB1FE

// Section element kinds: how the payload bytes are meant to be
// reinterpreted. The parser enforces length % elemSize == 0.
const (
	V2Bytes   = 1
	V2Float64 = 2
	V2Int32   = 3
	V2Uint32  = 4
)

// v2Align is the section payload alignment. 64 bytes aligns to cache
// lines and comfortably exceeds every element size.
const v2Align = 64

const (
	v2HeaderSize = 64
	v2EntrySize  = 32
	v2TagSize    = 8
	v2NameSize   = 32
)

// castagnoli is the CRC-32C table shared by the v2 writer and reader
// (the same polynomial the feedback WAL uses; hardware-accelerated).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// V2Section describes one parsed directory entry, with its payload
// sliced out of the artifact bytes.
type V2Section struct {
	Tag  string
	Kind uint32
	CRC  uint32
	Data []byte // view into the artifact; nil only for empty sections
}

// Elems returns the element count under the section's kind.
func (s V2Section) Elems() int {
	switch s.Kind {
	case V2Float64:
		return len(s.Data) / 8
	case V2Int32, V2Uint32:
		return len(s.Data) / 4
	default:
		return len(s.Data)
	}
}

// hostLittleEndian reports the running process's byte order; v2
// zero-copy views are only valid when it matches the artifact's.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// HostLittleEndian reports whether this process can reinterpret v2
// payloads zero-copy.
func HostLittleEndian() bool { return hostLittleEndian }

// V2Writer accumulates named sections and writes the container. The
// writer borrows the section slices (no copies) until WriteTo runs, so
// build the sections and write in one breath.
type V2Writer struct {
	name     string
	sections []v2out
	err      error
}

type v2out struct {
	tag  string
	kind uint32
	data []byte
}

// NewV2Writer starts a v2 artifact for the named model.
func NewV2Writer(modelName string) *V2Writer {
	w := &V2Writer{name: modelName}
	if len(modelName) == 0 || len(modelName) > v2NameSize {
		w.err = fmt.Errorf("snapshot: v2 model name %q must be 1..%d bytes", modelName, v2NameSize)
	}
	return w
}

func (w *V2Writer) add(tag string, kind uint32, data []byte) {
	if w.err != nil {
		return
	}
	if len(tag) == 0 || len(tag) > v2TagSize {
		w.err = fmt.Errorf("snapshot: v2 section tag %q must be 1..%d bytes", tag, v2TagSize)
		return
	}
	for _, s := range w.sections {
		if s.tag == tag {
			w.err = fmt.Errorf("snapshot: duplicate v2 section tag %q", tag)
			return
		}
	}
	w.sections = append(w.sections, v2out{tag: tag, kind: kind, data: data})
}

// Bytes adds an opaque byte section.
func (w *V2Writer) Bytes(tag string, b []byte) { w.add(tag, V2Bytes, b) }

// Floats adds a dense []float64 section. On little-endian hosts the
// slice memory is written directly; elsewhere it is re-encoded.
func (w *V2Writer) Floats(tag string, f []float64) {
	w.add(tag, V2Float64, castBytes(unsafe.Pointer(unsafe.SliceData(f)), len(f)*8, func(dst []byte) {
		for i, v := range f {
			binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
		}
	}))
}

// Int32s adds a dense []int32 section.
func (w *V2Writer) Int32s(tag string, v []int32) {
	w.add(tag, V2Int32, castBytes(unsafe.Pointer(unsafe.SliceData(v)), len(v)*4, func(dst []byte) {
		for i, x := range v {
			binary.LittleEndian.PutUint32(dst[i*4:], uint32(x))
		}
	}))
}

// Uint32s adds a dense []uint32 section.
func (w *V2Writer) Uint32s(tag string, v []uint32) {
	w.add(tag, V2Uint32, castBytes(unsafe.Pointer(unsafe.SliceData(v)), len(v)*4, func(dst []byte) {
		for i, x := range v {
			binary.LittleEndian.PutUint32(dst[i*4:], x)
		}
	}))
}

// castBytes reinterprets a slice's memory as bytes on little-endian
// hosts; on big-endian hosts it materialises a little-endian copy via
// encode. n is the byte length.
func castBytes(p unsafe.Pointer, n int, encode func(dst []byte)) []byte {
	if n == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(p), n)
	}
	dst := make([]byte, n)
	encode(dst)
	return dst
}

// WriteTo writes the container: header, directory, then each section
// payload 64-byte aligned with zero padding between. It implements
// io.WriterTo; the byte count includes everything written.
func (w *V2Writer) WriteTo(out io.Writer) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	nSec := len(w.sections)
	dirEnd := v2HeaderSize + nSec*v2EntrySize

	// Lay out payload offsets.
	offs := make([]uint64, nSec)
	pos := uint64(align64(dirEnd))
	for i, s := range w.sections {
		offs[i] = pos
		pos = uint64(align64(int(pos) + len(s.data)))
	}
	fileSize := uint64(dirEnd)
	if nSec > 0 {
		fileSize = offs[nSec-1] + uint64(len(w.sections[nSec-1].data))
	}

	// Directory with per-section CRCs.
	dir := make([]byte, nSec*v2EntrySize)
	for i, s := range w.sections {
		e := dir[i*v2EntrySize:]
		copy(e[0:v2TagSize], s.tag)
		binary.LittleEndian.PutUint64(e[8:], offs[i])
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(s.data, castagnoli))
		binary.LittleEndian.PutUint32(e[28:], s.kind)
	}

	hdr := make([]byte, v2HeaderSize)
	copy(hdr[0:4], V2Magic)
	binary.LittleEndian.PutUint16(hdr[4:], V2Version)
	binary.LittleEndian.PutUint16(hdr[6:], v2EndianTag)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(nSec))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(dir, castagnoli))
	binary.LittleEndian.PutUint64(hdr[16:], fileSize)
	copy(hdr[24:24+v2NameSize], w.name)

	var n int64
	write := func(p []byte) error {
		m, err := out.Write(p)
		n += int64(m)
		return err
	}
	if err := write(hdr); err != nil {
		return n, err
	}
	if err := write(dir); err != nil {
		return n, err
	}
	var pad [v2Align]byte
	cur := dirEnd
	for i, s := range w.sections {
		if gap := int(offs[i]) - cur; gap > 0 {
			if err := write(pad[:gap]); err != nil {
				return n, err
			}
			cur += gap
		}
		if err := write(s.data); err != nil {
			return n, err
		}
		cur += len(s.data)
	}
	return n, nil
}

// align64 rounds up to the next multiple of v2Align.
func align64(n int) int { return (n + v2Align - 1) &^ (v2Align - 1) }

// IsV2 reports whether the bytes begin with the v2 magic — the sniff
// used to route artifact loads between the v1 stream decoder and the
// mmap loader.
func IsV2(prefix []byte) bool {
	return len(prefix) >= len(V2Magic) && string(prefix[:len(V2Magic)]) == V2Magic
}

// ErrWrongArch is wrapped by parse errors caused by an artifact whose
// byte order does not match this host: the bytes may be intact, but
// zero-copy reinterpretation would read garbage, so the loader fails
// closed (re-export the artifact on a matching host, or fall back to a
// v1 artifact).
var ErrWrongArch = errors.New("snapshot: artifact byte order does not match this host")

// V2Artifact is a parsed v2 container: structural metadata plus
// section views into the caller's bytes (typically a read-only file
// mapping — the parser never copies payloads).
type V2Artifact struct {
	ModelName string
	Sections  []V2Section

	byTag map[string]int
	data  []byte
}

// ParseV2 validates the header and directory of a v2 artifact over the
// full artifact bytes and returns section views. Structural validation
// is exhaustive — magic, version, endianness, file size, directory
// CRC, section bounds, 64-byte alignment, element-size divisibility,
// overlapping payloads — but section payload CRCs are NOT verified
// here: that is VerifySections (O(size)), which callers schedule
// according to trust in the artifact's provenance.
func ParseV2(data []byte) (*V2Artifact, error) {
	if len(data) < v2HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a v2 header", ErrCorrupt, len(data))
	}
	if !IsV2(data) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != V2Version {
		return nil, fmt.Errorf("snapshot: unsupported v2 format version %d (this build reads version %d)", v, V2Version)
	}
	if tag := binary.LittleEndian.Uint16(data[6:]); tag != v2EndianTag || !hostLittleEndian {
		return nil, fmt.Errorf("%w: endianness tag %04x (want %04x on a little-endian host)", ErrWrongArch, tag, uint16(v2EndianTag))
	}
	nSec := int(binary.LittleEndian.Uint32(data[8:]))
	const maxSections = 1 << 16
	if nSec > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, nSec)
	}
	if size := binary.LittleEndian.Uint64(data[16:]); size != uint64(len(data)) {
		return nil, fmt.Errorf("%w: header claims %d bytes, artifact holds %d (truncated?)", ErrCorrupt, size, len(data))
	}
	name := cutNul(data[24 : 24+v2NameSize])
	if name == "" {
		return nil, fmt.Errorf("%w: empty model name", ErrCorrupt)
	}

	dirEnd := v2HeaderSize + nSec*v2EntrySize
	if dirEnd > len(data) {
		return nil, fmt.Errorf("%w: directory of %d sections overruns the artifact", ErrCorrupt, nSec)
	}
	dir := data[v2HeaderSize:dirEnd]
	if want, got := binary.LittleEndian.Uint32(data[12:]), crc32.Checksum(dir, castagnoli); want != got {
		return nil, fmt.Errorf("%w: directory checksum mismatch (artifact %08x, computed %08x)", ErrCorrupt, want, got)
	}

	a := &V2Artifact{ModelName: name, byTag: make(map[string]int, nSec), data: data}
	prevEnd := uint64(dirEnd)
	for i := 0; i < nSec; i++ {
		e := dir[i*v2EntrySize:]
		tag := cutNul(e[0:v2TagSize])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		crc := binary.LittleEndian.Uint32(e[24:])
		kind := binary.LittleEndian.Uint32(e[28:])
		if tag == "" {
			return nil, fmt.Errorf("%w: section %d has an empty tag", ErrCorrupt, i)
		}
		if _, dup := a.byTag[tag]; dup {
			return nil, fmt.Errorf("%w: duplicate section tag %q", ErrCorrupt, tag)
		}
		if off%v2Align != 0 {
			return nil, fmt.Errorf("%w: section %q offset %d is not %d-byte aligned", ErrCorrupt, tag, off, v2Align)
		}
		if off < prevEnd || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %q [%d, %d) overlaps or overruns the artifact", ErrCorrupt, tag, off, off+length)
		}
		var elem uint64
		switch kind {
		case V2Bytes:
			elem = 1
		case V2Float64:
			elem = 8
		case V2Int32, V2Uint32:
			elem = 4
		default:
			return nil, fmt.Errorf("%w: section %q has unknown element kind %d", ErrCorrupt, tag, kind)
		}
		if length%elem != 0 {
			return nil, fmt.Errorf("%w: section %q length %d is not a multiple of its %d-byte elements", ErrCorrupt, tag, length, elem)
		}
		a.byTag[tag] = len(a.Sections)
		a.Sections = append(a.Sections, V2Section{Tag: tag, Kind: kind, CRC: crc, Data: data[off : off+length : off+length]})
		prevEnd = off + length
	}
	return a, nil
}

// cutNul interprets a NUL-padded fixed field.
func cutNul(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// Section returns the named section view.
func (a *V2Artifact) Section(tag string) (V2Section, bool) {
	i, ok := a.byTag[tag]
	if !ok {
		return V2Section{}, false
	}
	return a.Sections[i], true
}

// VerifySections checks every section payload against its recorded
// CRC-32C — the O(size) integrity pass deferred by ParseV2. With
// hardware CRC this runs at several GB/s, but it still touches every
// page; O(1) loads skip it for artifacts written atomically by a
// trusted local process.
func (a *V2Artifact) VerifySections() error {
	for _, s := range a.Sections {
		if got := crc32.Checksum(s.Data, castagnoli); got != s.CRC {
			return fmt.Errorf("%w: section %q checksum mismatch (artifact %08x, computed %08x)", ErrCorrupt, s.Tag, s.CRC, got)
		}
	}
	return nil
}

// typed zero-copy views ------------------------------------------------

// FloatsView reinterprets the named section as []float64 without
// copying. The artifact bytes must outlive the returned slice.
func (a *V2Artifact) FloatsView(tag string) ([]float64, error) {
	s, err := a.viewOf(tag, V2Float64)
	if err != nil || len(s.Data) == 0 {
		return nil, err
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(s.Data))), len(s.Data)/8), nil
}

// Int32sView reinterprets the named section as []int32 without copying.
func (a *V2Artifact) Int32sView(tag string) ([]int32, error) {
	s, err := a.viewOf(tag, V2Int32)
	if err != nil || len(s.Data) == 0 {
		return nil, err
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(s.Data))), len(s.Data)/4), nil
}

// Uint32sView reinterprets the named section as []uint32 without copying.
func (a *V2Artifact) Uint32sView(tag string) ([]uint32, error) {
	s, err := a.viewOf(tag, V2Uint32)
	if err != nil || len(s.Data) == 0 {
		return nil, err
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(s.Data))), len(s.Data)/4), nil
}

// BytesView returns the named byte section.
func (a *V2Artifact) BytesView(tag string) ([]byte, error) {
	s, err := a.viewOf(tag, V2Bytes)
	if err != nil {
		return nil, err
	}
	return s.Data, nil
}

func (a *V2Artifact) viewOf(tag string, kind uint32) (V2Section, error) {
	s, ok := a.Section(tag)
	if !ok {
		return V2Section{}, fmt.Errorf("%w: missing section %q", ErrCorrupt, tag)
	}
	if s.Kind != kind {
		return V2Section{}, fmt.Errorf("%w: section %q holds element kind %d, want %d", ErrCorrupt, tag, s.Kind, kind)
	}
	return s, nil
}

// raw codecs -----------------------------------------------------------

// NewRawEncoder is an Encoder without the artifact header or checksum
// trailer — the codec for v2 "meta" sections, whose few scalar fields
// reuse the v1 typed methods while the section CRC supplies integrity.
// Finish with Flush, not Close.
func NewRawEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
}

// Flush flushes a raw encoder without appending a checksum and returns
// the first error of the encode.
func (e *Encoder) Flush() error {
	if e.err == nil {
		e.err = e.w.Flush()
	}
	return e.err
}

// NewRawDecoder is a Decoder without header or checksum handling, for
// payloads whose integrity an enclosing container already gates. Check
// Err after decoding; do not Close.
func NewRawDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
}
