package snapshot

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("read back %q", got)
	}

	// A failing save must leave the previous artifact untouched and no
	// temp litter behind.
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("save error lost: %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("failed save clobbered the artifact: %q %v", got, err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}

	// An unwritable directory fails up front.
	if err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "m.bin"),
		func(io.Writer) error { return nil }); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
