package snapshot

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFileAtomic writes an artifact to path through save, atomically
// and durably: the bytes land in a temp file in the destination
// directory, the file is fsynced before the rename (so the data cannot
// outlive a crash as an empty rename target), and the parent directory
// is fsynced after it (so the rename itself survives power loss). A
// serving process watching the path can never load a half-written
// artifact. On failure the temp file is removed and the destination is
// left untouched.
func WriteFileAtomic(path string, save func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if err := save(tmp); err != nil {
		_ = tmp.Close() // temp file is discarded; save's error is the one to keep
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making renames and file creations inside
// it durable. Filesystems that cannot fsync a directory (some network
// and FUSE mounts report EINVAL or ENOTSUP) degrade gracefully rather
// than failing the write that already landed.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }() // read-only directory handle
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
