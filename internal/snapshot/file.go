package snapshot

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes an artifact to path through save, atomically:
// the bytes land in a temp file in the destination directory and are
// renamed into place only after save returns cleanly, so a serving
// process watching the path can never load a half-written artifact.
// On failure the temp file is removed and the destination is left
// untouched.
func WriteFileAtomic(path string, save func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if err := save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
