package snapshot

import (
	"strings"
	"testing"
)

func TestAppendCursorRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUint(b, 0)
	b = AppendUint(b, 1<<40)
	b = AppendString(b, "")
	b = AppendString(b, "cheap flights")
	b = AppendBool(b, true)
	b = AppendBool(b, false)

	c := NewCursor(b)
	if got := c.Uint(); got != 0 {
		t.Fatalf("Uint = %d", got)
	}
	if got := c.Uint(); got != 1<<40 {
		t.Fatalf("Uint = %d", got)
	}
	if got := c.String(); got != "" {
		t.Fatalf("String = %q", got)
	}
	if got := c.String(); got != "cheap flights" {
		t.Fatalf("String = %q", got)
	}
	if !c.Bool() || c.Bool() {
		t.Fatal("Bool round trip broke")
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if c.Remaining() != 0 {
		t.Fatalf("%d bytes left over", c.Remaining())
	}
}

func TestCursorSticksOnCorruption(t *testing.T) {
	// A string header claiming far more bytes than the buffer holds.
	b := AppendUint(nil, 1<<30)
	c := NewCursor(b)
	if got := c.String(); got != "" {
		t.Fatalf("truncated string decoded to %q", got)
	}
	if c.Err() == nil {
		t.Fatal("oversized length accepted")
	}
	// Every later read observes the sticky error and returns zero values.
	if c.Uint() != 0 || c.Byte() != 0 || c.Bool() || c.String() != "" {
		t.Fatal("reads after corruption returned non-zero values")
	}

	// Reading past the end of an empty buffer is also corruption.
	c2 := NewCursor(nil)
	c2.Uint()
	if c2.Err() == nil {
		t.Fatal("read past end accepted")
	}
}

func TestCursorIntBound(t *testing.T) {
	// Int refuses counts that could not describe real data (> maxLen),
	// so decoders can size slices from it without an OOM guard each.
	c := NewCursor(AppendUint(nil, uint64(maxLen)+1))
	if got := c.Int(); got != 0 || c.Err() == nil {
		t.Fatalf("Int = %d, err %v — absurd count accepted", got, c.Err())
	}
	c2 := NewCursor(AppendUint(nil, 42))
	if got := c2.Int(); got != 42 || c2.Err() != nil {
		t.Fatalf("Int = %d, err %v", got, c2.Err())
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir("/does/not/exist"); err == nil ||
		!strings.Contains(err.Error(), "no such file") {
		t.Fatalf("SyncDir on a missing directory: %v", err)
	}
}
