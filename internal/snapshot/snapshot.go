// Package snapshot is the binary codec beneath the repository's
// versioned model artifacts: the train-offline / serve-online split
// fits a model in one process, Saves it to a self-describing artifact,
// and a serving binary Loads it back into a ready scorer (see
// internal/clickmodel and internal/core for the per-model payloads,
// and internal/engine for hot-swapping artifacts into a live engine).
//
// An artifact is
//
//	magic "MBSN" | format version (uvarint) | model name (string)
//	| model payload | CRC-32 (IEEE, little-endian) of everything above
//
// with strings length-prefixed by uvarint and float64 values stored as
// little-endian IEEE-754 bits. The header makes artifacts
// self-describing (a loader dispatches on the recorded model name
// without out-of-band metadata), the version gates format evolution,
// and the checksum rejects corrupt or truncated files before a partial
// model can reach serving.
//
// The Encoder/Decoder pair keeps a sticky error so per-field call
// sites stay unchecked; Close surfaces the first failure and, on the
// decoder, verifies the checksum.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// magic identifies a micro-browsing snapshot artifact.
const magic = "MBSN"

// Version is the current artifact format version. Decoders reject
// artifacts from a different version rather than guessing at layouts.
const Version = 1

// ErrCorrupt is wrapped by decoder errors caused by damaged input:
// bad magic, failed checksum, truncation, or implausible lengths.
var ErrCorrupt = errors.New("snapshot: corrupt artifact")

// maxLen bounds any single length prefix (strings, slices, maps). A
// corrupt length then fails fast instead of attempting a multi-GiB
// allocation.
const maxLen = 1 << 28

// Encoder writes one model artifact. Create with NewEncoder (which
// writes the header), emit the payload with the typed methods, and
// Close to append the checksum and flush. Methods after an error are
// no-ops; Close returns the first error.
type Encoder struct {
	w   *bufio.Writer
	crc hash.Hash32
	err error
}

// NewEncoder starts an artifact for the named model on w, writing the
// magic/version/name header.
func NewEncoder(w io.Writer, modelName string) *Encoder {
	e := &Encoder{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	e.write([]byte(magic))
	e.Uint(Version)
	e.String(modelName)
	return e
}

// write sends raw bytes through both the output and the checksum.
func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	e.crc.Write(p) // hash.Hash.Write never errors
	_, e.err = e.w.Write(p)
}

// Uint writes an unsigned varint.
func (e *Encoder) Uint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	e.write(buf[:binary.PutUvarint(buf[:], v)])
}

// Int writes a non-negative int (lengths, counts). Negative values are
// a programmer error and recorded as an encoder failure.
func (e *Encoder) Int(v int) {
	if v < 0 {
		e.fail(fmt.Errorf("snapshot: negative length %d", v))
		return
	}
	e.Uint(uint64(v))
}

// Float writes one float64 as little-endian IEEE-754 bits.
func (e *Encoder) Float(f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	e.write(buf[:])
}

// Floats writes a length-prefixed []float64.
func (e *Encoder) Floats(fs []float64) {
	e.Int(len(fs))
	for _, f := range fs {
		e.Float(f)
	}
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.write([]byte(s))
}

// Bool writes a single boolean byte.
func (e *Encoder) Bool(b bool) {
	var buf [1]byte
	if b {
		buf[0] = 1
	}
	e.write(buf[:])
}

func (e *Encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Failf records a semantic encode error (an unencodable parameter
// shape) so model codecs can refuse rather than mis-encode; Close
// reports it.
func (e *Encoder) Failf(format string, args ...any) {
	e.fail(fmt.Errorf("snapshot: "+format, args...))
}

// Close appends the checksum, flushes, and returns the first error of
// the whole encode.
func (e *Encoder) Close() error {
	if e.err == nil {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], e.crc.Sum32())
		_, e.err = e.w.Write(buf[:]) // the checksum is not checksummed
	}
	if e.err == nil {
		e.err = e.w.Flush()
	}
	return e.err
}

// Decoder reads one model artifact. NewDecoder consumes and validates
// the header; the typed methods mirror the Encoder's; Close verifies
// the checksum and surfaces the first error. Methods after an error
// return zero values.
type Decoder struct {
	r       *bufio.Reader
	crc     hash.Hash32
	err     error
	name    string
	version uint64
}

// NewDecoder reads the artifact header from r, failing on bad magic or
// an unsupported format version.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var m [len(magic)]byte
	d.read(m[:])
	if d.err == nil && string(m[:]) != magic {
		d.fail(fmt.Errorf("%w: bad magic %q", ErrCorrupt, m[:]))
	}
	d.version = d.Uint()
	if d.err == nil && d.version != Version {
		d.fail(fmt.Errorf("snapshot: unsupported artifact version %d (this build reads version %d)", d.version, Version))
	}
	d.name = d.String()
	if d.err != nil {
		return nil, d.err
	}
	return d, nil
}

// ModelName returns the model name recorded in the header.
func (d *Decoder) ModelName() string { return d.name }

// read fills p from the input, feeding the checksum.
func (d *Decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return
	}
	d.crc.Write(p)
}

// readByte reads one byte through the checksum (varint decoding).
func (d *Decoder) readByte() (byte, error) {
	b, err := d.r.ReadByte()
	if err != nil {
		return 0, err
	}
	d.crc.Write([]byte{b})
	return b, nil
}

// Uint reads an unsigned varint.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(byteReaderFunc(d.readByte))
	if err != nil {
		d.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return 0
	}
	return v
}

// Int reads a length/count, bounding it against maxLen so corrupt
// prefixes cannot drive huge allocations.
func (d *Decoder) Int() int {
	v := d.Uint()
	if v > maxLen {
		d.fail(fmt.Errorf("%w: implausible length %d", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

// Float reads one float64.
func (d *Decoder) Float() float64 {
	var buf [8]byte
	d.read(buf[:])
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

// Floats reads a length-prefixed []float64. The slice is grown
// incrementally so a corrupt length prefix cannot pre-allocate
// gigabytes before the read fails.
func (d *Decoder) Floats() []float64 {
	n := d.Int()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, d.Float())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Int()
	if d.err != nil || n == 0 {
		return ""
	}
	buf := make([]byte, n)
	d.read(buf)
	if d.err != nil {
		return ""
	}
	return string(buf)
}

// Bool reads a single boolean byte.
func (d *Decoder) Bool() bool {
	var buf [1]byte
	d.read(buf[:])
	return d.err == nil && buf[0] != 0
}

// Err returns the decoder's sticky error, nil so far. Use Close at the
// end of the payload; Err is for early-out in decode loops.
func (d *Decoder) Err() error { return d.err }

// Failf records a semantic payload error (wrong shape, unknown kind
// byte) so model decoders can reject artifacts the byte-level codec
// read successfully.
func (d *Decoder) Failf(format string, args ...any) {
	d.fail(fmt.Errorf("snapshot: "+format, args...))
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Close verifies the artifact checksum (computed over everything
// consumed so far) and returns the first error of the whole decode.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	sum := d.crc.Sum32() // before the trailer is read
	var buf [4]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		return fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if want := binary.LittleEndian.Uint32(buf[:]); want != sum {
		return fmt.Errorf("%w: checksum mismatch (artifact %08x, computed %08x)", ErrCorrupt, want, sum)
	}
	return nil
}

// byteReaderFunc adapts a func to io.ByteReader for binary.ReadUvarint.
type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }
