package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
)

// encodeSample writes one artifact exercising every field type.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewEncoder(&buf, "pbm")
	e.Uint(42)
	e.Int(7)
	e.Float(math.Pi)
	e.Floats([]float64{0.25, 0.5, math.Inf(1), -0})
	e.String("query string")
	e.Bool(true)
	e.Bool(false)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	raw := encodeSample(t)
	d, err := NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if d.ModelName() != "pbm" {
		t.Errorf("ModelName = %q", d.ModelName())
	}
	if v := d.Uint(); v != 42 {
		t.Errorf("Uint = %d", v)
	}
	if v := d.Int(); v != 7 {
		t.Errorf("Int = %d", v)
	}
	if v := d.Float(); v != math.Pi {
		t.Errorf("Float = %v", v)
	}
	fs := d.Floats()
	want := []float64{0.25, 0.5, math.Inf(1), 0}
	if len(fs) != len(want) {
		t.Fatalf("Floats = %v", fs)
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("Floats[%d] = %v, want %v", i, fs[i], want[i])
		}
	}
	if s := d.String(); s != "query string" {
		t.Errorf("String = %q", s)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	raw := encodeSample(t)
	raw[0] ^= 0xFF
	if _, err := NewDecoder(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

func TestWrongVersion(t *testing.T) {
	// Hand-craft a header with an unsupported version.
	var buf bytes.Buffer
	buf.WriteString(magic)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], 99)])
	_, err := NewDecoder(&buf)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version accepted: %v", err)
	}
}

// TestTruncated cuts the artifact at every length: no prefix may decode
// cleanly through Close.
func TestTruncated(t *testing.T) {
	raw := encodeSample(t)
	for cut := 0; cut < len(raw); cut++ {
		d, err := NewDecoder(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue // header already broken
		}
		d.Uint()
		d.Int()
		d.Float()
		d.Floats()
		_ = d.String()
		d.Bool()
		d.Bool()
		if err := d.Close(); err == nil {
			t.Fatalf("truncation at %d/%d decoded cleanly", cut, len(raw))
		}
	}
}

// TestCorrupt flips every byte in turn: either decoding fails outright
// or the checksum catches the damage at Close.
func TestCorrupt(t *testing.T) {
	raw := encodeSample(t)
	for i := range raw {
		bad := bytes.Clone(raw)
		bad[i] ^= 0x5A
		d, err := NewDecoder(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		d.Uint()
		d.Int()
		d.Float()
		d.Floats()
		_ = d.String()
		d.Bool()
		d.Bool()
		if err := d.Close(); err == nil {
			t.Fatalf("flipped byte %d went undetected", i)
		}
	}
}

func TestImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, "x")
	e.Uint(1 << 40) // far past maxLen, read back as a length
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Int(); d.Err() == nil {
		t.Fatal("implausible length accepted")
	}
}

func TestNegativeLengthEncode(t *testing.T) {
	e := NewEncoder(&bytes.Buffer{}, "x")
	e.Int(-1)
	if err := e.Close(); err == nil {
		t.Fatal("negative length encoded cleanly")
	}
}
