package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

// buildV2 assembles a representative artifact: a byte blob, float64,
// int32 and uint32 sections, including an empty one.
func buildV2(t *testing.T) ([]byte, []float64, []int32, []uint32) {
	t.Helper()
	floats := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	ints := []int32{-1, 0, 1, 1 << 30, -(1 << 30)}
	uints := []uint32{0, 7, 1 << 31}
	w := NewV2Writer("micro")
	w.Bytes("v.blob", []byte("cheapflightscheap flights"))
	w.Floats("rel", floats)
	w.Int32s("v.tabl", ints)
	w.Uint32s("v.offs", uints)
	w.Bytes("empty", nil)
	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer holds %d", n, buf.Len())
	}
	return buf.Bytes(), floats, ints, uints
}

func TestV2RoundTrip(t *testing.T) {
	data, floats, ints, uints := buildV2(t)
	if !IsV2(data) {
		t.Fatalf("IsV2 = false on a v2 artifact")
	}
	if IsV2([]byte(magic)) {
		t.Fatalf("IsV2 = true on a v1 artifact")
	}
	a, err := ParseV2(data)
	if err != nil {
		t.Fatalf("ParseV2: %v", err)
	}
	if a.ModelName != "micro" {
		t.Fatalf("ModelName = %q, want micro", a.ModelName)
	}
	if err := a.VerifySections(); err != nil {
		t.Fatalf("VerifySections: %v", err)
	}

	blob, err := a.BytesView("v.blob")
	if err != nil || string(blob) != "cheapflightscheap flights" {
		t.Fatalf("BytesView = %q, %v", blob, err)
	}
	fv, err := a.FloatsView("rel")
	if err != nil {
		t.Fatalf("FloatsView: %v", err)
	}
	for i, want := range floats {
		if got := fv[i]; got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("float[%d] = %v, want %v", i, got, want)
		}
	}
	iv, err := a.Int32sView("v.tabl")
	if err != nil {
		t.Fatalf("Int32sView: %v", err)
	}
	for i, want := range ints {
		if iv[i] != want {
			t.Fatalf("int32[%d] = %d, want %d", i, iv[i], want)
		}
	}
	uv, err := a.Uint32sView("v.offs")
	if err != nil {
		t.Fatalf("Uint32sView: %v", err)
	}
	for i, want := range uints {
		if uv[i] != want {
			t.Fatalf("uint32[%d] = %d, want %d", i, uv[i], want)
		}
	}
	ev, err := a.BytesView("empty")
	if err != nil || len(ev) != 0 {
		t.Fatalf("empty BytesView = %v, %v", ev, err)
	}

	// Payloads must be views into the artifact, not copies, and aligned.
	s, _ := a.Section("rel")
	for _, sec := range a.Sections {
		if len(sec.Data) == 0 {
			continue
		}
		start := &sec.Data[0]
		found := false
		for i := range data {
			if &data[i] == start {
				if i%v2Align != 0 {
					t.Fatalf("section %q starts at offset %d, not %d-aligned", sec.Tag, i, v2Align)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("section %q payload is a copy, not a view", sec.Tag)
		}
	}
	if s.Elems() != len(floats) {
		t.Fatalf("rel Elems = %d, want %d", s.Elems(), len(floats))
	}
}

func TestV2WriterRejects(t *testing.T) {
	if _, err := NewV2Writer("").WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("empty model name accepted")
	}
	if _, err := NewV2Writer("a-name-well-over-thirty-two-bytes-long").WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("overlong model name accepted")
	}
	w := NewV2Writer("m")
	w.Bytes("toolongtag", nil)
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("overlong tag accepted")
	}
	w = NewV2Writer("m")
	w.Bytes("dup", nil)
	w.Floats("dup", nil)
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("duplicate tag accepted")
	}
}

// TestV2ParseRejects corrupts specific structural fields and checks the
// parser fails closed on each.
func TestV2ParseRejects(t *testing.T) {
	data, _, _, _ := buildV2(t)

	mut := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), data...)
		b = f(b)
		if _, err := ParseV2(b); err == nil {
			t.Errorf("%s: ParseV2 accepted a corrupt artifact", name)
		}
	}
	mut("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mut("future version", func(b []byte) []byte { binary.LittleEndian.PutUint16(b[4:], 99); return b })
	mut("truncated header", func(b []byte) []byte { return b[:32] })
	mut("truncated payload", func(b []byte) []byte { return b[:len(b)-8] })
	mut("oversize claim", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], uint64(len(b)+64))
		return b
	})
	mut("empty name", func(b []byte) []byte {
		for i := 24; i < 24+v2NameSize; i++ {
			b[i] = 0
		}
		return b
	})
	mut("directory bitflip", func(b []byte) []byte { b[v2HeaderSize+3] ^= 1; return b })
	mut("section count spike", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], 1<<20)
		return b
	})

	// Directory-level corruptions need the directory CRC re-signed to
	// reach the per-section checks.
	resign := func(b []byte) []byte {
		nSec := int(binary.LittleEndian.Uint32(b[8:]))
		dir := b[v2HeaderSize : v2HeaderSize+nSec*v2EntrySize]
		binary.LittleEndian.PutUint32(b[12:], crcOf(dir))
		return b
	}
	entry := func(b []byte, i int) []byte { return b[v2HeaderSize+i*v2EntrySize:] }
	mut("misaligned offset", func(b []byte) []byte {
		e := entry(b, 1)
		binary.LittleEndian.PutUint64(e[8:], binary.LittleEndian.Uint64(e[8:])+8)
		return resign(b)
	})
	mut("overrunning length", func(b []byte) []byte {
		e := entry(b, 1)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(b)))
		return resign(b)
	})
	mut("overlapping sections", func(b []byte) []byte {
		e0 := entry(b, 0)
		e1 := entry(b, 1)
		binary.LittleEndian.PutUint64(e1[8:], binary.LittleEndian.Uint64(e0[8:]))
		return resign(b)
	})
	mut("unknown kind", func(b []byte) []byte {
		e := entry(b, 0)
		binary.LittleEndian.PutUint32(e[28:], 77)
		return resign(b)
	})
	mut("odd float length", func(b []byte) []byte {
		e := entry(b, 1) // "rel", float64
		binary.LittleEndian.PutUint64(e[16:], binary.LittleEndian.Uint64(e[16:])-1)
		return resign(b)
	})
	mut("empty tag", func(b []byte) []byte {
		e := entry(b, 0)
		for i := 0; i < v2TagSize; i++ {
			e[i] = 0
		}
		return resign(b)
	})
	mut("duplicate tags", func(b []byte) []byte {
		copy(entry(b, 1)[0:v2TagSize], entry(b, 0)[0:v2TagSize])
		return resign(b)
	})
}

func crcOf(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

func TestV2WrongEndianTagRejected(t *testing.T) {
	data, _, _, _ := buildV2(t)
	b := append([]byte(nil), data...)
	b[6], b[7] = b[7], b[6] // byte-swapped tag, as a foreign-order writer would leave it
	_, err := ParseV2(b)
	if !errors.Is(err, ErrWrongArch) {
		t.Fatalf("ParseV2 on swapped endian tag: err = %v, want ErrWrongArch", err)
	}
}

// TestV2VerifySectionsCatchesPayloadFlips flips each payload byte in
// turn; ParseV2 stays green (structure intact) but VerifySections must
// flag every one.
func TestV2VerifySectionsCatchesPayloadFlips(t *testing.T) {
	data, _, _, _ := buildV2(t)
	a, err := ParseV2(data)
	if err != nil {
		t.Fatal(err)
	}
	payloadStart := len(data)
	for _, s := range a.Sections {
		if len(s.Data) == 0 {
			continue
		}
		for i := range data {
			if &data[i] == &s.Data[0] {
				if i < payloadStart {
					payloadStart = i
				}
			}
		}
	}
	for i := payloadStart; i < len(data); i++ {
		b := append([]byte(nil), data...)
		b[i] ^= 0x40
		aa, err := ParseV2(b)
		if err != nil {
			t.Fatalf("offset %d: ParseV2 failed on payload-only flip: %v", i, err)
		}
		inSection := false
		for _, s := range aa.Sections {
			for j := range data {
				if len(s.Data) > 0 && &b[j] == &s.Data[0] && i >= j && i < j+len(s.Data) {
					inSection = true
				}
			}
		}
		if err := aa.VerifySections(); inSection && err == nil {
			t.Fatalf("offset %d: VerifySections missed a payload flip", i)
		}
	}
}

func TestV2EveryByteCorruptionDetectedOrHarmless(t *testing.T) {
	data, _, _, _ := buildV2(t)
	for i := range data {
		b := append([]byte(nil), data...)
		b[i] ^= 0xFF
		a, err := ParseV2(b)
		if err != nil {
			continue // fail closed at parse: fine
		}
		if err := a.VerifySections(); err != nil {
			continue // fail closed at verify: fine
		}
		// Neither caught it: the flip must be in inter-section padding,
		// which no view exposes — prove payload equality vs original.
		orig, _ := ParseV2(data)
		for _, s := range orig.Sections {
			got, ok := a.Section(s.Tag)
			if !ok || !bytes.Equal(got.Data, s.Data) {
				t.Fatalf("offset %d: undetected corruption changed section %q", i, s.Tag)
			}
		}
	}
}

func TestV2RawCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewRawEncoder(&buf)
	e.Uint(42)
	e.Float(math.Pi)
	e.String("geometric")
	e.Bool(true)
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	d := NewRawDecoder(bytes.NewReader(buf.Bytes()))
	if v := d.Uint(); v != 42 {
		t.Fatalf("Uint = %d", v)
	}
	if v := d.Float(); v != math.Pi {
		t.Fatalf("Float = %v", v)
	}
	if v := d.String(); v != "geometric" {
		t.Fatalf("String = %q", v)
	}
	if v := d.Bool(); !v {
		t.Fatalf("Bool = false")
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
}
