package snapshot

import (
	"encoding/binary"
	"fmt"
)

// Append-style codec primitives: the same varint/string/bool wire forms
// the Encoder/Decoder pair streams through an io.Writer, but over byte
// slices, for callers that frame records themselves (internal/wal's
// length-prefixed log records). AppendX grow dst in place; Cursor walks
// a framed payload back out with the Decoder's sticky-error discipline
// and the same maxLen bound on lengths.

// AppendUint appends an unsigned varint.
func AppendUint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBool appends a single boolean byte.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Cursor reads the Append* wire forms back out of one byte slice.
// Methods after an error return zero values; Err surfaces the first
// failure. A short or corrupt buffer fails with ErrCorrupt rather than
// panicking or over-reading.
type Cursor struct {
	buf []byte
	off int
	err error
}

// NewCursor returns a cursor over b.
func NewCursor(b []byte) *Cursor { return &Cursor{buf: b} }

// Remaining returns how many unread bytes are left.
func (c *Cursor) Remaining() int { return len(c.buf) - c.off }

// Err returns the cursor's sticky error, nil so far.
func (c *Cursor) Err() error { return c.err }

func (c *Cursor) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Uint reads an unsigned varint.
func (c *Cursor) Uint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.fail(fmt.Errorf("%w: bad varint at offset %d", ErrCorrupt, c.off))
		return 0
	}
	c.off += n
	return v
}

// Int reads a length/count, bounded by the codec's maxLen so a corrupt
// prefix cannot drive a huge allocation.
func (c *Cursor) Int() int {
	v := c.Uint()
	if v > maxLen {
		c.fail(fmt.Errorf("%w: implausible length %d", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

// Byte reads one raw byte.
func (c *Cursor) Byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.buf) {
		c.fail(fmt.Errorf("%w: truncated payload", ErrCorrupt))
		return 0
	}
	b := c.buf[c.off]
	c.off++
	return b
}

// Bool reads a single boolean byte.
func (c *Cursor) Bool() bool { return c.Byte() != 0 }

// String reads a length-prefixed string.
func (c *Cursor) String() string {
	n := c.Int()
	if c.err != nil || n == 0 {
		return ""
	}
	if c.Remaining() < n {
		c.fail(fmt.Errorf("%w: string of %d bytes overruns payload", ErrCorrupt, n))
		return ""
	}
	s := string(c.buf[c.off : c.off+n])
	c.off += n
	return s
}
