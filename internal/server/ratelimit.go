package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// rateLimiter is a per-client token bucket over the feedback ingest
// path: each client (X-Client-ID header when present, remote host
// otherwise) accrues rate tokens per second up to burst, and every
// feedback event spends one. A client that outruns its bucket gets 429
// with a Retry-After hint instead of competing with everyone else for
// the learner's bounded sink — backpressure lands on the noisy client,
// not the fleet.
//
// Hand-rolled on purpose (no golang.org/x/time dependency): one mutex,
// one map, lazy refill on access, and a periodic sweep that drops
// full-and-idle buckets so an open-ended client population cannot grow
// the map without bound.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	ttl   time.Duration // idle-bucket eviction horizon

	mu        sync.Mutex
	clients   map[string]*bucket
	lastSweep time.Time
	now       func() time.Time // test hook

	limited atomic.Uint64 // requests rejected
}

// bucket is one client's token balance at its last refill instant.
type bucket struct {
	tokens float64
	at     time.Time
}

// maxClients bounds the tracked-client map; past it, unknown clients
// are rejected until the sweep frees room — a full table under an
// identifier-spinning flood must fail closed, not eat the heap.
const maxClients = 1 << 16

// sweepEvery is how often allowN scans for reclaimable buckets.
const sweepEvery = time.Minute

// defaultClientTTL is how long an idle client's bucket is remembered
// before eviction. A bucket below full never self-evicts through the
// refill rule alone (a client that sent one burst and vanished under a
// slow refill rate would be tracked for hours), so idleness itself is
// the bound that actually caps the map.
const defaultClientTTL = 10 * time.Minute

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		ttl:     defaultClientTTL,
		clients: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allowN spends n tokens from key's bucket. When the balance is short
// it reports how long the client should wait before retrying (at least
// a second, so the header is meaningful after rounding).
func (rl *rateLimiter) allowN(key string, n int) (ok bool, retryAfter time.Duration) {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if now.Sub(rl.lastSweep) >= sweepEvery {
		rl.sweepLocked(now)
	}
	b := rl.clients[key]
	if b == nil {
		if len(rl.clients) >= maxClients {
			rl.sweepLocked(now)
		}
		if len(rl.clients) >= maxClients {
			rl.limited.Add(1)
			return false, sweepEvery
		}
		b = &bucket{tokens: rl.burst, at: now}
		rl.clients[key] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.at).Seconds()*rl.rate)
		b.at = now
	}
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	rl.limited.Add(1)
	short := math.Min(need, rl.burst) - b.tokens
	wait := time.Duration(short / rl.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// sweepLocked drops reclaimable buckets: ones that are full again
// (idle long enough to have fully refilled — forgetting them is free,
// their next request recreates an identical bucket) and ones idle past
// the TTL regardless of balance. The TTL eviction forgives at most
// burst tokens of debt per TTL window per client, a bounded and
// documented leniency; without it a partially-drained bucket under a
// slow refill rate would pin a map entry near-indefinitely. Caller
// holds rl.mu.
func (rl *rateLimiter) sweepLocked(now time.Time) {
	for key, b := range rl.clients {
		idle := now.Sub(b.at)
		if rl.ttl > 0 && idle >= rl.ttl {
			delete(rl.clients, key)
			continue
		}
		if math.Min(rl.burst, b.tokens+idle.Seconds()*rl.rate) >= rl.burst {
			delete(rl.clients, key)
		}
	}
	rl.lastSweep = now
}

// size returns the tracked-client count.
func (rl *rateLimiter) size() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.clients)
}

// RateLimitSnapshot is the limiter's health block on /healthz.
type RateLimitSnapshot struct {
	// Rate and Burst echo the configured policy.
	Rate  float64 `json:"rate"`
	Burst int     `json:"burst"`
	// Limited counts rejected feedback requests; Clients is the
	// currently tracked client population.
	Limited uint64 `json:"limited"`
	Clients int    `json:"clients"`
}

func (rl *rateLimiter) snapshot() RateLimitSnapshot {
	return RateLimitSnapshot{
		Rate:    rl.rate,
		Burst:   int(rl.burst),
		Limited: rl.limited.Load(),
		Clients: rl.size(),
	}
}

// clientKey identifies the feedback producer: the self-reported
// X-Client-ID when present (load balancers hide source addresses;
// cooperating producers get per-producer budgets), the remote host
// otherwise.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
