package server

import (
	"math"
	"net/http"
	"testing"

	"repro/internal/engine"
)

func TestOptimizeEndpointExplicitCandidates(t *testing.T) {
	ts, eng, _ := newTestServer(t)
	base := []string{"find cheap flights", "to rome", "book today"}
	cands := [][]string{
		{"find cheap flights", "to rome", "flights today"},
		{"plain words", "to rome", "book today"},
		{"find cheap flights to rome", "flights", "book today"},
		{"find cheap flights", "to rome", "book today"}, // duplicate of base
	}
	var got optimizeResponse
	code := postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{
		ID: "r1", Model: engine.NameMicro, Query: "cheap flights",
		Lines: base, Candidates: cands, MaxN: 3,
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, got)
	}
	if got.ID != "r1" || got.Query != "cheap flights" || got.Model != engine.NameMicro {
		t.Errorf("echo fields: %+v", got)
	}
	if got.Base.Index != -1 {
		t.Errorf("base index %d, want -1", got.Base.Index)
	}
	if got.Generated != 0 {
		t.Errorf("explicit candidates reported %d generated", got.Generated)
	}
	if len(got.Candidates) != len(cands) {
		t.Fatalf("%d candidates ranked as %d", len(cands), len(got.Candidates))
	}

	// Every reported CTR must match the single-request scoring path.
	want := make([]float64, len(cands))
	for i, lines := range cands {
		resp, err := eng.ScoreCTR(nil, engine.Request{Model: engine.NameMicro, Lines: lines, MaxN: 3})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp.CTR
	}
	for _, c := range got.Candidates {
		if c.Index < 0 || c.Index >= len(cands) {
			t.Fatalf("candidate index %d out of range", c.Index)
		}
		if math.Abs(c.CTR-want[c.Index]) > 1e-12 {
			t.Errorf("candidate %d: CTR %v, want %v", c.Index, c.CTR, want[c.Index])
		}
		if c.Lines != nil || c.Edit != nil {
			t.Errorf("explicit candidate %d echoed lines/edit", c.Index)
		}
	}
	// Ranked best-first by CTR, and best is the argmax with its lines.
	for i := 1; i < len(got.Candidates); i++ {
		if got.Candidates[i-1].CTR < got.Candidates[i].CTR {
			t.Errorf("ranking broken at %d: %v < %v", i, got.Candidates[i-1].CTR, got.Candidates[i].CTR)
		}
	}
	argmax := 0
	for i := range want {
		if want[i] > want[argmax] {
			argmax = i
		}
	}
	if want[argmax] > got.Base.CTR {
		if got.Best.Index != argmax {
			t.Errorf("best index %d, want argmax %d", got.Best.Index, argmax)
		}
	} else if got.Best.Index != -1 {
		t.Errorf("nothing beats base but best index is %d", got.Best.Index)
	}
	if len(got.Best.Lines) == 0 {
		t.Error("best carries no lines")
	}

	// top_k bounds the ranking without changing the order.
	var top optimizeResponse
	if code := postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{
		Model: engine.NameMicro, Lines: base, Candidates: cands, MaxN: 3, TopK: 2,
	}, &top); code != http.StatusOK {
		t.Fatalf("top_k status %d", code)
	}
	if len(top.Candidates) != 2 {
		t.Fatalf("top_k=2 returned %d candidates", len(top.Candidates))
	}
	for i := range top.Candidates {
		if top.Candidates[i].Index != got.Candidates[i].Index {
			t.Errorf("top_k rank %d: index %d, want %d", i, top.Candidates[i].Index, got.Candidates[i].Index)
		}
	}
}

func TestOptimizeEndpointGenerates(t *testing.T) {
	ts, eng, _ := newTestServer(t)
	var got optimizeResponse
	code := postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{
		Model: engine.NameMicro,
		Lines: []string{"acme store flights", "plain words", "book today"},
		// "find cheap" is the model's high-relevance phrase; generation
		// should discover variants that insert it.
		Inventory: []string{"find cheap", "flights"},
		MaxN:      3, TopK: 5,
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, got)
	}
	if got.Generated == 0 {
		t.Fatal("no candidates generated from the inventory")
	}
	if len(got.Candidates) == 0 || len(got.Candidates) > 5 {
		t.Fatalf("top_k=5 returned %d candidates", len(got.Candidates))
	}
	for _, c := range got.Candidates {
		if len(c.Lines) == 0 || c.Edit == nil {
			t.Errorf("generated candidate %d lacks lines or edit: %+v", c.Index, c)
		}
	}
	// Inserting the high-relevance phrase must beat the base; the best
	// entry's reported CTR must match scoring its lines directly.
	if !(got.Best.CTR > got.Base.CTR) {
		t.Errorf("best CTR %v does not beat base %v", got.Best.CTR, got.Base.CTR)
	}
	resp, err := eng.ScoreCTR(nil, engine.Request{Model: engine.NameMicro, Lines: got.Best.Lines, MaxN: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Best.CTR-resp.CTR) > 1e-12 {
		t.Errorf("best CTR %v, rescoring its lines gives %v", got.Best.CTR, resp.CTR)
	}

	// The optimize counters must have moved.
	var hb healthzBody
	if code := getJSON(t, ts.URL+"/healthz", &hb); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if hb.Serving.Optimizes == 0 || hb.Serving.OptimizeCandidates == 0 {
		t.Errorf("optimize counters did not move: %+v", hb.Serving)
	}
}

func TestOptimizeEndpointErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	cases := []struct {
		name string
		req  optimizeRequest
		code int
	}{
		{"no lines", optimizeRequest{Model: engine.NameMicro, Candidates: [][]string{{"x"}}}, http.StatusBadRequest},
		{"no candidates or inventory", optimizeRequest{Model: engine.NameMicro, Lines: []string{"x"}}, http.StatusBadRequest},
		{"unknown model", optimizeRequest{Model: "nope", Lines: []string{"x"}, Candidates: [][]string{{"y"}}}, http.StatusNotFound},
		{"macro model", optimizeRequest{Model: "pbm", Lines: []string{"x"}, Candidates: [][]string{{"y"}}}, http.StatusUnprocessableEntity},
		{"oversized base for generation", optimizeRequest{Model: engine.NameMicro,
			Lines: []string{"a", "b", "c", "d"}, Inventory: []string{"x"}}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		var got optimizeResponse
		if code := postJSON(t, ts.URL+"/v1/optimize", tc.req, &got); code != tc.code {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, code, tc.code, got)
		}
	}

	// Over the batch limit: 413.
	big := make([][]string, maxBatchItems+1)
	for i := range big {
		big[i] = []string{"x"}
	}
	var got errorBody
	if code := postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{
		Model: engine.NameMicro, Lines: []string{"x"}, Candidates: big,
	}, &got); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized candidate set: status %d, want 413 (%+v)", code, got)
	}
}
