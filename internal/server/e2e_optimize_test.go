package server

// End-to-end optimizer lift test: the full serve→optimize→feedback
// loop under the user simulator's ground truth. Snippet feedback
// streams in through /v1/feedback, the online learner publishes a
// micro model, /v1/optimize picks a variant off that learned model,
// and the simulator then realizes impressions of the default snippet
// versus the optimizer's pick — which also flow back through
// /v1/feedback, the way the loop runs in production. The optimizer's
// realized click-through rate must beat the default snippet's.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/adcorpus"
	"repro/internal/engine"
	"repro/internal/serp"
	"repro/internal/stream"
)

func TestOptimizeFeedbackLoopBeatsBaseline(t *testing.T) {
	corpus := adcorpus.Generate(adcorpus.Config{Seed: 17, Groups: 40}, adcorpus.DefaultLexicon())
	sim := serp.New(serp.Config{Seed: 18})

	eng := engine.New(engine.WithWorkers(2))
	l, err := stream.New(eng, stream.Config{
		Models:    []string{"micro"},
		Shards:    2,
		QueueCap:  8192,
		Attention: serp.DefaultAttention(),
		MicroMaxN: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ts := httptest.NewServer(New(eng, nil, WithLearner(l)))
	t.Cleanup(ts.Close)

	// Pick the adgroup with the widest planted quality gap: the worst
	// creative is the "default snippet", its siblings the candidates.
	var group *adcorpus.Group
	var baseIdx int
	bestGap := 0.0
	for gi := range corpus.Groups {
		g := &corpus.Groups[gi]
		lo, hi := 0, 0
		for ci := range g.Creatives {
			p := sim.MarginalClickProb(&g.Creatives[ci])
			if p < sim.MarginalClickProb(&g.Creatives[lo]) {
				lo = ci
			}
			if p > sim.MarginalClickProb(&g.Creatives[hi]) {
				hi = ci
			}
		}
		gap := sim.MarginalClickProb(&g.Creatives[hi]) - sim.MarginalClickProb(&g.Creatives[lo])
		if gap > bestGap {
			bestGap, group, baseIdx = gap, g, lo
		}
	}
	if group == nil || bestGap <= 0.02 {
		t.Fatalf("corpus has no adgroup with a usable quality gap (best %v)", bestGap)
	}
	base := &group.Creatives[baseIdx]

	// Stream micro feedback through the wire: a broad pass over the
	// corpus plus concentrated traffic on the target group, so the
	// learned relevances separate its creatives.
	feed := func(c *adcorpus.Creative, impressions int) stream.SnippetEvent {
		clicks := 0
		for k := 0; k < impressions; k++ {
			if _, clicked := sim.Impress(c); clicked {
				clicks++
			}
		}
		return stream.SnippetEvent{Lines: c.Lines, Impressions: impressions, Clicks: clicks}
	}
	var events []stream.SnippetEvent
	for gi := range corpus.Groups {
		for ci := range corpus.Groups[gi].Creatives {
			events = append(events, feed(&corpus.Groups[gi].Creatives[ci], 400))
		}
	}
	for round := 0; round < 10; round++ {
		for ci := range group.Creatives {
			events = append(events, feed(&group.Creatives[ci], 400))
		}
	}
	for start := 0; start < len(events); start += 100 {
		end := start + 100
		if end > len(events) {
			end = len(events)
		}
		var fb feedbackResponse
		if code := postJSON(t, ts.URL+"/v1/feedback", feedbackRequest{Snippets: events[start:end]}, &fb); code != http.StatusOK {
			t.Fatalf("feedback status %d", code)
		}
		if fb.Accepted != end-start {
			t.Fatalf("feedback accepted %d of %d", fb.Accepted, end-start)
		}
	}
	if _, err := l.Publish(); err != nil {
		t.Fatal(err)
	}

	// Optimize the default snippet against its siblings through the
	// learned model.
	cands := make([][]string, 0, len(group.Creatives)-1)
	truth := make([]*adcorpus.Creative, 0, len(group.Creatives)-1)
	for ci := range group.Creatives {
		if ci == baseIdx {
			continue
		}
		cands = append(cands, group.Creatives[ci].Lines)
		truth = append(truth, &group.Creatives[ci])
	}
	var got optimizeResponse
	code := postJSON(t, ts.URL+"/v1/optimize", optimizeRequest{
		Model: "micro", Query: group.Keyword, Lines: base.Lines, Candidates: cands, MaxN: 2,
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("optimize status %d: %+v", code, got)
	}
	if got.Best.Index < 0 {
		t.Fatalf("optimizer kept the default snippet (gap %v): %+v", bestGap, got)
	}
	pick := truth[got.Best.Index]

	// The pick must genuinely beat the default under the simulator's
	// planted ground truth...
	if sim.MarginalClickProb(pick) <= sim.MarginalClickProb(base) {
		t.Fatalf("optimizer picked a truly worse creative: %v vs %v",
			sim.MarginalClickProb(pick), sim.MarginalClickProb(base))
	}

	// ...and in realized traffic: impress both heavily, replaying the
	// outcomes through /v1/feedback like production impressions, and
	// compare click-through among examined impressions.
	const n = 30000
	realize := func(c *adcorpus.Creative) (examined, clicks int) {
		for k := 0; k < n; k++ {
			ex, clicked := sim.Impress(c)
			if ex {
				examined++
			}
			if clicked {
				clicks++
			}
		}
		var fb feedbackResponse
		if code := postJSON(t, ts.URL+"/v1/feedback", feedbackRequest{
			Snippets: []stream.SnippetEvent{{Lines: c.Lines, Impressions: examined, Clicks: clicks}},
		}, &fb); code != http.StatusOK || fb.Accepted != 1 {
			t.Fatalf("replaying impressions: %d %+v", code, fb)
		}
		return examined, clicks
	}
	bx, bc := realize(base)
	px, pc := realize(pick)
	baseCTR := float64(bc) / float64(bx)
	pickCTR := float64(pc) / float64(px)
	if pickCTR <= baseCTR {
		t.Fatalf("optimized snippet's realized CTR %.4f does not beat the default's %.4f (true gap %v)",
			pickCTR, baseCTR, bestGap)
	}
	t.Logf("realized CTR: default %.4f → optimized %.4f (planted gap %.4f)", baseCTR, pickCTR, bestGap)
}
