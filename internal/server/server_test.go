package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stream"
)

// testSessions builds a deterministic synthetic log (mirrors the
// engine tests' generator).
func testSessions(n int) []clickmodel.Session {
	rng := rand.New(rand.NewSource(7))
	docs := []string{"a", "b", "c", "d", "e", "f"}
	gamma := []float64{0.9, 0.6, 0.4, 0.2}
	out := make([]clickmodel.Session, 0, n)
	for k := 0; k < n; k++ {
		s := clickmodel.Session{Query: "q", Docs: make([]string, 4), Clicks: make([]bool, 4)}
		for i := range s.Docs {
			s.Docs[i] = docs[rng.Intn(len(docs))]
			s.Clicks[i] = rng.Float64() < gamma[i]*0.4
		}
		out = append(out, s)
	}
	return out
}

func testMicroModel() *core.Model {
	m := core.NewModel(core.GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	return m
}

// newTestServer builds an engine with a fitted PBM + micro model and
// wraps it in an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine, []clickmodel.Session) {
	t.Helper()
	sessions := testSessions(300)
	eng := engine.New(engine.WithWorkers(2))
	if _, err := eng.Fit("pbm", sessions[:200], engine.Iterations(5)); err != nil {
		t.Fatal(err)
	}
	eng.UseMicro(testMicroModel())
	ts := httptest.NewServer(New(eng, nil))
	t.Cleanup(ts.Close)
	return ts, eng, sessions
}

// postJSON posts a JSON body and decodes the JSON answer into out.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s answer: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var got struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &got); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if got.Status != "ok" || got.Models != 2 {
		t.Errorf("healthz = %+v", got)
	}
}

func TestModelsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var got struct {
		Models []engine.ModelInfo `json:"models"`
	}
	if code := getJSON(t, ts.URL+"/v1/models", &got); code != http.StatusOK {
		t.Fatalf("models status %d", code)
	}
	if len(got.Models) != 2 {
		t.Fatalf("models = %+v", got.Models)
	}
	for _, mi := range got.Models {
		if !mi.Latest || mi.Version != 1 || mi.Params <= 0 {
			t.Errorf("model metadata off the wire: %+v", mi)
		}
	}
}

func TestScoreEndpoint(t *testing.T) {
	ts, eng, sessions := newTestServer(t)

	// Macro request: the wire answer must match in-process scoring.
	s := sessions[250]
	var got engine.Response
	code := postJSON(t, ts.URL+"/v1/score", engine.Request{ID: "s1", Model: "pbm", Session: &s}, &got)
	if code != http.StatusOK {
		t.Fatalf("score status %d: %+v", code, got)
	}
	want, err := eng.ScoreCTR(t.Context(), engine.Request{Model: "pbm", Session: &s})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "s1" || got.Model != "pbm" || got.ModelVersion != 1 {
		t.Errorf("wire response header fields: %+v", got)
	}
	if math.Abs(got.CTR-want.CTR) > 1e-12 || len(got.Positions) != len(want.Positions) {
		t.Errorf("wire CTR %v positions %v, want %v %v", got.CTR, got.Positions, want.CTR, want.Positions)
	}

	// Micro request.
	var micro engine.Response
	code = postJSON(t, ts.URL+"/v1/score",
		engine.Request{ID: "m1", Model: "micro", Lines: []string{"Acme", "Find cheap flights"}}, &micro)
	if code != http.StatusOK || micro.CTR <= 0 || micro.CTR > 1 {
		t.Errorf("micro score: %d %+v", code, micro)
	}
}

func TestScoreEndpointErrors(t *testing.T) {
	ts, _, sessions := newTestServer(t)

	// Unknown model → 404 with the failure on the wire.
	var got engine.Response
	code := postJSON(t, ts.URL+"/v1/score", engine.Request{Model: "bogus", Session: &sessions[0]}, &got)
	if code != http.StatusNotFound {
		t.Errorf("unknown model status %d", code)
	}
	if !strings.Contains(got.Error, "bogus") {
		t.Errorf("error not on the wire: %+v", got)
	}

	// Missing evidence → 422.
	code = postJSON(t, ts.URL+"/v1/score", engine.Request{Model: "pbm"}, &got)
	if code != http.StatusUnprocessableEntity || got.Error == "" {
		t.Errorf("missing evidence: %d %+v", code, got)
	}

	// Malformed body → 400.
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", resp.StatusCode)
	}
}

func TestScoreBatchEndpoint(t *testing.T) {
	ts, _, sessions := newTestServer(t)
	body := struct {
		Requests []engine.Request `json:"requests"`
	}{}
	for i := 0; i < 10; i++ {
		body.Requests = append(body.Requests, engine.Request{ID: fmt.Sprint(i), Model: "pbm", Session: &sessions[200+i]})
	}
	body.Requests = append(body.Requests,
		engine.Request{ID: "micro", Lines: []string{"Find cheap flights"}},
		engine.Request{ID: "bad", Model: "ghost", Lines: []string{"x"}})

	var got struct {
		Responses []engine.Response `json:"responses"`
	}
	if code := postJSON(t, ts.URL+"/v1/score/batch", body, &got); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(got.Responses) != len(body.Requests) {
		t.Fatalf("%d responses for %d requests", len(got.Responses), len(body.Requests))
	}
	for i, r := range got.Responses[:11] {
		if r.Error != "" || r.CTR <= 0 {
			t.Errorf("resp %d: %+v", i, r)
		}
	}
	if bad := got.Responses[11]; bad.Error == "" || bad.ID != "bad" {
		t.Errorf("failed request lost its error on the wire: %+v", bad)
	}
}

// TestLoadAndRollbackEndpoints is the hot-swap e2e: fit a second model
// offline, snapshot it to disk, POST it into the serving engine, watch
// the served version change, then roll back.
func TestLoadAndRollbackEndpoints(t *testing.T) {
	ts, eng, sessions := newTestServer(t)

	// Offline fit with different hyper-parameters, snapshot to disk.
	offline := engine.New()
	if _, err := offline.Fit("pbm", sessions[:100], engine.Iterations(2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pbm-v2.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := offline.SaveSnapshot("pbm", f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var info engine.ModelInfo
	code := postJSON(t, ts.URL+"/v1/models/pbm/load", map[string]string{"path": path}, &info)
	if code != http.StatusOK {
		t.Fatalf("load status %d: %+v", code, info)
	}
	if info.Name != "pbm" || info.Version != 2 || info.Source != "snapshot" {
		t.Fatalf("load info = %+v", info)
	}

	// Bare-name requests now serve version 2 …
	var got engine.Response
	postJSON(t, ts.URL+"/v1/score", engine.Request{Model: "pbm", Session: &sessions[250]}, &got)
	if got.ModelVersion != 2 {
		t.Errorf("served version %d after load, want 2", got.ModelVersion)
	}
	// … and must agree with the offline model exactly.
	want, err := offline.ScoreCTR(t.Context(), engine.Request{Model: "pbm", Session: &sessions[250]})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.CTR-want.CTR) > 1e-12 {
		t.Errorf("hot-swapped CTR %v, want %v", got.CTR, want.CTR)
	}

	// Rollback over HTTP.
	code = postJSON(t, ts.URL+"/v1/models/pbm/rollback", struct{}{}, &info)
	if code != http.StatusOK || info.Version != 1 || !info.Latest {
		t.Fatalf("rollback: %d %+v", code, info)
	}
	postJSON(t, ts.URL+"/v1/score", engine.Request{Model: "pbm", Session: &sessions[250]}, &got)
	if got.ModelVersion != 1 {
		t.Errorf("served version %d after rollback, want 1", got.ModelVersion)
	}
	if _, err := eng.Rollback("pbm"); err == nil {
		t.Error("engine still had versions to roll back to")
	}

	// Error paths: missing file, bad body, unknown rollback target.
	var eb struct {
		Error string `json:"error"`
	}
	code = postJSON(t, ts.URL+"/v1/models/pbm/load", map[string]string{"path": filepath.Join(t.TempDir(), "nope.bin")}, &eb)
	if code != http.StatusBadRequest || eb.Error == "" {
		t.Errorf("missing file: %d %+v", code, eb)
	}
	code = postJSON(t, ts.URL+"/v1/models/pbm/load", map[string]string{}, &eb)
	if code != http.StatusBadRequest {
		t.Errorf("empty path: %d", code)
	}
	code = postJSON(t, ts.URL+"/v1/models/ghost/rollback", struct{}{}, &eb)
	if code != http.StatusNotFound {
		t.Errorf("ghost rollback: %d", code)
	}

	// A corrupt artifact is rejected with 422 and never installed.
	bad := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(bad, []byte("garbage artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	code = postJSON(t, ts.URL+"/v1/models/pbm/load", map[string]string{"path": bad}, &eb)
	if code != http.StatusUnprocessableEntity || eb.Error == "" {
		t.Errorf("corrupt artifact: %d %+v", code, eb)
	}

	// A versioned path name ("pbm@2") is a client error, not a handler
	// panic: the connection must get a JSON error back.
	code = postJSON(t, ts.URL+"/v1/models/pbm@2/load", map[string]string{"path": path}, &eb)
	if code != http.StatusUnprocessableEntity || !strings.Contains(eb.Error, "@") {
		t.Errorf("versioned load name: %d %+v", code, eb)
	}
}

// newOnlineServer is newTestServer plus an attached online learner.
func newOnlineServer(t *testing.T, models ...string) (*httptest.Server, *engine.Engine, *stream.Learner, []clickmodel.Session) {
	t.Helper()
	sessions := testSessions(600)
	eng := engine.New(engine.WithWorkers(2))
	if _, err := eng.Fit("pbm", sessions[:200], engine.Iterations(5)); err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		models = []string{"sdbn"}
	}
	l, err := stream.New(eng, stream.Config{Models: models, Shards: 2, QueueCap: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ts := httptest.NewServer(New(eng, nil, WithLearner(l)))
	t.Cleanup(ts.Close)
	return ts, eng, l, sessions
}

// TestFeedbackEndpoint is the serve→feedback→republish loop over the
// wire: ingest sessions, publish, and watch the new version appear in
// /v1/models and serve scoring traffic.
func TestFeedbackEndpoint(t *testing.T) {
	ts, eng, l, sessions := newOnlineServer(t)

	// Single session plus a batch, and a snippet event.
	var fb struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
		Invalid  int `json:"invalid"`
	}
	code := postJSON(t, ts.URL+"/v1/feedback", map[string]any{"session": sessions[200]}, &fb)
	if code != http.StatusOK || fb.Accepted != 1 {
		t.Fatalf("single session: %d %+v", code, fb)
	}
	code = postJSON(t, ts.URL+"/v1/feedback", map[string]any{
		"sessions": sessions[201:500],
		"snippet":  stream.SnippetEvent{Lines: []string{"cheap flights"}, Impressions: 50, Clicks: 9},
	}, &fb)
	if code != http.StatusOK || fb.Accepted != 300 || fb.Dropped != 0 || fb.Invalid != 0 {
		t.Fatalf("batch: %d %+v", code, fb)
	}

	// Publish and score through the new version.
	infos, err := l.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "sdbn" || infos[0].Source != engine.SourceOnline {
		t.Fatalf("published %+v", infos)
	}
	var got engine.Response
	code = postJSON(t, ts.URL+"/v1/score", engine.Request{Model: "sdbn", Session: &sessions[550]}, &got)
	if code != http.StatusOK || got.ModelVersion != 1 || got.CTR <= 0 {
		t.Fatalf("scoring the online model: %d %+v", code, got)
	}

	// /v1/models lists the online version with its provenance.
	var models struct {
		Models []engine.ModelInfo `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &models)
	found := false
	for _, mi := range models.Models {
		if mi.Name == "sdbn" && mi.Source == engine.SourceOnline {
			found = true
		}
	}
	if !found {
		t.Fatalf("online version missing from /v1/models: %+v", models.Models)
	}
	_ = eng
}

// TestFeedbackErrors covers the error paths of the ingest surface:
// disabled learner, malformed JSON, empty events, invalid payloads and
// oversized batches.
func TestFeedbackErrors(t *testing.T) {
	// Feedback before any learner is configured → 503.
	plain, _, _ := newTestServer(t)
	var eb struct {
		Error string `json:"error"`
	}
	code := postJSON(t, plain.URL+"/v1/feedback", map[string]any{"session": clickmodel.Session{Query: "q", Docs: []string{"a"}, Clicks: []bool{false}}}, &eb)
	if code != http.StatusServiceUnavailable || !strings.Contains(eb.Error, "-online") {
		t.Fatalf("feedback without learner: %d %+v", code, eb)
	}

	ts, _, _, _ := newOnlineServer(t)

	// Malformed JSON → 400.
	resp, err := http.Post(ts.URL+"/v1/feedback", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed feedback body: %d", resp.StatusCode)
	}

	// No events at all → 400.
	code = postJSON(t, ts.URL+"/v1/feedback", map[string]any{}, &eb)
	if code != http.StatusBadRequest {
		t.Errorf("empty feedback: %d", code)
	}

	// Invalid session → counted, 200 with invalid=1.
	var fb struct {
		Accepted int `json:"accepted"`
		Invalid  int `json:"invalid"`
	}
	code = postJSON(t, ts.URL+"/v1/feedback", map[string]any{
		"session": clickmodel.Session{Query: "q", Docs: []string{"a"}, Clicks: []bool{true, false}},
	}, &fb)
	if code != http.StatusOK || fb.Invalid != 1 || fb.Accepted != 0 {
		t.Errorf("invalid session: %d %+v", code, fb)
	}

	// Oversized batch → 413.
	big := make([]clickmodel.Session, maxBatchItems+1)
	for i := range big {
		big[i] = clickmodel.Session{Query: "q", Docs: []string{"a"}, Clicks: []bool{false}}
	}
	code = postJSON(t, ts.URL+"/v1/feedback", map[string]any{"sessions": big}, &eb)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized feedback batch: %d", code)
	}
}

// TestFeedbackBackpressure: a saturated sink answers 429 with the drop
// count on the wire.
func TestFeedbackBackpressure(t *testing.T) {
	sessions := testSessions(10)
	eng := engine.New()
	l, err := stream.New(eng, stream.Config{Models: []string{"sdbn"}, Shards: 1, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ts := httptest.NewServer(New(eng, nil, WithLearner(l)))
	t.Cleanup(ts.Close)

	var fb struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
	}
	code := postJSON(t, ts.URL+"/v1/feedback", map[string]any{"sessions": sessions[:4]}, &fb)
	if code != http.StatusOK || fb.Accepted != 1 || fb.Dropped != 3 {
		t.Fatalf("partial saturation: %d %+v", code, fb)
	}
	code = postJSON(t, ts.URL+"/v1/feedback", map[string]any{"sessions": sessions[4:8]}, &fb)
	if code != http.StatusTooManyRequests || fb.Accepted != 0 || fb.Dropped != 4 {
		t.Fatalf("full saturation: %d %+v", code, fb)
	}
}

// TestScoreBatchLimits: oversized score batches are rejected with 413
// and unknown pinned versions with 404.
func TestScoreBatchLimits(t *testing.T) {
	ts, _, sessions := newTestServer(t)

	big := struct {
		Requests []engine.Request `json:"requests"`
	}{Requests: make([]engine.Request, maxBatchItems+1)}
	var eb struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/v1/score/batch", big, &eb); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized score batch: %d", code)
	}

	// Unknown name@version pin → 404 with the versions explained.
	var got engine.Response
	code := postJSON(t, ts.URL+"/v1/score", engine.Request{Model: "pbm@9", Session: &sessions[0]}, &got)
	if code != http.StatusNotFound || !strings.Contains(got.Error, "no installed version 9") {
		t.Errorf("unknown version pin: %d %+v", code, got)
	}
	code = postJSON(t, ts.URL+"/v1/score", engine.Request{Model: "pbm@bogus", Session: &sessions[0]}, &got)
	if code != http.StatusNotFound || got.Error == "" {
		t.Errorf("malformed version pin: %d %+v", code, got)
	}
}

// TestSnapshotEndpoint: an online-learned model is exported to disk
// through the admin surface and loads back bit-identically.
func TestSnapshotEndpoint(t *testing.T) {
	ts, eng, l, sessions := newOnlineServer(t)
	var fb struct {
		Accepted int `json:"accepted"`
	}
	postJSON(t, ts.URL+"/v1/feedback", map[string]any{"sessions": sessions[200:500]}, &fb)
	if _, err := l.Publish(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sdbn-online.bin")
	var snap struct {
		Model string `json:"model"`
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}
	code := postJSON(t, ts.URL+"/v1/models/sdbn/snapshot", map[string]string{"path": path}, &snap)
	if code != http.StatusOK || snap.Bytes <= 0 || snap.Model != "sdbn" {
		t.Fatalf("snapshot export: %d %+v", code, snap)
	}

	// Round-trip: load the artifact into a fresh engine and compare.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fresh := engine.New()
	info, err := fresh.LoadSnapshot("", f)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "sdbn" {
		t.Fatalf("artifact decoded as %+v", info)
	}
	want, err := eng.ScoreCTR(t.Context(), engine.Request{Model: "sdbn", Session: &sessions[550]})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.ScoreCTR(t.Context(), engine.Request{Model: "sdbn", Session: &sessions[550]})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.CTR-want.CTR) > 1e-12 {
		t.Fatalf("round-tripped CTR %v, want %v", got.CTR, want.CTR)
	}

	// Error paths: missing path, unknown model, unwritable destination.
	var eb struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/v1/models/sdbn/snapshot", map[string]string{}, &eb); code != http.StatusBadRequest {
		t.Errorf("empty snapshot path: %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/models/ghost/snapshot", map[string]string{"path": path}, &eb); code != http.StatusNotFound {
		t.Errorf("unknown model snapshot: %d %+v", code, eb)
	}
	bad := filepath.Join(t.TempDir(), "no", "dir", "x.bin")
	if code := postJSON(t, ts.URL+"/v1/models/sdbn/snapshot", map[string]string{"path": bad}, &eb); code != http.StatusUnprocessableEntity {
		t.Errorf("unwritable snapshot destination: %d %+v", code, eb)
	}
}

// TestHealthzCounters: the counter block reflects traffic, including
// the stream section when a learner is attached.
func TestHealthzCounters(t *testing.T) {
	ts, _, _, sessions := newOnlineServer(t)

	var fb struct{}
	postJSON(t, ts.URL+"/v1/feedback", map[string]any{"sessions": sessions[200:210]}, &fb)
	var sc engine.Response
	postJSON(t, ts.URL+"/v1/score", engine.Request{Model: "pbm", Session: &sessions[0]}, &sc)
	var br struct{}
	postJSON(t, ts.URL+"/v1/score/batch", map[string]any{"requests": []engine.Request{{Model: "pbm", Session: &sessions[1]}}}, &br)

	var got struct {
		Status  string           `json:"status"`
		Models  int              `json:"models"`
		Serving MetricsSnapshot  `json:"serving"`
		Stream  *stream.Counters `json:"stream"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &got); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if got.Status != "ok" || got.Models != 1 {
		t.Errorf("healthz header: %+v", got)
	}
	s := got.Serving
	if s.Scores != 1 || s.Batches != 1 || s.BatchRequests != 1 || s.Feedbacks != 1 || s.FeedbackEvents != 10 || s.Requests < 4 {
		t.Errorf("serving counters: %+v", s)
	}
	if got.Stream == nil || got.Stream.Accepted != 10 {
		t.Errorf("stream counters: %+v", got.Stream)
	}

	// Without a learner the stream block is absent.
	plain, _, _ := newTestServer(t)
	raw, err := http.Get(plain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	var generic map[string]any
	if err := json.NewDecoder(raw.Body).Decode(&generic); err != nil {
		t.Fatal(err)
	}
	if _, ok := generic["stream"]; ok {
		t.Errorf("stream counters leaked without a learner: %v", generic)
	}
}

// TestSnapshotExportGet covers the replica-sync surface: GET export
// with ETag (the resolved name@version), Content-Length, and
// If-None-Match → 304 until the served version moves.
func TestSnapshotExportGet(t *testing.T) {
	ts, eng, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/v1/models/pbm/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: %d (%s)", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"pbm@1"` {
		t.Fatalf("ETag = %q, want %q", etag, `"pbm@1"`)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("Content-Length %q, body is %d bytes", cl, len(body))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// The exported bytes are a loadable artifact.
	e2 := engine.New()
	if _, err := e2.LoadSnapshot("", bytes.NewReader(body)); err != nil {
		t.Fatalf("exported artifact does not load: %v", err)
	}

	// Conditional poll: unchanged version → 304 with no body.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/models/pbm/snapshot", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: %d, want 304", resp2.StatusCode)
	}
	if len(b2) != 0 {
		t.Fatalf("304 carried %d body bytes", len(b2))
	}
	if resp2.Header.Get("ETag") != etag {
		t.Fatalf("304 ETag = %q, want %q", resp2.Header.Get("ETag"), etag)
	}

	// Install a new version: the same conditional poll now gets fresh
	// bytes and a new tag.
	if _, err := eng.Fit("pbm", testSessions(100), engine.Iterations(3)); err != nil {
		t.Fatal(err)
	}
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-swap conditional GET: %d, want 200", resp3.StatusCode)
	}
	if got := resp3.Header.Get("ETag"); got != `"pbm@2"` {
		t.Fatalf("post-swap ETag = %q, want %q", got, `"pbm@2"`)
	}

	// Unknown model → 404.
	resp4, err := http.Get(ts.URL + "/v1/models/bogus/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model GET: %d, want 404", resp4.StatusCode)
	}

	// Version-pinned export stays addressable after the swap.
	resp5, err := http.Get(ts.URL + "/v1/models/pbm@1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp5.Body)
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusOK || resp5.Header.Get("ETag") != `"pbm@1"` {
		t.Fatalf("pinned export: %d / ETag %q", resp5.StatusCode, resp5.Header.Get("ETag"))
	}
}

func TestMatchesETag(t *testing.T) {
	cases := []struct {
		header, etag string
		want         bool
	}{
		{"", `"a@1"`, false},
		{`"a@1"`, `"a@1"`, true},
		{`"a@2"`, `"a@1"`, false},
		{"*", `"a@1"`, true},
		{`"x", "a@1"`, `"a@1"`, true},
		{`W/"a@1"`, `"a@1"`, true},
	}
	for _, c := range cases {
		if got := matchesETag(c.header, c.etag); got != c.want {
			t.Errorf("matchesETag(%q, %q) = %v, want %v", c.header, c.etag, got, c.want)
		}
	}
}
