package server

import "sync/atomic"

// metrics is the server's expvar-style counter block: lock-free atomic
// counters bumped on the hot paths and snapshotted into JSON on
// /healthz. Counting is deliberately coarse — requests, batch fan-in,
// feedback outcomes, admin actions — the numbers a load generator or a
// dashboard needs to tell "serving and learning" from "quietly broken".
type metrics struct {
	requests           atomic.Uint64 // every HTTP request routed
	scores             atomic.Uint64 // POST /v1/score calls
	batches            atomic.Uint64 // POST /v1/score/batch calls
	batchRequests      atomic.Uint64 // requests inside those batches
	optimizes          atomic.Uint64 // POST /v1/optimize calls
	optimizeCandidates atomic.Uint64 // candidates scored inside those calls
	feedbacks          atomic.Uint64 // POST /v1/feedback calls
	feedbackEvents     atomic.Uint64 // events inside those calls (pre-ingest)
	loads              atomic.Uint64 // snapshot hot-swaps
	rollbacks          atomic.Uint64
	snapshots          atomic.Uint64 // snapshot exports
	errors             atomic.Uint64 // non-2xx responses written
}

// MetricsSnapshot is the wire form of the serving counters on
// GET /healthz.
type MetricsSnapshot struct {
	Requests           uint64 `json:"requests"`
	Scores             uint64 `json:"scores"`
	Batches            uint64 `json:"batches"`
	BatchRequests      uint64 `json:"batch_requests"`
	Optimizes          uint64 `json:"optimizes"`
	OptimizeCandidates uint64 `json:"optimize_candidates"`
	Feedbacks          uint64 `json:"feedbacks"`
	FeedbackEvents     uint64 `json:"feedback_events"`
	Loads              uint64 `json:"loads"`
	Rollbacks          uint64 `json:"rollbacks"`
	Snapshots          uint64 `json:"snapshots"`
	Errors             uint64 `json:"errors"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Requests:           m.requests.Load(),
		Scores:             m.scores.Load(),
		Batches:            m.batches.Load(),
		BatchRequests:      m.batchRequests.Load(),
		Optimizes:          m.optimizes.Load(),
		OptimizeCandidates: m.optimizeCandidates.Load(),
		Feedbacks:          m.feedbacks.Load(),
		FeedbackEvents:     m.feedbackEvents.Load(),
		Loads:              m.loads.Load(),
		Rollbacks:          m.rollbacks.Load(),
		Snapshots:          m.snapshots.Load(),
		Errors:             m.errors.Load(),
	}
}
