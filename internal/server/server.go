// Package server is the HTTP/JSON serving surface over the scoring
// engine: the serve-online half of the train-offline / serve-online
// split — and, with an attached online learner, the ingest surface
// that closes the loop. cmd/microserve wires it to a listener; the
// handlers are exported through New so tests drive them with
// net/http/httptest.
//
// Routes:
//
//	GET  /healthz                    — liveness, model count, serving + stream + wal counters
//	GET  /metrics                    — the same counters as Prometheus text exposition
//	GET  /v1/models                  — metadata of every installed version
//	POST /v1/score                   — score one engine.Request
//	POST /v1/score/batch             — score a request slice concurrently
//	POST /v1/optimize                — rank candidate snippets in one amortised pass
//	POST /v1/feedback                — ingest click feedback (single + batch)
//	POST /v1/models/{name}/load      — hot-swap a snapshot artifact in
//	POST /v1/models/{name}/rollback  — move the latest pointer back
//	POST /v1/models/{name}/snapshot  — export an installed version to disk
//	GET  /debug/traces               — recent slow-request traces (when tracing is on)
//
// Every response carries an X-Request-ID header — the client's, when
// supplied, else a freshly minted process-unique ID — and every
// request is timed into a per-route latency histogram exposed on
// /metrics (see obs.go for the middleware).
//
// Scoring endpoints speak engine.Request / engine.Response verbatim
// (the engine types carry the wire tags); per-request failures travel
// in Response.Error, never silently as "{}". Feedback is accepted into
// the learner's bounded sink: the response reports accepted / dropped
// / invalid counts, and saturation surfaces as 429 so load generators
// can back off.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clickmodel"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server/binproto"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/wal"
)

// maxBodyBytes bounds request bodies; a batch of tens of thousands of
// snippet requests fits comfortably, an accidental upload does not.
const maxBodyBytes = 32 << 20

// maxBatchItems bounds the fan-in of one batch call (score requests in
// /v1/score/batch, events in /v1/feedback). Larger batches get 413 and
// should be split client-side; the bound keeps one request from
// monopolising the worker pool or the ingest buffers.
const maxBatchItems = 10000

// Server serves one Engine (and optionally one online Learner) over
// HTTP.
type Server struct {
	eng        *engine.Engine
	learner    *stream.Learner
	wal        *wal.WAL
	limiter    *rateLimiter
	limiterTTL *time.Duration // nil = limiter default
	mux        *http.ServeMux
	log        *log.Logger
	met        metrics

	// httpH distributes request latency per route class (nanosecond
	// samples, exposed in seconds); ring and bin are the optional
	// tracing and binary-protocol attachments (see obs.go).
	httpH [numRoutes]obs.Histogram
	ring  *obs.TraceRing
	bin   *binproto.Server
}

// Option configures a Server at construction time.
type Option func(*Server)

// WithLearner attaches an online learning loop: POST /v1/feedback
// ingests into it and /healthz reports its counters. Without it the
// feedback endpoint answers 503.
func WithLearner(l *stream.Learner) Option {
	return func(s *Server) { s.learner = l }
}

// WithWAL surfaces the feedback log's durability counters on /healthz
// and /metrics. The server only observes the WAL — appends happen
// inside the learner's ingest path, and the caller owns Close.
func WithWAL(w *wal.WAL) Option {
	return func(s *Server) { s.wal = w }
}

// WithFeedbackRateLimit throttles POST /v1/feedback per client to
// eventsPerSec sustained with the given burst. Over-budget requests
// get 429 with a Retry-After hint before any event reaches the sink.
func WithFeedbackRateLimit(eventsPerSec float64, burst int) Option {
	return func(s *Server) {
		if eventsPerSec > 0 {
			s.limiter = newRateLimiter(eventsPerSec, burst)
		}
	}
}

// WithFeedbackClientTTL sets how long an idle client's rate-limit
// bucket is remembered before the sweep evicts it (default 10m; <= 0
// disables idle eviction, leaving only full-bucket reclamation). Order
// with WithFeedbackRateLimit does not matter.
func WithFeedbackClientTTL(ttl time.Duration) Option {
	return func(s *Server) { s.limiterTTL = &ttl }
}

// New returns a Server routing to eng. logger may be nil (discards).
func New(eng *engine.Engine, logger *log.Logger, opts ...Option) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{eng: eng, mux: http.NewServeMux(), log: logger}
	for _, opt := range opts {
		opt(s)
	}
	if s.limiter != nil && s.limiterTTL != nil {
		s.limiter.ttl = *s.limiterTTL
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("POST /v1/score/batch", s.handleScoreBatch)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/feedback", s.handleFeedback)
	s.mux.HandleFunc("POST /v1/models/{name}/load", s.handleLoad)
	s.mux.HandleFunc("POST /v1/models/{name}/rollback", s.handleRollback)
	s.mux.HandleFunc("POST /v1/models/{name}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/models/{name}/snapshot", s.handleSnapshotGet)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return s
}

// pooledEncoder is a reusable JSON encode buffer with its encoder
// permanently bound to it, so the per-response path allocates neither.
type pooledEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	pe := &pooledEncoder{}
	pe.enc = json.NewEncoder(&pe.buf)
	pe.enc.SetEscapeHTML(false)
	return pe
}}

// maxPooledEncodeBuf keeps one giant batch response from pinning a
// multi-megabyte buffer in the pool forever.
const maxPooledEncodeBuf = 1 << 20

// writeJSON sends one JSON document with the given status. Encoding
// lands in a pooled buffer first, so serving steady state allocates
// no encoder or growth churn per response — and an encode failure can
// still become a clean 500, because nothing has been written to the
// wire yet.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if status >= 400 {
		s.met.errors.Add(1)
	}
	pe := encPool.Get().(*pooledEncoder)
	pe.buf.Reset()
	if err := pe.enc.Encode(v); err != nil {
		if pe.buf.Cap() <= maxPooledEncodeBuf {
			encPool.Put(pe)
		}
		s.met.errors.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"response encoding failed"}`+"\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(pe.buf.Bytes())
	if pe.buf.Cap() <= maxPooledEncodeBuf {
		encPool.Put(pe)
	}
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody unmarshals a bounded JSON request body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// healthzBody is the GET /healthz wire shape: liveness, build and
// uptime identity, the serving counters, the stream / WAL / rate-limit
// blocks when those subsystems are attached, and — when the engine is
// instrumented — the per-model CTR drift block comparing each serving
// version's live predicted-CTR distribution against the distribution
// pinned when it was published.
type healthzBody struct {
	Status        string               `json:"status"`
	Build         obs.BuildInfo        `json:"build"`
	UptimeSeconds float64              `json:"uptime_seconds"`
	Models        int                  `json:"models"`
	Serving       MetricsSnapshot      `json:"serving"`
	Stream        *stream.Counters     `json:"stream,omitempty"`
	WAL           *wal.Counters        `json:"wal,omitempty"`
	RateLimit     *RateLimitSnapshot   `json:"ratelimit,omitempty"`
	Drift         []engine.DriftStatus `json:"drift,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthzBody{
		Status:        "ok",
		Build:         obs.Build(),
		UptimeSeconds: obs.Uptime().Seconds(),
		Models:        s.eng.ModelCount(),
		Serving:       s.met.snapshot(),
	}
	if s.learner != nil {
		c := s.learner.Counters()
		body.Stream = &c
	}
	if s.wal != nil {
		c := s.wal.Counters()
		body.WAL = &c
	}
	if s.limiter != nil {
		rl := s.limiter.snapshot()
		body.RateLimit = &rl
	}
	if s.eng.Observer() != nil {
		body.Drift = s.eng.Drift()
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Models []engine.ModelInfo `json:"models"`
	}{s.eng.Models()})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	s.met.scores.Add(1)
	ti := traceFrom(r.Context())
	t0 := time.Now()
	var req engine.Request
	if !s.decodeBody(w, r, &req) {
		return
	}
	ti.stage("decode", t0)
	t1 := time.Now()
	resp, err := s.eng.ScoreCTR(r.Context(), req)
	ti.stage("score", t1)
	ti.shape(resp.Model, 1)
	if err != nil {
		// Model-resolution failures are addressing errors (404); evidence
		// and validation failures are semantic (422). resp carries Error.
		status := http.StatusUnprocessableEntity
		if errors.Is(err, engine.ErrNoModel) {
			status = http.StatusNotFound
		}
		s.writeJSON(w, status, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// batchRequest / batchResponse are the /v1/score/batch wire shapes.
type batchRequest struct {
	Requests []engine.Request `json:"requests"`
}

type batchResponse struct {
	Responses []engine.Response `json:"responses"`
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	s.met.batches.Add(1)
	ti := traceFrom(r.Context())
	t0 := time.Now()
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ti.stage("decode", t0)
	if len(req.Requests) > maxBatchItems {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d requests exceeds the %d limit; split it", len(req.Requests), maxBatchItems)
		return
	}
	s.met.batchRequests.Add(uint64(len(req.Requests)))
	t1 := time.Now()
	resps := s.eng.ScoreBatch(r.Context(), req.Requests)
	ti.stage("score", t1)
	if len(req.Requests) > 0 {
		ti.shape(req.Requests[0].Model, len(req.Requests))
	}
	s.writeJSON(w, http.StatusOK, batchResponse{Responses: resps})
}

// feedbackRequest is the POST /v1/feedback wire shape: one session
// and/or snippet, or batches of both.
type feedbackRequest struct {
	Session  *clickmodel.Session   `json:"session,omitempty"`
	Sessions []clickmodel.Session  `json:"sessions,omitempty"`
	Snippet  *stream.SnippetEvent  `json:"snippet,omitempty"`
	Snippets []stream.SnippetEvent `json:"snippets,omitempty"`
}

// feedbackResponse reports what happened to each event: queued into
// the learner, dropped on saturation, or rejected as malformed.
type feedbackResponse struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
	Invalid  int `json:"invalid"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	s.met.feedbacks.Add(1)
	if s.learner == nil {
		s.writeError(w, http.StatusServiceUnavailable,
			"online learning is not enabled on this server (start microserve with -online)")
		return
	}
	ti := traceFrom(r.Context())
	t0 := time.Now()
	var req feedbackRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ti.stage("decode", t0)
	total := len(req.Sessions) + len(req.Snippets)
	if req.Session != nil {
		total++
	}
	if req.Snippet != nil {
		total++
	}
	if total == 0 {
		s.writeError(w, http.StatusBadRequest, "feedback needs a session or a snippet")
		return
	}
	if total > maxBatchItems {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			"feedback batch of %d events exceeds the %d limit; split it", total, maxBatchItems)
		return
	}
	if s.limiter != nil {
		if ok, retryAfter := s.limiter.allowN(clientKey(r), total); !ok {
			secs := int64((retryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			s.writeError(w, http.StatusTooManyRequests,
				"feedback rate limit exceeded; retry after %ds", secs)
			return
		}
	}
	s.met.feedbackEvents.Add(uint64(total))
	ti.shape("", total)
	t1 := time.Now()

	var out feedbackResponse
	ingest := func(ev stream.Event) {
		switch err := s.learner.Ingest(ev); {
		case err == nil:
			out.Accepted++
		case errors.Is(err, stream.ErrDropped):
			out.Dropped++
		default:
			out.Invalid++
		}
	}
	if req.Session != nil {
		ingest(stream.Event{Session: req.Session})
	}
	for i := range req.Sessions {
		ingest(stream.Event{Session: &req.Sessions[i]})
	}
	if req.Snippet != nil {
		ingest(stream.Event{Snippet: req.Snippet})
	}
	for i := range req.Snippets {
		ingest(stream.Event{Snippet: &req.Snippets[i]})
	}

	ti.stage("ingest", t1)
	// All-dropped is backpressure, not success: tell the producer to
	// slow down. Partial acceptance stays 200 with the counts.
	status := http.StatusOK
	if out.Accepted == 0 && out.Dropped > 0 {
		status = http.StatusTooManyRequests
	}
	s.writeJSON(w, status, out)
}

// loadRequest is the admin body of POST /v1/models/{name}/load: the
// snapshot artifact to swap in, by file path on the serving host.
type loadRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req loadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		s.writeError(w, http.StatusBadRequest, "load needs a snapshot path")
		return
	}
	f, err := os.Open(req.Path)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "open snapshot: %v", err)
		return
	}
	defer f.Close()
	info, err := s.eng.LoadSnapshot(name, f)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "load snapshot: %v", err)
		return
	}
	s.met.loads.Add(1)
	s.log.Printf("hot-swapped %s from %s (%d params)", info.Ref(), req.Path, info.Params)
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, err := s.eng.Rollback(name)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "rollback: %v", err)
		return
	}
	s.met.rollbacks.Add(1)
	s.log.Printf("rolled %s back to %s", name, info.Ref())
	s.writeJSON(w, http.StatusOK, info)
}

// snapshotRequest / snapshotResponse are the wire shapes of
// POST /v1/models/{name}/snapshot: export an installed version (the
// path accepts "name" or "name@version") as an artifact on the serving
// host — how an online-learned model is persisted back to disk.
type snapshotRequest struct {
	Path string `json:"path"`
}

type snapshotResponse struct {
	Model string `json:"model"`
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req snapshotRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		s.writeError(w, http.StatusBadRequest, "snapshot needs a destination path")
		return
	}
	var n int64
	err := snapshot.WriteFileAtomic(req.Path, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		err := s.eng.SaveSnapshot(name, cw)
		n = cw.n
		return err
	})
	switch {
	case err == nil:
	case errors.Is(err, engine.ErrNoModel):
		s.writeError(w, http.StatusNotFound, "snapshot: %v", err)
		return
	default:
		s.writeError(w, http.StatusUnprocessableEntity, "snapshot: %v", err)
		return
	}
	s.met.snapshots.Add(1)
	s.log.Printf("exported %s to %s (%d bytes)", name, req.Path, n)
	s.writeJSON(w, http.StatusOK, snapshotResponse{Model: name, Path: req.Path, Bytes: n})
}

// handleSnapshotGet streams the referenced model's artifact over the
// wire (GET /v1/models/{name}/snapshot, path accepts "name" or
// "name@version"). The response carries a strong ETag — the resolved
// name@version, which uniquely identifies immutable installed
// parameters — plus Content-Length, and honours If-None-Match with
// 304: a replica polling for changes pays two table lookups and zero
// serialisation until the version actually moves.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, err := s.eng.Stat(name)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "snapshot: %v", err)
		return
	}
	etag := `"` + info.Ref() + `"`
	w.Header().Set("ETag", etag)
	if matchesETag(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// Serialise the exact version the probe saw: a hot swap between
	// Stat and export must not ship bytes that contradict the ETag.
	var buf bytes.Buffer
	if err := s.eng.SaveSnapshot(info.Ref(), &buf); err != nil {
		w.Header().Del("ETag")
		status := http.StatusUnprocessableEntity
		if errors.Is(err, engine.ErrNoModel) {
			status = http.StatusNotFound
		}
		s.writeError(w, status, "snapshot: %v", err)
		return
	}
	s.met.snapshots.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// matchesETag implements the If-None-Match grammar the export needs:
// "*", or a comma-separated list of entity tags, compared weakly (a
// W/ prefix on either side is ignored — RFC 9110's comparison for
// If-None-Match).
func matchesETag(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, part := range strings.Split(header, ",") {
		if strings.TrimPrefix(strings.TrimSpace(part), "W/") == etag {
			return true
		}
	}
	return false
}

// countingWriter reports how many artifact bytes an export produced.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
