// Package server is the HTTP/JSON serving surface over the scoring
// engine: the serve-online half of the train-offline / serve-online
// split. cmd/microserve wires it to a listener; the handlers are
// exported through New so tests drive them with net/http/httptest.
//
// Routes:
//
//	GET  /healthz                  — liveness + installed model count
//	GET  /v1/models                — metadata of every installed version
//	POST /v1/score                 — score one engine.Request
//	POST /v1/score/batch           — score a request slice concurrently
//	POST /v1/models/{name}/load    — hot-swap a snapshot artifact in
//	POST /v1/models/{name}/rollback— move the latest pointer back
//
// Scoring endpoints speak engine.Request / engine.Response verbatim
// (the engine types carry the wire tags); per-request failures travel
// in Response.Error, never silently as "{}".
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"

	"repro/internal/engine"
)

// maxBodyBytes bounds request bodies; a batch of tens of thousands of
// snippet requests fits comfortably, an accidental upload does not.
const maxBodyBytes = 32 << 20

// Server serves one Engine over HTTP.
type Server struct {
	eng *engine.Engine
	mux *http.ServeMux
	log *log.Logger
}

// New returns a Server routing to eng. logger may be nil (discards).
func New(eng *engine.Engine, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{eng: eng, mux: http.NewServeMux(), log: logger}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/score", s.handleScore)
	s.mux.HandleFunc("POST /v1/score/batch", s.handleScoreBatch)
	s.mux.HandleFunc("POST /v1/models/{name}/load", s.handleLoad)
	s.mux.HandleFunc("POST /v1/models/{name}/rollback", s.handleRollback)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// pooledEncoder is a reusable JSON encode buffer with its encoder
// permanently bound to it, so the per-response path allocates neither.
type pooledEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	pe := &pooledEncoder{}
	pe.enc = json.NewEncoder(&pe.buf)
	pe.enc.SetEscapeHTML(false)
	return pe
}}

// maxPooledEncodeBuf keeps one giant batch response from pinning a
// multi-megabyte buffer in the pool forever.
const maxPooledEncodeBuf = 1 << 20

// writeJSON sends one JSON document with the given status. Encoding
// lands in a pooled buffer first, so serving steady state allocates
// no encoder or growth churn per response — and an encode failure can
// still become a clean 500, because nothing has been written to the
// wire yet.
func writeJSON(w http.ResponseWriter, status int, v any) {
	pe := encPool.Get().(*pooledEncoder)
	pe.buf.Reset()
	if err := pe.enc.Encode(v); err != nil {
		if pe.buf.Cap() <= maxPooledEncodeBuf {
			encPool.Put(pe)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"response encoding failed"}`+"\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(pe.buf.Bytes())
	if pe.buf.Cap() <= maxPooledEncodeBuf {
		encPool.Put(pe)
	}
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody unmarshals a bounded JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}{"ok", s.eng.ModelCount()})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Models []engine.ModelInfo `json:"models"`
	}{s.eng.Models()})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req engine.Request
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.eng.ScoreCTR(r.Context(), req)
	if err != nil {
		// Model-resolution failures are addressing errors (404); evidence
		// and validation failures are semantic (422). resp carries Error.
		status := http.StatusUnprocessableEntity
		if errors.Is(err, engine.ErrNoModel) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRequest / batchResponse are the /v1/score/batch wire shapes.
type batchRequest struct {
	Requests []engine.Request `json:"requests"`
}

type batchResponse struct {
	Responses []engine.Response `json:"responses"`
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resps := s.eng.ScoreBatch(r.Context(), req.Requests)
	writeJSON(w, http.StatusOK, batchResponse{Responses: resps})
}

// loadRequest is the admin body of POST /v1/models/{name}/load: the
// snapshot artifact to swap in, by file path on the serving host.
type loadRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req loadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "load needs a snapshot path")
		return
	}
	f, err := os.Open(req.Path)
	if err != nil {
		writeError(w, http.StatusBadRequest, "open snapshot: %v", err)
		return
	}
	defer f.Close()
	info, err := s.eng.LoadSnapshot(name, f)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "load snapshot: %v", err)
		return
	}
	s.log.Printf("hot-swapped %s from %s (%d params)", info.Ref(), req.Path, info.Params)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, err := s.eng.Rollback(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "rollback: %v", err)
		return
	}
	s.log.Printf("rolled %s back to %s", name, info.Ref())
	writeJSON(w, http.StatusOK, info)
}
