package binproto

import (
	"context"
	"math"
	"net"
	"strconv"
	"testing"
)

func testOptimizeRequest(n int) OptimizeRequest {
	cands := make([][]string, n)
	for i := range cands {
		edit := make([]string, len(microLines))
		copy(edit, microLines)
		edit[i%len(edit)] = "variant phrase " + strconv.Itoa(i)
		cands[i] = edit
	}
	// One candidate that genuinely beats the base: it doubles down on
	// the model's high-relevance phrases.
	cands[0] = []string{"find cheap flights", "find cheap flights to rome", "flights"}
	return OptimizeRequest{ID: "o1", Model: "micro", MaxN: 2, Lines: microLines, Candidates: cands}
}

func TestOptimizeRoundTrip(t *testing.T) {
	eng := testEngine(t)
	srv := NewServer(eng, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(context.Background(), c)
		}
	}()
	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	req := testOptimizeRequest(16)
	all := append([][]string{req.Lines}, req.Candidates...)
	want, _, err := eng.ScoreCandidates(context.Background(), req.Model, all, req.MaxN, nil)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ { // reuse the same connection
		res, err := cli.Optimize(req)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Err != "" {
			t.Fatalf("round %d: result error %q", round, res.Err)
		}
		if res.ID != "o1" || res.Model != "micro" {
			t.Errorf("round %d: echo (%q, %q)", round, res.ID, res.Model)
		}
		if math.Abs(res.BaseCTR-want[0].CTR) > 1e-15 || math.Abs(res.BaseScore-want[0].Score) > 1e-15 {
			t.Errorf("round %d: base (%v, %v), want (%v, %v)", round, res.BaseCTR, res.BaseScore, want[0].CTR, want[0].Score)
		}
		if len(res.Ranked) != len(req.Candidates) {
			t.Fatalf("round %d: %d ranked, want %d", round, len(res.Ranked), len(req.Candidates))
		}
		argmax := 0
		for i := range req.Candidates {
			if want[i+1].CTR > want[argmax+1].CTR {
				argmax = i
			}
		}
		for rank, rc := range res.Ranked {
			if math.Abs(rc.CTR-want[rc.Index+1].CTR) > 1e-15 || math.Abs(rc.Score-want[rc.Index+1].Score) > 1e-15 {
				t.Errorf("round %d rank %d: cand %d scored (%v, %v), want (%v, %v)",
					round, rank, rc.Index, rc.CTR, rc.Score, want[rc.Index+1].CTR, want[rc.Index+1].Score)
			}
			if rank > 0 && res.Ranked[rank-1].CTR < rc.CTR {
				t.Errorf("round %d: ranking broken at %d", round, rank)
			}
		}
		switch {
		case want[argmax+1].CTR > want[0].CTR:
			if res.Best != argmax {
				t.Errorf("round %d: best %d, want argmax %d", round, res.Best, argmax)
			}
		default:
			if res.Best != -1 {
				t.Errorf("round %d: nothing beats base but best is %d", round, res.Best)
			}
		}
	}

	// top_k bounds the ranking; the best index is unchanged.
	req.TopK = 3
	res, err := cli.Optimize(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 3 {
		t.Fatalf("top_k=3 returned %d ranked", len(res.Ranked))
	}

	// A semantic failure rides inside the result frame and the
	// connection stays usable afterwards.
	bad := req
	bad.Model = "nope"
	res, err = cli.Optimize(bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == "" {
		t.Error("unknown model produced no result error")
	}
	if res, err = cli.Optimize(req); err != nil || res.Err != "" {
		t.Fatalf("connection unusable after semantic failure: %v / %q", err, res.Err)
	}
}

// TestOptimizeEncodeDecode pins the optimize payload codec round trip
// without a connection.
func TestOptimizeEncodeDecode(t *testing.T) {
	req := testOptimizeRequest(5)
	req.TopK = 2
	payload, err := AppendOptimize(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	st := &connState{}
	id, model, maxN, topK, err := st.decodeOptimize(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != req.ID || model != req.Model || maxN != req.MaxN || topK != req.TopK {
		t.Fatalf("decoded (%q, %q, %d, %d)", id, model, maxN, topK)
	}
	if len(st.opt.cands) != len(req.Candidates)+1 {
		t.Fatalf("%d decoded snippets, want %d", len(st.opt.cands), len(req.Candidates)+1)
	}
	for i, line := range req.Lines {
		if st.opt.cands[0][i] != line {
			t.Fatalf("base line %d: %q", i, st.opt.cands[0][i])
		}
	}
	for k, cand := range req.Candidates {
		for i, line := range cand {
			if st.opt.cands[k+1][i] != line {
				t.Fatalf("cand %d line %d: %q, want %q", k, i, st.opt.cands[k+1][i], line)
			}
		}
	}

	// Truncated payloads fail cleanly, never panic.
	for cut := 1; cut < len(payload); cut += 7 {
		if _, _, _, _, err := st.decodeOptimize(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

// TestProcessOptimizeZeroAlloc backs the //mb:noalloc annotations on
// processOptimize and decodeOptimize: a warm optimize cycle — decode,
// candidate-set score, rank, encode — performs zero heap allocations.
func TestProcessOptimizeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates defer records; alloc counts only hold uninstrumented")
	}
	eng := testEngine(t)
	srv := NewServer(eng, nil)
	req := testOptimizeRequest(32)
	req.TopK = 4
	payload, err := AppendOptimize(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	st := &connState{}
	ctx := context.Background()
	for i := 0; i < 4; i++ { // warm the arenas
		if err := srv.processOptimize(ctx, st, payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := srv.processOptimize(ctx, st, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm optimize cycle allocates %v/op, want 0", allocs)
	}
}
