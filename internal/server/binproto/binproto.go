// Package binproto is the length-prefixed binary scoring protocol: the
// allocation-free alternative to the JSON surface for high-throughput
// scoring clients (cmd/loadgen -proto binary, embedded rankers). It
// shares a listener with the HTTP server — Mux sniffs the first bytes
// of each accepted connection and routes "MBSP" traffic here, leaving
// everything else to net/http.
//
// # Framing
//
// Every frame is a fixed 12-byte header followed by a length-prefixed
// payload, all integers little-endian:
//
//	offset  size  field
//	0       4     magic "MBSP"
//	4       1     protocol version (1)
//	5       1     frame type (1 score, 2 result, 3 error,
//	              4 optimize, 5 optimize result)
//	6       2     request tag (echoed in the response frame)
//	8       4     payload length (≤ MaxPayload)
//
// The request tag is the frame-level request ID: clients stamp each
// outgoing frame with an arbitrary u16 and the server copies it into
// the answering result (or error) frame header, so a client can
// correlate responses without decoding the payload. Zero is a valid
// tag — these bytes were reserved-as-zero in earlier builds, so an
// old client that leaves them zero keeps working unchanged.
//
// A score frame carries a request batch; the server answers each with
// exactly one result frame carrying the response batch in request
// order, then reads the next frame — a strict request/response cycle
// per connection (pipeline by opening more connections). An optimize
// frame carries one query × N candidate snippets and is answered with
// exactly one optimize-result frame. A malformed frame is answered
// with an error frame and the connection closes: framing errors are
// not recoverable mid-stream.
//
// # Batch encoding
//
// Strings are u16 length + bytes ("str16"). A score payload is:
//
//	u32 count
//	per request:
//	  str16 id, str16 model, u8 maxN, u8 evidence kind
//	  kind 1 (snippet): u16 nlines, nlines × str16
//	  kind 2 (session): str16 query, u16 ndocs, ndocs × str16,
//	                    ⌈ndocs/8⌉ click bits (LSB-first)
//
// A result payload is:
//
//	u32 count
//	per response:
//	  str16 id, str16 model, u32 version, f64 ctr, f64 score,
//	  u16 npositions, npositions × f64, str16 error
//
// An optimize payload is one candidate-set scoring call (the binary
// analogue of POST /v1/optimize; candidates are always explicit —
// server-side generation is a JSON-surface affordance):
//
//	str16 id, str16 model, u8 maxN, u16 topK (0 = all)
//	u16 nlines, nlines × str16              (base snippet)
//	u32 ncands
//	per candidate: u16 nlines, nlines × str16
//
// An optimize-result payload is:
//
//	str16 id, str16 model, u32 version
//	f64 base ctr, f64 base score
//	u32 best (0 = the base wins, k = candidate k−1)
//	u32 nranked
//	per ranked (best first): u32 candidate index, f64 ctr, f64 score
//	str16 error
//
// An error payload is a single str16 message.
//
// The server's per-connection read, decode, score and encode paths
// reuse connection-owned buffers and arenas; after warm-up a score
// cycle performs zero heap allocations (request strings are unsafe
// views into the frame buffer, valid only until the next frame — the
// engine does not retain them).
package binproto

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"repro/internal/engine"
)

// Protocol constants. MaxPayload matches the HTTP surface's body
// bound and MaxBatch its batch bound, so a client hitting one limit
// hits the same limit on either protocol.
const (
	Version    = 1
	HeaderSize = 12
	MaxPayload = 32 << 20
	MaxBatch   = 10000
	maxStr     = 1<<16 - 1
)

// Magic is the 4-byte frame prefix; Mux sniffs it to split binary
// traffic from HTTP on one listener.
var Magic = [4]byte{'M', 'B', 'S', 'P'}

// Frame types.
const (
	FrameScore          = 1 // client → server: request batch
	FrameResult         = 2 // server → client: response batch
	FrameError          = 3 // server → client: connection-fatal message
	FrameOptimize       = 4 // client → server: one query × N candidates
	FrameOptimizeResult = 5 // server → client: ranked candidate set
)

// Evidence kinds inside a score frame.
const (
	evLines   = 1
	evSession = 2
)

// IsMagic reports whether b begins a binary-protocol frame.
func IsMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == Magic[0] && b[1] == Magic[1] && b[2] == Magic[2] && b[3] == Magic[3]
}

// putHeader writes a frame header with a zero request tag into the
// first HeaderSize bytes of b.
func putHeader(b []byte, ftype byte, payloadLen int) {
	putHeaderTag(b, ftype, 0, payloadLen)
}

// putHeaderTag writes a frame header carrying a request tag. Clients
// pick the tag; the server echoes the request frame's tag in the
// answering result or error frame.
func putHeaderTag(b []byte, ftype byte, tag uint16, payloadLen int) {
	copy(b, Magic[:])
	b[4] = Version
	b[5] = ftype
	binary.LittleEndian.PutUint16(b[6:8], tag)
	binary.LittleEndian.PutUint32(b[8:12], uint32(payloadLen))
}

// parseHeader validates a frame header and returns its type, request
// tag and payload length.
func parseHeader(b []byte) (ftype byte, tag uint16, n int, err error) {
	if !IsMagic(b) {
		return 0, 0, 0, fmt.Errorf("binproto: bad frame magic %q", b[:4])
	}
	if b[4] != Version {
		return 0, 0, 0, fmt.Errorf("binproto: protocol version %d, this build speaks %d", b[4], Version)
	}
	tag = binary.LittleEndian.Uint16(b[6:8])
	n = int(binary.LittleEndian.Uint32(b[8:12]))
	if n > MaxPayload {
		return 0, 0, 0, fmt.Errorf("binproto: %d-byte payload exceeds the %d limit", n, MaxPayload)
	}
	return b[5], tag, n, nil
}

// byteString is a zero-copy view of b. The caller owns the aliasing
// contract: the string is valid only while b's backing array is.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// --- append-side primitives (shared by server responses and client
// requests; all grow their destination and return it) ---

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendF64(b []byte, v float64) []byte {
	u := math.Float64bits(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func appendStr16(b []byte, s string) ([]byte, error) {
	if len(s) > maxStr {
		return b, fmt.Errorf("binproto: %d-byte string exceeds the %d limit", len(s), maxStr)
	}
	b = appendU16(b, uint16(len(s)))
	return append(b, s...), nil
}

// AppendRequests encodes a score-frame payload (count + each request)
// onto out. It is the client-side encoder; the server decodes the
// exact inverse.
func AppendRequests(out []byte, reqs []engine.Request) ([]byte, error) {
	if len(reqs) > MaxBatch {
		return out, fmt.Errorf("binproto: batch of %d requests exceeds the %d limit; split it", len(reqs), MaxBatch)
	}
	out = appendU32(out, uint32(len(reqs)))
	var err error
	for i := range reqs {
		req := &reqs[i]
		if out, err = appendStr16(out, req.ID); err != nil {
			return out, err
		}
		if out, err = appendStr16(out, req.Model); err != nil {
			return out, err
		}
		maxN := req.MaxN
		if maxN < 0 || maxN > 255 {
			return out, fmt.Errorf("binproto: request %d: max_n %d out of range", i, maxN)
		}
		out = append(out, byte(maxN))
		switch {
		case req.Session != nil:
			s := req.Session
			out = append(out, evSession)
			if out, err = appendStr16(out, s.Query); err != nil {
				return out, err
			}
			if len(s.Docs) > maxStr {
				return out, fmt.Errorf("binproto: request %d: %d docs exceed the %d limit", i, len(s.Docs), maxStr)
			}
			out = appendU16(out, uint16(len(s.Docs)))
			for _, d := range s.Docs {
				if out, err = appendStr16(out, d); err != nil {
					return out, err
				}
			}
			bits := make([]byte, (len(s.Docs)+7)/8)
			for j, c := range s.Clicks {
				if j >= len(s.Docs) {
					break
				}
				if c {
					bits[j/8] |= 1 << (j % 8)
				}
			}
			out = append(out, bits...)
		default:
			out = append(out, evLines)
			if len(req.Lines) > maxStr {
				return out, fmt.Errorf("binproto: request %d: %d lines exceed the %d limit", i, len(req.Lines), maxStr)
			}
			out = appendU16(out, uint16(len(req.Lines)))
			for _, l := range req.Lines {
				if out, err = appendStr16(out, l); err != nil {
					return out, err
				}
			}
		}
	}
	return out, nil
}

// AppendResponses encodes a result-frame payload onto out — the
// server-side encoder.
func AppendResponses(out []byte, resps []engine.Response) ([]byte, error) {
	out = appendU32(out, uint32(len(resps)))
	var err error
	for i := range resps {
		r := &resps[i]
		if out, err = appendStr16(out, r.ID); err != nil {
			return out, err
		}
		if out, err = appendStr16(out, r.Model); err != nil {
			return out, err
		}
		out = appendU32(out, uint32(r.ModelVersion))
		out = appendF64(out, r.CTR)
		out = appendF64(out, r.Score)
		if len(r.Positions) > maxStr {
			return out, fmt.Errorf("binproto: response %d: %d positions exceed the %d limit", i, len(r.Positions), maxStr)
		}
		out = appendU16(out, uint16(len(r.Positions)))
		for _, p := range r.Positions {
			out = appendF64(out, p)
		}
		if out, err = appendStr16(out, r.Error); err != nil {
			return out, err
		}
	}
	return out, nil
}

// OptimizeRequest is the client-side shape of one optimize frame: the
// base snippet plus explicit candidate variants, scored in one
// amortised candidate-set pass on the server.
type OptimizeRequest struct {
	ID    string
	Model string
	// MaxN is the n-gram ceiling (0 takes the server default).
	MaxN int
	// TopK bounds the ranked candidates in the result (0 keeps all).
	TopK int
	// Lines is the base snippet the candidates compete against.
	Lines []string
	// Candidates are the variant snippets to rank.
	Candidates [][]string
}

// appendSnippet encodes u16 nlines + each line as str16.
func appendSnippet(out []byte, lines []string) ([]byte, error) {
	if len(lines) > maxStr {
		return out, fmt.Errorf("binproto: %d lines exceed the %d limit", len(lines), maxStr)
	}
	out = appendU16(out, uint16(len(lines)))
	var err error
	for _, l := range lines {
		if out, err = appendStr16(out, l); err != nil {
			return out, err
		}
	}
	return out, nil
}

// AppendOptimize encodes an optimize-frame payload onto out — the
// client-side encoder; the server decodes the exact inverse.
func AppendOptimize(out []byte, req *OptimizeRequest) ([]byte, error) {
	if len(req.Candidates) > MaxBatch {
		return out, fmt.Errorf("binproto: candidate set of %d exceeds the %d limit; split it", len(req.Candidates), MaxBatch)
	}
	var err error
	if out, err = appendStr16(out, req.ID); err != nil {
		return out, err
	}
	if out, err = appendStr16(out, req.Model); err != nil {
		return out, err
	}
	if req.MaxN < 0 || req.MaxN > 255 {
		return out, fmt.Errorf("binproto: max_n %d out of range", req.MaxN)
	}
	out = append(out, byte(req.MaxN))
	topK := req.TopK
	if topK < 0 {
		topK = 0
	}
	if topK > maxStr {
		return out, fmt.Errorf("binproto: top_k %d out of range", req.TopK)
	}
	out = appendU16(out, uint16(topK))
	if out, err = appendSnippet(out, req.Lines); err != nil {
		return out, err
	}
	out = appendU32(out, uint32(len(req.Candidates)))
	for _, cand := range req.Candidates {
		if out, err = appendSnippet(out, cand); err != nil {
			return out, err
		}
	}
	return out, nil
}

// reader walks a payload with saturating error state: after the first
// underflow every read returns zero and err is set, so decode loops
// need one error check at the end, not one per field.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("binproto: truncated payload at offset %d", r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// str returns a zero-copy view into the payload.
func (r *reader) str() string {
	return byteString(r.bytes(int(r.u16())))
}

// done verifies the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("binproto: %d trailing bytes after payload", len(r.b)-r.off)
	}
	return nil
}
