package binproto

import (
	"context"
	"net"
	"sync"
	"time"
)

// Mux splits one listener between the binary protocol and HTTP by
// sniffing each connection's first four bytes: "MBSP" connections are
// served by the binary server on their own goroutines, everything
// else (an HTTP method line never starts with "MBSP") is surfaced
// through Mux's own net.Listener interface for http.Serve. One port,
// two protocols — deploys choose a wire format per client, not per
// endpoint.
type Mux struct {
	inner net.Listener
	bin   *Server

	ctx    context.Context
	cancel context.CancelFunc

	conns chan net.Conn

	mu     sync.Mutex
	closed bool
	err    error
}

// sniffTimeout bounds how long an accepted connection may sit silent
// before its first bytes classify it; a client that connects and
// sends nothing is dropped rather than pinned forever.
const sniffTimeout = 10 * time.Second

// NewMux starts sniffing inner. Binary connections are handed to bin;
// the returned Mux is the listener to pass to http.Serve for the
// rest. Closing the Mux closes inner and stops the accept loop;
// in-flight binary connections drain on their own goroutines.
func NewMux(inner net.Listener, bin *Server) *Mux {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Mux{
		inner:  inner,
		bin:    bin,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(chan net.Conn),
	}
	go m.acceptLoop()
	return m
}

func (m *Mux) acceptLoop() {
	for {
		c, err := m.inner.Accept()
		if err != nil {
			m.mu.Lock()
			if m.err == nil {
				m.err = err
			}
			m.mu.Unlock()
			m.cancel()
			return
		}
		go m.sniff(c)
	}
}

// sniff classifies one connection and routes it. The read deadline
// covers only the magic bytes; once classified the connection's pace
// belongs to its protocol handler.
func (m *Mux) sniff(c net.Conn) {
	var magic [4]byte
	c.SetReadDeadline(time.Now().Add(sniffTimeout))
	n, err := readAtLeast(c, magic[:])
	c.SetReadDeadline(time.Time{})
	if err != nil && n == 0 {
		c.Close()
		return
	}
	rc := &replayConn{Conn: c, pre: magic[:n]}
	if IsMagic(magic[:n]) {
		m.bin.ServeConn(m.ctx, rc)
		return
	}
	select {
	case m.conns <- rc:
	case <-m.ctx.Done():
		c.Close()
	}
}

// readAtLeast fills buf fully when it can but tolerates a short read
// followed by EOF (a probe that sent fewer than 4 bytes still gets
// classified as non-binary and handed to HTTP, which answers with a
// proper 400).
func readAtLeast(c net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		k, err := c.Read(buf[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Accept implements net.Listener, yielding the non-binary connections.
func (m *Mux) Accept() (net.Conn, error) {
	select {
	case c := <-m.conns:
		return c, nil
	case <-m.ctx.Done():
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.err != nil {
			return nil, m.err
		}
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	err := m.inner.Close()
	m.cancel()
	return err
}

// Addr implements net.Listener.
func (m *Mux) Addr() net.Addr { return m.inner.Addr() }

// replayConn replays the sniffed bytes ahead of the live stream, so
// both protocol handlers see the connection from byte zero.
type replayConn struct {
	net.Conn
	pre []byte
}

func (r *replayConn) Read(p []byte) (int, error) {
	if len(r.pre) > 0 {
		n := copy(p, r.pre)
		r.pre = r.pre[n:]
		return n, nil
	}
	return r.Conn.Read(p)
}

var _ net.Listener = (*Mux)(nil)
