package binproto

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestHeaderTagRoundTrip pins the header codec: the tag travels in
// bytes 6–7 and a zero tag (what pre-tag builds wrote as reserved
// bytes) still parses.
func TestHeaderTagRoundTrip(t *testing.T) {
	b := make([]byte, HeaderSize)
	for _, tag := range []uint16{0, 1, 7, 0xBEEF, 0xFFFF} {
		putHeaderTag(b, FrameScore, tag, 42)
		ftype, got, n, err := parseHeader(b)
		if err != nil {
			t.Fatalf("tag %d: %v", tag, err)
		}
		if ftype != FrameScore || got != tag || n != 42 {
			t.Fatalf("tag %d: parsed (type=%d tag=%d n=%d)", tag, ftype, got, n)
		}
	}
	// putHeader is the zero-tag shorthand old clients effectively use.
	putHeader(b, FrameScore, 9)
	if _, tag, _, err := parseHeader(b); err != nil || tag != 0 {
		t.Fatalf("zero-tag header: tag=%d err=%v", tag, err)
	}
}

// TestServerEchoesTag drives a live connection and checks every
// result frame echoes its request's tag, across both frame kinds and
// multiple sequential frames.
func TestServerEchoesTag(t *testing.T) {
	eng := testEngine(t)
	srv := NewServer(eng, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(context.Background(), c)
		}
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// ScoreBatch and Optimize verify the echo internally; a server
	// that stopped echoing would fail these calls.
	for i := 0; i < 3; i++ {
		if _, err := cli.ScoreBatch(testRequests()); err != nil {
			t.Fatalf("score frame %d: %v", i, err)
		}
	}
	if _, err := cli.Optimize(OptimizeRequest{
		ID:         "o1",
		Lines:      microLines,
		Candidates: [][]string{{"Acme Air", "Cheap flights", "Great rates"}},
	}); err != nil {
		t.Fatalf("optimize frame: %v", err)
	}
	if cli.seq != 4 {
		t.Fatalf("client seq = %d after 4 frames, want 4", cli.seq)
	}
}

// TestFrameLatencyAndTracing checks the per-frame histogram fills and
// slow frames land in the trace ring with the mbsp-<tag> identity.
func TestFrameLatencyAndTracing(t *testing.T) {
	eng := testEngine(t)
	srv := NewServer(eng, nil)
	ring := obs.NewTraceRing(8, 0) // threshold 0: every frame traces
	srv.SetTracing(ring)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(context.Background(), c)
		}
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.ScoreBatch(testRequests()); err != nil {
		t.Fatal(err)
	}

	if snap := srv.FrameLatency(); snap.Count != 1 {
		t.Fatalf("frame latency samples = %d, want 1", snap.Count)
	}
	deadline := time.Now().Add(2 * time.Second)
	for ring.Added() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	traces := ring.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != "mbsp-1" {
		t.Errorf("trace ID %q, want mbsp-1 (first client tag)", tr.ID)
	}
	if tr.Proto != "mbsp" || tr.Kind != "score" {
		t.Errorf("trace proto/kind (%q,%q), want (mbsp,score)", tr.Proto, tr.Kind)
	}
	if tr.Items != len(testRequests()) {
		t.Errorf("trace items %d, want %d", tr.Items, len(testRequests()))
	}
	if tr.TotalMS < 0 || len(tr.Stages) != 1 {
		t.Errorf("trace timing malformed: %+v", tr)
	}
}
