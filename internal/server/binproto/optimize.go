package binproto

// The optimize cycle: decode one query × N candidate snippets from an
// optimize frame, score them through the engine's amortised
// candidate-set pass, and encode the ranked result. Like the score
// cycle, everything runs out of connection-owned arenas — a warm
// optimize cycle performs zero heap allocations.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// optState is the optimize half of the connection working set,
// embedded in connState: the candidate-line arena (slot 0 is the base
// snippet), the score buffer and the ranking heap, all reused frame
// over frame.
type optState struct {
	lines  []string
	spans  []span // span.req indexes cands
	cands  [][]string
	scores []core.CandidateScore
	topk   engine.TopK
}

// decodeOptimize rebuilds one candidate-set call from an optimize
// payload. st.opt.cands[0] is the base snippet, the rest the
// candidates, all zero-copy views into the frame buffer.
//
//mb:noalloc
func (st *connState) decodeOptimize(payload []byte) (id, model string, maxN, topK int, err error) {
	o := &st.opt
	r := reader{b: payload}
	id = r.str()
	model = r.str()
	maxN = int(r.u8())
	topK = int(r.u16())

	o.lines = o.lines[:0]
	o.spans = o.spans[:0]
	// Base snippet, then the candidate count, then each candidate —
	// all into one arena; slices are taken only once it stops moving.
	nl := int(r.u16())
	for j := 0; j < nl && r.err == nil; j++ {
		o.lines = append(o.lines, r.str())
	}
	o.spans = append(o.spans, span{start: 0, n: nl})
	nc := int(r.u32())
	if r.err == nil && nc > MaxBatch {
		return id, model, maxN, topK, fmt.Errorf("binproto: candidate set of %d exceeds the %d limit; split it", nc, MaxBatch) //mb:allocok cold reject path
	}
	for i := 0; i < nc && r.err == nil; i++ {
		nl := int(r.u16())
		start := len(o.lines)
		for j := 0; j < nl && r.err == nil; j++ {
			o.lines = append(o.lines, r.str())
		}
		o.spans = append(o.spans, span{req: i + 1, start: start, n: nl})
	}
	if err = r.done(); err != nil {
		return id, model, maxN, topK, err
	}

	if cap(o.cands) < len(o.spans) {
		o.cands = make([][]string, len(o.spans)) //mb:allocok capacity miss: first frame this size, then reused
	}
	o.cands = o.cands[:len(o.spans)]
	for k := range o.spans {
		sp := &o.spans[k]
		o.cands[k] = o.lines[sp.start : sp.start+sp.n : sp.start+sp.n]
	}
	return id, model, maxN, topK, nil
}

// processOptimize runs one optimize cycle with no I/O: decode, one
// candidate-set scoring pass, rank, encode the optimize-result frame
// (header included) into st.out. A scoring failure (unknown model,
// macro model) travels inside the result frame's error field — the
// connection stays usable, exactly like Response.Error on the score
// path.
//
//mb:noalloc
func (s *Server) processOptimize(ctx context.Context, st *connState, payload []byte) error {
	id, model, maxN, topK, err := st.decodeOptimize(payload)
	if err != nil {
		return err
	}
	o := &st.opt
	st.frameModel = model
	st.frameItems = len(o.cands) - 1
	s.requests.Add(uint64(len(o.cands) - 1))

	var zeroHdr [HeaderSize]byte
	st.out = append(st.out[:0], zeroHdr[:]...)

	scores, info, serr := s.eng.ScoreCandidates(ctx, model, o.cands, maxN, o.scores)
	o.scores = scores
	if st.out, err = appendStr16(st.out, id); err != nil {
		return err
	}
	if serr != nil {
		// Semantic failure: empty result carrying the error message.
		if st.out, err = appendStr16(st.out, model); err != nil {
			return err
		}
		st.out = appendU32(st.out, 0)                                    // version
		st.out = appendF64(st.out, 0)                                    // base ctr
		st.out = appendF64(st.out, 0)                                    // base score
		st.out = appendU32(st.out, 0)                                    // best
		st.out = appendU32(st.out, 0)                                    // nranked
		if st.out, err = appendStr16(st.out, serr.Error()); err != nil { //mb:allocok cold error path
			return err
		}
		putHeaderTag(st.out, FrameOptimizeResult, st.tag, len(st.out)-HeaderSize)
		return nil
	}

	if st.out, err = appendStr16(st.out, info.Name); err != nil {
		return err
	}
	st.out = appendU32(st.out, uint32(info.Version))
	st.out = appendF64(st.out, scores[0].CTR)
	st.out = appendF64(st.out, scores[0].Score)

	// Rank candidates by predicted CTR; ties break toward the earlier
	// candidate. Best is 0 (keep the base) unless a candidate beats it.
	ncands := len(o.cands) - 1
	if topK <= 0 || topK > ncands {
		topK = ncands
	}
	o.topk.Reset(topK)
	for i := 0; i < ncands; i++ {
		o.topk.Offer(i, scores[i+1].CTR)
	}
	idx, _ := o.topk.Sorted()
	best := uint32(0)
	if len(idx) > 0 && scores[int(idx[0])+1].CTR > scores[0].CTR {
		best = uint32(idx[0]) + 1
	}
	st.out = appendU32(st.out, best)
	st.out = appendU32(st.out, uint32(len(idx)))
	for _, i := range idx {
		st.out = appendU32(st.out, uint32(i))
		st.out = appendF64(st.out, scores[int(i)+1].CTR)
		st.out = appendF64(st.out, scores[int(i)+1].Score)
	}
	if st.out, err = appendStr16(st.out, ""); err != nil {
		return err
	}
	putHeaderTag(st.out, FrameOptimizeResult, st.tag, len(st.out)-HeaderSize)
	return nil
}
