//go:build race

package binproto

const raceEnabled = true
