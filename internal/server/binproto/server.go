package binproto

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/clickmodel"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Server speaks the binary protocol over accepted connections,
// scoring batches through one Engine. It carries no per-connection
// state itself — ServeConn owns a connState for the connection's
// lifetime — so one Server instance serves any number of connections.
type Server struct {
	eng *engine.Engine
	log *log.Logger

	frames   atomic.Uint64
	requests atomic.Uint64
	errs     atomic.Uint64

	// frameH distributes per-frame service time (read done → response
	// written), nanoseconds; the binary analogue of the HTTP
	// per-endpoint latency histograms.
	frameH obs.Histogram
	// ring, when set, captures slow frames as traces alongside the
	// HTTP surface's slow requests.
	ring *obs.TraceRing
}

// SetTracing attaches a slow-request trace ring. Call before serving
// connections; frames slower than the ring's threshold are recorded
// as "mbsp-<tag>" traces.
func (s *Server) SetTracing(ring *obs.TraceRing) { s.ring = ring }

// FrameLatency snapshots the per-frame service-time histogram
// (nanosecond samples).
func (s *Server) FrameLatency() obs.Snapshot { return s.frameH.Snapshot() }

// NewServer returns a binary-protocol server over eng. logger may be
// nil (discards).
func NewServer(eng *engine.Engine, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{eng: eng, log: logger}
}

// Counters is a point-in-time snapshot of the binary surface's
// traffic, the analogue of the HTTP metrics block.
type Counters struct {
	Frames   uint64 `json:"frames"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// Counters reports frames served, requests scored and connection
// errors since start.
func (s *Server) Counters() Counters {
	return Counters{
		Frames:   s.frames.Load(),
		Requests: s.requests.Load(),
		Errors:   s.errs.Load(),
	}
}

// span records where one request's variable-length evidence landed in
// the connection arenas, so slices are taken only after the arenas
// stop growing (append may move the backing array).
type span struct {
	req   int
	start int
	n     int
}

// sessSpan is span for macro evidence: one session's query plus its
// doc and click ranges.
type sessSpan struct {
	req    int
	query  string
	dstart int
	ndocs  int
	cstart int
}

// connState is the per-connection working set: the frame buffer, the
// decoded request batch, the response batch and the evidence arenas.
// Everything is reused frame over frame, so a warm connection's score
// cycle allocates nothing.
type connState struct {
	hdr     [HeaderSize]byte
	payload []byte
	out     []byte

	// tag is the current frame's request tag, echoed in the response
	// header. frameModel and frameItems describe the decoded frame for
	// slow-frame tracing; frameModel aliases the frame buffer and is
	// cloned only when a trace is actually built.
	tag        uint16
	frameModel string
	frameItems int

	reqs  []engine.Request
	resps []engine.Response

	lines     []string
	lineSpans []span
	docs      []string
	clicks    []bool
	sessions  []clickmodel.Session
	sessSpans []sessSpan

	opt optState
}

// decodeRequests rebuilds the request batch from a score payload.
// Strings are zero-copy views into st.payload: valid until the next
// frame is read, which is after the batch is fully scored and the
// responses encoded.
//
//mb:noalloc
func (st *connState) decodeRequests(payload []byte) ([]engine.Request, error) {
	r := reader{b: payload}
	n := int(r.u32())
	if r.err == nil && n > MaxBatch {
		return nil, fmt.Errorf("binproto: batch of %d requests exceeds the %d limit; split it", n, MaxBatch) //mb:allocok cold reject path
	}
	if cap(st.reqs) < n {
		st.reqs = make([]engine.Request, n) //mb:allocok capacity miss: first frame this size, then reused
	}
	st.reqs = st.reqs[:n]
	st.lines = st.lines[:0]
	st.lineSpans = st.lineSpans[:0]
	st.docs = st.docs[:0]
	st.clicks = st.clicks[:0]
	st.sessions = st.sessions[:0]
	st.sessSpans = st.sessSpans[:0]

	for i := 0; i < n && r.err == nil; i++ {
		req := &st.reqs[i]
		*req = engine.Request{}
		req.ID = r.str()
		req.Model = r.str()
		req.MaxN = int(r.u8())
		switch kind := r.u8(); kind {
		case evLines:
			nl := int(r.u16())
			start := len(st.lines)
			for j := 0; j < nl && r.err == nil; j++ {
				st.lines = append(st.lines, r.str())
			}
			st.lineSpans = append(st.lineSpans, span{req: i, start: start, n: nl})
		case evSession:
			ss := sessSpan{req: i, query: r.str()}
			ss.ndocs = int(r.u16())
			ss.dstart = len(st.docs)
			for j := 0; j < ss.ndocs && r.err == nil; j++ {
				st.docs = append(st.docs, r.str())
			}
			ss.cstart = len(st.clicks)
			bits := r.bytes((ss.ndocs + 7) / 8)
			for j := 0; j < ss.ndocs && r.err == nil; j++ {
				st.clicks = append(st.clicks, bits[j/8]&(1<<(j%8)) != 0)
			}
			st.sessSpans = append(st.sessSpans, ss)
		default:
			if r.err == nil {
				return nil, fmt.Errorf("binproto: request %d: unknown evidence kind %d", i, kind) //mb:allocok cold reject path
			}
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}

	// The arenas are final; now the slices they back cannot move.
	for _, s := range st.lineSpans {
		st.reqs[s.req].Lines = st.lines[s.start : s.start+s.n : s.start+s.n]
	}
	for _, ss := range st.sessSpans {
		st.sessions = append(st.sessions, clickmodel.Session{
			Query:  ss.query,
			Docs:   st.docs[ss.dstart : ss.dstart+ss.ndocs : ss.dstart+ss.ndocs],
			Clicks: st.clicks[ss.cstart : ss.cstart+ss.ndocs : ss.cstart+ss.ndocs],
		})
	}
	for k, ss := range st.sessSpans {
		st.reqs[ss.req].Session = &st.sessions[k]
	}
	return st.reqs, nil
}

// process runs one score cycle with no I/O: decode the payload, score
// the batch, encode the result frame (header included) into st.out.
// Split from ServeConn so the zero-allocation property is testable
// directly with testing.AllocsPerRun.
//
//mb:noalloc
func (s *Server) process(ctx context.Context, st *connState, payload []byte) error {
	reqs, err := st.decodeRequests(payload)
	if err != nil {
		return err
	}
	st.frameItems = len(reqs)
	st.frameModel = ""
	if len(reqs) > 0 {
		st.frameModel = reqs[0].Model
	}
	s.requests.Add(uint64(len(reqs)))
	st.resps = s.eng.ScoreBatchInto(ctx, reqs, st.resps)
	var zeroHdr [HeaderSize]byte
	st.out = append(st.out[:0], zeroHdr[:]...)
	st.out, err = AppendResponses(st.out, st.resps)
	if err != nil {
		return err
	}
	putHeaderTag(st.out, FrameResult, st.tag, len(st.out)-HeaderSize)
	return nil
}

// readFrame reads one frame into the connection buffers, latches its
// request tag into st.tag, and returns its type and payload view.
//
//mb:noalloc
func (st *connState) readFrame(br *bufio.Reader) (byte, []byte, error) {
	if _, err := io.ReadFull(br, st.hdr[:]); err != nil {
		return 0, nil, err
	}
	ftype, tag, n, err := parseHeader(st.hdr[:])
	if err != nil {
		return 0, nil, err
	}
	st.tag = tag
	if cap(st.payload) < n {
		st.payload = make([]byte, n) //mb:allocok capacity miss: first frame this size, then reused
	}
	st.payload = st.payload[:n]
	if _, err := io.ReadFull(br, st.payload); err != nil {
		return 0, nil, fmt.Errorf("binproto: reading %d-byte payload: %w", n, err) //mb:allocok cold error path
	}
	return ftype, st.payload, nil
}

// writeError sends a best-effort error frame echoing the failing
// request's tag; the connection closes right after, so a failed write
// is not itself an error.
func writeError(conn net.Conn, tag uint16, msg string) {
	if len(msg) > maxStr {
		msg = msg[:maxStr]
	}
	buf := make([]byte, HeaderSize, HeaderSize+2+len(msg))
	buf, _ = appendStr16(buf, msg)
	putHeaderTag(buf, FrameError, tag, len(buf)-HeaderSize)
	conn.Write(buf)
}

// ServeConn runs the request/response loop until the peer closes,
// the context is cancelled, or a protocol error makes the stream
// unrecoverable. It owns conn and closes it on return.
func (s *Server) ServeConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	st := &connState{}
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		ftype, payload, err := st.readFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && ctx.Err() == nil {
				s.errs.Add(1)
				s.log.Printf("binproto %s: %v", conn.RemoteAddr(), err)
				writeError(conn, 0, err.Error())
			}
			return
		}
		t0 := time.Now()
		var perr error
		var kind string
		switch ftype {
		case FrameScore:
			s.frames.Add(1)
			kind = "score"
			perr = s.process(ctx, st, payload)
		case FrameOptimize:
			s.frames.Add(1)
			kind = "optimize"
			perr = s.processOptimize(ctx, st, payload)
		default:
			s.errs.Add(1)
			writeError(conn, st.tag, fmt.Sprintf("binproto: unexpected frame type %d (want score or optimize)", ftype))
			return
		}
		if perr != nil {
			s.errs.Add(1)
			s.log.Printf("binproto %s: %v", conn.RemoteAddr(), perr)
			writeError(conn, st.tag, perr.Error())
			return
		}
		if _, err := conn.Write(st.out); err != nil {
			return
		}
		d := time.Since(t0)
		if d < 0 {
			d = 0
		}
		s.frameH.Record(uint64(d))
		if s.ring != nil && s.ring.Slow(d) {
			s.traceFrame(st, kind, d)
		}
	}
}

// traceFrame records one slow frame into the trace ring. Reached only
// past the ring's threshold, so the ID string, model clone and stage
// slice built here never touch the steady-state frame cycle.
func (s *Server) traceFrame(st *connState, kind string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.ring.Add(obs.Trace{
		ID:      "mbsp-" + strconv.FormatUint(uint64(st.tag), 10),
		Proto:   "mbsp",
		Kind:    kind,
		Model:   strings.Clone(st.frameModel),
		Items:   st.frameItems,
		UnixMS:  time.Now().UnixMilli(),
		TotalMS: ms,
		Stages:  []obs.Stage{{Name: "frame", MS: ms}},
	})
}
