package binproto

import (
	"context"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/engine"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New()
	m := core.NewModel(core.GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8})
	m.Relevance["find cheap"] = 0.85
	m.Relevance["flights"] = 0.6
	e.UseMicro(m)

	pbm, err := clickmodel.New("pbm")
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]clickmodel.Session, 0, 200)
	docs := []string{"a", "b", "c", "d"}
	for k := 0; k < 200; k++ {
		s := clickmodel.Session{Query: "q", Docs: docs, Clicks: []bool{k%2 == 0, k%3 == 0, false, k%7 == 0}}
		sessions = append(sessions, s)
	}
	if err := pbm.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	e.RegisterModel(pbm)
	return e
}

var microLines = []string{"Acme Air", "Find cheap flights to Rome", "Great rates"}

func testRequests() []engine.Request {
	return []engine.Request{
		{ID: "m1", Lines: microLines},
		{ID: "m2", Lines: microLines, MaxN: 3},
		{ID: "s1", Model: "pbm", Session: &clickmodel.Session{
			Query: "q", Docs: []string{"a", "b", "c"}, Clicks: []bool{true, false, false}}},
		{ID: "bad", Model: "micro"}, // no evidence: per-request error
	}
}

// TestEncodeDecodeRequests pins the codec round trip, including the
// session click bitset and zero-copy string views.
func TestEncodeDecodeRequests(t *testing.T) {
	reqs := testRequests()
	payload, err := AppendRequests(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	var st connState
	got, err := st.decodeRequests(payload)
	if err != nil {
		t.Fatalf("decodeRequests: %v", err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d requests, want %d", len(got), len(reqs))
	}
	for i, want := range reqs {
		g := got[i]
		if g.ID != want.ID || g.Model != want.Model {
			t.Errorf("req %d: id/model (%q,%q), want (%q,%q)", i, g.ID, g.Model, want.ID, want.Model)
		}
		if len(g.Lines) != len(want.Lines) {
			t.Errorf("req %d: %d lines, want %d", i, len(g.Lines), len(want.Lines))
			continue
		}
		for j := range want.Lines {
			if g.Lines[j] != want.Lines[j] {
				t.Errorf("req %d line %d: %q, want %q", i, j, g.Lines[j], want.Lines[j])
			}
		}
		if (g.Session == nil) != (want.Session == nil) {
			t.Errorf("req %d: session presence mismatch", i)
			continue
		}
		if want.Session != nil {
			if g.Session.Query != want.Session.Query {
				t.Errorf("req %d: query %q, want %q", i, g.Session.Query, want.Session.Query)
			}
			for j := range want.Session.Docs {
				if g.Session.Docs[j] != want.Session.Docs[j] || g.Session.Clicks[j] != want.Session.Clicks[j] {
					t.Errorf("req %d doc %d: (%q,%v), want (%q,%v)", i, j,
						g.Session.Docs[j], g.Session.Clicks[j], want.Session.Docs[j], want.Session.Clicks[j])
				}
			}
		}
	}
}

// TestServerMatchesJSONSemantics drives a live server over TCP and
// checks every response field against direct engine calls.
func TestServerMatchesJSONSemantics(t *testing.T) {
	eng := testEngine(t)
	srv := NewServer(eng, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(context.Background(), c)
		}
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	reqs := testRequests()
	want := eng.ScoreBatch(context.Background(), reqs)
	for round := 0; round < 3; round++ { // reuse the same connection
		got, err := cli.ScoreBatch(reqs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d responses, want %d", round, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.ID != w.ID || g.Model != w.Model || g.ModelVersion != w.ModelVersion {
				t.Errorf("resp %d: (%q,%q,%d), want (%q,%q,%d)", i, g.ID, g.Model, g.ModelVersion, w.ID, w.Model, w.ModelVersion)
			}
			if math.Abs(g.CTR-w.CTR) > 1e-15 || math.Abs(g.Score-w.Score) > 1e-15 {
				t.Errorf("resp %d: ctr/score (%v,%v), want (%v,%v)", i, g.CTR, g.Score, w.CTR, w.Score)
			}
			if len(g.Positions) != len(w.Positions) {
				t.Errorf("resp %d: %d positions, want %d", i, len(g.Positions), len(w.Positions))
			} else {
				for j := range w.Positions {
					if math.Abs(g.Positions[j]-w.Positions[j]) > 1e-15 {
						t.Errorf("resp %d pos %d: %v, want %v", i, j, g.Positions[j], w.Positions[j])
					}
				}
			}
			if (w.Error == "") != (g.Error == "") {
				t.Errorf("resp %d: error %q, want %q", i, g.Error, w.Error)
			}
		}
	}
	c := srv.Counters()
	if c.Frames != 3 || c.Requests != uint64(3*len(reqs)) {
		t.Errorf("counters = %+v, want 3 frames / %d requests", c, 3*len(reqs))
	}
}

// TestProcessZeroAlloc is the acceptance-criteria allocation test: a
// warm connection's full score cycle — decode, batch score, encode —
// performs zero heap allocations.
func TestProcessZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates defer records; alloc counts only hold uninstrumented")
	}
	eng := testEngine(t)
	srv := NewServer(eng, nil)
	reqs := []engine.Request{
		{ID: "m1", Lines: microLines},
		{ID: "m2", Lines: microLines},
		{ID: "s1", Model: "pbm", Session: &clickmodel.Session{
			Query: "q", Docs: []string{"a", "b", "c"}, Clicks: []bool{true, false, false}}},
	}
	payload, err := AppendRequests(nil, reqs)
	if err != nil {
		t.Fatal(err)
	}
	st := &connState{}
	ctx := context.Background()
	for i := 0; i < 4; i++ { // warm the arenas
		if err := srv.process(ctx, st, payload); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := srv.process(ctx, st, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm score cycle allocates %v/op, want 0", allocs)
	}
}

// TestMalformedFrameFailsClosed sends garbage after the magic; the
// server must answer with an error frame and close, never hang.
func TestMalformedFrameFailsClosed(t *testing.T) {
	eng := testEngine(t)
	srv := NewServer(eng, nil)
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(context.Background(), server)
		close(done)
	}()

	// Valid header, truncated payload encoding.
	frame := make([]byte, HeaderSize, HeaderSize+4)
	frame = appendU32(frame, 5) // claims 5 requests, provides none
	putHeaderTag(frame, FrameScore, 7, 4)
	if _, err := client.Write(frame); err != nil {
		t.Fatal(err)
	}
	cli := NewClient(client)
	ftype, tag, payload, err := cli.readFrame()
	if err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if ftype != FrameError {
		t.Fatalf("frame type %d, want error", ftype)
	}
	if tag != 7 {
		t.Fatalf("error frame tag %d, want the request's tag 7", tag)
	}
	r := reader{b: payload}
	if msg := r.str(); !strings.Contains(msg, "truncated") {
		t.Errorf("error message %q should mention truncation", msg)
	}
	client.Close()
	<-done
}

// TestMuxSplitsProtocols serves HTTP and binary clients over one
// listener concurrently.
func TestMuxSplitsProtocols(t *testing.T) {
	eng := testEngine(t)
	bin := NewServer(eng, nil)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := NewMux(inner, bin)
	defer mux.Close()

	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok"))
	})}
	go httpSrv.Serve(mux)
	defer httpSrv.Close()

	addr := mux.Addr().String()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			resp, err := http.Get("http://" + addr + "/healthz")
			if err != nil {
				t.Errorf("http over mux: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("http status %d", resp.StatusCode)
			}
		}()
		go func() {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Errorf("binary over mux: %v", err)
				return
			}
			defer cli.Close()
			resps, err := cli.ScoreBatch([]engine.Request{{ID: "x", Lines: microLines}})
			if err != nil {
				t.Errorf("binary score over mux: %v", err)
				return
			}
			if len(resps) != 1 || resps[0].Error != "" || resps[0].CTR <= 0 {
				t.Errorf("unexpected binary response: %+v", resps)
			}
		}()
	}
	wg.Wait()
}
