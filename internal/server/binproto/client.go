package binproto

import (
	"bufio"
	"fmt"
	"net"

	"repro/internal/engine"
)

// Client is one binary-protocol connection. It is synchronous and not
// safe for concurrent use: one ScoreBatch at a time per client, one
// client per goroutine (the protocol itself pipelines by opening more
// connections, which is exactly what cmd/loadgen does).
//
// Decoded responses reuse client-owned buffers, and their strings are
// zero-copy views into the receive buffer: everything returned by
// ScoreBatch is valid only until the next call. Callers that retain
// responses must copy them.
type Client struct {
	conn net.Conn
	br   *bufio.Reader

	out       []byte
	payload   []byte
	resps     []engine.Response
	positions []float64
	ranked    []RankedCandidate
	optResult OptimizeResult
	hdr       [HeaderSize]byte

	// seq generates per-frame request tags; the server echoes each one
	// in the matching response header and the client verifies the echo.
	seq uint16
}

// Dial connects a client to a binary-protocol (or muxed) address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReaderSize(conn, 64<<10)}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// ScoreBatch sends one score frame and decodes the matching result
// frame. Per-request failures come back inside each Response.Error;
// the returned error is connection- or protocol-level.
func (c *Client) ScoreBatch(reqs []engine.Request) ([]engine.Response, error) {
	var zeroHdr [HeaderSize]byte
	c.out = append(c.out[:0], zeroHdr[:]...)
	var err error
	if c.out, err = AppendRequests(c.out, reqs); err != nil {
		return nil, err
	}
	c.seq++
	putHeaderTag(c.out, FrameScore, c.seq, len(c.out)-HeaderSize)
	if _, err := c.conn.Write(c.out); err != nil {
		return nil, err
	}

	ftype, tag, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch ftype {
	case FrameResult:
		if tag != c.seq {
			return nil, fmt.Errorf("binproto: response tag %d does not echo request tag %d", tag, c.seq)
		}
		return c.decodeResponses(payload)
	case FrameError:
		r := reader{b: payload}
		msg := r.str()
		if err := r.done(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("binproto: server error: %s", msg)
	default:
		return nil, fmt.Errorf("binproto: unexpected frame type %d (want result)", ftype)
	}
}

// RankedCandidate is one entry of an optimize result: the candidate's
// position in the request's candidate list and its predicted scores.
type RankedCandidate struct {
	Index int
	CTR   float64
	Score float64
}

// OptimizeResult is the decoded optimize-result frame. Best is the
// winning candidate's index, or -1 when no candidate beats the base.
// A semantic scoring failure (unknown model, macro model) arrives in
// Err with everything else zero; the connection stays usable.
type OptimizeResult struct {
	ID           string
	Model        string
	ModelVersion int
	BaseCTR      float64
	BaseScore    float64
	Best         int
	Ranked       []RankedCandidate
	Err          string
}

// Optimize sends one optimize frame (one query × N candidate
// snippets) and decodes the matching optimize-result frame. Like
// ScoreBatch, the result reuses client-owned buffers and is valid only
// until the next call.
func (c *Client) Optimize(req OptimizeRequest) (*OptimizeResult, error) {
	var zeroHdr [HeaderSize]byte
	c.out = append(c.out[:0], zeroHdr[:]...)
	var err error
	if c.out, err = AppendOptimize(c.out, &req); err != nil {
		return nil, err
	}
	c.seq++
	putHeaderTag(c.out, FrameOptimize, c.seq, len(c.out)-HeaderSize)
	if _, err := c.conn.Write(c.out); err != nil {
		return nil, err
	}

	ftype, tag, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch ftype {
	case FrameOptimizeResult:
		if tag != c.seq {
			return nil, fmt.Errorf("binproto: response tag %d does not echo request tag %d", tag, c.seq)
		}
		return c.decodeOptimizeResult(payload)
	case FrameError:
		r := reader{b: payload}
		msg := r.str()
		if err := r.done(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("binproto: server error: %s", msg)
	default:
		return nil, fmt.Errorf("binproto: unexpected frame type %d (want optimize result)", ftype)
	}
}

func (c *Client) decodeOptimizeResult(payload []byte) (*OptimizeResult, error) {
	r := reader{b: payload}
	res := &c.optResult
	*res = OptimizeResult{}
	res.ID = r.str()
	res.Model = r.str()
	res.ModelVersion = int(r.u32())
	res.BaseCTR = r.f64()
	res.BaseScore = r.f64()
	res.Best = int(r.u32()) - 1
	n := int(r.u32())
	if r.err == nil && n > MaxBatch {
		return nil, fmt.Errorf("binproto: ranked set of %d exceeds the %d limit", n, MaxBatch)
	}
	if cap(c.ranked) < n {
		c.ranked = make([]RankedCandidate, n)
	}
	c.ranked = c.ranked[:n]
	for i := 0; i < n && r.err == nil; i++ {
		c.ranked[i] = RankedCandidate{Index: int(r.u32()), CTR: r.f64(), Score: r.f64()}
	}
	res.Err = r.str()
	if err := r.done(); err != nil {
		return nil, err
	}
	res.Ranked = c.ranked
	return res, nil
}

func (c *Client) readFrame() (byte, uint16, []byte, error) {
	if _, err := readFull(c.br, c.hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	ftype, tag, n, err := parseHeader(c.hdr[:])
	if err != nil {
		return 0, 0, nil, err
	}
	if cap(c.payload) < n {
		c.payload = make([]byte, n)
	}
	c.payload = c.payload[:n]
	if _, err := readFull(c.br, c.payload); err != nil {
		return 0, 0, nil, err
	}
	return ftype, tag, c.payload, nil
}

func readFull(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		k, err := br.Read(p[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func (c *Client) decodeResponses(payload []byte) ([]engine.Response, error) {
	r := reader{b: payload}
	n := int(r.u32())
	if r.err == nil && n > MaxBatch {
		return nil, fmt.Errorf("binproto: response batch of %d exceeds the %d limit", n, MaxBatch)
	}
	if cap(c.resps) < n {
		c.resps = make([]engine.Response, n)
	}
	c.resps = c.resps[:n]
	c.positions = c.positions[:0]

	// Positions are collected into one arena first (append may move
	// it), then sliced out once it is final.
	type posSpan struct{ start, n int }
	pspans := make([]posSpan, n)
	for i := 0; i < n && r.err == nil; i++ {
		resp := &c.resps[i]
		*resp = engine.Response{}
		resp.ID = r.str()
		resp.Model = r.str()
		resp.ModelVersion = int(r.u32())
		resp.CTR = r.f64()
		resp.Score = r.f64()
		np := int(r.u16())
		pspans[i] = posSpan{start: len(c.positions), n: np}
		for j := 0; j < np && r.err == nil; j++ {
			c.positions = append(c.positions, r.f64())
		}
		resp.Error = r.str()
		if resp.Error != "" {
			resp.Err = fmt.Errorf("%s", resp.Error)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	for i := range c.resps {
		if pspans[i].n > 0 {
			c.resps[i].Positions = c.positions[pspans[i].start : pspans[i].start+pspans[i].n : pspans[i].start+pspans[i].n]
		}
	}
	return c.resps, nil
}
