package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/stream"
	"repro/internal/wal"
)

// fakeClock is an injectable time source for limiter unit tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time           { return c.t }
func (c *fakeClock) advance(d time.Duration)  { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(rl *rateLimiter, c *fakeClock) { rl.now = c.now }

func TestRateLimiterRefill(t *testing.T) {
	clk := newFakeClock()
	rl := newRateLimiter(10, 20) // 10 events/s, burst 20
	withClock(rl, clk)

	if ok, _ := rl.allowN("a", 20); !ok {
		t.Fatal("burst spend rejected")
	}
	ok, retry := rl.allowN("a", 1)
	if ok {
		t.Fatal("empty bucket granted")
	}
	if retry < time.Second {
		t.Fatalf("Retry-After hint %v, want >= 1s", retry)
	}
	// Half a second refills 5 tokens.
	clk.advance(500 * time.Millisecond)
	if ok, _ := rl.allowN("a", 5); !ok {
		t.Fatal("refilled tokens not granted")
	}
	if ok, _ := rl.allowN("a", 1); ok {
		t.Fatal("bucket should be dry again")
	}
	// Other clients have their own budget.
	if ok, _ := rl.allowN("b", 20); !ok {
		t.Fatal("second client shares the first client's bucket")
	}
	if got := rl.snapshot(); got.Limited != 2 || got.Clients != 2 {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestRateLimiterSweep(t *testing.T) {
	clk := newFakeClock()
	rl := newRateLimiter(100, 100)
	withClock(rl, clk)
	for i := 0; i < 50; i++ {
		rl.allowN(fmt.Sprintf("c%d", i), 1)
	}
	if rl.size() != 50 {
		t.Fatalf("tracked %d clients, want 50", rl.size())
	}
	// After the refill horizon every bucket is full again and the next
	// scheduled sweep forgets them all.
	clk.advance(2 * time.Minute)
	rl.allowN("fresh", 1)
	if n := rl.size(); n != 1 {
		t.Fatalf("sweep left %d clients, want just the fresh one", n)
	}
}

// TestRateLimiterIdleTTLEviction is the memory-bound test: a client
// whose bucket can never refill to full (slow rate, deep debt) must
// still be evicted once idle past the TTL — otherwise one burst from
// each of an open-ended client population pins map entries for hours.
func TestRateLimiterIdleTTLEviction(t *testing.T) {
	clk := newFakeClock()
	rl := newRateLimiter(0.01, 1000) // full refill takes ~28 hours
	rl.ttl = 5 * time.Minute
	withClock(rl, clk)

	for i := 0; i < 50; i++ {
		rl.allowN(fmt.Sprintf("c%d", i), 1000) // drain each bucket fully
	}
	if rl.size() != 50 {
		t.Fatalf("tracked %d clients, want 50", rl.size())
	}

	// One sweep interval later the buckets are nowhere near refilled
	// and still inside the TTL: nothing may be evicted.
	clk.advance(time.Minute)
	rl.allowN("keepalive", 1)
	if n := rl.size(); n != 51 {
		t.Fatalf("pre-TTL sweep evicted: %d clients, want 51", n)
	}

	// Past the TTL the idle 50 go; the recently-active keepalive and
	// the fresh client stay.
	clk.advance(5 * time.Minute)
	rl.allowN("keepalive", 1)
	if n := rl.size(); n != 1 {
		t.Fatalf("TTL sweep left %d clients, want just keepalive", n)
	}

	// ttl <= 0 disables idle eviction entirely.
	rl2 := newRateLimiter(0.01, 1000)
	rl2.ttl = 0
	clk2 := newFakeClock()
	withClock(rl2, clk2)
	rl2.allowN("x", 1000)
	clk2.advance(24 * time.Hour) // refill completes at ~28h
	rl2.allowN("y", 1)
	if n := rl2.size(); n != 2 {
		t.Fatalf("disabled TTL still evicted: %d clients, want 2", n)
	}
}

// TestWithFeedbackClientTTL pins the option plumbing in either order
// relative to WithFeedbackRateLimit.
func TestWithFeedbackClientTTL(t *testing.T) {
	s := New(engine.New(), nil,
		WithFeedbackClientTTL(42*time.Second),
		WithFeedbackRateLimit(10, 10))
	if s.limiter.ttl != 42*time.Second {
		t.Fatalf("ttl = %v, want 42s (option before limiter)", s.limiter.ttl)
	}
	s = New(engine.New(), nil,
		WithFeedbackRateLimit(10, 10),
		WithFeedbackClientTTL(42*time.Second))
	if s.limiter.ttl != 42*time.Second {
		t.Fatalf("ttl = %v, want 42s (option after limiter)", s.limiter.ttl)
	}
	if s2 := New(engine.New(), nil, WithFeedbackRateLimit(10, 10)); s2.limiter.ttl != defaultClientTTL {
		t.Fatalf("default ttl = %v, want %v", s2.limiter.ttl, defaultClientTTL)
	}
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/v1/feedback", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := clientKey(r); got != "10.1.2.3" {
		t.Fatalf("clientKey = %q, want the remote host", got)
	}
	r.Header.Set("X-Client-ID", "crawler-7")
	if got := clientKey(r); got != "crawler-7" {
		t.Fatalf("clientKey = %q, want the header identity", got)
	}
}

// newDurableServer builds a server with a learner, a WAL and a tight
// feedback rate limit, for the HTTP-level durability/limit tests.
func newDurableServer(t *testing.T, rate float64, burst int) (*httptest.Server, *wal.WAL) {
	t.Helper()
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	eng := engine.New(engine.WithWorkers(2))
	l, err := stream.New(eng, stream.Config{Models: []string{"pbm"}, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ts := httptest.NewServer(New(eng, nil,
		WithLearner(l), WithWAL(w), WithFeedbackRateLimit(rate, burst)))
	t.Cleanup(ts.Close)
	return ts, w
}

func postFeedback(t *testing.T, url, clientID string, nSessions int) *http.Response {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"sessions":[`)
	for i := 0; i < nSessions; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"query":"q","docs":["a","b"],"clicks":[true,false]}`)
	}
	sb.WriteString(`]}`)
	req, err := http.NewRequest(http.MethodPost, url+"/v1/feedback", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestFeedbackRateLimitHTTP(t *testing.T) {
	ts, w := newDurableServer(t, 1, 10) // 1 event/s, burst 10: refill is negligible in-test

	resp := postFeedback(t, ts.URL, "noisy", 10)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("within-burst request: status %d", resp.StatusCode)
	}
	resp = postFeedback(t, ts.URL, "noisy", 5)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
	}
	// A different identity is not punished for the noisy one.
	resp = postFeedback(t, ts.URL, "polite", 5)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: status %d", resp.StatusCode)
	}
	// Rejected events never reached the sink or the log.
	if c := w.Counters(); c.Appended != 15 {
		t.Fatalf("WAL holds %d records, want the 15 accepted", c.Appended)
	}

	var hb healthzBody
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb.RateLimit == nil || hb.RateLimit.Limited != 1 || hb.RateLimit.Rate != 1 {
		t.Fatalf("healthz ratelimit block: %+v", hb.RateLimit)
	}
	if hb.WAL == nil || hb.WAL.Appended != 15 || hb.WAL.DurableSeq != 15 {
		t.Fatalf("healthz wal block: %+v", hb.WAL)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newDurableServer(t, 100, 100)
	if resp := postFeedback(t, ts.URL, "m", 3); resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE microserve_http_requests_total counter",
		"microserve_feedback_events_total 3",
		"microserve_stream_accepted_total 3",
		"microserve_wal_appended_total 3",
		"microserve_wal_durable_seq 3",
		"# TYPE microserve_ratelimit_clients gauge",
		"microserve_models 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsWithoutSubsystems pins that a serving-only process still
// exposes a valid document with no stream/wal/limit families.
func TestMetricsWithoutSubsystems(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "microserve_models 2") {
		t.Fatalf("metrics missing the model gauge:\n%s", body)
	}
	if strings.Contains(string(body), "microserve_wal_") || strings.Contains(string(body), "microserve_stream_") {
		t.Fatalf("serving-only metrics leak subsystem families:\n%s", body)
	}
}
