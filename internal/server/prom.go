package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
)

// GET /metrics — Prometheus text exposition (format 0.0.4) of the same
// counters /healthz reports as JSON, hand-rolled like the rest of the
// metrics block: no client library, just HELP/TYPE/value triplets, so
// a scraper can watch serving, learning and durability without any new
// dependency. Counters are monotonic since process start; gauges are
// instantaneous.

// promWriter accumulates one exposition document.
type promWriter struct{ b bytes.Buffer }

func (p *promWriter) counter(name, help string, v uint64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var p promWriter

	bi := obs.Build()
	fmt.Fprintf(&p.b, "# HELP microserve_build_info Build identity of the serving binary (value fixed at 1).\n"+
		"# TYPE microserve_build_info gauge\nmicroserve_build_info{go_version=%q,revision=%q,modified=%q} 1\n",
		bi.GoVersion, bi.Revision, strconv.FormatBool(bi.Modified))
	p.gauge("microserve_uptime_seconds", "Seconds since process start.", obs.Uptime().Seconds())

	m := s.met.snapshot()
	p.counter("microserve_http_requests_total", "HTTP requests routed.", m.Requests)
	p.counter("microserve_http_errors_total", "Non-2xx responses written.", m.Errors)
	p.counter("microserve_scores_total", "POST /v1/score calls.", m.Scores)
	p.counter("microserve_score_batches_total", "POST /v1/score/batch calls.", m.Batches)
	p.counter("microserve_score_batch_requests_total", "Requests inside score batches.", m.BatchRequests)
	p.counter("microserve_optimizes_total", "POST /v1/optimize calls.", m.Optimizes)
	p.counter("microserve_optimize_candidates_total", "Candidates scored inside optimize calls.", m.OptimizeCandidates)
	p.counter("microserve_feedbacks_total", "POST /v1/feedback calls.", m.Feedbacks)
	p.counter("microserve_feedback_events_total", "Events inside feedback calls (pre-ingest).", m.FeedbackEvents)
	p.counter("microserve_model_loads_total", "Snapshot hot-swaps.", m.Loads)
	p.counter("microserve_model_rollbacks_total", "Version rollbacks.", m.Rollbacks)
	p.counter("microserve_model_snapshots_total", "Snapshot exports.", m.Snapshots)
	p.gauge("microserve_models", "Installed model versions.", float64(s.eng.ModelCount()))

	if s.limiter != nil {
		rl := s.limiter.snapshot()
		p.counter("microserve_feedback_ratelimited_total", "Feedback requests rejected by the per-client limiter.", rl.Limited)
		p.gauge("microserve_ratelimit_clients", "Clients currently tracked by the limiter.", float64(rl.Clients))
	}

	if s.learner != nil {
		c := s.learner.Counters()
		p.counter("microserve_stream_accepted_total", "Feedback events queued into the sink.", c.Accepted)
		p.counter("microserve_stream_dropped_total", "Feedback events dropped on sink saturation.", c.Dropped)
		p.counter("microserve_stream_invalid_total", "Feedback events rejected as malformed.", c.Invalid)
		p.counter("microserve_stream_folded_sessions_total", "Sessions folded into the statistics.", c.FoldedSessions)
		p.counter("microserve_stream_folded_snippets_total", "Snippet events folded into the term counts.", c.FoldedSnippets)
		p.counter("microserve_stream_replayed_total", "Events recovered from the WAL at boot.", c.Replayed)
		p.counter("microserve_stream_publishes_total", "Publisher ticks that installed versions.", c.Publishes)
		p.counter("microserve_stream_publish_skips_total", "Publisher ticks gated by MinEvents.", c.PublishSkips)
		p.counter("microserve_stream_publish_errors_total", "Publisher ticks with fit/install failures.", c.PublishErrors)
		p.gauge("microserve_stream_last_publish_seconds", "Wall time of the last publish.", c.LastPublishMS/1000)
		p.gauge("microserve_stream_window_sessions", "EM mini-batch window fill.", float64(c.WindowSessions))
		p.gauge("microserve_stream_pairs", "Distinct (query, doc) pairs accumulated.", float64(c.Pairs))
		p.gauge("microserve_stream_micro_terms", "Micro vocabulary size.", float64(c.MicroTerms))
		p.gauge("microserve_stream_weight", "Decayed session mass.", c.Weight)
	}

	if s.wal != nil {
		c := s.wal.Counters()
		p.counter("microserve_wal_appended_total", "Records appended to the feedback WAL.", c.Appended)
		p.counter("microserve_wal_append_errors_total", "WAL appends that failed.", c.AppendErrors)
		p.counter("microserve_wal_flushes_total", "Append-buffer flushes to the OS.", c.Flushes)
		p.counter("microserve_wal_syncs_total", "fsync calls.", c.Syncs)
		p.counter("microserve_wal_replayed_total", "Records replayed at boot.", c.Replayed)
		p.counter("microserve_wal_corrupt_skipped_total", "Corrupt records skipped during replay.", c.CorruptSkipped)
		p.counter("microserve_wal_truncated_bytes_total", "Torn-tail bytes truncated during recovery.", c.TruncatedBytes)
		p.counter("microserve_wal_pruned_segments_total", "Sealed segments pruned.", c.PrunedSegments)
		p.gauge("microserve_wal_segments", "Live segment files.", float64(c.Segments))
		p.gauge("microserve_wal_bytes", "Total log bytes (including buffered).", float64(c.Bytes))
		p.gauge("microserve_wal_durable_seq", "Highest fsynced sequence number.", float64(c.DurableSeq))
		p.gauge("microserve_wal_next_seq", "Next sequence number to be appended.", float64(c.NextSeq))
	}

	s.writeHistograms(&p)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(p.b.Bytes())
}

// writeHistograms renders the latency and distribution histogram
// families: HTTP per-route, binary-protocol frames, engine pipeline
// stages, per-model predicted-CTR distributions with their drift
// gauges, online-loop stages and WAL operations. Each subsystem
// appears only when attached, mirroring the counter blocks above.
func (s *Server) writeHistograms(p *promWriter) {
	httpSeries := make([]obs.Series, 0, numRoutes)
	for i := range s.httpH {
		httpSeries = append(httpSeries, obs.Series{
			Labels: `route="` + routeNames[i] + `"`,
			Snap:   s.httpH[i].Snapshot(),
		})
	}
	obs.WriteProm(&p.b, "microserve_http_request_duration_seconds",
		"HTTP request latency by route class.", 1e-9, httpSeries...)

	if s.bin != nil {
		c := s.bin.Counters()
		p.counter("microserve_mbsp_frames_total", "Binary-protocol frames served.", c.Frames)
		p.counter("microserve_mbsp_requests_total", "Requests scored over the binary protocol.", c.Requests)
		p.counter("microserve_mbsp_errors_total", "Binary-protocol connection errors.", c.Errors)
		obs.WriteProm(&p.b, "microserve_mbsp_frame_duration_seconds",
			"Binary-protocol frame service time (read done to response written).", 1e-9,
			obs.Series{Snap: s.bin.FrameLatency()})
	}

	if o := s.eng.Observer(); o != nil {
		obs.WriteProm(&p.b, "microserve_engine_stage_duration_seconds",
			"Engine pipeline stage wall time (score sampled 1-in-64 inside batches).", 1e-9,
			obs.Series{Labels: `stage="batch"`, Snap: o.Batch.Snapshot()},
			obs.Series{Labels: `stage="score"`, Snap: o.Score.Snapshot()},
			obs.Series{Labels: `stage="resolve"`, Snap: o.Resolve.Snapshot()},
			obs.Series{Labels: `stage="candidates"`, Snap: o.Candidates.Snapshot()})

		if dists := s.eng.CTRDistributions(); len(dists) > 0 {
			cs := make([]obs.Series, 0, len(dists))
			for _, d := range dists {
				cs = append(cs, obs.Series{
					Labels: `model="` + d.Model + `",version="` + strconv.Itoa(d.Version) + `"`,
					Snap:   d.Snap,
				})
			}
			obs.WriteProm(&p.b, "microserve_model_predicted_ctr",
				"Live predicted-CTR distribution of each serving version.", obs.CTRScale, cs...)
		}
		if drift := s.eng.Drift(); len(drift) > 0 {
			fmt.Fprintf(&p.b, "# HELP microserve_model_ctr_drift_l1 Normalised L1 distance between the live predicted-CTR distribution and the publish-time baseline, in [0, 2].\n"+
				"# TYPE microserve_model_ctr_drift_l1 gauge\n")
			for _, d := range drift {
				fmt.Fprintf(&p.b, "microserve_model_ctr_drift_l1{model=%q,version=\"%d\",baseline=\"%d\"} %s\n",
					d.Model, d.Version, d.BaselineVersion, strconv.FormatFloat(d.L1, 'g', -1, 64))
			}
		}
	}

	if s.learner != nil {
		h := s.learner.Hists()
		obs.WriteProm(&p.b, "microserve_stream_stage_duration_seconds",
			"Online-loop stage durations: sink residence (offer to fold), fold, publish.", 1e-9,
			obs.Series{Labels: `stage="fold_lag"`, Snap: h.FoldLag},
			obs.Series{Labels: `stage="fold"`, Snap: h.Fold},
			obs.Series{Labels: `stage="publish"`, Snap: h.Publish})
	}

	if s.wal != nil {
		h := s.wal.Hists()
		obs.WriteProm(&p.b, "microserve_wal_op_duration_seconds",
			"WAL operation durations (append sampled 1-in-64; syscalls exact).", 1e-9,
			obs.Series{Labels: `op="append"`, Snap: h.Append},
			obs.Series{Labels: `op="flush"`, Snap: h.Flush},
			obs.Series{Labels: `op="sync"`, Snap: h.Sync},
			obs.Series{Labels: `op="rotate"`, Snap: h.Rotate})
	}
}
