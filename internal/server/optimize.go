package server

// POST /v1/optimize — one query × N candidate snippets through one
// amortised candidate-set scoring pass. The caller either supplies the
// candidate variants explicitly, or supplies a phrase inventory and
// lets the server enumerate the bounded single-edit space around the
// base creative (the optimize package's Generate). Either way the base
// and every candidate are scored in a single engine.ScoreCandidates
// call — the whole set resolves to one pinned model version, shares
// the line-dedup arena, and pays per distinct line, not per candidate.

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/optimize"
	"repro/internal/snippet"
)

// optimizeRequest is the POST /v1/optimize wire shape. Exactly one of
// Candidates / Inventory drives the candidate set: explicit candidates
// are scored as given; an inventory makes the server generate the
// bounded edit space around Lines.
type optimizeRequest struct {
	ID    string `json:"id,omitempty"`
	Model string `json:"model,omitempty"`
	// Query is an opaque context tag echoed back (the "one query" of
	// the workload); the micro model itself is query-conditioned
	// upstream, at training time.
	Query string `json:"query,omitempty"`
	// Lines is the base creative the candidates compete against.
	Lines []string `json:"lines"`
	// Candidates are explicit variants to score (wins over Inventory).
	Candidates [][]string `json:"candidates,omitempty"`
	// Inventory is a phrase pool for server-side candidate generation.
	Inventory []string `json:"inventory,omitempty"`
	MaxN      int      `json:"max_n,omitempty"`
	// TopK bounds the ranked candidates in the response (<= 0 keeps
	// every candidate).
	TopK int `json:"top_k,omitempty"`
}

// optimizeCandidate is one scored variant in the response. Index is the
// candidate's position in the request's (or generated) candidate list;
// the base creative reports index -1. Lines and Edit are populated for
// server-generated candidates, where the caller cannot recover the
// variant text from the index alone.
type optimizeCandidate struct {
	Index int            `json:"index"`
	Lines []string       `json:"lines,omitempty"`
	Edit  *optimize.Edit `json:"edit,omitempty"`
	CTR   float64        `json:"ctr"`
	Score float64        `json:"score"`
}

// optimizeResponse is the POST /v1/optimize reply: the base's own
// score, the argmax snippet (the base itself when nothing beats it),
// and the top-k candidates ranked by predicted CTR.
type optimizeResponse struct {
	ID           string              `json:"id,omitempty"`
	Model        string              `json:"model"`
	ModelVersion int                 `json:"model_version,omitempty"`
	Query        string              `json:"query,omitempty"`
	Base         optimizeCandidate   `json:"base"`
	Best         optimizeCandidate   `json:"best"`
	Candidates   []optimizeCandidate `json:"candidates"`
	// Generated counts server-enumerated candidates (0 when the caller
	// supplied them explicitly).
	Generated int    `json:"generated,omitempty"`
	Error     string `json:"error,omitempty"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.met.optimizes.Add(1)
	ti := traceFrom(r.Context())
	t0 := time.Now()
	var req optimizeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ti.stage("decode", t0)
	if len(req.Lines) == 0 {
		s.writeError(w, http.StatusBadRequest, "optimize needs the base snippet lines")
		return
	}

	cands := req.Candidates
	var gen []optimize.Candidate
	if len(cands) == 0 {
		if len(req.Inventory) == 0 {
			s.writeError(w, http.StatusBadRequest,
				"optimize needs candidates or an inventory to generate them from")
			return
		}
		base, err := snippet.New(req.ID, req.Lines...)
		if err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, "optimize: %v", err)
			return
		}
		o := optimize.New(nil, nil, req.Inventory)
		gen = o.Generate(base)
		cands = make([][]string, len(gen))
		for i := range gen {
			cands[i] = gen[i].Creative.Lines
		}
	}
	if len(cands) > maxBatchItems {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			"candidate set of %d exceeds the %d limit; split it", len(cands), maxBatchItems)
		return
	}
	s.met.optimizeCandidates.Add(uint64(len(cands)))

	// One pass scores the base (slot 0) and every candidate.
	all := make([][]string, 0, len(cands)+1)
	all = append(all, req.Lines)
	all = append(all, cands...)
	t1 := time.Now()
	scores, info, err := s.eng.ScoreCandidates(r.Context(), req.Model, all, req.MaxN, nil)
	ti.stage("score", t1)
	ti.shape(req.Model, len(cands))
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, engine.ErrNoModel) {
			status = http.StatusNotFound
		}
		s.writeJSON(w, status, optimizeResponse{ID: req.ID, Model: req.Model, Query: req.Query, Error: err.Error()})
		return
	}

	resp := optimizeResponse{
		ID:           req.ID,
		Model:        info.Name,
		ModelVersion: info.Version,
		Query:        req.Query,
		Generated:    len(gen),
	}
	resp.Base = optimizeCandidate{Index: -1, CTR: scores[0].CTR, Score: scores[0].Score}

	// Rank candidates by predicted CTR through the bounded top-k heap;
	// ties break toward the earlier candidate.
	k := req.TopK
	if k <= 0 {
		k = len(cands)
	}
	var tk engine.TopK
	tk.Reset(k)
	for i := range cands {
		tk.Offer(i, scores[i+1].CTR)
	}
	idx, _ := tk.Sorted()
	resp.Candidates = make([]optimizeCandidate, len(idx))
	for rank, i := range idx {
		resp.Candidates[rank] = newOptimizeCandidate(int(i), scores[int(i)+1], cands, gen)
	}

	// Best is the argmax — the base itself when no candidate beats it.
	resp.Best = resp.Base
	resp.Best.Lines = req.Lines
	if len(idx) > 0 {
		top := int(idx[0])
		if scores[top+1].CTR > scores[0].CTR {
			resp.Best = newOptimizeCandidate(top, scores[top+1], cands, gen)
			resp.Best.Lines = cands[top]
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// newOptimizeCandidate shapes one response entry; generated candidates
// carry their variant lines and the edit that produced them.
func newOptimizeCandidate(i int, sc core.CandidateScore, cands [][]string, gen []optimize.Candidate) optimizeCandidate {
	c := optimizeCandidate{Index: i, CTR: sc.CTR, Score: sc.Score}
	if i < len(gen) {
		c.Lines = cands[i]
		c.Edit = &gen[i].Edit
	}
	return c
}
