package server

// HTTP-surface observability: request identity, per-route latency
// histograms and slow-request traces. ServeHTTP is the single
// middleware seam — it stamps X-Request-ID (client-supplied or
// minted), times every routed request into a per-route histogram, and
// offers requests past the trace ring's threshold as traces carrying
// whatever shape and stage timings the handler annotated via the
// request context. The annotations are best-effort by design: a
// handler that never touches its traceInfo still yields a useful
// trace (route, total latency, request ID).

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server/binproto"
)

// Route classes for latency accounting. Admin collapses the
// per-model load/rollback/snapshot endpoints into one class: they
// share a traffic profile (rare, operator-driven) and splitting them
// would triple the exposition for no dashboard value.
const (
	routeHealthz = iota
	routeMetrics
	routeModels
	routeScore
	routeScoreBatch
	routeOptimize
	routeFeedback
	routeAdmin
	routeTraces
	routeOther
	numRoutes
)

// routeNames are the route label values on
// microserve_http_request_duration_seconds.
var routeNames = [numRoutes]string{
	"healthz", "metrics", "models", "score", "score_batch",
	"optimize", "feedback", "admin", "traces", "other",
}

// classifyRoute maps a request path to its latency class. Exact
// matches for the fixed routes, one prefix test for the per-model
// admin family.
func classifyRoute(path string) int {
	switch path {
	case "/healthz":
		return routeHealthz
	case "/metrics":
		return routeMetrics
	case "/v1/models":
		return routeModels
	case "/v1/score":
		return routeScore
	case "/v1/score/batch":
		return routeScoreBatch
	case "/v1/optimize":
		return routeOptimize
	case "/v1/feedback":
		return routeFeedback
	case "/debug/traces":
		return routeTraces
	}
	if strings.HasPrefix(path, "/v1/models/") {
		return routeAdmin
	}
	return routeOther
}

// WithTracing attaches a slow-request trace ring: requests slower
// than the ring's threshold are captured with their per-stage
// timings and served at GET /debug/traces. The ring may be shared
// with a binproto.Server so both surfaces land in one timeline.
func WithTracing(ring *obs.TraceRing) Option {
	return func(s *Server) { s.ring = ring }
}

// WithBinary surfaces a binary-protocol server's counters and frame
// latency histogram on this server's /metrics, so one scrape covers
// both protocols.
func WithBinary(b *binproto.Server) Option {
	return func(s *Server) { s.bin = b }
}

// traceKey carries the per-request *traceInfo through the context.
type traceKey struct{}

// traceInfo is the handler-side annotation slot for one traced
// request: the model and item count it resolved to, plus up to
// MaxStages named stage timings. All methods tolerate a nil receiver
// so handlers annotate unconditionally and pay nothing when tracing
// is off.
type traceInfo struct {
	model  string
	items  int
	n      int
	stages [obs.MaxStages]obs.Stage
}

var traceInfoPool = sync.Pool{New: func() any { return new(traceInfo) }}

// traceFrom extracts the annotation slot, nil when tracing is off.
func traceFrom(ctx context.Context) *traceInfo {
	ti, _ := ctx.Value(traceKey{}).(*traceInfo)
	return ti
}

// stage appends one named stage timing measured from t0 to now.
func (ti *traceInfo) stage(name string, t0 time.Time) {
	if ti == nil || ti.n >= obs.MaxStages {
		return
	}
	ti.stages[ti.n] = obs.Stage{Name: name, MS: float64(time.Since(t0)) / float64(time.Millisecond)}
	ti.n++
}

// shape records what the request resolved to.
func (ti *traceInfo) shape(model string, items int) {
	if ti == nil {
		return
	}
	ti.model, ti.items = model, items
}

// ServeHTTP implements http.Handler: the observability middleware
// around the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	rid := r.Header.Get("X-Request-ID")
	if rid == "" {
		rid = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", rid)

	rt := classifyRoute(r.URL.Path)
	var ti *traceInfo
	if s.ring != nil {
		ti = traceInfoPool.Get().(*traceInfo)
		*ti = traceInfo{}
		r = r.WithContext(context.WithValue(r.Context(), traceKey{}, ti))
	}
	t0 := time.Now()
	s.mux.ServeHTTP(w, r)
	d := time.Since(t0)
	if d < 0 {
		d = 0
	}
	s.httpH[rt].Record(uint64(d))
	if ti != nil {
		if s.ring.Slow(d) {
			s.ring.Add(obs.Trace{
				ID:      rid,
				Proto:   "http",
				Kind:    routeNames[rt],
				Model:   ti.model,
				Items:   ti.items,
				UnixMS:  time.Now().UnixMilli(),
				TotalMS: float64(d) / float64(time.Millisecond),
				Stages:  append([]obs.Stage(nil), ti.stages[:ti.n]...),
			})
		}
		traceInfoPool.Put(ti)
	}
}

// tracesBody is the GET /debug/traces wire shape.
type tracesBody struct {
	Enabled     bool        `json:"enabled"`
	ThresholdMS float64     `json:"threshold_ms"`
	Added       uint64      `json:"added"`
	Traces      []obs.Trace `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	body := tracesBody{Traces: []obs.Trace{}}
	if s.ring != nil {
		body.Enabled = true
		body.ThresholdMS = float64(s.ring.Threshold()) / float64(time.Millisecond)
		body.Added = s.ring.Added()
		body.Traces = s.ring.Snapshot()
	}
	s.writeJSON(w, http.StatusOK, body)
}
