package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/wal"
)

// newObservedServer wires the full observability stack the way
// cmd/microserve does: instrumented engine, learner, WAL, trace ring
// with threshold 0 (every request traces).
func newObservedServer(t *testing.T) (*httptest.Server, *engine.Engine, *obs.TraceRing) {
	t.Helper()
	sessions := testSessions(300)
	eo := &engine.Observer{}
	eng := engine.New(engine.WithWorkers(2), engine.WithObserver(eo))
	if _, err := eng.Fit("pbm", sessions[:200], engine.Iterations(5)); err != nil {
		t.Fatal(err)
	}
	eng.UseMicro(testMicroModel())

	w, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	l, err := stream.New(eng, stream.Config{Models: []string{engine.NameMicro}, WAL: w})
	if err != nil {
		t.Fatal(err)
	}

	ring := obs.NewTraceRing(16, 0)
	ts := httptest.NewServer(New(eng, nil,
		WithLearner(l), WithWAL(w), WithTracing(ring)))
	t.Cleanup(ts.Close)
	return ts, eng, ring
}

func TestRequestIDEcho(t *testing.T) {
	ts, _, _ := newObservedServer(t)

	// Client-supplied ID is echoed verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-pinned-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-pinned-42" {
		t.Errorf("echoed ID %q, want client-pinned-42", got)
	}

	// Without one, the server mints a process-unique ID.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "mb-") {
		t.Errorf("minted ID %q does not carry the mb- prefix", got)
	}
}

func TestDebugTraces(t *testing.T) {
	ts, _, ring := newObservedServer(t)

	var sr engine.Response
	if code := postJSON(t, ts.URL+"/v1/score", engine.Request{
		Lines: []string{"Acme Air", "Find cheap flights to Rome"},
	}, &sr); code != http.StatusOK {
		t.Fatalf("score status %d", code)
	}

	var body struct {
		Enabled     bool        `json:"enabled"`
		ThresholdMS float64     `json:"threshold_ms"`
		Traces      []obs.Trace `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &body); code != http.StatusOK {
		t.Fatalf("debug/traces status %d", code)
	}
	if !body.Enabled {
		t.Fatal("tracing reported disabled with a ring attached")
	}
	if len(body.Traces) == 0 {
		t.Fatal("no traces captured at threshold 0")
	}
	var scoreTrace *obs.Trace
	for i := range body.Traces {
		if body.Traces[i].Kind == "score" {
			scoreTrace = &body.Traces[i]
			break
		}
	}
	if scoreTrace == nil {
		t.Fatalf("no score trace among %d traces", len(body.Traces))
	}
	if scoreTrace.Proto != "http" || !strings.HasPrefix(scoreTrace.ID, "mb-") {
		t.Errorf("score trace identity (%q, %q)", scoreTrace.Proto, scoreTrace.ID)
	}
	if scoreTrace.Model != sr.Model || scoreTrace.Items != 1 {
		t.Errorf("score trace shape (%q, %d), want (%q, 1)", scoreTrace.Model, scoreTrace.Items, sr.Model)
	}
	if len(scoreTrace.Stages) != 2 {
		t.Errorf("score trace has %d stages, want decode+score", len(scoreTrace.Stages))
	}
	if ring.Added() == 0 {
		t.Error("ring reports nothing added")
	}
}

// TestDebugTracesDisabled pins the shape when no ring is attached.
func TestDebugTracesDisabled(t *testing.T) {
	ts, _, _ := newTestServer(t)
	var body tracesBody
	if code := getJSON(t, ts.URL+"/debug/traces", &body); code != http.StatusOK {
		t.Fatalf("debug/traces status %d", code)
	}
	if body.Enabled || len(body.Traces) != 0 {
		t.Errorf("disabled tracing body = %+v", body)
	}
}

// TestMetricsHistogramExposition drives traffic through every
// instrumented subsystem and asserts /metrics carries valid histogram
// exposition (_bucket/_sum/_count) for server, engine, stream and WAL.
func TestMetricsHistogramExposition(t *testing.T) {
	ts, _, _ := newObservedServer(t)

	if code := postJSON(t, ts.URL+"/v1/score", engine.Request{
		Lines: []string{"Acme Air", "Find cheap flights to Rome"},
	}, &engine.Response{}); code != http.StatusOK {
		t.Fatalf("score status %d", code)
	}
	var fr feedbackResponse
	if code := postJSON(t, ts.URL+"/v1/feedback", map[string]any{
		"snippet": map[string]any{"lines": []string{"cheap flights"}, "impressions": 10, "clicks": 2},
	}, &fr); code != http.StatusOK {
		t.Fatalf("feedback status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)

	for _, family := range []string{
		"microserve_http_request_duration_seconds",
		"microserve_engine_stage_duration_seconds",
		"microserve_stream_stage_duration_seconds",
		"microserve_wal_op_duration_seconds",
		"microserve_model_predicted_ctr",
	} {
		if !strings.Contains(text, "# TYPE "+family+" histogram") {
			t.Errorf("missing histogram TYPE header for %s", family)
		}
		if !strings.Contains(text, family+"_bucket{") {
			t.Errorf("missing _bucket series for %s", family)
		}
		if !strings.Contains(text, family+"_count") {
			t.Errorf("missing _count for %s", family)
		}
	}
	if !strings.Contains(text, `microserve_http_request_duration_seconds_bucket{route="score",le="+Inf"} 1`) {
		t.Error("score route histogram did not count the scored request")
	}
	if !strings.Contains(text, "microserve_build_info{go_version=") {
		t.Error("missing microserve_build_info")
	}
	if !strings.Contains(text, "microserve_uptime_seconds") {
		t.Error("missing microserve_uptime_seconds")
	}
}

// TestHealthzObservability checks the new healthz fields: build
// identity, uptime and the drift block once a second version with a
// pinned baseline is serving.
func TestHealthzObservability(t *testing.T) {
	ts, eng, _ := newObservedServer(t)

	// Score some traffic so v1's CTR histogram has samples, then
	// install a second micro version: its baseline pins v1's live
	// distribution and the drift block appears.
	for i := 0; i < 20; i++ {
		if code := postJSON(t, ts.URL+"/v1/score", engine.Request{
			Lines: []string{"Acme Air", "Find cheap flights to Rome"},
		}, &engine.Response{}); code != http.StatusOK {
			t.Fatalf("score status %d", code)
		}
	}
	eng.UseMicro(testMicroModel())
	if code := postJSON(t, ts.URL+"/v1/score", engine.Request{
		Lines: []string{"Acme Air", "Find cheap flights to Rome"},
	}, &engine.Response{}); code != http.StatusOK {
		t.Fatal("score after reinstall failed")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Build         obs.BuildInfo        `json:"build"`
		UptimeSeconds float64              `json:"uptime_seconds"`
		Drift         []engine.DriftStatus `json:"drift"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Build.GoVersion == "" {
		t.Error("healthz build block missing go_version")
	}
	if body.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", body.UptimeSeconds)
	}
	if len(body.Drift) != 1 {
		t.Fatalf("drift block has %d entries, want 1: %+v", len(body.Drift), body.Drift)
	}
	d := body.Drift[0]
	if d.Model != engine.NameMicro || d.Version != 2 || d.BaselineVersion != 1 {
		t.Errorf("drift entry = %+v", d)
	}
	if d.L1 != 0 {
		t.Errorf("identical model refit drifted: L1 = %v", d.L1)
	}
}
