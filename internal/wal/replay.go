package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/snapshot"
)

// errBadSegment marks a segment whose header (or whole body) is
// unreadable: recovery and replay skip it with a counter instead of
// refusing the log. Real I/O errors propagate unwrapped.
var errBadSegment = errors.New("wal: unreadable segment")

// segScan is what one pass over a segment file learns.
type segScan struct {
	firstSeq    uint64
	createdUnix int64
	lastSeq     uint64 // highest valid seq seen (0 when none)
	records     int
	corrupt     int   // frames skipped on CRC/decode/sequence failure
	goodEnd     int64 // offset just past the last valid frame
	size        int64
	tailLost    bool // bytes after goodEnd could not be framed
}

// walkSegment reads one segment file and streams every valid frame
// through emit (which may be nil for a metadata-only scan). lastSeq is
// the highest sequence already accepted from earlier segments; frames
// that do not advance it are counted corrupt and skipped.
//
// Failure policy per frame:
//   - partial header or partial payload at end of file — torn write:
//     stop, leaving goodEnd at the last whole frame;
//   - implausible length field — framing lost: stop likewise;
//   - CRC mismatch, undecodable payload, or non-monotonic sequence —
//     corrupt record: skip it by its claimed length and continue.
func walkSegment(path string, lastSeq uint64, emit func(seq uint64, rec *Record) error) (segScan, error) {
	var scan segScan
	b, err := os.ReadFile(path)
	if err != nil {
		return scan, err
	}
	scan.size = int64(len(b))
	firstSeq, createdUnix, hdrLen, err := parseSegmentHeader(b)
	if err != nil {
		scan.tailLost = scan.size > 0
		return scan, fmt.Errorf("%w: %s: %v", errBadSegment, filepath.Base(path), err)
	}
	scan.firstSeq = firstSeq
	scan.createdUnix = createdUnix
	scan.goodEnd = int64(hdrLen)
	last := lastSeq

	off := hdrLen
	for off < len(b) {
		if len(b)-off < frameHeaderLen {
			scan.tailLost = true // torn header
			break
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n == 0 || n > maxRecordLen {
			scan.tailLost = true // length field is garbage; framing is gone
			break
		}
		if off+frameHeaderLen+n > len(b) {
			scan.tailLost = true // torn payload
			break
		}
		payload := b[off+frameHeaderLen : off+frameHeaderLen+n]
		off += frameHeaderLen + n
		if crc32.Checksum(payload, castagnoli) != sum {
			scan.corrupt++
			continue
		}
		seq, rec, err := decodePayload(payload)
		if err != nil || seq <= last {
			scan.corrupt++
			continue
		}
		last = seq
		scan.lastSeq = seq
		scan.records++
		scan.goodEnd = int64(off)
		if emit != nil {
			if err := emit(seq, &rec); err != nil {
				return scan, err
			}
		}
	}
	return scan, nil
}

// recover scans the log directory, truncates the newest segment's torn
// tail, discards empty or unreadable boot litter, seals the survivors
// and positions nextSeq. Called once from Open, before the WAL is
// shared.
func (w *WAL) recover() error {
	paths, err := filepath.Glob(filepath.Join(w.dir, "wal-*.log"))
	if err != nil {
		return err
	}
	// Segment file names embed the first sequence in fixed-width hex,
	// so lexical order is sequence order.
	sort.Strings(paths)
	man := readManifest(filepath.Join(w.dir, manifestName))
	sealedAt := map[string]int64{}
	if man != nil {
		for _, s := range man.Segments {
			sealedAt[s.File] = s.SealedUnix
		}
	}

	var last uint64
	for i, path := range paths {
		name := filepath.Base(path)
		scan, err := walkSegment(path, last, nil)
		if err != nil {
			if !errors.Is(err, errBadSegment) {
				return err
			}
			w.opt.Logger.Printf("wal: recover: %v", err)
		}
		isNewest := i == len(paths)-1
		if scan.records == 0 {
			// Nothing recoverable in it — an empty segment from a previous
			// boot, or a file corrupted beyond framing.
			if rmErr := os.Remove(path); rmErr != nil {
				w.opt.Logger.Printf("wal: recover: drop %s: %v", name, rmErr)
				continue
			}
			if scan.size > scan.goodEnd {
				w.truncatedBytes.Add(uint64(scan.size - scan.goodEnd))
			}
			continue
		}
		if isNewest && scan.goodEnd < scan.size {
			// Torn tail: cut the file back to its last whole frame so the
			// next scan (and any external reader) sees only valid bytes.
			if trErr := os.Truncate(path, scan.goodEnd); trErr != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", name, trErr)
			}
			w.truncatedBytes.Add(uint64(scan.size - scan.goodEnd))
			w.opt.Logger.Printf("wal: truncated %d torn bytes from %s", scan.size-scan.goodEnd, name)
			scan.size = scan.goodEnd
		}
		sealed, ok := sealedAt[name]
		if !ok {
			sealed = fileModUnix(path)
		}
		w.sealed = append(w.sealed, segmentInfo{
			File:       name,
			FirstSeq:   scan.firstSeq,
			LastSeq:    scan.lastSeq,
			Records:    scan.records,
			Bytes:      scan.size,
			SealedUnix: sealed,
		})
		if scan.lastSeq > last {
			last = scan.lastSeq
		}
	}
	sortSegments(w.sealed)
	w.nextSeq = last + 1
	if man != nil && man.NextSeq > w.nextSeq {
		// Pruned or lost segments held higher sequences once; never
		// reuse them.
		w.nextSeq = man.NextSeq
	}
	if man != nil && len(man.Segments) != len(w.sealed) {
		w.opt.Logger.Printf("wal: manifest lists %d segments, directory has %d recoverable — trusting the scan",
			len(man.Segments), len(w.sealed))
	}
	return nil
}

// Replay streams every retained record oldest-first through fn,
// counting replays and corrupt skips. fn errors abort the replay and
// propagate; unreadable segments are skipped with the corrupt counter.
// Call it once, right after Open, before Append traffic begins.
func (w *WAL) Replay(fn func(seq uint64, rec *Record) error) error {
	w.mu.Lock()
	segs := append([]segmentInfo(nil), w.sealed...)
	w.mu.Unlock()
	var last uint64
	for _, s := range segs {
		scan, err := walkSegment(filepath.Join(w.dir, s.File), last, func(seq uint64, rec *Record) error {
			w.replayed.Add(1)
			return fn(seq, rec)
		})
		w.corrupt.Add(uint64(scan.corrupt))
		if scan.tailLost {
			w.corrupt.Add(1)
		}
		if err != nil {
			if !errors.Is(err, errBadSegment) {
				return err
			}
			w.opt.Logger.Printf("wal: replay: %v", err)
		}
		if scan.lastSeq > last {
			last = scan.lastSeq
		}
	}
	return nil
}

// writeManifest persists the inventory atomically and durably.
func writeManifest(path string, m *manifest) error {
	return snapshot.WriteFileAtomic(path, func(wr io.Writer) error {
		enc := json.NewEncoder(wr)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// fileModUnix returns a file's mtime as unix seconds (0 on error) —
// the sealed-time fallback for segments recovered without a manifest.
func fileModUnix(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.ModTime().Unix()
}
