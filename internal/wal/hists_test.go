package wal

import "testing"

func TestWALHists(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := 0; i < appendSampleEvery+1; i++ {
		if _, err := w.Append(Record{SnippetLines: []string{"cheap flights"}, Impressions: 5, Clicks: 1}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	h := w.Hists()
	// Tickets 0 and appendSampleEvery are the sampled ones.
	if h.Append.Count < 2 {
		t.Fatalf("append samples = %d, want >= 2", h.Append.Count)
	}
	if h.Sync.Count == 0 {
		t.Fatal("sync histogram recorded nothing under SyncAlways")
	}
	if h.Flush.Count == 0 {
		t.Fatal("flush histogram recorded nothing")
	}
}
