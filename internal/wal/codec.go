package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/clickmodel"
	"repro/internal/snapshot"
)

// Record is one durable unit of feedback: macro evidence (a SERP
// session), micro evidence (one snippet's aggregated counts), or both
// — the WAL-side mirror of internal/stream's Event, flattened so the
// ingest path can build one on the stack without converting structs.
type Record struct {
	// Session is the macro evidence; nil when the record carries only
	// snippet feedback.
	Session *clickmodel.Session
	// SnippetLines / Impressions / Clicks are the micro evidence; an
	// empty SnippetLines means no snippet part.
	SnippetLines []string
	Impressions  int
	Clicks       int
}

// empty reports whether the record carries no evidence at all.
func (r *Record) empty() bool {
	return r.Session == nil && len(r.SnippetLines) == 0
}

// Record payloads are framed as
//
//	u32 length | u32 CRC-32C of payload | payload
//
// (both little-endian, Castagnoli polynomial — hardware-accelerated on
// every serving CPU this repo targets) with the payload itself
//
//	uvarint seq | byte flags | [session part] | [snippet part]
//
// using internal/snapshot's append primitives: the session part is
// query, doc count, docs, one click byte per doc; the snippet part is
// line count, lines, impressions, clicks. The fixed-width frame header
// lets recovery walk a segment byte-exactly and decide "torn tail"
// versus "corrupt record" without resynchronisation heuristics.
const (
	frameHeaderLen = 8
	flagSession    = byte(1 << 0)
	flagSnippet    = byte(1 << 1)

	// maxRecordLen bounds one frame's payload; feedback events are a
	// few hundred bytes, so a larger claimed length marks a corrupt
	// length field before recovery trusts it.
	maxRecordLen = 1 << 20
)

// castagnoli is the CRC-32C table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record (header + payload) to dst.
//
//mb:noalloc
func appendFrame(dst []byte, seq uint64, r *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header backfilled below
	dst = snapshot.AppendUint(dst, seq)
	var flags byte
	if r.Session != nil {
		flags |= flagSession
	}
	if len(r.SnippetLines) > 0 {
		flags |= flagSnippet
	}
	dst = append(dst, flags)
	if r.Session != nil {
		dst = snapshot.AppendString(dst, r.Session.Query)
		dst = snapshot.AppendUint(dst, uint64(len(r.Session.Docs)))
		for _, doc := range r.Session.Docs {
			dst = snapshot.AppendString(dst, doc)
		}
		for _, c := range r.Session.Clicks {
			dst = snapshot.AppendBool(dst, c)
		}
	}
	if len(r.SnippetLines) > 0 {
		dst = snapshot.AppendUint(dst, uint64(len(r.SnippetLines)))
		for _, line := range r.SnippetLines {
			dst = snapshot.AppendString(dst, line)
		}
		dst = snapshot.AppendUint(dst, uint64(r.Impressions))
		dst = snapshot.AppendUint(dst, uint64(r.Clicks))
	}
	payload := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodePayload decodes one frame payload (already CRC-verified) back
// into a record. The returned record owns fresh allocations; nothing
// aliases the input buffer.
func decodePayload(payload []byte) (seq uint64, rec Record, err error) {
	c := snapshot.NewCursor(payload)
	seq = c.Uint()
	flags := c.Byte()
	if flags&flagSession != 0 {
		s := &clickmodel.Session{Query: c.String()}
		n := c.Int()
		if n > 0 && c.Err() == nil {
			s.Docs = make([]string, n)
			s.Clicks = make([]bool, n)
			for i := range s.Docs {
				s.Docs[i] = c.String()
			}
			for i := range s.Clicks {
				s.Clicks[i] = c.Bool()
			}
		}
		rec.Session = s
	}
	if flags&flagSnippet != 0 {
		n := c.Int()
		if n > 0 && c.Err() == nil {
			rec.SnippetLines = make([]string, n)
			for i := range rec.SnippetLines {
				rec.SnippetLines[i] = c.String()
			}
		}
		rec.Impressions = int(c.Uint())
		rec.Clicks = int(c.Uint())
	}
	if err := c.Err(); err != nil {
		return 0, Record{}, err
	}
	if c.Remaining() != 0 {
		return 0, Record{}, fmt.Errorf("wal: %d trailing payload bytes", c.Remaining())
	}
	if flags&(flagSession|flagSnippet) == 0 {
		return 0, Record{}, fmt.Errorf("wal: record %d carries no evidence", seq)
	}
	return seq, rec, nil
}

// Segment files open with a fixed header
//
//	"MBWL" | byte format version | uvarint first seq | uvarint created-unix
//
// so a directory listing plus one small read identifies every segment
// and its place in the sequence without trusting file names.
const (
	segMagic   = "MBWL"
	segVersion = 1
)

// appendSegmentHeader appends a segment header to dst.
func appendSegmentHeader(dst []byte, firstSeq uint64, createdUnix int64) []byte {
	dst = append(dst, segMagic...)
	dst = append(dst, segVersion)
	dst = snapshot.AppendUint(dst, firstSeq)
	dst = snapshot.AppendUint(dst, uint64(createdUnix))
	return dst
}

// parseSegmentHeader reads a segment header from the front of b,
// returning the header length in bytes.
func parseSegmentHeader(b []byte) (firstSeq uint64, createdUnix int64, n int, err error) {
	if len(b) < len(segMagic)+1 || string(b[:len(segMagic)]) != segMagic {
		return 0, 0, 0, fmt.Errorf("wal: bad segment magic")
	}
	if v := b[len(segMagic)]; v != segVersion {
		return 0, 0, 0, fmt.Errorf("wal: unsupported segment version %d (this build reads %d)", v, segVersion)
	}
	c := snapshot.NewCursor(b[len(segMagic)+1:])
	firstSeq = c.Uint()
	createdUnix = int64(c.Uint())
	if err := c.Err(); err != nil {
		return 0, 0, 0, fmt.Errorf("wal: truncated segment header: %w", err)
	}
	return firstSeq, createdUnix, len(segMagic) + 1 + len(b[len(segMagic)+1:]) - c.Remaining(), nil
}
