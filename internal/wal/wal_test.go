package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clickmodel"
)

// sessRec builds a session record with a recognisable query.
func sessRec(i int) Record {
	return Record{Session: &clickmodel.Session{
		Query:  fmt.Sprintf("q%d", i),
		Docs:   []string{"a", "b"},
		Clicks: []bool{true, false},
	}}
}

// snipRec builds a snippet-feedback record.
func snipRec(i int) Record {
	return Record{
		SnippetLines: []string{fmt.Sprintf("cheap flights %d", i), "book now"},
		Impressions:  50,
		Clicks:       i % 7,
	}
}

// bothRec carries a session and a snippet in one frame.
func bothRec(i int) Record {
	r := sessRec(i)
	s := snipRec(i)
	r.SnippetLines, r.Impressions, r.Clicks = s.SnippetLines, s.Impressions, s.Clicks
	return r
}

func mustOpen(t *testing.T, dir string, opt Options) *WAL {
	t.Helper()
	w, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// replayAll collects every retained record.
func replayAll(t *testing.T, w *WAL) []Record {
	t.Helper()
	var out []Record
	err := w.Replay(func(seq uint64, rec *Record) error {
		if want := uint64(len(out) + 1); seq < want {
			t.Fatalf("replay seq %d went backwards (have %d records)", seq, len(out))
		}
		cp := *rec
		if rec.Session != nil {
			s := *rec.Session
			cp.Session = &s
		}
		cp.SnippetLines = append([]string(nil), rec.SnippetLines...)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncAlways})
	want := []Record{sessRec(0), snipRec(1), bothRec(2), sessRec(3)}
	for i, r := range want {
		seq, err := w.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq = %d", i, seq)
		}
	}
	if got := w.DurableSeq(); got != 4 {
		t.Fatalf("DurableSeq = %d after SyncAlways appends, want 4", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, Options{})
	got := replayAll(t, w2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if (want[i].Session == nil) != (got[i].Session == nil) {
			t.Fatalf("record %d session presence mismatch", i)
		}
		if want[i].Session != nil && got[i].Session.Query != want[i].Session.Query {
			t.Fatalf("record %d query = %q, want %q", i, got[i].Session.Query, want[i].Session.Query)
		}
		if want[i].Session != nil && !got[i].Session.Clicks[0] {
			t.Fatalf("record %d lost its click bits", i)
		}
		if len(want[i].SnippetLines) > 0 {
			if got[i].SnippetLines[0] != want[i].SnippetLines[0] ||
				got[i].Impressions != want[i].Impressions || got[i].Clicks != want[i].Clicks {
				t.Fatalf("record %d snippet mismatch: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
	c := w2.Counters()
	if c.Replayed != 4 || c.CorruptSkipped != 0 || c.TruncatedBytes != 0 {
		t.Fatalf("counters after clean replay: %+v", c)
	}
}

func TestAppendValidation(t *testing.T) {
	w := mustOpen(t, t.TempDir(), Options{})
	if _, err := w.Append(Record{}); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, err := w.Append(sessRec(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(sessRec(2)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := w.Append(sessRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, Options{})
	seq, err := w2.Append(sessRec(5))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("first seq after reopen = %d, want 6", seq)
	}
	if got := replayAll(t, w2); len(got) != 5 {
		t.Fatalf("replay after reopen = %d records, want the 5 from the first run", len(got))
	}
}

func TestRotationAndManifest(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rotations under a handful of appends.
	w := mustOpen(t, dir, Options{SegmentBytes: 256, Sync: SyncOff})
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := w.Append(sessRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatalf("manifest is not JSON: %v", err)
	}
	if len(man.Segments) != len(segs) {
		t.Fatalf("manifest lists %d segments, directory has %d", len(man.Segments), len(segs))
	}
	if man.NextSeq != n+1 {
		t.Fatalf("manifest next_seq = %d, want %d", man.NextSeq, n+1)
	}

	w2 := mustOpen(t, dir, Options{})
	if got := replayAll(t, w2); len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
}

func TestPruneMaxBytes(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{SegmentBytes: 256, MaxBytes: 1024, Sync: SyncOff})
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := w.Append(sessRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := w.Counters()
	if c.PrunedSegments == 0 {
		t.Fatalf("no segments pruned under a 1KiB budget: %+v", c)
	}
	if c.Bytes > 1024+256 {
		t.Fatalf("log holds %d bytes, budget 1024 (+1 segment slack)", c.Bytes)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The pruned history is gone, the tail survives, and the sequence
	// space never rewinds past what the manifest recorded.
	w2 := mustOpen(t, dir, Options{})
	got := replayAll(t, w2)
	if len(got) == 0 || len(got) >= n {
		t.Fatalf("replayed %d records, want a proper pruned suffix of %d", len(got), n)
	}
	if c2 := w2.Counters(); c2.NextSeq != n+1 {
		t.Fatalf("NextSeq after prune+reopen = %d, want %d", c2.NextSeq, n+1)
	}
}

func TestPruneRetention(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncOff, Retention: time.Hour})
	if _, err := w.Append(sessRec(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(sessRec(1)); err != nil {
		t.Fatal(err)
	}

	// Backdate the sealed segment far past the retention window, then
	// rotate again: pruning keys off the manifest's sealed time.
	w.mu.Lock()
	w.sealed[0].SealedUnix = time.Now().Add(-2 * time.Hour).Unix()
	w.mu.Unlock()
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if c := w.Counters(); c.PrunedSegments != 1 {
		t.Fatalf("PrunedSegments = %d, want 1: %+v", c.PrunedSegments, c)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := mustOpen(t, dir, Options{})
	got := replayAll(t, w2)
	if len(got) != 1 || got[0].Session.Query != "q1" {
		t.Fatalf("retained records = %+v, want only q1", got)
	}
}

func TestSeqFloorSurvivesLostSegments(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	for i := 0; i < 9; i++ {
		if _, err := w.Append(sessRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// All data files vanish (disk swap, manual cleanup) but the
	// manifest survives: sequence numbers must not be reissued.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	w2 := mustOpen(t, dir, Options{})
	seq, err := w2.Append(sessRec(9))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10 {
		t.Fatalf("seq after losing segments = %d, want the manifest floor 10", seq)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := w.Append(sessRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	// Simulate a crash mid-write: a frame header promising more payload
	// than the file holds.
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(segs[0])

	w2 := mustOpen(t, dir, Options{})
	if got := replayAll(t, w2); len(got) != 10 {
		t.Fatalf("replayed %d records, want the 10 whole ones", len(got))
	}
	c := w2.Counters()
	if c.TruncatedBytes != uint64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", c.TruncatedBytes, len(torn))
	}
	after, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-int64(len(torn)) {
		t.Fatalf("torn tail not cut: %d -> %d", before.Size(), after.Size())
	}
}

// TestCorruptEveryByte is the exhaustive recovery property: flip every
// single byte of a multi-segment log, one at a time, and require that
// recovery plus replay never fails and never invents records — what
// survives is always a subset of what was written.
func TestCorruptEveryByte(t *testing.T) {
	master := t.TempDir()
	w := mustOpen(t, master, Options{SegmentBytes: 512, Sync: SyncOff})
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := w.Append(sessRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(master, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("want a multi-segment log, got %v", segs)
	}

	valid := map[string]bool{}
	for i := 0; i < n; i++ {
		valid[fmt.Sprintf("q%d", i)] = true
	}

	for _, seg := range segs {
		orig, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(orig); off++ {
			dir := t.TempDir()
			for _, s := range segs {
				b, _ := os.ReadFile(s)
				if s == seg {
					b = append([]byte(nil), b...)
					b[off] ^= 0xff
				}
				if err := os.WriteFile(filepath.Join(dir, filepath.Base(s)), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			w2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("%s byte %d: open: %v", filepath.Base(seg), off, err)
			}
			replayed := 0
			err = w2.Replay(func(_ uint64, rec *Record) error {
				replayed++
				if rec.Session == nil || !valid[rec.Session.Query] {
					t.Fatalf("%s byte %d: replay invented %+v", filepath.Base(seg), off, rec)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s byte %d: replay: %v", filepath.Base(seg), off, err)
			}
			if replayed > n {
				t.Fatalf("%s byte %d: replayed %d > written %d", filepath.Base(seg), off, replayed, n)
			}
			c := w2.Counters()
			if replayed < n && c.CorruptSkipped == 0 && c.TruncatedBytes == 0 {
				t.Fatalf("%s byte %d: lost %d records without a counter: %+v",
					filepath.Base(seg), off, n-replayed, c)
			}
			_ = w2.Close() // WAL opened on deliberately corrupted bytes
			os.RemoveAll(dir)
		}
	}
}

func TestConcurrentSyncAlwaysGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Sync: SyncAlways})
	const (
		writers = 8
		each    = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := w.Append(sessRec(g*each + i))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if w.DurableSeq() < seq {
					t.Errorf("append returned before seq %d was durable (durable %d)", seq, w.DurableSeq())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	c := w.Counters()
	if c.Appended != writers*each {
		t.Fatalf("Appended = %d, want %d", c.Appended, writers*each)
	}
	if c.Syncs >= c.Appended {
		t.Logf("no group commit observed (%d syncs for %d appends) — legal but slow", c.Syncs, c.Appended)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := mustOpen(t, dir, Options{})
	if got := replayAll(t, w2); len(got) != writers*each {
		t.Fatalf("replayed %d, want %d", len(got), writers*each)
	}
}

func TestSyncBarrier(t *testing.T) {
	w := mustOpen(t, t.TempDir(), Options{SyncInterval: time.Hour}) // flusher effectively off
	for i := 0; i < 7; i++ {
		if _, err := w.Append(sessRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.DurableSeq(); got != 0 {
		t.Fatalf("DurableSeq before barrier = %d, want 0", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableSeq(); got != 7 {
		t.Fatalf("DurableSeq after barrier = %d, want 7", got)
	}
}

func TestCodecRejectsTampering(t *testing.T) {
	rec := bothRec(3)
	frame := appendFrame(nil, 9, &rec)
	payload := frame[frameHeaderLen:]
	seq, got, err := decodePayload(payload)
	if err != nil || seq != 9 {
		t.Fatalf("decode: seq %d, err %v", seq, err)
	}
	if got.Session.Query != "q3" || got.Impressions != 50 {
		t.Fatalf("decoded %+v", got)
	}
	// Truncated payloads and trailing garbage must both fail loudly.
	if _, _, err := decodePayload(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, _, err := decodePayload(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing garbage decoded")
	}
	if _, _, err := decodePayload([]byte{0}); err == nil {
		t.Fatal("payload with no flags decoded")
	}
}

func TestSegmentHeaderVersionGate(t *testing.T) {
	hdr := appendSegmentHeader(nil, 42, 1700000000)
	first, created, n, err := parseSegmentHeader(hdr)
	if err != nil || first != 42 || created != 1700000000 || n != len(hdr) {
		t.Fatalf("parse: %d %d %d %v", first, created, n, err)
	}
	bad := append([]byte(nil), hdr...)
	bad[len(segMagic)] = 99 // future format version
	if _, _, _, err := parseSegmentHeader(bad); err == nil {
		t.Fatal("future version accepted")
	}
	if _, _, _, err := parseSegmentHeader([]byte("nope")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[SyncPolicy]string{SyncBatched: "batched", SyncAlways: "always", SyncOff: "off"} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

// TestBatchedAppendAllocates pins the hot-path guarantee: steady-state
// batched appends do not allocate.
func TestBatchedAppendAllocates(t *testing.T) {
	w := mustOpen(t, t.TempDir(), Options{SyncInterval: time.Hour})
	rec := sessRec(1)
	// Warm the append buffer and the encoder scratch.
	for i := 0; i < 2000; i++ {
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched Append allocates %.1f objects/op, want 0", allocs)
	}
}

func TestManifestHumanReadable(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	if _, err := w.Append(sessRec(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("\n")) || !strings.Contains(string(raw), "next_seq") {
		t.Fatalf("manifest should be indented JSON with next_seq, got %q", raw)
	}
}
