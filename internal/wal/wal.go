// Package wal is the durability layer beneath the online learning
// loop: a segmented append-only write-ahead log that records every
// accepted feedback event before the learner's RAM-resident statistics
// absorb it, so a crash or kill -9 no longer forgets the clicks the
// paper's micro-browsing model is being calibrated against.
//
// Layout on disk: a directory of segment files
//
//	wal-<first-seq, 16 hex>.log
//
// each opening with a small header (magic, format version, first
// sequence number, creation time) followed by length-prefixed record
// frames, every frame carrying its own CRC-32C and monotonic sequence
// number (see codec.go). A MANIFEST file (JSON, rewritten atomically
// on every rotation and prune) records the segment inventory for
// operators and cross-checking; the directory scan stays the source of
// truth on open, so a lost or stale manifest never loses data.
//
// Durability is a policy, not a constant:
//
//   - SyncAlways — every Append is written and fsynced before it
//     returns. Concurrent appenders group-commit: whoever grabs the
//     sync lock fsyncs everything written so far, and the rest observe
//     the advanced durable sequence and return without their own
//     fsync. Zero accepted events survive only in RAM.
//   - SyncBatched (default) — Append publishes the record into a
//     lock-free ring; a background encoder frames it and a writer
//     flushes and fsyncs every SyncInterval (draining early past a
//     chunk bound). The hot path is a ticket and a slot store — no
//     lock, no syscall, no allocation — and kill -9 loses at most one
//     flush interval of accepted events.
//   - SyncOff — like batched but never fsyncs; the OS page cache
//     decides. A process kill still loses at most one flush interval;
//     power loss can lose whatever the kernel had not written back.
//
// Recovery on Open scans every segment, truncates a torn tail (a
// partially written frame at the end of the newest segment), and seals
// history; Replay then streams the retained records oldest-first,
// skipping corrupt frames by their claimed length with a counter
// rather than refusing the whole log. Rotation is size- and age-based,
// and pruning (retention window and/or byte budget, keyed by the
// learner's decay horizon) keeps disk usage bounded.
package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/obs"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncBatched flushes and fsyncs on the SyncInterval cadence.
	SyncBatched SyncPolicy = iota
	// SyncAlways fsyncs before every Append returns (group-committed).
	SyncAlways
	// SyncOff writes on the flush cadence but never fsyncs.
	SyncOff
)

// String returns the policy name used in flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "batched"
	}
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: closed")

// errEmptyRecord is hoisted to package level so Append's reject path
// stays allocation-free.
var errEmptyRecord = errors.New("wal: record carries neither session nor snippet")

// manifestName is the inventory file rewritten on rotation and prune.
const manifestName = "MANIFEST"

// The hot path is a three-stage pipeline, each stage on its own
// goroutine so a slow device never surfaces in an Append:
//
//	producers ──ring──▶ encoder ──chunk buffer──▶ writer ──▶ file
//
// Producers publish Records into a fixed ring (a ticket plus one slot
// store — no lock, no encode, no syscall); the encoder drains the ring
// in ticket order, assigns sequence numbers, frames and checksums
// records into the chunk buffer; the writer swaps full chunks out and
// hands them to the OS with the mutex released. fsync rides the
// encoder's tick (SyncBatched) or a group-committed barrier
// (SyncAlways).
const (
	// ringBits sizes the publish ring: 1<<14 records in flight absorbs
	// an fsync pause at full ingest rate while costing ~1 MiB.
	ringBits = 14
	ringSize = 1 << ringBits
	ringMask = ringSize - 1

	// pokeStride is how often a producer nudges the encoder outside
	// SyncAlways; stragglers are bounded by the SyncInterval tick.
	pokeStride = 256

	// drainBatch bounds how long the encoder holds the mutex per drain
	// pass so watermark readers and the writer's swap interleave.
	drainBatch = 1024

	// flushChunk hands the chunk buffer to the writer early when it
	// outgrows this many bytes, so burst ingest does not sit in RAM
	// for a whole flush tick. maxBuffered is the backpressure bound:
	// past it the encoder stops trusting the writer to catch up and
	// drains inline, capping memory at a few chunks no matter how far
	// the device falls behind.
	flushChunk  = 1 << 20
	maxBuffered = 4 << 20
)

// ringSlot is one publish slot, padded out to a cache line so
// neighbouring producers and the encoder do not false-share. turn
// follows the ticketed-sequence protocol: a producer holding ticket t
// waits for turn == t, stores its record, then publishes turn = t+1;
// the encoder consumes at turn == t+1 and releases the slot for the
// next lap with turn = t + ringSize.
type ringSlot struct {
	turn atomic.Uint64
	rec  Record
	_    [64 - (8+unsafe.Sizeof(Record{}))%64]byte
}

// Options parameterises a WAL. The zero value is serviceable: batched
// fsync on a 100ms interval, 64 MiB segments rotated at least every 10
// minutes, unbounded retention.
type Options struct {
	// SegmentBytes rotates the active segment when it reaches this
	// size (default 64 MiB).
	SegmentBytes int64
	// SegmentAge rotates the active segment when it has records and is
	// older than this (default 10m), so pruning has sealed segments to
	// work with even under light traffic.
	SegmentAge time.Duration
	// Sync is the fsync policy (default SyncBatched).
	Sync SyncPolicy
	// SyncInterval is the flush (and, for SyncBatched, fsync) cadence
	// (default 100ms). This is the bounded-loss window of a kill -9.
	SyncInterval time.Duration
	// Retention prunes sealed segments whose newest record is older
	// than this (0 = keep everything). Key it to the learner's decay
	// window: feedback the learner has fully aged out need not replay.
	Retention time.Duration
	// MaxBytes prunes oldest sealed segments while the log exceeds
	// this total size (0 = unbounded).
	MaxBytes int64
	// Logger receives rotation/prune/recovery lines; nil logs nothing.
	Logger *log.Logger
}

func (o *Options) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SegmentAge <= 0 {
		o.SegmentAge = 10 * time.Minute
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = log.New(io.Discard, "", 0)
	}
}

// segmentInfo describes one sealed (read-only) segment.
type segmentInfo struct {
	File       string `json:"file"`
	FirstSeq   uint64 `json:"first_seq"`
	LastSeq    uint64 `json:"last_seq"`
	Records    int    `json:"records"`
	Bytes      int64  `json:"bytes"`
	SealedUnix int64  `json:"sealed_unix"`
}

// Counters is a snapshot of the log's health, exposed on /healthz and
// /metrics.
type Counters struct {
	Appended       uint64 `json:"appended"`
	AppendErrors   uint64 `json:"append_errors"`
	Flushes        uint64 `json:"flushes"`
	Syncs          uint64 `json:"syncs"`
	Replayed       uint64 `json:"replayed"`
	CorruptSkipped uint64 `json:"corrupt_skipped"`
	TruncatedBytes uint64 `json:"truncated_bytes"`
	PrunedSegments uint64 `json:"pruned_segments"`
	Segments       int    `json:"segments"`
	Bytes          int64  `json:"bytes"`
	DurableSeq     uint64 `json:"durable_seq"`
	NextSeq        uint64 `json:"next_seq"`
}

// WAL is one open log directory. Open it, Replay history into the
// learner, then Append accepted feedback for the life of the process;
// Close flushes and seals. Append is safe for concurrent callers.
type WAL struct {
	dir string
	opt Options

	// The publish ring. Producers take a ticket from head and store
	// their record into ring[ticket%ringSize]; the encoder consumes in
	// ticket order at tail. base is the sequence number of ticket 0
	// (the recovered nextSeq), fixed at Open, so seq = base + ticket
	// without any shared counter on the hot path.
	ring []ringSlot
	head atomic.Uint64
	base uint64

	// closedA gates new appends before they take a ticket; inflight
	// counts producers between that gate and their slot publish, so
	// Close can wait for every accepted record to reach the ring.
	// fail mirrors writeErr for the lock-free accept path.
	closedA  atomic.Bool
	inflight atomic.Int64
	fail     atomic.Pointer[error]

	// mu guards the active segment: file handle, chunk buffer, the
	// encoder's sequence watermark, rotation.
	mu         sync.Mutex
	f          *os.File
	fname      string
	buf        []byte // frames encoded but not yet written
	spare      []byte
	tail       uint64 // next ticket the encoder consumes
	nextSeq    uint64 // == base + tail: first seq not yet encoded
	segFirst   uint64
	segBytes   int64 // header + frames written or buffered
	segCreated time.Time
	sealed     []segmentInfo
	writeErr   error // sticky: the active segment is failing
	closed     bool

	// encCond is broadcast as the encoder advances nextSeq, waking
	// syncTo callers waiting for their record to be encoded.
	encCond sync.Cond
	encC    chan struct{} // poke: the ring has records

	// writing is true while the writer goroutine holds a full chunk
	// and is writing it outside mu, so the encoder keeps framing into
	// a fresh buffer instead of stalling behind the device. Anything
	// that must see a quiesced file (rotation, sync, close, inline
	// backpressure drains) waits on wrDone first.
	writing bool
	wrDone  sync.Cond
	flushC  chan struct{}

	// syncMu serialises fsyncs so concurrent SyncAlways appenders
	// group-commit instead of queueing one fsync each.
	syncMu  sync.Mutex
	flushed atomic.Uint64 // highest seq handed to the OS
	durable atomic.Uint64 // highest seq known fsynced

	appendErrors   atomic.Uint64
	flushes        atomic.Uint64
	syncs          atomic.Uint64
	replayed       atomic.Uint64
	corrupt        atomic.Uint64
	truncatedBytes atomic.Uint64
	prunedSegments atomic.Uint64

	// Durability-latency histograms (nanosecond samples, scraped by
	// /metrics). Appends are sampled 1-in-appendSampleEvery by ticket —
	// the accept path is lock-free and ~100ns, so unconditional timing
	// would be a real tax; flush/fsync/rotate are syscalls and are
	// timed exactly.
	appendH obs.Histogram
	flushH  obs.Histogram
	syncH   obs.Histogram
	rotateH obs.Histogram

	stopOnce  sync.Once
	stop      chan struct{}
	encDone   chan struct{}
	writeDone chan struct{}
}

// Open opens (creating if needed) the log directory, recovers existing
// segments — truncating a torn tail, dropping empty boot litter — and
// starts a fresh active segment plus the background flusher. Call
// Replay before serving traffic to stream the recovered records back.
func Open(dir string, opt Options) (*WAL, error) {
	opt.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{
		dir:       dir,
		opt:       opt,
		ring:      make([]ringSlot, ringSize),
		stop:      make(chan struct{}),
		encDone:   make(chan struct{}),
		writeDone: make(chan struct{}),
		encC:      make(chan struct{}, 1),
		flushC:    make(chan struct{}, 1),
	}
	for i := range w.ring {
		w.ring[i].turn.Store(uint64(i))
	}
	// Pre-size both sides of the double buffer past the chunk bound so
	// steady state never grows a slice mid-encode.
	w.buf = make([]byte, 0, flushChunk+flushChunk/2)
	w.spare = make([]byte, 0, flushChunk+flushChunk/2)
	w.wrDone.L = &w.mu
	w.encCond.L = &w.mu
	if err := w.recover(); err != nil {
		return nil, err
	}
	w.base = w.nextSeq
	w.flushed.Store(w.nextSeq - 1)
	w.durable.Store(w.nextSeq - 1)
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	w.writeManifestLocked()
	go w.encodeLoop()
	go w.writeLoop()
	return w, nil
}

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.dir }

// Policy returns the effective fsync policy.
func (w *WAL) Policy() SyncPolicy { return w.opt.Sync }

// Append records one feedback event, returning its sequence number.
// The hot path is lock-free: take a ticket, store the record into the
// ring, publish the slot — no mutex, no encode, no syscall, no
// allocation. The encoder goroutine frames and checksums published
// records in ticket order; under SyncAlways, Append then waits on the
// group-committed fsync barrier before returning, so the record is
// durable; otherwise it is flushed within one SyncInterval.
//
//mb:noalloc
func (w *WAL) Append(rec Record) (uint64, error) {
	if rec.empty() {
		return 0, errEmptyRecord
	}
	w.inflight.Add(1)
	if w.closedA.Load() {
		w.inflight.Add(-1)
		w.appendErrors.Add(1)
		return 0, ErrClosed
	}
	if ep := w.fail.Load(); ep != nil {
		w.inflight.Add(-1)
		w.appendErrors.Add(1)
		return 0, *ep
	}
	t := w.head.Add(1) - 1
	var t0 time.Time
	if t&(appendSampleEvery-1) == 0 {
		t0 = time.Now()
	}
	slot := &w.ring[t&ringMask]
	for spin := 0; slot.turn.Load() != t; spin++ {
		// The ring is a full lap ahead of the encoder. Poke it and
		// yield; slots free as it drains, even when the segment is
		// failing (the encoder discards instead of wedging the ring).
		if spin&63 == 0 {
			select {
			case w.encC <- struct{}{}:
			default:
			}
		}
		runtime.Gosched()
	}
	slot.rec = rec
	slot.turn.Store(t + 1)
	w.inflight.Add(-1)
	seq := w.base + t
	if w.opt.Sync == SyncAlways || t%pokeStride == 0 {
		select {
		case w.encC <- struct{}{}:
		default:
		}
	}
	if w.opt.Sync == SyncAlways {
		if err := w.syncTo(seq); err != nil {
			w.appendErrors.Add(1)
			return seq, err
		}
	}
	if !t0.IsZero() {
		// Sampled ticket: the histogram sees ring backpressure and (for
		// SyncAlways) the group-commit wait — the latency an ingesting
		// caller actually pays.
		w.appendH.RecordSince(t0)
	}
	return seq, nil
}

// appendSampleEvery is Append's sampling stride (power of two; the
// gate is one mask on the ticket already in hand).
const appendSampleEvery = 64

// failLocked records a sticky segment error and mirrors it into the
// atomic pointer the lock-free accept path checks. Caller holds w.mu.
func (w *WAL) failLocked(err error) {
	w.writeErr = err
	w.fail.Store(&err)
}

// waitWriteLocked blocks until no background write is in flight.
// Caller holds w.mu; the wait releases it, so callers must recheck any
// state they decided on beforehand.
func (w *WAL) waitWriteLocked() {
	for w.writing {
		w.wrDone.Wait()
	}
}

// flushLocked hands the append buffer to the OS synchronously. Caller
// holds w.mu; the wait at the top keeps this write ordered after any
// chunk the background writer still holds.
func (w *WAL) flushLocked() error {
	w.waitWriteLocked()
	if w.writeErr != nil {
		return w.writeErr
	}
	if len(w.buf) == 0 {
		return nil
	}
	t0 := time.Now()
	if _, err := w.f.Write(w.buf); err != nil {
		w.failLocked(err)
		return err
	}
	w.flushH.RecordSince(t0)
	w.buf, w.spare = w.spare[:0], w.buf[:0]
	w.flushes.Add(1)
	w.flushed.Store(w.nextSeq - 1)
	return nil
}

// flushWritten drains the chunk buffer through the writer goroutine:
// the buffer is swapped with the spare under mu and written with mu
// released, so the encoder frames into the fresh buffer while the
// device absorbs the full one — a double buffer, with the encoder and
// the writer each owning one side. The loop keeps the device busy
// while a backlog remains instead of bouncing through the select loop.
// Only the writer goroutine calls this.
func (w *WAL) flushWritten() error {
	w.mu.Lock()
	for {
		if w.closed || w.writeErr != nil || len(w.buf) == 0 {
			err := w.writeErr
			w.mu.Unlock()
			return err
		}
		data := w.buf
		w.buf = w.spare[:0]
		w.spare = nil
		f := w.f
		hi := w.nextSeq - 1
		w.writing = true
		// The chunk buffer just emptied: wake an encoder parked on the
		// backpressure bound before the write, not after it.
		w.wrDone.Broadcast()
		w.mu.Unlock()
		t0 := time.Now()
		_, err := f.Write(data)
		if err == nil {
			w.flushH.RecordSince(t0)
		}
		w.mu.Lock()
		w.writing = false
		w.spare = data[:0]
		if err != nil {
			w.failLocked(err)
			w.wrDone.Broadcast()
			w.mu.Unlock()
			return err
		}
		w.flushes.Add(1)
		advanceMax(&w.flushed, hi)
		w.wrDone.Broadcast()
		if len(w.buf) < flushChunk {
			w.mu.Unlock()
			return nil
		}
		select {
		case <-w.stop:
			// Close is waiting on the loops; it drains the rest.
			w.mu.Unlock()
			return nil
		default:
		}
	}
}

// syncTo makes every record up to seq durable: wait for the encoder
// to frame it, flush the chunk buffer, fsync. Callers landing while
// another fsync is in flight block on syncMu and usually find their
// records already covered when they get it — the group commit.
func (w *WAL) syncTo(seq uint64) error {
	if w.durable.Load() >= seq {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.durable.Load() >= seq {
		return nil
	}
	w.mu.Lock()
	for w.nextSeq <= seq && w.writeErr == nil && !w.closed {
		// The encoder has not consumed our ticket yet; poke it and
		// wait for the watermark to advance.
		select {
		case w.encC <- struct{}{}:
		default:
		}
		w.encCond.Wait()
	}
	if err := w.flushLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	f := w.f
	hi := w.flushed.Load()
	w.mu.Unlock()
	if f == nil {
		// Close sealed the log while we waited; if its final sync
		// covered seq the record is durable all the same.
		if w.durable.Load() >= seq {
			return nil
		}
		return ErrClosed
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		// A concurrent rotation can seal (sync + close) the file under
		// us; if that made seq durable, this sync already happened.
		if w.durable.Load() >= seq {
			return nil
		}
		return err
	}
	w.syncH.RecordSince(t0)
	w.syncs.Add(1)
	advanceMax(&w.durable, hi)
	return nil
}

// Sync flushes and fsyncs everything appended so far, regardless of
// policy — the explicit barrier for shutdown paths and tests.
func (w *WAL) Sync() error {
	return w.syncTo(w.base + w.head.Load() - 1)
}

// DurableSeq returns the highest sequence number known to be fsynced.
func (w *WAL) DurableSeq() uint64 { return w.durable.Load() }

// encodeLoop is the middle pipeline stage: it drains the ring on
// pokes and on the SyncInterval tick, frames records into the chunk
// buffer, and runs the per-tick maintenance (flush, fsync policy,
// age rotation). It exits only after a final drain, so every record
// published before Close reaches the buffer.
func (w *WAL) encodeLoop() {
	defer close(w.encDone)
	t := time.NewTicker(w.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			for w.drain() {
			}
			w.mu.Lock()
			w.encCond.Broadcast()
			w.mu.Unlock()
			return
		case <-w.encC:
			if w.drain() {
				// More remains: re-poke ourselves instead of looping
				// here, so the tick (and stop) cases stay live under
				// sustained ingest.
				select {
				case w.encC <- struct{}{}:
				default:
				}
			}
		case <-t.C:
			if w.drain() {
				select {
				case w.encC <- struct{}{}:
				default:
				}
			}
			w.tickMaintenance()
		}
	}
}

// drain consumes ready ring slots in ticket order, framing each record
// into the chunk buffer with its sequence number and CRC. It reports
// whether ready slots remain, and bounds its own run so the encode
// loop's select stays responsive. When the segment is failing it
// discards instead of buffering — the ring must keep turning or
// producers would spin forever on a full lap.
func (w *WAL) drain() (more bool) {
	for pass := 0; pass < 16; pass++ {
		w.mu.Lock()
		n := 0
		for n < drainBatch {
			slot := &w.ring[w.tail&ringMask]
			if slot.turn.Load() != w.tail+1 {
				break
			}
			if w.writeErr == nil {
				was := len(w.buf)
				w.buf = appendFrame(w.buf, w.nextSeq, &slot.rec)
				w.segBytes += int64(len(w.buf) - was)
			} else {
				w.appendErrors.Add(1)
			}
			slot.rec = Record{} // release the references for GC
			slot.turn.Store(w.tail + ringSize)
			w.tail++
			w.nextSeq++
			n++
			if w.segBytes >= w.opt.SegmentBytes && !w.writing && w.writeErr == nil {
				// Rotate at the exact record that crossed the bound,
				// as a synchronous appender would have; while a chunk
				// is in flight the tick rotates instead, so a
				// saturated device cannot stall the ring.
				if err := w.rotateLocked(); err != nil {
					w.opt.Logger.Printf("wal: rotate: %v", err)
				}
			}
		}
		if n > 0 {
			w.encCond.Broadcast()
		}
		if len(w.buf) >= flushChunk {
			// Hand the chunk to the writer; the encoder pays a channel
			// poke, not a device write.
			select {
			case w.flushC <- struct{}{}:
			default:
			}
			if len(w.buf) >= maxBuffered {
				// The writer is behind: park until it swaps the buffer
				// out, keeping memory bounded by the device, not the
				// ingest rate.
				for len(w.buf) >= maxBuffered && w.writing && w.writeErr == nil {
					w.wrDone.Wait()
				}
				if len(w.buf) >= maxBuffered && w.writeErr == nil {
					// The writer is idle yet the backlog stands — it
					// missed the poke or is between chunks; drain
					// inline rather than trust it.
					if err := w.flushLocked(); err != nil {
						w.opt.Logger.Printf("wal: flush: %v", err)
					}
				}
			}
		}
		more = w.ring[w.tail&ringMask].turn.Load() == w.tail+1
		w.mu.Unlock()
		if !more {
			return false
		}
	}
	return true
}

// tickMaintenance runs once per SyncInterval: flush whatever the ring
// drained this interval, fsync it under SyncBatched (the bounded-loss
// window of a kill -9), and rotate segments past their size or age.
func (w *WAL) tickMaintenance() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	hi := w.nextSeq - 1
	if w.nextSeq > w.segFirst &&
		(time.Since(w.segCreated) >= w.opt.SegmentAge || w.segBytes >= w.opt.SegmentBytes) {
		if err := w.rotateLocked(); err != nil {
			w.opt.Logger.Printf("wal: rotate: %v", err)
		}
	}
	w.mu.Unlock()
	switch w.opt.Sync {
	case SyncBatched:
		if err := w.syncTo(hi); err != nil {
			w.opt.Logger.Printf("wal: sync: %v", err)
		}
	case SyncOff:
		w.mu.Lock()
		if err := w.flushLocked(); err != nil {
			w.opt.Logger.Printf("wal: flush: %v", err)
		}
		w.mu.Unlock()
	}
}

// writeLoop is the last pipeline stage: it owns the device, writing
// full chunks as the encoder hands them over so a slow disk shows up
// as buffered bytes, never as append latency.
func (w *WAL) writeLoop() {
	defer close(w.writeDone)
	for {
		select {
		case <-w.stop:
			return
		case <-w.flushC:
			if err := w.flushWritten(); err != nil {
				w.opt.Logger.Printf("wal: flush: %v", err)
			}
		}
	}
}

// rotateLocked seals the active segment (flush, fsync unless SyncOff,
// close), prunes history, opens a successor and rewrites the manifest.
// Caller holds w.mu. Rotating an empty segment is a no-op.
func (w *WAL) rotateLocked() error {
	if w.nextSeq == w.segFirst {
		return nil
	}
	defer w.rotateH.RecordSince(time.Now())
	if err := w.flushLocked(); err != nil {
		return err
	}
	if w.opt.Sync != SyncOff {
		if err := w.f.Sync(); err != nil {
			w.failLocked(err)
			return err
		}
		w.syncs.Add(1)
		advanceMax(&w.durable, w.flushed.Load())
	}
	if err := w.f.Close(); err != nil {
		w.failLocked(err)
		return err
	}
	w.sealed = append(w.sealed, segmentInfo{
		File:       w.fname,
		FirstSeq:   w.segFirst,
		LastSeq:    w.nextSeq - 1,
		Records:    int(w.nextSeq - w.segFirst),
		Bytes:      w.segBytes,
		SealedUnix: time.Now().Unix(),
	})
	w.opt.Logger.Printf("wal: sealed %s (%d records, %d bytes)", w.fname, w.nextSeq-w.segFirst, w.segBytes)
	w.pruneLocked()
	if err := w.openSegmentLocked(); err != nil {
		w.failLocked(err)
		return err
	}
	w.writeManifestLocked()
	return nil
}

// pruneLocked removes sealed segments outside the retention window or
// beyond the byte budget, oldest first. Caller holds w.mu.
func (w *WAL) pruneLocked() {
	drop := 0
	if w.opt.Retention > 0 {
		cutoff := time.Now().Add(-w.opt.Retention).Unix()
		for drop < len(w.sealed) && w.sealed[drop].SealedUnix < cutoff {
			drop++
		}
	}
	if w.opt.MaxBytes > 0 {
		total := w.segBytes
		for _, s := range w.sealed[drop:] {
			total += s.Bytes
		}
		for i := drop; i < len(w.sealed) && total > w.opt.MaxBytes; i++ {
			total -= w.sealed[i].Bytes
			drop = i + 1
		}
	}
	for _, s := range w.sealed[:drop] {
		if err := os.Remove(filepath.Join(w.dir, s.File)); err != nil {
			w.opt.Logger.Printf("wal: prune %s: %v", s.File, err)
			continue
		}
		w.prunedSegments.Add(1)
		w.opt.Logger.Printf("wal: pruned %s (seqs %d-%d)", s.File, s.FirstSeq, s.LastSeq)
	}
	if drop > 0 {
		w.sealed = append(w.sealed[:0], w.sealed[drop:]...)
	}
}

// openSegmentLocked creates the next active segment and writes its
// header. Caller holds w.mu.
func (w *WAL) openSegmentLocked() error {
	w.segFirst = w.nextSeq
	w.fname = fmt.Sprintf("wal-%016x.log", w.segFirst)
	f, err := os.OpenFile(filepath.Join(w.dir, w.fname), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := appendSegmentHeader(nil, w.segFirst, time.Now().Unix())
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close() // segment is unusable; the write error is the one to surface
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	w.f = f
	w.segBytes = int64(len(hdr))
	w.segCreated = time.Now()
	w.writeErr = nil
	w.fail.Store(nil)
	return nil
}

// drainBarrier blocks until the encoder has consumed every ticket
// taken before the call, so segment state — rotation, pruning, the
// sequence watermark — reflects all accepted appends. Appends landing
// concurrently are not waited for. Callers must not hold w.mu.
func (w *WAL) drainBarrier() {
	target := w.base + w.head.Load()
	if target == w.base {
		return
	}
	w.mu.Lock()
	for w.nextSeq < target && !w.closed {
		select {
		case w.encC <- struct{}{}:
		default:
		}
		w.encCond.Wait()
	}
	w.mu.Unlock()
}

// Rotate seals the active segment now — the manual form of the size
// and age triggers, for tests and admin tooling.
func (w *WAL) Rotate() error {
	w.drainBarrier()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.rotateLocked()
}

// Close stops accepting appends, waits for in-flight producers to
// publish, drains the ring and the chunk buffer, fsyncs (unless
// SyncOff) and seals the log. Idempotent.
func (w *WAL) Close() error {
	w.stopOnce.Do(func() {
		w.closedA.Store(true)
		// Producers past the accept gate hold an inflight token until
		// their slot is published; wait them out so the encoder's
		// final drain sees every accepted record.
		for w.inflight.Load() > 0 {
			runtime.Gosched()
		}
		close(w.stop)
	})
	<-w.encDone
	<-w.writeDone
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.flushLocked()
	if w.f != nil {
		if err == nil && w.opt.Sync != SyncOff {
			if serr := w.f.Sync(); serr != nil {
				err = serr
			} else {
				w.syncs.Add(1)
				advanceMax(&w.durable, w.flushed.Load())
			}
		}
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	if w.nextSeq > w.segFirst {
		// The final active segment becomes sealed history.
		w.sealed = append(w.sealed, segmentInfo{
			File:       w.fname,
			FirstSeq:   w.segFirst,
			LastSeq:    w.nextSeq - 1,
			Records:    int(w.nextSeq - w.segFirst),
			Bytes:      w.segBytes,
			SealedUnix: time.Now().Unix(),
		})
	} else if w.fname != "" {
		// Nothing was ever appended to it; leave no boot litter.
		os.Remove(filepath.Join(w.dir, w.fname))
	}
	w.fname = ""
	w.writeManifestLocked()
	return err
}

// Counters returns a snapshot of the log's health. It waits for the
// encoder to catch up to the appends accepted before the call, so the
// segment inventory and watermarks it reports are current.
func (w *WAL) Counters() Counters {
	w.drainBarrier()
	w.mu.Lock()
	segs := len(w.sealed)
	bytes := int64(0)
	for _, s := range w.sealed {
		bytes += s.Bytes
	}
	if !w.closed {
		segs++
		bytes += w.segBytes
	}
	w.mu.Unlock()
	head := w.head.Load()
	return Counters{
		Appended:       head,
		AppendErrors:   w.appendErrors.Load(),
		Flushes:        w.flushes.Load(),
		Syncs:          w.syncs.Load(),
		Replayed:       w.replayed.Load(),
		CorruptSkipped: w.corrupt.Load(),
		TruncatedBytes: w.truncatedBytes.Load(),
		PrunedSegments: w.prunedSegments.Load(),
		Segments:       segs,
		Bytes:          bytes,
		DurableSeq:     w.durable.Load(),
		NextSeq:        w.base + head,
	}
}

// HistSnapshots is the durability-latency detail behind the Counters
// summary: all samples are nanoseconds.
type HistSnapshots struct {
	// Append is the sampled (1-in-appendSampleEvery) accept latency,
	// including ring backpressure and SyncAlways group commit.
	Append obs.Snapshot
	// Flush is per-write buffer hand-off latency to the OS.
	Flush obs.Snapshot
	// Sync is per-fsync device latency on the syncTo path.
	Sync obs.Snapshot
	// Rotate is segment seal-and-reopen latency.
	Rotate obs.Snapshot
}

// Hists snapshots the durability-latency histograms for /metrics.
func (w *WAL) Hists() HistSnapshots {
	return HistSnapshots{
		Append: w.appendH.Snapshot(),
		Flush:  w.flushH.Snapshot(),
		Sync:   w.syncH.Snapshot(),
		Rotate: w.rotateH.Snapshot(),
	}
}

// manifest is the JSON inventory rewritten on every rotation/prune.
type manifest struct {
	NextSeq     uint64        `json:"next_seq"`
	Active      string        `json:"active"`
	Segments    []segmentInfo `json:"segments"`
	UpdatedUnix int64         `json:"updated_unix"`
}

// writeManifestLocked rewrites MANIFEST atomically (and durably: the
// atomic write helper fsyncs the file and the directory). Manifest
// failures are logged, not fatal — the directory scan recovers without
// one. Caller holds w.mu.
func (w *WAL) writeManifestLocked() {
	m := manifest{
		NextSeq:     w.nextSeq,
		Active:      w.fname,
		Segments:    w.sealed,
		UpdatedUnix: time.Now().Unix(),
	}
	if w.closed {
		m.Active = ""
	}
	err := writeManifest(filepath.Join(w.dir, manifestName), &m)
	if err != nil {
		w.opt.Logger.Printf("wal: manifest: %v", err)
	}
}

// sortSegments orders segment metadata by first sequence number.
func sortSegments(segs []segmentInfo) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].FirstSeq < segs[j].FirstSeq })
}

// readManifest loads MANIFEST if present; a missing or unreadable
// manifest returns nil — recovery never depends on it.
func readManifest(path string) *manifest {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var m manifest
	if json.Unmarshal(b, &m) != nil {
		return nil
	}
	return &m
}

// advanceMax lifts an atomic watermark to at least v.
func advanceMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
