package wal

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestCrashHelper is not a test: it is the child half of the kill -9
// e2e below, re-executing the test binary with the env gate set. It
// appends as fast as it can, reporting progress on stdout, until the
// parent kills it without warning.
func TestCrashHelper(t *testing.T) {
	dir := os.Getenv("WAL_CRASH_DIR")
	if os.Getenv("WAL_CRASH_HELPER") != "1" || dir == "" {
		t.Skip("helper process only")
	}
	w, err := Open(dir, Options{Sync: SyncBatched, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		fmt.Println("open:", err)
		os.Exit(2)
	}
	deadline := time.Now().Add(30 * time.Second) // safety: die even if never killed
	for i := 0; time.Now().Before(deadline); i++ {
		seq, err := w.Append(sessRec(i))
		if err != nil {
			fmt.Println("append:", err)
			os.Exit(2)
		}
		if i%64 == 0 {
			// The parent parses these lines; durable lags appended by at
			// most one flush interval.
			fmt.Printf("appended %d durable %d\n", seq, w.DurableSeq())
		}
	}
	os.Exit(2) // the parent was supposed to SIGKILL us
}

// TestCrashRecovery proves the bounded-loss guarantee end to end: a
// child process appends under the batched policy, the parent SIGKILLs
// it mid-stream — no flush, no close, no manifest rewrite — and a
// fresh Open of the same directory must recover at least every record
// the child reported durable, with nothing invented and nothing out of
// order.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelper")
	cmd.Env = append(os.Environ(), "WAL_CRASH_HELPER=1", "WAL_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Let it run long enough that fsyncs have demonstrably happened,
	// then kill it without ceremony.
	var lastAppended, lastDurable uint64
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		var a, d uint64
		if _, err := fmt.Sscanf(sc.Text(), "appended %d durable %d", &a, &d); err != nil {
			continue
		}
		lastAppended, lastDurable = a, d
		if d > 2000 {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if lastDurable == 0 {
		t.Fatalf("child never reported durable progress (appended %d)", lastAppended)
	}

	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after kill -9: %v", err)
	}
	defer w.Close()
	var replayed, lastSeq uint64
	err = w.Replay(func(seq uint64, rec *Record) error {
		if seq <= lastSeq {
			t.Fatalf("replay order broke: %d after %d", seq, lastSeq)
		}
		if rec.Session == nil || len(rec.Session.Docs) != 2 {
			t.Fatalf("replayed garbage at seq %d: %+v", seq, rec)
		}
		lastSeq = seq
		replayed++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq < lastDurable {
		t.Fatalf("recovered through seq %d, but the child saw %d durable before the kill", lastSeq, lastDurable)
	}
	if replayed != lastSeq {
		t.Fatalf("replayed %d records up to seq %d — a gap appeared", replayed, lastSeq)
	}
	t.Logf("child last reported appended=%d durable=%d; recovered %d records (torn bytes truncated %d)",
		lastAppended, lastDurable, replayed, w.Counters().TruncatedBytes)
}
