// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixture
// source, in the style of golang.org/x/tools' package of the same
// name: a comment "// want `regex`" (or several, space-separated) on a
// line declares that the analyzer must report on that line with a
// message matching each regex; any diagnostic on a line without a
// matching want, and any want without a matching diagnostic, fails the
// test.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the backquoted regexes of one want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one "// want" entry: a line that must receive a
// diagnostic matching re.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package rooted at dir, type-checks it under
// the import path pkgPath, applies the analyzer, and matches the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	u, err := analysis.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := analysis.RunAnalyzers(u, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, u)
	for _, f := range findings {
		if !match(wants, f.Pos, f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants scans every comment in the unit for want expectations.
func collectWants(t *testing.T, u *analysis.Unit) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A want expectation is its own comment: "// want `re`" or,
				// for lines whose line comment is load-bearing (pragmas),
				// "/* want `re` */" preceding it.
				text := c.Text
				if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				} else {
					text = strings.TrimPrefix(text, "//")
				}
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text[idx:], -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q (expected backquoted regexes)", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// match marks and reports the first unhit expectation covering the
// diagnostic's line.
func match(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// Fixture returns the conventional fixture directory for an analyzer
// test: testdata/<name> under the test's working directory.
func Fixture(name string) string {
	return fmt.Sprintf("testdata/%s", name)
}
