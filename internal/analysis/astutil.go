package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation markers. They live in doc comments the way //go:noinline
// does: a line of the form "//mb:<name>", optionally followed by
// free-form text. DESIGN.md §9 documents each.
const (
	// MarkNoalloc on a function declares its body allocation-free; the
	// noalloc analyzer rejects allocation-inducing constructs in it.
	MarkNoalloc = "mb:noalloc"
	// MarkAllocOK on a line inside a //mb:noalloc function suppresses
	// the noalloc finding for that line (cold paths: error returns,
	// capacity-miss warmups). A justification after the marker is
	// conventional.
	MarkAllocOK = "mb:allocok"
	// MarkImmutable on a type confines stores to its fields and
	// elements to the file that declares it (its constructor file).
	MarkImmutable = "mb:immutable"
	// MarkCtorFile on a file comment ("//mb:ctorfile TypeName") grants
	// that file constructor rights over an //mb:immutable type declared
	// elsewhere in the package.
	MarkCtorFile = "mb:ctorfile"
)

// HasMarker reports whether any line of the comment group carries the
// given marker (as "//mb:name" or "//mb:name text").
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == marker || strings.HasPrefix(text, marker+" ") || strings.HasPrefix(text, marker+"(") {
			return true
		}
	}
	return false
}

// MarkerArg returns the text following "//mb:name " on the first
// matching line, e.g. the type list of an //mb:ctorfile comment.
func MarkerArg(doc *ast.CommentGroup, marker string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, marker+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// MarkedLines returns the set of line numbers in the unit's files that
// carry the given marker anywhere in a comment — the suppression map
// behind //mb:allocok.
func MarkedLines(fset *token.FileSet, files []*ast.File, marker string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == marker || strings.HasPrefix(text, marker+" ") {
					pos := fset.Position(c.Pos())
					m := out[pos.Filename]
					if m == nil {
						m = map[int]bool{}
						out[pos.Filename] = m
					}
					m[pos.Line] = true
				}
			}
		}
	}
	return out
}

// FuncMarkers scans every function declaration in the unit and returns
// those whose doc comment carries the marker.
func FuncMarkers(files []*ast.File, marker string) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && HasMarker(fd.Doc, marker) {
				out = append(out, fd)
			}
		}
	}
	return out
}

// TypeMarkers scans every type declaration and returns the marked
// ones, mapped to the file that declares them.
func TypeMarkers(fset *token.FileSet, files []*ast.File, info *types.Info, marker string) map[*types.TypeName]string {
	out := map[*types.TypeName]string{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !HasMarker(ts.Doc, marker) && !HasMarker(gd.Doc, marker) && !HasMarker(ts.Comment, marker) {
					continue
				}
				if obj, ok := info.Defs[ts.Name].(*types.TypeName); ok {
					out[obj] = fset.Position(ts.Pos()).Filename
				}
			}
		}
	}
	return out
}

// Deref unwraps one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns the named type behind t (through one pointer and
// through aliases), or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = Deref(types.Unalias(t))
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}

// RootIdent returns the leftmost identifier of a selector/index/star
// chain: RootIdent(a.b[i].c) == a. nil when the chain is rooted in a
// call or literal.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ExprText renders an expression compactly for diagnostics and for
// syntactic receiver matching (types.ExprString without the import
// knot in callers).
func ExprText(e ast.Expr) string {
	return types.ExprString(e)
}

// IsPointerShaped reports whether values of t fit an interface's data
// word without boxing: pointers, channels, maps, funcs and
// unsafe.Pointer.
func IsPointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return types.Unalias(t).Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
