package retainrelease_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/retainrelease"
)

func TestPairing(t *testing.T) {
	analysistest.Run(t, "testdata/pair", "repro/internal/pair", retainrelease.Analyzer)
}
