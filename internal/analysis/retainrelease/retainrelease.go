// Package retainrelease checks that every Retain of a refcounted
// object is paired with a Release on the paths the function owns.
//
// internal/mmap artifacts pin a memory mapping: a Retain without its
// Release keeps a pruned model's pages mapped forever — a leak no test
// notices until a long-lived server runs out of address space. The
// analyzer recognises any method pair named Retain/Release on the same
// receiver type (so fixtures and future refcounted types are covered,
// not just *mmap.Artifact) and requires, per function:
//
//   - a deferred Release of the same receiver expression, or
//   - an explicit Release on the fall-through path with no bare return
//     between the Retain and that Release, or
//   - an ownership transfer: the retained object (its root variable)
//     is returned, stored, sent, captured or passed onward — then the
//     pairing obligation moves with it.
//
// Retains rooted in a method receiver are out of scope: those
// references are owned by the struct's lifecycle, not one call frame.
package retainrelease

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the retainrelease pass.
var Analyzer = &analysis.Analyzer{
	Name: "retainrelease",
	Doc:  "require a Release (or ownership transfer) for every Retain of a refcounted object",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// retainCall is one x.Retain() site in a function.
type retainCall struct {
	call *ast.CallExpr
	sel  *ast.SelectorExpr
	key  string       // rendered receiver expression ("mv.art")
	root types.Object // leftmost variable of the receiver chain
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var retains []retainCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Retain" || len(call.Args) != 0 {
			return true
		}
		if !isRefcounted(pass, sel) {
			return true
		}
		rc := retainCall{call: call, sel: sel, key: analysis.ExprText(sel.X)}
		if id := analysis.RootIdent(sel.X); id != nil {
			rc.root = pass.TypesInfo.Uses[id]
		}
		retains = append(retains, rc)
		return true
	})
	if len(retains) == 0 {
		return
	}

	recvObjs := receiverObjects(pass, fd)
	results := namedResults(pass, fd)

	for _, rc := range retains {
		if rc.root == nil {
			continue // rooted in a call or literal; cannot track
		}
		if recvObjs[rc.root] {
			continue // struct-owned reference, not a call-frame pairing
		}
		if results[rc.root] {
			continue // escapes via named result
		}
		sum := summarize(pass, fd, rc)
		if sum.escapes {
			continue
		}
		if sum.deferRelease {
			continue
		}
		if !sum.released {
			pass.Reportf(rc.call.Pos(),
				"%s.Retain() has no matching %s.Release() (or ownership transfer) in %s; a leaked retain pins the mapping forever",
				rc.key, rc.key, fd.Name.Name)
			continue
		}
		checkStraightLine(pass, fd, rc)
	}
}

// isRefcounted reports whether sel names a Retain method whose
// receiver type also has a Release method — the shape of a refcount
// pair, whatever the concrete type.
func isRefcounted(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if _, isPtr := t.(*types.Pointer); !isPtr {
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	hasRetain, hasRelease := false, false
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Retain":
			hasRetain = true
		case "Release":
			hasRelease = true
		}
	}
	return hasRetain && hasRelease
}

// receiverObjects returns the method receiver's object(s).
func receiverObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// namedResults returns the function's named result objects; a retain
// rooted in one escapes through every return.
func namedResults(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// funcSummary is what the function as a whole does with one retained
// expression.
type funcSummary struct {
	released     bool // an explicit key.Release() exists
	deferRelease bool // a defer key.Release() exists
	escapes      bool // the root variable is handed to someone else
}

func summarize(pass *analysis.Pass, fd *ast.FuncDecl, rc retainCall) funcSummary {
	var sum funcSummary
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if releasesKey(x.Call, rc.key) {
				sum.deferRelease = true
				return false
			}
			// defer f() / defer func(){...}() mentioning the root hands
			// the reference to the deferred call.
			if usesObject(pass, x.Call, rc.root) {
				sum.escapes = true
			}
		case *ast.CallExpr:
			if releasesKey(x, rc.key) {
				sum.released = true
				return true
			}
			// The object escaping as an argument transfers ownership;
			// method calls on the object itself (x.Refs(), x.Retain())
			// do not.
			for _, arg := range x.Args {
				if usesObject(pass, arg, rc.root) {
					sum.escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if usesObject(pass, res, rc.root) {
					sum.escapes = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if usesObject(pass, rhs, rc.root) {
					// x := retained-thing is aliasing, not escaping, but
					// distinguishing the two needs alias tracking; treat
					// any store of the root as a transfer.
					sum.escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if usesObject(pass, elt, rc.root) {
					sum.escapes = true
				}
			}
		case *ast.SendStmt:
			if usesObject(pass, x.Value, rc.root) {
				sum.escapes = true
			}
		case *ast.GoStmt:
			if usesObject(pass, x.Call, rc.root) {
				sum.escapes = true
			}
		case *ast.FuncLit:
			if usesObject(pass, x, rc.root) {
				sum.escapes = true // captured by a closure
			}
			return false
		}
		return true
	})
	return sum
}

// releasesKey reports whether call is key.Release().
func releasesKey(call *ast.CallExpr, key string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Release" && analysis.ExprText(sel.X) == key
}

// usesObject reports whether the subtree mentions the object, except
// as the receiver of a method call (x in x.Retain()).
func usesObject(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	if obj == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		// Skip the receiver side of method calls on the object chain.
		if call, ok := m.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id := analysis.RootIdent(sel.X); id != nil && pass.TypesInfo.Uses[id] == obj {
					for _, arg := range call.Args {
						if usesObject(pass, arg, obj) {
							found = true
						}
					}
					return false
				}
			}
		}
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkStraightLine flags returns that sit between the Retain and its
// first explicit Release within the same statement list: the classic
// "early return leaks the pin" bug.
func checkStraightLine(pass *analysis.Pass, fd *ast.FuncDecl, rc retainCall) {
	block, idx := enclosingBlock(fd.Body, rc.call)
	if block == nil {
		return
	}
	// A guarded retain (`if x.Retain() { ...; x.Release() }`) pairs
	// inside the statement that contains the Retain itself.
	if stmtReleases(block.List[idx], rc.key) {
		return
	}
	for _, stmt := range block.List[idx+1:] {
		if stmtReleases(stmt, rc.key) {
			return // paired before any return on this path
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if !returnMentions(pass, s, rc.root) {
				pass.Reportf(s.Pos(),
					"return leaks %s retained at line %d (no %s.Release() before this return)",
					rc.key, pass.Fset.Position(rc.call.Pos()).Line, rc.key)
			}
			return
		case *ast.IfStmt:
			if term := terminalReturn(s.Body); term != nil &&
				!blockReleases(s.Body, rc.key) && !blockMentions(pass, s.Body, rc.root) {
				pass.Reportf(term.Pos(),
					"early return leaks %s retained at line %d (no %s.Release() on this path)",
					rc.key, pass.Fset.Position(rc.call.Pos()).Line, rc.key)
			}
		}
	}
}

// enclosingBlock finds the innermost statement list containing target
// and the index of the statement that contains it.
func enclosingBlock(body *ast.BlockStmt, target ast.Node) (*ast.BlockStmt, int) {
	var stack []ast.Node
	var best *ast.BlockStmt
	bestIdx := -1
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target && best == nil {
			for i := len(stack) - 1; i >= 0; i-- {
				if b, ok := stack[i].(*ast.BlockStmt); ok {
					for j, stmt := range b.List {
						if containsNode(stmt, target) {
							best, bestIdx = b, j
							return true
						}
					}
				}
			}
		}
		return true
	})
	return best, bestIdx
}

func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func stmtReleases(stmt ast.Stmt, key string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && releasesKey(call, key) {
			found = true
		}
		return !found
	})
	return found
}

func blockReleases(b *ast.BlockStmt, key string) bool { return stmtReleases(b, key) }

func blockMentions(pass *analysis.Pass, b *ast.BlockStmt, obj types.Object) bool {
	return usesObject(pass, b, obj)
}

func returnMentions(pass *analysis.Pass, s *ast.ReturnStmt, obj types.Object) bool {
	for _, res := range s.Results {
		if usesObject(pass, res, obj) {
			return true
		}
	}
	return false
}

// terminalReturn returns the block's trailing return statement, if it
// ends in one.
func terminalReturn(b *ast.BlockStmt) *ast.ReturnStmt {
	if len(b.List) == 0 {
		return nil
	}
	r, _ := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return r
}
