// Package pair exercises the Retain/Release pairing rules on a local
// refcounted type — the analyzer keys on the method-pair shape, not on
// *mmap.Artifact specifically.
package pair

type res struct{ n int }

func (r *res) Retain() bool { r.n++; return true }
func (r *res) Release()     { r.n-- }
func (r *res) Refs() int    { return r.n }

// leak: retained, never released, never handed off.
func leak(r *res) {
	r.Retain() // want `no matching r\.Release\(\)`
	_ = r.Refs()
}

// earlyReturn: released on the fall-through path, but the guard
// returns first and leaks the pin.
func earlyReturn(r *res, bad bool) {
	r.Retain()
	if bad {
		return // want `early return leaks r`
	}
	r.Release()
}

// bareReturn: a return sits between the Retain and its Release.
func bareReturn(r *res, done bool) {
	r.Retain()
	if done {
		r.Release()
		return
	}
	r.Release()
}

// deferred: the canonical safe shape.
func deferred(r *res) int {
	if !r.Retain() {
		return 0
	}
	defer r.Release()
	return r.Refs()
}

// guarded: Retain and Release pair inside one if statement.
func guarded(r *res) {
	if r.Retain() {
		r.Release()
	}
}

// transfer: ownership moves to the caller with the return value; the
// pairing obligation moves with it.
func transfer(r *res) *res {
	r.Retain()
	return r
}

// stored: ownership moves into a structure.
type cache struct{ held *res }

func stored(c *cache, r *res) {
	r.Retain()
	c.held = r
}

// handedOff: ownership moves to the callee.
func handedOff(r *res) {
	r.Retain()
	sink(r)
}

func sink(*res) {}

// receiverOwned: retains rooted in the method receiver belong to the
// struct's lifecycle, not this call frame.
type holder struct{ r *res }

func (h *holder) pin() {
	h.r.Retain()
}
