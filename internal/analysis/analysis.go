// Package analysis is a self-contained static-analysis framework in
// the shape of golang.org/x/tools/go/analysis, built only on the
// standard library so the repository's invariant checkers (cmd/mbvet)
// need no network and no third-party module to build.
//
// The serving stack's load-bearing invariants — unsafe confined to
// three packages, Retain/Release pairing on mapped artifacts,
// copy-on-write before publish, zero-allocation hot paths, checked
// durability errors — were previously enforced by review and spot
// tests. The analyzers in the sibling packages (unsafeconfine,
// retainrelease, cowpublish, noalloc, durerr) machine-check them at
// vet time; this package supplies the three pieces they share:
//
//   - the Analyzer/Pass/Diagnostic surface (this file), a deliberate
//     subset of x/tools' go/analysis so the analyzers port verbatim if
//     the dependency ever becomes available;
//   - a package loader (load.go) that type-checks the module's
//     packages offline via `go list -export` and gc export data;
//   - the cmd/go unitchecker protocol (unitchecker.go) so the same
//     binary runs under `go vet -vettool=`.
//
// DESIGN.md §9 lists the enforced invariants and their annotations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker: a name for diagnostics, a
// doc string for -list output, and the Run function applied to each
// loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `mbvet -list`.
	Doc string
	// Run applies the analyzer to one package unit, reporting findings
	// through pass.Report. A non-nil error aborts the whole run (it
	// means the analyzer itself failed, not that the code is wrong).
	Run func(*Pass) error
}

// Pass carries one type-checked package unit through one analyzer.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions of Files back to file/line/column.
	Fset *token.FileSet
	// Files are the parsed sources of the unit, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the unit's type and object resolution maps.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf formats and emits one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgPath returns the unit's canonical import path: the vet variant
// suffix (" [repro/x.test]") and the external-test "_test" suffix are
// stripped, so allowlists match a package and its tests alike.
func (p *Pass) PkgPath() string {
	return CanonicalPath(p.Pkg.Path())
}

// CanonicalPath strips the test-variant decorations cmd/go and the
// loader attach to import paths.
func CanonicalPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// Finding is one diagnostic resolved to a concrete position, the
// runner's output unit.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies each analyzer to the unit and returns all
// findings sorted by position.
func RunAnalyzers(u *Unit, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			report: func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      u.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, u.Pkg.Path(), err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers need
// populated during checking.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
