package cow

// poke mutates a published table outside the constructor file: every
// store shape is rejected.
func poke(t *table) {
	t.n = 2      // want `store to field t\.n of //mb:immutable type table`
	t.m["k"] = 3 // want `store to field t\.m of //mb:immutable type table`
	t.n++        // want `store to field t\.n of //mb:immutable type table`
	p := &t.n    // want `taking the address of field t\.n of //mb:immutable type table`
	_ = p
}

// read-only access is fine anywhere.
func lookup(t *table, k string) int {
	return t.n + t.m[k]
}
