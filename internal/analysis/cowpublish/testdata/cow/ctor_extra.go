package cow

// This file claims constructor rights over table: clone-and-fill
// helpers that legitimately live apart from the type declaration.
//
//mb:ctorfile table

// clone copies a generation for modification before republication.
func clone(src *table) *table {
	dst := &table{m: make(map[string]int, len(src.m))}
	for k, v := range src.m {
		dst.m[k] = v
	}
	dst.n = src.n
	return dst
}
