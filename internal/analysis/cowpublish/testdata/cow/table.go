// Package cow exercises the copy-on-write publish discipline: the
// //mb:immutable table may be filled here (its constructor file) and
// in files that claim //mb:ctorfile rights, nowhere else.
package cow

// table is one published generation.
//
//mb:immutable
type table struct {
	n int
	m map[string]int
}

// newTable builds and fills a generation before publication —
// constructor-file stores are legal.
func newTable() *table {
	t := &table{m: map[string]int{}}
	t.n = 1
	t.m["seed"] = 1
	return t
}

// reset also lives in the constructor file; its stores are legal.
func (t *table) reset() {
	t.n = 0
}
