package cow

import "sync/atomic"

var current atomic.Pointer[table]

// publishThenMutate is the bug this analyzer exists for: the
// generation is already visible to lock-free readers when the write
// lands. The analyzer rejects the store wherever it sits relative to
// the Store call — file granularity, not flow analysis.
func publishThenMutate(t *table) {
	current.Store(t)
	t.n = 9 // want `store to field t\.n of //mb:immutable type table`
}
