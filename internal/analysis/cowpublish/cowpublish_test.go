package cowpublish_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cowpublish"
)

func TestCopyOnWrite(t *testing.T) {
	analysistest.Run(t, "testdata/cow", "repro/internal/cow", cowpublish.Analyzer)
}
