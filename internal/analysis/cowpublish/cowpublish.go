// Package cowpublish enforces the copy-on-write publish discipline on
// types marked //mb:immutable: once such a value is constructed, its
// fields and the elements of its field maps/slices may only be stored
// to in the file that declares the type (the constructor file), or in
// a file that claims constructor rights with "//mb:ctorfile TypeName".
//
// The engine's versioned scorer table is published by storing a fresh
// immutable generation through an atomic.Pointer; readers then treat
// everything reachable from it as read-only without locks. A stray
// mutation after the Store is a data race the race detector only
// catches when a test happens to interleave it; this analyzer rejects
// the store at vet time. File granularity is the enforcement unit
// because construction sites legitimately mutate (clone-and-fill
// before publish) and those all live beside the type.
package cowpublish

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the cowpublish pass.
var Analyzer = &analysis.Analyzer{
	Name: "cowpublish",
	Doc:  "reject stores to //mb:immutable types outside their constructor file",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	marked := analysis.TypeMarkers(pass.Fset, pass.Files, pass.TypesInfo, analysis.MarkImmutable)
	if len(marked) == 0 {
		return nil
	}
	// Files granted constructor rights per type, beyond the declaring
	// file: //mb:ctorfile TypeName [TypeName...] anywhere in the file.
	ctor := map[string]map[string]bool{} // filename -> type name -> ok
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			if arg, ok := analysis.MarkerArg(cg, analysis.MarkCtorFile); ok && arg != "" {
				m := ctor[fname]
				if m == nil {
					m = map[string]bool{}
					ctor[fname] = m
				}
				for _, name := range strings.Fields(arg) {
					m[name] = true
				}
			}
		}
	}

	allowed := func(file string, tn *types.TypeName) bool {
		if marked[tn] == file {
			return true
		}
		return ctor[file][tn.Name()]
	}

	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range x.Lhs {
					checkStore(pass, marked, allowed, fname, lhs)
				}
			case *ast.IncDecStmt:
				checkStore(pass, marked, allowed, fname, x.X)
			case *ast.UnaryExpr:
				// &immutable.field taken outside the constructor file is a
				// mutable window onto frozen memory.
				if x.Op == token.AND {
					if sel, ok := x.X.(*ast.SelectorExpr); ok {
						reportIfMarked(pass, marked, allowed, fname, sel, sel.X,
							"taking the address of field %s of //mb:immutable type %s outside its constructor file")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkStore walks an assignment target's selector/index chain and
// reports the store when any link is owned by a marked type.
func checkStore(pass *analysis.Pass, marked map[*types.TypeName]string, allowed func(string, *types.TypeName) bool, fname string, lhs ast.Expr) {
	for {
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			// Field store: x.X's type owns the field.
			reportIfMarked(pass, marked, allowed, fname, x, x.X,
				"store to field %s of //mb:immutable type %s outside its constructor file")
			lhs = x.X
		case *ast.IndexExpr:
			// Element store: the indexed map/slice may itself be the
			// marked type or a field of it (handled next iteration).
			reportIfMarked(pass, marked, allowed, fname, x, x.X,
				"element store through %s of //mb:immutable type %s outside its constructor file")
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		default:
			return
		}
	}
}

// reportIfMarked reports at site when owner's type is //mb:immutable
// and the current file lacks constructor rights.
func reportIfMarked(pass *analysis.Pass, marked map[*types.TypeName]string, allowed func(string, *types.TypeName) bool, fname string, site, owner ast.Expr, format string) {
	tv, ok := pass.TypesInfo.Types[owner]
	if !ok || tv.Type == nil {
		return
	}
	named := analysis.NamedOf(tv.Type)
	if named == nil {
		return
	}
	tn := named.Obj()
	if _, isMarked := marked[tn]; !isMarked || allowed(fname, tn) {
		return
	}
	pass.Reportf(site.Pos(), format, analysis.ExprText(site), tn.Name())
}
