package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// vetConfig mirrors the JSON configuration cmd/go hands a vet tool for
// each package unit (see cmd/go/internal/work's "vet.cfg"). Fields the
// checker does not consume are still listed so the decode is strict
// about nothing and forward-compatible with everything.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitchecker runs the analyzers on the single package unit described
// by the vet.cfg file at cfgPath — the protocol `go vet -vettool=`
// speaks — and returns the process exit code: 0 clean, 1 on an
// operational error, 2 when diagnostics were reported. Diagnostics go
// to stderr in the standard file:line:col form.
func Unitchecker(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mbvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go requires the facts output file to exist even though these
	// analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mbvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "mbvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// The unit is only needed as a dependency's fact source; with no
		// facts to compute there is nothing to do.
		return 0
	}
	if cfg.Compiler == "gccgo" {
		fmt.Fprintln(os.Stderr, "mbvet: gccgo export data is not supported")
		return 1
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "mbvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("mbvet: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	u := &Unit{Path: cfg.ImportPath, Fset: fset, Files: files}
	pkg, err := conf.Check(cfg.ImportPath, fset, u.Files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mbvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	u.Pkg, u.Info = pkg, info

	findings, err := RunAnalyzers(u, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbvet: %v\n", err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	return 2
}
