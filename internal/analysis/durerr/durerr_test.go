package durerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/durerr"
)

func TestCallers(t *testing.T) {
	analysistest.Run(t, "testdata/caller", "repro/internal/other", durerr.Analyzer)
}

func TestStrictClosePackages(t *testing.T) {
	analysistest.Run(t, "testdata/strict", "repro/internal/snapshot", durerr.Analyzer)
}
