// Package durerr is an errcheck-style pass scoped to durability calls.
//
// A dropped error from Sync, Close, a CRC verify or an atomic file
// replace silently converts "durable" into "probably durable": the WAL
// acks a record the disk never saw, or a snapshot passes verification
// that never ran. General errcheck is too noisy to gate CI on; this
// pass flags only the calls where an ignored error is a durability
// bug:
//
//   - any error-returning call whose callee is declared in
//     internal/wal, internal/snapshot or internal/mmap;
//   - (*os.File).Sync anywhere in the tree;
//   - (*os.File).Close inside internal/wal and internal/snapshot
//     (elsewhere a dropped Close on a read-only file is harmless).
//
// "Unchecked" means the call's error result is discarded outright: a
// bare expression statement, or a go/defer of the call. Assigning to _
// is allowed — it is the language's own "I considered this" spelling.
// Deferred calls in _test.go files are exempt (test cleanup).
package durerr

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// durablePkgs are the packages whose exported errors must always be
// consumed, wherever the caller lives.
var durablePkgs = map[string]bool{
	"repro/internal/wal":      true,
	"repro/internal/snapshot": true,
	"repro/internal/mmap":     true,
}

// closeStrictPkgs are the packages in which even (*os.File).Close must
// be checked: they own files opened for writing.
var closeStrictPkgs = map[string]bool{
	"repro/internal/wal":      true,
	"repro/internal/snapshot": true,
}

// Analyzer is the durerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "durerr",
	Doc:  "require the error results of durability calls (Sync, Close, CRC verify, atomic replace) to be consumed",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkgPath := pass.PkgPath()
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		isTest := strings.HasSuffix(fname, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					checkCall(pass, pkgPath, call, "discarded")
				}
			case *ast.DeferStmt:
				if !isTest {
					checkCall(pass, pkgPath, x.Call, "discarded by defer")
				}
				return false
			case *ast.GoStmt:
				checkCall(pass, pkgPath, x.Call, "discarded by go statement")
				return false
			}
			return true
		})
	}
	return nil
}

// checkCall reports the call if it is a durability call whose error
// result is being dropped in the given way.
func checkCall(pass *analysis.Pass, pkgPath string, call *ast.CallExpr, how string) {
	label, ok := durabilityCall(pass, pkgPath, call)
	if !ok {
		return
	}
	if !returnsError(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error from durability call %s %s; handle it or assign it to _ deliberately", label, how)
}

// durabilityCall classifies the call; label is the diagnostic name.
func durabilityCall(pass *analysis.Pass, pkgPath string, call *ast.CallExpr) (string, bool) {
	obj := calleeObject(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	calleePkg := analysis.CanonicalPath(obj.Pkg().Path())
	name := obj.Name()
	if durablePkgs[calleePkg] {
		return calleePkg[strings.LastIndex(calleePkg, "/")+1:] + "." + name, true
	}
	if calleePkg == "os" && isFileMethod(obj) {
		switch name {
		case "Sync":
			return "(*os.File).Sync", true
		case "Close":
			if closeStrictPkgs[pkgPath] {
				return "(*os.File).Close", true
			}
		}
	}
	return "", false
}

// calleeObject resolves the function object behind the call, or nil
// for builtins, conversions and indirect calls.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: wal.Open(...).
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isFileMethod reports whether obj is a method with *os.File receiver.
func isFileMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := analysis.NamedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "File"
}

// returnsError reports whether the call yields an error anywhere in
// its result tuple.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
