// Package other calls into the durable packages from outside: every
// dropped error on a durability call is rejected; deliberate drops
// spelled with _ pass.
package other

import (
	"os"

	"repro/internal/wal"
)

func sloppy(w *wal.WAL, f *os.File) {
	w.Close() // want `wal\.Close discarded`
	f.Sync()  // want `\(\*os\.File\)\.Sync discarded`
	f.Close() // ok: Close outside the strict packages is not a durability call
}

func deliberate(w *wal.WAL) {
	_ = w.Close() // ok: the language's own "I considered this" spelling
}

func handled(w *wal.WAL) error {
	if err := w.Sync(); err != nil {
		return err
	}
	return w.Close()
}

func deferred(w *wal.WAL) {
	defer w.Close() // want `wal\.Close discarded by defer`
}

func fireAndForget(w *wal.WAL) {
	go w.Sync() // want `wal\.Sync discarded by go statement`
}

func tupleDrop(w *wal.WAL, rec wal.Record) {
	w.Append(rec) // want `wal\.Append discarded`
}
