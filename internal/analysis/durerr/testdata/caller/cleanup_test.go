package other

import "repro/internal/wal"

// Test files may defer Close for cleanup without checking: the test's
// assertions are about the code under test, not the teardown.
func cleanup(w *wal.WAL) {
	defer w.Close() // ok: _test.go defers are exempt
}
