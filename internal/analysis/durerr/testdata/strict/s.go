// Package snapshot impersonates a strict-Close package: it owns files
// opened for writing, so even (*os.File).Close must be consumed.
package snapshot

import "os"

func strictClose(f *os.File) {
	f.Close() // want `\(\*os\.File\)\.Close discarded`
}

func checkedClose(f *os.File) error {
	return f.Close()
}
