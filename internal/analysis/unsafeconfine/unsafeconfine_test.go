package unsafeconfine_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/unsafeconfine"
)

func TestUnconfined(t *testing.T) {
	analysistest.Run(t, "testdata/unconfined", "repro/internal/other", unsafeconfine.Analyzer)
}

// TestConfined type-checks the same unsafe surface under an
// allowlisted import path; the analyzer must stay silent.
func TestConfined(t *testing.T) {
	analysistest.Run(t, "testdata/confined", "repro/internal/mmap", unsafeconfine.Analyzer)
}

// TestAllowlistCoversTestVariants pins the canonicalisation that maps
// a test-augmented unit ("p [p.test]") onto its package's entry.
func TestAllowlistCoversTestVariants(t *testing.T) {
	analysistest.Run(t, "testdata/confined", "repro/internal/mmap [repro/internal/mmap.test]", unsafeconfine.Analyzer)
}
