// Package mmap impersonates an allowlisted package: the same unsafe
// surface that is rejected elsewhere passes here.
package mmap

import (
	"reflect"
	"unsafe"
)

func firstByte(b []byte) *byte {
	return (*byte)(unsafe.Pointer(&b[0]))
}

func header(s string) *reflect.StringHeader {
	return (*reflect.StringHeader)(unsafe.Pointer(&s))
}
