// Package other stands in for any package outside the unsafe
// allowlist: pointer reinterpretation and deprecated slice headers are
// rejected; the compile-time size operators pass.
package other

import (
	"reflect"
	"unsafe"
)

// The size operators are compile-time and allowed everywhere (cache
// line padding, layout assertions).
const (
	wordSize  = unsafe.Sizeof(uintptr(0))
	wordAlign = unsafe.Alignof(uintptr(0))
)

type padded struct {
	n   uint64
	pad [64 - unsafe.Sizeof(uint64(0))%64]byte
}

func firstByte(b []byte) *byte {
	return (*byte)(unsafe.Pointer(&b[0])) // want `use of unsafe\.Pointer outside the unsafe allowlist`
}

func header(s string) uintptr {
	h := (*reflect.StringHeader)(nil) // want `reflect\.StringHeader conversion outside the unsafe allowlist`
	_ = h
	_ = s
	return 0
}
