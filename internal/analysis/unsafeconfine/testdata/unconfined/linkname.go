package other

import _ "unsafe" // required by the linkname pragma at build time

/* want `go:linkname outside the unsafe allowlist` */ //go:linkname fastrand runtime.fastrand
func fastrand() uint32
