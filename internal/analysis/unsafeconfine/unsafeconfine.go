// Package unsafeconfine rejects unconfined uses of unsafe: outside an
// allowlisted set of packages, importing unsafe for anything beyond
// the compile-time size operators, using //go:linkname, or touching
// reflect.SliceHeader/StringHeader is an error.
//
// The serving stack's zero-copy tricks — string views into connection
// arenas, typed slices over mmapped artifact bytes — are deliberately
// confined to three packages whose tests pin the aliasing rules
// (internal/server/binproto, internal/snapshot, internal/mmap). Every
// other package gets memory safety from the language; this analyzer
// keeps it that way when future PRs grow the tree.
//
// unsafe.Sizeof, Alignof and Offsetof are allowed everywhere: they are
// compile-time constants with no pointer reinterpretation, used for
// cache-line padding and layout assertions.
package unsafeconfine

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Allowlist is the set of canonical package paths permitted to use the
// full unsafe surface. Tests of an allowlisted package are covered by
// the same entry.
var Allowlist = []string{
	"repro/internal/server/binproto",
	"repro/internal/snapshot",
	"repro/internal/mmap",
}

// sizeOps are the compile-time unsafe operators allowed everywhere.
var sizeOps = map[string]bool{"Sizeof": true, "Alignof": true, "Offsetof": true}

// Analyzer is the unsafeconfine pass.
var Analyzer = &analysis.Analyzer{
	Name: "unsafeconfine",
	Doc:  "confine unsafe, //go:linkname and slice-header conversions to the allowlisted packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.PkgPath()
	for _, allowed := range Allowlist {
		if path == allowed {
			return nil
		}
	}
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// //go:linkname reaches across package boundaries into private
	// runtime state; it is never allowed outside the allowlist.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:linkname") {
				pass.Reportf(c.Pos(), "//go:linkname outside the unsafe allowlist (%s)", strings.Join(Allowlist, ", "))
			}
		}
	}

	importsUnsafe := false
	for _, spec := range f.Imports {
		if strings.Trim(spec.Path.Value, `"`) == "unsafe" {
			importsUnsafe = true
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "unsafe":
			if !sizeOps[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "use of unsafe.%s outside the unsafe allowlist (%s); only Sizeof/Alignof/Offsetof are allowed here",
					sel.Sel.Name, strings.Join(Allowlist, ", "))
			}
		case "reflect":
			if sel.Sel.Name == "SliceHeader" || sel.Sel.Name == "StringHeader" {
				pass.Reportf(sel.Pos(), "reflect.%s conversion outside the unsafe allowlist (%s)",
					sel.Sel.Name, strings.Join(Allowlist, ", "))
			}
		}
		return true
	})

	// A dot-import of unsafe would hide the uses from the selector walk.
	if importsUnsafe {
		for _, spec := range f.Imports {
			if strings.Trim(spec.Path.Value, `"`) == "unsafe" && spec.Name != nil && spec.Name.Name == "." {
				pass.Reportf(spec.Pos(), "dot-import of unsafe outside the unsafe allowlist")
			}
		}
	}
}
