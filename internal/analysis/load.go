package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Unit is one type-checked package ready for analysis. When tests are
// loaded, the unit for a package is its test-augmented variant (the
// package's own files plus its _test.go files), so findings cover test
// code with one pass; external test packages ("p_test") are separate
// units.
type Unit struct {
	// Path is the import path as the loader saw it (may carry cmd/go's
	// " [p.test]" variant suffix; CanonicalPath strips it).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	ForTest    string
	Module     *struct{ Path string }
}

// Load type-checks the packages matching patterns (for example
// "./...") in the module rooted at or above dir, entirely offline: it
// asks `go list -export` for the file sets and compiled export data of
// every dependency, parses the target packages from source with
// comments (the annotations live there), and type-checks them against
// the export data. includeTests folds _test.go files into each unit
// and adds external test packages.
func Load(dir string, patterns []string, includeTests bool) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,ForTest,Module")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var local []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
			// A test variant "p [q.test]" satisfies plain imports of p
			// too, when no plain build of p was listed.
			if key := stripVariant(p.ImportPath); key != p.ImportPath {
				if _, ok := exports[key]; !ok {
					exports[key] = p.Export
				}
			}
		}
		if p.Module != nil && !strings.HasSuffix(p.ImportPath, ".test") {
			local = append(local, p)
		}
	}

	// With -test the same package lists twice: plain and test-augmented
	// ("p [p.test]", whose GoFiles are a superset). Analyze only the
	// augmented variant so each file is checked once.
	augmented := map[string]bool{}
	for _, p := range local {
		if p.ForTest != "" && stripVariant(p.ImportPath) == p.ForTest {
			augmented[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exports)
	var units []*Unit
	for _, p := range local {
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue // superseded by its test-augmented variant
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		u, err := checkUnit(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// stripVariant removes cmd/go's " [p.test]" suffix only, keeping an
// external test package's "_test" name intact.
func stripVariant(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// checkUnit parses and type-checks one package's files.
func checkUnit(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Unit, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, gf := range goFiles {
		name := gf
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Unit{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// exportDataImporter resolves imports from the gc export data files
// `go list -export` reported, so type-checking never re-parses a
// dependency.
func exportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("analysis: no go.mod above " + dir)
		}
		dir = parent
	}
}

// fixtureExports caches export data lookups for LoadDir fixtures, so a
// test binary running many fixtures shells out to `go list` once per
// distinct import set, not once per fixture file.
var fixtureExports struct {
	sync.Mutex
	m map[string]string
}

// LoadDir parses and type-checks every .go file in one directory as a
// single package — the fixture loader behind analysistest. The files
// may import standard-library and module-local packages; their export
// data is resolved through `go list -export` run at the module root.
// pkgPath becomes the type-checked package's import path, letting
// fixtures impersonate an arbitrary package (allowlisted or not).
func LoadDir(dir, pkgPath string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}

	// Resolve the fixture's imports to export data, cached process-wide.
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p != "unsafe" && !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	exports, err := resolveExports(dir, imports)
	if err != nil {
		return nil, err
	}

	info := NewTypesInfo()
	conf := types.Config{Importer: exportDataImporter(fset, exports)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking fixture %s: %w", dir, err)
	}
	return &Unit{Path: pkgPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// resolveExports maps import paths to gc export data files, caching
// results across calls.
func resolveExports(dir string, imports []string) (map[string]string, error) {
	fixtureExports.Lock()
	defer fixtureExports.Unlock()
	if fixtureExports.m == nil {
		fixtureExports.m = map[string]string{}
	}
	var missing []string
	for _, p := range imports {
		if _, ok := fixtureExports.m[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		root, err := moduleRoot(dir)
		if err != nil {
			return nil, err
		}
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(missing, " "), err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				fixtureExports.m[p.ImportPath] = p.Export
			}
		}
	}
	out := make(map[string]string, len(fixtureExports.m))
	for k, v := range fixtureExports.m {
		out[k] = v
	}
	return out, nil
}
