// Package hot exercises the //mb:noalloc checks: every allocating
// construct is rejected inside annotated functions, self-append and
// suppressed lines pass, and unannotated functions are ignored.
package hot

import "errors"

//mb:noalloc
func selfAppend(dst, src []byte) []byte {
	dst = append(dst, src...)     // ok: reuses dst's backing array
	dst = append(dst[:0], src...) // ok: reset-and-refill idiom
	return dst
}

//mb:noalloc
func freshAppend(dst, src []byte) []byte {
	out := append(src, dst...) // want `append grows into a fresh backing array`
	return out
}

//mb:noalloc
func makes(n int) int {
	b := make([]byte, n)  // want `make allocates`
	m := map[string]int{} // want `map literal allocates`
	s := []int{1, 2}      // want `slice literal allocates`
	p := new(int)         // want `new allocates`
	q := &pair{}          // want `&composite literal escapes`
	return len(b) + len(m) + len(s) + *p + q.a
}

type pair struct{ a, b int }

//mb:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//mb:noalloc
func convert(b []byte) string {
	return string(b) // want `to string conversion copies`
}

//mb:noalloc
func convertBack(s string) []byte {
	return []byte(s) // want `string to \[\]byte conversion copies`
}

//mb:noalloc
func boxes(v int) {
	var sink any
	sink = v // want `boxes it on the heap`
	_ = sink
}

//mb:noalloc
func boxedArg(v pair) {
	accept(v) // want `boxes it on the heap`
}

func accept(any) {}

//mb:noalloc
func pointerShapedArg(v *pair) {
	accept(v) // ok: a pointer fits the interface word
}

//mb:noalloc
func variadic(v int) int {
	return sum(v) // want `variadic call allocates its argument slice` `boxes it on the heap`
}

func sum(vs ...any) int { return len(vs) }

//mb:noalloc
func denylisted() error {
	return errors.New("boom") // want `call to errors\.New allocates`
}

//mb:noalloc
func closures() {
	f := func() {} // want `closure allocates`
	f()
}

//mb:noalloc
func spawns() {
	go helper() // want `go statement allocates`
}

func helper() {}

//mb:noalloc
func suppressed(n int) []byte {
	b := make([]byte, n) //mb:allocok capacity miss on first use, then reused
	return b
}

// unannotated functions allocate freely.
func cold() []byte {
	return make([]byte, 1)
}
