package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestHotPathChecks(t *testing.T) {
	analysistest.Run(t, "testdata/hot", "repro/internal/hot", noalloc.Analyzer)
}
