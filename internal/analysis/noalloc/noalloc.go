// Package noalloc checks functions annotated //mb:noalloc for
// allocation-inducing constructs. These are the serving hot paths —
// stream ingest, WAL append framing, binary-protocol frame processing,
// the engine's batch inner loop — whose zero-allocation property the
// benchmarks pin; the analyzer catches the regression at vet time,
// before a benchmark diff does.
//
// The check is syntactic plus type-informed, per function body:
//
//   - make/new and map/slice composite literals (and &T{} literals);
//   - append whose result is not assigned back to its own first
//     operand (unbounded growth into a fresh backing array);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - closures (func literals) and go statements;
//   - interface boxing: passing, assigning or returning a value of
//     non-pointer-shaped concrete type where an interface is expected;
//   - calls into the formatting family (fmt.*, errors.New, sort.Slice,
//     strings.Join/Repeat, strconv.Itoa/Format*/Quote*).
//
// Plain calls to other functions are not followed: annotate the callee
// too if it is on the hot path. A finding on a deliberate cold path
// (error return, capacity-miss warmup) is suppressed with a line
// comment "//mb:allocok <why>". Every annotation is backed by a
// testing.AllocsPerRun regression test (noalloc_test.go in the
// annotated package); the analysis suite's tests enforce that pairing.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reject allocation-inducing constructs in functions annotated //mb:noalloc",
	Run:  run,
}

// denylist maps package path -> function names that allocate by
// construction. An empty set means every function in the package.
var denylist = map[string]map[string]bool{
	"fmt":     {},
	"errors":  {"New": true},
	"sort":    {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"strings": {"Join": true, "Repeat": true, "Replace": true, "ReplaceAll": true, "Split": true, "Fields": true, "ToUpper": true, "ToLower": true},
	"strconv": {"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true, "Quote": true, "Unquote": true, "AppendQuote": false},
}

func run(pass *analysis.Pass) error {
	fns := analysis.FuncMarkers(pass.Files, analysis.MarkNoalloc)
	if len(fns) == 0 {
		return nil
	}
	allocOK := analysis.MarkedLines(pass.Fset, pass.Files, analysis.MarkAllocOK)
	for _, fd := range fns {
		if fd.Body == nil {
			continue
		}
		c := &checker{pass: pass, fd: fd, allocOK: allocOK}
		c.check()
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	fd      *ast.FuncDecl
	allocOK map[string]map[int]bool
}

// report emits a finding unless its line carries //mb:allocok.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	p := c.pass.Fset.Position(pos)
	if c.allocOK[p.Filename][p.Line] {
		return
	}
	args = append(args, c.fd.Name.Name)
	c.pass.Reportf(pos, format+" in //mb:noalloc function %s", args...)
}

func (c *checker) check() {
	info := c.pass.TypesInfo
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.report(x.Pos(), "closure allocates")
			return false // the closure's own body is its own scope
		case *ast.GoStmt:
			c.report(x.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			c.compositeLit(x)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					c.report(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info.Types[x.X].Type) {
				c.report(x.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.assign(x)
		case *ast.ReturnStmt:
			c.returnStmt(x)
		case *ast.CallExpr:
			c.call(x)
		}
		return true
	})
}

func (c *checker) compositeLit(x *ast.CompositeLit) {
	t := c.pass.TypesInfo.Types[x].Type
	if t == nil {
		return
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice:
		c.report(x.Pos(), "slice literal allocates")
	case *types.Map:
		c.report(x.Pos(), "map literal allocates")
	}
}

// assign checks self-append shape and boxing on plain assignments.
func (c *checker) assign(x *ast.AssignStmt) {
	info := c.pass.TypesInfo
	if len(x.Lhs) == len(x.Rhs) {
		for i, rhs := range x.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
				if !selfAppend(x.Lhs[i], call) {
					c.report(call.Pos(), "append grows into a fresh backing array (result not reassigned to its operand)")
				}
				continue
			}
			c.boxing(x.Lhs[i], rhs)
		}
		return
	}
	for _, rhs := range x.Rhs {
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
			c.report(call.Pos(), "append result dropped into a multi-assign; cannot prove in-place growth")
		}
	}
}

// boxing reports an implicit interface conversion of a non-pointer-
// shaped value in an assignment position.
func (c *checker) boxing(dst, src ast.Expr) {
	info := c.pass.TypesInfo
	dt := info.Types[dst].Type
	st := info.Types[src].Type
	if dt == nil || st == nil {
		return
	}
	if !types.IsInterface(dt) || types.IsInterface(st) {
		return
	}
	if tv := info.Types[src]; tv.IsNil() || tv.Value != nil {
		return // nil and constants do not box at run time
	}
	if analysis.IsPointerShaped(st) {
		return
	}
	c.report(src.Pos(), "assigning %s to interface boxes it on the heap", st.String())
}

func (c *checker) returnStmt(x *ast.ReturnStmt) {
	sig, ok := c.pass.TypesInfo.Defs[c.fd.Name].Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(x.Results) {
		return
	}
	for i, res := range x.Results {
		c.boxingTo(sig.Results().At(i).Type(), res)
	}
}

func (c *checker) boxingTo(dt types.Type, src ast.Expr) {
	info := c.pass.TypesInfo
	st := info.Types[src].Type
	if dt == nil || st == nil {
		return
	}
	if !types.IsInterface(dt) || types.IsInterface(st) {
		return
	}
	if tv := info.Types[src]; tv.IsNil() || tv.Value != nil {
		return
	}
	if analysis.IsPointerShaped(st) {
		return
	}
	c.report(src.Pos(), "converting %s to interface boxes it on the heap", st.String())
}

func (c *checker) call(x *ast.CallExpr) {
	info := c.pass.TypesInfo
	// Conversions: T(v).
	if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
		c.conversion(x, tv.Type)
		return
	}
	if isBuiltin(info, x, "make") {
		c.report(x.Pos(), "make allocates")
		return
	}
	if isBuiltin(info, x, "new") {
		c.report(x.Pos(), "new allocates")
		return
	}
	if isBuiltin(info, x, "append") {
		// Handled at the assignment; a bare append (unused result) is
		// pointless and an expression-position append cannot be proven
		// in-place.
		return
	}
	// Denylisted allocating helpers.
	if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				if names, hit := denylist[pn.Imported().Path()]; hit {
					if len(names) == 0 || names[sel.Sel.Name] {
						c.report(x.Pos(), "call to %s.%s allocates", pn.Imported().Path(), sel.Sel.Name)
					}
				}
			}
		}
	}
	// Boxing at argument positions.
	sig, ok := info.Types[x.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range x.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if x.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.boxingTo(pt, arg)
		}
	}
	if sig.Variadic() && !x.Ellipsis.IsValid() && len(x.Args) >= params.Len() {
		c.report(x.Pos(), "variadic call allocates its argument slice")
	}
}

func (c *checker) conversion(x *ast.CallExpr, to types.Type) {
	if len(x.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.Types[x.Args[0]].Type
	if from == nil {
		return
	}
	toU := types.Unalias(to).Underlying()
	fromU := types.Unalias(from).Underlying()
	if isString(fromU) {
		if s, ok := toU.(*types.Slice); ok && isByteOrRune(s.Elem()) {
			c.report(x.Pos(), "string to %s conversion copies", to.String())
		}
	}
	if s, ok := fromU.(*types.Slice); ok && isByteOrRune(s.Elem()) && isString(toU) {
		c.report(x.Pos(), "%s to string conversion copies", from.String())
	}
	if types.IsInterface(toU) && !types.IsInterface(fromU) && !analysis.IsPointerShaped(from) {
		if tv := c.pass.TypesInfo.Types[x.Args[0]]; !tv.IsNil() && tv.Value == nil {
			c.report(x.Pos(), "conversion of %s to interface boxes it on the heap", from.String())
		}
	}
}

func selfAppend(lhs ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	target := analysis.ExprText(lhs)
	first := call.Args[0]
	// x = append(x, ...) and x = append(x[:0], ...) both reuse x's
	// backing array (the latter is the reset-and-refill idiom).
	if sl, ok := first.(*ast.SliceExpr); ok {
		return analysis.ExprText(sl.X) == target
	}
	return analysis.ExprText(first) == target
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRune(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32
}
