// Package suite assembles the full mbvet analyzer set. cmd/mbvet and
// the analysis tests both consume this list, so a new analyzer added
// here is automatically wired into the binary, the vettool protocol
// and the CI gate.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/cowpublish"
	"repro/internal/analysis/durerr"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/retainrelease"
	"repro/internal/analysis/unsafeconfine"
)

// All returns the mbvet analyzers in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		unsafeconfine.Analyzer,
		retainrelease.Analyzer,
		cowpublish.Analyzer,
		noalloc.Analyzer,
		durerr.Analyzer,
	}
}
