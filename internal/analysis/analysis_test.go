package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestLoadTypeChecksAgainstExportData pins the offline loader: a
// module package resolves its dependencies through `go list -export`
// gc export data, with test files folded into the unit.
func TestLoadTypeChecksAgainstExportData(t *testing.T) {
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	units, err := Load(root, []string{"./internal/mmap"}, true)
	if err != nil {
		t.Fatal(err)
	}
	var unit *Unit
	for _, u := range units {
		if CanonicalPath(u.Path) == "repro/internal/mmap" && !strings.HasSuffix(u.Path, "_test") {
			unit = u
		}
	}
	if unit == nil {
		t.Fatalf("no unit for repro/internal/mmap among %d units", len(units))
	}
	if unit.Pkg == nil || unit.Info == nil || len(unit.Files) < 2 {
		t.Fatalf("unit incomplete: pkg=%v files=%d", unit.Pkg, len(unit.Files))
	}
	hasTestFile := false
	for _, f := range unit.Files {
		if strings.HasSuffix(unit.Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("test-augmented unit carries no _test.go files")
	}
}

func TestCanonicalPath(t *testing.T) {
	cases := map[string]string{
		"repro/internal/wal":                                "repro/internal/wal",
		"repro/internal/wal [repro/internal/wal.test]":      "repro/internal/wal",
		"repro/internal/wal_test [repro/internal/wal.test]": "repro/internal/wal",
		"repro/internal/engine_test":                        "repro/internal/engine",
	}
	for in, want := range cases {
		if got := CanonicalPath(in); got != want {
			t.Errorf("CanonicalPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestNoallocAnnotationsHaveRegressionTests walks the repo and
// requires, for every //mb:noalloc function, a _test.go file in the
// same package that names the function and calls
// testing.AllocsPerRun — the end-to-end backstop behind the analyzer's
// syntactic check.
func TestNoallocAnnotationsHaveRegressionTests(t *testing.T) {
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	markRe := regexp.MustCompile(`(?m)^//mb:noalloc`)
	funcRe := regexp.MustCompile(`(?m)^//mb:noalloc[^\n]*\n(?://[^\n]*\n)*func(?: \([^)]*\))? ([A-Za-z0-9_]+)`)

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !markRe.Match(src) {
			return nil
		}
		for _, m := range funcRe.FindAllStringSubmatch(string(src), -1) {
			fn := m[1]
			if !packageTestsMention(t, filepath.Dir(path), fn) {
				t.Errorf("%s: //mb:noalloc %s has no AllocsPerRun regression test naming it in its package", path, fn)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// packageTestsMention reports whether some _test.go in dir both calls
// testing.AllocsPerRun and names fn.
func packageTestsMention(t *testing.T, dir, fn string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wordRe := regexp.MustCompile(`\b` + regexp.QuoteMeta(fn) + `\b`)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(src), "AllocsPerRun") && wordRe.Match(src) {
			return true
		}
	}
	return false
}
