package ml

import (
	"errors"
	"math"
	"sort"
)

// Isotonic is a monotone (non-decreasing) piecewise-constant calibration
// map fitted with the pool-adjacent-violators algorithm. CTR systems
// calibrate raw model scores so that predicted probabilities match
// observed frequencies — a standard post-processing step for the
// classifiers in this repository.
type Isotonic struct {
	// Thresholds and Values define the step function: the calibrated
	// value for score s is Values[i] for the largest i with
	// Thresholds[i] <= s.
	Thresholds []float64
	Values     []float64
}

// FitIsotonic fits the calibration map from (score, outcome) pairs by
// pool-adjacent-violators. Outcomes are 0/1 via the labels slice.
func FitIsotonic(scores []float64, labels []bool) (*Isotonic, error) {
	if len(scores) == 0 || len(scores) != len(labels) {
		return nil, errors.New("ml: isotonic needs equal-length non-empty scores and labels")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Blocks of pooled observations.
	type block struct {
		sum, n float64
		lo     float64 // smallest score in the block
	}
	var blocks []block
	for _, i := range idx {
		y := 0.0
		if labels[i] {
			y = 1
		}
		blocks = append(blocks, block{sum: y, n: 1, lo: scores[i]})
		// Pool while the monotonicity constraint is violated.
		for len(blocks) >= 2 {
			a := blocks[len(blocks)-2]
			b := blocks[len(blocks)-1]
			if a.sum/a.n <= b.sum/b.n {
				break
			}
			blocks = blocks[:len(blocks)-1]
			blocks[len(blocks)-1] = block{sum: a.sum + b.sum, n: a.n + b.n, lo: a.lo}
		}
	}
	iso := &Isotonic{
		Thresholds: make([]float64, len(blocks)),
		Values:     make([]float64, len(blocks)),
	}
	for i, b := range blocks {
		iso.Thresholds[i] = b.lo
		iso.Values[i] = b.sum / b.n
	}
	return iso, nil
}

// Calibrate maps a raw score to its calibrated probability.
func (iso *Isotonic) Calibrate(score float64) float64 {
	// Find the last threshold <= score.
	i := sort.SearchFloat64s(iso.Thresholds, score)
	// SearchFloat64s returns the first index with T[i] >= score; step
	// back unless it is an exact hit.
	if i == len(iso.Thresholds) || (i > 0 && iso.Thresholds[i] != score) {
		i--
	}
	if i < 0 {
		return iso.Values[0]
	}
	return iso.Values[i]
}

// Platt is logistic (sigmoid) calibration: p = sigmoid(A·score + B),
// with A and B fitted by gradient descent on log-loss. Smoother than
// isotonic and safer on small validation sets.
type Platt struct {
	A, B float64
}

// FitPlatt fits the two-parameter sigmoid map.
func FitPlatt(scores []float64, labels []bool) (*Platt, error) {
	if len(scores) == 0 || len(scores) != len(labels) {
		return nil, errors.New("ml: platt needs equal-length non-empty scores and labels")
	}
	p := &Platt{A: 1, B: 0}
	n := float64(len(scores))
	lr := 0.1
	for iter := 0; iter < 500; iter++ {
		var gA, gB float64
		for i, s := range scores {
			q := Sigmoid(p.A*s + p.B)
			y := 0.0
			if labels[i] {
				y = 1
			}
			gA += (q - y) * s
			gB += q - y
		}
		p.A -= lr * gA / n
		p.B -= lr * gB / n
		if math.Abs(gA/n)+math.Abs(gB/n) < 1e-8 {
			break
		}
	}
	return p, nil
}

// Calibrate maps a raw score to its calibrated probability.
func (p *Platt) Calibrate(score float64) float64 {
	return Sigmoid(p.A*score + p.B)
}

// ExpectedCalibrationError bins predictions and measures the mean
// absolute gap between predicted probability and observed frequency —
// the standard calibration diagnostic.
func ExpectedCalibrationError(preds []float64, labels []bool, bins int) float64 {
	if len(preds) == 0 || bins <= 0 {
		return 0
	}
	binSum := make([]float64, bins)
	binPos := make([]float64, bins)
	binN := make([]float64, bins)
	for i, p := range preds {
		b := int(p * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		binSum[b] += p
		binN[b]++
		if labels[i] {
			binPos[b]++
		}
	}
	var ece float64
	n := float64(len(preds))
	for b := 0; b < bins; b++ {
		if binN[b] == 0 {
			continue
		}
		gap := math.Abs(binSum[b]/binN[b] - binPos[b]/binN[b])
		ece += gap * binN[b] / n
	}
	return ece
}
