package ml

import (
	"fmt"
	"math/rand"
)

// Fold is one train/test split of a k-fold partition, expressed as index
// sets into the original dataset.
type Fold struct {
	Train, Test []int
}

// KFold partitions n example indices into k shuffled folds, matching the
// paper's "standard 10-fold cross validation experiments, where in each
// cross validation iteration 90% instances are used for training and the
// rest 10% for testing". Deterministic given seed.
func KFold(n, k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: k-fold needs k >= 2, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("ml: cannot split %d examples into %d folds", n, k)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		// Fold f owns positions f, f+k, f+2k, ... of the permutation.
		for pos := f; pos < n; pos += k {
			folds[f].Test = append(folds[f].Test, perm[pos])
		}
	}
	for f := 0; f < k; f++ {
		for g := 0; g < k; g++ {
			if g != f {
				folds[f].Train = append(folds[f].Train, folds[g].Test...)
			}
		}
	}
	return folds, nil
}

// Subset materialises the instances at the given indices.
func Subset(data []Instance, idx []int) []Instance {
	out := make([]Instance, len(idx))
	for i, j := range idx {
		out[i] = data[j]
	}
	return out
}

// Classifier is the common interface of the package's trainable models.
type Classifier interface {
	Fit(data []Instance) error
	PredictAll(data []Instance) []float64
}

// CrossValidate runs k-fold cross-validation of the classifier produced
// by newModel and returns the per-fold metrics.
func CrossValidate(data []Instance, k int, seed int64, newModel func() Classifier) ([]BinaryMetrics, error) {
	folds, err := KFold(len(data), k, seed)
	if err != nil {
		return nil, err
	}
	out := make([]BinaryMetrics, 0, k)
	for fi, fold := range folds {
		train := Subset(data, fold.Train)
		test := Subset(data, fold.Test)
		m := newModel()
		if err := m.Fit(train); err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		preds := m.PredictAll(test)
		labels := make([]bool, len(test))
		for i := range test {
			labels[i] = test[i].Label
		}
		out = append(out, EvaluateBinary(preds, labels))
	}
	return out, nil
}
