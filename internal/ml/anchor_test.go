package ml

import (
	"math"
	"testing"
)

func TestAnchorWeightsPullTowardPrior(t *testing.T) {
	// One feature, pure noise labels: unanchored the weight wanders near
	// zero; anchored at 2 it must stay close to 2.
	data := []Instance{
		{Features: []Feature{{0, 1}}, Label: true},
		{Features: []Feature{{0, 1}}, Label: false},
		{Features: []Feature{{0, -1}}, Label: true},
		{Features: []Feature{{0, -1}}, Label: false},
	}
	anchored := &LogisticRegression{
		Epochs: 300, LearningRate: 0.5,
		InitialWeights: []float64{2},
		AnchorWeights:  []float64{2},
		AnchorStrength: 1.0,
	}
	if err := anchored.Fit(data); err != nil {
		t.Fatal(err)
	}
	if math.Abs(anchored.Weights[0]-2) > 0.5 {
		t.Errorf("anchored weight drifted to %v, want near 2", anchored.Weights[0])
	}

	free := &LogisticRegression{
		Epochs: 300, LearningRate: 0.5,
		InitialWeights: []float64{2},
	}
	if err := free.Fit(data); err != nil {
		t.Fatal(err)
	}
	if math.Abs(free.Weights[0]) > math.Abs(anchored.Weights[0]-2)+1.2 {
		// Sanity: without an anchor the noise data drives the weight
		// down toward zero, away from 2.
		t.Logf("free weight %v (informational)", free.Weights[0])
	}
	if math.Abs(free.Weights[0]-2) < math.Abs(anchored.Weights[0]-2) {
		t.Errorf("anchor had no effect: free %v vs anchored %v", free.Weights[0], anchored.Weights[0])
	}
}

func TestAnchorIgnoredWhenStrengthZero(t *testing.T) {
	data := []Instance{
		{Features: []Feature{{0, 1}}, Label: true},
		{Features: []Feature{{0, -1}}, Label: false},
	}
	a := &LogisticRegression{Epochs: 100, LearningRate: 0.5, AnchorWeights: []float64{-5}}
	b := &LogisticRegression{Epochs: 100, LearningRate: 0.5}
	if err := a.Fit(data); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(data); err != nil {
		t.Fatal(err)
	}
	if a.Weights[0] != b.Weights[0] {
		t.Errorf("anchor applied despite zero strength: %v vs %v", a.Weights[0], b.Weights[0])
	}
}
