// Package ml provides the machine-learning substrate for the snippet
// classifier: an interning feature vocabulary, sparse instances, logistic
// regression with L1 regularisation (batch proximal gradient descent and
// FTRL-Proximal online learning), binary classification metrics, and
// k-fold cross-validation. Stdlib only.
package ml

import (
	"fmt"
	"sort"
)

// Vocab interns feature names to dense integer ids. The zero value is
// ready to use. Vocab is not safe for concurrent mutation.
type Vocab struct {
	names []string
	index map[string]int
}

// ID returns the id for name, interning it if new.
func (v *Vocab) ID(name string) int {
	if v.index == nil {
		v.index = make(map[string]int)
	}
	if id, ok := v.index[name]; ok {
		return id
	}
	id := len(v.names)
	v.names = append(v.names, name)
	v.index[name] = id
	return id
}

// Lookup returns the id for name without interning.
func (v *Vocab) Lookup(name string) (int, bool) {
	id, ok := v.index[name]
	return id, ok
}

// Name returns the name for id; it panics on out-of-range ids, which
// indicate a programming error.
func (v *Vocab) Name(id int) string { return v.names[id] }

// Len returns the number of interned features.
func (v *Vocab) Len() int { return len(v.names) }

// Feature is one (id, value) coordinate of a sparse vector.
type Feature struct {
	ID  int
	Val float64
}

// Instance is one training or test example: a sparse feature vector with
// a binary label (true = positive class).
type Instance struct {
	Features []Feature
	Label    bool
}

// Canonicalize sorts the features by id and merges duplicates by summing
// their values, returning the instance for chaining.
func (in *Instance) Canonicalize() *Instance {
	sort.Slice(in.Features, func(i, j int) bool { return in.Features[i].ID < in.Features[j].ID })
	out := in.Features[:0]
	for _, f := range in.Features {
		if n := len(out); n > 0 && out[n-1].ID == f.ID {
			out[n-1].Val += f.Val
		} else {
			out = append(out, f)
		}
	}
	in.Features = out
	return in
}

// Dot returns the dot product of the instance with a dense weight vector.
// Feature ids beyond the weight vector contribute zero, so a model can
// score instances containing features it has never seen.
func (in *Instance) Dot(w []float64) float64 {
	var s float64
	for _, f := range in.Features {
		if f.ID < len(w) {
			s += w[f.ID] * f.Val
		}
	}
	return s
}

// MaxFeatureID returns the largest feature id in the dataset, or -1 for
// an empty dataset.
func MaxFeatureID(data []Instance) int {
	max := -1
	for _, in := range data {
		for _, f := range in.Features {
			if f.ID > max {
				max = f.ID
			}
		}
	}
	return max
}

// CheckDataset validates that feature ids are non-negative and values are
// finite; it returns the first problem found.
func CheckDataset(data []Instance) error {
	for i, in := range data {
		for _, f := range in.Features {
			if f.ID < 0 {
				return fmt.Errorf("ml: instance %d has negative feature id %d", i, f.ID)
			}
			if isBad(f.Val) {
				return fmt.Errorf("ml: instance %d has non-finite value for feature %d", i, f.ID)
			}
		}
	}
	return nil
}

func isBad(v float64) bool { return v != v || v > 1e300 || v < -1e300 }
