package ml

import (
	"errors"
	"math"
	"math/rand"
)

// Sigmoid returns 1/(1+exp(-z)) computed stably for large |z|.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// SoftThreshold is the proximal operator of the L1 norm:
// sign(v)·max(|v|−t, 0).
func SoftThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// LogisticRegression is an L1-regularised logistic regression model
// trained by proximal (batch) gradient descent. The paper's snippet
// classifier is "a logistic regression model with L1 regularization"
// whose weights are *initialised from the feature statistics database*;
// InitialWeights supports exactly that.
type LogisticRegression struct {
	// Weights holds the learned coefficients indexed by feature id.
	Weights []float64
	// Bias is the intercept (never regularised).
	Bias float64

	// L1 is the L1 penalty strength (default 1e-4).
	L1 float64
	// L2 is an optional ridge penalty (default 0).
	L2 float64
	// LearningRate is the gradient step size (default 0.5).
	LearningRate float64
	// Epochs is the maximum number of full passes (default 100).
	Epochs int
	// Tolerance stops training when the mean absolute weight update
	// falls below it (default 1e-6).
	Tolerance float64
	// InitialWeights, if non-nil, seeds the optimiser; the slice is
	// copied, not aliased.
	InitialWeights []float64
	// AnchorWeights with AnchorStrength > 0 add a Gaussian prior centred
	// on AnchorWeights: the gradient gains AnchorStrength·(w − anchor).
	// Used to keep position weights near their corpus-statistics prior.
	AnchorWeights  []float64
	AnchorStrength float64
	// FreezeWeights, if true, skips gradient updates of Weights and only
	// fits the bias. Used by the coupled trainer to hold one factor
	// fixed.
	FreezeWeights bool
}

// NewLogisticRegression returns a trainer with default hyper-parameters.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{L1: 1e-4, LearningRate: 0.5, Epochs: 100, Tolerance: 1e-6}
}

func (m *LogisticRegression) defaults() {
	if m.LearningRate <= 0 {
		m.LearningRate = 0.5
	}
	if m.Epochs <= 0 {
		m.Epochs = 100
	}
	if m.Tolerance <= 0 {
		m.Tolerance = 1e-6
	}
}

// Fit trains on the dataset. It is deterministic.
func (m *LogisticRegression) Fit(data []Instance) error {
	if len(data) == 0 {
		return errors.New("ml: empty training set")
	}
	if err := CheckDataset(data); err != nil {
		return err
	}
	m.defaults()
	dim := MaxFeatureID(data) + 1
	if len(m.InitialWeights) > dim {
		dim = len(m.InitialWeights)
	}
	m.Weights = make([]float64, dim)
	copy(m.Weights, m.InitialWeights)

	grad := make([]float64, dim)
	n := float64(len(data))
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for i := range grad {
			grad[i] = 0
		}
		var gradBias float64
		for i := range data {
			in := &data[i]
			p := Sigmoid(in.Dot(m.Weights) + m.Bias)
			y := 0.0
			if in.Label {
				y = 1
			}
			g := p - y
			for _, f := range in.Features {
				grad[f.ID] += g * f.Val
			}
			gradBias += g
		}

		lr := m.LearningRate
		var delta float64
		if !m.FreezeWeights {
			for j := 0; j < dim; j++ {
				g := grad[j]/n + m.L2*m.Weights[j]
				if m.AnchorStrength > 0 && j < len(m.AnchorWeights) {
					g += m.AnchorStrength * (m.Weights[j] - m.AnchorWeights[j])
				}
				w := m.Weights[j] - lr*g
				w = SoftThreshold(w, lr*m.L1)
				delta += math.Abs(w - m.Weights[j])
				m.Weights[j] = w
			}
		}
		b := m.Bias - lr*gradBias/n
		delta += math.Abs(b - m.Bias)
		m.Bias = b

		if delta/float64(dim+1) < m.Tolerance {
			break
		}
	}
	return nil
}

// Predict returns P(label = true) for the instance.
func (m *LogisticRegression) Predict(in *Instance) float64 {
	return Sigmoid(in.Dot(m.Weights) + m.Bias)
}

// PredictAll returns P(label = true) for every instance.
func (m *LogisticRegression) PredictAll(data []Instance) []float64 {
	out := make([]float64, len(data))
	for i := range data {
		out[i] = m.Predict(&data[i])
	}
	return out
}

// NonZeroWeights counts the coefficients L1 has not zeroed out.
func (m *LogisticRegression) NonZeroWeights() int {
	n := 0
	for _, w := range m.Weights {
		if w != 0 {
			n++
		}
	}
	return n
}

// FTRL is the FTRL-Proximal online learner (McMahan et al.), the standard
// industrial optimiser for sparse L1-regularised logistic regression in
// ad CTR systems. It reaches the same objective as the batch trainer but
// in streaming passes with per-coordinate learning rates.
type FTRL struct {
	// Alpha and Beta set the per-coordinate learning-rate schedule
	// (defaults 0.1 and 1).
	Alpha, Beta float64
	// L1 and L2 are the regularisation strengths (defaults 1e-4, 0).
	L1, L2 float64
	// Passes is the number of shuffled passes over the data (default 5).
	Passes int
	// Seed drives the shuffle; fits are deterministic given Seed.
	Seed int64
	// InitialWeights seeds the model as if those weights had already
	// been learned (used for stats-DB initialisation).
	InitialWeights []float64

	z, n    []float64
	Weights []float64
	Bias    float64
	zb, nb  float64
}

// NewFTRL returns an FTRL learner with default hyper-parameters.
func NewFTRL() *FTRL {
	return &FTRL{Alpha: 0.1, Beta: 1, L1: 1e-4, Passes: 5, Seed: 1}
}

func (m *FTRL) defaults() {
	if m.Alpha <= 0 {
		m.Alpha = 0.1
	}
	if m.Beta <= 0 {
		m.Beta = 1
	}
	if m.Passes <= 0 {
		m.Passes = 5
	}
}

func (m *FTRL) grow(dim int) {
	for len(m.z) < dim {
		m.z = append(m.z, 0)
		m.n = append(m.n, 0)
		m.Weights = append(m.Weights, 0)
	}
}

// weight materialises the lazy FTRL weight for coordinate j.
func (m *FTRL) weight(j int) float64 {
	z, n := m.z[j], m.n[j]
	if math.Abs(z) <= m.L1 {
		return 0
	}
	sign := 1.0
	if z < 0 {
		sign = -1
	}
	return -(z - sign*m.L1) / ((m.Beta+math.Sqrt(n))/m.Alpha + m.L2)
}

// Fit trains on the dataset with Passes shuffled epochs.
func (m *FTRL) Fit(data []Instance) error {
	if len(data) == 0 {
		return errors.New("ml: empty training set")
	}
	if err := CheckDataset(data); err != nil {
		return err
	}
	m.defaults()
	dim := MaxFeatureID(data) + 1
	if len(m.InitialWeights) > dim {
		dim = len(m.InitialWeights)
	}
	m.grow(dim)
	// Seed initial weights directly in the lazy representation: choose z
	// so that weight(j) == w while n is still zero.
	base := m.Beta/m.Alpha + m.L2
	for j, w := range m.InitialWeights {
		if w != 0 && m.n[j] == 0 {
			if w > 0 {
				m.z[j] = -w*base - m.L1
			} else {
				m.z[j] = -w*base + m.L1
			}
		}
	}

	rng := rand.New(rand.NewSource(m.Seed))
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	for pass := 0; pass < m.Passes; pass++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			in := &data[idx]
			// Predict with lazy weights.
			var dot float64
			for _, f := range in.Features {
				dot += m.weight(f.ID) * f.Val
			}
			p := Sigmoid(dot + m.Bias)
			y := 0.0
			if in.Label {
				y = 1
			}
			g := p - y
			for _, f := range in.Features {
				gj := g * f.Val
				sigma := (math.Sqrt(m.n[f.ID]+gj*gj) - math.Sqrt(m.n[f.ID])) / m.Alpha
				m.z[f.ID] += gj - sigma*m.weight(f.ID)
				m.n[f.ID] += gj * gj
			}
			sigma := (math.Sqrt(m.nb+g*g) - math.Sqrt(m.nb)) / m.Alpha
			m.zb += g - sigma*m.Bias
			m.nb += g * g
			m.Bias = -m.zb / ((m.Beta + math.Sqrt(m.nb)) / m.Alpha)
		}
	}
	for j := range m.Weights {
		m.Weights[j] = m.weight(j)
	}
	return nil
}

// Predict returns P(label = true) for the instance.
func (m *FTRL) Predict(in *Instance) float64 {
	var dot float64
	for _, f := range in.Features {
		if f.ID < len(m.Weights) {
			dot += m.Weights[f.ID] * f.Val
		}
	}
	return Sigmoid(dot + m.Bias)
}

// PredictAll returns P(label = true) for every instance.
func (m *FTRL) PredictAll(data []Instance) []float64 {
	out := make([]float64, len(data))
	for i := range data {
		out[i] = m.Predict(&data[i])
	}
	return out
}
