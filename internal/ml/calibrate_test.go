package ml

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFitIsotonicSimple(t *testing.T) {
	// Scores already ordered with increasing outcome frequency.
	scores := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	labels := []bool{false, false, false, true, false, true, true, true}
	iso, err := FitIsotonic(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated values must be non-decreasing in the score.
	prev := -1.0
	for _, s := range scores {
		v := iso.Calibrate(s)
		if v < prev-1e-12 {
			t.Fatalf("calibration not monotone at %v: %v < %v", s, v, prev)
		}
		prev = v
	}
	if lo, hi := iso.Calibrate(0.0), iso.Calibrate(1.0); lo >= hi {
		t.Errorf("extremes not separated: %v vs %v", lo, hi)
	}
}

func TestIsotonicPoolsViolators(t *testing.T) {
	// A decreasing segment must be pooled into one average.
	scores := []float64{1, 2, 3}
	labels := []bool{true, false, false} // 1, 0, 0 — fully decreasing
	iso, err := FitIsotonic(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 3.0
	for _, s := range scores {
		if got := iso.Calibrate(s); math.Abs(got-want) > 1e-12 {
			t.Errorf("Calibrate(%v) = %v, want pooled %v", s, got, want)
		}
	}
}

func TestIsotonicMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(50)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = r.Float64()
			labels[i] = r.Float64() < scores[i]
		}
		iso, err := FitIsotonic(scores, labels)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		prev := -1.0
		for _, s := range sorted {
			v := iso.Calibrate(s)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rng, MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsotonicValidation(t *testing.T) {
	if _, err := FitIsotonic(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitIsotonic([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPlattImprovesCalibration(t *testing.T) {
	// Generate systematically over-confident predictions: true
	// probability is sigmoid(z/3) but the raw score is z.
	rng := rand.New(rand.NewSource(2))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	rawPreds := make([]float64, n)
	for i := 0; i < n; i++ {
		z := rng.NormFloat64() * 3
		scores[i] = z
		labels[i] = rng.Float64() < Sigmoid(z/3)
		rawPreds[i] = Sigmoid(z)
	}
	platt, err := FitPlatt(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	calPreds := make([]float64, n)
	for i, s := range scores {
		calPreds[i] = platt.Calibrate(s)
	}
	rawECE := ExpectedCalibrationError(rawPreds, labels, 10)
	calECE := ExpectedCalibrationError(calPreds, labels, 10)
	if calECE >= rawECE {
		t.Errorf("Platt did not improve calibration: raw %v vs calibrated %v", rawECE, calECE)
	}
	// The fitted slope should shrink towards the true 1/3.
	if platt.A > 0.6 || platt.A < 0.15 {
		t.Errorf("Platt slope %v, want near 1/3", platt.A)
	}
}

func TestPlattValidation(t *testing.T) {
	if _, err := FitPlatt(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestExpectedCalibrationError(t *testing.T) {
	// Perfectly calibrated constant predictor.
	preds := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if ece := ExpectedCalibrationError(preds, labels, 10); math.Abs(ece) > 1e-12 {
		t.Errorf("ECE = %v, want 0", ece)
	}
	// Maximally miscalibrated.
	bad := []float64{0.99, 0.99}
	badLabels := []bool{false, false}
	if ece := ExpectedCalibrationError(bad, badLabels, 10); ece < 0.9 {
		t.Errorf("ECE = %v, want near 1", ece)
	}
	if ece := ExpectedCalibrationError(nil, nil, 10); ece != 0 {
		t.Errorf("empty ECE = %v", ece)
	}
}

func BenchmarkFitIsotonic(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < scores[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitIsotonic(scores, labels); err != nil {
			b.Fatal(err)
		}
	}
}
