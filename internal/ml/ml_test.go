package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVocabIntern(t *testing.T) {
	var v Vocab
	a := v.ID("alpha")
	b := v.ID("beta")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if got := v.ID("alpha"); got != a {
		t.Errorf("re-interning changed id: %d != %d", got, a)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
	if v.Name(a) != "alpha" {
		t.Errorf("Name(%d) = %q", a, v.Name(a))
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Error("Lookup invented an id")
	}
}

func TestInstanceCanonicalize(t *testing.T) {
	in := Instance{Features: []Feature{{3, 1}, {1, 2}, {3, 0.5}, {2, -1}}}
	in.Canonicalize()
	want := []Feature{{1, 2}, {2, -1}, {3, 1.5}}
	if len(in.Features) != len(want) {
		t.Fatalf("got %v, want %v", in.Features, want)
	}
	for i := range want {
		if in.Features[i] != want[i] {
			t.Errorf("feature %d = %v, want %v", i, in.Features[i], want[i])
		}
	}
}

func TestInstanceDotIgnoresUnknown(t *testing.T) {
	in := Instance{Features: []Feature{{0, 1}, {100, 5}}}
	w := []float64{2}
	if got := in.Dot(w); got != 2 {
		t.Errorf("Dot = %v, want 2 (unknown feature must be ignored)", got)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(1000); got <= 0.999 || got > 1 {
		t.Errorf("Sigmoid(1000) = %v", got)
	}
	if got := Sigmoid(-1000); got >= 0.001 || got < 0 {
		t.Errorf("Sigmoid(-1000) = %v", got)
	}
}

func TestSigmoidProperties(t *testing.T) {
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		p := Sigmoid(z)
		if p < 0 || p > 1 || math.IsNaN(p) {
			return false
		}
		// Symmetry: s(-z) = 1 - s(z).
		return math.Abs(Sigmoid(-z)-(1-p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftThreshold(t *testing.T) {
	tests := []struct{ v, t, want float64 }{
		{5, 1, 4},
		{-5, 1, -4},
		{0.5, 1, 0},
		{-0.5, 1, 0},
		{1, 1, 0},
	}
	for _, tt := range tests {
		if got := SoftThreshold(tt.v, tt.t); got != tt.want {
			t.Errorf("SoftThreshold(%v,%v) = %v, want %v", tt.v, tt.t, got, tt.want)
		}
	}
}

func TestSoftThresholdShrinks(t *testing.T) {
	f := func(v, thr float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(thr) || math.IsInf(thr, 0) {
			return true
		}
		thr = math.Abs(thr)
		return math.Abs(SoftThreshold(v, thr)) <= math.Abs(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// makeLinearlySeparable builds a noiseless 2-feature dataset where the
// label is sign(x0 - x1).
func makeLinearlySeparable(rng *rand.Rand, n int) []Instance {
	data := make([]Instance, n)
	for i := range data {
		x0 := rng.Float64()*2 - 1
		x1 := rng.Float64()*2 - 1
		data[i] = Instance{
			Features: []Feature{{0, x0}, {1, x1}},
			Label:    x0 > x1,
		}
	}
	return data
}

func TestLogisticRegressionSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := makeLinearlySeparable(rng, 500)
	m := NewLogisticRegression()
	m.Epochs = 300
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	preds := m.PredictAll(data)
	labels := make([]bool, len(data))
	for i := range data {
		labels[i] = data[i].Label
	}
	met := EvaluateBinary(preds, labels)
	if met.Accuracy < 0.97 {
		t.Errorf("accuracy %v on separable data, want >= 0.97", met.Accuracy)
	}
	if m.Weights[0] <= 0 || m.Weights[1] >= 0 {
		t.Errorf("weight signs wrong: %v", m.Weights)
	}
}

func TestLogisticRegressionL1Sparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Feature 0 is predictive; features 1..20 are pure noise.
	data := make([]Instance, 800)
	for i := range data {
		x0 := rng.Float64()*2 - 1
		fs := []Feature{{0, x0}}
		for j := 1; j <= 20; j++ {
			fs = append(fs, Feature{j, rng.Float64()*2 - 1})
		}
		data[i] = Instance{Features: fs, Label: x0 > 0}
	}
	strong := NewLogisticRegression()
	strong.L1 = 0.05
	strong.Epochs = 200
	if err := strong.Fit(data); err != nil {
		t.Fatal(err)
	}
	weak := NewLogisticRegression()
	weak.L1 = 0
	weak.Epochs = 200
	if err := weak.Fit(data); err != nil {
		t.Fatal(err)
	}
	if strong.NonZeroWeights() >= weak.NonZeroWeights() {
		t.Errorf("L1 did not sparsify: strong=%d weak=%d nonzeros",
			strong.NonZeroWeights(), weak.NonZeroWeights())
	}
	if strong.Weights[0] == 0 {
		t.Error("L1 zeroed the genuinely predictive feature")
	}
}

func TestLogisticRegressionInitialWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := makeLinearlySeparable(rng, 200)
	// With zero epochs of learning the initial weights must carry the
	// predictions on their own.
	m := &LogisticRegression{Epochs: 1, LearningRate: 1e-12, InitialWeights: []float64{5, -5}}
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	preds := m.PredictAll(data)
	labels := make([]bool, len(data))
	for i := range data {
		labels[i] = data[i].Label
	}
	if met := EvaluateBinary(preds, labels); met.Accuracy < 0.95 {
		t.Errorf("stats-DB style initialisation ignored: accuracy %v", met.Accuracy)
	}
}

func TestLogisticRegressionEmpty(t *testing.T) {
	m := NewLogisticRegression()
	if err := m.Fit(nil); err == nil {
		t.Error("Fit(nil) should fail")
	}
}

func TestLogisticRegressionRejectsBadData(t *testing.T) {
	m := NewLogisticRegression()
	bad := []Instance{{Features: []Feature{{-1, 1}}}}
	if err := m.Fit(bad); err == nil {
		t.Error("negative feature id accepted")
	}
	nan := []Instance{{Features: []Feature{{0, math.NaN()}}}}
	if err := m.Fit(nan); err == nil {
		t.Error("NaN value accepted")
	}
}

func TestFTRLSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := makeLinearlySeparable(rng, 500)
	m := NewFTRL()
	m.Alpha = 0.5
	m.Passes = 10
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	preds := m.PredictAll(data)
	labels := make([]bool, len(data))
	for i := range data {
		labels[i] = data[i].Label
	}
	met := EvaluateBinary(preds, labels)
	if met.Accuracy < 0.95 {
		t.Errorf("FTRL accuracy %v, want >= 0.95", met.Accuracy)
	}
}

func TestFTRLInitialWeights(t *testing.T) {
	m := NewFTRL()
	m.defaults()
	m.InitialWeights = []float64{1.5, -2}
	m.grow(2)
	base := m.Beta/m.Alpha + m.L2
	for j, w := range m.InitialWeights {
		if w > 0 {
			m.z[j] = -w*base - m.L1
		} else {
			m.z[j] = -w*base + m.L1
		}
	}
	if got := m.weight(0); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("seeded weight(0) = %v, want 1.5", got)
	}
	if got := m.weight(1); math.Abs(got-(-2)) > 1e-9 {
		t.Errorf("seeded weight(1) = %v, want -2", got)
	}
}

func TestFTRLDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := makeLinearlySeparable(rng, 300)
	a := NewFTRL()
	b := NewFTRL()
	if err := a.Fit(data); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(data); err != nil {
		t.Fatal(err)
	}
	for j := range a.Weights {
		if a.Weights[j] != b.Weights[j] {
			t.Fatalf("same seed produced different weights at %d", j)
		}
	}
}

func TestEvaluateBinary(t *testing.T) {
	preds := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, false, true, false}
	m := EvaluateBinary(preds, labels)
	// Threshold 0.5: TP=1 (0.9), FP=1 (0.8), FN=1 (0.3), TN=1 (0.1).
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Errorf("confusion = TP%d FP%d TN%d FN%d", m.TP, m.FP, m.TN, m.FN)
	}
	if m.Accuracy != 0.5 || m.Precision != 0.5 || m.Recall != 0.5 || m.F1 != 0.5 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestAUCPerfectAndReversed(t *testing.T) {
	preds := []float64{0.1, 0.4, 0.35, 0.8}
	labels := []bool{false, false, true, true}
	// One inversion among the 4 pos-neg pairs: (0.35 vs 0.4).
	if got := AUC(preds, labels); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
	perfect := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []bool{false, false, true, true})
	if perfect != 1 {
		t.Errorf("perfect AUC = %v", perfect)
	}
	reversed := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{false, false, true, true})
	if reversed != 0 {
		t.Errorf("reversed AUC = %v", reversed)
	}
	onlyPos := AUC([]float64{0.5}, []bool{true})
	if onlyPos != 0.5 {
		t.Errorf("degenerate AUC = %v, want 0.5", onlyPos)
	}
}

func TestAUCTies(t *testing.T) {
	// All predictions equal: AUC must be exactly 0.5 via midranks.
	preds := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if got := AUC(preds, labels); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", got)
	}
}

func TestKFold(t *testing.T) {
	folds, err := KFold(103, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		for _, i := range f.Test {
			seen[i]++
		}
		if len(f.Train)+len(f.Test) != 103 {
			t.Errorf("fold covers %d examples, want 103", len(f.Train)+len(f.Test))
		}
		// Train and test are disjoint.
		inTest := make(map[int]bool, len(f.Test))
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatal("train/test overlap")
			}
		}
	}
	if len(seen) != 103 {
		t.Errorf("test folds cover %d distinct examples, want 103", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("example %d appears in %d test folds", i, c)
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(5, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFold(3, 10, 0); err == nil {
		t.Error("n<k accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := makeLinearlySeparable(rng, 400)
	ms, err := CrossValidate(data, 5, 1, func() Classifier {
		m := NewLogisticRegression()
		m.Epochs = 150
		return m
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("got %d fold metrics", len(ms))
	}
	mean := MeanMetrics(ms)
	if mean.Accuracy < 0.95 {
		t.Errorf("CV accuracy %v, want >= 0.95", mean.Accuracy)
	}
}

func TestMeanMetricsEmpty(t *testing.T) {
	if got := MeanMetrics(nil); got.Accuracy != 0 {
		t.Errorf("MeanMetrics(nil) = %+v", got)
	}
}

func BenchmarkLogisticRegressionFit(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	data := makeLinearlySeparable(rng, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewLogisticRegression()
		m.Epochs = 50
		if err := m.Fit(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFTRLFit(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	data := makeLinearlySeparable(rng, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewFTRL()
		if err := m.Fit(data); err != nil {
			b.Fatal(err)
		}
	}
}
