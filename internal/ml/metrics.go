package ml

import (
	"math"
	"sort"
)

// BinaryMetrics aggregates the standard binary classification measures.
// Precision, recall and F1 are reported for the positive class at the
// 0.5 decision threshold, matching how the paper reports "accuracy of
// creative classification".
type BinaryMetrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	AUC       float64
	LogLoss   float64

	TP, FP, TN, FN int
}

// EvaluateBinary scores predicted probabilities against boolean labels.
// preds and labels must have equal length; mismatches indicate a bug
// upstream and panic.
func EvaluateBinary(preds []float64, labels []bool) BinaryMetrics {
	if len(preds) != len(labels) {
		panic("ml: preds and labels length mismatch")
	}
	var m BinaryMetrics
	var ll float64
	for i, p := range preds {
		pred := p >= 0.5
		switch {
		case pred && labels[i]:
			m.TP++
		case pred && !labels[i]:
			m.FP++
		case !pred && !labels[i]:
			m.TN++
		default:
			m.FN++
		}
		pc := math.Min(math.Max(p, 1e-12), 1-1e-12)
		if labels[i] {
			ll -= math.Log(pc)
		} else {
			ll -= math.Log(1 - pc)
		}
	}
	n := len(preds)
	if n > 0 {
		m.Accuracy = float64(m.TP+m.TN) / float64(n)
		m.LogLoss = ll / float64(n)
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	m.AUC = AUC(preds, labels)
	return m
}

// AUC returns the area under the ROC curve via the rank statistic, with
// ties handled by midranks. Returns 0.5 when either class is absent.
func AUC(preds []float64, labels []bool) float64 {
	n := len(preds)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return preds[idx[a]] < preds[idx[b]] })

	var rankSumPos float64
	var nPos, nNeg float64
	i := 0
	for i < n {
		j := i
		for j < n && preds[idx[j]] == preds[idx[i]] {
			j++
		}
		// Midrank for the tie group [i, j).
		midrank := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if labels[idx[k]] {
				rankSumPos += midrank
				nPos++
			} else {
				nNeg++
			}
		}
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	return (rankSumPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// MeanMetrics averages a set of fold metrics (for k-fold reports).
func MeanMetrics(ms []BinaryMetrics) BinaryMetrics {
	var out BinaryMetrics
	if len(ms) == 0 {
		return out
	}
	for _, m := range ms {
		out.Accuracy += m.Accuracy
		out.Precision += m.Precision
		out.Recall += m.Recall
		out.F1 += m.F1
		out.AUC += m.AUC
		out.LogLoss += m.LogLoss
		out.TP += m.TP
		out.FP += m.FP
		out.TN += m.TN
		out.FN += m.FN
	}
	k := float64(len(ms))
	out.Accuracy /= k
	out.Precision /= k
	out.Recall /= k
	out.F1 /= k
	out.AUC /= k
	out.LogLoss /= k
	return out
}
