package featstats

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestObserveAndP(t *testing.T) {
	db := New(1)
	key := TermKey("cheap")
	for i := 0; i < 8; i++ {
		db.Observe(key, +0.5)
	}
	for i := 0; i < 2; i++ {
		db.Observe(key, -0.5)
	}
	// (8+1)/(10+2) = 0.75.
	if got := db.P(key); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P = %v, want 0.75", got)
	}
	if got := db.OddsRatio(key); math.Abs(got-3) > 1e-12 {
		t.Errorf("OddsRatio = %v, want 3", got)
	}
	if got := db.LogOdds(key); math.Abs(got-math.Log(3)) > 1e-12 {
		t.Errorf("LogOdds = %v, want log 3", got)
	}
	if got := db.Count(key); got != 10 {
		t.Errorf("Count = %v, want 10", got)
	}
}

func TestObserveIgnoresZeroDiff(t *testing.T) {
	db := New(1)
	db.Observe(TermKey("x"), 0)
	if db.Len() != 0 {
		t.Error("zero sw-diff should be discarded")
	}
}

func TestUnseenFeatureIsNeutral(t *testing.T) {
	db := New(1)
	if got := db.P(TermKey("never")); got != 0.5 {
		t.Errorf("unseen P = %v, want 0.5", got)
	}
	if got := db.LogOdds(TermKey("never")); got != 0 {
		t.Errorf("unseen LogOdds = %v, want 0", got)
	}
}

func TestSmoothingDefault(t *testing.T) {
	db := New(-3)
	if db.Smoothing != 1 {
		t.Errorf("Smoothing = %v, want 1", db.Smoothing)
	}
}

func TestPBounds(t *testing.T) {
	f := func(pos, neg uint16) bool {
		db := New(1)
		k := TermKey("k")
		for i := 0; i < int(pos%500); i++ {
			db.Observe(k, 1)
		}
		for i := 0; i < int(neg%500); i++ {
			db.Observe(k, -1)
		}
		p := db.P(k)
		return p > 0 && p < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogOddsAntisymmetry(t *testing.T) {
	// Swapping pos and neg counts negates the log odds.
	db := New(1)
	a, b := TermKey("a"), TermKey("b")
	for i := 0; i < 7; i++ {
		db.Observe(a, 1)
		db.Observe(b, -1)
	}
	for i := 0; i < 3; i++ {
		db.Observe(a, -1)
		db.Observe(b, 1)
	}
	if got := db.LogOdds(a) + db.LogOdds(b); math.Abs(got) > 1e-12 {
		t.Errorf("log odds not antisymmetric: %v", got)
	}
}

func TestMerge(t *testing.T) {
	shard1 := New(1)
	shard2 := New(1)
	k := RewriteKey("find cheap", "get discounts")
	shard1.Observe(k, 1)
	shard1.Observe(k, 1)
	shard2.Observe(k, -1)
	shard2.Observe(TermKey("other"), 1)

	shard1.Merge(shard2)
	if got := shard1.Stats[k]; got.Pos != 2 || got.Neg != 1 {
		t.Errorf("merged stat = %+v, want {2 1}", got)
	}
	if shard1.Len() != 2 {
		t.Errorf("merged Len = %d, want 2", shard1.Len())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(2)
	db.Observe(TermKey("cheap"), 1)
	db.Observe(RewriteKey("a", "b"), -1)
	db.Observe(PosKey(1, 2), 1)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Smoothing != 2 || got.Len() != 3 {
		t.Errorf("round trip lost data: smoothing=%v len=%d", got.Smoothing, got.Len())
	}
	if got.P(TermKey("cheap")) != db.P(TermKey("cheap")) {
		t.Error("round trip changed P")
	}
}

func TestSaveLoadJSONRoundTrip(t *testing.T) {
	db := New(1)
	db.Observe(TermPosKey("cheap", 1, 2), 1)
	var buf bytes.Buffer
	if err := db.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("JSON round trip Len = %d, want 1", got.Len())
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not gob")); err == nil {
		t.Error("Load of garbage should fail")
	}
	if _, err := LoadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("LoadJSON of garbage should fail")
	}
}

func TestKeyNamespaces(t *testing.T) {
	keys := map[string]string{
		TermKey("find cheap"):           "term",
		TermPosKey("find cheap", 1, 2):  "tpos",
		RewriteKey("find", "get"):       "rw",
		RewritePosKey(1, 2, 5, 2):       "rwpos",
		PosKey(3, 1):                    "pos",
		"garbage":                       "",
		"unknown|with separator anyway": "",
	}
	for k, want := range keys {
		if got := KeyKind(k); got != want {
			t.Errorf("KeyKind(%q) = %q, want %q", k, got, want)
		}
	}
}

func TestKeysAreDistinct(t *testing.T) {
	// The same surface text in different namespaces must not collide,
	// and positions must separate keys.
	keys := []string{
		TermKey("a"),
		TermPosKey("a", 1, 1),
		TermPosKey("a", 1, 2),
		TermPosKey("a", 2, 1),
		RewriteKey("a", "b"),
		RewriteKey("b", "a"),
		RewritePosKey(1, 1, 2, 1),
		RewritePosKey(2, 1, 1, 1),
		PosKey(1, 1),
		PosKey(11, 1),
		PosKey(1, 11),
	}
	seen := make(map[string]bool)
	for _, k := range keys {
		if seen[k] {
			t.Errorf("key collision: %q", k)
		}
		seen[k] = true
	}
}

func TestRewriteKeyDirectionality(t *testing.T) {
	db := New(1)
	db.Observe(RewriteKey("cheap", "pricey"), -1)
	db.Observe(RewriteKey("pricey", "cheap"), 1)
	if db.P(RewriteKey("cheap", "pricey")) >= 0.5 {
		t.Error("rewrite direction lost")
	}
	if db.P(RewriteKey("pricey", "cheap")) <= 0.5 {
		t.Error("reverse rewrite direction lost")
	}
}

func BenchmarkObserve(b *testing.B) {
	db := New(1)
	k := RewriteKey("find cheap", "get discounts")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Observe(k, 1)
	}
}

func BenchmarkTermPosKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TermPosKey("find cheap", 3, 2)
	}
}
