// Package featstats implements the feature statistics database of
// Section V-C: for every feature observed across creative pairs in the
// corpus it tracks how often the creative containing (or sourcing) the
// feature had the higher serve weight.
//
// For each feature the database records the counts of the delta-sw random
// variable (+1 when the serve-weight difference favoured the feature, -1
// otherwise), estimates the Laplace-smoothed empirical probability
// p = P(delta-sw = +1), and exposes the odds ratio p/(1-p) — "the odds of
// the presence of the feature causing an increase in creative CTR". The
// log odds are what initialise the snippet classifier's weights.
//
// Feature keys are namespaced strings built by the Key helpers so that
// term, positioned-term, rewrite, rewrite-position and position features
// share one store without collisions. The store supports streaming
// observation, sharded Merge, and gob/JSON persistence.
package featstats

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Stat holds the delta-sw counts for one feature.
type Stat struct {
	Pos float64 // observations with sw-diff > 0
	Neg float64 // observations with sw-diff < 0
}

// Count returns the total number of observations.
func (s Stat) Count() float64 { return s.Pos + s.Neg }

// DB is the feature statistics database. The zero value is unusable;
// call New.
type DB struct {
	// Smoothing is the Laplace count added to each side (default 1).
	Smoothing float64
	// Stats maps namespaced feature keys to their delta-sw counts.
	Stats map[string]Stat
}

// New returns an empty database with the given Laplace smoothing
// (values <= 0 become 1).
func New(smoothing float64) *DB {
	if smoothing <= 0 {
		smoothing = 1
	}
	return &DB{Smoothing: smoothing, Stats: make(map[string]Stat)}
}

// Observe records one delta-sw observation for the feature: swDiff > 0
// counts as +1, swDiff < 0 as -1 and exactly 0 is discarded (no
// information about direction).
func (db *DB) Observe(key string, swDiff float64) {
	if swDiff == 0 {
		return
	}
	s := db.Stats[key]
	if swDiff > 0 {
		s.Pos++
	} else {
		s.Neg++
	}
	db.Stats[key] = s
}

// P returns the Laplace-smoothed estimate of P(delta-sw = +1 | feature).
// Unobserved features return exactly 0.5.
func (db *DB) P(key string) float64 {
	s := db.Stats[key]
	return (s.Pos + db.Smoothing) / (s.Count() + 2*db.Smoothing)
}

// OddsRatio returns p/(1-p) for the feature — the statistic the paper
// records in the database.
func (db *DB) OddsRatio(key string) float64 {
	p := db.P(key)
	return p / (1 - p)
}

// LogOdds returns log(p/(1-p)), the natural initial weight for a
// logistic regression feature. Unobserved features return 0.
func (db *DB) LogOdds(key string) float64 {
	return math.Log(db.OddsRatio(key))
}

// LogOddsSmoothed is LogOdds with an explicit (usually stronger) Laplace
// count, overriding the database's own smoothing. Down-stream consumers
// use it to shrink low-evidence features toward zero: a feature seen a
// handful of times cannot earn a large initial weight.
func (db *DB) LogOddsSmoothed(key string, smoothing float64) float64 {
	if smoothing <= 0 {
		smoothing = db.Smoothing
	}
	s := db.Stats[key]
	p := (s.Pos + smoothing) / (s.Count() + 2*smoothing)
	return math.Log(p / (1 - p))
}

// Count returns the number of observations of the feature.
func (db *DB) Count(key string) float64 { return db.Stats[key].Count() }

// Len returns the number of distinct features observed.
func (db *DB) Len() int { return len(db.Stats) }

// Merge folds another database's counts into db (for sharded builds).
// Smoothing settings are kept from db.
func (db *DB) Merge(other *DB) {
	for k, o := range other.Stats {
		s := db.Stats[k]
		s.Pos += o.Pos
		s.Neg += o.Neg
		db.Stats[k] = s
	}
}

// persisted is the serialisation envelope.
type persisted struct {
	Smoothing float64
	Stats     map[string]Stat
}

// Save writes the database in gob format.
func (db *DB) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(persisted{db.Smoothing, db.Stats}); err != nil {
		return fmt.Errorf("featstats: save: %w", err)
	}
	return nil
}

// Load reads a database written by Save.
func Load(r io.Reader) (*DB, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("featstats: load: %w", err)
	}
	db := New(p.Smoothing)
	if p.Stats != nil {
		db.Stats = p.Stats
	}
	return db, nil
}

// SaveJSON writes the database as JSON, for inspection and tooling.
func (db *DB) SaveJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(persisted{db.Smoothing, db.Stats}); err != nil {
		return fmt.Errorf("featstats: save json: %w", err)
	}
	return nil
}

// LoadJSON reads a database written by SaveJSON.
func LoadJSON(r io.Reader) (*DB, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("featstats: load json: %w", err)
	}
	db := New(p.Smoothing)
	if p.Stats != nil {
		db.Stats = p.Stats
	}
	return db, nil
}

// --- key scheme ---
//
// Every feature kind gets its own namespace prefix. The separators used
// inside keys ('|', '\x1f' and '→') cannot appear in normalised term
// text, so keys are unambiguous.

const (
	prefixTerm       = "term|"
	prefixTermPos    = "tpos|"
	prefixRewrite    = "rw|"
	prefixRewritePos = "rwpos|"
	prefixPos        = "pos|"
	sep              = "\x1f"
)

// TermKey is the position-free term feature ("term present in one
// creative but not the other").
func TermKey(text string) string { return prefixTerm + text }

// ParseTermKey inverts TermKey: it returns the term text of a
// position-free term key, with ok false for keys of any other kind.
func ParseTermKey(key string) (text string, ok bool) {
	if !strings.HasPrefix(key, prefixTerm) {
		return "", false
	}
	return key[len(prefixTerm):], true
}

// TermPosKey is the positioned term feature text:pos:line.
func TermPosKey(text string, pos, line int) string {
	return fmt.Sprintf("%s%s%s%d:%d", prefixTermPos, text, sep, pos, line)
}

// RewriteKey is the position-free rewrite feature from→to. Rewrite
// statistics are deliberately position-free "to handle sparsity issues"
// (Section V-D.1).
func RewriteKey(from, to string) string {
	return prefixRewrite + from + sep + to
}

// RewritePosKey is the position-pair feature of a rewrite: source
// (pos, line) → target (pos, line).
func RewritePosKey(fromPos, fromLine, toPos, toLine int) string {
	return fmt.Sprintf("%s%d:%d%s%d:%d", prefixRewritePos, fromPos, fromLine, sep, toPos, toLine)
}

// PosKey is the micro-position feature (pos, line) of a term.
func PosKey(pos, line int) string {
	return fmt.Sprintf("%s%d:%d", prefixPos, pos, line)
}

// ParsePosKey parses a key produced by PosKey back into its (pos, line)
// coordinates; ok is false for keys of any other kind.
func ParsePosKey(key string) (pos, line int, ok bool) {
	if !strings.HasPrefix(key, prefixPos) {
		return 0, 0, false
	}
	var p, l int
	if _, err := fmt.Sscanf(key[len(prefixPos):], "%d:%d", &p, &l); err != nil {
		return 0, 0, false
	}
	return p, l, true
}

// KeyKind reports the namespace of a key ("term", "tpos", "rw", "rwpos",
// "pos" or "" for foreign keys).
func KeyKind(key string) string {
	i := strings.IndexByte(key, '|')
	if i < 0 {
		return ""
	}
	switch key[:i+1] {
	case prefixTerm:
		return "term"
	case prefixTermPos:
		return "tpos"
	case prefixRewrite:
		return "rw"
	case prefixRewritePos:
		return "rwpos"
	case prefixPos:
		return "pos"
	}
	return ""
}
