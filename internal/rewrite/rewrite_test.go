package rewrite

import (
	"testing"

	"repro/internal/featstats"
	"repro/internal/snippet"
	"repro/internal/textproc"
)

// paperPair builds the exact example pair from Section IV-A.
func paperPair() (snippet.Creative, snippet.Creative) {
	r := snippet.MustNew("R",
		"XYZ Airlines",
		"Find cheap flights to New York.",
		"No reservation costs. Great rates")
	s := snippet.MustNew("S",
		"XYZ Airlines",
		"Flying to New York? Get discounts.",
		"No reservation costs. Great rates!")
	return r, s
}

func TestDiffPaperExample(t *testing.T) {
	m := &Matcher{MaxN: 2}
	r, s := paperPair()
	onlyR, onlyS := m.Diff(r, s)

	rTexts := texts(onlyR)
	sTexts := texts(onlyS)
	for _, want := range []string{"find", "cheap", "flights", "find cheap", "cheap flights"} {
		if !rTexts[want] {
			t.Errorf("onlyR missing %q: %v", want, keys(rTexts))
		}
	}
	for _, want := range []string{"flying", "get", "discounts", "get discounts"} {
		if !sTexts[want] {
			t.Errorf("onlyS missing %q: %v", want, keys(sTexts))
		}
	}
	// Shared text must not appear on either side; "!" is normalised away
	// so line 3 contributes nothing.
	for _, bad := range []string{"xyz", "airlines", "new york", "great rates", "costs"} {
		if rTexts[bad] || sTexts[bad] {
			t.Errorf("shared term %q leaked into diff", bad)
		}
	}
}

func TestGreedyMatchFollowsDatabase(t *testing.T) {
	// Teach the database that find cheap -> get discounts is a frequent
	// rewrite, as the paper's intuition demands.
	db := featstats.New(1)
	for i := 0; i < 20; i++ {
		db.Observe(featstats.RewriteKey("find cheap", "get discounts"), 1)
		db.Observe(featstats.RewriteKey("flights", "flying"), 1)
	}
	db.Observe(featstats.RewriteKey("find cheap", "flying"), 1) // rare alternative

	m := NewMatcher(db)
	m.MaxN = 2
	r, s := paperPair()
	match := m.MatchPair(r, s)

	got := make(map[string]string)
	for _, p := range match.Pairs {
		got[p.From.Text] = p.To.Text
	}
	if got["find cheap"] != "get discounts" {
		t.Errorf("find cheap matched to %q, want get discounts (pairs: %v)", got["find cheap"], match.Pairs)
	}
	if got["flights"] != "flying" {
		t.Errorf("flights matched to %q, want flying", got["flights"])
	}
}

func TestPaperRewriteTuple(t *testing.T) {
	// The paper's rewrite tuple is (find cheap:1:2, get discounts:5:2).
	db := featstats.New(1)
	for i := 0; i < 10; i++ {
		db.Observe(featstats.RewriteKey("find cheap", "get discounts"), 1)
	}
	m := NewMatcher(db)
	m.MaxN = 2
	r, s := paperPair()
	match := m.MatchPair(r, s)
	for _, p := range match.Pairs {
		if p.From.Text == "find cheap" {
			if p.From.Key() != "find cheap:1:2" {
				t.Errorf("From key = %q, want find cheap:1:2", p.From.Key())
			}
			if p.To.Key() != "get discounts:5:2" {
				t.Errorf("To key = %q, want get discounts:5:2", p.To.Key())
			}
			return
		}
	}
	t.Fatalf("find cheap not matched: %+v", match.Pairs)
}

func TestMatchedSpansBlockOverlaps(t *testing.T) {
	db := featstats.New(1)
	for i := 0; i < 10; i++ {
		db.Observe(featstats.RewriteKey("find cheap", "get discounts"), 1)
	}
	m := NewMatcher(db)
	m.MaxN = 2
	r, s := paperPair()
	match := m.MatchPair(r, s)

	// Once "find cheap" [1,3) is matched, the overlapping unigrams
	// "find" and "cheap" must appear neither in pairs nor leftovers.
	for _, p := range match.Pairs {
		if p.From.Text == "find" || p.From.Text == "cheap" {
			t.Errorf("overlapping unigram %q was matched", p.From.Text)
		}
	}
	for _, t2 := range match.OnlyR {
		if t2.Text == "find" || t2.Text == "cheap" || t2.Text == "find cheap" {
			t.Errorf("covered term %q leaked into leftovers", t2.Text)
		}
	}
}

func TestMatchTermsNoCandidates(t *testing.T) {
	m := &Matcher{MaxN: 1}
	onlyR := textproc.ExtractTerms([]string{"alpha"}, 1)
	// Different line: no same-line candidate exists.
	onlyS := textproc.ExtractTerms([]string{"", "beta"}, 1)
	match := m.MatchTerms(onlyR, onlyS)
	if len(match.Pairs) != 0 {
		t.Errorf("expected no pairs, got %v", match.Pairs)
	}
	if len(match.OnlyR) != 1 || len(match.OnlyS) != 1 {
		t.Errorf("leftovers wrong: %v / %v", match.OnlyR, match.OnlyS)
	}
}

func TestCrossLineOption(t *testing.T) {
	m := &Matcher{MaxN: 1, AllowCrossLine: true}
	onlyR := textproc.ExtractTerms([]string{"alpha"}, 1)
	onlyS := textproc.ExtractTerms([]string{"", "beta"}, 1)
	match := m.MatchTerms(onlyR, onlyS)
	if len(match.Pairs) != 1 {
		t.Fatalf("cross-line match expected, got %v", match.Pairs)
	}
}

func TestIdenticalCreativesNothingToMatch(t *testing.T) {
	m := &Matcher{MaxN: 3}
	r := snippet.MustNew("r", "Same text here", "And here")
	s := snippet.MustNew("s", "Same text here!", "And here")
	match := m.MatchPair(r, s)
	if len(match.Pairs)+len(match.OnlyR)+len(match.OnlyS) != 0 {
		t.Errorf("identical creatives produced %+v", match)
	}
}

func TestMatchDeterminism(t *testing.T) {
	db := featstats.New(1)
	m := NewMatcher(db)
	m.MaxN = 2
	r, s := paperPair()
	first := m.MatchPair(r, s)
	for i := 0; i < 10; i++ {
		again := m.MatchPair(r, s)
		if len(again.Pairs) != len(first.Pairs) {
			t.Fatal("match count varies across runs")
		}
		for j := range again.Pairs {
			if again.Pairs[j] != first.Pairs[j] {
				t.Fatalf("match order varies: %v vs %v", again.Pairs[j], first.Pairs[j])
			}
		}
	}
}

func TestOverlaps(t *testing.T) {
	a := textproc.Term{Text: "find cheap", N: 2, Line: 2, Pos: 1}
	tests := []struct {
		b    textproc.Term
		want bool
	}{
		{textproc.Term{Text: "find", N: 1, Line: 2, Pos: 1}, true},
		{textproc.Term{Text: "cheap", N: 1, Line: 2, Pos: 2}, true},
		{textproc.Term{Text: "flights", N: 1, Line: 2, Pos: 3}, false},
		{textproc.Term{Text: "find", N: 1, Line: 1, Pos: 1}, false},
		{textproc.Term{Text: "cheap flights", N: 2, Line: 2, Pos: 2}, true},
	}
	for _, tt := range tests {
		if got := overlaps(a, tt.b); got != tt.want {
			t.Errorf("overlaps(%v, %v) = %v, want %v", a, tt.b, got, tt.want)
		}
	}
}

func texts(ts []textproc.Term) map[string]bool {
	out := make(map[string]bool, len(ts))
	for _, t := range ts {
		out[t.Text] = true
	}
	return out
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BenchmarkMatchPair(b *testing.B) {
	db := featstats.New(1)
	for i := 0; i < 10; i++ {
		db.Observe(featstats.RewriteKey("find cheap", "get discounts"), 1)
		db.Observe(featstats.RewriteKey("flights", "flying"), 1)
	}
	m := NewMatcher(db)
	r, s := paperPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchPair(r, s)
	}
}
