// Package rewrite implements the rewrite extraction and matching
// machinery of Section IV: diffing a pair of creatives into the terms
// unique to each side, proposing candidate phrase rewrites, and greedily
// matching them using scores from the rewrite statistics database.
//
// In the paper's example, "find cheap" at position 1 of line 2 in
// snippet R is rewritten to "get discounts" at position 5 of line 2 in
// snippet S, yielding the rewrite tuple
// (find cheap:1:2, get discounts:5:2). Deciding which phrase maps to
// which is combinatorial; the paper (and this package) resolves it
// greedily, preferring pairs with strong support in the corpus-level
// rewrite database.
package rewrite

import (
	"math"
	"sort"

	"repro/internal/featstats"
	"repro/internal/snippet"
	"repro/internal/textproc"
)

// Pair is one matched rewrite: the term From in creative R was rewritten
// to the term To in creative S.
type Pair struct {
	From, To textproc.Term
}

// Match is the result of matching a creative pair: the accepted rewrite
// pairs plus the differing terms left unmatched on each side, which
// become individual term-level features.
type Match struct {
	Pairs []Pair
	OnlyR []textproc.Term
	OnlyS []textproc.Term
}

// Scorer scores a candidate rewrite from→to; higher means the rewrite is
// more plausible. Scores <= 0 mean "no evidence".
type Scorer interface {
	Score(from, to string) float64
}

// DBScorer scores candidates from the rewrite statistics database. The
// score favours rewrites observed often in the corpus (they are the
// probable ones) and, among equally frequent rewrites, those with a
// decisive CTR-lift odds ratio in either direction.
type DBScorer struct {
	DB *featstats.DB
}

// Score implements Scorer.
func (s DBScorer) Score(from, to string) float64 {
	key := featstats.RewriteKey(from, to)
	c := s.DB.Count(key)
	if c == 0 {
		return 0
	}
	return math.Log1p(c) + math.Abs(s.DB.LogOdds(key))
}

// PositionScorer is the naive ablation baseline: it knows nothing about
// the corpus and simply prefers matching terms at nearby positions of
// the same gram size.
type PositionScorer struct{}

// Score implements Scorer. It is used through Matcher, which passes
// terms, so this text-only interface gives every pair the same score;
// the positional preference comes from Matcher's deterministic
// tie-breaking (position order). Exposed for the matching ablation.
func (PositionScorer) Score(from, to string) float64 { return 0 }

// Matcher diffs and matches creative pairs.
type Matcher struct {
	// Scorer ranks candidate rewrites; nil behaves like PositionScorer.
	Scorer Scorer
	// MaxN is the largest n-gram size (default 3).
	MaxN int
	// AllowCrossLine also proposes rewrites between different lines.
	// The paper's rewrites stay within a line; cross-line matching is
	// off by default.
	AllowCrossLine bool
	// MinScore rejects content-rewrite candidates scoring below it, so
	// low-evidence pairings fall through to the leftover term sets
	// instead of becoming spurious matches. Same-text moves always
	// match. Zero accepts everything.
	MinScore float64
}

// NewMatcher returns a Matcher using the rewrite statistics in db.
func NewMatcher(db *featstats.DB) *Matcher {
	return &Matcher{Scorer: DBScorer{DB: db}, MaxN: 3}
}

func (m *Matcher) maxN() int {
	if m.MaxN <= 0 {
		return 3
	}
	return m.MaxN
}

// Diff returns the terms of r whose text does not occur anywhere in s,
// and vice versa. Text matching ignores position: a phrase that merely
// moved is not a difference in content. This is the diff for the
// position-free models (M1/M3/M5).
func (m *Matcher) Diff(r, s snippet.Creative) (onlyR, onlyS []textproc.Term) {
	rTerms := r.Terms(m.maxN())
	sTerms := s.Terms(m.maxN())
	rSet := make(map[string]bool, len(rTerms))
	for _, t := range rTerms {
		rSet[t.Text] = true
	}
	sSet := make(map[string]bool, len(sTerms))
	for _, t := range sTerms {
		sSet[t.Text] = true
	}
	for _, t := range rTerms {
		if !sSet[t.Text] {
			onlyR = append(onlyR, t)
		}
	}
	for _, t := range sTerms {
		if !rSet[t.Text] {
			onlyS = append(onlyS, t)
		}
	}
	return onlyR, onlyS
}

// DiffPositional returns the terms of r whose (text, line, position)
// coordinate does not occur in s, and vice versa. Under this diff a
// phrase that moved — the paper's key insight is that "even where within
// a snippet particular words are located" matters — appears on both
// sides with the same text and different positions, and the matcher
// pairs the two occurrences into a move rewrite. This is the diff for
// the positional models (M2/M4/M6).
func (m *Matcher) DiffPositional(r, s snippet.Creative) (onlyR, onlyS []textproc.Term) {
	rTerms := r.Terms(m.maxN())
	sTerms := s.Terms(m.maxN())
	key := func(t textproc.Term) textproc.Term { return t } // full struct equality
	rSet := make(map[textproc.Term]bool, len(rTerms))
	for _, t := range rTerms {
		rSet[key(t)] = true
	}
	sSet := make(map[textproc.Term]bool, len(sTerms))
	for _, t := range sTerms {
		sSet[key(t)] = true
	}
	for _, t := range rTerms {
		if !sSet[key(t)] {
			onlyR = append(onlyR, t)
		}
	}
	for _, t := range sTerms {
		if !rSet[key(t)] {
			onlyS = append(onlyS, t)
		}
	}
	return onlyR, onlyS
}

// candidate is an internal scored pairing.
type candidate struct {
	ri, si int // indices into onlyR / onlyS
	score  float64
}

// Candidates enumerates the admissible (From, To) pairs between the two
// difference sets: same line unless AllowCrossLine.
func (m *Matcher) Candidates(onlyR, onlyS []textproc.Term) []Pair {
	var out []Pair
	for _, a := range onlyR {
		for _, b := range onlyS {
			if !m.AllowCrossLine && a.Line != b.Line {
				continue
			}
			out = append(out, Pair{From: a, To: b})
		}
	}
	return out
}

// overlaps reports whether two terms on the same line occupy overlapping
// token spans. A term covers [Pos, Pos+N).
func overlaps(a, b textproc.Term) bool {
	if a.Line != b.Line {
		return false
	}
	return a.Pos < b.Pos+b.N && b.Pos < a.Pos+a.N
}

// MatchPair diffs the creative pair and greedily matches the differing
// terms. The greedy order is by descending scorer score; ties break by
// positional proximity and then deterministically by text, so the result
// does not depend on map iteration order. Every accepted match blocks
// later matches whose spans overlap it on either side, and the leftover
// terms are those not covered by any accepted match.
func (m *Matcher) MatchPair(r, s snippet.Creative) Match {
	onlyR, onlyS := m.Diff(r, s)
	return m.MatchTerms(onlyR, onlyS)
}

// MatchTerms matches precomputed difference sets (see MatchPair).
func (m *Matcher) MatchTerms(onlyR, onlyS []textproc.Term) Match {
	var cands []candidate
	for i, a := range onlyR {
		for j, b := range onlyS {
			if !m.AllowCrossLine && a.Line != b.Line {
				continue
			}
			var score float64
			if a.Text == b.Text {
				// A moved term: the same phrase at a different position.
				// Always pair such occurrences first — the move itself is
				// the feature (captured by the rewrite position pair).
				score = math.Inf(1)
			} else {
				if m.Scorer != nil {
					score = m.Scorer.Score(a.Text, b.Text)
				}
				if score < m.MinScore {
					continue
				}
			}
			cands = append(cands, candidate{ri: i, si: j, score: score})
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		cx, cy := cands[x], cands[y]
		if cx.score != cy.score {
			return cx.score > cy.score
		}
		ax, bx := onlyR[cx.ri], onlyS[cx.si]
		ay, by := onlyR[cy.ri], onlyS[cy.si]
		// Prefer same gram size, then maximal phrases (the paper matches
		// "find cheap" → "get discounts" as whole phrases, not their
		// fragments), then positional proximity.
		dx := abs(ax.N-bx.N)*100 + abs(ax.Pos-bx.Pos)
		dy := abs(ay.N-by.N)*100 + abs(ay.Pos-by.Pos)
		if dx != dy {
			return dx < dy
		}
		if nx, ny := ax.N+bx.N, ay.N+by.N; nx != ny {
			return nx > ny
		}
		if ax.Text != ay.Text {
			return ax.Text < ay.Text
		}
		return bx.Text < by.Text
	})

	usedR := make([]bool, len(onlyR))
	usedS := make([]bool, len(onlyS))
	var accepted []Pair
	var acceptedR, acceptedS []textproc.Term
	for _, c := range cands {
		a, b := onlyR[c.ri], onlyS[c.si]
		if usedR[c.ri] || usedS[c.si] {
			continue
		}
		if overlapsAny(a, acceptedR) || overlapsAny(b, acceptedS) {
			continue
		}
		accepted = append(accepted, Pair{From: a, To: b})
		acceptedR = append(acceptedR, a)
		acceptedS = append(acceptedS, b)
		usedR[c.ri] = true
		usedS[c.si] = true
	}

	var leftR, leftS []textproc.Term
	for i, t := range onlyR {
		if !usedR[i] && !overlapsAny(t, acceptedR) {
			leftR = append(leftR, t)
		}
	}
	for j, t := range onlyS {
		if !usedS[j] && !overlapsAny(t, acceptedS) {
			leftS = append(leftS, t)
		}
	}
	return Match{Pairs: accepted, OnlyR: leftR, OnlyS: leftS}
}

func overlapsAny(t textproc.Term, spans []textproc.Term) bool {
	for _, s := range spans {
		if overlaps(t, s) {
			return true
		}
	}
	return false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
