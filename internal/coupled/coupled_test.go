package coupled

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// synthBilinear generates pair instances from a planted bilinear model:
// positions with decaying weight, terms with random ±appeal, labels drawn
// from sigmoid of the bilinear score.
func synthBilinear(rng *rand.Rand, n, nPos, nTerm int) (data []Instance, truthP, truthT []float64) {
	truthP = make([]float64, nPos)
	for i := range truthP {
		truthP[i] = math.Pow(0.75, float64(i))
	}
	truthT = make([]float64, nTerm)
	for i := range truthT {
		truthT[i] = rng.NormFloat64() * 2
	}
	data = make([]Instance, n)
	for k := range data {
		nOcc := 2 + rng.Intn(4)
		occs := make([]Occurrence, nOcc)
		score := 0.0
		for j := range occs {
			o := Occurrence{
				PosID: rng.Intn(nPos),
				RelID: rng.Intn(nTerm),
				Dir:   1,
			}
			if rng.Float64() < 0.5 {
				o.Dir = -1
			}
			occs[j] = o
			score += o.Dir * truthP[o.PosID] * truthT[o.RelID]
		}
		data[k] = Instance{Occs: occs, Label: rng.Float64() < ml.Sigmoid(score)}
	}
	return data, truthP, truthT
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func TestFitRecoversBilinearStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data, truthP, truthT := synthBilinear(rng, 6000, 6, 30)

	m := New()
	m.Rounds = 8
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	if r := pearson(m.P, truthP); r < 0.9 {
		t.Errorf("P correlation with planted positions = %.3f, want >= 0.9\nP=%v\ntruth=%v", r, m.P, truthP)
	}
	if r := pearson(m.T, truthT); r < 0.8 {
		t.Errorf("T correlation with planted terms = %.3f, want >= 0.8", r)
	}
}

func TestFitRecoversPositionOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data, truthP, _ := synthBilinear(rng, 8000, 5, 20)
	m := New()
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	// The planted positions decay monotonically; the learned ones must
	// preserve that ordering.
	for i := 1; i < len(truthP); i++ {
		if m.P[i] > m.P[i-1]+0.08 {
			t.Errorf("learned P not decaying: P[%d]=%.3f > P[%d]=%.3f", i, m.P[i], i-1, m.P[i-1])
		}
	}
}

func TestPredictBeatsChance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data, _, _ := synthBilinear(rng, 4000, 5, 25)
	test, _, _ := synthBilinear(rand.New(rand.NewSource(24)), 4000, 5, 25) // different draw, same generator family

	m := New()
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	_ = test // truth differs per call; evaluate on training draw instead
	preds := m.PredictAll(data)
	labels := make([]bool, len(data))
	for i := range data {
		labels[i] = data[i].Label
	}
	met := ml.EvaluateBinary(preds, labels)
	if met.Accuracy < 0.62 {
		t.Errorf("coupled model accuracy %.3f, want well above chance", met.Accuracy)
	}
}

func TestNormalizePKeepsScoresInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	data, _, _ := synthBilinear(rng, 3000, 5, 20)

	a := New()
	a.NormalizeP = true
	if err := a.Fit(data); err != nil {
		t.Fatal(err)
	}
	maxP := 0.0
	for _, p := range a.P {
		if p > maxP {
			maxP = p
		}
	}
	if math.Abs(maxP-1) > 1e-9 {
		t.Errorf("max P = %v, want 1 after normalisation", maxP)
	}
}

func TestNonNegativeP(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	data, _, _ := synthBilinear(rng, 3000, 5, 20)
	m := New()
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	for i, p := range m.P {
		if p < 0 {
			t.Errorf("P[%d] = %v < 0 despite NonNegativeP", i, p)
		}
	}
}

func TestScoreBilinearForm(t *testing.T) {
	m := &Model{
		P:    []float64{1, 0.5},
		T:    []float64{2, -1},
		Bias: 0.25,
	}
	in := &Instance{Occs: []Occurrence{
		{PosID: 0, RelID: 0, Dir: +1}, // +1·1·2    = 2
		{PosID: 1, RelID: 1, Dir: -1}, // -1·0.5·-1 = 0.5
	}}
	if got, want := m.Score(in), 2.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("Score = %v, want %v", got, want)
	}
	if p := m.Predict(in); math.Abs(p-ml.Sigmoid(2.75)) > 1e-12 {
		t.Errorf("Predict = %v", p)
	}
}

func TestScoreUnknownIDsAreZero(t *testing.T) {
	m := &Model{P: []float64{1}, T: []float64{1}}
	in := &Instance{Occs: []Occurrence{{PosID: 99, RelID: 99, Dir: 1}}}
	if got := m.Score(in); got != 0 {
		t.Errorf("unknown ids scored %v, want 0", got)
	}
}

func TestFitValidation(t *testing.T) {
	m := New()
	if err := m.Fit(nil); err == nil {
		t.Error("empty training set accepted")
	}
	bad := []Instance{{Occs: []Occurrence{{PosID: -1, RelID: 0, Dir: 1}}}}
	if err := m.Fit(bad); err == nil {
		t.Error("negative id accepted")
	}
}

func TestInitTSeedsModel(t *testing.T) {
	// With informative InitT and zero learning (tiny epochs/LR), the
	// model should already classify by the seeded weights — this is the
	// stats-DB initialisation pathway.
	data := []Instance{
		{Occs: []Occurrence{{PosID: 0, RelID: 0, Dir: 1}}, Label: true},
		{Occs: []Occurrence{{PosID: 0, RelID: 0, Dir: -1}}, Label: false},
	}
	m := New()
	m.Rounds = 1
	m.Epochs = 1
	m.LearningRate = 1e-12
	m.InitT = []float64{3}
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict(&data[0]); p <= 0.9 {
		t.Errorf("seeded prediction = %v, want > 0.9", p)
	}
	if p := m.Predict(&data[1]); p >= 0.1 {
		t.Errorf("seeded prediction = %v, want < 0.1", p)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	data, _, _ := synthBilinear(rng, 1000, 4, 10)
	a, b := New(), New()
	if err := a.Fit(data); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(data); err != nil {
		t.Fatal(err)
	}
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatal("P differs across identical fits")
		}
	}
	for i := range a.T {
		if a.T[i] != b.T[i] {
			t.Fatal("T differs across identical fits")
		}
	}
}

func TestLogLossDecreasesWithRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	data, _, _ := synthBilinear(rng, 3000, 5, 20)
	one := New()
	one.Rounds = 1
	if err := one.Fit(data); err != nil {
		t.Fatal(err)
	}
	many := New()
	many.Rounds = 8
	if err := many.Fit(data); err != nil {
		t.Fatal(err)
	}
	if many.LogLoss(data) > one.LogLoss(data)+1e-9 {
		t.Errorf("more rounds worsened training loss: %v -> %v",
			one.LogLoss(data), many.LogLoss(data))
	}
}

func BenchmarkCoupledFit(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	data, _, _ := synthBilinear(rng, 2000, 5, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New()
		m.Rounds = 3
		m.Epochs = 20
		if err := m.Fit(data); err != nil {
			b.Fatal(err)
		}
	}
}
