// Package coupled implements the coupled logistic regression of
// Section V-D.1 (Eq. 9):
//
//	log O = Σ_{(p,q) ∈ pair(R,S)} P_{p,q} · T_{p,q}
//
// where O is the odds that creative R beats creative S, P are position
// weights and T are (term or rewrite) relevance weights. Fixing P makes
// the model a logistic regression in T and vice versa, so the paper
// learns the two factors by alternating between two coupled logistic
// regressions. This package does exactly that, reusing the L1 logistic
// regression from internal/ml for each half-step.
//
// Two standard bilinear identifiability fixes are applied: position
// weights are kept non-negative (they model examination probabilities)
// and rescaled so their maximum is 1 after every round, pushing the
// overall scale into T. Both can be disabled.
package coupled

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ml"
)

// Occurrence is one active feature of a pair instance: the relevance
// feature RelID occurred at the micro-position PosID with direction
// Dir (+1 when the feature argues for creative R, -1 for S).
type Occurrence struct {
	PosID int
	RelID int
	Dir   float64
}

// Instance is one creative-pair example for the coupled model.
type Instance struct {
	Occs  []Occurrence
	Label bool // true when R has the higher CTR
}

// Model is the coupled bilinear logistic regression.
type Model struct {
	// P holds the learned position weights, T the relevance weights.
	P, T []float64
	// Bias is the intercept, learned in the T half-step.
	Bias float64

	// Rounds is the number of alternations (default 6).
	Rounds int
	// InitP and InitT seed the factors. Unset entries of P default
	// to 1 (FullAttention); T defaults to 0, which is where the
	// feature-statistics initialisation plugs in.
	InitP, InitT []float64
	// L1T and L1P are the per-factor L1 strengths (defaults 1e-4, 0:
	// positions are dense and few, terms are sparse and many).
	L1T, L1P float64
	// Epochs and LearningRate configure the inner LR half-steps
	// (defaults 60 and 0.5).
	Epochs       int
	LearningRate float64
	// NonNegativeP clamps position weights at zero (default true via
	// New; examination probabilities cannot be negative).
	NonNegativeP bool
	// NormalizeP rescales P to max 1 after each round (default true via
	// New), resolving the c·P, T/c scale ambiguity.
	NormalizeP bool
	// AnchorP with AnchorStrength > 0 imposes a Gaussian prior on the
	// position weights centred on AnchorP (typically the corpus
	// position-statistics prior), keeping rarely observed positions from
	// drifting on noise.
	AnchorP        []float64
	AnchorStrength float64
	// Tolerance stops alternation when the training log-loss improves
	// by less than this between rounds (default 1e-5).
	Tolerance float64
}

// New returns a coupled model with default hyper-parameters.
func New() *Model {
	return &Model{
		Rounds:       6,
		L1T:          1e-4,
		Epochs:       60,
		LearningRate: 0.5,
		NonNegativeP: true,
		NormalizeP:   true,
		Tolerance:    1e-5,
	}
}

func (m *Model) defaults() {
	if m.Rounds <= 0 {
		m.Rounds = 6
	}
	if m.Epochs <= 0 {
		m.Epochs = 60
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.5
	}
	if m.Tolerance <= 0 {
		m.Tolerance = 1e-5
	}
}

// dims returns the required sizes of P and T.
func dims(data []Instance) (np, nt int) {
	for _, in := range data {
		for _, o := range in.Occs {
			if o.PosID+1 > np {
				np = o.PosID + 1
			}
			if o.RelID+1 > nt {
				nt = o.RelID + 1
			}
		}
	}
	return np, nt
}

// Fit trains the coupled model by alternating the two logistic
// regressions.
func (m *Model) Fit(data []Instance) error {
	if len(data) == 0 {
		return errors.New("coupled: empty training set")
	}
	for i, in := range data {
		for _, o := range in.Occs {
			if o.PosID < 0 || o.RelID < 0 {
				return fmt.Errorf("coupled: instance %d has negative feature id", i)
			}
		}
	}
	m.defaults()
	np, nt := dims(data)
	if len(m.InitP) > np {
		np = len(m.InitP)
	}
	if len(m.InitT) > nt {
		nt = len(m.InitT)
	}

	m.P = make([]float64, np)
	for i := range m.P {
		m.P[i] = 1 // FullAttention start: every position read
	}
	copy(m.P, m.InitP)
	m.T = make([]float64, nt)
	copy(m.T, m.InitT)

	prevLoss := math.Inf(1)
	for round := 0; round < m.Rounds; round++ {
		// T half-step: with P fixed, each occurrence contributes
		// Dir·P[pos] as the value of relevance feature RelID.
		tData := make([]ml.Instance, len(data))
		for i, in := range data {
			fs := make([]ml.Feature, 0, len(in.Occs))
			for _, o := range in.Occs {
				fs = append(fs, ml.Feature{ID: o.RelID, Val: o.Dir * m.P[o.PosID]})
			}
			tData[i] = ml.Instance{Features: fs, Label: in.Label}
			tData[i].Canonicalize()
		}
		tLR := &ml.LogisticRegression{
			L1:             m.L1T,
			LearningRate:   m.LearningRate,
			Epochs:         m.Epochs,
			InitialWeights: m.T,
		}
		if err := tLR.Fit(tData); err != nil {
			return fmt.Errorf("coupled: T half-step: %w", err)
		}
		copy(m.T, tLR.Weights)
		m.Bias = tLR.Bias

		// P half-step: with T fixed, each occurrence contributes
		// Dir·T[rel] as the value of position feature PosID.
		pData := make([]ml.Instance, len(data))
		for i, in := range data {
			fs := make([]ml.Feature, 0, len(in.Occs))
			for _, o := range in.Occs {
				fs = append(fs, ml.Feature{ID: o.PosID, Val: o.Dir * m.T[o.RelID]})
			}
			pData[i] = ml.Instance{Features: fs, Label: in.Label}
			pData[i].Canonicalize()
		}
		pLR := &ml.LogisticRegression{
			L1:             m.L1P,
			LearningRate:   m.LearningRate,
			Epochs:         m.Epochs,
			InitialWeights: m.P,
			AnchorWeights:  m.AnchorP,
			AnchorStrength: m.AnchorStrength,
		}
		if err := pLR.Fit(pData); err != nil {
			return fmt.Errorf("coupled: P half-step: %w", err)
		}
		copy(m.P, pLR.Weights)

		if m.NonNegativeP {
			for i, p := range m.P {
				if p < 0 {
					m.P[i] = 0
				}
			}
		}
		if m.NormalizeP {
			maxP := 0.0
			for _, p := range m.P {
				if p > maxP {
					maxP = p
				}
			}
			if maxP > 0 {
				for i := range m.P {
					m.P[i] /= maxP
				}
				for i := range m.T {
					m.T[i] *= maxP
				}
			}
		}

		loss := m.LogLoss(data)
		if prevLoss-loss < m.Tolerance {
			break
		}
		prevLoss = loss
	}
	return nil
}

// Score evaluates Eq. 9 for the instance: Σ Dir·P[pos]·T[rel] + bias.
func (m *Model) Score(in *Instance) float64 {
	s := m.Bias
	for _, o := range in.Occs {
		var p, t float64
		if o.PosID < len(m.P) {
			p = m.P[o.PosID]
		}
		if o.RelID < len(m.T) {
			t = m.T[o.RelID]
		}
		s += o.Dir * p * t
	}
	return s
}

// Predict returns P(R beats S) for the instance.
func (m *Model) Predict(in *Instance) float64 { return ml.Sigmoid(m.Score(in)) }

// PredictAll returns P(R beats S) for every instance.
func (m *Model) PredictAll(data []Instance) []float64 {
	out := make([]float64, len(data))
	for i := range data {
		out[i] = m.Predict(&data[i])
	}
	return out
}

// LogLoss returns the mean negative log-likelihood on the data.
func (m *Model) LogLoss(data []Instance) float64 {
	if len(data) == 0 {
		return 0
	}
	var ll float64
	for i := range data {
		p := m.Predict(&data[i])
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		if data[i].Label {
			ll -= math.Log(p)
		} else {
			ll -= math.Log(1 - p)
		}
	}
	return ll / float64(len(data))
}
