package gaze

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/textproc"
)

// Fixation is one eye fixation on a snippet micro-position.
type Fixation struct {
	Line int
	Pos  int
}

// Study is a simulated eye-tracking study over snippets: it generates
// fixation scanpaths from a planted attention curve and estimates, per
// micro-position, the probability that a reader fixates it — the
// correlation analysis the paper's future-work section proposes.
type Study struct {
	// Attention is the planted curve generating the scanpaths.
	Attention core.Attention
	// MaxLine and MaxPos bound the snippet grid under study.
	MaxLine, MaxPos int
}

// NewStudy returns a study over a MaxLine×MaxPos grid.
func NewStudy(att core.Attention, maxLine, maxPos int) *Study {
	return &Study{Attention: att, MaxLine: maxLine, MaxPos: maxPos}
}

// Scanpath simulates one reader: positions are visited in reading order
// (line by line, left to right) and each is fixated with its attention
// probability; the path records only fixated positions. An empty path
// means the reader skipped the snippet entirely.
func (s *Study) Scanpath(rng *rand.Rand) []Fixation {
	var path []Fixation
	for line := 1; line <= s.MaxLine; line++ {
		for pos := 1; pos <= s.MaxPos; pos++ {
			if rng.Float64() < s.Attention.Examine(line, pos) {
				path = append(path, Fixation{Line: line, Pos: pos})
			}
		}
	}
	return path
}

// FixationRates estimates P(fixate | line, pos) from n simulated
// readers: the empirical heat map of an eye-tracking study.
func (s *Study) FixationRates(rng *rand.Rand, n int) [][]float64 {
	counts := make([][]float64, s.MaxLine)
	for i := range counts {
		counts[i] = make([]float64, s.MaxPos)
	}
	for r := 0; r < n; r++ {
		for _, f := range s.Scanpath(rng) {
			counts[f.Line-1][f.Pos-1]++
		}
	}
	for i := range counts {
		for j := range counts[i] {
			counts[i][j] /= float64(n)
		}
	}
	return counts
}

// symbol flattens a grid cell into an HMM observation symbol.
func (s *Study) symbol(f Fixation) int {
	return (f.Line-1)*s.MaxPos + (f.Pos - 1)
}

// Symbols converts a scanpath into an HMM observation sequence.
func (s *Study) Symbols(path []Fixation) []int {
	out := make([]int, len(path))
	for i, f := range path {
		out[i] = s.symbol(f)
	}
	return out
}

// FitHMM trains a reading/skimming HMM on simulated scanpaths and
// returns it together with the training sequences' total log-likelihood.
// States: 0 = focused reading (fixations concentrate on early
// positions), 1 = skimming (diffuse fixations).
func (s *Study) FitHMM(rng *rand.Rand, readers, states, maxIter int) (*HMM, float64, error) {
	var seqs [][]int
	for i := 0; i < readers; i++ {
		path := s.Scanpath(rng)
		if len(path) == 0 {
			continue
		}
		seqs = append(seqs, s.Symbols(path))
	}
	h := NewHMM(states, s.MaxLine*s.MaxPos)
	// Break EM symmetry with a deterministic perturbation.
	pert := rand.New(rand.NewSource(1))
	for i := range h.Emit {
		var z float64
		for o := range h.Emit[i] {
			h.Emit[i][o] *= 1 + 0.1*pert.Float64()
			z += h.Emit[i][o]
		}
		for o := range h.Emit[i] {
			h.Emit[i][o] /= z
		}
	}
	ll, err := h.Fit(seqs, maxIter, 1e-4)
	return h, ll, err
}

// AttentionFromRates wraps an empirical fixation-rate table as a
// core.Attention, closing the loop: an eye-tracking study can directly
// parameterise the micro-browsing model.
func AttentionFromRates(rates [][]float64) core.TableAttention {
	return core.TableAttention{W: rates}
}

// CorrelateWithTerms reports, for each term of a snippet, the term text
// alongside the study's fixation rate at its micro-position — the
// "positions of important words vs focus areas" comparison from the
// paper's future work.
func CorrelateWithTerms(rates [][]float64, terms []textproc.Term) map[string]float64 {
	out := make(map[string]float64, len(terms))
	for _, t := range terms {
		if t.Line-1 < len(rates) && t.Pos-1 < len(rates[t.Line-1]) {
			out[t.Key()] = rates[t.Line-1][t.Pos-1]
		}
	}
	return out
}
