// Package gaze implements the eye-tracking extension sketched in the
// paper's future work: "we would also like to do eye-tracking studies to
// see how the positions of important words in the snippet correlate with
// focus areas identified by the eye tracking models", citing Zhao et
// al.'s HMM-based gaze prediction.
//
// The package provides a discrete hidden Markov model with Baum-Welch
// (EM) training, plus a gaze layer on top: fixation sequences over a
// snippet's micro-positions are modelled with hidden attention states
// (READING vs SKIMMING), and the trained model yields per-micro-position
// examination probabilities that can be compared against — or plugged
// into — the micro-browsing model's Attention layer.
//
// No eye-tracking hardware is available in this reproduction, so
// fixation sequences are simulated from a planted attention curve by the
// Simulate helper; the round trip (simulate → fit → recover the curve)
// is what the tests validate, exactly the correlation study the paper
// proposes.
package gaze

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// HMM is a discrete hidden Markov model with K hidden states and M
// observation symbols.
type HMM struct {
	// Init[i] is the initial state distribution.
	Init []float64
	// Trans[i][j] is P(state j at t+1 | state i at t).
	Trans [][]float64
	// Emit[i][o] is P(observation o | state i).
	Emit [][]float64
}

// NewHMM returns an HMM with uniform parameters.
func NewHMM(states, symbols int) *HMM {
	h := &HMM{
		Init:  make([]float64, states),
		Trans: make([][]float64, states),
		Emit:  make([][]float64, states),
	}
	for i := 0; i < states; i++ {
		h.Init[i] = 1 / float64(states)
		h.Trans[i] = make([]float64, states)
		h.Emit[i] = make([]float64, symbols)
		for j := 0; j < states; j++ {
			h.Trans[i][j] = 1 / float64(states)
		}
		for o := 0; o < symbols; o++ {
			h.Emit[i][o] = 1 / float64(symbols)
		}
	}
	return h
}

// Validate checks distribution shapes and normalisation.
func (h *HMM) Validate() error {
	k := len(h.Init)
	if k == 0 || len(h.Trans) != k || len(h.Emit) != k {
		return errors.New("gaze: inconsistent HMM shapes")
	}
	checkDist := func(p []float64, what string) error {
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				return fmt.Errorf("gaze: negative probability in %s", what)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("gaze: %s sums to %v", what, sum)
		}
		return nil
	}
	if err := checkDist(h.Init, "init"); err != nil {
		return err
	}
	for i := range h.Trans {
		if err := checkDist(h.Trans[i], "transition row"); err != nil {
			return err
		}
		if err := checkDist(h.Emit[i], "emission row"); err != nil {
			return err
		}
	}
	return nil
}

// forward computes scaled forward variables and the log-likelihood.
func (h *HMM) forward(obs []int) (alpha [][]float64, scale []float64, ll float64) {
	k := len(h.Init)
	n := len(obs)
	alpha = make([][]float64, n)
	scale = make([]float64, n)
	for t := 0; t < n; t++ {
		alpha[t] = make([]float64, k)
		if t == 0 {
			for i := 0; i < k; i++ {
				alpha[0][i] = h.Init[i] * h.Emit[i][obs[0]]
			}
		} else {
			for j := 0; j < k; j++ {
				var s float64
				for i := 0; i < k; i++ {
					s += alpha[t-1][i] * h.Trans[i][j]
				}
				alpha[t][j] = s * h.Emit[j][obs[t]]
			}
		}
		for i := 0; i < k; i++ {
			scale[t] += alpha[t][i]
		}
		if scale[t] == 0 {
			scale[t] = 1e-300
		}
		for i := 0; i < k; i++ {
			alpha[t][i] /= scale[t]
		}
		ll += math.Log(scale[t])
	}
	return alpha, scale, ll
}

// backward computes scaled backward variables using forward's scales.
func (h *HMM) backward(obs []int, scale []float64) [][]float64 {
	k := len(h.Init)
	n := len(obs)
	beta := make([][]float64, n)
	beta[n-1] = make([]float64, k)
	for i := 0; i < k; i++ {
		beta[n-1][i] = 1 / scale[n-1]
	}
	for t := n - 2; t >= 0; t-- {
		beta[t] = make([]float64, k)
		for i := 0; i < k; i++ {
			var s float64
			for j := 0; j < k; j++ {
				s += h.Trans[i][j] * h.Emit[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s / scale[t]
		}
	}
	return beta
}

// LogLikelihood returns log P(obs) under the model.
func (h *HMM) LogLikelihood(obs []int) float64 {
	if len(obs) == 0 {
		return 0
	}
	_, _, ll := h.forward(obs)
	return ll
}

// Posterior returns P(state i at t | obs) for every t.
func (h *HMM) Posterior(obs []int) [][]float64 {
	if len(obs) == 0 {
		return nil
	}
	alpha, scale, _ := h.forward(obs)
	beta := h.backward(obs, scale)
	k := len(h.Init)
	post := make([][]float64, len(obs))
	for t := range obs {
		post[t] = make([]float64, k)
		var z float64
		for i := 0; i < k; i++ {
			post[t][i] = alpha[t][i] * beta[t][i]
			z += post[t][i]
		}
		if z > 0 {
			for i := 0; i < k; i++ {
				post[t][i] /= z
			}
		}
	}
	return post
}

// Viterbi returns the most likely hidden state sequence.
func (h *HMM) Viterbi(obs []int) []int {
	if len(obs) == 0 {
		return nil
	}
	k := len(h.Init)
	n := len(obs)
	logp := func(v float64) float64 {
		if v <= 0 {
			return math.Inf(-1)
		}
		return math.Log(v)
	}
	delta := make([][]float64, n)
	back := make([][]int, n)
	delta[0] = make([]float64, k)
	back[0] = make([]int, k)
	for i := 0; i < k; i++ {
		delta[0][i] = logp(h.Init[i]) + logp(h.Emit[i][obs[0]])
	}
	for t := 1; t < n; t++ {
		delta[t] = make([]float64, k)
		back[t] = make([]int, k)
		for j := 0; j < k; j++ {
			best, arg := math.Inf(-1), 0
			for i := 0; i < k; i++ {
				if v := delta[t-1][i] + logp(h.Trans[i][j]); v > best {
					best, arg = v, i
				}
			}
			delta[t][j] = best + logp(h.Emit[j][obs[t]])
			back[t][j] = arg
		}
	}
	best, arg := math.Inf(-1), 0
	for i := 0; i < k; i++ {
		if delta[n-1][i] > best {
			best, arg = delta[n-1][i], i
		}
	}
	path := make([]int, n)
	path[n-1] = arg
	for t := n - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path
}

// Fit runs Baum-Welch EM over a set of observation sequences until the
// total log-likelihood improves by less than tol or maxIter is reached.
// It returns the final total log-likelihood.
func (h *HMM) Fit(seqs [][]int, maxIter int, tol float64) (float64, error) {
	if len(seqs) == 0 {
		return 0, errors.New("gaze: no training sequences")
	}
	if err := h.Validate(); err != nil {
		return 0, err
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-4
	}
	k := len(h.Init)
	m := len(h.Emit[0])

	prevLL := math.Inf(-1)
	var totalLL float64
	for iter := 0; iter < maxIter; iter++ {
		initAcc := make([]float64, k)
		transNum := make([][]float64, k)
		transDen := make([]float64, k)
		emitNum := make([][]float64, k)
		emitDen := make([]float64, k)
		for i := 0; i < k; i++ {
			transNum[i] = make([]float64, k)
			emitNum[i] = make([]float64, m)
		}

		totalLL = 0
		for _, obs := range seqs {
			if len(obs) == 0 {
				continue
			}
			alpha, scale, ll := h.forward(obs)
			beta := h.backward(obs, scale)
			totalLL += ll

			// State posteriors.
			n := len(obs)
			gamma := make([][]float64, n)
			for t := 0; t < n; t++ {
				gamma[t] = make([]float64, k)
				var z float64
				for i := 0; i < k; i++ {
					gamma[t][i] = alpha[t][i] * beta[t][i]
					z += gamma[t][i]
				}
				if z > 0 {
					for i := 0; i < k; i++ {
						gamma[t][i] /= z
					}
				}
			}
			for i := 0; i < k; i++ {
				initAcc[i] += gamma[0][i]
				for t := 0; t < n; t++ {
					emitNum[i][obs[t]] += gamma[t][i]
					emitDen[i] += gamma[t][i]
					if t < n-1 {
						transDen[i] += gamma[t][i]
					}
				}
			}
			// Transition posteriors xi.
			for t := 0; t < n-1; t++ {
				var z float64
				xi := make([][]float64, k)
				for i := 0; i < k; i++ {
					xi[i] = make([]float64, k)
					for j := 0; j < k; j++ {
						xi[i][j] = alpha[t][i] * h.Trans[i][j] * h.Emit[j][obs[t+1]] * beta[t+1][j]
						z += xi[i][j]
					}
				}
				if z > 0 {
					for i := 0; i < k; i++ {
						for j := 0; j < k; j++ {
							transNum[i][j] += xi[i][j] / z
						}
					}
				}
			}
		}

		// M-step.
		var initZ float64
		for i := 0; i < k; i++ {
			initZ += initAcc[i]
		}
		for i := 0; i < k; i++ {
			if initZ > 0 {
				h.Init[i] = initAcc[i] / initZ
			}
			if transDen[i] > 0 {
				for j := 0; j < k; j++ {
					h.Trans[i][j] = transNum[i][j] / transDen[i]
				}
			}
			if emitDen[i] > 0 {
				for o := 0; o < m; o++ {
					h.Emit[i][o] = emitNum[i][o] / emitDen[i]
				}
			}
		}

		if totalLL-prevLL < tol && iter > 0 {
			break
		}
		prevLL = totalLL
	}
	return totalLL, nil
}

// Sample draws an observation sequence of length n from the model.
func (h *HMM) Sample(rng *rand.Rand, n int) (obs, states []int) {
	obs = make([]int, n)
	states = make([]int, n)
	draw := func(p []float64) int {
		u := rng.Float64()
		acc := 0.0
		for i, v := range p {
			acc += v
			if u < acc {
				return i
			}
		}
		return len(p) - 1
	}
	st := draw(h.Init)
	for t := 0; t < n; t++ {
		states[t] = st
		obs[t] = draw(h.Emit[st])
		if t < n-1 {
			st = draw(h.Trans[st])
		}
	}
	return obs, states
}
