package gaze

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/textproc"
)

func TestHMMValidate(t *testing.T) {
	h := NewHMM(2, 3)
	if err := h.Validate(); err != nil {
		t.Fatalf("fresh HMM invalid: %v", err)
	}
	h.Init[0] = 2
	if err := h.Validate(); err == nil {
		t.Error("unnormalised init accepted")
	}
	bad := &HMM{Init: []float64{1}, Trans: [][]float64{{1}}, Emit: [][]float64{{-0.5, 1.5}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative emission accepted")
	}
}

func TestHMMForwardBackwardConsistency(t *testing.T) {
	// Posterior columns must sum to one, and LogLikelihood must be
	// finite and negative for a non-degenerate model.
	h := NewHMM(2, 4)
	h.Emit[0] = []float64{0.7, 0.1, 0.1, 0.1}
	h.Emit[1] = []float64{0.1, 0.1, 0.1, 0.7}
	h.Trans[0] = []float64{0.8, 0.2}
	h.Trans[1] = []float64{0.3, 0.7}

	obs := []int{0, 0, 3, 3, 3, 0}
	post := h.Posterior(obs)
	for t2, row := range post {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("posterior at %d sums to %v", t2, sum)
		}
	}
	ll := h.LogLikelihood(obs)
	if ll >= 0 || math.IsNaN(ll) || math.IsInf(ll, 0) {
		t.Errorf("LogLikelihood = %v", ll)
	}
	// First observations are state-0-typical; posterior must say so.
	if post[0][0] < 0.5 {
		t.Errorf("posterior[0] = %v, want state 0 dominant", post[0])
	}
	if post[3][1] < 0.5 {
		t.Errorf("posterior[3] = %v, want state 1 dominant", post[3])
	}
}

func TestHMMViterbiMatchesObviousSegmentation(t *testing.T) {
	h := NewHMM(2, 2)
	h.Emit[0] = []float64{0.9, 0.1}
	h.Emit[1] = []float64{0.1, 0.9}
	h.Trans[0] = []float64{0.9, 0.1}
	h.Trans[1] = []float64{0.1, 0.9}
	obs := []int{0, 0, 0, 1, 1, 1}
	path := h.Viterbi(obs)
	want := []int{0, 0, 0, 1, 1, 1}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("Viterbi = %v, want %v", path, want)
		}
	}
}

func TestBaumWelchRecovery(t *testing.T) {
	// Plant a two-state model, sample sequences, refit, and check the
	// held-out likelihood of the fitted model approaches the truth's.
	rng := rand.New(rand.NewSource(5))
	truth := NewHMM(2, 3)
	truth.Init = []float64{0.8, 0.2}
	truth.Trans = [][]float64{{0.85, 0.15}, {0.25, 0.75}}
	truth.Emit = [][]float64{{0.7, 0.2, 0.1}, {0.1, 0.3, 0.6}}

	var train, test [][]int
	for i := 0; i < 300; i++ {
		obs, _ := truth.Sample(rng, 30)
		if i < 250 {
			train = append(train, obs)
		} else {
			test = append(test, obs)
		}
	}

	fitted := NewHMM(2, 3)
	// Perturb to break symmetry.
	fitted.Emit = [][]float64{{0.5, 0.3, 0.2}, {0.2, 0.3, 0.5}}
	if _, err := fitted.Fit(train, 100, 1e-6); err != nil {
		t.Fatal(err)
	}

	var llTruth, llFit float64
	for _, obs := range test {
		llTruth += truth.LogLikelihood(obs)
		llFit += fitted.LogLikelihood(obs)
	}
	// The fitted model should be close to the generating one (within a
	// few percent of total held-out log-likelihood).
	if llFit < llTruth*1.03 { // both negative: fitted may be at most 3% worse
		t.Errorf("held-out LL: fitted %v vs truth %v", llFit, llTruth)
	}
}

func TestBaumWelchImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	truth := NewHMM(2, 3)
	truth.Emit = [][]float64{{0.8, 0.1, 0.1}, {0.1, 0.1, 0.8}}
	truth.Trans = [][]float64{{0.7, 0.3}, {0.3, 0.7}}
	var seqs [][]int
	for i := 0; i < 100; i++ {
		obs, _ := truth.Sample(rng, 20)
		seqs = append(seqs, obs)
	}
	one := NewHMM(2, 3)
	one.Emit = [][]float64{{0.5, 0.3, 0.2}, {0.2, 0.3, 0.5}}
	ll1, err := one.Fit(seqs, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	many := NewHMM(2, 3)
	many.Emit = [][]float64{{0.5, 0.3, 0.2}, {0.2, 0.3, 0.5}}
	ll50, err := many.Fit(seqs, 50, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ll50 < ll1-1e-6 {
		t.Errorf("EM decreased LL: %v -> %v", ll1, ll50)
	}
}

func TestHMMFitValidation(t *testing.T) {
	h := NewHMM(2, 2)
	if _, err := h.Fit(nil, 10, 0); err == nil {
		t.Error("empty training set accepted")
	}
}

func studyAttention() core.GeometricAttention {
	return core.GeometricAttention{LineWeights: []float64{0.9, 0.6, 0.3}, Decay: 0.8}
}

func TestFixationRatesMatchAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	study := NewStudy(studyAttention(), 3, 5)
	rates := study.FixationRates(rng, 20000)
	att := studyAttention()
	for line := 1; line <= 3; line++ {
		for pos := 1; pos <= 5; pos++ {
			want := att.Examine(line, pos)
			got := rates[line-1][pos-1]
			if math.Abs(got-want) > 0.02 {
				t.Errorf("rate(%d,%d) = %.3f, want %.3f", line, pos, got, want)
			}
		}
	}
}

func TestAttentionFromRatesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	study := NewStudy(studyAttention(), 2, 4)
	rates := study.FixationRates(rng, 20000)
	att := AttentionFromRates(rates)
	// The recovered attention must preserve the within-line decay.
	for pos := 2; pos <= 4; pos++ {
		if att.Examine(1, pos) >= att.Examine(1, pos-1) {
			t.Errorf("recovered attention not decaying at pos %d", pos)
		}
	}
	// And feed cleanly into a micro-browsing model.
	m := core.NewModel(att)
	m.Relevance["deal"] = 0.9
	terms := textproc.ExtractTerms([]string{"deal deal deal deal"}, 1)
	if s := m.ExpectedScore(terms); s >= 0 {
		t.Errorf("expected negative log-relevance score, got %v", s)
	}
}

func TestStudyFitHMM(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	study := NewStudy(studyAttention(), 2, 4)
	h, ll, err := study.FitHMM(rng, 400, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ll) || ll >= 0 {
		t.Errorf("training LL = %v", ll)
	}
	if err := h.Validate(); err != nil {
		t.Errorf("fitted HMM invalid: %v", err)
	}
	// Early-grid symbols must be likelier than late-grid ones under the
	// fitted marginal emission (attention decays).
	marginal := make([]float64, 8)
	for i := range h.Emit {
		for o, p := range h.Emit[i] {
			marginal[o] += p * h.Init[i]
		}
	}
	if marginal[0] <= marginal[3] {
		t.Errorf("fitted emissions do not favour early positions: %v", marginal)
	}
}

func TestCorrelateWithTerms(t *testing.T) {
	rates := [][]float64{{0.9, 0.5}, {0.3, 0.1}}
	terms := textproc.ExtractTerms([]string{"big sale", "act now"}, 1)
	corr := CorrelateWithTerms(rates, terms)
	if corr["big:1:1"] != 0.9 {
		t.Errorf(`corr["big:1:1"] = %v, want 0.9`, corr["big:1:1"])
	}
	if corr["now:2:2"] != 0.1 {
		t.Errorf(`corr["now:2:2"] = %v, want 0.1`, corr["now:2:2"])
	}
}

func TestSampleRespectsEmissions(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	h := NewHMM(1, 2)
	h.Emit[0] = []float64{0.25, 0.75}
	obs, states := h.Sample(rng, 10000)
	if len(states) != 10000 {
		t.Fatal("wrong state path length")
	}
	ones := 0
	for _, o := range obs {
		if o == 1 {
			ones++
		}
	}
	if frac := float64(ones) / 10000; math.Abs(frac-0.75) > 0.02 {
		t.Errorf("symbol 1 frequency %.3f, want 0.75", frac)
	}
}

func BenchmarkBaumWelch(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	truth := NewHMM(2, 6)
	truth.Emit = [][]float64{
		{0.4, 0.3, 0.1, 0.1, 0.05, 0.05},
		{0.05, 0.05, 0.1, 0.1, 0.3, 0.4},
	}
	var seqs [][]int
	for i := 0; i < 50; i++ {
		obs, _ := truth.Sample(rng, 25)
		seqs = append(seqs, obs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHMM(2, 6)
		h.Emit[0][0] += 0.01
		h.Emit[0][5] -= 0.01
		if _, err := h.Fit(seqs, 10, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}
