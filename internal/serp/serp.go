// Package serp simulates the serving side of sponsored search: it takes
// a synthetic ad corpus (internal/adcorpus) and produces impressions and
// clicks from a ground-truth *micro-browsing* user, yielding the per-
// creative statistics (and hence serve weights) that the paper's
// classifier consumes.
//
// The user model has two layers, mirroring the paper's decomposition of
// CTR into examination and perceived relevance:
//
//   - Macro layer: whether the ad itself is examined. The ad lands at a
//     random slot of the top block or the right-hand side (RHS) block,
//     each with its own position-examination curve — top slots are
//     examined far more often than RHS slots (Table 4's split).
//   - Micro layer: given the ad is examined, the user reads each
//     appeal-bearing phrase of the creative with the attention
//     probability of its (line, position) micro-position, and clicks
//     with probability sigmoid(base + Σ appeal of phrases actually
//     read). This is exactly the generative story of the paper's
//     Section III model, with the product-form relevance replaced by
//     its log-linear analogue so that appeals compose additively in
//     log-odds space.
//
// Because creatives within an adgroup are served uniformly at the same
// placement mix, the macro layer multiplies every creative's CTR by the
// same constant in expectation — serve weights isolate the micro
// (creative text) effect, as the paper's ADCORPUS construction intends.
// What the macro layer does change is the effective number of examined
// impressions, i.e. the sampling noise of serve weights: RHS placements
// yield noisier labels and slightly lower classifier accuracy.
package serp

import (
	"math"
	"math/rand"

	"repro/internal/adcorpus"
	"repro/internal/clickmodel"
	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/snippet"
)

// Placement selects the ad block whose examination curve governs the
// macro layer.
type Placement int

const (
	// Top is the mainline block above organic results.
	Top Placement = iota
	// RHS is the right-hand-side block.
	RHS
)

// String returns the placement name used in reports.
func (p Placement) String() string {
	if p == RHS {
		return "rhs"
	}
	return "top"
}

// DefaultTopGamma and DefaultRHSGamma are the macro examination curves:
// probability that an ad shown at slot i (0-based) of the block is
// examined at all.
var (
	DefaultTopGamma = []float64{0.90, 0.65, 0.45, 0.30}
	DefaultRHSGamma = []float64{0.45, 0.30, 0.20, 0.14, 0.10, 0.07}
)

// DefaultAttention is the planted micro-attention curve: line 1 is read
// most, line 3 least, and attention decays steeply along each line —
// users skim ad snippets. Figure 3's learned position weights should
// recover this shape.
func DefaultAttention() core.GeometricAttention {
	return core.GeometricAttention{LineWeights: []float64{0.95, 0.65, 0.35}, Decay: 0.78}
}

// Config parameterises a simulation run.
type Config struct {
	// Seed drives all randomness (deterministic given Seed).
	Seed int64
	// Impressions per creative (default 1500; serve weights are then
	// noisy enough that pair labels are imperfect, which is what keeps
	// classification accuracy in the paper's 55–72%% band).
	Impressions int
	// Placement chooses the macro examination curve (default Top).
	Placement Placement
	// Attention is the micro-attention ground truth; nil uses
	// DefaultAttention.
	Attention core.Attention
	// BaseLogit is the click log-odds of an examined creative with no
	// appeal phrases read (default -2.5 ≈ 7.6% CTR).
	BaseLogit float64
	// MacroGamma overrides the placement's examination curve.
	MacroGamma []float64
}

func (c *Config) defaults() {
	if c.Impressions <= 0 {
		c.Impressions = 1500
	}
	if c.Attention == nil {
		c.Attention = DefaultAttention()
	}
	if c.BaseLogit == 0 {
		c.BaseLogit = -2.5
	}
	if c.MacroGamma == nil {
		if c.Placement == RHS {
			c.MacroGamma = DefaultRHSGamma
		} else {
			c.MacroGamma = DefaultTopGamma
		}
	}
}

// Simulator runs the two-layer user model over a corpus.
type Simulator struct {
	cfg Config
	rng *rand.Rand
}

// New returns a simulator for the configuration.
func New(cfg Config) *Simulator {
	cfg.defaults()
	return &Simulator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// microClick samples the micro layer: reads each slot with its
// positional attention and draws the click.
func (s *Simulator) microClick(c *adcorpus.Creative) bool {
	logit := s.cfg.BaseLogit
	for _, sl := range c.Slots {
		if s.rng.Float64() < s.cfg.Attention.Examine(sl.Line, sl.Pos) {
			logit += sl.Appeal
		}
	}
	return s.rng.Float64() < ml.Sigmoid(logit)
}

// Impress simulates one impression of the creative and reports whether
// the ad was macro-examined and whether it was clicked.
func (s *Simulator) Impress(c *adcorpus.Creative) (examined, clicked bool) {
	slot := s.rng.Intn(len(s.cfg.MacroGamma))
	if s.rng.Float64() >= s.cfg.MacroGamma[slot] {
		return false, false
	}
	return true, s.microClick(c)
}

// MarginalClickProb returns the exact probability that an *examined*
// impression of the creative is clicked, marginalising over the 2^n
// micro-examination patterns of its n slots. The generator produces at
// most a handful of slots, so exact enumeration is cheap; creatives with
// more than 20 slots fall back to the base logit with all slots read
// half the time (never reached with the built-in generator).
func (s *Simulator) MarginalClickProb(c *adcorpus.Creative) float64 {
	n := len(c.Slots)
	if n > 20 {
		logit := s.cfg.BaseLogit
		for _, sl := range c.Slots {
			logit += sl.Appeal * s.cfg.Attention.Examine(sl.Line, sl.Pos)
		}
		return ml.Sigmoid(logit)
	}
	var total float64
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		logit := s.cfg.BaseLogit
		for i, sl := range c.Slots {
			a := s.cfg.Attention.Examine(sl.Line, sl.Pos)
			if mask&(1<<i) != 0 {
				p *= a
				logit += sl.Appeal
			} else {
				p *= 1 - a
			}
		}
		total += p * ml.Sigmoid(logit)
	}
	return total
}

// Run simulates Impressions impressions for every creative of every
// group and returns the corpus as stats-filled adgroups ready for pair
// extraction.
func (s *Simulator) Run(corpus *adcorpus.Corpus) []snippet.AdGroup {
	groups := make([]snippet.AdGroup, 0, len(corpus.Groups))
	for gi := range corpus.Groups {
		g := &corpus.Groups[gi]
		ag := snippet.AdGroup{ID: g.ID, Keyword: g.Keyword}
		for ci := range g.Creatives {
			c := &g.Creatives[ci]
			var st snippet.Stats
			for k := 0; k < s.cfg.Impressions; k++ {
				st.Impressions++
				if _, clicked := s.Impress(c); clicked {
					st.Clicks++
				}
			}
			ag.Creatives = append(ag.Creatives, c.Snippet())
			ag.Stats = append(ag.Stats, st)
		}
		groups = append(groups, ag)
	}
	return groups
}

// normAds clamps an ads-per-page request to the macro curve's depth.
func (s *Simulator) normAds(adsPerPage int) int {
	if adsPerPage <= 0 || adsPerPage > len(s.cfg.MacroGamma) {
		return len(s.cfg.MacroGamma)
	}
	return adsPerPage
}

// Session simulates one SERP session: adsPerPage creatives (drawn from
// distinct random groups) shown as a ranked list, the macro curve
// gating examination per position and the micro layer deciding clicks.
// It is the streaming form of Sessions — a traffic generator (e.g.
// cmd/loadgen replaying impressions against the feedback API) calls it
// per impression without materialising a log.
func (s *Simulator) Session(corpus *adcorpus.Corpus, adsPerPage int) clickmodel.Session {
	adsPerPage = s.normAds(adsPerPage)
	docs := make([]string, adsPerPage)
	clicks := make([]bool, adsPerPage)
	seen := make(map[int]bool, adsPerPage)
	for i := 0; i < adsPerPage; i++ {
		gi := s.rng.Intn(len(corpus.Groups))
		for seen[gi] {
			gi = s.rng.Intn(len(corpus.Groups))
		}
		seen[gi] = true
		g := &corpus.Groups[gi]
		c := &g.Creatives[s.rng.Intn(len(g.Creatives))]
		docs[i] = c.ID
		if s.rng.Float64() < s.cfg.MacroGamma[i] {
			clicks[i] = s.microClick(c)
		}
	}
	return clickmodel.Session{Query: "serp", Docs: docs, Clicks: clicks}
}

// Sessions simulates SERP sessions for the click-model substrate; the
// resulting log is suitable for fitting any Model in
// internal/clickmodel. Equivalent to nSessions calls to Session.
func (s *Simulator) Sessions(corpus *adcorpus.Corpus, nSessions, adsPerPage int) []clickmodel.Session {
	adsPerPage = s.normAds(adsPerPage)
	sessions := make([]clickmodel.Session, 0, nSessions)
	for k := 0; k < nSessions; k++ {
		sessions = append(sessions, s.Session(corpus, adsPerPage))
	}
	return sessions
}

// SnippetFeedback simulates aggregated micro feedback for one random
// creative: impressions examined impressions of its snippet and the
// clicks the micro layer produced. The returned lines alias the
// creative's text; treat them as read-only.
func (s *Simulator) SnippetFeedback(corpus *adcorpus.Corpus, impressions int) (lines []string, clicks int) {
	g := &corpus.Groups[s.rng.Intn(len(corpus.Groups))]
	c := &g.Creatives[s.rng.Intn(len(g.Creatives))]
	for k := 0; k < impressions; k++ {
		if s.microClick(c) {
			clicks++
		}
	}
	return c.Lines, clicks
}

// TrueModel exposes the planted micro-browsing model as a core.Model for
// oracle comparisons: relevance is the sigmoid-mapped appeal of each
// phrase (appeal 0 → 0.5) and attention is the planted curve.
func (s *Simulator) TrueModel(lex *adcorpus.Lexicon) *core.Model {
	m := core.NewModel(s.cfg.Attention)
	for text, appeal := range lex.AppealMap() {
		m.Relevance[text] = ml.Sigmoid(appeal)
	}
	return m
}

// ExpectedCTR returns the creative's exact unconditional CTR under the
// simulator: mean macro examination times the marginal micro click
// probability.
func (s *Simulator) ExpectedCTR(c *adcorpus.Creative) float64 {
	var g float64
	for _, v := range s.cfg.MacroGamma {
		g += v
	}
	g /= float64(len(s.cfg.MacroGamma))
	return g * s.MarginalClickProb(c)
}

// Sigmoid is re-exported for ground-truth computations in tests.
func Sigmoid(z float64) float64 { return ml.Sigmoid(z) }

// LogOddsToRelevance maps a planted appeal (log-odds) to the equivalent
// product-form relevance used by core.Model.
func LogOddsToRelevance(appeal float64) float64 { return ml.Sigmoid(appeal) }

// AppealFromCTRRatio back-solves the appeal that multiplies click odds
// by ratio (diagnostic helper).
func AppealFromCTRRatio(ratio float64) float64 { return math.Log(ratio) }
