package serp

import (
	"math"
	"testing"

	"repro/internal/adcorpus"
	"repro/internal/clickmodel"
)

func testCorpus(groups int) *adcorpus.Corpus {
	return adcorpus.Generate(adcorpus.Config{Seed: 100, Groups: groups}, adcorpus.DefaultLexicon())
}

func TestMarginalClickProbMatchesMonteCarlo(t *testing.T) {
	corpus := testCorpus(5)
	sim := New(Config{Seed: 1})
	c := &corpus.Groups[0].Creatives[0]

	exact := sim.MarginalClickProb(c)
	const n = 200000
	clicks := 0
	mc := New(Config{Seed: 2})
	for i := 0; i < n; i++ {
		if mc.microClick(c) {
			clicks++
		}
	}
	got := float64(clicks) / n
	if math.Abs(got-exact) > 0.005 {
		t.Errorf("Monte Carlo CTR %.4f vs exact %.4f", got, exact)
	}
}

func TestRunFillsStats(t *testing.T) {
	corpus := testCorpus(30)
	sim := New(Config{Seed: 3, Impressions: 1000})
	groups := sim.Run(corpus)
	if len(groups) != 30 {
		t.Fatalf("got %d groups", len(groups))
	}
	for _, g := range groups {
		if len(g.Creatives) != len(g.Stats) {
			t.Fatalf("group %s stats not parallel to creatives", g.ID)
		}
		for i, st := range g.Stats {
			if st.Impressions != 1000 {
				t.Errorf("creative %s impressions = %d", g.Creatives[i].ID, st.Impressions)
			}
			if st.Clicks < 0 || st.Clicks > st.Impressions {
				t.Errorf("creative %s clicks = %d", g.Creatives[i].ID, st.Clicks)
			}
		}
	}
}

func TestTopCTRExceedsRHS(t *testing.T) {
	corpus := testCorpus(40)
	top := New(Config{Seed: 4, Impressions: 2000, Placement: Top}).Run(corpus)
	rhs := New(Config{Seed: 4, Impressions: 2000, Placement: RHS}).Run(corpus)

	var topClicks, topImps, rhsClicks, rhsImps int64
	for _, g := range top {
		for _, st := range g.Stats {
			topClicks += st.Clicks
			topImps += st.Impressions
		}
	}
	for _, g := range rhs {
		for _, st := range g.Stats {
			rhsClicks += st.Clicks
			rhsImps += st.Impressions
		}
	}
	topCTR := float64(topClicks) / float64(topImps)
	rhsCTR := float64(rhsClicks) / float64(rhsImps)
	if topCTR <= rhsCTR*1.5 {
		t.Errorf("top CTR %.4f should clearly exceed rhs CTR %.4f", topCTR, rhsCTR)
	}
}

func TestServeWeightTracksAppeal(t *testing.T) {
	// Within each group, the creative with the higher exact expected CTR
	// should usually win the empirical serve weight.
	corpus := testCorpus(150)
	sim := New(Config{Seed: 5, Impressions: 6000})
	groups := sim.Run(corpus)

	oracle := New(Config{Seed: 6})
	wins, total := 0, 0
	for gi, g := range groups {
		pairs := g.Pairs(1)
		gen := corpus.Groups[gi]
		byID := make(map[string]*adcorpus.Creative)
		for ci := range gen.Creatives {
			byID[gen.Creatives[ci].ID] = &gen.Creatives[ci]
		}
		for _, p := range pairs {
			pr := oracle.MarginalClickProb(byID[p.R.ID])
			ps := oracle.MarginalClickProb(byID[p.S.ID])
			if math.Abs(pr-ps) < 0.01 {
				continue // too close to call; skip near-ties
			}
			total++
			if (pr > ps) == (p.Label() > 0) {
				wins++
			}
		}
	}
	if total == 0 {
		t.Fatal("no decisive pairs generated")
	}
	rate := float64(wins) / float64(total)
	if rate < 0.8 {
		t.Errorf("serve weight agrees with true CTR on %.1f%% of decisive pairs, want >= 80%%", rate*100)
	}
}

func TestSessionsValidAndFitPBM(t *testing.T) {
	corpus := testCorpus(50)
	sim := New(Config{Seed: 7})
	sessions := sim.Sessions(corpus, 5000, 4)
	if len(sessions) != 5000 {
		t.Fatalf("got %d sessions", len(sessions))
	}
	for _, s := range sessions {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	m := clickmodel.NewPBM()
	m.Iterations = 10
	if err := m.Fit(sessions); err != nil {
		t.Fatal(err)
	}
	// The macro curve decays, so the fitted gammas must decay too.
	for i := 1; i < len(m.Gamma); i++ {
		if m.Gamma[i] >= m.Gamma[i-1] {
			t.Errorf("fitted macro gamma not decreasing: %v", m.Gamma)
		}
	}
}

func TestTrueModelPrefersAppeal(t *testing.T) {
	lex := adcorpus.DefaultLexicon()
	sim := New(Config{Seed: 8})
	m := sim.TrueModel(lex)
	// "20% off" (appeal 1.2) must have higher relevance than
	// "terms apply" (appeal -0.6).
	if m.TermRelevance("20% off") <= m.TermRelevance("terms apply") {
		t.Error("true model lost the appeal ordering")
	}
	if got := m.TermRelevance("20% off"); math.Abs(got-Sigmoid(1.2)) > 1e-12 {
		t.Errorf("relevance mapping = %v, want sigmoid(appeal)", got)
	}
}

func TestExpectedCTRScalesWithPlacement(t *testing.T) {
	corpus := testCorpus(5)
	c := &corpus.Groups[0].Creatives[0]
	top := New(Config{Seed: 9, Placement: Top})
	rhs := New(Config{Seed: 9, Placement: RHS})
	if top.ExpectedCTR(c) <= rhs.ExpectedCTR(c) {
		t.Error("expected CTR should be higher at top placement")
	}
}

func TestDeterministicRuns(t *testing.T) {
	corpus := testCorpus(10)
	a := New(Config{Seed: 11, Impressions: 500}).Run(corpus)
	b := New(Config{Seed: 11, Impressions: 500}).Run(corpus)
	for i := range a {
		for j := range a[i].Stats {
			if a[i].Stats[j] != b[i].Stats[j] {
				t.Fatal("same seed produced different stats")
			}
		}
	}
}

func BenchmarkRun(b *testing.B) {
	corpus := testCorpus(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(Config{Seed: int64(i), Impressions: 200}).Run(corpus)
	}
}

func BenchmarkMarginalClickProb(b *testing.B) {
	corpus := testCorpus(5)
	sim := New(Config{Seed: 1})
	c := &corpus.Groups[0].Creatives[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.MarginalClickProb(c)
	}
}

// TestSessionStreamParity: the streaming one-at-a-time generator and
// the batch Sessions call draw identical traffic for identical seeds —
// a load generator replaying Session against the feedback API produces
// the same log an offline fit would see.
func TestSessionStreamParity(t *testing.T) {
	corpus := adcorpus.Generate(adcorpus.Config{Seed: 3, Groups: 40}, adcorpus.DefaultLexicon())
	batch := New(Config{Seed: 9}).Sessions(corpus, 200, 4)
	streaming := New(Config{Seed: 9})
	for i, want := range batch {
		got := streaming.Session(corpus, 4)
		if got.Query != want.Query || len(got.Docs) != len(want.Docs) {
			t.Fatalf("session %d diverged: %+v vs %+v", i, got, want)
		}
		for j := range want.Docs {
			if got.Docs[j] != want.Docs[j] || got.Clicks[j] != want.Clicks[j] {
				t.Fatalf("session %d slot %d diverged: %+v vs %+v", i, j, got, want)
			}
		}
	}
}

// TestSnippetFeedback: the micro feedback generator stays within its
// impression budget and points at real creative text.
func TestSnippetFeedback(t *testing.T) {
	corpus := adcorpus.Generate(adcorpus.Config{Seed: 4, Groups: 20}, adcorpus.DefaultLexicon())
	sim := New(Config{Seed: 11})
	for i := 0; i < 50; i++ {
		lines, clicks := sim.SnippetFeedback(corpus, 40)
		if len(lines) == 0 {
			t.Fatal("snippet feedback without lines")
		}
		if clicks < 0 || clicks > 40 {
			t.Fatalf("clicks %d outside [0, 40]", clicks)
		}
	}
}
