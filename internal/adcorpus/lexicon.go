// Package adcorpus generates the synthetic sponsored-search corpus that
// substitutes for the paper's proprietary ADCORPUS (tens of millions of
// Google creative pairs with live CTRs — unavailable outside Google).
//
// The generator is built so that the *causal structure* of the data
// matches the micro-browsing model the paper posits: every creative is
// assembled from phrases with a planted appeal (the log-odds contribution
// to the click decision when the phrase is read), phrases are placed at
// controlled micro-positions, and adgroups contain creative variants that
// differ by phrase rewrites and by phrase position. The accompanying
// internal/serp simulator then produces impressions and clicks from a
// ground-truth micro-browsing user, so serve weights, rewrite statistics
// and position effects all emerge from the same mechanism the classifier
// tries to learn.
package adcorpus

import "fmt"

// Phrase is a lexicon entry: a short text used as an atomic building
// block of creatives, with its planted appeal. Appeal is the log-odds
// contribution to the user's click decision when the phrase is examined;
// positive phrases ("20% off") pull clicks, negative ones ("terms
// apply") push them away.
type Phrase struct {
	Text   string  `json:"text"`
	Appeal float64 `json:"appeal"`
}

// Lexicon is the phrase inventory the generator draws from. All texts
// are already normalised (lower case, no punctuation).
type Lexicon struct {
	// Hooks are the attention-grabbing offer phrases of line 2 — the
	// rewrite inventory: adgroup variants typically swap one hook for
	// another, exactly the "find cheap" → "get discounts" rewrites of
	// the paper's example.
	Hooks []Phrase
	// Tails are optional line-2 qualifiers following the object.
	Tails []Phrase
	// Trust are line-3 reassurance phrases ("no reservation costs").
	Trust []Phrase
	// BrandSuffixes decorate the line-1 brand ("official site").
	BrandSuffixes []Phrase
	// Connectors are neutral line-2 filler words between object and
	// hook. They carry no appeal but change the token stream — the
	// distractor variation that makes bag-of-terms features noisy, as in
	// real ad corpora.
	Connectors []Phrase
	// Fillers are neutral line-3 lead-ins, same role as Connectors.
	Fillers []Phrase
	// DecorAdjectives and DecorNouns combine into idiosyncratic trailing
	// phrases ("premium collection", "seasonal catalog") that vary from
	// creative to creative. They carry no appeal; their role is textual
	// diversity — real creative pairs always differ in incidental words
	// whose n-grams are too rare to carry statistics, which is what
	// keeps bag-of-terms classifiers near chance in the paper.
	DecorAdjectives []string
	DecorNouns      []string
	// Verticals provide the query/keyword objects.
	Verticals []Vertical
}

// Vertical is one advertising domain with its keyword objects.
type Vertical struct {
	Name    string
	Brands  []string
	Objects []string // keyword-like noun phrases ("flights to new york")
}

// DefaultLexicon returns the built-in lexicon used throughout the
// experiments. Appeals span roughly [-0.8, +1.2] so that a one-phrase
// difference shifts CTR noticeably but not overwhelmingly — keeping pair
// classification in the paper's 55–72% accuracy band once finite-sample
// serve-weight noise is added.
func DefaultLexicon() *Lexicon {
	return &Lexicon{
		Hooks: expandHooks([]Phrase{
			{"find cheap", 0.90},
			{"get discounts", 0.70},
			{"20% off", 1.20},
			{"save big", 0.80},
			{"best deals", 0.60},
			{"low prices", 0.50},
			{"compare prices", 0.30},
			{"book now", 0.20},
			{"huge selection", 0.35},
			{"top rated", 0.45},
			{"free shipping", 1.00},
			{"limited offer", 0.40},
			{"new arrivals", 0.10},
			{"learn more", -0.20},
			{"sign up today", -0.10},
			{"visit us", -0.30},
			{"act fast", 0.05},
			{"exclusive offers", 0.55},
			{"more legroom", 0.75},
			{"instant quote", 0.65},
		}),
		Tails: []Phrase{
			{"today", 0.20},
			{"no hidden fees", 0.50},
			{"guaranteed", 0.30},
			{"terms apply", -0.60},
			{"while supplies last", -0.10},
			{"in minutes", 0.25},
			{"for less", 0.35},
			{"this week", 0.15},
			{"all year round", 0.10},
			{"before they sell out", 0.05},
			{"conditions apply", -0.45},
			{"at participating stores", -0.25},
			{"with free quotes", 0.40},
			{"and save more", 0.30},
			{"ends soon", 0.12},
		},
		Trust: expandTrust([]Phrase{
			{"no reservation costs", 0.40},
			{"great rates", 0.30},
			{"free cancellation", 0.50},
			{"24 7 support", 0.20},
			{"easy returns", 0.35},
			{"fees may apply", -0.50},
			{"results may vary", -0.30},
			{"trusted by millions", 0.45},
			{"secure checkout", 0.25},
			{"price match promise", 0.55},
		}),
		BrandSuffixes: []Phrase{
			{"official site", 0.30},
			{"online store", 0.10},
			{"deals", 0.25},
			{"outlet", 0.05},
			{"", 0},
		},
		Connectors: []Phrase{
			{"", 0},
			{"now", 0},
			{"online", 0},
			{"here", 0},
			{"right here", 0},
			{"with us", 0},
		},
		Fillers: []Phrase{
			{"", 0},
			{"plus", 0},
			{"always", 0},
			{"and enjoy", 0},
		},
		DecorAdjectives: []string{
			"premium", "seasonal", "curated", "classic", "modern", "signature",
			"featured", "essential", "select", "original", "everyday", "regional",
			"national", "global", "local", "boutique", "flagship", "preferred",
			"certified", "verified", "complete", "extended", "updated", "refreshed",
			"expanded", "dedicated", "trusted", "leading", "independent", "authentic",
			"handpicked", "popular", "favorite", "iconic", "vintage", "contemporary",
			"practical", "versatile", "reliable", "renowned",
		},
		DecorNouns: []string{
			"collection", "catalog", "selection", "lineup", "range", "series",
			"assortment", "inventory", "marketplace", "showroom", "storefront",
			"portfolio", "network", "program", "membership", "experience",
			"service", "platform", "destination", "gallery", "edition", "bundle",
			"package", "library", "outlet", "warehouse", "boutique", "emporium",
			"department", "division", "branch", "team", "community", "club",
			"academy", "institute", "registry", "directory", "exchange", "hub",
		},
		Verticals: []Vertical{
			{
				Name:    "travel",
				Brands:  []string{"xyz airlines", "skyhop travel", "jetwise", "aero direct"},
				Objects: travelObjects(),
			},
			{
				Name:    "retail",
				Brands:  []string{"shoebox", "wearhouse", "trendline", "cartly"},
				Objects: retailObjects(),
			},
			{
				Name:   "finance",
				Brands: []string{"lendright", "quotewise", "securebank", "coverly"},
				Objects: []string{
					"car insurance quotes", "personal loans", "credit cards",
					"home insurance", "savings accounts", "mortgage refinancing",
					"student loans", "term life insurance", "business checking",
					"travel rewards cards", "renters insurance", "auto refinancing",
				},
			},
		},
	}
}

// expandHooks generates the systematic hook families real ad corpora are
// full of — "save 15%", "20% off", "from $49", "deals under $30" — so
// the phrase vocabulary is wide and per-phrase statistics realistically
// thin. Appeal grows mildly with the advertised discount and shrinks
// with the advertised price, capped to the hand-written hooks' range.
func expandHooks(hooks []Phrase) []Phrase {
	seen := make(map[string]bool, len(hooks))
	for _, h := range hooks {
		seen[h.Text] = true
	}
	add := func(p Phrase) {
		if !seen[p.Text] {
			seen[p.Text] = true
			hooks = append(hooks, p)
		}
	}
	for n := 10; n <= 50; n += 10 {
		pct := float64(n) / 50 // 0.2 .. 1.0
		add(Phrase{fmt.Sprintf("save %d%%", n), 0.35 + 0.55*pct})
		add(Phrase{fmt.Sprintf("%d%% off", n), 0.40 + 0.60*pct})
	}
	for _, price := range []int{19, 49, 99} {
		cheap := 1 - float64(price)/99 // cheaper reads better
		add(Phrase{fmt.Sprintf("from $%d", price), 0.15 + 0.45*cheap})
	}
	return hooks
}

// expandTrust widens the line-3 inventory the same way.
func expandTrust(trust []Phrase) []Phrase {
	for _, n := range []int{30, 90} {
		trust = append(trust, Phrase{fmt.Sprintf("%d day returns", n), 0.25})
	}
	for _, s := range []string{"fast", "free"} {
		trust = append(trust, Phrase{s + " delivery", 0.35})
	}
	for _, s := range []string{"rated 5 stars", "cancel anytime",
		"money back guarantee", "expert support"} {
		trust = append(trust, Phrase{s, 0.20})
	}
	for _, s := range []string{"restrictions apply", "see terms"} {
		trust = append(trust, Phrase{s, -0.35})
	}
	return trust
}

// travelObjects generates a wide keyword inventory (city × product), so
// the text space is large enough that junction n-grams between hooks and
// objects are too rare to act as statistical position proxies — in real
// ad corpora they are effectively unique.
func travelObjects() []string {
	cities := []string{
		"new york", "boston", "miami", "chicago", "seattle", "denver",
		"austin", "atlanta", "dallas", "phoenix", "las vegas", "orlando",
		"paris", "rome", "london", "tokyo", "madrid", "lisbon", "dublin",
		"berlin", "prague", "vienna", "sydney", "toronto", "cancun",
	}
	var out []string
	for i, c := range cities {
		switch i % 3 {
		case 0:
			out = append(out, "flights to "+c)
		case 1:
			out = append(out, "hotels in "+c)
		default:
			out = append(out, "vacations in "+c)
		}
		// Every city also gets a second product so objects per vertical
		// stay diverse.
		out = append(out, "car rentals in "+c)
	}
	return out
}

// retailObjects generates modifier × noun keyword combinations.
func retailObjects() []string {
	mods := []string{"mens", "womens", "kids", "discount", "designer", "outdoor"}
	nouns := []string{
		"running shoes", "winter jackets", "wireless headphones",
		"kitchen appliances", "office chairs", "hiking boots", "watches",
		"sunglasses", "backpacks", "rain coats",
	}
	var out []string
	for i, n := range nouns {
		out = append(out, n)
		out = append(out, mods[i%len(mods)]+" "+n)
		out = append(out, mods[(i+3)%len(mods)]+" "+n)
	}
	return out
}

// AppealMap flattens the lexicon into a phrase-text → appeal lookup.
// Objects, brands and connectors carry zero appeal: they identify the
// product but do not tip the click decision.
func (l *Lexicon) AppealMap() map[string]float64 {
	m := make(map[string]float64)
	add := func(ps []Phrase) {
		for _, p := range ps {
			if p.Text != "" {
				m[p.Text] = p.Appeal
			}
		}
	}
	add(l.Hooks)
	add(l.Tails)
	add(l.Trust)
	add(l.BrandSuffixes)
	return m
}
