package adcorpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/textproc"
)

func TestGenerateDeterminism(t *testing.T) {
	lex := DefaultLexicon()
	a := Generate(Config{Seed: 5, Groups: 50}, lex)
	b := Generate(Config{Seed: 5, Groups: 50}, lex)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different corpora")
	}
	c := Generate(Config{Seed: 6, Groups: 50}, lex)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateShape(t *testing.T) {
	corpus := Generate(Config{Seed: 1, Groups: 200, MaxCreatives: 4}, DefaultLexicon())
	if len(corpus.Groups) != 200 {
		t.Fatalf("got %d groups, want 200", len(corpus.Groups))
	}
	for _, g := range corpus.Groups {
		if len(g.Creatives) < 2 || len(g.Creatives) > 4 {
			t.Errorf("group %s has %d creatives, want 2..4", g.ID, len(g.Creatives))
		}
		if g.Keyword == "" {
			t.Errorf("group %s has empty keyword", g.ID)
		}
		for _, c := range g.Creatives {
			if len(c.Lines) != 3 {
				t.Errorf("creative %s has %d lines, want 3", c.ID, len(c.Lines))
			}
			if len(c.Slots) == 0 {
				t.Errorf("creative %s has no slots", c.ID)
			}
		}
	}
}

func TestSlotsMatchText(t *testing.T) {
	corpus := Generate(Config{Seed: 2, Groups: 100}, DefaultLexicon())
	for _, g := range corpus.Groups {
		for _, c := range g.Creatives {
			for _, sl := range c.Slots {
				if sl.Line < 1 || sl.Line > len(c.Lines) {
					t.Fatalf("creative %s slot %q has line %d", c.ID, sl.Text, sl.Line)
				}
				toks := textproc.Tokenize(c.Lines[sl.Line-1])
				want := strings.Fields(sl.Text)
				if sl.Pos-1+len(want) > len(toks) {
					t.Fatalf("creative %s slot %q at pos %d overruns line %q",
						c.ID, sl.Text, sl.Pos, c.Lines[sl.Line-1])
				}
				for i, w := range want {
					if toks[sl.Pos-1+i].Text != w {
						t.Fatalf("creative %s slot %q token %d: line has %q",
							c.ID, sl.Text, i, toks[sl.Pos-1+i].Text)
					}
				}
			}
		}
	}
}

func TestSlotAppealsComeFromLexicon(t *testing.T) {
	lex := DefaultLexicon()
	appeal := lex.AppealMap()
	corpus := Generate(Config{Seed: 3, Groups: 50}, lex)
	for _, g := range corpus.Groups {
		for _, c := range g.Creatives {
			for _, sl := range c.Slots {
				want, ok := appeal[sl.Text]
				if !ok {
					t.Fatalf("slot text %q not in lexicon", sl.Text)
				}
				if sl.Appeal != want {
					t.Fatalf("slot %q appeal %v, lexicon says %v", sl.Text, sl.Appeal, want)
				}
			}
		}
	}
}

func TestGroupsContainTextVariation(t *testing.T) {
	corpus := Generate(Config{Seed: 4, Groups: 100}, DefaultLexicon())
	varied := 0
	for _, g := range corpus.Groups {
		base := g.Creatives[0].Snippet()
		for _, c := range g.Creatives[1:] {
			if !base.Equal(c.Snippet()) {
				varied++
				break
			}
		}
	}
	// The generator never emits a guaranteed-identical variant, but
	// chained variants can occasionally return to the base text; demand
	// variation in the vast majority of groups.
	if varied < 95 {
		t.Errorf("only %d/100 groups have any text variation", varied)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	corpus := Generate(Config{Seed: 7, Groups: 20}, DefaultLexicon())
	var buf bytes.Buffer
	if err := corpus.SaveJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(corpus, got) {
		t.Error("JSONL round trip changed the corpus")
	}
}

func TestLoadJSONLGarbage(t *testing.T) {
	if _, err := LoadJSONL(bytes.NewBufferString("{broken")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadJSONLEmpty(t *testing.T) {
	got, err := LoadJSONL(bytes.NewBufferString(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 0 {
		t.Errorf("empty input produced %d groups", len(got.Groups))
	}
}

func TestAppealMap(t *testing.T) {
	lex := DefaultLexicon()
	m := lex.AppealMap()
	if m["20% off"] != 1.20 {
		t.Errorf(`appeal["20%% off"] = %v, want 1.20`, m["20% off"])
	}
	if m["terms apply"] != -0.60 {
		t.Errorf(`appeal["terms apply"] = %v, want -0.60`, m["terms apply"])
	}
	if _, ok := m[""]; ok {
		t.Error("empty phrase leaked into appeal map")
	}
}

func TestTotalAppeal(t *testing.T) {
	c := Creative{Slots: []Slot{{Appeal: 0.5}, {Appeal: -0.2}}}
	if got := c.TotalAppeal(); got != 0.3 {
		t.Errorf("TotalAppeal = %v, want 0.3", got)
	}
}

func TestDefaultLexiconNormalised(t *testing.T) {
	lex := DefaultLexicon()
	check := func(ps []Phrase) {
		for _, p := range ps {
			if p.Text != textproc.Normalize(p.Text) {
				t.Errorf("lexicon phrase %q is not normalised", p.Text)
			}
		}
	}
	check(lex.Hooks)
	check(lex.Tails)
	check(lex.Trust)
	check(lex.BrandSuffixes)
	for _, v := range lex.Verticals {
		for _, o := range v.Objects {
			if o != textproc.Normalize(o) {
				t.Errorf("object %q is not normalised", o)
			}
		}
		for _, b := range v.Brands {
			if b != textproc.Normalize(b) {
				t.Errorf("brand %q is not normalised", b)
			}
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	lex := DefaultLexicon()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Config{Seed: int64(i), Groups: 100}, lex)
	}
}
