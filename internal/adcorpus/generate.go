package adcorpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/snippet"
)

// Slot records the placement of one appeal-bearing phrase inside a
// creative: the ground-truth annotation the user simulator consumes.
// Line and Pos are the 1-based line number and token position of the
// phrase's first token, matching textproc coordinates.
type Slot struct {
	Text   string  `json:"text"`
	Line   int     `json:"line"`
	Pos    int     `json:"pos"`
	Appeal float64 `json:"appeal"`
}

// Creative is a generated ad creative together with its ground-truth
// phrase slots.
type Creative struct {
	ID    string   `json:"id"`
	Lines []string `json:"lines"`
	Slots []Slot   `json:"slots"`
}

// Snippet converts to the model-facing creative type.
func (c Creative) Snippet() snippet.Creative {
	return snippet.Creative{ID: c.ID, Lines: c.Lines}
}

// Group is an adgroup: a keyword with 2–4 alternative creatives.
type Group struct {
	ID        string     `json:"id"`
	Vertical  string     `json:"vertical"`
	Keyword   string     `json:"keyword"`
	Creatives []Creative `json:"creatives"`
}

// Corpus is the synthetic ADCORPUS.
type Corpus struct {
	Groups []Group `json:"groups"`
}

// Config controls corpus generation.
type Config struct {
	// Seed drives all randomness; generation is deterministic given it.
	Seed int64
	// Groups is the number of adgroups (default 500).
	Groups int
	// MaxCreatives caps creatives per adgroup in [2, MaxCreatives]
	// (default 4).
	MaxCreatives int
}

func (c *Config) defaults() {
	if c.Groups <= 0 {
		c.Groups = 500
	}
	if c.MaxCreatives < 2 {
		c.MaxCreatives = 4
	}
}

// variantKind enumerates how a creative variant differs from its base.
type variantKind int

const (
	variantHookRewrite     variantKind = iota // swap the hook phrase
	variantHookMove                           // move the hook to another placement
	variantTrustRewrite                       // swap the trust phrase
	variantTrustSwap                          // reorder the two trust phrases
	variantTailToggle                         // add/remove/replace the tail
	variantConnectorChange                    // neutral line-2 filler change
	variantFillerChange                       // neutral line-3 filler change
	numVariantKinds
)

// hookPlacement positions the hook phrase within the creative. Moving
// the hook between placements changes its micro-position (and hence the
// attention it receives) without changing the words — the position
// effect the paper's positional models exploit.
type hookPlacement int

const (
	hookLine2Front hookPlacement = iota // "20% off flights to rome"
	hookLine2Back                       // "flights to rome [now] 20% off"
	hookLine1                           // "jetwise deals - 20% off" (headline)
	numHookPlacements
)

// build assembles one creative from its parts, tracking slots.
type build struct {
	brand     string
	suffix    Phrase
	hook      Phrase
	hookPlace hookPlacement
	object    string // the rendered object paraphrase for this creative
	connector Phrase // neutral, only rendered in the hook-last layout
	tail      Phrase // Text == "" means no tail
	trust     Phrase
	filler    Phrase    // neutral line-3 lead-in
	trust2    Phrase    // optional second trust phrase ("" = absent)
	trustRev  bool      // render trust2 before trust
	decor     [3]string // idiosyncratic trailing phrase per line ("" = none)
}

func tokens(s string) int {
	if s == "" {
		return 0
	}
	return len(strings.Fields(s))
}

// pickVariantKind draws a variant kind with weights favouring the
// substantive edits (hook rewrites, placement moves) over neutral filler
// churn, roughly matching how advertisers iterate creatives.
func pickVariantKind(rng *rand.Rand) variantKind {
	r := rng.Float64()
	switch {
	case r < 0.28:
		return variantHookRewrite
	case r < 0.50:
		return variantHookMove
	case r < 0.66:
		return variantTrustRewrite
	case r < 0.76:
		return variantTrustSwap
	case r < 0.82:
		return variantTailToggle
	case r < 0.92:
		return variantConnectorChange
	default:
		return variantFillerChange
	}
}

// render produces the creative text and slots.
func (b build) render(id string) Creative {
	var c Creative
	c.ID = id

	// Line 1: brand [+ suffix] [+ hook when placed in the headline].
	line1 := b.brand
	if b.suffix.Text != "" {
		line1 += " " + b.suffix.Text
		c.Slots = append(c.Slots, Slot{
			Text: b.suffix.Text, Line: 1, Pos: tokens(b.brand) + 1, Appeal: b.suffix.Appeal,
		})
	}
	if b.hookPlace == hookLine1 {
		pos := tokens(line1) + 1
		line1 += " " + b.hook.Text
		c.Slots = append(c.Slots, Slot{Text: b.hook.Text, Line: 1, Pos: pos, Appeal: b.hook.Appeal})
	}

	// Line 2: "hook object [tail]", "object [connector] hook [tail]", or
	// just "object [tail]" when the hook lives in the headline. The
	// connector is neutral filler: it shifts positions and changes
	// n-grams without moving CTR.
	var line2 string
	switch b.hookPlace {
	case hookLine2Front:
		line2 = b.hook.Text + " " + b.object
		c.Slots = append(c.Slots, Slot{Text: b.hook.Text, Line: 2, Pos: 1, Appeal: b.hook.Appeal})
	case hookLine2Back:
		line2 = b.object
		if b.connector.Text != "" {
			line2 += " " + b.connector.Text
		}
		pos := tokens(line2) + 1
		line2 += " " + b.hook.Text
		c.Slots = append(c.Slots, Slot{Text: b.hook.Text, Line: 2, Pos: pos, Appeal: b.hook.Appeal})
	default: // hookLine1
		line2 = b.object
	}
	if b.tail.Text != "" {
		pos := tokens(line2) + 1
		line2 += " " + b.tail.Text
		c.Slots = append(c.Slots, Slot{Text: b.tail.Text, Line: 2, Pos: pos, Appeal: b.tail.Appeal})
	}

	// Line 3: neutral filler, then the trust phrases in either order.
	var line3 string
	if b.filler.Text != "" {
		line3 = b.filler.Text + " "
	}
	first, second := b.trust, b.trust2
	if b.trustRev && b.trust2.Text != "" {
		first, second = b.trust2, b.trust
	}
	c.Slots = append(c.Slots, Slot{Text: first.Text, Line: 3, Pos: tokens(line3) + 1, Appeal: first.Appeal})
	line3 += first.Text
	if second.Text != "" {
		pos := tokens(line3) + 1
		line3 += " " + second.Text
		c.Slots = append(c.Slots, Slot{Text: second.Text, Line: 3, Pos: pos, Appeal: second.Appeal})
	}

	lines := []string{line1, line2, line3}
	for i, d := range b.decor {
		if d != "" {
			lines[i] += " " + d
		}
	}
	c.Lines = lines
	return c
}

// Generate builds a deterministic synthetic corpus from the lexicon.
func Generate(cfg Config, lex *Lexicon) *Corpus {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := &Corpus{Groups: make([]Group, 0, cfg.Groups)}

	pick := func(ps []Phrase) Phrase { return ps[rng.Intn(len(ps))] }

	// Advertisers A/B test within a strategy: an adgroup's alternative
	// hooks (and trust phrases) come from a narrow neighbourhood in
	// appeal space — aggressive advertisers compare aggressive offers.
	// This selection effect is what makes marginal term statistics weak
	// (each phrase mostly duels near-equals and wins about half the
	// time) while directed rewrite statistics stay sharp; it is the
	// paper's reason rewrites outperform bags of terms.
	hooksByAppeal := sortedByAppeal(lex.Hooks)
	trustByAppeal := sortedByAppeal(lex.Trust)
	tailsByAppeal := sortedByAppeal(lex.Tails)
	windowPick := func(sorted []Phrase, center, radius int) Phrase {
		lo := center - radius
		if lo < 0 {
			lo = 0
		}
		hi := center + radius + 1
		if hi > len(sorted) {
			hi = len(sorted)
		}
		return sorted[lo+rng.Intn(hi-lo)]
	}

	// rollDecor draws each line's idiosyncratic trailing phrase. Every
	// creative gets an independent roll, so almost every pair differs in
	// incidental words on top of its substantive edit.
	rollDecor := func() [3]string {
		var d [3]string
		for i := range d {
			if rng.Float64() < 0.35 {
				adj := lex.DecorAdjectives[rng.Intn(len(lex.DecorAdjectives))]
				noun := lex.DecorNouns[rng.Intn(len(lex.DecorNouns))]
				d[i] = adj + " " + noun
			}
		}
		return d
	}

	for g := 0; g < cfg.Groups; g++ {
		v := lex.Verticals[rng.Intn(len(lex.Verticals))]
		hookCenter := rng.Intn(len(hooksByAppeal))
		trustCenter := rng.Intn(len(trustByAppeal))
		tailCenter := rng.Intn(len(tailsByAppeal))
		keyword := v.Objects[rng.Intn(len(v.Objects))]
		base := build{
			brand:     v.Brands[rng.Intn(len(v.Brands))],
			suffix:    pick(lex.BrandSuffixes),
			hook:      windowPick(hooksByAppeal, hookCenter, hookWindow),
			hookPlace: hookPlacement(rng.Intn(int(numHookPlacements))),
			object:    paraphraseObject(rng, keyword),
			connector: pick(lex.Connectors),
			trust:     windowPick(trustByAppeal, trustCenter, trustWindow),
			filler:    pick(lex.Fillers),
			decor:     rollDecor(),
		}
		if rng.Float64() < 0.5 {
			base.tail = windowPick(tailsByAppeal, tailCenter, tailWindow)
		}
		if rng.Float64() < 0.4 {
			base.trust2 = pick(lex.Trust)
		}

		group := Group{
			ID:       fmt.Sprintf("g%05d", g),
			Vertical: v.Name,
			Keyword:  keyword,
		}
		n := 2 + rng.Intn(cfg.MaxCreatives-1) // 2..MaxCreatives
		group.Creatives = append(group.Creatives, base.render(fmt.Sprintf("g%05d-c0", g)))

		mutate := func(variant *build) {
			switch pickVariantKind(rng) {
			case variantHookRewrite:
				for variant.hook == base.hook {
					variant.hook = windowPick(hooksByAppeal, hookCenter, hookWindow)
				}
			case variantHookMove:
				move := hookPlacement(rng.Intn(int(numHookPlacements)))
				for move == variant.hookPlace {
					move = hookPlacement(rng.Intn(int(numHookPlacements)))
				}
				variant.hookPlace = move
			case variantTrustRewrite:
				for variant.trust == base.trust {
					variant.trust = windowPick(trustByAppeal, trustCenter, trustWindow)
				}
			case variantTrustSwap:
				if variant.trust2.Text != "" {
					variant.trustRev = !variant.trustRev
				} else {
					for variant.filler == base.filler {
						variant.filler = pick(lex.Fillers)
					}
				}
			case variantTailToggle:
				if variant.tail.Text == "" {
					variant.tail = windowPick(tailsByAppeal, tailCenter, tailWindow)
				} else if rng.Float64() < 0.5 {
					variant.tail = Phrase{}
				} else {
					for variant.tail == base.tail {
						variant.tail = windowPick(tailsByAppeal, tailCenter, tailWindow)
					}
				}
			case variantConnectorChange:
				for variant.connector == base.connector {
					variant.connector = pick(lex.Connectors)
				}
			case variantFillerChange:
				for variant.filler == base.filler {
					variant.filler = pick(lex.Fillers)
				}
			}
		}

		cur := base
		for i := 1; i < n; i++ {
			variant := cur
			variant.decor = rollDecor()
			if rng.Float64() < 0.5 {
				variant.object = paraphraseObject(rng, keyword)
			}
			mutate(&variant)
			// Nearly half the variants carry a second, compounding change
			// — real advertisers rarely do perfectly isolated A/B edits,
			// and conflicting multi-line edits are where position
			// weighting decides the winner.
			if rng.Float64() < 0.45 {
				mutate(&variant)
			}
			group.Creatives = append(group.Creatives, variant.render(fmt.Sprintf("g%05d-c%d", g, i)))
			// Half the time chain variants (variant-of-variant), half the
			// time branch from the base again, giving richer pair diffs.
			if rng.Float64() < 0.5 {
				cur = variant
			} else {
				cur = base
			}
		}
		corpus.Groups = append(corpus.Groups, group)
	}
	return corpus
}

// TotalAppeal sums the appeal of every slot: the creative's click pull
// if the user read everything (used in tests and diagnostics).
func (c Creative) TotalAppeal() float64 {
	var s float64
	for _, sl := range c.Slots {
		s += sl.Appeal
	}
	return s
}

// hookWindow, trustWindow and tailWindow are the appeal-neighbourhood
// radii for within-adgroup phrase selection.
const (
	hookWindow  = 4
	trustWindow = 3
	tailWindow  = 2
)

// paraphraseObject renders the adgroup keyword as creative text. Real
// creatives rarely repeat the keyword verbatim; the paraphrases are
// appeal-neutral but diversify junction n-grams so that token
// adjacencies cannot act as dense statistical proxies.
func paraphraseObject(rng *rand.Rand, keyword string) string {
	words := strings.Fields(keyword)
	switch rng.Intn(3) {
	case 0:
		return keyword
	case 1:
		// "flights to rome" -> "rome flights"; "running shoes" stays.
		for i, w := range words {
			if (w == "to" || w == "in") && i > 0 && i < len(words)-1 {
				rest := strings.Join(words[i+1:], " ")
				return rest + " " + strings.Join(words[:i], " ")
			}
		}
		return keyword
	default:
		prefixes := []string{"quality", "top", "great", "your"}
		return prefixes[rng.Intn(len(prefixes))] + " " + keyword
	}
}

// sortedByAppeal returns the phrases ordered by ascending appeal.
func sortedByAppeal(ps []Phrase) []Phrase {
	out := append([]Phrase(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Appeal != out[j].Appeal {
			return out[i].Appeal < out[j].Appeal
		}
		return out[i].Text < out[j].Text
	})
	return out
}
