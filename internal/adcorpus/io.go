package adcorpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SaveJSONL writes the corpus as one JSON group per line, the standard
// interchange format for streaming corpus processing.
func (c *Corpus) SaveJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range c.Groups {
		if err := enc.Encode(&c.Groups[i]); err != nil {
			return fmt.Errorf("adcorpus: save group %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// LoadJSONL reads a corpus written by SaveJSONL.
func LoadJSONL(r io.Reader) (*Corpus, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	corpus := &Corpus{}
	for {
		var g Group
		if err := dec.Decode(&g); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("adcorpus: load group %d: %w", len(corpus.Groups), err)
		}
		corpus.Groups = append(corpus.Groups, g)
	}
	return corpus, nil
}
