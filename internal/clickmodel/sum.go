package clickmodel

// SUM is a session utility model in the spirit of Dupret & Liao (cited
// in the paper's Section II-D): a post-click model that estimates the
// intrinsic (post-click) relevance of documents from the *sequence of
// clicked results in a session*, without modelling examination or
// pre-click attractiveness.
//
// The generative story: after each click the user accumulates the
// clicked document's intrinsic utility u(q,d) ∈ (0,1) and ends the
// session with probability equal to the accumulated utility's
// complement-product — i.e. the session continues past a click with
// probability Π(1-u) over clicked docs so far. Documents that satisfy
// users terminate sessions early and earn high utility; estimation is
// by EM over the session-termination evidence. This reproduction keeps
// the model's defining characteristic — only clicked sequences matter —
// and is evaluated only through SessionLogLikelihood on click sequences
// (ClickProbs falls back to per-position click rates, as SUM does not
// model examination).
type SUM struct {
	// Utility maps (query, doc) to intrinsic post-click relevance.
	Utility map[qd]float64
	// baseCTR is the per-position empirical click rate used for the
	// marginal ClickProbs fallback.
	baseCTR []float64

	Iterations int
	PriorU     float64
}

// NewSUM returns a SUM with default hyper-parameters.
func NewSUM() *SUM { return &SUM{Iterations: 20, PriorU: 0.3} }

// Name implements Model.
func (m *SUM) Name() string { return "SUM" }

// SetIterations implements IterativeModel.
func (m *SUM) SetIterations(n int) { m.Iterations = n }

func (m *SUM) defaults() {
	if m.Iterations <= 0 {
		m.Iterations = 20
	}
	if m.PriorU <= 0 || m.PriorU >= 1 {
		m.PriorU = 0.3
	}
}

func (m *SUM) u(q, d string) float64 {
	if v, ok := m.Utility[qd{q, d}]; ok {
		return v
	}
	return m.PriorU
}

// clickedDocs returns the clicked documents of a session in order.
func clickedDocs(s Session) []string {
	var out []string
	for i, c := range s.Clicks {
		if c {
			out = append(out, s.Docs[i])
		}
	}
	return out
}

// Fit implements Model. For every session, each clicked document except
// the last is evidence of non-satisfaction (the user clicked again);
// the last clicked document's satisfaction is latent (the user may have
// stopped satisfied, or continued and found nothing) and receives a
// posterior weight in the E-step.
func (m *SUM) Fit(sessions []Session) error {
	if err := validateAll(sessions); err != nil {
		return err
	}
	m.defaults()
	m.baseCTR = MeanCTRByPosition(sessions)
	m.Utility = make(map[qd]float64)
	for _, s := range sessions {
		for _, d := range clickedDocs(s) {
			m.Utility[qd{s.Query, d}] = m.PriorU
		}
	}
	type acc struct{ num, den float64 }
	for iter := 0; iter < m.Iterations; iter++ {
		accs := make(map[qd]acc, len(m.Utility))
		for _, s := range sessions {
			clicked := clickedDocs(s)
			for i, d := range clicked {
				k := qd{s.Query, d}
				a := accs[k]
				a.den++
				if i == len(clicked)-1 {
					// Last click: P(satisfied | session ended here).
					// Ending evidence: no clicks followed. The session
					// ends either satisfied (u) or unsatisfied but with
					// no further attractive results (approximated by
					// the residual 1-u mass ending anyway with the
					// base rate of clickless continuation).
					u := m.u(s.Query, d)
					cont := (1 - u) * m.tailNoClickProb(s)
					a.num += u / (u + cont)
				}
				accs[k] = a
			}
		}
		for k, a := range accs {
			if a.den > 0 {
				m.Utility[k] = clampProb(a.num / a.den)
			}
		}
	}
	return nil
}

// tailNoClickProb approximates the probability that a continuing user
// records no further click, from the positions after the last click.
func (m *SUM) tailNoClickProb(s Session) float64 {
	last := s.LastClick()
	p := 1.0
	for i := last + 1; i < len(s.Docs) && i < len(m.baseCTR); i++ {
		p *= 1 - m.baseCTR[i]
	}
	return clampProb(p)
}

// ClickProbs implements Model with the per-position empirical rate: SUM
// does not model pre-click behaviour, so its marginal prediction is the
// position baseline.
func (m *SUM) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer.
func (m *SUM) ClickProbsInto(s Session, buf []float64) []float64 {
	out := resizeProbs(buf, len(s.Docs))
	for i := range out {
		if i < len(m.baseCTR) {
			out[i] = m.baseCTR[i]
		} else {
			out[i] = 0.05
		}
	}
	return out
}

// SessionLogLikelihood implements Model over the clicked sequence: each
// non-final click contributes log(1-u) (the user was not satisfied and
// continued); the final click contributes the satisfied/abandoned
// mixture.
func (m *SUM) SessionLogLikelihood(s Session) float64 {
	clicked := clickedDocs(s)
	if len(clicked) == 0 {
		return log(m.tailNoClickProb(s))
	}
	ll := 0.0
	for i, d := range clicked {
		u := m.u(s.Query, d)
		if i < len(clicked)-1 {
			ll += log(1 - u)
		} else {
			ll += log(u + (1-u)*m.tailNoClickProb(s))
		}
	}
	return ll
}

// SessionUtility returns the expected accumulated utility of a session's
// clicked sequence — the quantity SUM ranks sessions and documents by.
func (m *SUM) SessionUtility(s Session) float64 {
	p := 1.0
	for _, d := range clickedDocs(s) {
		p *= 1 - m.u(s.Query, d)
	}
	return 1 - p
}

var _ Model = (*SUM)(nil)
