package clickmodel

import "math"

// BBM is the Bayesian browsing model of Liu, Guo & Faloutsos. Its browsing
// layer is exactly UBM's — examination depends on the position and the
// preceding click position — but relevance is treated as a random variable
// with a posterior distribution rather than a point estimate.
//
// The implementation follows the BBM paper's key observation: for a fixed
// browsing layer the relevance posterior of a (query, doc) has the form
//
//	p(R | log) ∝ R^{#clicks} · Π_k (1 - gamma_k·R)^{n_k}
//
// where n_k counts the non-clicked impressions observed under examination
// probability gamma_k. Only those compact counts are stored (the "petabyte
// scale" trick); the posterior is evaluated on a grid on demand. The
// counts live in dense pair-ID-indexed arrays keyed by the compiled
// log's triangular (position, previous-click) cells — for very deep
// result lists the per-pair cell axis falls back to sparse maps.
//
// In this reproduction the gammas are themselves estimated by running the
// UBM EM on the same log first, which the paper treats as equivalent for
// browsing purposes (Section II-B: "UBM and BBM can be considered
// equivalent" for the browsing model).
type BBM struct {
	Browse *UBM // fitted browsing layer

	// GridSize is the number of grid points on [0,1] for posterior
	// evaluation (default 51).
	GridSize int
	// Workers caps the browsing-layer fit's parallel E-step fan-out
	// (0 = GOMAXPROCS); the single counting pass itself is serial.
	Workers int

	queries   *Vocab              // interned queries of the fitted log
	pairIDs   map[pairKey]int32   // (query ID, doc) -> dense pair ID
	clicks    []float64           // pair ID -> click count
	nCell     int                 // triangular cells per pair (dense layout)
	cellGamma []float64           // cell -> fitted browsing gamma
	nonClick  []float64           // pair*nCell + cell -> skip count (dense)
	nonClickS []map[int32]float64 // sparse fallback for deep lists
}

// maxDenseBBMCells bounds the dense (pairs × cells) skip-count matrix:
// beyond ~45 positions the triangular cell axis goes sparse instead.
const maxDenseBBMCells = 1024

// NewBBM returns a BBM with default hyper-parameters.
func NewBBM() *BBM { return &BBM{GridSize: 51} }

// Name implements Model.
func (m *BBM) Name() string { return "BBM" }

// SetIterations implements IterativeModel, tuning the browsing layer's
// EM iteration count.
func (m *BBM) SetIterations(n int) {
	if m.Browse == nil {
		m.Browse = NewUBM()
	}
	m.Browse.Iterations = n
}

// Fit implements Model: compile the log, fit the UBM browsing layer,
// then accumulate the relevance sufficient statistics.
func (m *BBM) Fit(sessions []Session) error {
	c, err := Compile(sessions)
	if err != nil {
		return err
	}
	return m.FitLog(c)
}

// FitLog fits from a compiled log: the UBM browsing layer first, then
// one counting pass over the impressions into dense pair-indexed
// arrays.
func (m *BBM) FitLog(c *CompiledLog) error {
	if c == nil {
		return errNilLog
	}
	if m.GridSize < 3 {
		m.GridSize = 51
	}
	if m.Browse == nil {
		m.Browse = NewUBM()
	}
	if m.Browse.Workers == 0 {
		m.Browse.Workers = m.Workers
	}
	if err := m.Browse.FitLog(c); err != nil {
		return err
	}

	nPair := c.NumPairs()
	nCell := tri(c.maxPos)
	m.queries = c.Queries
	m.pairIDs = c.pairIDs
	m.clicks = reuseFloats(m.clicks, nPair)
	clear(m.clicks)
	m.cellGamma = reuseFloats(m.cellGamma, nCell)
	for i := 0; i < c.maxPos; i++ {
		for j := 0; j <= i; j++ {
			m.cellGamma[tri(i)+j] = m.Browse.gamma(i, j)
		}
	}

	if nCell <= maxDenseBBMCells {
		m.nCell = nCell
		m.nonClick = reuseFloats(m.nonClick, nPair*nCell)
		clear(m.nonClick)
		m.nonClickS = nil
	} else {
		m.nCell = 0
		m.nonClick = nil
		m.nonClickS = make([]map[int32]float64, nPair)
	}

	for s := 0; s < c.NumSessions(); s++ {
		b, e := c.off[s], c.off[s+1]
		for i := b; i < e; i++ {
			p := c.pair[i]
			if c.click[i] {
				m.clicks[p]++
				continue
			}
			cell := tri(int(i-b)) + int(c.prev[i])
			if m.nonClick != nil {
				m.nonClick[int(p)*m.nCell+cell]++
			} else {
				inner := m.nonClickS[p]
				if inner == nil {
					inner = make(map[int32]float64)
					m.nonClickS[p] = inner
				}
				inner[int32(cell)]++
			}
		}
	}
	return nil
}

// bbmCell is one observed (gamma cell, skip count) sufficient statistic.
type bbmCell struct {
	cell int32
	n    float64
}

// posteriorMeanID evaluates E[R | log] on the grid for a dense pair ID.
func (m *BBM) posteriorMeanID(p int32) float64 {
	c := m.clicks[p]
	// Collect the nonzero skip counts once so the grid loop touches
	// only observed cells, not the whole (mostly zero) dense row.
	var nzStack [48]bbmCell
	nz := nzStack[:0]
	if m.nonClick != nil {
		for cell, n := range m.nonClick[int(p)*m.nCell : (int(p)+1)*m.nCell] {
			if n > 0 {
				nz = append(nz, bbmCell{int32(cell), n})
			}
		}
	} else {
		for cell, n := range m.nonClickS[p] {
			nz = append(nz, bbmCell{cell, n})
		}
	}
	if c == 0 && len(nz) == 0 {
		return 0.5
	}
	// Evaluate log-weights first and normalise by their maximum so the
	// posterior does not underflow on documents with many impressions.
	step := 1.0 / float64(m.GridSize-1)
	var num, den, maxLW float64
	maxLW = math.Inf(-1)
	lws := make([]float64, m.GridSize)
	for i := 0; i < m.GridSize; i++ {
		r := float64(i) * step
		lw := 0.0
		if c > 0 {
			lw += c * log(r)
		}
		for _, e := range nz {
			lw += e.n * log(1-m.cellGamma[e.cell]*r)
		}
		lws[i] = lw
		if lw > maxLW {
			maxLW = lw
		}
	}
	for i, lw := range lws {
		w := math.Exp(lw - maxLW)
		num += w * float64(i) * step
		den += w
	}
	if den == 0 {
		return 0.5
	}
	return num / den
}

// PosteriorMean returns E[R | log] for the (query, doc) pair under a
// uniform prior, evaluated on the grid. Unseen pairs return the prior
// mean 0.5.
func (m *BBM) PosteriorMean(query, doc string) float64 {
	qid, ok := m.queries.Lookup(query)
	if !ok {
		return 0.5
	}
	p, ok := m.pairIDs[pairKey{qid, doc}]
	if !ok {
		return 0.5
	}
	return m.posteriorMeanID(p)
}

// ClickProbs implements Model using the UBM forward recursion with the
// posterior-mean relevance in place of a point-estimated alpha.
func (m *BBM) ClickProbs(s Session) []float64 {
	return m.ClickProbsInto(s, nil)
}

// ClickProbsInto implements InplaceScorer.
func (m *BBM) ClickProbsInto(s Session, buf []float64) []float64 {
	n := len(s.Docs)
	out := resizeProbs(buf, n)
	var stack [maxStackPositions + 1]float64
	pLast := stack[:]
	if n+1 > len(stack) {
		pLast = make([]float64, n+1)
	}
	pLast[0] = 1 // the rest of pLast is zero: fresh stack array or make()
	for i, d := range s.Docs {
		a := m.PosteriorMean(s.Query, d)
		var pc float64
		for j := 0; j <= i; j++ {
			pc += pLast[j] * a * m.Browse.gamma(i, j)
		}
		out[i] = pc
		for j := 0; j <= i; j++ {
			pLast[j] *= 1 - a*m.Browse.gamma(i, j)
		}
		pLast[i+1] = pc
	}
	return out
}

// SessionLogLikelihood implements Model.
func (m *BBM) SessionLogLikelihood(s Session) float64 {
	ll := 0.0
	prev := 0
	for i, d := range s.Docs {
		p := m.PosteriorMean(s.Query, d) * m.Browse.gamma(i, prev)
		ll += bernoulliLL(p, s.Clicks[i])
		if s.Clicks[i] {
			prev = i + 1
		}
	}
	return ll
}
